// Reconstructs per-multicast timelines from a `gam-spans v1` file and
// attributes end-to-end latency to protocol phases.
//
//   span_report SPANS_FILE [--json=PATH] [--quiet]
//
// Prints a critical-path breakdown table — one row per phase (the gap
// between two adjacent lifecycle milestones: submit, enter, locked,
// deliverable, delivered), with count, total, share of the summed latency,
// mean, and exact p50/p90/p99 — plus the wire-level outbox-wait and flight
// distributions when the file came from a live run. --json additionally
// writes the same numbers as a "gam-spans-v1" JSON report.
//
// Exit codes: 0 = every delivery reconstructed, 1 = orphan deliveries (a
// delivered multicast with no submit/enter milestone — an instrumentation
// gap), 2 = usage or I/O error. Output is a pure function of the input file,
// so two identical seeded runs print byte-identical reports (the tier-1 span
// self-check).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/spans.hpp"

namespace {

using gam::sim::SpanFile;
using gam::sim::SpanReportData;
using gam::sim::span_quantile;

int usage() {
  std::fprintf(stderr,
               "usage: span_report SPANS_FILE [--json=PATH] [--quiet]\n");
  return 2;
}

struct PhaseStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double mean = 0;
  std::uint64_t p50 = 0, p90 = 0, p99 = 0, max = 0;
};

PhaseStats stats_of(const std::string& name,
                    const std::vector<std::uint64_t>& v) {
  PhaseStats s;
  s.name = name;
  s.count = v.size();
  for (std::uint64_t d : v) {
    s.sum += d;
    if (d > s.max) s.max = d;
  }
  s.mean = s.count ? static_cast<double>(s.sum) / static_cast<double>(s.count)
                   : 0.0;
  s.p50 = span_quantile(v, 0.5);
  s.p90 = span_quantile(v, 0.9);
  s.p99 = span_quantile(v, 0.99);
  return s;
}

// Phases in causal order first, then anything else alphabetically (the map
// is already sorted, so the fallback order is deterministic too).
std::vector<PhaseStats> ordered_phases(const SpanReportData& r) {
  static const char* kCanonical[] = {
      "submit->enter",        "enter->locked",       "submit->locked",
      "locked->deliverable",  "enter->deliverable",  "submit->deliverable",
      "deliverable->delivered", "locked->delivered", "enter->delivered",
      "submit->delivered",
  };
  std::vector<PhaseStats> out;
  for (const char* name : kCanonical) {
    auto it = r.phases.find(name);
    if (it != r.phases.end()) out.push_back(stats_of(name, it->second));
  }
  for (const auto& [name, v] : r.phases) {
    bool canonical = false;
    for (const char* c : kCanonical)
      if (name == c) canonical = true;
    if (!canonical) out.push_back(stats_of(name, v));
  }
  return out;
}

void json_phase(std::FILE* f, const PhaseStats& s, bool last) {
  std::fprintf(f,
               "    \"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
               "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
               s.name.c_str(), static_cast<unsigned long long>(s.count),
               static_cast<unsigned long long>(s.sum), s.mean,
               static_cast<unsigned long long>(s.p50),
               static_cast<unsigned long long>(s.p90),
               static_cast<unsigned long long>(s.p99),
               static_cast<unsigned long long>(s.max), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::string json_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (!path && argv[i][0] != '-') {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  auto file = gam::sim::load_spans(path);
  if (!file) {
    std::fprintf(stderr, "span_report: cannot load %s\n", path);
    return 2;
  }
  const SpanReportData r = gam::sim::build_span_report(*file);
  const auto phases = ordered_phases(r);
  std::uint64_t phase_sum = 0;
  for (const auto& s : phases) phase_sum += s.sum;

  const char* unit = r.clock == "ns" ? "ns" : "steps";
  if (!quiet) {
    std::printf("spans: %s (clock=%s, %zu events)\n", path, r.clock.c_str(),
                file->events.size());
    std::printf(
        "multicasts=%llu deliveries=%llu orphans=%llu nonmonotonic=%llu\n",
        static_cast<unsigned long long>(r.multicasts),
        static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(r.orphans),
        static_cast<unsigned long long>(r.nonmonotonic));
    std::printf("deliver latency (enter->delivered): sum=%llu %s over %llu "
                "deliveries\n",
                static_cast<unsigned long long>(r.deliver_latency_sum), unit,
                static_cast<unsigned long long>(r.deliver_latency_count));
    std::printf("\ncritical-path breakdown (%s):\n", unit);
    std::printf("  %-26s %10s %14s %7s %12s %10s %10s %10s\n", "phase",
                "count", "sum", "share", "mean", "p50", "p90", "p99");
    for (const auto& s : phases) {
      const double share =
          phase_sum ? 100.0 * static_cast<double>(s.sum) /
                          static_cast<double>(phase_sum)
                    : 0.0;
      std::printf(
          "  %-26s %10llu %14llu %6.1f%% %12.1f %10llu %10llu %10llu\n",
          s.name.c_str(), static_cast<unsigned long long>(s.count),
          static_cast<unsigned long long>(s.sum), share, s.mean,
          static_cast<unsigned long long>(s.p50),
          static_cast<unsigned long long>(s.p90),
          static_cast<unsigned long long>(s.p99));
    }
    if (r.wire_frames > 0) {
      const auto ow = stats_of("outbox_wait", r.outbox_wait);
      const auto fl = stats_of("wire_flight", r.wire_flight);
      std::printf("\nwire (%llu frames):\n",
                  static_cast<unsigned long long>(r.wire_frames));
      std::printf("  enqueue->wire_out: count=%llu mean=%.1f p99=%llu %s\n",
                  static_cast<unsigned long long>(ow.count), ow.mean,
                  static_cast<unsigned long long>(ow.p99), unit);
      std::printf("  wire_out->wire_in: count=%llu mean=%.1f p99=%llu %s\n",
                  static_cast<unsigned long long>(fl.count), fl.mean,
                  static_cast<unsigned long long>(fl.p99), unit);
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "span_report: cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"gam-spans-v1\",\n");
    std::fprintf(f, "  \"clock\": \"%s\",\n", r.clock.c_str());
    std::fprintf(f, "  \"events\": %zu,\n", file->events.size());
    std::fprintf(f, "  \"multicasts\": %llu,\n",
                 static_cast<unsigned long long>(r.multicasts));
    std::fprintf(f, "  \"deliveries\": %llu,\n",
                 static_cast<unsigned long long>(r.deliveries));
    std::fprintf(f, "  \"orphans\": %llu,\n",
                 static_cast<unsigned long long>(r.orphans));
    std::fprintf(f, "  \"nonmonotonic\": %llu,\n",
                 static_cast<unsigned long long>(r.nonmonotonic));
    std::fprintf(f, "  \"deliver_latency_sum\": %llu,\n",
                 static_cast<unsigned long long>(r.deliver_latency_sum));
    std::fprintf(f, "  \"deliver_latency_count\": %llu,\n",
                 static_cast<unsigned long long>(r.deliver_latency_count));
    std::fprintf(f, "  \"phases\": {\n");
    for (std::size_t i = 0; i < phases.size(); ++i)
      json_phase(f, phases[i], i + 1 == phases.size());
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"wire\": {\n");
    std::fprintf(f, "    \"frames\": %llu,\n",
                 static_cast<unsigned long long>(r.wire_frames));
    json_phase(f, stats_of("outbox_wait", r.outbox_wait), false);
    json_phase(f, stats_of("wire_flight", r.wire_flight), true);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  if (r.orphans > 0) {
    std::fprintf(stderr,
                 "span_report: %llu orphan deliveries (delivered multicasts "
                 "with no submit/enter milestone)\n",
                 static_cast<unsigned long long>(r.orphans));
    return 1;
  }
  return 0;
}
