// adversary_hunt — sweep adversarial strategies x seeds over Algorithm 1 on
// the Figure 1 topology, checking every run against the online invariant
// monitors (integrity / agreement / acyclicity), and fail on the first
// violation.
//
// The point of the adversary layer is falsification power: a protocol bug
// that survives thousands of uniform-random seeds should fall quickly to a
// schedule that starves processes (PCT) or a crash pattern that sits on a
// Σ-quorum boundary (qedge). The repo's teeth test builds this binary with
// -DGAM_PLANTED_BUG=ON (one weakened delivery guard in MuMulticast); the
// hunt must then flag an acyclicity violation with its event index, while
// the honest build stays clean across every strategy (scripts/tier1.sh).
//
// On a violation the losing run's full event trace and its attempt schedule
// are written next to --out, the schedule is loaded back and re-executed via
// ReplayScheduler, and the replayed event hash is required to match —
// proving the adversarial schedule is byte-reproducible from its file.
//
//   adversary_hunt [--seeds=N] [--quick] [--per-group=N]
//                  [--adversary=SPEC] [--table] [--out=PREFIX]
//
// Default strategies: random, pct:3, qedge+pct:3 (all replayable; replay
// specs are rejected as a hunt strategy). --table prints a
// seeds-to-first-violation table (for EXPERIMENTS.md) instead of failing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sim/adversary.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"

using namespace gam;

namespace {

struct HuntOptions {
  int seeds = 256;
  int per_group = 4;
  bool table = false;
  std::string only;              // restrict to one --adversary=SPEC
  std::string out = "adversary_hunt";
};

// The failure pattern a (strategy, seed) cell runs under: quorum-edge
// derived when the strategy asks for it, sampled crashes otherwise (the
// same environment distribution bench_sweep's figure1_crashes uses — random
// and PCT hunt over identical crash budgets, so the comparison isolates
// schedule order).
sim::FailurePattern hunt_pattern(const sim::AdversarySpec& adv,
                                 const groups::GroupSystem& sys,
                                 std::uint64_t seed) {
  if (adv.quorum_edge_crashes)
    // Window 64: stagger the boundary attack across the protocol's working
    // lifetime rather than only its first steps, so crashes catch messages
    // mid-stabilization.
    return sim::QuorumEdgeAdversary(sys.groups(), sys.process_count())
        .pattern_for(seed, /*window=*/64);
  Rng rng(seed);
  sim::EnvironmentSampler env{
      .process_count = sys.process_count(), .max_failures = 2, .horizon = 100};
  return env.sample(rng);
}

struct CellResult {
  std::vector<sim::MonitorViolation> violations;
  std::vector<ProcessId> schedule;  // fired attempts (-1 = idle tick)
  std::vector<sim::TraceEvent> events;
  std::uint64_t trace_hash = 0;
  bool quiescent = false;
};

CellResult run_cell(const sim::AdversarySpec& adv, std::uint64_t seed,
                    int per_group) {
  auto sys = groups::figure1_system();
  sim::FailurePattern pat = hunt_pattern(adv, sys, seed);

  amcast::MuMulticast mc(sys, pat, {.seed = seed});
  sim::RecorderSink rec;
  mc.set_event_sink(&rec);
  for (auto& m : amcast::round_robin_workload(sys, per_group)) mc.submit(m);

  CellResult out;
  auto sched = adv.scheduler.instantiate(seed);
  auto record = mc.run_with(*sched, &out.schedule);
  out.quiescent = record.quiescent;
  out.events = rec.events();
  out.trace_hash = rec.hash();

  sim::MonitorConfig cfg;
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  cfg.protocol_base = sim::protocol_id(0);
  cfg.require_multicast = true;
  cfg.faulty = pat.faulty_set();
  sim::InvariantMonitors mon(cfg);
  sim::feed(mon, out.events);
  mon.finalize(record.quiescent);
  out.violations = mon.violations();
  return out;
}

// Re-executes the cell from its on-disk schedule file and checks the event
// stream reproduces byte-for-byte (same fold hash).
bool verify_replay(const sim::AdversarySpec& adv, std::uint64_t seed,
                   int per_group, const std::string& schedule_path,
                   std::uint64_t want_hash) {
  auto replayer = sim::ReplayScheduler::from_file(schedule_path);
  if (!replayer) {
    std::fprintf(stderr, "  replay: failed to load %s\n",
                 schedule_path.c_str());
    return false;
  }
  auto sys = groups::figure1_system();
  sim::FailurePattern pat = hunt_pattern(adv, sys, seed);
  amcast::MuMulticast mc(sys, pat, {.seed = seed});
  sim::HashingSink hash;
  mc.set_event_sink(&hash);
  for (auto& m : amcast::round_robin_workload(sys, per_group)) mc.submit(m);
  mc.run_with(*replayer);
  return hash.hash() == want_hash;
}

// Hunts one strategy; returns the violating seed, or nullopt if all clean.
std::optional<std::uint64_t> hunt(const sim::AdversarySpec& adv,
                                  const HuntOptions& opt, bool report) {
  for (int i = 0; i < opt.seeds; ++i) {
    std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    CellResult cell = run_cell(adv, seed, opt.per_group);
    if (cell.violations.empty()) continue;
    if (!report) return seed;

    std::printf("VIOLATION strategy=%s seed=%llu (after %d clean seed(s))\n",
                adv.name().c_str(), static_cast<unsigned long long>(seed), i);
    for (const auto& v : cell.violations)
      std::printf("  %s\n", sim::format_violation(v).c_str());

    std::string base = opt.out + "." + adv.name() + ".seed" +
                       std::to_string(seed);
    std::string trace_path = base + ".trace";
    std::string sched_path = base + ".schedule";
    sim::RecorderSink rec;
    for (const auto& e : cell.events) rec.on_event(e);
    if (!rec.write(trace_path) ||
        !sim::write_schedule(sched_path, cell.schedule)) {
      std::fprintf(stderr, "  failed to write %s / %s\n", trace_path.c_str(),
                   sched_path.c_str());
      return seed;
    }
    std::printf("  wrote %s (%zu events) and %s (%zu attempts)\n",
                trace_path.c_str(), cell.events.size(), sched_path.c_str(),
                cell.schedule.size());
    bool ok = verify_replay(adv, seed, opt.per_group, sched_path,
                            cell.trace_hash);
    std::printf("  replay from schedule file: %s\n",
                ok ? "reproduces (event hash identical)" : "DIVERGED");
    return seed;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  HuntOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--quick") {
      opt.seeds = 64;
    } else if (a.rfind("--seeds=", 0) == 0) {
      opt.seeds = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--per-group=", 0) == 0) {
      opt.per_group = std::atoi(a.c_str() + 12);
    } else if (a.rfind("--adversary=", 0) == 0) {
      opt.only = a.substr(12);
    } else if (a == "--table") {
      opt.table = true;
    } else if (a.rfind("--out=", 0) == 0) {
      opt.out = a.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds=N] [--quick] [--per-group=N] "
                   "[--adversary=SPEC] [--table] [--out=PREFIX]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::string> names = {"random", "pct:3", "qedge+pct:3"};
  if (!opt.only.empty()) names = {opt.only};
  std::vector<sim::AdversarySpec> strategies;
  for (const auto& n : names) {
    auto spec = sim::AdversarySpec::parse(n);
    if (!spec ||
        spec->scheduler.kind == sim::SchedulerSpec::Kind::kReplay) {
      std::fprintf(stderr,
                   "error: not a huntable adversary spec: %s (replay specs "
                   "re-execute one run; they cannot search)\n",
                   n.c_str());
      return 2;
    }
    strategies.push_back(*spec);
  }

  std::printf("adversary hunt: figure1 topology, %d seed(s)/strategy, "
              "%d msg(s)/group%s\n",
              opt.seeds, opt.per_group,
              sim::kPlantedBug ? " [GAM_PLANTED_BUG build]" : "");

  if (opt.table) {
    std::printf("\n| strategy | seeds tried | first violation |\n");
    std::printf("|---|---|---|\n");
    for (const auto& adv : strategies) {
      auto found = hunt(adv, opt, /*report=*/false);
      if (found)
        std::printf("| %s | %d | seed %llu |\n", adv.name().c_str(), opt.seeds,
                    static_cast<unsigned long long>(*found));
      else
        std::printf("| %s | %d | none |\n", adv.name().c_str(), opt.seeds);
    }
    return 0;
  }

  bool any = false;
  for (const auto& adv : strategies) {
    std::printf("-- %s\n", adv.name().c_str());
    any |= hunt(adv, opt, /*report=*/true).has_value();
  }
  if (!any) {
    std::printf("all strategies clean: no monitor violation in %d seed(s) "
                "each\n",
                opt.seeds);
    return 0;
  }
  return 1;
}
