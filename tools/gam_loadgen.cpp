// gam_loadgen — disjoint-group atomic-multicast load generator over the
// net::Runtime (net/runtime.hpp).
//
// Free mode (default): one LoadDriver per group, colocated with the group's
// Ω leader, submits ops into the group's UniversalLog replica at a target
// rate (or open-throttle with a bounded in-flight window when --rate=0) for
// --duration-ms, then drains. Throughput is completed multicasts (every
// replica delivered) over total wall-clock; latency is submit-to-local-learn
// at the leader, recorded into the metrics registry (power-of-two-bucket
// histograms, one per group). Results go to --out as "gam-net-bench v1" JSON.
//
// --monitor additionally collects every (replica, group, op, seq) delivery,
// synthesizes the protocol-level kMulticast/kDeliver stream, and runs the
// InvariantMonitors over it — the tier-1 smoke gate runs a short monitored
// configuration and enforces a throughput floor via --min-rate.
//
// --record switches to record mode: --ops upfront submissions per group over
// an unthrottled in-process transport, globally serialized steps, then a
// replay of the recorded trace inside the deterministic simulator
// (net/replay.hpp). The live and replayed streams are written to
// --trace-live / --trace-replay and compared; any divergence is a nonzero
// exit. This is the live-to-sim fidelity gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/flight_recorder.hpp"
#include "net/group_logs.hpp"
#include "net/replay.hpp"
#include "net/runtime.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/spans.hpp"
#include "sim/trace.hpp"

#ifndef GAM_GIT_REV
#define GAM_GIT_REV "unknown"
#endif
#ifndef GAM_BUILD_TYPE
#define GAM_BUILD_TYPE "unknown"
#endif
#ifndef GAM_SANITIZE_STR
#define GAM_SANITIZE_STR ""
#endif

namespace {

using gam::ProcessId;

using Clock = std::chrono::steady_clock;

// SIGINT/SIGTERM request a graceful shutdown: the run loop notices the flag,
// stops, and the normal post-run path still writes the bench JSON and dumps
// the flight recorder — an interrupted run keeps its evidence.
volatile std::sig_atomic_t g_signal = 0;
extern "C" void on_shutdown_signal(int sig) { g_signal = sig; }

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct Args {
  int processes = 6;
  int groups = 2;
  double rate = 0;  // total multicasts/sec across groups; 0 = open throttle
  int duration_ms = 1000;
  int batch = 256;
  int window = 4;
  std::uint64_t net_window = 256;  // transport in-flight frames per link
  std::size_t ring_bytes = std::size_t{1} << 20;
  std::string backend = "inproc";  // inproc | tcp
  std::string out = "BENCH_net.json";
  bool monitor = false;
  double min_rate = 0;  // smoke floor: exit nonzero below this
  // Record/replay mode.
  bool record = false;
  int ops = 64;  // record-mode submissions per group
  std::string trace_live = "net_live.trace";
  std::string trace_replay = "net_replay.trace";
  // Observability.
  int stats_interval_ms = 0;       // 0 = no live stats
  std::string stats_out;           // machine-readable snapshots for gam_top
  std::string spans;               // full span capture -> gam-spans v1 file
  std::string flight;              // flight-dump basename; default <out>.flight
  std::size_t flight_events = 4096;  // ring capacity per process; 0 disables
};

bool parse_flag(const char* a, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(a, name, n) != 0 || a[n] != '=') return false;
  *value = a + n + 1;
  return true;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--processes", &v)) args.processes = std::atoi(v);
    else if (parse_flag(argv[i], "--groups", &v)) args.groups = std::atoi(v);
    else if (parse_flag(argv[i], "--rate", &v)) args.rate = std::atof(v);
    else if (parse_flag(argv[i], "--duration-ms", &v))
      args.duration_ms = std::atoi(v);
    else if (parse_flag(argv[i], "--batch", &v)) args.batch = std::atoi(v);
    else if (parse_flag(argv[i], "--window", &v)) args.window = std::atoi(v);
    else if (parse_flag(argv[i], "--net-window", &v))
      args.net_window = std::strtoull(v, nullptr, 10);
    else if (parse_flag(argv[i], "--ring-bytes", &v))
      args.ring_bytes = std::strtoull(v, nullptr, 10);
    else if (parse_flag(argv[i], "--backend", &v)) args.backend = v;
    else if (parse_flag(argv[i], "--out", &v)) args.out = v;
    else if (parse_flag(argv[i], "--min-rate", &v)) args.min_rate = std::atof(v);
    else if (parse_flag(argv[i], "--ops", &v)) args.ops = std::atoi(v);
    else if (parse_flag(argv[i], "--trace-live", &v)) args.trace_live = v;
    else if (parse_flag(argv[i], "--trace-replay", &v)) args.trace_replay = v;
    else if (parse_flag(argv[i], "--stats-interval", &v))
      args.stats_interval_ms = std::atoi(v);
    else if (parse_flag(argv[i], "--stats-out", &v)) args.stats_out = v;
    else if (parse_flag(argv[i], "--spans", &v)) args.spans = v;
    else if (parse_flag(argv[i], "--flight", &v)) args.flight = v;
    else if (parse_flag(argv[i], "--flight-events", &v))
      args.flight_events = std::strtoull(v, nullptr, 10);
    else if (std::strcmp(argv[i], "--monitor") == 0) args.monitor = true;
    else if (std::strcmp(argv[i], "--record") == 0) args.record = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (args.processes <= 0 || args.groups <= 0 ||
      args.processes % args.groups != 0) {
    std::fprintf(stderr, "--processes must be a positive multiple of --groups\n");
    std::exit(2);
  }
  return args;
}

// Ops are namespaced per group so dedup sets and monitors never alias across
// groups: group g submits op_base(g), op_base(g)+1, ...
std::int64_t op_base(int g) { return static_cast<std::int64_t>(g) << 40; }

// The per-group traffic source: a SubProtocol colocated with the group's Ω
// leader (protocol id 1 — never on the wire; it only uses idle steps). Burst
// submission from on_idle keeps pacing on the leader's own event-loop thread,
// so no cross-thread access to the UniversalLog.
class LoadDriver final : public gam::objects::SubProtocol {
 public:
  LoadDriver(gam::objects::UniversalLog* log, std::int64_t base, double rate,
             std::uint64_t inflight_cap, std::atomic<std::uint64_t>* submitted,
             std::atomic<bool>* time_up)
      : log_(log),
        base_(base),
        rate_(rate),
        cap_(inflight_cap),
        submitted_(submitted),
        time_up_(time_up),
        start_(Clock::now()) {}

  // Never addressed on the wire; the driver only consumes idle slots.
  void on_message(gam::sim::Context&, const gam::sim::Message&) override {}

  bool wants_step() const override { return !closed_; }

  bool on_idle(gam::sim::Context&) override {
    if (closed_) return false;
    if (time_up_->load(std::memory_order_relaxed)) {
      closed_ = true;
      return false;
    }
    const auto now = Clock::now();
    std::uint64_t target;
    if (rate_ > 0) {
      const double el =
          static_cast<double>(ns_between(start_, now)) / 1e9;
      target = static_cast<std::uint64_t>(rate_ * el);
    } else {
      target = own_done_ + cap_;
    }
    if (target <= count_) return false;
    const std::uint64_t burst = std::min<std::uint64_t>(target - count_, 256);
    const std::uint64_t t_ns = ns_between(start_, now);
    for (std::uint64_t i = 0; i < burst; ++i) {
      submit_ns_.push_back(t_ns);
      log_->submit(base_ + static_cast<std::int64_t>(count_), nullptr);
      ++count_;
    }
    submitted_->fetch_add(burst, std::memory_order_relaxed);
    return true;
  }

  // Called from the leader replica's on_learn — same thread as on_idle.
  void on_own_delivery(std::int64_t op) {
    const auto idx = static_cast<std::uint64_t>(op - base_);
    if (idx < submit_ns_.size()) {
      const std::uint64_t lat_ns =
          ns_between(start_, Clock::now()) - submit_ns_[idx];
      latency_us_.record(lat_ns / 1000);
    }
    ++own_done_;
  }

  std::uint64_t submitted_count() const { return count_; }
  const gam::sim::Histogram& latency_us() const { return latency_us_; }

 private:
  gam::objects::UniversalLog* log_;
  std::int64_t base_;
  double rate_;
  std::uint64_t cap_;
  std::atomic<std::uint64_t>* submitted_;
  std::atomic<bool>* time_up_;
  Clock::time_point start_;
  bool closed_ = false;
  std::uint64_t count_ = 0;    // ops submitted
  std::uint64_t own_done_ = 0; // own ops the local replica has learned
  std::vector<std::uint64_t> submit_ns_;
  gam::sim::Histogram latency_us_;
};

void json_hist(std::FILE* f, const char* key, const gam::sim::Histogram& h,
               bool last) {
  std::fprintf(f,
               "    \"%s\": {\"count\": %llu, \"min_us\": %llu, "
               "\"max_us\": %llu, \"mean_us\": %.1f, \"p50_us\": %llu, "
               "\"p90_us\": %llu, \"p99_us\": %llu}%s\n",
               key, static_cast<unsigned long long>(h.count),
               static_cast<unsigned long long>(h.count ? h.min : 0),
               static_cast<unsigned long long>(h.max), h.mean(),
               static_cast<unsigned long long>(h.count ? h.quantile(0.5) : 0),
               static_cast<unsigned long long>(h.count ? h.quantile(0.9) : 0),
               static_cast<unsigned long long>(h.count ? h.quantile(0.99) : 0),
               last ? "" : ",");
}

int free_run(const Args& a) {
  const int gs = a.processes / a.groups;
  gam::net::GroupLogsConfig cfg;
  cfg.groups = a.groups;
  cfg.group_size = gs;
  cfg.batch = a.batch;
  cfg.window = a.window;
  gam::net::GroupLogs logs(cfg);
  const int n = logs.process_count();

  std::unique_ptr<gam::net::Transport> transport;
  if (a.backend == "tcp") {
    gam::net::TcpTransport::Options topt;
    topt.window = a.net_window;
    transport = std::make_unique<gam::net::TcpTransport>(n, topt);
  } else {
    gam::net::InProcTransport::Options iopt;
    iopt.ring_bytes = a.ring_bytes;
    iopt.window = a.net_window;
    transport = std::make_unique<gam::net::InProcTransport>(n, iopt);
  }
  gam::net::Runtime rt(*transport, gam::net::RuntimeOptions{});

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> time_up{false};

  std::vector<ProcessId> leaders;
  for (int g = 0; g < a.groups; ++g) leaders.push_back(logs.leader(g));
  std::vector<LoadDriver*> drivers(static_cast<std::size_t>(a.groups),
                                   nullptr);
  // Per-process delivery records for the monitors; each vector is written
  // only by its owner's event-loop thread.
  struct Delivery {
    int g;
    std::int64_t op;
    std::int64_t seq;
  };
  std::vector<std::vector<Delivery>> dels(static_cast<std::size_t>(n));
  const bool monitor = a.monitor;

  auto actors = logs.make_actors([&](ProcessId p, int g, std::int64_t op,
                                     std::int64_t seq) {
    delivered.fetch_add(1, std::memory_order_relaxed);
    if (monitor) dels[static_cast<std::size_t>(p)].push_back({g, op, seq});
    if (p == leaders[static_cast<std::size_t>(g)])
      drivers[static_cast<std::size_t>(g)]->on_own_delivery(op);
  });

  // In-flight cap for open throttle: enough to keep `window` instances of
  // `batch` ops full at the leader without letting pending_ grow unboundedly.
  const std::uint64_t cap =
      static_cast<std::uint64_t>(a.batch) * static_cast<std::uint64_t>(
          a.window) * 2;
  std::vector<std::shared_ptr<LoadDriver>> driver_refs;
  for (int g = 0; g < a.groups; ++g) {
    int idx = 0;
    for (ProcessId p : logs.group(g)) {
      if (p == leaders[static_cast<std::size_t>(g)]) break;
      ++idx;
    }
    auto d = std::make_shared<LoadDriver>(
        &logs.replica(g, idx), op_base(g), a.rate / a.groups, cap, &submitted,
        &time_up);
    drivers[static_cast<std::size_t>(g)] = d.get();
    logs.host(leaders[static_cast<std::size_t>(g)])
        .add(gam::sim::protocol_id(1), d);
    driver_refs.push_back(std::move(d));
  }

  for (ProcessId p = 0; p < n; ++p)
    rt.install(p, std::move(actors[static_cast<std::size_t>(p)]));

  // Flight recorder + optional full span capture. Every process gets a
  // stamping sink that feeds its own bounded ring (and, with --spans, a
  // per-process collector) — zero shared state on the event path.
  std::unique_ptr<gam::net::FlightRecorder> flight;
  std::vector<gam::sim::SpanCollector> span_cols;
  if (a.flight_events > 0) {
    flight = std::make_unique<gam::net::FlightRecorder>(n, a.flight_events);
    if (!a.spans.empty()) span_cols.resize(static_cast<std::size_t>(n));
    std::vector<gam::sim::SpanSink*> sinks;
    for (ProcessId p = 0; p < n; ++p) {
      if (!span_cols.empty())
        flight->set_collector(p, &span_cols[static_cast<std::size_t>(p)]);
      rt.set_span_sink(p, flight->sink(p));
      sinks.push_back(flight->sink(p));
    }
    logs.set_span_sinks(sinks);
  }

  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);

  const auto start = Clock::now();
  const auto t_end = start + std::chrono::milliseconds(a.duration_ms);
  const std::uint64_t gs_u = static_cast<std::uint64_t>(gs);
  auto done = [&] {
    if (g_signal != 0) {
      // Graceful shutdown: stop immediately (no drain); the post-run path
      // still writes the JSON and dumps the flight recorder.
      time_up.store(true, std::memory_order_relaxed);
      return true;
    }
    if (!time_up.load(std::memory_order_relaxed)) {
      if (Clock::now() < t_end) return false;
      time_up.store(true, std::memory_order_relaxed);
    }
    // After the stop flag, submitted is quiescing; equality means every
    // submitted op was delivered by its full group.
    return delivered.load(std::memory_order_relaxed) ==
           submitted.load(std::memory_order_relaxed) * gs_u;
  };

  // Live introspection: a snapshot line every --stats-interval ms from the
  // runtime's relaxed per-process stats, without touching the run. With
  // --stats-out, machine-readable snapshot blocks for tools/gam_top ride
  // along.
  std::atomic<bool> run_over{false};
  std::thread stats_thread;
  if (a.stats_interval_ms > 0) {
    stats_thread = std::thread([&] {
      std::FILE* sf =
          a.stats_out.empty() ? nullptr : std::fopen(a.stats_out.c_str(), "w");
      std::uint64_t snap = 0;
      std::uint64_t last_mc = 0;
      auto last_t = Clock::now();
      while (!run_over.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(a.stats_interval_ms));
        const auto now = Clock::now();
        const std::uint64_t sub = submitted.load(std::memory_order_relaxed);
        const std::uint64_t del = delivered.load(std::memory_order_relaxed);
        const std::uint64_t mc = del / gs_u;
        const double dt =
            static_cast<double>(ns_between(last_t, now)) / 1e9;
        const double rate =
            dt > 0 ? static_cast<double>(mc - last_mc) / dt : 0.0;
        const std::uint64_t inflight = sub * gs_u - del;
        std::uint64_t outbox = 0, hwm = 0, backoff_max = 0, cap_hits = 0;
        for (ProcessId p = 0; p < n; ++p) {
          const auto s = rt.stats(p);
          outbox += s.outbox_depth;
          hwm = std::max(hwm, s.outbox_hwm);
          backoff_max = std::max(backoff_max, s.idle_backoff_us);
          cap_hits += s.idle_backoff_max_reached;
        }
        std::fprintf(stderr,
                     "[stats %6.1fs] rate=%.0f/s inflight=%llu outbox=%llu "
                     "(hwm %llu) backoff<=%lluus cap_hits=%llu steps=%llu\n",
                     static_cast<double>(ns_between(start, now)) / 1e9, rate,
                     static_cast<unsigned long long>(inflight),
                     static_cast<unsigned long long>(outbox),
                     static_cast<unsigned long long>(hwm),
                     static_cast<unsigned long long>(backoff_max),
                     static_cast<unsigned long long>(cap_hits),
                     static_cast<unsigned long long>(rt.total_steps()));
        if (sf) {
          std::fprintf(sf, "S %llu %llu %llu %llu %.0f %llu\n",
                       static_cast<unsigned long long>(snap),
                       static_cast<unsigned long long>(
                           ns_between(start, now) / 1000000),
                       static_cast<unsigned long long>(sub),
                       static_cast<unsigned long long>(mc), rate,
                       static_cast<unsigned long long>(inflight));
          for (ProcessId p = 0; p < n; ++p) {
            const auto s = rt.stats(p);
            std::fprintf(
                sf, "P %d %llu %llu %llu %llu %llu\n", p,
                static_cast<unsigned long long>(s.steps),
                static_cast<unsigned long long>(s.outbox_depth),
                static_cast<unsigned long long>(s.outbox_hwm),
                static_cast<unsigned long long>(s.idle_backoff_us),
                static_cast<unsigned long long>(s.idle_backoff_max_reached));
          }
          std::fprintf(sf, "E %llu\n", static_cast<unsigned long long>(snap));
          std::fflush(sf);
        }
        last_mc = mc;
        last_t = now;
        ++snap;
      }
      if (sf) std::fclose(sf);
    });
  }

  const auto budget =
      std::chrono::milliseconds(a.duration_ms * 4 + 20000);
  const bool completed = rt.run(done, budget);
  run_over.store(true, std::memory_order_relaxed);
  if (stats_thread.joinable()) stats_thread.join();
  const bool interrupted = g_signal != 0;
  const double elapsed =
      static_cast<double>(ns_between(start, Clock::now())) / 1e9;

  const std::uint64_t dels_total = delivered.load();
  const std::uint64_t completed_mc = dels_total / gs_u;
  const double mps = elapsed > 0 ? static_cast<double>(completed_mc) / elapsed
                                 : 0.0;

  // Fold per-driver latency into the metrics registry (one labeled series
  // per group), then report from the registry.
  gam::sim::Metrics reg;
  for (int g = 0; g < a.groups; ++g) {
    reg.histogram("deliver_latency_us", "g" + std::to_string(g))
        .merge(drivers[static_cast<std::size_t>(g)]->latency_us());
    reg.counter("submitted", "g" + std::to_string(g))
        .add(drivers[static_cast<std::size_t>(g)]->submitted_count());
  }
  const gam::sim::Histogram all = reg.merged_histogram("deliver_latency_us");

  // Net-runtime introspection folded into the registry: how often each
  // process's idle backoff hit its cap, and how deep its outbox ever got.
  std::uint64_t backoff_cap_total = 0, outbox_hwm_max = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto s = rt.stats(p);
    reg.counter("idle_backoff_max_reached", "p" + std::to_string(p))
        .add(s.idle_backoff_max_reached);
    reg.gauge("outbox_depth", "p" + std::to_string(p))
        .set(static_cast<std::int64_t>(s.outbox_hwm));
    backoff_cap_total += s.idle_backoff_max_reached;
    outbox_hwm_max = std::max(outbox_hwm_max, s.outbox_hwm);
  }

  // Monitor pass: synthesize the protocol-level stream. Per-process delivery
  // order is preserved (each process's records are appended in its own
  // delivery order), which is all the acyclicity monitor reads.
  std::string monitor_verdict = "skipped";
  std::vector<std::string> violation_text;
  if (monitor) {
    if (interrupted) {
      monitor_verdict = "skipped_interrupted";
    } else if (!completed) {
      monitor_verdict = "skipped_incomplete_run";
    } else {
      gam::sim::MonitorConfig mc;
      mc.groups = logs.group_sets();
      mc.protocol_base = cfg.protocol_base;
      gam::sim::InvariantMonitors mons(mc);
      gam::sim::Time t = 0;
      for (int g = 0; g < a.groups; ++g) {
        const std::uint64_t k =
            drivers[static_cast<std::size_t>(g)]->submitted_count();
        for (std::uint64_t i = 0; i < k; ++i) {
          gam::sim::TraceEvent e;
          e.t = t++;
          e.p = leaders[static_cast<std::size_t>(g)];
          e.kind = gam::sim::TraceEventKind::kMulticast;
          e.protocol = gam::sim::raw(cfg.protocol_base + g);
          e.peer = e.p;
          e.arg = op_base(g) + static_cast<std::int64_t>(i);
          mons.on_event(e);
        }
      }
      // Interleave deliveries round-robin by position rather than feeding
      // whole per-process sequences back to back: per-process order (all the
      // monitors read) is identical either way, but back-to-back feeding
      // makes the acyclicity check walk a delivery-count-long edge chain per
      // event — quadratic, minutes at smoke-test volumes.
      std::size_t longest = 0;
      for (const auto& v : dels) longest = std::max(longest, v.size());
      for (std::size_t i = 0; i < longest; ++i) {
        for (ProcessId p = 0; p < n; ++p) {
          const auto& v = dels[static_cast<std::size_t>(p)];
          if (i >= v.size()) continue;
          const Delivery& d = v[i];
          gam::sim::TraceEvent e;
          e.t = t++;
          e.p = p;
          e.kind = gam::sim::TraceEventKind::kDeliver;
          e.protocol = gam::sim::raw(cfg.protocol_base + d.g);
          e.type = static_cast<std::int32_t>(d.seq);
          e.arg = d.op;
          mons.on_event(e);
        }
      }
      mons.finalize(true);
      if (mons.ok()) {
        monitor_verdict = "clean";
      } else {
        monitor_verdict =
            "violations:" + std::to_string(mons.violations().size());
        for (const auto& v : mons.violations())
          violation_text.push_back(gam::sim::format_violation(v));
      }
    }
  }

  // Failure evidence: dump the flight-recorder rings on any of the three
  // shutdown-with-a-problem paths (threads are joined; plain reads are safe).
  const bool floor_failed = !interrupted && a.min_rate > 0 && mps < a.min_rate;
  const bool monitor_tripped = monitor_verdict.rfind("violations", 0) == 0;
  std::string flight_path;
  if (flight && (interrupted || monitor_tripped || floor_failed)) {
    const std::string base = a.flight.empty() ? a.out : a.flight;
    flight_path = gam::net::flight_dump_path(base);
    if (!flight->dump(flight_path)) {
      std::fprintf(stderr, "cannot write flight dump %s\n",
                   flight_path.c_str());
      flight_path.clear();
    }
  }
  std::string span_path;
  if (!a.spans.empty()) {
    std::vector<gam::sim::SpanEvent> all_spans;
    for (auto& c : span_cols)
      all_spans.insert(all_spans.end(), c.events().begin(), c.events().end());
    std::stable_sort(all_spans.begin(), all_spans.end(),
                     [](const gam::sim::SpanEvent& x,
                        const gam::sim::SpanEvent& y) {
                       if (x.t != y.t) return x.t < y.t;
                       return x.p < y.p;
                     });
    if (gam::sim::write_spans(a.spans, all_spans, "ns")) span_path = a.spans;
  }

  std::FILE* f = std::fopen(a.out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", a.out.c_str());
    return 2;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"gam-net-bench v1\",\n");
  std::fprintf(f, "  \"git_rev\": \"%s\",\n", GAM_GIT_REV);
  std::fprintf(f, "  \"build_type\": \"%s\",\n", GAM_BUILD_TYPE);
  std::fprintf(f, "  \"sanitize\": \"%s\",\n", GAM_SANITIZE_STR);
  std::fprintf(f, "  \"backend\": \"%s\",\n", a.backend.c_str());
  std::fprintf(f, "  \"processes\": %d,\n", n);
  std::fprintf(f, "  \"groups\": %d,\n", a.groups);
  std::fprintf(f, "  \"group_size\": %d,\n", gs);
  std::fprintf(f, "  \"batch_k\": %d,\n", a.batch);
  std::fprintf(f, "  \"window_size\": %d,\n", a.window);
  std::fprintf(f, "  \"net_window\": %llu,\n",
               static_cast<unsigned long long>(a.net_window));
  std::fprintf(f, "  \"ring_bytes\": %llu,\n",
               static_cast<unsigned long long>(a.ring_bytes));
  std::fprintf(f, "  \"rate_target\": %.0f,\n", a.rate);
  std::fprintf(f, "  \"duration_ms\": %d,\n", a.duration_ms);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"completed_ok\": %s,\n", completed ? "true" : "false");
  std::fprintf(f, "  \"submitted\": %llu,\n",
               static_cast<unsigned long long>(submitted.load()));
  std::fprintf(f, "  \"completed_multicasts\": %llu,\n",
               static_cast<unsigned long long>(completed_mc));
  std::fprintf(f, "  \"deliveries\": %llu,\n",
               static_cast<unsigned long long>(dels_total));
  std::fprintf(f, "  \"elapsed_sec\": %.3f,\n", elapsed);
  std::fprintf(f, "  \"multicasts_per_sec\": %.0f,\n", mps);
  std::fprintf(f, "  \"total_actor_steps\": %llu,\n",
               static_cast<unsigned long long>(rt.total_steps()));
  std::fprintf(f, "  \"monitors\": \"%s\",\n", monitor_verdict.c_str());
  std::fprintf(f, "  \"interrupted\": %s,\n", interrupted ? "true" : "false");
  std::fprintf(f, "  \"idle_backoff_max_reached\": %llu,\n",
               static_cast<unsigned long long>(backoff_cap_total));
  std::fprintf(f, "  \"outbox_depth_hwm\": %llu,\n",
               static_cast<unsigned long long>(outbox_hwm_max));
  std::fprintf(f, "  \"flight_dump\": \"%s\",\n", flight_path.c_str());
  std::fprintf(f, "  \"spans\": \"%s\",\n", span_path.c_str());
  std::fprintf(f, "  \"latency_us\": {\n");
  for (int g = 0; g < a.groups; ++g) {
    const std::string key = "g" + std::to_string(g);
    json_hist(f, key.c_str(),
              drivers[static_cast<std::size_t>(g)]->latency_us(), false);
  }
  json_hist(f, "all", all, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"caveats\": \"thread-per-process on %u hardware thread(s); "
               "on an oversubscribed CI container throughput is "
               "scheduling-bound, see EXPERIMENTS.md\"\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("gam_loadgen: backend=%s n=%d groups=%d gs=%d batch=%d "
              "window=%d\n",
              a.backend.c_str(), n, a.groups, gs, a.batch, a.window);
  std::printf("  completed=%s multicasts=%llu elapsed=%.3fs rate=%.0f/s "
              "monitors=%s\n",
              completed ? "yes" : "TIMEOUT",
              static_cast<unsigned long long>(completed_mc), elapsed, mps,
              monitor_verdict.c_str());
  for (const auto& v : violation_text)
    std::printf("  VIOLATION %s\n", v.c_str());
  if (!flight_path.empty())
    std::printf("  flight recorder dumped to %s\n", flight_path.c_str());

  if (interrupted) {
    std::printf("  interrupted by signal %d; results flushed to %s\n",
                static_cast<int>(g_signal), a.out.c_str());
    return 130;
  }
  if (!completed) return 1;
  if (monitor && monitor_verdict != "clean") return 1;
  if (floor_failed) {
    std::printf("  FLOOR FAILED: %.0f < %.0f multicasts/sec\n", mps,
                a.min_rate);
    return 3;
  }
  return 0;
}

int record_run(const Args& a) {
  const int gs = a.processes / a.groups;
  gam::net::GroupLogsConfig cfg;
  cfg.groups = a.groups;
  cfg.group_size = gs;
  cfg.batch = a.batch;
  cfg.window = a.window;
  gam::net::GroupLogs logs(cfg);
  const int n = logs.process_count();

  // Record mode: a send must never fail (the World's cannot), so the window
  // is unthrottled and the rings are sized generously.
  gam::net::InProcTransport::Options iopt;
  iopt.ring_bytes = std::max<std::size_t>(a.ring_bytes, std::size_t{1} << 20);
  iopt.window = 0;
  gam::net::InProcTransport transport(n, iopt);
  gam::net::RuntimeOptions ropt;
  ropt.record = true;
  gam::net::Runtime rt(transport, ropt);

  // Plain counter: record-mode deliveries happen under the step mutex, and
  // done() is evaluated under it too.
  std::uint64_t delivered = 0;
  auto actors = logs.make_actors([&](ProcessId p, int g, std::int64_t op,
                                     std::int64_t seq) {
    ++delivered;
    rt.trace_deliver(p, logs.protocol(g), op, seq);
  });
  for (ProcessId p = 0; p < n; ++p)
    rt.install(p, std::move(actors[static_cast<std::size_t>(p)]));

  // --spans on a recorded run: the same flight-recorder sinks, but stamped
  // with the runtime's global step clock (every emission happens under the
  // step mutex, or at t=0 for the pre-run submissions), so the span file
  // lines up with the recorded trace.
  std::unique_ptr<gam::net::FlightRecorder> flight;
  std::vector<gam::sim::SpanCollector> span_cols;
  if (!a.spans.empty()) {
    flight = std::make_unique<gam::net::FlightRecorder>(
        n, a.flight_events > 0 ? a.flight_events : 4096,
        [&rt] { return static_cast<std::uint64_t>(rt.now()); });
    span_cols.resize(static_cast<std::size_t>(n));
    std::vector<gam::sim::SpanSink*> sinks;
    for (ProcessId p = 0; p < n; ++p) {
      flight->set_collector(p, &span_cols[static_cast<std::size_t>(p)]);
      sinks.push_back(flight->sink(p));
    }
    logs.set_span_sinks(sinks);
  }

  std::vector<std::pair<int, std::int64_t>> submissions;
  for (int g = 0; g < a.groups; ++g)
    for (int i = 0; i < a.ops; ++i)
      submissions.emplace_back(g, op_base(g) + i);
  for (const auto& [g, op] : submissions) logs.submit_at_leader(g, op);

  const std::uint64_t want = static_cast<std::uint64_t>(a.ops) *
                             static_cast<std::uint64_t>(a.groups) *
                             static_cast<std::uint64_t>(gs);
  const bool completed =
      rt.run([&] { return delivered == want; }, std::chrono::seconds(60));
  if (!completed) {
    std::fprintf(stderr, "record run timed out (%llu/%llu deliveries)\n",
                 static_cast<unsigned long long>(delivered),
                 static_cast<unsigned long long>(want));
    return 1;
  }

  const auto& live = rt.recorder().events();
  gam::sim::write_trace(a.trace_live, live);

  if (!a.spans.empty()) {
    std::vector<gam::sim::SpanEvent> all_spans;
    for (auto& c : span_cols)
      all_spans.insert(all_spans.end(), c.events().begin(), c.events().end());
    std::stable_sort(all_spans.begin(), all_spans.end(),
                     [](const gam::sim::SpanEvent& x,
                        const gam::sim::SpanEvent& y) {
                       if (x.t != y.t) return x.t < y.t;
                       return x.p < y.p;
                     });
    gam::sim::write_spans(a.spans, all_spans, "steps");
  }

  auto replay = gam::net::replay_in_simulator(cfg, submissions, live);
  gam::sim::write_trace(a.trace_replay, replay.events);

  const auto div = gam::sim::first_divergence(live, replay.events);
  std::printf("gam_loadgen --record: n=%d groups=%d ops/group=%d "
              "live_events=%zu replay_events=%zu hash=%016llx\n",
              n, a.groups, a.ops, live.size(), replay.events.size(),
              static_cast<unsigned long long>(rt.recorder().hash()));
  if (div.has_value()) {
    std::printf("  DIVERGENCE at event %zu\n", *div);
    const auto show = [&](const char* which,
                          const std::vector<gam::sim::TraceEvent>& ev) {
      if (*div < ev.size())
        std::printf("    %s: %s\n", which,
                    gam::sim::format_event(ev[*div]).c_str());
      else
        std::printf("    %s: <stream ended>\n", which);
    };
    show("live  ", live);
    show("replay", replay.events);
    return 1;
  }
  std::printf("  replay matches live run event for event (%zu events)\n",
              live.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.record) return record_run(args);
  return free_run(args);
}
