// trace_diff: localize the first divergent event between two recorded runs.
//
// The determinism gate (bench_sweep) and the trace self-check (scripts/
// tier1.sh) reduce a whole run to one hash; when hashes disagree this tool
// answers *where*. It compares two trace files event by event (format:
// sim/trace.hpp, produced by --trace=PATH or a RecorderSink) and prints the
// first divergent event with a window of surrounding context, or verifies a
// single trace against a reference hash.
//
// Usage:
//   trace_diff A.trace B.trace [--window=N] [--quiet]
//   trace_diff A.trace --expect-hash=HEX [--quiet]
//
// Exit codes (stable, scripts gate on them): 0 identical / hash matches,
// 1 divergence / hash mismatch, 2 usage or I/O error. --quiet suppresses
// the report on stdout (I/O errors still print to stderr) — for scripts
// that only branch on the exit code.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s A.trace B.trace [--window=N] [--quiet]\n"
               "       %s A.trace --expect-hash=HEX [--quiet]\n"
               "exit codes: 0 identical/hash match, 1 divergence, "
               "2 usage or I/O error\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string expect_hash;
  std::size_t window = 5;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--window=", 0) == 0) {
      int w = std::atoi(a.c_str() + 9);
      if (w < 1) return usage(argv[0]);
      window = static_cast<std::size_t>(w);
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a.rfind("--expect-hash=", 0) == 0) {
      expect_hash = a.substr(14);
    } else if (!a.empty() && a[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }

  if (files.size() == 1 && !expect_hash.empty()) {
    auto events = gam::sim::load_trace(files[0]);
    if (!events) {
      std::fprintf(stderr, "failed to load %s\n", files[0].c_str());
      return 2;
    }
    std::uint64_t want = std::strtoull(expect_hash.c_str(), nullptr, 16);
    std::uint64_t got = gam::sim::hash_events(*events);
    if (got == want) {
      if (!quiet)
        std::printf("hash matches: %016llx (%zu events)\n",
                    static_cast<unsigned long long>(got), events->size());
      return 0;
    }
    if (!quiet)
      std::printf("hash MISMATCH: trace %016llx vs expected %016llx "
                  "(%zu events)\n"
                  "(a reference hash cannot localize the divergence — record "
                  "the reference run with --trace and diff the two files)\n",
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want), events->size());
    return 1;
  }

  if (files.size() != 2 || !expect_hash.empty()) return usage(argv[0]);

  auto a = gam::sim::load_trace(files[0]);
  auto b = gam::sim::load_trace(files[1]);
  if (!a || !b) {
    std::fprintf(stderr, "failed to load %s\n",
                 (!a ? files[0] : files[1]).c_str());
    return 2;
  }

  auto div = gam::sim::first_divergence(*a, *b);
  if (!div) {
    if (!quiet)
      std::printf("identical: %zu events, hash %016llx\n", a->size(),
                  static_cast<unsigned long long>(gam::sim::hash_events(*a)));
    return 0;
  }
  if (!quiet)
    std::printf("A: %s\nB: %s\n%s", files[0].c_str(), files[1].c_str(),
                gam::sim::render_divergence(*a, *b, *div, window).c_str());
  return 1;
}
