// Pretty-prints one gam-metrics-v1 run report, or diffs two.
//
//   metrics_report REPORT.json
//   metrics_report --diff A.json B.json [--threshold=R] [--quiet]
//
// Diff exit codes follow trace_diff's convention so scripts can gate on the
// result: 0 = no differences beyond the threshold, 1 = differences found,
// 2 = usage or I/O error. --threshold sets the relative-change cutoff for
// changed series (default 0.05; new/removed series always count).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/metrics.hpp"

namespace {

using gam::sim::Histogram;
using gam::sim::Metrics;
using gam::sim::MetricsReport;
using gam::sim::SeriesDelta;

int usage() {
  std::fprintf(stderr,
               "usage: metrics_report REPORT.json\n"
               "       metrics_report --diff A.json B.json [--threshold=R] "
               "[--quiet]\n");
  return 2;
}

std::string series_label(const Metrics::Key& k) {
  return k.label.empty() ? k.name : k.name + "{" + k.label + "}";
}

void print_report(const MetricsReport& rep) {
  std::printf("schema: %s\n", MetricsReport::kSchema);
  for (const auto& [k, v] : rep.meta)
    std::printf("%s: %s\n", k.c_str(), v.c_str());
  for (const auto& [name, m] : rep.configs) {
    std::printf("\n[%s]\n", name.c_str());
    for (const auto& [k, c] : m.counters())
      std::printf("  counter    %-40s %llu\n", series_label(k).c_str(),
                  static_cast<unsigned long long>(c.value));
    for (const auto& [k, g] : m.gauges())
      std::printf("  gauge      %-40s %lld (hwm %lld)\n",
                  series_label(k).c_str(), static_cast<long long>(g.value),
                  static_cast<long long>(g.hwm));
    for (const auto& [k, h] : m.histograms())
      std::printf(
          "  histogram  %-40s n=%llu mean=%.1f p50=%llu p90=%llu p99=%llu "
          "max=%llu\n",
          series_label(k).c_str(), static_cast<unsigned long long>(h.count),
          h.mean(), static_cast<unsigned long long>(h.quantile_interp(0.5)),
          static_cast<unsigned long long>(h.quantile_interp(0.9)),
          static_cast<unsigned long long>(h.quantile_interp(0.99)),
          static_cast<unsigned long long>(h.max));
  }
}

const char* kind_name(SeriesDelta::Kind k) {
  switch (k) {
    case SeriesDelta::kNew: return "new";
    case SeriesDelta::kRemoved: return "removed";
    case SeriesDelta::kChanged: return "changed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0) {
    double threshold = 0.05;
    bool quiet = false;
    const char* paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
        char* end = nullptr;
        threshold = std::strtod(argv[i] + 12, &end);
        if (end == argv[i] + 12 || *end != '\0' || threshold < 0)
          return usage();
      } else if (std::strcmp(argv[i], "--quiet") == 0) {
        quiet = true;
      } else if (npaths < 2) {
        paths[npaths++] = argv[i];
      } else {
        return usage();
      }
    }
    if (npaths != 2) return usage();
    auto a = MetricsReport::load(paths[0]);
    auto b = MetricsReport::load(paths[1]);
    if (!a || !b) {
      std::fprintf(stderr, "metrics_report: cannot load %s\n",
                   !a ? paths[0] : paths[1]);
      return 2;
    }
    auto deltas = gam::sim::diff_reports(*a, *b, threshold);
    if (!quiet) {
      for (const auto& d : deltas) {
        if (d.kind == SeriesDelta::kChanged)
          std::printf("%-8s %s :: %s  %.6g -> %.6g  (%+.1f%%)\n",
                      kind_name(d.kind), d.config.c_str(), d.series.c_str(),
                      d.before, d.after, 100.0 * (d.after - d.before) /
                                             (d.before != 0 ? d.before : 1));
        else
          std::printf("%-8s %s :: %s\n", kind_name(d.kind), d.config.c_str(),
                      d.series.c_str());
      }
      std::printf("%zu difference(s) beyond threshold %.3g\n", deltas.size(),
                  threshold);
    }
    return deltas.empty() ? 0 : 1;
  }

  if (argc != 2 || argv[1][0] == '-') return usage();
  auto rep = MetricsReport::load(argv[1]);
  if (!rep) {
    std::fprintf(stderr, "metrics_report: cannot load %s\n", argv[1]);
    return 2;
  }
  print_report(*rep);
  return 0;
}
