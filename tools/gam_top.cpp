// Live terminal view of a gam_loadgen run.
//
//   gam_top STATS_FILE [--interval-ms=N] [--once]
//
// STATS_FILE is the --stats-out file gam_loadgen appends snapshot blocks to:
//
//   S <snap> <elapsed_ms> <submitted> <delivered_mc> <rate> <inflight>
//   P <pid> <steps> <outbox> <outbox_hwm> <backoff_us> <cap_hits>   (per pid)
//   E <snap>
//
// gam_top re-reads the file each interval, takes the LAST complete block (an
// S line whose matching E line made it to disk — fflush makes blocks atomic
// units), and renders it as a refreshing table. --once prints the table a
// single time without ANSI refresh codes, which is what the tier-1 smoke
// check uses. Exit codes: 0 ok, 1 no complete snapshot in the file, 2 usage.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

namespace {

struct ProcRow {
  int pid = 0;
  std::uint64_t steps = 0, outbox = 0, hwm = 0, backoff_us = 0, cap_hits = 0;
};

struct Snapshot {
  std::uint64_t snap = 0, elapsed_ms = 0, submitted = 0, delivered_mc = 0;
  double rate = 0;
  std::uint64_t inflight = 0;
  std::vector<ProcRow> procs;
};

int usage() {
  std::fprintf(stderr,
               "usage: gam_top STATS_FILE [--interval-ms=N] [--once]\n");
  return 2;
}

// Parse the last complete S..E block. Blocks are flushed whole, but the
// reader may still race a partially written tail — requiring the matching E
// line makes a torn tail invisible.
bool last_snapshot(const char* path, Snapshot* out) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return false;
  Snapshot cur, best;
  bool in_block = false, have = false;
  char line[256];
  while (std::fgets(line, sizeof line, f)) {
    if (line[0] == 'S') {
      cur = Snapshot{};
      in_block =
          std::sscanf(line, "S %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                            " %lf %" SCNu64,
                      &cur.snap, &cur.elapsed_ms, &cur.submitted,
                      &cur.delivered_mc, &cur.rate, &cur.inflight) == 6;
    } else if (line[0] == 'P' && in_block) {
      ProcRow r;
      if (std::sscanf(line, "P %d %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                            " %" SCNu64,
                      &r.pid, &r.steps, &r.outbox, &r.hwm, &r.backoff_us,
                      &r.cap_hits) == 6)
        cur.procs.push_back(r);
    } else if (line[0] == 'E' && in_block) {
      std::uint64_t snap = 0;
      if (std::sscanf(line, "E %" SCNu64, &snap) == 1 && snap == cur.snap) {
        best = cur;
        have = true;
      }
      in_block = false;
    }
  }
  std::fclose(f);
  if (have) *out = best;
  return have;
}

void render(const Snapshot& s) {
  std::printf("gam_top  snapshot #%" PRIu64 "  t=%.1fs\n", s.snap,
              static_cast<double>(s.elapsed_ms) / 1000.0);
  std::printf("rate=%.0f mc/s  submitted=%" PRIu64 "  delivered=%" PRIu64
              " mc  inflight=%" PRIu64 " deliveries\n\n",
              s.rate, s.submitted, s.delivered_mc, s.inflight);
  std::printf("  %4s %12s %8s %8s %11s %9s\n", "pid", "steps", "outbox",
              "hwm", "backoff_us", "cap_hits");
  for (const auto& r : s.procs)
    std::printf("  %4d %12" PRIu64 " %8" PRIu64 " %8" PRIu64 " %11" PRIu64
                " %9" PRIu64 "\n",
                r.pid, r.steps, r.outbox, r.hwm, r.backoff_us, r.cap_hits);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  int interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--interval-ms=", 14) == 0) {
      interval_ms = std::atoi(argv[i] + 14);
      if (interval_ms <= 0) return usage();
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (!path && argv[i][0] != '-') {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  if (once) {
    Snapshot s;
    if (!last_snapshot(path, &s)) {
      std::fprintf(stderr, "gam_top: no complete snapshot in %s\n", path);
      return 1;
    }
    render(s);
    return 0;
  }

  std::uint64_t shown = ~std::uint64_t{0};
  for (;;) {
    Snapshot s;
    if (last_snapshot(path, &s) && s.snap != shown) {
      std::printf("\x1b[H\x1b[2J");  // cursor home + clear screen
      render(s);
      std::fflush(stdout);
      shown = s.snap;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
