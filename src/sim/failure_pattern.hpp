// Failure patterns and environments (paper, Appendix A).
//
// A failure pattern is a function F : N -> 2^P with F(t) ⊆ F(t+1): the set of
// processes that have crashed by time t. Crash-stop, no recovery. An
// environment is a set of failure patterns; we represent environments
// intensionally as generators (all patterns with at most f failures, etc.).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/contracts.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::sim {

using Time = std::uint64_t;
inline constexpr Time kNever = std::numeric_limits<Time>::max();

class FailurePattern {
 public:
  // A pattern over n processes where nobody crashes.
  explicit FailurePattern(int n) : crash_time_(static_cast<size_t>(n), kNever) {
    GAM_EXPECTS(n > 0 && n <= ProcessSet::kMaxProcesses);
  }

  int process_count() const { return static_cast<int>(crash_time_.size()); }

  // Schedule p to crash at time t (inclusive: p takes no step at or after t).
  void crash_at(ProcessId p, Time t) {
    GAM_EXPECTS(valid(p));
    crash_time_[static_cast<size_t>(p)] = t;
  }

  Time crash_time(ProcessId p) const {
    GAM_EXPECTS(valid(p));
    return crash_time_[static_cast<size_t>(p)];
  }

  bool crashed(ProcessId p, Time t) const {
    GAM_EXPECTS(valid(p));
    return t >= crash_time_[static_cast<size_t>(p)];
  }

  bool alive(ProcessId p, Time t) const { return !crashed(p, t); }

  // F(t): the processes crashed by time t.
  ProcessSet failed_at(Time t) const {
    ProcessSet s;
    for (int p = 0; p < process_count(); ++p)
      if (crashed(p, t)) s.insert(p);
    return s;
  }

  ProcessSet alive_at(Time t) const {
    return ProcessSet::universe(process_count()) - failed_at(t);
  }

  bool faulty(ProcessId p) const {
    return crash_time_[static_cast<size_t>(p)] != kNever;
  }

  bool correct(ProcessId p) const { return !faulty(p); }

  // Faulty(F) = ∪_t F(t).
  ProcessSet faulty_set() const {
    ProcessSet s;
    for (int p = 0; p < process_count(); ++p)
      if (faulty(p)) s.insert(p);
    return s;
  }

  // Correct(F) = P \ Faulty(F).
  ProcessSet correct_set() const {
    return ProcessSet::universe(process_count()) - faulty_set();
  }

  // True when the whole set P has crashed by time t ("P is faulty at t").
  bool set_faulty_at(ProcessSet set, Time t) const {
    for (ProcessId p : set)
      if (alive(p, t)) return false;
    return !set.empty();
  }

  // True when every member of `set` eventually crashes.
  bool set_faulty(ProcessSet set) const {
    return !set.empty() && set.subset_of(faulty_set());
  }

  // The earliest time at which the whole of `set` has crashed, or kNever.
  Time set_crash_time(ProcessSet set) const {
    if (!set_faulty(set)) return kNever;
    Time t = 0;
    for (ProcessId p : set) t = std::max(t, crash_time(p));
    return t;
  }

 private:
  bool valid(ProcessId p) const {
    return p >= 0 && p < process_count();
  }

  std::vector<Time> crash_time_;
};

// Generators for the environments the paper's theorems quantify over. The
// necessity results assume that "if a process may fail, it may fail at any
// time"; random sampling of crash times over a horizon approximates that
// quantification in tests and benches.
struct EnvironmentSampler {
  int process_count = 0;
  int max_failures = 0;     // |Faulty(F)| <= max_failures
  Time horizon = 1000;      // crash times are drawn from [0, horizon)
  ProcessSet failure_prone; // only these processes may crash (default: all)

  FailurePattern sample(Rng& rng) const {
    GAM_EXPECTS(process_count > 0);
    FailurePattern f(process_count);
    ProcessSet prone = failure_prone.empty()
                           ? ProcessSet::universe(process_count)
                           : failure_prone;
    std::vector<ProcessId> candidates(prone.begin(), prone.end());
    // Fisher-Yates prefix shuffle to pick the victims.
    int victims = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(
                      std::min<int>(max_failures,
                                    static_cast<int>(candidates.size()))) +
                  1));
    for (int i = 0; i < victims; ++i) {
      auto j = i + static_cast<int>(rng.below(candidates.size() - static_cast<size_t>(i)));
      std::swap(candidates[static_cast<size_t>(i)], candidates[static_cast<size_t>(j)]);
      f.crash_at(candidates[static_cast<size_t>(i)],
                 static_cast<Time>(rng.below(horizon)));
    }
    return f;
  }
};

}  // namespace gam::sim
