// The runtime-independent actor surface.
//
// Protocol code (the message-passing object constructions, the baselines,
// anything hosted by objects/protocol_host.hpp) is written against exactly
// three capabilities: send a message, send to a set, and record a
// failure-detector query. Context is that surface as an abstract class; the
// deterministic simulator (sim/world.hpp, WorldContext) and the live
// networked runtime (net/runtime.hpp, net::Runtime's context) both implement
// it, so one Actor implementation drives both without recompilation or
// adapters. The virtual hop costs one indirect call per send — noise next to
// the buffer/ring work behind it (the tier-1 overhead gates watch this).
#pragma once

#include "sim/failure_pattern.hpp"
#include "sim/ids.hpp"
#include "sim/message.hpp"
#include "util/process_set.hpp"

namespace gam::sim {

// The face a process sees during one of its steps.
class Context {
 public:
  Context(ProcessId self, Time now) : self_(self), now_(now) {}
  virtual ~Context() = default;

  ProcessId self() const { return self_; }
  Time now() const { return now_; }

  virtual void send(ProcessId dst, ProtocolId protocol, MsgType type,
                    Payload data = {}) = 0;
  virtual void send_to_set(ProcessSet dst, ProtocolId protocol, MsgType type,
                           Payload data = {}) = 0;

  // Records a failure-detector module read as a trace event and bumps the
  // per-class fd_query metrics counter. A no-op without an attached sink.
  virtual void trace_fd_query(ProtocolId protocol, DetectorClass detector) = 0;

 private:
  ProcessId self_;
  Time now_;
};

// A deterministic automaton. `on_step` is invoked with the received message
// (nullptr encodes the null message m_⊥). `wants_step` lets the hosting
// runtime detect quiescence: a process that has no pending message and does
// not want a step is skipped, and a run ends when that holds system-wide.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_step(Context& ctx, const Message* m) = 0;
  virtual bool wants_step() const { return false; }
};

}  // namespace gam::sim
