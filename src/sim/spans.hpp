// Causal span tracing: per-multicast lifecycle events for latency attribution.
//
// The trace layer (sim/trace.hpp) answers "did two runs execute identically";
// this layer answers "where did multicast m spend its time". Every protocol
// layer that touches a multicast emits a typed span event keyed by the
// multicast id — submit, log_enter(g,h), paxos_round(instance, ballot),
// locked, deliverable, delivered(p) — and the net runtime adds the wire-level
// events enqueue / wire_out / wire_in keyed by the wire message id. A post-run
// tool (tools/span_report) folds the stream into one timeline per multicast
// and attributes the end-to-end latency to the phases between milestones.
//
// Clock domains: the simulator stamps events with simulated steps
// (deterministic, byte-reproducible seed for seed); the live net runtime
// stamps them at the sink with a wall-clock offset from one shared run epoch
// (src/net/flight_recorder.hpp). The file header records which
// (`clock=steps` / `clock=ns`), and the report is domain-agnostic — phases
// are differences between milestones of one multicast, never comparisons
// across files.
//
// Cost model mirrors the metrics probes: every emission site is wrapped in
// GAM_METRICS_PROBE (vanishes under GAM_METRICS=OFF) and guarded by an
// `if (sink)` null check, so an unattached run pays one predictable branch
// per site. Emission never reads protocol RNG state or feeds back into
// guards, so span-instrumented runs stay trace-identical to bare ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::sim {

enum class SpanKind : std::uint8_t {
  kSubmit = 0,       // m handed to the protocol             (a=dst group)
  kLogEnter = 1,     // m entered LOG_{g,h}                  (a=g, b=h)
  kPaxosRound = 2,   // a consensus round proposed for m     (a=instance, b=ballot)
  kLocked = 3,       // m's position fixed (commit)          (a=position)
  kDeliverable = 4,  // m stable at p, predecessors announced (a=dst group)
  kDelivered = 5,    // m delivered at p                     (a=dst group, b=seq)
  kEnqueue = 6,      // net: frame parked in src's outbox    (m=wire id, a=dst)
  kWireOut = 7,      // net: frame pushed into the transport (m=wire id, a=dst)
  kWireIn = 8,       // net: frame polled out at dst         (m=wire id, a=src)
};

inline const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kSubmit: return "submit";
    case SpanKind::kLogEnter: return "log-enter";
    case SpanKind::kPaxosRound: return "paxos-round";
    case SpanKind::kLocked: return "locked";
    case SpanKind::kDeliverable: return "deliverable";
    case SpanKind::kDelivered: return "delivered";
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kWireOut: return "wire-out";
    case SpanKind::kWireIn: return "wire-in";
  }
  return "?";
}

inline std::optional<SpanKind> span_kind_from(const char* name) {
  for (auto k :
       {SpanKind::kSubmit, SpanKind::kLogEnter, SpanKind::kPaxosRound,
        SpanKind::kLocked, SpanKind::kDeliverable, SpanKind::kDelivered,
        SpanKind::kEnqueue, SpanKind::kWireOut, SpanKind::kWireIn})
    if (std::strcmp(name, span_kind_name(k)) == 0) return k;
  return std::nullopt;
}

// One flat record. `m` is the multicast id for protocol kinds and the wire
// message id for the net kinds; `a`/`b` per the enum comments.
struct SpanEvent {
  std::uint64_t t = 0;  // steps (simulator) or ns since run epoch (live)
  ProcessId p = -1;
  SpanKind kind = SpanKind::kSubmit;
  std::int64_t m = -1;
  std::int64_t a = 0;
  std::int64_t b = 0;

  bool operator==(const SpanEvent&) const = default;
};

class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const SpanEvent& e) = 0;
};

// Full in-memory capture; single-owner (one thread, or externally serialized).
class SpanCollector final : public SpanSink {
 public:
  void on_span(const SpanEvent& e) override { events_.push_back(e); }
  const std::vector<SpanEvent>& events() const { return events_; }
  std::vector<SpanEvent>& events() { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<SpanEvent> events_;
};

// Fans one emission out to up to two sinks (flight-recorder ring plus a full
// collector). Either slot may be null.
class TeeSpanSink final : public SpanSink {
 public:
  TeeSpanSink(SpanSink* a, SpanSink* b) : a_(a), b_(b) {}
  void on_span(const SpanEvent& e) override {
    if (a_) a_->on_span(e);
    if (b_) b_->on_span(e);
  }

 private:
  SpanSink* a_;
  SpanSink* b_;
};

// ---------------------------------------------------------------------------
// Serialization: `# gam-spans v1 clock=<steps|ns> events=N`, then one event
// per line in field order `t p kind m a b`. Stable ordering in = stable bytes
// out, which is what the tier-1 span self-check compares.

inline std::string serialize_span(const SpanEvent& e) {
  char line[160];
  std::snprintf(line, sizeof line, "%llu %d %s %lld %lld %lld",
                static_cast<unsigned long long>(e.t), e.p,
                span_kind_name(e.kind), static_cast<long long>(e.m),
                static_cast<long long>(e.a), static_cast<long long>(e.b));
  return line;
}

inline bool write_spans(const std::string& path,
                        const std::vector<SpanEvent>& events,
                        const char* clock = "steps") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "# gam-spans v1 clock=%s events=%zu\n", clock, events.size());
  for (const SpanEvent& e : events)
    std::fprintf(f, "%s\n", serialize_span(e).c_str());
  std::fclose(f);
  return true;
}

struct SpanFile {
  std::string clock;  // "steps" or "ns"
  std::vector<SpanEvent> events;
};

inline std::optional<SpanFile> load_spans(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return std::nullopt;
  char line[256];
  SpanFile out;
  char clock[32] = "steps";
  if (!std::fgets(line, sizeof line, f) ||
      std::sscanf(line, "# gam-spans v1 clock=%31s", clock) != 1) {
    std::fclose(f);
    return std::nullopt;
  }
  out.clock = clock;
  // The header also carries events=N; drop the suffix sscanf left attached.
  if (auto sp = out.clock.find(' '); sp != std::string::npos)
    out.clock.resize(sp);
  while (std::fgets(line, sizeof line, f)) {
    if (line[0] == '\n' || line[0] == '#') continue;
    unsigned long long t = 0;
    long long m = 0, a = 0, b = 0;
    int p = 0;
    char kind[32];
    if (std::sscanf(line, "%llu %d %31s %lld %lld %lld", &t, &p, kind, &m, &a,
                    &b) != 6) {
      std::fclose(f);
      return std::nullopt;
    }
    auto k = span_kind_from(kind);
    if (!k) {
      std::fclose(f);
      return std::nullopt;
    }
    out.events.push_back({static_cast<std::uint64_t>(t), p, *k,
                          static_cast<std::int64_t>(m),
                          static_cast<std::int64_t>(a),
                          static_cast<std::int64_t>(b)});
  }
  std::fclose(f);
  return out;
}

// ---------------------------------------------------------------------------
// Timeline reconstruction and critical-path attribution — shared by
// tools/span_report and the unit tests so both agree on phase semantics.
//
// Milestones of one delivery (p, m), in causal order:
//
//   submit        the submitter queued m
//   enter         m first entered any log / consensus round (the protocol
//                 started working on it; equals the multicast-action instant
//                 for Algorithm 1, the first paxos_round for UniversalLog)
//   locked(p)     p fixed m's global position (commit)
//   deliverable(p) m became stable at p (all predecessor announcements in)
//   delivered(p)  p delivered m
//
// A phase is the gap between two adjacent milestones *present in the stream*;
// its name is "<from>-><to>". The phases of one delivery telescope: they sum
// exactly to delivered - first milestone, so summing the "enter->..."-onward
// phases reproduces the deliver_latency histogram of sim/metrics.hpp (which
// records delivered - multicast instant) — the tier-1 cross-check.

struct SpanDelivery {
  std::int64_t m = -1;
  ProcessId p = -1;
  std::uint64_t t_delivered = 0;
  bool complete = false;  // had an enter milestone (not an orphan)
};

struct SpanReportData {
  std::string clock;
  std::uint64_t multicasts = 0;   // distinct m with any protocol event
  std::uint64_t deliveries = 0;   // kDelivered events
  std::uint64_t orphans = 0;      // deliveries with no submit/enter milestone
  std::uint64_t nonmonotonic = 0; // milestone pairs out of causal order
  // Phase name -> per-delivery durations, in input-stream delivery order.
  std::map<std::string, std::vector<std::uint64_t>> phases;
  // Sum over deliveries of (delivered - enter): comparable to the
  // deliver_latency histogram sum (same definition, simulated steps).
  std::uint64_t deliver_latency_sum = 0;
  std::uint64_t deliver_latency_count = 0;
  std::vector<SpanDelivery> per_delivery;
  // Wire-level pairings (net runtime only).
  std::vector<std::uint64_t> outbox_wait;  // enqueue -> wire_out
  std::vector<std::uint64_t> wire_flight;  // wire_out -> wire_in
  std::uint64_t wire_frames = 0;  // distinct wire ids seen on the send side
};

// Exact q-quantile of a sample set (nearest-rank). Sorts a copy; report-time
// only, never on a hot path.
inline std::uint64_t span_quantile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double rank = q * static_cast<double>(v.size());
  auto idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx == 0) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

inline SpanReportData build_span_report(const SpanFile& file) {
  SpanReportData out;
  out.clock = file.clock;

  struct PerMulticast {
    std::uint64_t t_submit = 0;
    std::uint64_t t_enter = 0;
    bool has_submit = false;
    bool has_enter = false;
  };
  struct PerDeliverySite {
    std::uint64_t t_locked = 0;
    std::uint64_t t_deliverable = 0;
    bool has_locked = false;
    bool has_deliverable = false;
  };
  struct PerWire {
    std::uint64_t t_enqueue = 0;
    std::uint64_t t_out = 0;
    bool has_enqueue = false;
    bool has_out = false;
  };
  std::map<std::int64_t, PerMulticast> mc;
  std::map<std::pair<std::int64_t, ProcessId>, PerDeliverySite> site;
  std::map<std::int64_t, PerWire> wire;

  auto phase = [&](const char* name, std::uint64_t from, std::uint64_t to) {
    if (to < from) {
      ++out.nonmonotonic;
      to = from;
    }
    out.phases[name].push_back(to - from);
    return to - from;
  };

  for (const SpanEvent& e : file.events) {
    switch (e.kind) {
      case SpanKind::kSubmit: {
        auto& m = mc[e.m];
        if (!m.has_submit) {
          m.t_submit = e.t;
          m.has_submit = true;
        }
        break;
      }
      case SpanKind::kLogEnter:
      case SpanKind::kPaxosRound: {
        auto& m = mc[e.m];
        if (!m.has_enter || e.t < m.t_enter) {
          m.t_enter = e.t;
          m.has_enter = true;
        }
        break;
      }
      case SpanKind::kLocked: {
        auto& s = site[{e.m, e.p}];
        if (!s.has_locked) {
          s.t_locked = e.t;
          s.has_locked = true;
        }
        break;
      }
      case SpanKind::kDeliverable: {
        auto& s = site[{e.m, e.p}];
        if (!s.has_deliverable) {
          s.t_deliverable = e.t;
          s.has_deliverable = true;
        }
        break;
      }
      case SpanKind::kDelivered: {
        ++out.deliveries;
        SpanDelivery d;
        d.m = e.m;
        d.p = e.p;
        d.t_delivered = e.t;
        auto mi = mc.find(e.m);
        const bool has_enter = mi != mc.end() && mi->second.has_enter;
        const bool has_submit = mi != mc.end() && mi->second.has_submit;
        if (!has_enter && !has_submit) {
          ++out.orphans;
          out.per_delivery.push_back(d);
          break;
        }
        d.complete = has_enter || has_submit;
        // Walk the milestone chain in causal order, emitting a phase per
        // adjacent present pair.
        std::uint64_t cur = 0;
        const char* cur_name = nullptr;
        if (has_submit) {
          cur = mi->second.t_submit;
          cur_name = "submit";
        }
        if (has_enter) {
          if (cur_name) phase("submit->enter", cur, mi->second.t_enter);
          cur = mi->second.t_enter;
          cur_name = "enter";
        }
        auto si = site.find({e.m, e.p});
        if (si != site.end() && si->second.has_locked) {
          std::string name = std::string(cur_name) + "->locked";
          phase(name.c_str(), cur, si->second.t_locked);
          cur = si->second.t_locked;
          cur_name = "locked";
        }
        if (si != site.end() && si->second.has_deliverable) {
          std::string name = std::string(cur_name) + "->deliverable";
          phase(name.c_str(), cur, si->second.t_deliverable);
          cur = si->second.t_deliverable;
          cur_name = "deliverable";
        }
        {
          std::string name = std::string(cur_name) + "->delivered";
          phase(name.c_str(), cur, e.t);
        }
        if (has_enter && e.t >= mi->second.t_enter) {
          out.deliver_latency_sum += e.t - mi->second.t_enter;
          ++out.deliver_latency_count;
        }
        out.per_delivery.push_back(d);
        break;
      }
      case SpanKind::kEnqueue: {
        auto& w = wire[e.m];
        if (!w.has_enqueue) {
          w.t_enqueue = e.t;
          w.has_enqueue = true;
        }
        break;
      }
      case SpanKind::kWireOut: {
        auto& w = wire[e.m];
        w.t_out = e.t;
        w.has_out = true;
        if (w.has_enqueue)
          out.outbox_wait.push_back(e.t >= w.t_enqueue ? e.t - w.t_enqueue : 0);
        break;
      }
      case SpanKind::kWireIn: {
        auto wi = wire.find(e.m);
        if (wi != wire.end() && wi->second.has_out)
          out.wire_flight.push_back(
              e.t >= wi->second.t_out ? e.t - wi->second.t_out : 0);
        break;
      }
    }
  }
  out.multicasts = mc.size();
  out.wire_frames = wire.size();
  return out;
}

}  // namespace gam::sim
