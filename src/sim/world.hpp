// The simulation world: processes as deterministic automata taking
// asynchronous steps against a message buffer and a failure pattern
// (paper, Appendix A).
//
// A step of process p consists of (1) receiving one message addressed to p or
// the null message, (2) querying its failure-detector modules, (3) a local
// state change, and (4) sending messages. The world serializes steps on a
// global clock that the processes themselves cannot read; failure-detector
// oracles (src/fd) read it to produce histories consistent with the failure
// pattern.
//
// Scheduling is incremental: instead of rescanning all P processes every
// round, the world keeps the runnable candidates as a bitmask — the buffer
// maintains the set of destinations with pending messages, and the world
// tracks a wants-step bit per actor, refreshed whenever that actor steps.
// A round hands the candidates to the attached Scheduler strategy (uniform-
// random by default; adversarial strategies in sim/adversary.hpp) and walks
// the planned attempt order, so its cost is O(runnable).
// The wants bits are a conservative cache (an actor's wants_step only changes
// during its own step or between runs); quiescence is still decided by the
// authoritative full scan `any_runnable()`, so exotic couplings cannot make
// the world stop early.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "sim/actor.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/ids.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::sim {

class World;
class Scenario;

// The World-backed implementation of the abstract Context surface
// (sim/actor.hpp): sends go through the simulated message buffer, queries
// through the world's trace/metrics plumbing. Constructed on the stack for
// the duration of one step.
class WorldContext final : public Context {
 public:
  WorldContext(World& world, ProcessId self, Time now)
      : Context(self, now), world_(world) {}

  void send(ProcessId dst, ProtocolId protocol, MsgType type,
            Payload data = {}) override;
  void send_to_set(ProcessSet dst, ProtocolId protocol, MsgType type,
                   Payload data = {}) override;
  void trace_fd_query(ProtocolId protocol, DetectorClass detector) override;

 private:
  World& world_;
};

// ---------------------------------------------------------------------------
// Scheduling strategies. The world asks its scheduler, once per round, for an
// attempt order over the runnable candidates; the scheduler learns which
// attempts actually fired. Concrete adversarial strategies (PCT, replay,
// quorum-edge) live in sim/adversary.hpp — only the uniform-random default
// is defined here because the world owns one lazily.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Called at the start of every run; strategies that set up per-run state
  // (PCT priorities) initialize on the first call and ignore repeats.
  virtual void begin(int process_count) { (void)process_count; }

  // Appends the round's attempt order to `out` (which arrives cleared). The
  // strategy may order any subset or superset of `candidates`; the world
  // skips attempts that cannot fire (crashed, stale, out of range).
  virtual void plan(ProcessSet candidates, std::vector<ProcessId>& out) = 0;

  // Attempt `p` executed as the `step_index`-th fired step of this run.
  virtual void fired(ProcessId p, std::uint64_t step_index) {
    (void)p, (void)step_index;
  }

  // True to end the round after the first fired step (priority schedulers
  // re-plan after every step; batch schedulers walk the whole order).
  virtual bool single_step() const { return false; }

  // True once the strategy has no further attempts to offer (replay ran off
  // the end of its script). The world then decides quiescence immediately.
  virtual bool exhausted() const { return false; }

  // Drivers with an idle-tick notion (MuMulticast::run_with advancing the
  // clock toward FD stabilization) poll this each round; a replay consumes
  // a recorded idle tick here. The World itself never idles, so it ignores
  // this hook.
  virtual bool take_idle_tick() { return false; }
};

// Seed derivation for schedulers: the world's rng_ feeds ONLY message-buffer
// receives; every scheduler owns a private stream forked from the run seed
// with this salt, so recording and replaying a schedule leaves the receive
// stream untouched (byte-identical traces under replay).
inline constexpr std::uint64_t kSchedulerSeedSalt = 0x5ced5a1753c8edULL;

// The historical strategy: Fisher-Yates over the runnable candidates.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  void plan(ProcessSet candidates, std::vector<ProcessId>& out) override {
    for (ProcessId p : candidates) out.push_back(p);
    for (std::size_t i = out.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(rng_.below(i));
      std::swap(out[i - 1], out[j]);
    }
  }

 private:
  Rng rng_;
};

// Mid-run crash injection: ticked once per scheduling round, before the
// candidate set is computed, with the count of steps executed so far. An
// injector may call world.mutable_pattern().crash_at(...) to crash processes
// at the current time. NOTE: failure-detector oracles bind the pattern they
// were constructed on; layers that precompute FD transition times (MuMulticast)
// must see crashes in the pattern at construction, so dynamic injection is
// sound only for plain-World runs (see DESIGN.md, decision 11).
class CrashInjector {
 public:
  virtual ~CrashInjector() = default;
  virtual void tick(World& world, std::uint64_t steps_executed) = 0;
};

struct StepStats {
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
};

class World : private BufferObserver {
 public:
  // The buffer holds a pointer back to this world (wire accounting/tracing).
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int process_count() const { return pattern_.process_count(); }
  const FailurePattern& pattern() const { return pattern_; }
  // Mutable pattern access for mid-run crash injection. Crashes only — a
  // CrashInjector may move a crash time up to "now", never resurrect.
  FailurePattern& mutable_pattern() { return pattern_; }
  std::uint64_t seed() const { return seed_; }
  Time now() const { return now_; }

  // Plugs a scheduling strategy in (non-owning; must outlive the runs it
  // schedules). nullptr restores the built-in uniform-random default.
  void set_scheduler(Scheduler* s) { scheduler_ = s; }
  Scheduler* scheduler() const { return scheduler_; }

  // Plugs a mid-run crash injector in (non-owning). nullptr removes it.
  void set_crash_injector(CrashInjector* inj) { injector_ = inj; }

  void install(ProcessId p, std::unique_ptr<Actor> actor) {
    GAM_EXPECTS(p >= 0 && p < process_count());
    actors_[static_cast<size_t>(p)] = std::move(actor);
    refresh_wants_bit(p);
  }

  Actor* actor(ProcessId p) { return actors_[static_cast<size_t>(p)].get(); }

  // Executes one step of process p at the current time, if p is alive and
  // installed. Returns false when p cannot take a step.
  bool step_process(ProcessId p) {
    GAM_EXPECTS(p >= 0 && p < process_count());
    auto i = static_cast<size_t>(p);
    if (!actors_[i]) return false;
    if (pattern_.crashed(p, now_)) {
      trace_crash(p);
      return false;
    }
    auto msg = receive_for_step(p);  // emits the receive event, if any
    if (!msg) trace(TraceEventKind::kNullStep, p, 0, 0, -1, nullptr);
    WorldContext ctx(*this, p, now_);
    sending_as_ = p;
    actors_[i]->on_step(ctx, msg ? &*msg : nullptr);
    sending_as_ = -1;
    ++stats_[i].steps;
    if (msg) ++stats_[i].messages_received;
    ++now_;
    refresh_wants_bit(p);
    return true;
  }

  // Runs until quiescence (no live process has a pending message or wants a
  // step) or until `max_steps` steps have executed. Returns true on
  // quiescence. Scheduling is delegated to the attached strategy (default:
  // seeded-random permutation of the *runnable* candidates per round, which
  // makes every run fair for the processes that keep taking steps while
  // costing O(runnable) instead of O(P)).
  bool run_until_quiescent(std::uint64_t max_steps) {
    refresh_wants();  // actors may have been poked between runs
    Scheduler& sched = active_scheduler();
    sched.begin(process_count());
    std::uint64_t executed = 0;
    // Mask to the installed universe: a message injected for an id outside
    // [0, process_count) (possible only via direct buffer access — Context
    // sends are validated) must never become a scheduling candidate, or the
    // walk below would index actors_ past the end.
    const ProcessSet universe = ProcessSet::universe(process_count());
    while (executed < max_steps) {
      if (injector_) injector_->tick(*this, executed);
      ProcessSet candidates = (buffer_.nonempty_set() | wants_) & universe;
      bool progressed = false;
      if (!candidates.empty()) {
        order_.clear();
        sched.plan(candidates, order_);
        for (ProcessId p : order_) {
          if (executed >= max_steps) break;
          // Scripted strategies (replay) may plan attempts outside the
          // installed universe; skip rather than index actors_ out of bounds.
          if (p < 0 || p >= process_count()) continue;
          if (pattern_.crashed(p, now_)) {
            trace_crash(p);
            continue;
          }
          if (!buffer_.has_message_for(p) && !wants(p)) {
            wants_.erase(p);  // stale cached bit
            continue;
          }
          if (step_process(p)) {
            progressed = true;
            sched.fired(p, executed);
            ++executed;
            if (sched.single_step()) break;
          }
        }
      }
      if (!progressed) {
        // The candidate walk made no step. A strategy that ran out of script
        // ends the run here; otherwise decide quiescence with the
        // authoritative scan and resync the wants cache if it missed anything.
        if (sched.exhausted()) return !any_runnable();
        if (!any_runnable()) return true;
        refresh_wants();
      }
    }
    return !any_runnable();
  }

  const StepStats& stats(ProcessId p) const {
    return stats_[static_cast<size_t>(p)];
  }

  // System-wide totals (the sweep harness aggregates these).
  StepStats total_stats() const {
    StepStats t;
    for (const auto& s : stats_) {
      t.steps += s.steps;
      t.messages_sent += s.messages_sent;
      t.messages_received += s.messages_received;
    }
    return t;
  }

  // Processes that took at least one step (for Minimality checking).
  ProcessSet active_processes() const {
    ProcessSet s;
    for (int p = 0; p < process_count(); ++p)
      if (stats_[static_cast<size_t>(p)].steps > 0) s.insert(p);
    return s;
  }

  MessageBuffer& buffer() { return buffer_; }
  const MessageBuffer& buffer() const { return buffer_; }
  Rng& rng() { return rng_; }

  // Structured event tracing. With no sink attached (the default) every
  // emission short-circuits on one branch; attach a HashingSink for the
  // determinism gate, a RecorderSink for full capture, or a RingSink for a
  // bounded crash window. The sink must outlive the runs it observes.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
  TraceSink* trace_sink() const { return trace_sink_; }

  // Wire-level metrics probes: message-buffer depth high-water mark and
  // FD-query counters by detector class. Handles resolve once here; the
  // probes are null-checked pointer writes. The registry must outlive the
  // runs it observes.
  void set_metrics(Metrics* m) {
#ifndef GAM_NO_METRICS
    metrics_ = m;
    buffer_depth_ = m ? &m->gauge("buffer_depth") : nullptr;
    for (auto d : {DetectorClass::kOmega, DetectorClass::kSigma,
                   DetectorClass::kGamma, DetectorClass::kIndicator})
      fd_query_[static_cast<std::size_t>(raw(d))] =
          m ? &m->counter("fd_query", detector_class_name(d)) : nullptr;
#else
    (void)m;
#endif
  }

  // Protocol layers report their delivery events here so they interleave with
  // the wire events in one stream (`m` is the protocol-level message id).
  void trace_deliver(ProcessId p, ProtocolId protocol, std::int64_t m,
                     std::int64_t seq) {
    trace(TraceEventKind::kDeliver, p, raw(protocol),
          static_cast<std::int32_t>(seq), -1, nullptr, m);
  }

  // Deterministic replay of a live run (net/runtime.hpp record mode): the
  // scripted keys pin, receive by receive, WHICH pending message each step
  // consumes — the one lever the seeded-random buffer would otherwise pull on
  // its own. With a script attached, every receive pops the oldest pending
  // message matching the next key instead of a uniformly random one; the
  // attempt order still comes from the attached (Replay)Scheduler. The two
  // mechanisms together make a recorded live execution a fully determined
  // World run.
  struct ReceiveKey {
    ProcessId src = -1;
    std::int32_t protocol = 0;
    std::int32_t type = 0;
    std::uint64_t payload_hash = 0;
  };

  void set_receive_script(std::vector<ReceiveKey> keys) {
    receive_script_ = std::move(keys);
    script_cursor_ = 0;
    scripted_receives_ = true;
  }

  // The receive keys a recorded trace encodes, in stream order.
  static std::vector<ReceiveKey> receive_script_from_events(
      const std::vector<TraceEvent>& events) {
    std::vector<ReceiveKey> keys;
    for (const TraceEvent& e : events)
      if (e.kind == TraceEventKind::kReceive)
        keys.push_back({e.peer, e.protocol, e.type, e.payload_hash});
    return keys;
  }

 private:
  friend class WorldContext;
  friend class Scenario;  // the RunSpec runner constructs via ScenarioKey

  // Tag for the non-deprecated constructor path. Scenario (sim/run_spec.hpp)
  // is the supported entry point; the public (FailurePattern, seed)
  // constructor above delegates here and exists as a one-PR migration shim.
  struct ScenarioKey {};

  World(ScenarioKey, FailurePattern pattern, std::uint64_t seed)
      : pattern_(std::move(pattern)),
        seed_(seed),
        rng_(seed),
        actors_(static_cast<size_t>(pattern_.process_count())),
        stats_(static_cast<size_t>(pattern_.process_count())) {
    buffer_.set_observer(this);
  }

  // The attached strategy, or the lazily-owned uniform-random default. The
  // default's stream is forked from the run seed with kSchedulerSeedSalt so
  // it is independent of rng_ (which feeds only buffer receives).
  Scheduler& active_scheduler() {
    if (scheduler_) return *scheduler_;
    if (!default_scheduler_)
      default_scheduler_ = std::make_unique<RandomScheduler>(
          trace_mix(seed_, kSchedulerSeedSalt));
    return *default_scheduler_;
  }

  // One step's receive: scripted when a replay script is attached (and the
  // buffer holds something for p), seeded-random otherwise. A scripted key
  // that matches nothing means the replayed run diverged from the recording —
  // fail loudly rather than silently fall back to randomness.
  std::optional<Message> receive_for_step(ProcessId p) {
    if (!scripted_receives_) return buffer_.receive(p, rng_);
    if (!buffer_.has_message_for(p)) return std::nullopt;
    GAM_EXPECTS(script_cursor_ < receive_script_.size());
    const ReceiveKey& k = receive_script_[script_cursor_++];
    auto m = buffer_.receive_match(p, [&](const Message& c) {
      return c.src == k.src && c.protocol == k.protocol && c.type == k.type &&
             hash_payload(c.data) == k.payload_hash;
    });
    GAM_EXPECTS(m.has_value());
    return m;
  }

  bool wants(ProcessId p) const {
    const auto& a = actors_[static_cast<size_t>(p)];
    return a && a->wants_step();
  }

  void refresh_wants_bit(ProcessId p) {
    if (wants(p))
      wants_.insert(p);
    else
      wants_.erase(p);
  }

  void refresh_wants() {
    wants_ = {};
    for (int p = 0; p < process_count(); ++p)
      if (wants(p)) wants_.insert(p);
  }

  bool any_runnable() const {
    for (int p = 0; p < process_count(); ++p) {
      // A process with no installed automaton can never take a step; counting
      // it runnable on a pending message would make run_until_quiescent spin
      // forever without ever consuming its step budget (step_process refuses,
      // so `executed` never advances past the while condition).
      if (!actors_[static_cast<size_t>(p)]) continue;
      if (pattern_.crashed(p, now_)) continue;
      if (buffer_.has_message_for(p)) return true;
      if (wants(p)) return true;
    }
    return false;
  }

  // Central emission point. The `if (!trace_sink_)` branch is the entire cost
  // of disabled tracing; defining GAM_NO_TRACE compiles even that out.
  void trace(TraceEventKind kind, ProcessId p, std::int32_t protocol,
             std::int32_t type, ProcessId peer, const Payload* data,
             std::int64_t arg = 0) {
#ifndef GAM_NO_TRACE
    if (!trace_sink_) return;
    TraceEvent e;
    e.t = now_;
    e.p = p;
    e.kind = kind;
    e.protocol = protocol;
    e.type = type;
    e.peer = peer;
    e.arg = arg;
    e.payload_hash = data ? hash_payload(*data) : 0;
    trace_sink_->on_event(e);
#else
    (void)kind, (void)p, (void)protocol, (void)type, (void)peer, (void)data,
        (void)arg;
#endif
  }

  // One crash event per process, emitted the first time the scheduler skips
  // it as crashed (the pattern itself is static, so this is the first moment
  // the crash becomes observable in the run).
  void trace_crash(ProcessId p) {
    if (!trace_sink_ || crash_traced_.contains(p)) return;
    crash_traced_.insert(p);
    trace(TraceEventKind::kCrash, p, 0, 0, -1, nullptr,
          static_cast<std::int64_t>(pattern_.crash_time(p)));
  }

  // BufferObserver: every wire message funnels through these, whichever send
  // or receive overload produced it — the single place where per-process
  // messages_sent accounting and send/receive tracing happen.
  void on_buffer_send(const Message& m) override {
    if (m.src >= 0 && m.src < process_count())
      ++stats_[static_cast<size_t>(m.src)].messages_sent;
    GAM_METRICS_PROBE(if (buffer_depth_) buffer_depth_->set(
        static_cast<std::int64_t>(buffer_.size())));
    trace(TraceEventKind::kSend, m.src, m.protocol, m.type, m.dst, &m.data);
  }

  void on_buffer_receive(const Message& m) override {
    trace(TraceEventKind::kReceive, m.dst, m.protocol, m.type, m.src, &m.data);
  }

  FailurePattern pattern_;
  std::uint64_t seed_ = 0;
  Rng rng_;  // consumed ONLY by buffer receives (see kSchedulerSeedSalt)
  Time now_ = 0;
  MessageBuffer buffer_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<StepStats> stats_;
  ProcessSet wants_;                // cached wants_step bits
  std::vector<ProcessId> order_;    // reused per-round attempt buffer
  ProcessId sending_as_ = -1;
  TraceSink* trace_sink_ = nullptr;
  ProcessSet crash_traced_;         // crash events already emitted
  Scheduler* scheduler_ = nullptr;             // attached strategy (non-owning)
  std::unique_ptr<Scheduler> default_scheduler_;  // lazily-built random
  CrashInjector* injector_ = nullptr;          // mid-run crashes (non-owning)
  std::vector<ReceiveKey> receive_script_;     // scripted-replay receives
  std::size_t script_cursor_ = 0;
  bool scripted_receives_ = false;
#ifndef GAM_NO_METRICS
  Metrics* metrics_ = nullptr;
  Gauge* buffer_depth_ = nullptr;   // resolved once in set_metrics
  std::array<Counter*, 4> fd_query_{};  // indexed by raw(DetectorClass)
#endif
};

inline void WorldContext::send(ProcessId dst, ProtocolId protocol,
                               MsgType type, Payload data) {
  // Validate against the world's process count, not the ProcessSet capacity:
  // a destination in [process_count, kMaxProcesses) would sit in the buffer's
  // nonempty set with no actor behind it (and, before the scheduler masked
  // candidates, walked the scheduler into actors_ out of bounds).
  GAM_EXPECTS(dst >= 0 && dst < world_.process_count());
  Message m;
  m.src = self();
  m.dst = dst;
  m.protocol = raw(protocol);
  m.type = raw(type);
  m.data = std::move(data);
  world_.buffer_.send(std::move(m));  // stats/tracing via the buffer observer
}

inline void WorldContext::send_to_set(ProcessSet dst, ProtocolId protocol,
                                      MsgType type, Payload data) {
  GAM_EXPECTS(dst.subset_of(ProcessSet::universe(world_.process_count())));
  Message proto;
  proto.src = self();
  proto.protocol = raw(protocol);
  proto.type = raw(type);
  proto.data = std::move(data);
  // One shared broadcast path: MessageBuffer::send_to_set does the
  // move-on-last-recipient optimization, and the buffer observer attributes
  // every resulting wire message to this sender — the two overloads can no
  // longer diverge on StepStats or AllocStats accounting.
  world_.buffer_.send_to_set(std::move(proto), dst);
}

inline void WorldContext::trace_fd_query(ProtocolId protocol,
                                         DetectorClass detector) {
  GAM_METRICS_PROBE({
    Counter* c = world_.fd_query_[static_cast<std::size_t>(raw(detector))];
    if (c) c->add();
  });
  world_.trace(TraceEventKind::kFdQuery, self(), raw(protocol), raw(detector),
               -1, nullptr);
}

}  // namespace gam::sim
