// The simulation world: processes as deterministic automata taking
// asynchronous steps against a message buffer and a failure pattern
// (paper, Appendix A).
//
// A step of process p consists of (1) receiving one message addressed to p or
// the null message, (2) querying its failure-detector modules, (3) a local
// state change, and (4) sending messages. The world serializes steps on a
// global clock that the processes themselves cannot read; failure-detector
// oracles (src/fd) read it to produce histories consistent with the failure
// pattern.
//
// Scheduling is incremental: instead of rescanning all P processes every
// round, the world keeps the runnable candidates as a bitmask — the buffer
// maintains the set of destinations with pending messages, and the world
// tracks a wants-step bit per actor, refreshed whenever that actor steps.
// A round shuffles and walks only the candidates, so its cost is O(runnable).
// The wants bits are a conservative cache (an actor's wants_step only changes
// during its own step or between runs); quiescence is still decided by the
// authoritative full scan `any_runnable()`, so exotic couplings cannot make
// the world stop early.
#pragma once

#include <memory>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "sim/message.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::sim {

class World;

// The face a process sees during one of its steps.
class Context {
 public:
  Context(World& world, ProcessId self, Time now)
      : world_(world), self_(self), now_(now) {}

  ProcessId self() const { return self_; }
  Time now() const { return now_; }

  void send(ProcessId dst, std::int32_t protocol, std::int32_t type,
            Payload data = {});
  void send_to_set(ProcessSet dst, std::int32_t protocol, std::int32_t type,
                   Payload data = {});

 private:
  World& world_;
  ProcessId self_;
  Time now_;
};

// A deterministic automaton. `on_step` is invoked with the received message
// (nullptr encodes the null message m_⊥). `wants_step` lets the world detect
// quiescence: a process that has no pending message and does not want a step
// is skipped, and the run ends when that holds system-wide.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_step(Context& ctx, const Message* m) = 0;
  virtual bool wants_step() const { return false; }
};

struct StepStats {
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
};

class World {
 public:
  World(FailurePattern pattern, std::uint64_t seed)
      : pattern_(std::move(pattern)),
        rng_(seed),
        actors_(static_cast<size_t>(pattern_.process_count())),
        stats_(static_cast<size_t>(pattern_.process_count())) {}

  int process_count() const { return pattern_.process_count(); }
  const FailurePattern& pattern() const { return pattern_; }
  Time now() const { return now_; }

  void install(ProcessId p, std::unique_ptr<Actor> actor) {
    GAM_EXPECTS(p >= 0 && p < process_count());
    actors_[static_cast<size_t>(p)] = std::move(actor);
    refresh_wants_bit(p);
  }

  Actor* actor(ProcessId p) { return actors_[static_cast<size_t>(p)].get(); }

  // Executes one step of process p at the current time, if p is alive and
  // installed. Returns false when p cannot take a step.
  bool step_process(ProcessId p) {
    auto i = static_cast<size_t>(p);
    if (!actors_[i] || pattern_.crashed(p, now_)) return false;
    auto msg = buffer_.receive(p, rng_);
    Context ctx(*this, p, now_);
    sending_as_ = p;
    actors_[i]->on_step(ctx, msg ? &*msg : nullptr);
    sending_as_ = -1;
    ++stats_[i].steps;
    if (msg) ++stats_[i].messages_received;
    ++now_;
    refresh_wants_bit(p);
    return true;
  }

  // Runs until quiescence (no live process has a pending message or wants a
  // step) or until `max_steps` steps have executed. Returns true on
  // quiescence. Scheduling: seeded-random permutation of the *runnable*
  // candidates per round, which makes every run fair for the processes that
  // keep taking steps while costing O(runnable) instead of O(P).
  bool run_until_quiescent(std::uint64_t max_steps) {
    refresh_wants();  // actors may have been poked between runs
    std::uint64_t executed = 0;
    while (executed < max_steps) {
      ProcessSet candidates = buffer_.nonempty_set() | wants_;
      bool progressed = false;
      if (!candidates.empty()) {
        shuffle_into_order(candidates);
        for (ProcessId p : order_) {
          if (executed >= max_steps) break;
          if (pattern_.crashed(p, now_)) continue;
          if (!buffer_.has_message_for(p) && !wants(p)) {
            wants_.erase(p);  // stale cached bit
            continue;
          }
          if (step_process(p)) {
            progressed = true;
            ++executed;
          }
        }
      }
      if (!progressed) {
        // The candidate walk made no step. Decide quiescence with the
        // authoritative scan; resync the wants cache if it missed anything.
        if (!any_runnable()) return true;
        refresh_wants();
      }
    }
    return !any_runnable();
  }

  const StepStats& stats(ProcessId p) const {
    return stats_[static_cast<size_t>(p)];
  }

  // System-wide totals (the sweep harness aggregates these).
  StepStats total_stats() const {
    StepStats t;
    for (const auto& s : stats_) {
      t.steps += s.steps;
      t.messages_sent += s.messages_sent;
      t.messages_received += s.messages_received;
    }
    return t;
  }

  // Processes that took at least one step (for Minimality checking).
  ProcessSet active_processes() const {
    ProcessSet s;
    for (int p = 0; p < process_count(); ++p)
      if (stats_[static_cast<size_t>(p)].steps > 0) s.insert(p);
    return s;
  }

  MessageBuffer& buffer() { return buffer_; }
  const MessageBuffer& buffer() const { return buffer_; }
  Rng& rng() { return rng_; }

 private:
  friend class Context;

  bool wants(ProcessId p) const {
    const auto& a = actors_[static_cast<size_t>(p)];
    return a && a->wants_step();
  }

  void refresh_wants_bit(ProcessId p) {
    if (wants(p))
      wants_.insert(p);
    else
      wants_.erase(p);
  }

  void refresh_wants() {
    wants_ = {};
    for (int p = 0; p < process_count(); ++p)
      if (wants(p)) wants_.insert(p);
  }

  bool any_runnable() const {
    for (int p = 0; p < process_count(); ++p) {
      if (pattern_.crashed(p, now_)) continue;
      if (buffer_.has_message_for(p)) return true;
      if (wants(p)) return true;
    }
    return false;
  }

  // Fisher-Yates over the members of `s` into the reused `order_` buffer.
  void shuffle_into_order(ProcessSet s) {
    order_.clear();
    for (ProcessId p : s) order_.push_back(p);
    for (size_t i = order_.size(); i > 1; --i) {
      auto j = static_cast<size_t>(rng_.below(i));
      std::swap(order_[i - 1], order_[j]);
    }
  }

  FailurePattern pattern_;
  Rng rng_;
  Time now_ = 0;
  MessageBuffer buffer_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<StepStats> stats_;
  ProcessSet wants_;                // cached wants_step bits
  std::vector<ProcessId> order_;    // reused per-round shuffle buffer
  ProcessId sending_as_ = -1;
};

inline void Context::send(ProcessId dst, std::int32_t protocol,
                          std::int32_t type, Payload data) {
  Message m;
  m.src = self_;
  m.dst = dst;
  m.protocol = protocol;
  m.type = type;
  m.data = std::move(data);
  ++world_.stats_[static_cast<size_t>(self_)].messages_sent;
  world_.buffer_.send(std::move(m));
}

inline void Context::send_to_set(ProcessSet dst, std::int32_t protocol,
                                 std::int32_t type, Payload data) {
  if (dst.empty()) return;
  ProcessId last = dst.max();
  for (ProcessId p : dst) {
    if (p == last) break;
    send(p, protocol, type, data);
  }
  world_.buffer_.note_moved_send();
  send(last, protocol, type, std::move(data));
}

}  // namespace gam::sim
