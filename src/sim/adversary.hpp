// Adversarial scheduling and crash-injection strategies.
//
// The paper's theorems quantify over ALL failure patterns and ALL fair
// schedules; the uniform-random default exercises exactly one benign corner
// of that space. This module supplies the adversaries the invariant monitors
// are worth running against:
//
//   PctScheduler       — PCT-style priority scheduling (Burckhardt et al.):
//                        random distinct priorities, always run the highest-
//                        priority enabled process, and demote at d-1 random
//                        change points. Covers any bug of "depth" d with
//                        probability >= 1/(n * k^(d-1)) per run.
//   ReplayScheduler    — re-executes the exact attempt sequence recorded in
//                        a `# gam-trace v1` file, making any adversarial
//                        schedule byte-reproducible after the fact.
//   QuorumEdgeAdversary— derives a failure pattern from the group system that
//                        kills processes right at a Σ-quorum boundary: all
//                        but one member of some pairwise group intersection
//                        crash back-to-back, driving Σ to its quorum of last
//                        resort while the survivors keep running.
//   QuorumEdgeInjector — the same boundary attack as mid-run crash injection
//                        through World::mutable_pattern (plain-World runs
//                        only; FD oracles bind their construction pattern).
//
// Links are reliable in this model (no-loss, no-duplication buffer), so the
// adversary's levers are schedule order and crash timing — never message
// loss. SchedulerSpec/AdversarySpec are the value objects the CLI axis
// (`bench_sweep --adversary=`, tools/adversary_hunt) parses and instantiates.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::sim {

// True in -DGAM_PLANTED_BUG=ON builds: MuMulticast ships one deliberately
// weakened delivery guard so the adversary hunt has a known bug to find.
// Never ON in shipping builds; scripts/tier1.sh gates both polarities.
#ifdef GAM_PLANTED_BUG
inline constexpr bool kPlantedBug = true;
#else
inline constexpr bool kPlantedBug = false;
#endif

// ---------------------------------------------------------------------------
// PCT. `step_bound` is the a-priori bound k on run length used to draw the
// d-1 priority change points; runs longer than k simply see no further
// demotions. single_step() is true: the scheduler re-plans after every fired
// step so the highest-priority enabled process always runs next.
class PctScheduler final : public Scheduler {
 public:
  PctScheduler(int depth, std::uint64_t step_bound, std::uint64_t seed);

  void begin(int process_count) override;
  void plan(ProcessSet candidates, std::vector<ProcessId>& out) override;
  void fired(ProcessId p, std::uint64_t step_index) override;
  bool single_step() const override { return true; }

  // Introspection for tests.
  int depth() const { return depth_; }
  const std::vector<std::uint64_t>& change_points() const {
    return change_points_;
  }
  const std::vector<std::int64_t>& priorities() const { return priority_; }

 private:
  int depth_;
  std::uint64_t step_bound_;
  Rng rng_;
  bool begun_ = false;
  std::vector<std::int64_t> priority_;      // per process; higher runs first
  std::vector<std::uint64_t> change_points_;  // sorted step indices
  std::int64_t next_low_ = -1;              // next demotion value
};

// ---------------------------------------------------------------------------
// Replay. The script is a flat attempt sequence: process ids to attempt in
// order, with -1 encoding an idle clock tick (drivers with an idle notion
// consume those through take_idle_tick; the World skips them). Attempts that
// cannot fire (crashed processes) are planned anyway and skipped by the
// driver — exactly what the recording run did.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<ProcessId> attempts)
      : attempts_(std::move(attempts)) {}

  // The attempt sequence a recorded `# gam-trace v1` stream encodes: one
  // attempt per kReceive / kNullStep / kCrash event (the three event kinds a
  // scheduling attempt can produce). Works both on full World traces and on
  // schedule files written by write_schedule (all-kNullStep).
  static std::vector<ProcessId> attempts_from_events(
      const std::vector<TraceEvent>& events);

  // Loads a trace/schedule file and extracts its attempt sequence.
  static std::optional<ReplayScheduler> from_file(const std::string& path);

  void plan(ProcessSet candidates, std::vector<ProcessId>& out) override;
  bool single_step() const override { return true; }
  bool exhausted() const override { return cursor_ >= attempts_.size(); }
  bool take_idle_tick() override;

  std::size_t size() const { return attempts_.size(); }
  std::size_t cursor() const { return cursor_; }

 private:
  std::vector<ProcessId> attempts_;
  std::size_t cursor_ = 0;
};

// Serializes an attempt sequence (-1 = idle tick) as a `# gam-trace v1` file
// of null-step records (t = index, p = attempt), so schedules ride the same
// format, tooling, and hash discipline as event traces.
bool write_schedule(const std::string& path,
                    const std::vector<ProcessId>& attempts);
std::optional<std::vector<ProcessId>> load_schedule(const std::string& path);

// ---------------------------------------------------------------------------
// Quorum-edge crash derivation. Takes the group memberships (passed as plain
// ProcessSets to keep sim below groups in the layering) and derives failure
// patterns that crash all but one member of some nonempty pairwise group
// intersection at consecutive early times. The survivor is Σ's quorum of
// last resort for every scope containing the intersection: the pattern sits
// exactly on the boundary where quorums collapse to a singleton while the
// run keeps going.
class QuorumEdgeAdversary {
 public:
  struct Target {
    ProcessSet scope;      // the attacked intersection g∩h
    ProcessSet victims;    // crashed members (all but the survivor)
    ProcessId survivor;    // the quorum of last resort
    Time first_crash;      // earliest victim crash time
    Time last_crash;       // latest victim crash time
  };

  QuorumEdgeAdversary(std::vector<ProcessSet> groups, int process_count);

  // Deterministically maps a seed to one boundary attack. `window` bounds the
  // start-time stagger so crashes land early, while protocol state is still
  // in flight.
  Target target_for(std::uint64_t seed, Time window = 16) const;
  FailurePattern pattern_for(std::uint64_t seed, Time window = 16) const;

  const std::vector<ProcessSet>& scopes() const { return scopes_; }

 private:
  std::vector<ProcessSet> scopes_;  // deduped nonempty pairwise intersections
  int process_count_;
};

// Mid-run variant: applies a Target's crashes through mutable_pattern once
// the executed-step count reaches `trigger_step`. Plain-World runs only (see
// CrashInjector's note on oracle binding).
class QuorumEdgeInjector final : public CrashInjector {
 public:
  QuorumEdgeInjector(QuorumEdgeAdversary::Target target,
                     std::uint64_t trigger_step)
      : target_(target), trigger_step_(trigger_step) {}

  void tick(World& world, std::uint64_t steps_executed) override;
  bool fired() const { return fired_; }

 private:
  QuorumEdgeAdversary::Target target_;
  std::uint64_t trigger_step_;
  bool fired_ = false;
};

// ---------------------------------------------------------------------------
// CLI-facing value objects.

// A scheduling strategy by name: "random", "pct" / "pct:D", "replay:PATH".
struct SchedulerSpec {
  enum class Kind : std::int8_t { kRandom = 0, kPct = 1, kReplay = 2 };

  Kind kind = Kind::kRandom;
  int depth = 3;                   // PCT
  std::uint64_t step_bound = 4096; // PCT change-point horizon
  std::string replay_path;         // replay

  static std::optional<SchedulerSpec> parse(const std::string& text);
  std::string name() const;

  // Builds the scheduler for one run. All randomness forks from `seed` with
  // kSchedulerSeedSalt, matching the World's built-in default so that
  // kRandom-by-spec and no-spec runs are byte-identical. Returns nullptr if
  // a replay file cannot be loaded.
  std::unique_ptr<Scheduler> instantiate(std::uint64_t seed) const;
};

inline SchedulerSpec pct(int depth, std::uint64_t step_bound = 4096) {
  SchedulerSpec s;
  s.kind = SchedulerSpec::Kind::kPct;
  s.depth = depth;
  s.step_bound = step_bound;
  return s;
}

inline SchedulerSpec random_scheduler() { return SchedulerSpec{}; }

inline SchedulerSpec replay(std::string path) {
  SchedulerSpec s;
  s.kind = SchedulerSpec::Kind::kReplay;
  s.replay_path = std::move(path);
  return s;
}

// The full --adversary= axis: a scheduling strategy plus (optionally) the
// quorum-edge crash derivation. Grammar: "random" | "pct[:D]" |
// "replay:PATH" | "qedge" | "qedge+<scheduler>".
struct AdversarySpec {
  SchedulerSpec scheduler;
  bool quorum_edge_crashes = false;

  static std::optional<AdversarySpec> parse(const std::string& text);
  std::string name() const;
};

}  // namespace gam::sim
