// Structured event tracing for the simulator.
//
// A determinism gate that only says "hash mismatch" cannot localize *which*
// event diverged between two runs. This layer records every observable
// simulator event as a typed, flat record — send, receive, null-step, crash,
// failure-detector query, protocol delivery — each stamped with (time, pid,
// protocol, payload hash), so two runs of the same seed can be compared event
// by event and the first divergence pinpointed (tools/trace_diff).
//
// Sinks:
//   HashingSink   — folds every event into one 64-bit word; what the sweep's
//                   determinism gate compares (near-free: no storage).
//   RingSink      — keeps only the last N events; a crash-dump window for
//                   long runs where full recording is too heavy.
//   RecorderSink  — stores the full stream plus a running hash, and can
//                   serialize it to a text file trace_diff understands.
//
// Emission cost: producers guard every emission with `if (sink)`, so the
// disabled path costs one predictable branch per event. Defining GAM_NO_TRACE
// compiles the World's emission helpers out entirely (see world.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "sim/ids.hpp"
#include "sim/payload.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::sim {

enum class TraceEventKind : std::uint8_t {
  kSend = 0,      // a message entered the buffer       (p=src, peer=dst)
  kReceive = 1,   // a message left the buffer          (p=dst, peer=src)
  kNullStep = 2,  // a process stepped on m_⊥           (p=stepper)
  kCrash = 3,     // a crashed process was first skipped (arg=crash time)
  kFdQuery = 4,   // a failure-detector module was read  (type=detector id)
  kDeliver = 5,   // a protocol-level delivery           (arg=msg id)
  kMulticast = 6, // a protocol-level multicast submit   (arg=msg id)
};

inline const char* trace_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kReceive: return "receive";
    case TraceEventKind::kNullStep: return "null-step";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kFdQuery: return "fd-query";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kMulticast: return "multicast";
  }
  return "?";
}

inline std::optional<TraceEventKind> trace_kind_from(const char* name) {
  for (auto k : {TraceEventKind::kSend, TraceEventKind::kReceive,
                 TraceEventKind::kNullStep, TraceEventKind::kCrash,
                 TraceEventKind::kFdQuery, TraceEventKind::kDeliver,
                 TraceEventKind::kMulticast})
    if (std::strcmp(name, trace_kind_name(k)) == 0) return k;
  return std::nullopt;
}

// One flat record. Field use varies by kind (see the enum comments); unused
// fields stay at their defaults so events hash and compare uniformly.
struct TraceEvent {
  Time t = 0;
  ProcessId p = -1;
  TraceEventKind kind = TraceEventKind::kNullStep;
  std::int32_t protocol = 0;
  std::int32_t type = 0;
  ProcessId peer = -1;
  std::int64_t arg = 0;
  std::uint64_t payload_hash = 0;

  bool operator==(const TraceEvent&) const = default;
};

// Order-sensitive 64-bit fold, one multiply-xor round per word (a byte-fed
// FNV here costs ~8x more and shows up in the determinism gate, which folds
// every wire event of a run). bench/sweep.hpp uses the same fold so hashes
// stay comparable across layers.
inline constexpr std::uint64_t kTraceHashSeed = 1469598103934665603ULL;

inline std::uint64_t trace_mix(std::uint64_t h, std::uint64_t x) {
  x *= 0x9e3779b97f4a7c15ULL;  // golden-ratio odd constant spreads low bits
  x ^= x >> 32;
  h ^= x;
  h *= 1099511628211ULL;  // FNV prime keeps the fold order-sensitive
  return h;
}

inline std::uint64_t hash_payload(const Payload& data) {
  std::uint64_t h = trace_mix(kTraceHashSeed, data.size());
  for (std::int64_t w : data) h = trace_mix(h, static_cast<std::uint64_t>(w));
  return h;
}

// Every field enters the fold: two event streams hash alike only when they
// agree on kind, timing, endpoints, and payload content.
inline std::uint64_t fold_event(std::uint64_t h, const TraceEvent& e) {
  h = trace_mix(h, static_cast<std::uint64_t>(e.kind));
  h = trace_mix(h, e.t);
  h = trace_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.p)));
  h = trace_mix(h, static_cast<std::uint64_t>(e.protocol));
  h = trace_mix(h, static_cast<std::uint64_t>(e.type));
  h = trace_mix(h,
                static_cast<std::uint64_t>(static_cast<std::int64_t>(e.peer)));
  h = trace_mix(h, static_cast<std::uint64_t>(e.arg));
  h = trace_mix(h, e.payload_hash);
  return h;
}

inline std::uint64_t hash_events(const std::vector<TraceEvent>& events) {
  std::uint64_t h = kTraceHashSeed;
  for (const TraceEvent& e : events) h = fold_event(h, e);
  return h;
}

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

// Replays a recorded stream into a sink — how offline monitors
// (src/sim/monitors.hpp) consume a trace after the run.
inline void feed(TraceSink& sink, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) sink.on_event(e);
}

// Hash-only: what the determinism gate runs with. No storage, no allocation.
class HashingSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override {
    hash_ = fold_event(hash_, e);
    ++count_;
  }
  std::uint64_t hash() const { return hash_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t hash_ = kTraceHashSeed;
  std::uint64_t count_ = 0;
};

// Last-N window: bounded memory regardless of run length.
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity) : ring_(capacity) {
    GAM_EXPECTS(capacity > 0);
  }

  void on_event(const TraceEvent& e) override {
    ring_[total_ % ring_.size()] = e;
    ++total_;
  }

  // Events sent to the sink over its lifetime (not just the retained window).
  std::uint64_t total() const { return total_; }

  // The retained window, oldest first.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    std::uint64_t n = std::min<std::uint64_t>(total_, ring_.size());
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = total_ - n; i < total_; ++i)
      out.push_back(ring_[i % ring_.size()]);
    return out;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;
};

// Full recording plus a running hash (so a recorded run's hash can be checked
// against a HashingSink run without replaying).
class RecorderSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override {
    events_.push_back(e);
    hash_ = fold_event(hash_, e);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t hash() const { return hash_; }
  void clear() {
    events_.clear();
    hash_ = kTraceHashSeed;
  }

  bool write(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t hash_ = kTraceHashSeed;
};

// ---------------------------------------------------------------------------
// Serialization. One header line, then one event per line in field order
// `t p kind protocol type peer arg payload_hash` — trivially greppable and
// stable for trace_diff.

inline std::string serialize_event(const TraceEvent& e) {
  char line[160];
  std::snprintf(line, sizeof line, "%llu %d %s %d %d %d %lld %llx",
                static_cast<unsigned long long>(e.t), e.p,
                trace_kind_name(e.kind), e.protocol, e.type, e.peer,
                static_cast<long long>(e.arg),
                static_cast<unsigned long long>(e.payload_hash));
  return line;
}

// Human-oriented rendering for diffs and logs.
inline std::string format_event(const TraceEvent& e) {
  char line[192];
  std::snprintf(line, sizeof line,
                "t=%-6llu p%-2d %-9s proto=%-4d type=%-3d peer=%-3d "
                "arg=%lld payload=%llx",
                static_cast<unsigned long long>(e.t), e.p,
                trace_kind_name(e.kind), e.protocol, e.type, e.peer,
                static_cast<long long>(e.arg),
                static_cast<unsigned long long>(e.payload_hash));
  return line;
}

inline bool write_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "# gam-trace v1 events=%zu hash=%llx\n", events.size(),
               static_cast<unsigned long long>(hash_events(events)));
  for (const TraceEvent& e : events)
    std::fprintf(f, "%s\n", serialize_event(e).c_str());
  std::fclose(f);
  return true;
}

inline bool RecorderSink::write(const std::string& path) const {
  return write_trace(path, events_);
}

inline std::optional<std::vector<TraceEvent>> load_trace(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return std::nullopt;
  char line[256];
  if (!std::fgets(line, sizeof line, f) ||
      std::strncmp(line, "# gam-trace v1", 14) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::vector<TraceEvent> events;
  while (std::fgets(line, sizeof line, f)) {
    if (line[0] == '\n' || line[0] == '#') continue;
    unsigned long long t = 0, payload = 0;
    long long arg = 0;
    int p = 0, protocol = 0, type = 0, peer = 0;
    char kind[32];
    if (std::sscanf(line, "%llu %d %31s %d %d %d %lld %llx", &t, &p, kind,
                    &protocol, &type, &peer, &arg, &payload) != 8) {
      std::fclose(f);
      return std::nullopt;
    }
    auto k = trace_kind_from(kind);
    if (!k) {
      std::fclose(f);
      return std::nullopt;
    }
    events.push_back({static_cast<Time>(t), p, *k, protocol, type, peer,
                      static_cast<std::int64_t>(arg),
                      static_cast<std::uint64_t>(payload)});
  }
  std::fclose(f);
  return events;
}

// ---------------------------------------------------------------------------
// Diffing. Two runs of the same seed must produce identical streams; the
// first index where they disagree (including one stream simply ending first)
// is where the executions forked.

inline std::optional<std::size_t> first_divergence(
    const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b) {
  std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!(a[i] == b[i])) return i;
  if (a.size() != b.size()) return n;
  return std::nullopt;
}

// The divergent event with `window` events of shared context before it and up
// to `window` following events from each side.
inline std::string render_divergence(const std::vector<TraceEvent>& a,
                                     const std::vector<TraceEvent>& b,
                                     std::size_t idx,
                                     std::size_t window = 5) {
  std::string out;
  char head[160];
  std::snprintf(head, sizeof head,
                "first divergence at event %zu (A has %zu events, B has %zu)\n",
                idx, a.size(), b.size());
  out += head;
  std::size_t from = idx > window ? idx - window : 0;
  for (std::size_t i = from; i < idx; ++i)
    out += "  = " + format_event(a[i]) + "\n";
  auto side = [&](const char* tag, const std::vector<TraceEvent>& v) {
    for (std::size_t i = idx; i < v.size() && i < idx + window; ++i) {
      out += "  ";
      out += tag;
      out += (i == idx ? "> " : "  ");
      out += format_event(v[i]) + "\n";
    }
    if (idx >= v.size()) {
      out += "  ";
      out += tag;
      out += "> <end of stream>\n";
    }
  };
  side("A", a);
  side("B", b);
  return out;
}

}  // namespace gam::sim
