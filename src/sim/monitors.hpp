// Online invariant monitors for atomic-multicast event streams.
//
// src/amcast/spec.cpp delivers a post-hoc verdict over a finished RunRecord;
// these monitors consume the *same* evidence as trace sinks and flag the
// first violating event with its stream position, so a broken run points at
// the exact delivery that went wrong instead of "ordering failed somewhere".
// They attach anywhere a TraceSink does — directly as a protocol event sink,
// or replayed over a RecorderSink's stream via sim::feed().
//
// Event conventions (matching MuMulticast / the baselines / the trace layer):
//   kMulticast  p=submitter  protocol=dst group   peer=src  arg=msg id
//   kDeliver    p=deliverer  protocol=dst group   arg=msg id
//   kCrash      p=crashed process
// World-level runs prefix protocol ids (ReplicatedMulticast uses
// kTraceBase+g);
// MonitorConfig::protocol_base subtracts that. Events whose protocol does
// not map to a configured group are ignored, so monitors can share a stream
// with unrelated protocols.
//
// Checked invariants (semantics mirror spec.cpp):
//   Integrity   — no duplicate (process, message) delivery; no delivery of a
//                 never-multicast message; no delivery outside dst(m).
//   Agreement   — uniform agreement: once *any* process (even one that later
//                 crashes) delivers m, every correct member of dst(m)
//                 delivers m. Needs run completion, so it fires in
//                 finalize(); the flagged position is the first delivery of
//                 the orphaned message.
//   Acyclicity  — the delivery relation ↦ stays acyclic. Online, each
//                 delivery at p adds the chain edge (previous delivery at p)
//                 ↦ (new message) — consecutive edges carry full reachability
//                 because p is in dst of everything it delivered — and a
//                 reachability probe catches any cycle the new edge closes.
//                 finalize() adds the delivered-without-ever-delivering edges
//                 (which need group membership) and re-checks.
//
// Monitors stop checking after their first violation (one run, one verdict)
// but keep absorbing state so a later finalize() stays consistent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/ids.hpp"
#include "sim/trace.hpp"
#include "util/process_set.hpp"

namespace gam::sim {

struct MonitorViolation {
  std::string monitor;       // "integrity" / "agreement" / "acyclicity"
  std::uint64_t event_index;  // 0-based position in the consumed stream
  TraceEvent event;           // the violating (or first-implicated) event
  std::string detail;
};

struct MonitorConfig {
  // Group id -> membership. Deliveries resolve dst(m) through this.
  std::vector<ProcessSet> groups;
  // Where the protocol family's deliver events sit in the trace id space:
  // group g's events carry protocol_base + g (protocol_id(0) for
  // protocol-level streams; ReplicatedMulticast::kTraceBase for its world
  // traces; each arena descriptor publishes its own trace_base).
  ProtocolId protocol_base = protocol_id(0);
  // When false, integrity tolerates deliveries with no preceding kMulticast
  // (streams that only record the delivery side).
  bool require_multicast = true;
  // Processes faulty in the failure pattern. Streams that carry kCrash
  // events extend this set automatically.
  ProcessSet faulty;
  // Conflict relation of the workload (message id -> conflict class): two
  // messages are order-constrained iff they carry the same class, so the
  // acyclicity monitor only draws ↦ edges within a class. Empty = every
  // message in class 0, i.e. the classical totally-ordered relation — the
  // exact pre-arena behavior.
  std::map<std::int64_t, std::int32_t> conflict_class;
};

namespace monitor_detail {

// Three-color DFS over a sparse adjacency map.
inline bool has_cycle(const std::map<std::int64_t, std::set<std::int64_t>>& adj) {
  std::map<std::int64_t, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::int64_t, std::set<std::int64_t>::const_iterator>>
      stack;
  for (const auto& [start, _] : adj) {
    if (color[start] != 0) continue;
    color[start] = 1;
    stack.emplace_back(start, adj.at(start).begin());
    while (!stack.empty()) {
      auto& [u, it] = stack.back();
      if (it == adj.at(u).end()) {
        color[u] = 2;
        stack.pop_back();
        continue;
      }
      std::int64_t v = *it;
      ++it;
      auto found = adj.find(v);
      if (found == adj.end()) continue;
      if (color[v] == 1) return true;
      if (color[v] == 0) {
        color[v] = 1;
        stack.emplace_back(v, found->second.begin());
      }
    }
  }
  return false;
}

// Is `target` reachable from `from`?
inline bool reaches(const std::map<std::int64_t, std::set<std::int64_t>>& adj,
                    std::int64_t from, std::int64_t target) {
  std::set<std::int64_t> seen;
  std::vector<std::int64_t> stack{from};
  while (!stack.empty()) {
    std::int64_t u = stack.back();
    stack.pop_back();
    if (u == target) return true;
    if (!seen.insert(u).second) continue;
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (std::int64_t v : it->second) stack.push_back(v);
  }
  return false;
}

}  // namespace monitor_detail

// Shared per-monitor plumbing: stream indexing, group resolution, and the
// first-violation latch.
class MonitorBase : public TraceSink {
 public:
  explicit MonitorBase(std::string name, MonitorConfig cfg)
      : name_(std::move(name)), cfg_(std::move(cfg)) {}

  void on_event(const TraceEvent& e) final {
    absorb(e, index_);
    ++index_;
  }

  const std::optional<MonitorViolation>& violation() const { return violation_; }
  bool ok() const { return !violation_.has_value(); }
  std::uint64_t events_seen() const { return index_; }

 protected:
  virtual void absorb(const TraceEvent& e, std::uint64_t index) = 0;

  // Group id of an event, or nullopt when the protocol is not one of ours.
  std::optional<int> group_of(const TraceEvent& e) const {
    std::int64_t g = e.protocol - raw(cfg_.protocol_base);
    if (g < 0 || g >= static_cast<std::int64_t>(cfg_.groups.size()))
      return std::nullopt;
    return static_cast<int>(g);
  }

  // Conflict class of a message id (class 0 when the config carries no map).
  std::int32_t conflict_class_of(std::int64_t m) const {
    auto it = cfg_.conflict_class.find(m);
    return it == cfg_.conflict_class.end() ? 0 : it->second;
  }

  void flag(std::uint64_t index, const TraceEvent& e, std::string detail) {
    if (violation_) return;  // first violation wins
    violation_ = MonitorViolation{name_, index, e, std::move(detail)};
  }

  const MonitorConfig& cfg() const { return cfg_; }

 private:
  std::string name_;
  MonitorConfig cfg_;
  std::uint64_t index_ = 0;
  std::optional<MonitorViolation> violation_;
};

// Uniform integrity, fully online: every check closes at the delivery event.
class IntegrityMonitor final : public MonitorBase {
 public:
  explicit IntegrityMonitor(MonitorConfig cfg)
      : MonitorBase("integrity", std::move(cfg)) {}

 protected:
  void absorb(const TraceEvent& e, std::uint64_t index) override {
    if (e.kind == TraceEventKind::kMulticast) {
      if (auto g = group_of(e)) multicast_dst_.emplace(e.arg, *g);
      return;
    }
    if (e.kind != TraceEventKind::kDeliver) return;
    auto g = group_of(e);
    if (!g) return;  // not our protocol (message ids may collide across
                     // protocols, so the id alone never claims an event)
    if (!delivered_.emplace(e.p, e.arg).second) {
      flag(index, e,
           "message " + std::to_string(e.arg) + " delivered twice at p" +
               std::to_string(e.p));
      return;
    }
    auto it = multicast_dst_.find(e.arg);
    if (it == multicast_dst_.end() && cfg().require_multicast)
      flag(index, e,
           "message " + std::to_string(e.arg) +
               " delivered but never multicast");
    int dst = it != multicast_dst_.end() ? it->second : *g;
    if (!cfg().groups[static_cast<std::size_t>(dst)].contains(e.p))
      flag(index, e,
           "p" + std::to_string(e.p) + " delivered message " +
               std::to_string(e.arg) + " outside destination g" +
               std::to_string(dst));
  }

 private:
  std::map<std::int64_t, int> multicast_dst_;
  std::set<std::pair<ProcessId, std::int64_t>> delivered_;
};

// Uniform agreement. Deliveries accumulate online; the obligation — every
// correct member of dst(m) delivers once anyone did — can only be judged at
// end of run, so finalize() closes it. Call finalize() only on quiescent runs
// with an unrestricted scheduler: a run cut off mid-flight has pending
// obligations that are not violations.
class AgreementMonitor final : public MonitorBase {
 public:
  explicit AgreementMonitor(MonitorConfig cfg)
      : MonitorBase("agreement", std::move(cfg)) {}

  void finalize() {
    if (!ok()) return;
    for (const auto& [m, by] : delivered_by_) {
      auto g = dst_of(m);
      if (!g) continue;
      const auto& [index, event] = first_delivery_.at(m);
      for (ProcessId p : cfg().groups[static_cast<std::size_t>(*g)]) {
        if (faulty_.contains(p) || by.contains(p)) continue;
        flag(index, event,
             "message " + std::to_string(m) + " delivered at p" +
                 std::to_string(event.p) + " but correct p" +
                 std::to_string(p) + " of g" + std::to_string(*g) +
                 " never delivered it");
        return;
      }
    }
  }

 protected:
  void absorb(const TraceEvent& e, std::uint64_t index) override {
    if (e.kind == TraceEventKind::kCrash) {
      faulty_.insert(e.p);
      return;
    }
    if (e.kind == TraceEventKind::kMulticast) {
      if (auto g = group_of(e)) multicast_dst_.emplace(e.arg, *g);
      return;
    }
    if (e.kind != TraceEventKind::kDeliver) return;
    if (!group_of(e)) return;  // foreign protocol
    delivered_by_[e.arg].insert(e.p);
    first_delivery_.emplace(e.arg, std::make_pair(index, e));
  }

 private:
  std::optional<int> dst_of(std::int64_t m) const {
    auto it = multicast_dst_.find(m);
    if (it != multicast_dst_.end()) return it->second;
    auto fd = first_delivery_.find(m);
    if (fd == first_delivery_.end()) return std::nullopt;
    return group_of(fd->second.second);
  }

  ProcessSet faulty_{cfg().faulty};
  std::map<std::int64_t, int> multicast_dst_;
  std::map<std::int64_t, ProcessSet> delivered_by_;
  std::map<std::int64_t, std::pair<std::uint64_t, TraceEvent>> first_delivery_;
};

// Ordering acyclicity over the delivery relation ↦ of spec.cpp.
class AcyclicityMonitor final : public MonitorBase {
 public:
  explicit AcyclicityMonitor(MonitorConfig cfg)
      : MonitorBase("acyclicity", std::move(cfg)) {}

  // Adds the m ↦ m' edges where p delivered m but never m' (they need group
  // membership, hence end-of-run), then re-checks. Same quiescence caveat as
  // AgreementMonitor::finalize.
  void finalize() {
    if (!ok()) return;
    auto adj = adj_;
    for (const auto& [p, delivered] : delivered_at_) {
      // Never-delivered multicasts addressed to p, computed once per process.
      // A quiescent complete run has none, and the edge fan-out below is
      // skipped entirely — the old delivered x multicasts scan per process
      // made finalize quadratic even when there was nothing to add.
      std::vector<std::int64_t> missing;
      for (const auto& [m2, dst2] : multicast_dst_) {
        if (delivered.count(m2)) continue;
        if (cfg().groups[static_cast<std::size_t>(dst2)].contains(p))
          missing.push_back(m2);
      }
      if (missing.empty()) continue;
      // ↦ only relates conflicting pairs: a missing commuting message
      // constrains nothing (it may deliver before or after anything p did
      // deliver), so the edge fan-out stays within the conflict class.
      for (std::int64_t m : delivered)
        for (std::int64_t m2 : missing)
          if (conflict_class_of(m) == conflict_class_of(m2))
            adj[m].insert(m2);
    }
    if (monitor_detail::has_cycle(adj)) {
      TraceEvent none{};
      flag(events_seen(), none,
           "delivery relation ↦ has a cycle through a never-delivered edge");
    }
  }

 protected:
  void absorb(const TraceEvent& e, std::uint64_t index) override {
    if (e.kind == TraceEventKind::kMulticast) {
      if (auto g = group_of(e)) multicast_dst_.emplace(e.arg, *g);
      return;
    }
    if (e.kind != TraceEventKind::kDeliver) return;
    if (!group_of(e)) return;  // foreign protocol
    auto& delivered = delivered_at_[e.p];
    // The chain edge runs from p's previous delivery *in the same conflict
    // class*: commuting messages are unordered by ↦, so a partially-ordered
    // protocol interleaving two classes differently at two processes is not
    // a cycle. With no class map every message is class 0 and this is the
    // classical consecutive-delivery chain.
    auto last = last_delivered_.find({e.p, conflict_class_of(e.arg)});
    if (last != last_delivered_.end() && last->second != e.arg &&
        !delivered.count(e.arg)) {
      // p is in dst of both (it delivered both), so the relation holds.
      adj_[last->second].insert(e.arg);
      if (ok() && monitor_detail::reaches(adj_, e.arg, last->second))
        flag(index, e,
             "delivering message " + std::to_string(e.arg) + " at p" +
                 std::to_string(e.p) + " closes an order cycle with message " +
                 std::to_string(last->second));
    }
    delivered.insert(e.arg);
    last_delivered_[{e.p, conflict_class_of(e.arg)}] = e.arg;
  }

 private:
  std::map<std::int64_t, int> multicast_dst_;
  std::map<ProcessId, std::set<std::int64_t>> delivered_at_;
  // (process, conflict class) -> the last message it delivered in that class.
  std::map<std::pair<ProcessId, std::int32_t>, std::int64_t> last_delivered_;
  std::map<std::int64_t, std::set<std::int64_t>> adj_;
};

// All three monitors behind one sink. finalize(quiescent) runs the
// end-of-run checks only when the run actually completed.
class InvariantMonitors final : public TraceSink {
 public:
  explicit InvariantMonitors(const MonitorConfig& cfg)
      : integrity_(cfg), agreement_(cfg), acyclicity_(cfg) {}

  void on_event(const TraceEvent& e) override {
    integrity_.on_event(e);
    agreement_.on_event(e);
    acyclicity_.on_event(e);
  }

  void finalize(bool quiescent) {
    if (!quiescent) return;
    agreement_.finalize();
    acyclicity_.finalize();
  }

  std::vector<MonitorViolation> violations() const {
    std::vector<MonitorViolation> out;
    for (const auto* v :
         {&integrity_.violation(), &agreement_.violation(),
          &acyclicity_.violation()})
      if (v->has_value()) out.push_back(**v);
    return out;
  }

  bool ok() const { return violations().empty(); }

  const IntegrityMonitor& integrity() const { return integrity_; }
  const AgreementMonitor& agreement() const { return agreement_; }
  const AcyclicityMonitor& acyclicity() const { return acyclicity_; }

 private:
  IntegrityMonitor integrity_;
  AgreementMonitor agreement_;
  AcyclicityMonitor acyclicity_;
};

inline std::string format_violation(const MonitorViolation& v) {
  return "[" + v.monitor + "] event " + std::to_string(v.event_index) + ": " +
         v.detail + " (" + format_event(v.event) + ")";
}

}  // namespace gam::sim
