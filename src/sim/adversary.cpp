#include "sim/adversary.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/contracts.hpp"

namespace gam::sim {

// ---------------------------------------------------------------------------
// PctScheduler

PctScheduler::PctScheduler(int depth, std::uint64_t step_bound,
                           std::uint64_t seed)
    : depth_(depth), step_bound_(step_bound), rng_(seed) {
  GAM_EXPECTS(depth >= 1);
  GAM_EXPECTS(step_bound >= 1);
}

void PctScheduler::begin(int process_count) {
  if (begun_) return;  // idempotent across repeated runs of one world
  begun_ = true;
  // Random distinct starting priorities: a uniform permutation of
  // [1, n], Fisher-Yates on the private stream.
  priority_.resize(static_cast<std::size_t>(process_count));
  for (int p = 0; p < process_count; ++p) priority_[static_cast<std::size_t>(p)] = p + 1;
  for (std::size_t i = priority_.size(); i > 1; --i) {
    auto j = static_cast<std::size_t>(rng_.below(i));
    std::swap(priority_[i - 1], priority_[j]);
  }
  // d-1 change points, uniform over [1, k). Duplicates are allowed by the
  // PCT construction (two demotions at one step collapse to one).
  change_points_.clear();
  for (int i = 0; i + 1 < depth_; ++i)
    change_points_.push_back(step_bound_ > 1 ? 1 + rng_.below(step_bound_ - 1)
                                             : 1);
  std::sort(change_points_.begin(), change_points_.end());
}

void PctScheduler::plan(ProcessSet candidates, std::vector<ProcessId>& out) {
  // Highest priority first; the driver runs the first attempt that fires and
  // (single_step) returns for a fresh plan.
  for (ProcessId p : candidates) out.push_back(p);
  std::sort(out.begin(), out.end(), [this](ProcessId a, ProcessId b) {
    return priority_[static_cast<std::size_t>(a)] >
           priority_[static_cast<std::size_t>(b)];
  });
}

void PctScheduler::fired(ProcessId p, std::uint64_t step_index) {
  // Demote the running process below every other priority at each change
  // point passed. Change points are sorted; consume the prefix <= index+1
  // (points are 1-based step counts).
  while (!change_points_.empty() && change_points_.front() <= step_index + 1) {
    priority_[static_cast<std::size_t>(p)] = next_low_--;
    change_points_.erase(change_points_.begin());
  }
}

// ---------------------------------------------------------------------------
// ReplayScheduler

std::vector<ProcessId> ReplayScheduler::attempts_from_events(
    const std::vector<TraceEvent>& events) {
  std::vector<ProcessId> attempts;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kReceive:
      case TraceEventKind::kNullStep:
      case TraceEventKind::kCrash:
        attempts.push_back(e.p);
        break;
      default:
        break;  // sends/fd-queries/delivers happen inside a step
    }
  }
  return attempts;
}

std::optional<ReplayScheduler> ReplayScheduler::from_file(
    const std::string& path) {
  auto events = load_trace(path);
  if (!events) return std::nullopt;
  return ReplayScheduler(attempts_from_events(*events));
}

void ReplayScheduler::plan(ProcessSet candidates,
                           std::vector<ProcessId>& out) {
  (void)candidates;  // the script, not the candidate set, decides
  if (cursor_ < attempts_.size()) out.push_back(attempts_[cursor_++]);
}

bool ReplayScheduler::take_idle_tick() {
  if (cursor_ < attempts_.size() && attempts_[cursor_] == -1) {
    ++cursor_;
    return true;
  }
  return false;
}

bool write_schedule(const std::string& path,
                    const std::vector<ProcessId>& attempts) {
  std::vector<TraceEvent> events;
  events.reserve(attempts.size());
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    TraceEvent e;
    e.t = i;
    e.p = attempts[i];
    e.kind = TraceEventKind::kNullStep;
    events.push_back(e);
  }
  return write_trace(path, events);
}

std::optional<std::vector<ProcessId>> load_schedule(const std::string& path) {
  auto events = load_trace(path);
  if (!events) return std::nullopt;
  return ReplayScheduler::attempts_from_events(*events);
}

// ---------------------------------------------------------------------------
// QuorumEdgeAdversary

QuorumEdgeAdversary::QuorumEdgeAdversary(std::vector<ProcessSet> groups,
                                         int process_count)
    : process_count_(process_count) {
  // Every nonempty pairwise intersection (including g∩g = g) is a Σ scope
  // whose quorums the protocol leans on; dedup so the seed→target map is
  // uniform over distinct boundaries.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t h = g; h < groups.size(); ++h) {
      ProcessSet s = groups[g] & groups[h];
      if (s.empty()) continue;
      if (std::find(scopes_.begin(), scopes_.end(), s) == scopes_.end())
        scopes_.push_back(s);
    }
  }
  GAM_EXPECTS(!scopes_.empty());
}

QuorumEdgeAdversary::Target QuorumEdgeAdversary::target_for(
    std::uint64_t seed, Time window) const {
  GAM_EXPECTS(window >= 1);
  Target t;
  t.scope = scopes_[seed % scopes_.size()];
  // The highest pid survives as the quorum of last resort; everyone else in
  // the scope dies back-to-back starting at a seed-staggered early time.
  t.survivor = t.scope.max();
  t.victims = t.scope;
  t.victims.erase(t.survivor);
  t.first_crash = 1 + (seed / scopes_.size()) % window;
  Time next = t.first_crash;
  for (ProcessId p : t.victims) {
    (void)p;
    t.last_crash = next++;
  }
  if (t.victims.empty()) t.last_crash = t.first_crash;
  return t;
}

FailurePattern QuorumEdgeAdversary::pattern_for(std::uint64_t seed,
                                                Time window) const {
  Target t = target_for(seed, window);
  FailurePattern pat(process_count_);
  Time next = t.first_crash;
  for (ProcessId p : t.victims) pat.crash_at(p, next++);
  return pat;
}

void QuorumEdgeInjector::tick(World& world, std::uint64_t steps_executed) {
  if (fired_ || steps_executed < trigger_step_) return;
  fired_ = true;
  // Crash every victim "now": the boundary lands wherever the run currently
  // is, rather than at a precomputed wall-clock time.
  Time now = world.now();
  Time next = now;
  for (ProcessId p : target_.victims)
    world.mutable_pattern().crash_at(p, next++);
}

// ---------------------------------------------------------------------------
// Specs

std::optional<SchedulerSpec> SchedulerSpec::parse(const std::string& text) {
  SchedulerSpec s;
  if (text == "random") return s;
  if (text == "pct") {
    s.kind = Kind::kPct;
    return s;
  }
  if (text.rfind("pct:", 0) == 0) {
    s.kind = Kind::kPct;
    char* end = nullptr;
    long d = std::strtol(text.c_str() + 4, &end, 10);
    if (!end || *end != '\0' || d < 1 || d > 64) return std::nullopt;
    s.depth = static_cast<int>(d);
    return s;
  }
  if (text.rfind("replay:", 0) == 0) {
    s.kind = Kind::kReplay;
    s.replay_path = text.substr(7);
    if (s.replay_path.empty()) return std::nullopt;
    return s;
  }
  return std::nullopt;
}

std::string SchedulerSpec::name() const {
  switch (kind) {
    case Kind::kRandom:
      return "random";
    case Kind::kPct:
      return "pct:" + std::to_string(depth);
    case Kind::kReplay:
      return "replay:" + replay_path;
  }
  return "?";
}

std::unique_ptr<Scheduler> SchedulerSpec::instantiate(
    std::uint64_t seed) const {
  switch (kind) {
    case Kind::kRandom:
      return std::make_unique<RandomScheduler>(
          trace_mix(seed, kSchedulerSeedSalt));
    case Kind::kPct:
      return std::make_unique<PctScheduler>(
          depth, step_bound, trace_mix(seed, kSchedulerSeedSalt));
    case Kind::kReplay: {
      auto r = ReplayScheduler::from_file(replay_path);
      if (!r) return nullptr;
      return std::make_unique<ReplayScheduler>(std::move(*r));
    }
  }
  return nullptr;
}

std::optional<AdversarySpec> AdversarySpec::parse(const std::string& text) {
  AdversarySpec a;
  if (text == "qedge") {
    a.quorum_edge_crashes = true;
    return a;
  }
  if (text.rfind("qedge+", 0) == 0) {
    a.quorum_edge_crashes = true;
    auto s = SchedulerSpec::parse(text.substr(6));
    if (!s) return std::nullopt;
    a.scheduler = *s;
    return a;
  }
  auto s = SchedulerSpec::parse(text);
  if (!s) return std::nullopt;
  a.scheduler = *s;
  return a;
}

std::string AdversarySpec::name() const {
  if (!quorum_edge_crashes) return scheduler.name();
  if (scheduler.kind == SchedulerSpec::Kind::kRandom) return "qedge";
  return "qedge+" + scheduler.name();
}

}  // namespace gam::sim
