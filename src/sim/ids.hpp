// Typed identifiers for the wire/trace layer.
//
// Protocol numbers, message types, and failure-detector classes used to
// travel through Context::send / trace_fd_query as raw std::int32_t, which
// meant every trace consumer and metrics label hand-decoded magic integers.
// These scoped enums give the three id spaces distinct types at the API
// boundary while keeping the underlying representation (and therefore the
// trace serialization format, `# gam-trace v1`) exactly as before: TraceEvent
// and Message keep raw int32 fields; the typed layer exists at call sites.
//
// ProtocolId and MsgType are intentionally open enums (no enumerators):
// protocols mint their own ids (per-subsystem kTraceBase constants), so the
// type is a brand, not a closed set. DetectorClass IS closed — it enumerates
// the paper's failure-detector modules and doubles as the metrics label and
// the `detector` field of kFdQuery trace events.
#pragma once

#include <cstdint>

namespace gam::sim {

enum class ProtocolId : std::int32_t {};
enum class MsgType : std::int32_t {};

// The failure-detector modules of the paper (Σ, Ω, γ, 1^P μ-components).
// Values are the wire encoding in kFdQuery events; 0/1 predate this enum.
enum class DetectorClass : std::int32_t {
  kOmega = 0,      // Ω leader election (per scope)
  kSigma = 1,      // Σ quorum
  kGamma = 2,      // γ family-faulty indicator
  kIndicator = 3,  // 1^P crash indicator
};

constexpr ProtocolId protocol_id(std::int32_t raw) { return ProtocolId{raw}; }
constexpr MsgType msg_type(std::int32_t raw) { return MsgType{raw}; }

// Families of protocol instances (one log per group/partition) are numbered
// as offsets from a named base id. This is the only sanctioned arithmetic on
// ProtocolId: `kBase + g` reads as "instance g of the family at kBase", and
// call sites never touch the raw representation (scripts/tier1.sh greps for
// raw-literal protocol ids).
constexpr ProtocolId operator+(ProtocolId base, std::int32_t offset) {
  return ProtocolId{static_cast<std::int32_t>(base) + offset};
}

constexpr std::int32_t raw(ProtocolId p) {
  return static_cast<std::int32_t>(p);
}
constexpr std::int32_t raw(MsgType t) { return static_cast<std::int32_t>(t); }
constexpr std::int32_t raw(DetectorClass d) {
  return static_cast<std::int32_t>(d);
}

// Label used by the metrics registry for fd_query counters; matches the
// pre-enum labels for omega/sigma so report schemas stay stable.
constexpr const char* detector_class_name(DetectorClass d) {
  switch (d) {
    case DetectorClass::kOmega:
      return "omega";
    case DetectorClass::kSigma:
      return "sigma";
    case DetectorClass::kGamma:
      return "gamma";
    case DetectorClass::kIndicator:
      return "indicator";
  }
  return "unknown";
}

}  // namespace gam::sim
