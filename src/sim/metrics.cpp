#include "sim/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

namespace gam::sim {

std::uint64_t Histogram::quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0) return min;
  auto want = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (want > count) want = count;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= want) {
      std::uint64_t est = bucket_upper(b);
      return std::min(std::max(est, min), max);
    }
  }
  return max;
}

std::uint64_t Histogram::quantile_interp(double q) const {
  if (count == 0) return 0;
  if (q <= 0) return min;
  if (q > 1) q = 1;
  const double want = q * static_cast<double>(count);  // fractional rank
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += in_bucket;
    if (static_cast<double>(seen) < want) continue;
    // The target rank falls in bucket b: interpolate between the bucket's
    // bounds by the rank's position within its population.
    const std::uint64_t lo = b == 0 ? 0 : bucket_upper(b - 1) + 1;
    const std::uint64_t hi = bucket_upper(b);
    const double frac =
        (want - lo_rank) / static_cast<double>(in_bucket);  // (0, 1]
    const double est =
        static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
    // Clamp in double first: the saturation bucket's bounds round to 2^64
    // in double, and a double -> uint64 cast past the top is undefined.
    if (est >= static_cast<double>(max)) return max;
    auto v = static_cast<std::uint64_t>(est + 0.5);
    return std::min(std::max(v, min), max);
  }
  return max;
}

void Metrics::merge(const Metrics& o) {
  for (const auto& [k, c] : o.counters_) counters_[k].merge(c);
  for (const auto& [k, g] : o.gauges_) gauges_[k].merge(g);
  for (const auto& [k, h] : o.histograms_) histograms_[k].merge(h);
}

Histogram Metrics::merged_histogram(const std::string& name) const {
  Histogram out;
  for (const auto& [k, h] : histograms_)
    if (k.name == name) out.merge(h);
  return out;
}

std::uint64_t Metrics::counter_total(const std::string& name) const {
  std::uint64_t t = 0;
  for (const auto& [k, c] : counters_)
    if (k.name == name) t += c.value;
  return t;
}

namespace {

// The subset of JSON we emit never needs escaping beyond this (labels are
// short identifiers); reject rather than mangle anything exotic.
void write_json_string(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
  std::fputc('"', f);
}

void write_key(std::FILE* f, const Metrics::Key& k) {
  std::fprintf(f, "{\"name\": ");
  write_json_string(f, k.name);
  std::fprintf(f, ", \"label\": ");
  write_json_string(f, k.label);
}

}  // namespace

void Metrics::write_json(std::FILE* f, int indent) const {
  std::string pad(static_cast<std::size_t>(indent), ' ');
  const char* p = pad.c_str();

  std::fprintf(f, "%s\"counters\": [", p);
  bool first = true;
  for (const auto& [k, c] : counters_) {
    std::fprintf(f, "%s\n%s  ", first ? "" : ",", p);
    write_key(f, k);
    std::fprintf(f, ", \"value\": %llu}",
                 static_cast<unsigned long long>(c.value));
    first = false;
  }
  std::fprintf(f, "%s%s],\n", first ? "" : "\n", first ? "" : p);

  std::fprintf(f, "%s\"gauges\": [", p);
  first = true;
  for (const auto& [k, g] : gauges_) {
    std::fprintf(f, "%s\n%s  ", first ? "" : ",", p);
    write_key(f, k);
    std::fprintf(f, ", \"value\": %lld, \"hwm\": %lld}",
                 static_cast<long long>(g.value),
                 static_cast<long long>(g.hwm));
    first = false;
  }
  std::fprintf(f, "%s%s],\n", first ? "" : "\n", first ? "" : p);

  std::fprintf(f, "%s\"histograms\": [", p);
  first = true;
  for (const auto& [k, h] : histograms_) {
    std::fprintf(f, "%s\n%s  ", first ? "" : ",", p);
    write_key(f, k);
    std::fprintf(
        f, ", \"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu, ",
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.count > 0 ? h.min : 0),
        static_cast<unsigned long long>(h.max));
    std::fprintf(f, "\"buckets\": [");
    bool bf = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      std::fprintf(f, "%s[%d, %llu]", bf ? "" : ", ", b,
                   static_cast<unsigned long long>(n));
      bf = false;
    }
    std::fprintf(f, "]}");
    first = false;
  }
  std::fprintf(f, "%s%s]\n", first ? "" : "\n", first ? "" : p);
}

// ---------------------------------------------------------------------------
// Report I/O. The parser is a minimal recursive-descent JSON reader for the
// schema write() emits (objects, arrays, strings, unsigned/signed integers).

Metrics& MetricsReport::config(const std::string& name) {
  for (auto& [n, m] : configs)
    if (n == name) return m;
  configs.emplace_back(name, Metrics{});
  return configs.back().second;
}

const Metrics* MetricsReport::find_config(const std::string& name) const {
  for (const auto& [n, m] : configs)
    if (n == name) return &m;
  return nullptr;
}

bool MetricsReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"schema\": \"%s\",\n", kSchema);
  for (const auto& [k, v] : meta) {
    std::fprintf(f, "  ");
    write_json_string(f, k);
    std::fprintf(f, ": ");
    write_json_string(f, v);
    std::fprintf(f, ",\n");
  }
  std::fprintf(f, "  \"configs\": [");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::fprintf(f, "%s\n    {\"name\": ", i ? "," : "");
    write_json_string(f, configs[i].first);
    std::fprintf(f, ",\n");
    configs[i].second.write_json(f, 5);
    std::fprintf(f, "    }");
  }
  std::fprintf(f, "%s]\n}\n", configs.empty() ? "" : "\n  ");
  std::fclose(f);
  return true;
}

namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  double num = 0;
  bool boolean = false;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const char* key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: return std::nullopt;  // \uXXXX etc.: we never emit these
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) return std::nullopt;
    ++pos_;  // closing quote
    return out;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::kObject;
      skip_ws();
      if (consume('}')) return v;
      for (;;) {
        auto key = string();
        if (!key || !consume(':')) return std::nullopt;
        auto item = value();
        if (!item) return std::nullopt;
        v.obj.emplace_back(std::move(*key), std::move(*item));
        if (consume(',')) continue;
        if (consume('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::kArray;
      skip_ws();
      if (consume(']')) return v;
      for (;;) {
        auto item = value();
        if (!item) return std::nullopt;
        v.arr.push_back(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      v.kind = JsonValue::kString;
      v.str = std::move(*s);
      return v;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = JsonValue::kBool;
      v.boolean = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = JsonValue::kBool;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    // Number.
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    v.kind = JsonValue::kNumber;
    v.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::uint64_t num_u64(const JsonValue* v) {
  return v && v->kind == JsonValue::kNumber
             ? static_cast<std::uint64_t>(v->num)
             : 0;
}

std::int64_t num_i64(const JsonValue* v) {
  return v && v->kind == JsonValue::kNumber ? static_cast<std::int64_t>(v->num)
                                            : 0;
}

bool load_metrics(const JsonValue& cfg, Metrics& out) {
  if (const JsonValue* cs = cfg.find("counters")) {
    for (const JsonValue& e : cs->arr) {
      const JsonValue* n = e.find("name");
      const JsonValue* l = e.find("label");
      if (!n) return false;
      out.counter(n->str, l ? l->str : "").value = num_u64(e.find("value"));
    }
  }
  if (const JsonValue* gs = cfg.find("gauges")) {
    for (const JsonValue& e : gs->arr) {
      const JsonValue* n = e.find("name");
      const JsonValue* l = e.find("label");
      if (!n) return false;
      Gauge& g = out.gauge(n->str, l ? l->str : "");
      g.value = num_i64(e.find("value"));
      g.hwm = num_i64(e.find("hwm"));
    }
  }
  if (const JsonValue* hs = cfg.find("histograms")) {
    for (const JsonValue& e : hs->arr) {
      const JsonValue* n = e.find("name");
      const JsonValue* l = e.find("label");
      if (!n) return false;
      Histogram& h = out.histogram(n->str, l ? l->str : "");
      h.count = num_u64(e.find("count"));
      h.sum = num_u64(e.find("sum"));
      h.max = num_u64(e.find("max"));
      h.min = h.count > 0 ? num_u64(e.find("min")) : ~std::uint64_t{0};
      if (const JsonValue* bs = e.find("buckets")) {
        for (const JsonValue& pair : bs->arr) {
          if (pair.arr.size() != 2) return false;
          auto idx = static_cast<std::size_t>(pair.arr[0].num);
          if (idx >= Histogram::kBuckets) return false;
          h.buckets[idx] = static_cast<std::uint64_t>(pair.arr[1].num);
        }
      }
    }
  }
  return true;
}

}  // namespace

std::optional<MetricsReport> MetricsReport::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  auto root = JsonParser(text).parse();
  if (!root || root->kind != JsonValue::kObject) return std::nullopt;
  const JsonValue* schema = root->find("schema");
  if (!schema || schema->str != kSchema) return std::nullopt;

  MetricsReport rep;
  for (const auto& [k, v] : root->obj) {
    if (k == "schema" || k == "configs") continue;
    if (v.kind == JsonValue::kString) rep.meta[k] = v.str;
  }
  const JsonValue* configs = root->find("configs");
  if (!configs || configs->kind != JsonValue::kArray) return std::nullopt;
  for (const JsonValue& cfg : configs->arr) {
    const JsonValue* name = cfg.find("name");
    if (!name) return std::nullopt;
    if (!load_metrics(cfg, rep.config(name->str))) return std::nullopt;
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Diffing.

double SeriesDelta::rel() const {
  if (kind != kChanged) return 1.0;
  double denom = std::max(std::fabs(before), std::fabs(after));
  if (denom == 0) return 0;
  return std::fabs(after - before) / denom;
}

namespace {

std::string series_id(const char* kind, const Metrics::Key& k,
                      const char* facet = nullptr) {
  std::string s = std::string(kind) + " " + k.name;
  if (!k.label.empty()) s += "{" + k.label + "}";
  if (facet) s += std::string(" ") + facet;
  return s;
}

void push_delta(std::vector<SeriesDelta>& out, SeriesDelta::Kind kind,
                const std::string& config, std::string series, double before,
                double after, double threshold) {
  SeriesDelta d;
  d.kind = kind;
  d.config = config;
  d.series = std::move(series);
  d.before = before;
  d.after = after;
  if (kind == SeriesDelta::kChanged && d.rel() <= threshold) return;
  out.push_back(std::move(d));
}

// Generic walk over one map pair: emits removed (in a, not b), new (in b, not
// a), and per-facet changed entries via `facets(key, a_entry, b_entry)`.
template <typename M, typename F>
void diff_maps(std::vector<SeriesDelta>& out, const std::string& config,
               const char* kind, const M& a, const M& b, double threshold,
               F&& facets) {
  for (const auto& [k, va] : a) {
    auto it = b.find(k);
    if (it == b.end()) {
      push_delta(out, SeriesDelta::kRemoved, config, series_id(kind, k), 0, 0,
                 threshold);
      continue;
    }
    facets(k, va, it->second);
  }
  for (const auto& [k, vb] : b)
    if (!a.count(k))
      push_delta(out, SeriesDelta::kNew, config, series_id(kind, k), 0, 0,
                 threshold);
}

}  // namespace

std::vector<SeriesDelta> diff_reports(const MetricsReport& a,
                                      const MetricsReport& b,
                                      double rel_threshold) {
  std::vector<SeriesDelta> out;

  auto diff_config = [&](const std::string& name, const Metrics& ma,
                         const Metrics& mb) {
    diff_maps(out, name, "counter", ma.counters(), mb.counters(),
              rel_threshold,
              [&](const Metrics::Key& k, const Counter& ca, const Counter& cb) {
                push_delta(out, SeriesDelta::kChanged, name,
                           series_id("counter", k),
                           static_cast<double>(ca.value),
                           static_cast<double>(cb.value), rel_threshold);
              });
    diff_maps(out, name, "gauge", ma.gauges(), mb.gauges(), rel_threshold,
              [&](const Metrics::Key& k, const Gauge& ga, const Gauge& gb) {
                push_delta(out, SeriesDelta::kChanged, name,
                           series_id("gauge", k, "value"),
                           static_cast<double>(ga.value),
                           static_cast<double>(gb.value), rel_threshold);
                push_delta(out, SeriesDelta::kChanged, name,
                           series_id("gauge", k, "hwm"),
                           static_cast<double>(ga.hwm),
                           static_cast<double>(gb.hwm), rel_threshold);
              });
    diff_maps(out, name, "histogram", ma.histograms(), mb.histograms(),
              rel_threshold,
              [&](const Metrics::Key& k, const Histogram& ha,
                  const Histogram& hb) {
                push_delta(out, SeriesDelta::kChanged, name,
                           series_id("histogram", k, "count"),
                           static_cast<double>(ha.count),
                           static_cast<double>(hb.count), rel_threshold);
                push_delta(out, SeriesDelta::kChanged, name,
                           series_id("histogram", k, "mean"), ha.mean(),
                           hb.mean(), rel_threshold);
              });
  };

  for (const auto& [name, ma] : a.configs) {
    const Metrics* mb = b.find_config(name);
    if (!mb) {
      push_delta(out, SeriesDelta::kRemoved, name, "config", 0, 0,
                 rel_threshold);
      continue;
    }
    diff_config(name, ma, *mb);
  }
  for (const auto& [name, mb] : b.configs)
    if (!a.find_config(name))
      push_delta(out, SeriesDelta::kNew, name, "config", 0, 0, rel_threshold);

  std::stable_sort(out.begin(), out.end(),
                   [](const SeriesDelta& x, const SeriesDelta& y) {
                     return x.rel() > y.rel();
                   });
  return out;
}

}  // namespace gam::sim
