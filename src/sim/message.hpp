// Messages and the message buffer (paper, Appendix A).
//
// The model's BUFF holds every message sent but not yet received. A receive
// attempt by p either removes a message addressed to p or returns the null
// message, and the well-formedness rules require that a process taking
// infinitely many steps eventually receives everything addressed to it. The
// simulator enforces that with seeded-random but fair message selection.
//
// Representation: one unordered pending pool (a flat vector) per destination.
// A random receive picks uniformly over the pool and removes via swap-and-pop
// — O(1) instead of the O(pending) middle-erase of an ordered queue. Uniform
// choice over an unordered pool is all the fairness argument needs: the pool
// order never biases the pick, so every pending message keeps a positive,
// equal chance per receive and is eventually drained. The FIFO variant for
// deterministic tests keeps a head cursor over the same vector.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/payload.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::sim {

// A wire message. Protocols multiplex on (protocol, type) and encode their
// payloads into `data`; keeping the payload as flat integers keeps the
// simulator allocation-light and every run byte-reproducible.
struct Message {
  ProcessId src = -1;
  ProcessId dst = -1;
  std::int32_t protocol = 0;  // which protocol instance this belongs to
  std::int32_t type = 0;      // protocol-specific discriminator
  Payload data;
};

// Observation hook for every message crossing the buffer. The World installs
// itself here so that wire accounting (per-process messages_sent) and event
// tracing cover EVERY send path uniformly — Context::send, the broadcast
// overloads, and direct buffer injection by tests — instead of only the paths
// that happen to go through a Context.
class BufferObserver {
 public:
  virtual ~BufferObserver() = default;
  // Fired after `m` was appended to its destination queue.
  virtual void on_buffer_send(const Message& m) = 0;
  // Fired after `m` was removed by receive() or receive_fifo().
  virtual void on_buffer_receive(const Message& m) = 0;
};

class MessageBuffer {
 public:
  // Payload/copy accounting for the perf harness (bench/sweep.hpp).
  struct AllocStats {
    std::uint64_t inline_payloads = 0;  // non-empty payloads that fit inline
    std::uint64_t heap_payloads = 0;    // payloads that spilled to the heap
    std::uint64_t moved_sends = 0;      // sends that moved instead of copied
  };

  // At most one observer; it must outlive the buffer (the World owns both).
  void set_observer(BufferObserver* o) { observer_ = o; }

  void send(Message m) {
    GAM_EXPECTS(m.dst >= 0 && m.dst < ProcessSet::kMaxProcesses);
    auto d = static_cast<size_t>(m.dst);
    if (d >= queues_.size()) queues_.resize(d + 1);
    if (!m.data.empty()) {
      if (m.data.spilled())
        ++alloc_stats_.heap_payloads;
      else
        ++alloc_stats_.inline_payloads;
    }
    nonempty_.insert(m.dst);
    auto& q = queues_[d];
    q.pool.push_back(std::move(m));
    ++size_;
    if (observer_) observer_->on_buffer_send(q.pool.back());
  }

  // Broadcast to every member of `dst` (the sender included if present). The
  // payload is copied for all recipients but the last, which receives it by
  // move — a broadcast costs |dst| - 1 payload copies, not |dst|.
  void send_to_set(Message proto, ProcessSet dst) {
    if (dst.empty()) return;
    ProcessId last = dst.max();
    for (ProcessId p : dst) {
      if (p == last) break;
      Message m = proto;
      m.dst = p;
      send(std::move(m));
    }
    proto.dst = last;
    ++alloc_stats_.moved_sends;
    send(std::move(proto));
  }

  bool has_message_for(ProcessId p) const {
    auto d = static_cast<size_t>(p);
    return d < queues_.size() && queues_[d].live() > 0;
  }

  // Destinations with at least one pending message, maintained incrementally
  // so the World's scheduler never rescans empty queues.
  ProcessSet nonempty_set() const { return nonempty_; }

  // Remove and return a message addressed to p, chosen uniformly among the
  // pending ones. Uniform choice plus an unbounded run yields the fairness
  // the model demands (every message is eventually received). Returns
  // nullopt when the buffer holds nothing for p (the "null message" case).
  std::optional<Message> receive(ProcessId p, Rng& rng) {
    auto d = static_cast<size_t>(p);
    if (d >= queues_.size() || queues_[d].live() == 0) return std::nullopt;
    auto& q = queues_[d];
    auto idx = q.head + static_cast<size_t>(rng.below(q.live()));
    Message m = std::move(q.pool[idx]);
    if (idx + 1 != q.pool.size()) q.pool[idx] = std::move(q.pool.back());
    q.pool.pop_back();
    after_removal(p, q);
    if (observer_) observer_->on_buffer_receive(m);
    return m;
  }

  // Scripted-replay variant: removes and returns the OLDEST pending message
  // for p satisfying `pred`, preserving the relative order of the remaining
  // pool (a stable middle-erase, not swap-and-pop — replay needs the pool to
  // stay in send order so later keys keep matching their oldest candidate).
  // Returns nullopt when nothing pending matches.
  template <typename Pred>
  std::optional<Message> receive_match(ProcessId p, Pred&& pred) {
    auto d = static_cast<size_t>(p);
    if (d >= queues_.size() || queues_[d].live() == 0) return std::nullopt;
    auto& q = queues_[d];
    for (size_t i = q.head; i < q.pool.size(); ++i) {
      if (!pred(q.pool[i])) continue;
      Message m = std::move(q.pool[i]);
      q.pool.erase(q.pool.begin() + static_cast<std::ptrdiff_t>(i));
      after_removal(p, q);
      if (observer_) observer_->on_buffer_receive(m);
      return m;
    }
    return std::nullopt;
  }

  // FIFO variant used by tests that need deterministic delivery order.
  std::optional<Message> receive_fifo(ProcessId p) {
    auto d = static_cast<size_t>(p);
    if (d >= queues_.size() || queues_[d].live() == 0) return std::nullopt;
    auto& q = queues_[d];
    Message m = std::move(q.pool[q.head++]);
    after_removal(p, q);
    if (observer_) observer_->on_buffer_receive(m);
    return m;
  }

  size_t size() const { return size_; }
  size_t pending_for(ProcessId p) const {
    auto d = static_cast<size_t>(p);
    return d < queues_.size() ? queues_[d].live() : 0;
  }

  const AllocStats& alloc_stats() const { return alloc_stats_; }

 private:
  struct Queue {
    std::vector<Message> pool;
    size_t head = 0;  // consumed prefix (receive_fifo); [head, end) is live
    size_t live() const { return pool.size() - head; }
  };

  void after_removal(ProcessId p, Queue& q) {
    --size_;
    if (q.live() == 0) {
      q.pool.clear();
      q.head = 0;
      nonempty_.erase(p);
    } else if (q.head > 64 && q.head * 2 >= q.pool.size()) {
      // Amortized compaction of the consumed FIFO prefix.
      q.pool.erase(q.pool.begin(),
                   q.pool.begin() + static_cast<std::ptrdiff_t>(q.head));
      q.head = 0;
    }
  }

  std::vector<Queue> queues_;
  ProcessSet nonempty_;
  size_t size_ = 0;
  AllocStats alloc_stats_;
  BufferObserver* observer_ = nullptr;
};

}  // namespace gam::sim
