// Messages and the message buffer (paper, Appendix A).
//
// The model's BUFF holds every message sent but not yet received. A receive
// attempt by p either removes a message addressed to p or returns the null
// message, and the well-formedness rules require that a process taking
// infinitely many steps eventually receives everything addressed to it. The
// simulator enforces that with seeded-random but fair message selection.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "util/contracts.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::sim {

// A wire message. Protocols multiplex on (protocol, type) and encode their
// payloads into `data`; keeping the payload as flat integers keeps the
// simulator allocation-light and every run byte-reproducible.
struct Message {
  ProcessId src = -1;
  ProcessId dst = -1;
  std::int32_t protocol = 0;  // which protocol instance this belongs to
  std::int32_t type = 0;      // protocol-specific discriminator
  std::vector<std::int64_t> data;
};

class MessageBuffer {
 public:
  void send(Message m) {
    GAM_EXPECTS(m.dst >= 0 && m.dst < ProcessSet::kMaxProcesses);
    auto d = static_cast<size_t>(m.dst);
    if (d >= queues_.size()) queues_.resize(d + 1);
    queues_[d].push_back(std::move(m));
    ++size_;
  }

  // Broadcast to every member of `dst` (the sender included if present).
  void send_to_set(const Message& proto, ProcessSet dst) {
    for (ProcessId p : dst) {
      Message m = proto;
      m.dst = p;
      send(std::move(m));
    }
  }

  bool has_message_for(ProcessId p) const {
    auto d = static_cast<size_t>(p);
    return d < queues_.size() && !queues_[d].empty();
  }

  // Remove and return a message addressed to p, chosen uniformly among the
  // pending ones. Uniform choice plus an unbounded run yields the fairness
  // the model demands (every message is eventually received). Returns
  // nullopt when the buffer holds nothing for p (the "null message" case).
  std::optional<Message> receive(ProcessId p, Rng& rng) {
    auto d = static_cast<size_t>(p);
    if (d >= queues_.size() || queues_[d].empty()) return std::nullopt;
    auto& q = queues_[d];
    auto idx = static_cast<size_t>(rng.below(q.size()));
    Message m = std::move(q[idx]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
    --size_;
    return m;
  }

  // FIFO variant used by tests that need deterministic delivery order.
  std::optional<Message> receive_fifo(ProcessId p) {
    auto d = static_cast<size_t>(p);
    if (d >= queues_.size() || queues_[d].empty()) return std::nullopt;
    Message m = std::move(queues_[d].front());
    queues_[d].pop_front();
    --size_;
    return m;
  }

  size_t size() const { return size_; }
  size_t pending_for(ProcessId p) const {
    auto d = static_cast<size_t>(p);
    return d < queues_.size() ? queues_[d].size() : 0;
  }

 private:
  std::vector<std::deque<Message>> queues_;
  size_t size_ = 0;
};

}  // namespace gam::sim
