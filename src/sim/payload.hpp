// Small-buffer-optimized message payload.
//
// Wire messages in the simulator carry a handful of flat int64 words (Paxos
// headers, quorum-store cells); a std::vector payload meant one heap
// allocation per message sent, which dominated the send path of large runs.
// Payload stores up to kInlineCapacity words inline and spills to the heap
// only for the rare large message (quorum-store snapshots). The type keeps
// the vector-ish surface the protocol code uses: initializer-list and
// vector construction, push_back, operator[], iteration, equality.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <vector>

#include "util/contracts.hpp"

namespace gam::sim {

class Payload {
 public:
  static constexpr std::size_t kInlineCapacity = 4;

  Payload() = default;
  Payload(std::initializer_list<std::int64_t> xs) {
    assign(xs.begin(), xs.size());
  }
  // Implicit on purpose: call sites that assemble a std::vector payload keep
  // compiling (the copy into inline/heap storage happens once, at the send).
  Payload(const std::vector<std::int64_t>& xs) { assign(xs.data(), xs.size()); }

  Payload(const Payload& o) { assign(o.data(), o.size_); }
  Payload(Payload&& o) noexcept { steal(o); }
  Payload& operator=(const Payload& o) {
    if (this != &o) {
      release();
      assign(o.data(), o.size_);
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~Payload() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // True when the payload lives on the heap (did not fit inline).
  bool spilled() const { return heap_ != nullptr; }

  std::int64_t* data() { return heap_ ? heap_ : inline_; }
  const std::int64_t* data() const { return heap_ ? heap_ : inline_; }

  std::int64_t& operator[](std::size_t i) {
    GAM_EXPECTS(i < size_);
    return data()[i];
  }
  std::int64_t operator[](std::size_t i) const {
    GAM_EXPECTS(i < size_);
    return data()[i];
  }

  std::int64_t* begin() { return data(); }
  std::int64_t* end() { return data() + size_; }
  const std::int64_t* begin() const { return data(); }
  const std::int64_t* end() const { return data() + size_; }

  void push_back(std::int64_t x) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data()[size_++] = x;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void clear() { size_ = 0; }

  bool operator==(const Payload& o) const {
    return size_ == o.size_ && std::equal(begin(), end(), o.begin());
  }

 private:
  void assign(const std::int64_t* src, std::size_t n) {
    if (n > capacity_) grow(n);
    if (n > 0) std::memcpy(data(), src, n * sizeof(std::int64_t));
    size_ = static_cast<std::uint32_t>(n);
  }

  void grow(std::size_t n) {
    std::size_t cap = std::max<std::size_t>(n, kInlineCapacity * 2);
    auto* fresh = new std::int64_t[cap];
    // Heapless payloads hold at most kInlineCapacity words; the explicit
    // bound keeps the compiler's bounds checker happy.
    std::size_t live =
        heap_ ? size_ : std::min<std::size_t>(size_, kInlineCapacity);
    if (live > 0) std::memcpy(fresh, data(), live * sizeof(std::int64_t));
    delete[] heap_;
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(cap);
  }

  void steal(Payload& o) noexcept {
    size_ = o.size_;
    if (o.heap_) {
      heap_ = o.heap_;
      capacity_ = o.capacity_;
      o.heap_ = nullptr;
    } else if (size_ > 0) {
      // A heapless payload holds at most kInlineCapacity words; the explicit
      // bound also lets the compiler see the copy stays inside inline_.
      std::memcpy(inline_, o.inline_,
                  std::min<std::size_t>(size_, kInlineCapacity) *
                      sizeof(std::int64_t));
    }
    o.size_ = 0;
    o.capacity_ = kInlineCapacity;
  }

  void release() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = kInlineCapacity;
  std::int64_t* heap_ = nullptr;
  std::int64_t inline_[kInlineCapacity];
};

}  // namespace gam::sim
