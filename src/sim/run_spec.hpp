// RunSpec + Scenario: the single way to construct and run a World.
//
// Before this layer, every test/bench/tool duplicated the same five-part
// setup dance — build a FailurePattern, construct a World from positional
// arguments, attach a trace sink, attach metrics, pick a step budget — and
// there was nowhere to hang a scheduling strategy. RunSpec is a fluent,
// copyable value describing a scenario:
//
//   sim::Scenario sc(sim::RunSpec{}
//                        .groups(fig1)            // or .processes(n)
//                        .failures(pattern)
//                        .seed(42)
//                        .scheduler(sim::pct(3))
//                        .trace(&recorder)
//                        .metrics(&registry));
//   sc.world().install(0, ...);
//   sc.run();
//
// Scenario materializes the spec: it owns the World and the instantiated
// Scheduler (strategies fork their randomness from the run seed, so a spec
// plus a seed is a complete, reproducible scenario description). The old
// World(FailurePattern, seed) positional constructor is gone; Scenario is
// the only way to build a World.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/adversary.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::sim {

class RunSpec {
 public:
  RunSpec() = default;

  // Crash-free universe of n processes (overridden by failures()).
  RunSpec& processes(int n) {
    process_count_ = n;
    return *this;
  }

  RunSpec& failures(FailurePattern f) {
    pattern_ = std::move(f);
    return *this;
  }

  // Records the group memberships (for quorum-edge adversaries and monitor
  // wiring) and defaults the process count. Accepts anything shaped like
  // groups::GroupSystem — a template so sim stays below groups in the
  // layering.
  template <typename GroupSystemLike>
  RunSpec& groups(const GroupSystemLike& sys) {
    groups_.clear();
    for (int g = 0; g < sys.group_count(); ++g) groups_.push_back(sys.group(g));
    if (process_count_ == 0) process_count_ = sys.process_count();
    return *this;
  }

  RunSpec& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  RunSpec& max_steps(std::uint64_t n) {
    max_steps_ = n;
    return *this;
  }

  RunSpec& scheduler(SchedulerSpec spec) {
    scheduler_ = spec;
    return *this;
  }

  // Escape hatch for strategies SchedulerSpec cannot name (hand-built replay
  // scripts, test doubles). The factory receives the run seed.
  RunSpec& scheduler_factory(
      std::function<std::unique_ptr<Scheduler>(std::uint64_t)> f) {
    factory_ = std::move(f);
    return *this;
  }

  // Non-owning; must outlive the Scenario's runs.
  RunSpec& crash_injector(CrashInjector* inj) {
    injector_ = inj;
    return *this;
  }

  RunSpec& trace(TraceSink* sink) {
    trace_sink_ = sink;
    return *this;
  }

  RunSpec& metrics(Metrics* reg) {
    metrics_ = reg;
    return *this;
  }

  // Ordered-batch / pipelining knobs, consumed by the protocol layers built
  // on top of the scenario (MuMulticast macro-steps + batched log appends;
  // UniversalLog's bounded instance window). The 1/1 default is today's
  // one-action-per-step, one-op-per-instance behavior, byte for byte.
  RunSpec& batch_k(int k) {
    batch_k_ = k < 1 ? 1 : k;
    return *this;
  }
  RunSpec& window_size(int w) {
    window_size_ = w < 1 ? 1 : w;
    return *this;
  }

  // The pattern the scenario runs under: explicit failures, else a crash-free
  // universe over the declared process count.
  FailurePattern resolve_pattern() const {
    if (pattern_) return *pattern_;
    GAM_EXPECTS(process_count_ > 0);
    return FailurePattern(process_count_);
  }

  std::uint64_t run_seed() const { return seed_; }
  std::uint64_t step_budget() const { return max_steps_; }
  const SchedulerSpec& scheduler_spec() const { return scheduler_; }
  const std::vector<ProcessSet>& group_sets() const { return groups_; }
  TraceSink* trace_sink() const { return trace_sink_; }
  Metrics* metrics_registry() const { return metrics_; }
  CrashInjector* injector() const { return injector_; }
  int batch() const { return batch_k_; }
  int window() const { return window_size_; }
  const std::function<std::unique_ptr<Scheduler>(std::uint64_t)>&
  scheduler_factory_fn() const {
    return factory_;
  }

 private:
  int process_count_ = 0;
  std::optional<FailurePattern> pattern_;
  std::vector<ProcessSet> groups_;
  std::uint64_t seed_ = 1;
  std::uint64_t max_steps_ = std::uint64_t{1} << 22;
  SchedulerSpec scheduler_;
  std::function<std::unique_ptr<Scheduler>(std::uint64_t)> factory_;
  CrashInjector* injector_ = nullptr;
  TraceSink* trace_sink_ = nullptr;
  Metrics* metrics_ = nullptr;
  int batch_k_ = 1;
  int window_size_ = 1;
};

// Materializes a RunSpec: owns the World plus the instantiated scheduler and
// wires sinks/metrics/injector. Movable; not copyable (the World isn't).
class Scenario {
 public:
  explicit Scenario(RunSpec spec) : spec_(std::move(spec)) {
    world_.reset(new World(World::ScenarioKey{}, spec_.resolve_pattern(),
                           spec_.run_seed()));
    if (spec_.scheduler_factory_fn())
      scheduler_ = spec_.scheduler_factory_fn()(spec_.run_seed());
    else if (spec_.scheduler_spec().kind != SchedulerSpec::Kind::kRandom)
      scheduler_ = spec_.scheduler_spec().instantiate(spec_.run_seed());
    // kRandom needs no explicit object: the World's lazily-owned default is
    // seeded identically (kSchedulerSeedSalt), so spec'd and default random
    // runs are byte-for-byte the same.
    GAM_EXPECTS(spec_.scheduler_spec().kind == SchedulerSpec::Kind::kRandom ||
                spec_.scheduler_factory_fn() || scheduler_ != nullptr);
    if (scheduler_) world_->set_scheduler(scheduler_.get());
    if (spec_.injector()) world_->set_crash_injector(spec_.injector());
    if (spec_.trace_sink()) world_->set_trace_sink(spec_.trace_sink());
    if (spec_.metrics_registry()) world_->set_metrics(spec_.metrics_registry());
  }

  World& world() { return *world_; }
  const World& world() const { return *world_; }
  const RunSpec& spec() const { return spec_; }
  Scheduler* scheduler() { return scheduler_.get(); }

  // Runs to quiescence under the spec's step budget.
  bool run() { return world_->run_until_quiescent(spec_.step_budget()); }

 private:
  RunSpec spec_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<World> world_;
};

}  // namespace gam::sim
