// Low-overhead metrics for the simulator and the protocol layers.
//
// The registry holds three primitive series kinds, each keyed by
// (name, label) — the label carries the per-process / per-group dimension
// ("g3", "g0x2", "sigma", ...):
//
//   Counter    — monotone event count (FD queries, consensus proposes);
//   Gauge      — last-written value plus a high-water mark (log sizes,
//                message-buffer depth, the genuineness ledger);
//   Histogram  — power-of-two buckets over uint64 samples (delivery latency,
//                convoy wait — all in simulated steps, never wall clock, so
//                reports are byte-reproducible seed for seed).
//
// Cost model: probes are pointer-indirect writes behind an `if (metrics_)`
// null check — the null backend (no registry attached, the default) costs one
// predictable branch per probe site. Handle resolution (the map lookup) only
// happens at attach time, never per sample. Building with -DGAM_METRICS=OFF
// defines GAM_NO_METRICS and compiles every probe statement out entirely; the
// registry types themselves stay available so reports can still be read.
//
// Aggregation: Metrics::merge is commutative and associative — counters and
// histogram buckets add, gauge values add while high-water marks max — so the
// parallel sweep pool can give every job its own registry and fold them in
// job-index order, yielding a deterministic aggregate regardless of thread
// interleaving.
//
// Reporting: MetricsReport is the versioned JSON run-report schema
// ("gam-metrics-v1") written by `bench_sweep --metrics=PATH` and consumed by
// `tools/metrics_report` (pretty-print / diff). Serialization order is the
// registry's map order, so equal registries serialize byte-identically.
#pragma once

#include <bit>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gam::sim {

// Probe gating: statements wrapped in GAM_METRICS_PROBE vanish entirely under
// -DGAM_NO_METRICS (the CMake option GAM_METRICS=OFF), mirroring GAM_NO_TRACE.
#ifdef GAM_NO_METRICS
#define GAM_METRICS_PROBE(...) \
  do {                         \
  } while (0)
inline constexpr bool kMetricsCompiled = false;
#else
#define GAM_METRICS_PROBE(...) \
  do {                         \
    __VA_ARGS__;               \
  } while (0)
inline constexpr bool kMetricsCompiled = true;
#endif

struct Counter {
  std::uint64_t value = 0;

  void add(std::uint64_t d = 1) { value += d; }
  void merge(const Counter& o) { value += o.value; }
};

// set() records the current value and maintains the high-water mark. Across a
// merge, values add (a per-run final reading becomes a sweep total) and
// high-water marks max (the deepest any run ever got).
struct Gauge {
  std::int64_t value = 0;
  std::int64_t hwm = 0;

  void set(std::int64_t v) {
    value = v;
    if (v > hwm) hwm = v;
  }
  void merge(const Gauge& o) {
    value += o.value;
    if (o.hwm > hwm) hwm = o.hwm;
  }
};

// Power-of-two-bucket histogram over uint64 samples. Bucket index is
// bit_width(v): bucket 0 holds exactly the zero-width samples (v == 0) and
// bucket i >= 1 holds [2^(i-1), 2^i - 1]; bucket 64 is the saturation bucket
// for the top half of the uint64 range (there is no wider value, so nothing
// is ever dropped). min/sum/max are exact; quantiles are bucket upper-bound
// estimates clamped to the observed max.
struct Histogram {
  static constexpr int kBuckets = 65;  // bit_width ranges over 0..64

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = ~std::uint64_t{0};  // meaningful only when count > 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  static int bucket_of(std::uint64_t v) { return std::bit_width(v); }

  // Inclusive upper bound of bucket b (lower bound is the previous bound + 1).
  static std::uint64_t bucket_upper(int b) {
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++buckets[static_cast<std::size_t>(bucket_of(v))];
  }

  void merge(const Histogram& o) {
    count += o.count;
    sum += o.sum;
    if (o.count > 0) {
      if (o.min < min) min = o.min;
      if (o.max > max) max = o.max;
    }
    for (int b = 0; b < kBuckets; ++b)
      buckets[static_cast<std::size_t>(b)] += o.buckets[static_cast<std::size_t>(b)];
  }

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  // Upper-bound estimate of the q-quantile (0 < q <= 1), clamped to [min, max].
  std::uint64_t quantile(double q) const;

  // Interpolated estimate of the q-quantile: finds the bucket holding the
  // target rank and interpolates linearly between the bucket's bounds by the
  // rank's position within it (assuming samples spread uniformly inside the
  // bucket). Tighter than quantile() — which always answers a bucket upper
  // bound — while still exact for single-sample and single-bucket cases via
  // the [min, max] clamp. tools/metrics_report prints these as p50/p90/p99.
  std::uint64_t quantile_interp(double q) const;
};

// The registry. Handles returned by counter()/gauge()/histogram() are stable
// for the registry's lifetime (node-based map), so hot paths resolve once and
// write through the reference.
class Metrics {
 public:
  struct Key {
    std::string name;
    std::string label;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return label < o.label;
    }
  };

  Counter& counter(const std::string& name, const std::string& label = {}) {
    return counters_[Key{name, label}];
  }
  Gauge& gauge(const std::string& name, const std::string& label = {}) {
    return gauges_[Key{name, label}];
  }
  Histogram& histogram(const std::string& name, const std::string& label = {}) {
    return histograms_[Key{name, label}];
  }

  const std::map<Key, Counter>& counters() const { return counters_; }
  const std::map<Key, Gauge>& gauges() const { return gauges_; }
  const std::map<Key, Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Commutative fold of another registry into this one (see header comment).
  void merge(const Metrics& o);

  // A histogram holding the merge of every series named `name` regardless of
  // label (e.g. the all-groups delivery-latency distribution).
  Histogram merged_histogram(const std::string& name) const;

  // Sum of every counter named `name` across labels.
  std::uint64_t counter_total(const std::string& name) const;

  // Deterministic JSON: three sorted arrays ("counters", "gauges",
  // "histograms"), histogram buckets sparse as [index, count] pairs.
  // `indent` is the number of leading spaces per line.
  void write_json(std::FILE* f, int indent) const;

 private:
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

// ---------------------------------------------------------------------------
// The versioned run report: flat string metadata plus one Metrics per
// configuration, in insertion order.

struct MetricsReport {
  static constexpr const char* kSchema = "gam-metrics-v1";

  // Flat metadata (git_rev, build_type, engine, ...). Serialized sorted.
  std::map<std::string, std::string> meta;
  std::vector<std::pair<std::string, Metrics>> configs;

  Metrics& config(const std::string& name);
  const Metrics* find_config(const std::string& name) const;

  bool write(const std::string& path) const;
  // Parses a report previously produced by write(). Returns nullopt on I/O or
  // schema errors (including an unknown schema version).
  static std::optional<MetricsReport> load(const std::string& path);
};

// One line of a report diff: a series that is new in B, gone in B, or whose
// value moved by more than the relative threshold.
struct SeriesDelta {
  enum Kind { kNew, kRemoved, kChanged };
  Kind kind = kChanged;
  std::string config;
  std::string series;  // "counter fd_query{gamma}", "histogram ...{g0} mean"
  double before = 0;
  double after = 0;

  // Relative change |after - before| / max(|before|, |after|); 1 for
  // new/removed series.
  double rel() const;
};

// Compares every series of the two reports. A series "value" is: the counter
// value, the gauge value and high-water mark (two comparisons), or the
// histogram count and mean (two comparisons). Deltas beyond `rel_threshold`
// (plus all new/removed series) are returned, most-changed first.
std::vector<SeriesDelta> diff_reports(const MetricsReport& a,
                                      const MetricsReport& b,
                                      double rel_threshold);

}  // namespace gam::sim
