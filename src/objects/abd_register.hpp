// A multi-writer multi-reader atomic register from Σ (ABD emulation, [15]).
//
// One cell of the QuorumStore, with timestamps (counter, writer-id) packed so
// concurrent writers never tie. write = snapshot (learn the max timestamp) +
// store; read = snapshot (which already performs the ABD write-back).
#pragma once

#include <functional>
#include <memory>

#include "objects/quorum_store.hpp"
#include "util/packing.hpp"

namespace gam::objects {

class AbdRegister {
 public:
  // `store` is this process's QuorumStore replica for the register's scope.
  explicit AbdRegister(std::shared_ptr<QuorumStore> store, ProcessId self)
      : store_(std::move(store)),
        self_(self),
        packer_(IdPacker::for_set(store_->scope())) {}

  static constexpr QuorumStore::CellId kCell = 0;

  void write(std::int64_t value, std::function<void()> done) {
    store_->snapshot([this, value, done = std::move(done)](
                         const QuorumStore::Snapshot& snap) {
      std::int64_t max_ts = -1;
      auto it = snap.find(kCell);
      if (it != snap.end()) max_ts = it->second.ts;
      // Pack (counter, writer) so that two writers never produce equal
      // timestamps.
      std::int64_t counter = max_ts < 0 ? 0 : packer_.major_of(max_ts) + 1;
      store_->write(kCell, packer_.pack(counter, self_), value,
                    std::move(done));
    });
  }

  void read(std::function<void(std::optional<std::int64_t>)> done) {
    store_->snapshot([done = std::move(done)](
                         const QuorumStore::Snapshot& snap) {
      auto it = snap.find(kCell);
      if (it == snap.end())
        done(std::nullopt);
      else
        done(it->second.value);
    });
  }

  bool busy() const { return store_->busy(); }

 private:
  std::shared_ptr<QuorumStore> store_;
  ProcessId self_;
  IdPacker packer_;
};

// Gafni's adopt-commit from Σ-replicated single-writer cells (paper §4.3:
// "Adopt-commit objects are implemented using Σ_{g∩h}").
//
// Phase 1: write A[self] = v, snapshot; if only v is visible, carry
// (v, commit-candidate), else carry (some seen value, adopt-candidate).
// Phase 2: write B[self], snapshot; commit when every visible phase-2 entry
// is a commit-candidate for one value, adopt that value when any is, adopt
// the carried value otherwise.
class QuorumAdoptCommit {
 public:
  enum class Grade { kCommit, kAdopt };
  struct Outcome {
    Grade grade;
    std::int64_t value;
  };

  QuorumAdoptCommit(std::shared_ptr<QuorumStore> store, ProcessId self)
      : store_(std::move(store)),
        self_(self),
        packer_(IdPacker::for_set(store_->scope())) {}

  void propose(std::int64_t v, std::function<void(Outcome)> done) {
    GAM_EXPECTS(v >= 0);  // packing reserves the low bit for the flag
    done_ = std::move(done);
    store_->write(a_cell(self_), 1, v, [this, v] { phase1_snapshot(v); });
  }

  bool busy() const { return store_->busy(); }

 private:
  // Cell layout: phase-1 ("A") cells occupy major 0 of the packer's stride,
  // phase-2 ("B") cells major 1, with the writer id as the minor.
  QuorumStore::CellId a_cell(ProcessId p) const { return packer_.pack(0, p); }
  QuorumStore::CellId b_cell(ProcessId p) const { return packer_.pack(1, p); }
  bool is_b_cell(QuorumStore::CellId cell) const {
    return packer_.major_of(cell) == 1;
  }
  static std::int64_t pack(std::int64_t v, bool commit) {
    return v * 2 + (commit ? 1 : 0);
  }

  void phase1_snapshot(std::int64_t v) {
    store_->snapshot([this, v](const QuorumStore::Snapshot& snap) {
      bool all_equal = true;
      std::int64_t seen = -1;
      for (auto& [cell, val] : snap) {
        if (is_b_cell(cell)) continue;
        if (seen < 0) seen = val.value;
        if (val.value != v) all_equal = false;
      }
      std::int64_t carry = all_equal ? v : seen;
      bool candidate = all_equal;
      store_->write(b_cell(self_), 1, pack(carry, candidate),
                    [this, carry, candidate] { phase2_snapshot(carry, candidate); });
    });
  }

  void phase2_snapshot(std::int64_t carry, bool candidate) {
    store_->snapshot([this, carry, candidate](
                         const QuorumStore::Snapshot& snap) {
      bool all_commit = true;
      std::int64_t commit_value = -1;
      for (auto& [cell, val] : snap) {
        if (!is_b_cell(cell)) continue;  // A cells
        bool flag = (val.value & 1) != 0;
        std::int64_t v = val.value / 2;
        if (flag)
          commit_value = v;
        else
          all_commit = false;
      }
      Outcome out;
      if (all_commit && commit_value >= 0)
        out = {Grade::kCommit, commit_value};
      else if (commit_value >= 0)
        out = {Grade::kAdopt, commit_value};
      else
        out = {Grade::kAdopt, carry};
      (void)candidate;
      auto done = std::move(done_);
      done(out);
    });
  }

  std::shared_ptr<QuorumStore> store_;
  ProcessId self_;
  IdPacker packer_;
  std::function<void(Outcome)> done_;
};

}  // namespace gam::objects
