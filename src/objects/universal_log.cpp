#include "objects/universal_log.hpp"

namespace gam::objects {

namespace {
constexpr int kStallLimit = 8;
}

void UniversalLog::submit(std::int64_t op,
                          std::function<void(std::int64_t)> applied) {
  pending_.push_back({op, std::move(applied)});
  known_ops_.insert(op);
}

std::int64_t UniversalLog::first_unlearned() const {
  return static_cast<std::int64_t>(learned_.size());
}

void UniversalLog::learn(std::int64_t inst, std::int64_t value) {
  decided_.emplace(inst, value);
  while (true) {
    auto it = decided_.find(first_unlearned());
    if (it == decided_.end()) break;
    learned_.push_back(it->second);
    known_ops_.insert(it->second);
    std::int64_t pos = static_cast<std::int64_t>(learned_.size()) - 1;
    if (on_learn_) on_learn_(learned_.back(), pos);
    // Resolve own pending submissions that just got ordered.
    for (auto p = pending_.begin(); p != pending_.end(); ++p) {
      if (p->op != learned_.back()) continue;
      auto cb = std::move(p->applied);
      pending_.erase(p);
      if (cb) cb(pos);
      break;
    }
  }
}

void UniversalLog::drive(sim::Context& ctx) {
  // Drive the first unlearned instance with the oldest pending op. Re-submits
  // of an op already decided in a *later* instance cannot happen: we only
  // drive ops still pending, and learn() removes them the moment they appear.
  std::int64_t inst = first_unlearned();
  ProposerState& ps = proposers_[inst];
  ++ps.round;
  ps.ballot = ps.round * 64 + self_;
  ps.accept_phase = false;
  ps.promisers = {};
  ps.accepters = {};
  ps.best_accepted_ballot = -1;
  ps.value = pending_.front().op;
  ps.stall = 0;
  ctx.send_to_set(scope_, protocol_id_, kPrepare, {inst, ps.ballot});
}

bool UniversalLog::on_idle(sim::Context& ctx) {
  if (pending_.empty()) return false;
  auto leader = omega_->query(self_, ctx.now());
  ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kOmega);
  if (!leader) return false;
  if (*leader != self_) {
    // Non-leaders periodically hand their oldest pending op to the leader so
    // the log progresses even when the stable leader has nothing to submit.
    if (++forward_stall_ > kStallLimit) {
      forward_stall_ = 0;
      ctx.send(*leader, protocol_id_, kForward, {pending_.front().op});
      return true;
    }
    return false;
  }
  std::int64_t inst = first_unlearned();
  auto it = proposers_.find(inst);
  if (it == proposers_.end() || ++it->second.stall > kStallLimit) {
    drive(ctx);
    return true;
  }
  return false;
}

void UniversalLog::on_message(sim::Context& ctx, const sim::Message& m) {
  std::int64_t inst = m.data[0];
  switch (sim::MsgType{m.type}) {
    case kPrepare: {
      auto& ac = acceptors_[inst];
      std::int64_t b = m.data[1];
      if (b > ac.promised) ac.promised = b;
      if (b >= ac.promised)
        ctx.send(m.src, protocol_id_, kPromise,
                 {inst, b, ac.accepted_ballot, ac.accepted_value});
      break;
    }
    case kPromise: {
      auto it = proposers_.find(inst);
      if (it == proposers_.end()) break;
      ProposerState& ps = it->second;
      if (m.data[1] != ps.ballot || ps.accept_phase || decided_.count(inst))
        break;
      ps.promisers.insert(m.src);
      if (m.data[2] > ps.best_accepted_ballot) {
        ps.best_accepted_ballot = m.data[2];
        ps.value = m.data[3];
      }
      auto q = sigma_->query(self_, ctx.now());
      ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kSigma);
      if (q && q->subset_of(ps.promisers)) {
        ps.accept_phase = true;
        ps.stall = 0;
        ctx.send_to_set(scope_, protocol_id_, kAccept,
                        {inst, ps.ballot, ps.value});
      }
      break;
    }
    case kAccept: {
      auto& ac = acceptors_[inst];
      std::int64_t b = m.data[1];
      if (b >= ac.promised) {
        ac.promised = b;
        ac.accepted_ballot = b;
        ac.accepted_value = m.data[2];
        ctx.send(m.src, protocol_id_, kAccepted, {inst, b});
      }
      break;
    }
    case kAccepted: {
      auto it = proposers_.find(inst);
      if (it == proposers_.end()) break;
      ProposerState& ps = it->second;
      if (m.data[1] != ps.ballot || !ps.accept_phase || decided_.count(inst))
        break;
      ps.accepters.insert(m.src);
      auto q = sigma_->query(self_, ctx.now());
      ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kSigma);
      if (q && q->subset_of(ps.accepters)) {
        ctx.send_to_set(scope_, protocol_id_, kDecide, {inst, ps.value});
        learn(inst, ps.value);
      }
      break;
    }
    case kDecide: {
      if (!decided_.count(inst)) learn(inst, m.data[1]);
      break;
    }
    case kForward: {
      std::int64_t op = m.data[0];
      if (known_ops_.insert(op).second) pending_.push_back({op, nullptr});
      break;
    }
    default:
      break;
  }
}

}  // namespace gam::objects
