#include "objects/universal_log.hpp"

#include <algorithm>
#include <unordered_set>

#include "objects/consensus_mp.hpp"

namespace gam::objects {

namespace {
constexpr int kStallLimit = 8;
}

void UniversalLog::submit(std::int64_t op,
                          std::function<void(std::int64_t)> applied) {
  pending_.push_back({op, std::move(applied)});
  known_ops_.insert(op);
  GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
      {0, self_, sim::SpanKind::kSubmit, op, 0, 0}));
}

std::int64_t UniversalLog::first_unlearned() const { return applied_insts_; }

void UniversalLog::learn(std::int64_t inst, std::vector<std::int64_t> values) {
  GAM_EXPECTS(inst >= 0);
  if (static_cast<std::size_t>(inst) >= decided_.size())
    decided_.resize(static_cast<std::size_t>(inst) + 1);
  // First decision wins: a competing leader's duplicate decision for an
  // already-decided instance must not overwrite the recorded batch.
  auto& slot = decided_[static_cast<std::size_t>(inst)];
  if (!slot) slot = std::move(values);
  while (static_cast<std::size_t>(applied_insts_) < decided_.size() &&
         decided_[static_cast<std::size_t>(applied_insts_)]) {
    const auto& batch = *decided_[static_cast<std::size_t>(applied_insts_)];
    ++applied_insts_;
    for (std::int64_t op : batch) {
      if (!ordered_ops_.insert(op).second) continue;  // decided twice: dedup
      learned_.push_back(op);
      known_ops_.insert(op);
      std::int64_t pos = static_cast<std::int64_t>(learned_.size()) - 1;
      GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
          {0, self_, sim::SpanKind::kDelivered, op, pos, 0}));
      if (on_learn_) on_learn_(op, pos);
      // Resolve own pending submissions that just got ordered.
      for (auto p = pending_.begin(); p != pending_.end(); ++p) {
        if (p->op != op) continue;
        auto cb = std::move(p->applied);
        pending_.erase(p);
        if (cb) cb(pos);
        break;
      }
    }
  }
}

std::vector<std::int64_t> UniversalLog::unclaimed_pending(
    std::int64_t exclude_inst) const {
  // Collect every op claimed by another in-flight instance once, then test
  // membership per pending op — the nested linear scan this replaces was
  // O(pending x window x batch) per newly opened instance, which dominated
  // the pipelined loadgen profile. Same ops in the same order come out.
  std::unordered_set<std::int64_t> claimed;
  for (std::size_t i = static_cast<std::size_t>(first_unlearned());
       i < proposers_.size(); ++i) {
    const ProposerState& ps = proposers_[i];
    if (!ps.engaged || static_cast<std::int64_t>(i) == exclude_inst) continue;
    claimed.insert(ps.claimed.begin(), ps.claimed.end());
  }
  std::vector<std::int64_t> ops;
  for (const Pending& p : pending_) {
    if (claimed.count(p.op)) continue;
    ops.push_back(p.op);
    if (ops.size() == static_cast<std::size_t>(batch_)) break;
  }
  return ops;
}

void UniversalLog::drive(sim::Context& ctx, std::int64_t inst,
                         std::vector<std::int64_t> ops) {
  // Drive instance `inst` with an ordered batch of pending ops. Re-submits of
  // an op already decided in a *learned* instance cannot happen: we only
  // drive ops still pending, and learn() removes them the moment they appear.
  // Ops decided concurrently by a competing leader are deduplicated at
  // learn().
  ProposerState& ps = engage_proposer(inst);
  ++ps.round;
  ps.ballot = IdPacker::for_set(scope_).pack(ps.round, self_);
  ps.accept_phase = false;
  ps.promisers = {};
  ps.accepters = {};
  ps.best_accepted_ballot = -1;
  ps.values = ops;
  ps.claimed = std::move(ops);
  ps.stall = 0;
  GAM_METRICS_PROBE(if (span_sink_) for (std::int64_t op : ps.values)
                        span_sink_->on_span({0, self_,
                                             sim::SpanKind::kPaxosRound, op,
                                             inst, ps.ballot}));
  ctx.send_to_set(scope_, protocol_id_, kPrepare, {inst, ps.ballot});
}

bool UniversalLog::on_idle(sim::Context& ctx) {
  if (pending_.empty()) return false;
  auto leader = omega_->query(self_, ctx.now());
  ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kOmega);
  if (!leader) return false;
  if (*leader != self_) {
    // Non-leaders periodically hand their oldest pending op to the leader so
    // the log progresses even when the stable leader has nothing to submit.
    if (++forward_stall_ > kStallLimit) {
      forward_stall_ = 0;
      ctx.send(*leader, protocol_id_, kForward, {pending_.front().op});
      return true;
    }
    return false;
  }
  // Leader: keep up to window_ consecutive instances in flight, each driving
  // a disjoint ordered batch of pending ops (the pipelining half of PR 6;
  // window_ = 1 is the legacy one-instance-at-a-time loop).
  bool acted = false;
  std::int64_t base = first_unlearned();
  for (std::int64_t off = 0; off < window_; ++off) {
    std::int64_t inst = base + off;
    if (has_decided(inst)) continue;
    ProposerState* ps = proposer_at(inst);
    if (!ps || ++ps->stall > kStallLimit) {
      auto ops = unclaimed_pending(inst);
      if (ops.empty()) break;  // every pending op is already in flight
      drive(ctx, inst, std::move(ops));
      acted = true;
    }
  }
  return acted;
}

void UniversalLog::on_message(sim::Context& ctx, const sim::Message& m) {
  std::int64_t inst = m.data[0];
  GAM_EXPECTS(sim::MsgType{m.type} == kForward || inst >= 0);
  switch (sim::MsgType{m.type}) {
    case kPrepare: {
      auto& ac = acceptor(inst);
      std::int64_t b = m.data[1];
      if (b > ac.promised) ac.promised = b;
      if (b >= ac.promised)
        ctx.send(m.src, protocol_id_, kPromise,
                 OrderedBatch::encode({inst, b, ac.accepted_ballot},
                                      ac.accepted_values));
      break;
    }
    case kPromise: {
      ProposerState* psp = proposer_at(inst);
      if (!psp) break;
      ProposerState& ps = *psp;
      if (m.data[1] != ps.ballot || ps.accept_phase || has_decided(inst))
        break;
      ps.promisers.insert(m.src);
      if (m.data[2] > ps.best_accepted_ballot) {
        ps.best_accepted_ballot = m.data[2];
        ps.values = OrderedBatch::decode(m.data, 3);
      }
      auto q = sigma_->query(self_, ctx.now());
      ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kSigma);
      if (q && q->subset_of(ps.promisers)) {
        ps.accept_phase = true;
        ps.stall = 0;
        ctx.send_to_set(scope_, protocol_id_, kAccept,
                        OrderedBatch::encode({inst, ps.ballot}, ps.values));
      }
      break;
    }
    case kAccept: {
      auto& ac = acceptor(inst);
      std::int64_t b = m.data[1];
      if (b >= ac.promised) {
        ac.promised = b;
        ac.accepted_ballot = b;
        ac.accepted_values = OrderedBatch::decode(m.data, 2);
        ctx.send(m.src, protocol_id_, kAccepted, {inst, b});
      }
      break;
    }
    case kAccepted: {
      ProposerState* psp = proposer_at(inst);
      if (!psp) break;
      ProposerState& ps = *psp;
      if (m.data[1] != ps.ballot || !ps.accept_phase || has_decided(inst))
        break;
      ps.accepters.insert(m.src);
      auto q = sigma_->query(self_, ctx.now());
      ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kSigma);
      if (q && q->subset_of(ps.accepters)) {
        ctx.send_to_set(scope_, protocol_id_, kDecide,
                        OrderedBatch::encode({inst}, ps.values));
        learn(inst, ps.values);
      }
      break;
    }
    case kDecide: {
      if (!has_decided(inst)) learn(inst, OrderedBatch::decode(m.data, 1));
      break;
    }
    case kForward: {
      std::int64_t op = m.data[0];
      if (known_ops_.insert(op).second) pending_.push_back({op, nullptr});
      break;
    }
    default:
      break;
  }
}

}  // namespace gam::objects
