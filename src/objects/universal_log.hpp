// A universal construction (Herlihy [28]) specialised to logs: a replicated,
// totally-ordered operation log built from an unbounded sequence of consensus
// instances, each decided by the Ω ∧ Σ machinery of consensus_mp.hpp.
//
// This is the construction Algorithm 1's §4.3 refers to for LOG_g: group
// members submit operations; instance k of multi-decree Paxos fixes the k-th
// operation; every member applies the decided prefix in order. (The
// contention-free fast variant for LOG_{g∩h} lives in cf_consensus.hpp.)
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "fd/detectors.hpp"
#include "objects/protocol_host.hpp"
#include "sim/metrics.hpp"
#include "sim/spans.hpp"
#include "sim/world.hpp"
#include "util/process_set.hpp"

namespace gam::objects {

class UniversalLog : public SubProtocol {
 public:
  // batch: max ops amortized over one consensus instance (ordered batch
  // proposal, consensus_mp.hpp). window: max instances a leader drives
  // concurrently (Derecho-style pipelining). batch = window = 1 reproduces
  // the legacy one-op-per-instance wire traffic byte for byte.
  UniversalLog(sim::ProtocolId protocol_id, ProcessId self, ProcessSet scope,
               const fd::SigmaOracle& sigma, const fd::OmegaOracle& omega,
               int batch = 1, int window = 1)
      : protocol_id_(protocol_id),
        self_(self),
        scope_(scope),
        sigma_(&sigma),
        omega_(&omega),
        batch_(batch < 1 ? 1 : batch),
        window_(window < 1 ? 1 : window) {
    GAM_EXPECTS(scope.contains(self));
  }

  // Submit an operation; it will appear exactly once in the decided log.
  // `applied` fires when the operation's position is learned locally.
  void submit(std::int64_t op, std::function<void(std::int64_t pos)> applied);

  // The locally learned decided prefix.
  const std::vector<std::int64_t>& learned() const { return learned_; }

  // Observer invoked at *this replica* for every op as it enters the learned
  // prefix (op, position). Replication clients (state machines, the
  // replicated multicast) apply commands from here.
  void set_on_learn(std::function<void(std::int64_t, std::int64_t)> cb) {
    on_learn_ = std::move(cb);
  }

  // Optional causal span sink (caller-owned). Emits submit, paxos_round
  // (instance, ballot) when this replica drives an op, and delivered when an
  // op enters the learned prefix. Events carry t=0 — the replica has no run
  // clock of its own — so the attached sink is expected to stamp them
  // (net::FlightRecorder stamps wall-clock ns; a record-mode wrapper stamps
  // the global step clock). Compiled out under GAM_METRICS=OFF.
  void set_span_sink(sim::SpanSink* sink) { span_sink_ = sink; }

  void on_message(sim::Context& ctx, const sim::Message& m) override;
  bool on_idle(sim::Context& ctx) override;
  bool wants_step() const override { return !pending_.empty(); }

 private:
  // Value frames carry an ordered op batch (OrderedBatch, consensus_mp.hpp):
  // the ops follow the fixed header, length implied by the frame size, and a
  // batch of one is byte-identical to the legacy single-op frame.
  static constexpr sim::MsgType kPrepare{1};   // [inst, ballot]
  static constexpr sim::MsgType kPromise{2};   // [inst, ballot,
                                               //  accepted_ballot,
                                               //  accepted_ops...]
  static constexpr sim::MsgType kAccept{3};    // [inst, ballot, ops...]
  static constexpr sim::MsgType kAccepted{4};  // [inst, ballot]
  static constexpr sim::MsgType kDecide{5};    // [inst, ops...]
  static constexpr sim::MsgType kForward{6};   // [op] — hand the op to the
                                               // Ω leader to drive

  struct AcceptorState {
    std::int64_t promised = -1;
    std::int64_t accepted_ballot = -1;
    std::vector<std::int64_t> accepted_values;  // empty = none
  };
  struct ProposerState {
    bool engaged = false;  // this replica ever drove the instance
    std::int64_t ballot = -1;
    bool accept_phase = false;
    std::vector<std::int64_t> values;  // ordered batch driven in this instance
    std::vector<std::int64_t> claimed;  // pending ops this instance claims —
                                        // kept even if `values` is overwritten
                                        // by a promised earlier batch, so the
                                        // window never double-proposes an op
    std::int64_t best_accepted_ballot = -1;
    ProcessSet promisers;
    ProcessSet accepters;
    int stall = 0;
    std::int64_t round = 0;
  };

  void learn(std::int64_t inst, std::vector<std::int64_t> values);
  void drive(sim::Context& ctx, std::int64_t inst,
             std::vector<std::int64_t> ops);
  // Oldest pending ops not claimed by another in-flight instance, up to
  // batch_ of them.
  std::vector<std::int64_t> unclaimed_pending(std::int64_t exclude_inst) const;
  std::int64_t first_unlearned() const;

  sim::ProtocolId protocol_id_;
  ProcessId self_;
  ProcessSet scope_;
  const fd::SigmaOracle* sigma_;
  const fd::OmegaOracle* omega_;

  int batch_ = 1;
  int window_ = 1;

  // Instances are contiguous from 0 (the leader window drives
  // [first_unlearned, first_unlearned + window)), so per-instance state lives
  // in dense vectors indexed by instance — the std::map lookups this replaces
  // were pure overhead on the pipelined path. Slots below applied_insts_ stay
  // allocated for the run's lifetime; runs are bounded, and a decided batch
  // is a handful of words.
  std::vector<AcceptorState> acceptors_;   // indexed by instance
  std::vector<ProposerState> proposers_;   // indexed by instance (engaged flag)
  std::vector<std::optional<std::vector<std::int64_t>>> decided_;  // -> batch

  AcceptorState& acceptor(std::int64_t inst) {
    GAM_EXPECTS(inst >= 0);
    auto i = static_cast<std::size_t>(inst);
    if (i >= acceptors_.size()) acceptors_.resize(i + 1);
    return acceptors_[i];
  }
  // nullptr when this replica never drove `inst`.
  ProposerState* proposer_at(std::int64_t inst) {
    auto i = static_cast<std::size_t>(inst);
    if (inst < 0 || i >= proposers_.size() || !proposers_[i].engaged)
      return nullptr;
    return &proposers_[i];
  }
  ProposerState& engage_proposer(std::int64_t inst) {
    GAM_EXPECTS(inst >= 0);
    auto i = static_cast<std::size_t>(inst);
    if (i >= proposers_.size()) proposers_.resize(i + 1);
    proposers_[i].engaged = true;
    return proposers_[i];
  }
  bool has_decided(std::int64_t inst) const {
    auto i = static_cast<std::size_t>(inst);
    return inst >= 0 && i < decided_.size() && decided_[i].has_value();
  }

  std::vector<std::int64_t> learned_;  // contiguous applied op prefix
  std::int64_t applied_insts_ = 0;     // contiguous applied instance count
  // Ops already placed into learned_: competing leaders may decide the same
  // op in two window instances; first-occurrence dedup over the (identical
  // at every replica) decided sequence keeps learned logs equal.
  std::unordered_set<std::int64_t> ordered_ops_;

  struct Pending {
    std::int64_t op;
    std::function<void(std::int64_t)> applied;
  };
  // Own + forwarded ops not yet in the log. A deque because the common
  // completion order is FIFO (batches are taken from the front, instances
  // learn in order), so the erase in learn() is usually a pop_front — on a
  // vector that front-erase memmoved the whole tail per delivered op.
  std::deque<Pending> pending_;
  // O(1) "have I seen this op?" for forward dedup: every op currently in
  // pending_ plus every op ever pushed into learned_. A linear scan here was
  // quadratic in log length under heavy forwarding.
  std::unordered_set<std::int64_t> known_ops_;
  std::function<void(std::int64_t, std::int64_t)> on_learn_;
  sim::SpanSink* span_sink_ = nullptr;
  int forward_stall_ = 0;
};

}  // namespace gam::objects
