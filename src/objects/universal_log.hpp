// A universal construction (Herlihy [28]) specialised to logs: a replicated,
// totally-ordered operation log built from an unbounded sequence of consensus
// instances, each decided by the Ω ∧ Σ machinery of consensus_mp.hpp.
//
// This is the construction Algorithm 1's §4.3 refers to for LOG_g: group
// members submit operations; instance k of multi-decree Paxos fixes the k-th
// operation; every member applies the decided prefix in order. (The
// contention-free fast variant for LOG_{g∩h} lives in cf_consensus.hpp.)
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "fd/detectors.hpp"
#include "objects/protocol_host.hpp"
#include "sim/world.hpp"
#include "util/process_set.hpp"

namespace gam::objects {

class UniversalLog : public SubProtocol {
 public:
  UniversalLog(sim::ProtocolId protocol_id, ProcessId self, ProcessSet scope,
               const fd::SigmaOracle& sigma, const fd::OmegaOracle& omega)
      : protocol_id_(protocol_id),
        self_(self),
        scope_(scope),
        sigma_(&sigma),
        omega_(&omega) {
    GAM_EXPECTS(scope.contains(self));
  }

  // Submit an operation; it will appear exactly once in the decided log.
  // `applied` fires when the operation's position is learned locally.
  void submit(std::int64_t op, std::function<void(std::int64_t pos)> applied);

  // The locally learned decided prefix.
  const std::vector<std::int64_t>& learned() const { return learned_; }

  // Observer invoked at *this replica* for every op as it enters the learned
  // prefix (op, position). Replication clients (state machines, the
  // replicated multicast) apply commands from here.
  void set_on_learn(std::function<void(std::int64_t, std::int64_t)> cb) {
    on_learn_ = std::move(cb);
  }

  void on_message(sim::Context& ctx, const sim::Message& m) override;
  bool on_idle(sim::Context& ctx) override;
  bool wants_step() const override { return !pending_.empty(); }

 private:
  static constexpr sim::MsgType kPrepare{1};   // [inst, ballot]
  static constexpr sim::MsgType kPromise{2};   // [inst, ballot,
                                               //  accepted_ballot,
                                               //  accepted_value]
  static constexpr sim::MsgType kAccept{3};    // [inst, ballot, value]
  static constexpr sim::MsgType kAccepted{4};  // [inst, ballot]
  static constexpr sim::MsgType kDecide{5};    // [inst, value]
  static constexpr sim::MsgType kForward{6};   // [op] — hand the op to the
                                               // Ω leader to drive

  struct AcceptorState {
    std::int64_t promised = -1;
    std::int64_t accepted_ballot = -1;
    std::int64_t accepted_value = -1;
  };
  struct ProposerState {
    std::int64_t ballot = -1;
    bool accept_phase = false;
    std::int64_t value = -1;  // value being driven in this instance
    std::int64_t best_accepted_ballot = -1;
    ProcessSet promisers;
    ProcessSet accepters;
    int stall = 0;
    std::int64_t round = 0;
  };

  void learn(std::int64_t inst, std::int64_t value);
  void drive(sim::Context& ctx);
  std::int64_t first_unlearned() const;

  sim::ProtocolId protocol_id_;
  ProcessId self_;
  ProcessSet scope_;
  const fd::SigmaOracle* sigma_;
  const fd::OmegaOracle* omega_;

  std::map<std::int64_t, AcceptorState> acceptors_;
  std::map<std::int64_t, ProposerState> proposers_;
  std::map<std::int64_t, std::int64_t> decided_;  // inst -> value
  std::vector<std::int64_t> learned_;             // contiguous prefix

  struct Pending {
    std::int64_t op;
    std::function<void(std::int64_t)> applied;
  };
  std::vector<Pending> pending_;  // own + forwarded ops not yet in the log
  // O(1) "have I seen this op?" for forward dedup: every op currently in
  // pending_ plus every op ever pushed into learned_. A linear scan here was
  // quadratic in log length under heavy forwarding.
  std::unordered_set<std::int64_t> known_ops_;
  std::function<void(std::int64_t, std::int64_t)> on_learn_;
  int forward_stall_ = 0;
};

}  // namespace gam::objects
