// Hosting of multiple protocol instances on one simulated process.
//
// The message-passing object constructions (ABD registers, adopt-commit,
// indulgent consensus, the universal log) each run as a sub-protocol: a small
// state machine that reacts to addressed messages and may want idle steps
// (retries, leader duties). A ProtocolHost owns the sub-protocols of one
// process and multiplexes the World's steps onto them via the `protocol`
// field of the wire messages.
#pragma once

#include <map>
#include <memory>

#include "sim/world.hpp"
#include "util/contracts.hpp"

namespace gam::objects {

class SubProtocol {
 public:
  virtual ~SubProtocol() = default;
  virtual void on_message(sim::Context& ctx, const sim::Message& m) = 0;
  // One idle slot: do local work (start rounds, retry). Return true if any
  // work was done.
  virtual bool on_idle(sim::Context& ctx) {
    (void)ctx;
    return false;
  }
  virtual bool wants_step() const { return false; }
};

class ProtocolHost : public sim::Actor {
 public:
  void add(sim::ProtocolId protocol_id, std::shared_ptr<SubProtocol> p) {
    GAM_EXPECTS(!subs_.count(sim::raw(protocol_id)));
    subs_[sim::raw(protocol_id)] = std::move(p);
  }

  SubProtocol* find(sim::ProtocolId protocol_id) {
    return find(sim::raw(protocol_id));
  }

  void on_step(sim::Context& ctx, const sim::Message* m) override {
    if (m) {
      if (SubProtocol* sub = find(m->protocol)) sub->on_message(ctx, *m);
      return;
    }
    for (auto& [id, sub] : subs_)
      if (sub->wants_step() && sub->on_idle(ctx)) return;
  }

  bool wants_step() const override {
    for (auto& [id, sub] : subs_)
      if (sub->wants_step()) return true;
    return false;
  }

 private:
  // Wire dispatch path: Message carries the raw id.
  SubProtocol* find(std::int32_t raw_protocol_id) {
    auto it = subs_.find(raw_protocol_id);
    return it == subs_.end() ? nullptr : it->second.get();
  }

  std::map<std::int32_t, std::shared_ptr<SubProtocol>> subs_;
};

// Installs a ProtocolHost on every process of `world` and returns pointers.
inline std::vector<ProtocolHost*> install_hosts(sim::World& world) {
  std::vector<ProtocolHost*> hosts;
  for (ProcessId p = 0; p < world.process_count(); ++p) {
    auto host = std::make_unique<ProtocolHost>();
    hosts.push_back(host.get());
    world.install(p, std::move(host));
  }
  return hosts;
}

}  // namespace gam::objects
