// Quorum-replicated single-writer cells from Σ (paper §4, "Σ_g permits to
// build shared atomic registers in g" [15]).
//
// Every process of the scope replicates a map cell-id -> (timestamp, value).
// A write installs a higher-timestamped value at a quorum; a snapshot reads
// the cells of a quorum and merges by timestamp, then writes the merged view
// back to a quorum before returning (the ABD write-back, which is what makes
// reads linearizable). Quorums come from the Σ oracle: completion requires
// the current Σ output to be a subset of the responders, and Σ's Intersection
// property gives regularity while its Liveness property gives termination at
// correct processes.
//
// AbdRegister (a MWMR atomic register), QuorumAdoptCommit and the consensus
// constructions are built on top of this primitive.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fd/detectors.hpp"
#include "objects/protocol_host.hpp"
#include "sim/world.hpp"
#include "util/process_set.hpp"

namespace gam::objects {

// One instance per process; all instances of a scope share a protocol id.
class QuorumStore : public SubProtocol {
 public:
  using CellId = std::int64_t;
  struct Versioned {
    std::int64_t ts = -1;
    std::int64_t value = 0;
  };
  using Snapshot = std::map<CellId, Versioned>;

  QuorumStore(sim::ProtocolId protocol_id, ProcessId self, ProcessSet scope,
              const fd::SigmaOracle& sigma)
      : protocol_id_(protocol_id), self_(self), scope_(scope), sigma_(&sigma) {
    GAM_EXPECTS(scope.contains(self));
  }

  // ---- client API (one outstanding operation per process) -------------------

  // Install (ts, value) into `cell` at a quorum, then invoke `done`.
  void write(CellId cell, std::int64_t ts, std::int64_t value,
             std::function<void()> done);

  // Read a quorum's view of all cells, write the merged view back to a
  // quorum, then invoke `done` with the merge.
  void snapshot(std::function<void(const Snapshot&)> done);

  bool busy() const { return op_ != Op::kNone; }

  // The replica scope (clients derive their cell/timestamp packing from it).
  const ProcessSet& scope() const { return scope_; }

  // ---- SubProtocol -----------------------------------------------------------

  void on_message(sim::Context& ctx, const sim::Message& m) override;
  // Idle steps start the pending round, and re-check quorum coverage while a
  // round is in flight: Σ's output can shrink onto the responders *after* the
  // last ack arrived (a replica crash), so completion cannot be driven by
  // message arrival alone.
  bool on_idle(sim::Context& ctx) override;
  bool wants_step() const override { return op_ != Op::kNone; }

  // Total quorum round-trips completed (benches report this).
  std::uint64_t rounds() const { return rounds_; }

 private:
  enum class Op { kNone, kWrite, kSnapshotRead, kSnapshotWriteBack };
  static constexpr sim::MsgType kStoreReq{1};  // data: [seq, n, (cell, ts, value) * n]
  static constexpr sim::MsgType kStoreAck{2};  // data: [seq]
  static constexpr sim::MsgType kLoadReq{3};   // data: [seq]
  static constexpr sim::MsgType kLoadRep{4};   // data: [seq, n, (cell, ts, value) * n]

  void start_round(sim::Context& ctx);
  bool quorum_reached(sim::Time now) const;
  void finish_op(sim::Context& ctx);
  void merge_into(Snapshot& dst, const sim::Payload& data, size_t offset,
                  size_t n) const;

  sim::ProtocolId protocol_id_;
  ProcessId self_;
  ProcessSet scope_;
  const fd::SigmaOracle* sigma_;

  // Replica state.
  Snapshot cells_;

  // Client state.
  Op op_ = Op::kNone;
  bool started_ = false;
  std::int64_t seq_ = 0;
  ProcessSet responders_;
  Snapshot staged_;    // payload being written / merged snapshot
  std::function<void()> write_done_;
  std::function<void(const Snapshot&)> snapshot_done_;
  std::uint64_t rounds_ = 0;
};

}  // namespace gam::objects
