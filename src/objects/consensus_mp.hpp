// Indulgent consensus from Ω ∧ Σ (paper §4: obstruction-free consensus from
// registers, boosted with Ω [25]; realized here in its message-passing form,
// a single-decree Paxos).
//
// Every scope member is an acceptor; the process that its Ω module names as
// leader acts as proposer. Ballots are (round, process) pairs packed into one
// integer so competing proposers never collide. Safety never depends on Ω or
// timing (indulgence); termination follows once Ω stabilizes on one correct
// leader and Σ's quorums contain only correct processes.
#pragma once

#include <functional>
#include <initializer_list>
#include <optional>
#include <vector>

#include "fd/detectors.hpp"
#include "objects/protocol_host.hpp"
#include "sim/world.hpp"
#include "util/packing.hpp"
#include "util/process_set.hpp"

namespace gam::objects {

// Ordered batch proposal: a consensus value that is a *sequence* of
// operations decided atomically by one instance (the amortization behind
// batched log appends — one Paxos instance orders up to batch_k ops).
// Wire frame: a fixed-length header followed by the ops in batch order; the
// frame length implies the batch size, so a batch of one is byte-identical
// to the legacy single-value frame. An empty batch encodes as the single
// sentinel -1 (the legacy "no accepted value" representation in promises).
struct OrderedBatch {
  static sim::Payload encode(std::initializer_list<std::int64_t> header,
                             const std::vector<std::int64_t>& ops) {
    sim::Payload p(header);
    if (ops.empty()) {
      p.push_back(-1);
    } else {
      for (std::int64_t op : ops) p.push_back(op);
    }
    return p;
  }
  // Decodes ops from data[header_len..); the lone -1 sentinel decodes as
  // the empty batch.
  static std::vector<std::int64_t> decode(const sim::Payload& data,
                                          std::size_t header_len) {
    std::vector<std::int64_t> ops;
    if (data.size() == header_len + 1 && data[header_len] == -1) return ops;
    ops.reserve(data.size() - header_len);
    for (std::size_t i = header_len; i < data.size(); ++i)
      ops.push_back(data[i]);
    return ops;
  }
};

class IndulgentConsensus : public SubProtocol {
 public:
  IndulgentConsensus(sim::ProtocolId protocol_id, ProcessId self,
                     ProcessSet scope, const fd::SigmaOracle& sigma,
                     const fd::OmegaOracle& omega)
      : protocol_id_(protocol_id),
        self_(self),
        scope_(scope),
        sigma_(&sigma),
        omega_(&omega) {
    GAM_EXPECTS(scope.contains(self));
  }

  // Proposes v; `done` fires with the decided value. A process may propose at
  // most once, but learns and reports the decision even if another proposal
  // wins.
  void propose(std::int64_t v, std::function<void(std::int64_t)> done);

  std::optional<std::int64_t> decided() const { return decided_; }

  void on_message(sim::Context& ctx, const sim::Message& m) override;
  bool on_idle(sim::Context& ctx) override;
  bool wants_step() const override {
    return proposal_.has_value() && !decided_.has_value();
  }

 private:
  static constexpr sim::MsgType kPrepare{1};   // [ballot]
  static constexpr sim::MsgType kPromise{2};   // [ballot, accepted_ballot,
                                               //  accepted_value] (-1 if none)
  static constexpr sim::MsgType kAccept{3};    // [ballot, value]
  static constexpr sim::MsgType kAccepted{4};  // [ballot]
  static constexpr sim::MsgType kDecide{5};    // [value]
  static constexpr sim::MsgType kForward{6};   // [value] — a non-leader
                                               // proposer hands its value to
                                               // the Ω leader, which drives it
                                               // as its own (liveness when the
                                               // stable leader did not itself
                                               // propose)

  // Ballots pack (round, proposer) via the scope's IdPacker so that higher
  // rounds always beat lower rounds and concurrent proposers never tie.
  std::int64_t make_ballot(std::int64_t round) const {
    return IdPacker::for_set(scope_).pack(round, self_);
  }
  void start_ballot(sim::Context& ctx);
  void decide(sim::Context& ctx, std::int64_t v);

  sim::ProtocolId protocol_id_;
  ProcessId self_;
  ProcessSet scope_;
  const fd::SigmaOracle* sigma_;
  const fd::OmegaOracle* omega_;

  // Acceptor state.
  std::int64_t promised_ = -1;
  std::int64_t accepted_ballot_ = -1;
  std::int64_t accepted_value_ = -1;

  // Proposer state.
  std::optional<std::int64_t> proposal_;
  std::int64_t round_ = 0;
  std::int64_t current_ballot_ = -1;
  bool accept_phase_ = false;
  std::int64_t chosen_value_ = -1;
  ProcessSet promisers_;
  ProcessSet accepters_;
  std::int64_t best_accepted_ballot_ = -1;
  // Idle ticks since the current ballot started; a stalled ballot (lost
  // leadership race, dead quorum member) is retried with a higher ballot.
  int stall_ = 0;

  std::optional<std::int64_t> decided_;
  std::function<void(std::int64_t)> done_;
};

}  // namespace gam::objects
