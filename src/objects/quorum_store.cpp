#include "objects/quorum_store.hpp"

namespace gam::objects {

void QuorumStore::write(CellId cell, std::int64_t ts, std::int64_t value,
                        std::function<void()> done) {
  GAM_EXPECTS(op_ == Op::kNone);
  op_ = Op::kWrite;
  started_ = false;
  staged_.clear();
  staged_[cell] = {ts, value};
  write_done_ = std::move(done);
}

void QuorumStore::snapshot(std::function<void(const Snapshot&)> done) {
  GAM_EXPECTS(op_ == Op::kNone);
  op_ = Op::kSnapshotRead;
  started_ = false;
  staged_.clear();
  snapshot_done_ = std::move(done);
}

bool QuorumStore::on_idle(sim::Context& ctx) {
  if (op_ == Op::kNone) return false;
  if (!started_) {
    start_round(ctx);
    return true;
  }
  if (quorum_reached(ctx.now())) {
    finish_op(ctx);
    return true;
  }
  return false;
}

void QuorumStore::start_round(sim::Context& ctx) {
  started_ = true;
  ++seq_;
  responders_ = {};
  sim::Payload data{seq_};
  if (op_ == Op::kWrite || op_ == Op::kSnapshotWriteBack) {
    data.reserve(2 + 3 * staged_.size());
    data.push_back(static_cast<std::int64_t>(staged_.size()));
    for (auto& [cell, v] : staged_) {
      data.push_back(cell);
      data.push_back(v.ts);
      data.push_back(v.value);
    }
    ctx.send_to_set(scope_, protocol_id_, kStoreReq, std::move(data));
  } else {
    ctx.send_to_set(scope_, protocol_id_, kLoadReq, std::move(data));
  }
}

bool QuorumStore::quorum_reached(sim::Time now) const {
  auto q = sigma_->query(self_, now);
  return q && q->subset_of(responders_);
}

void QuorumStore::merge_into(Snapshot& dst, const sim::Payload& data,
                             size_t offset, size_t n) const {
  for (size_t k = 0; k < n; ++k) {
    CellId cell = data[offset + 3 * k];
    Versioned v{data[offset + 3 * k + 1], data[offset + 3 * k + 2]};
    auto it = dst.find(cell);
    if (it == dst.end() || it->second.ts < v.ts) dst[cell] = v;
  }
}

void QuorumStore::finish_op(sim::Context& ctx) {
  ++rounds_;
  switch (op_) {
    case Op::kWrite: {
      op_ = Op::kNone;
      auto done = std::move(write_done_);
      if (done) done();
      break;
    }
    case Op::kSnapshotRead: {
      // ABD write-back: install the merged view at a quorum before
      // returning, so a later read cannot observe an older value.
      op_ = Op::kSnapshotWriteBack;
      started_ = false;
      if (!staged_.empty()) {
        start_round(ctx);
      } else {
        op_ = Op::kNone;
        auto done = std::move(snapshot_done_);
        if (done) done(staged_);
      }
      break;
    }
    case Op::kSnapshotWriteBack: {
      op_ = Op::kNone;
      auto done = std::move(snapshot_done_);
      if (done) done(staged_);
      break;
    }
    case Op::kNone:
      GAM_INVARIANT(false);
  }
}

void QuorumStore::on_message(sim::Context& ctx, const sim::Message& m) {
  switch (sim::MsgType{m.type}) {
    case kStoreReq: {
      auto n = static_cast<size_t>(m.data[1]);
      merge_into(cells_, m.data, 2, n);
      ctx.send(m.src, protocol_id_, kStoreAck, {m.data[0]});
      break;
    }
    case kLoadReq: {
      sim::Payload data{m.data[0], static_cast<std::int64_t>(cells_.size())};
      data.reserve(2 + 3 * cells_.size());
      for (auto& [cell, v] : cells_) {
        data.push_back(cell);
        data.push_back(v.ts);
        data.push_back(v.value);
      }
      ctx.send(m.src, protocol_id_, kLoadRep, std::move(data));
      break;
    }
    case kStoreAck: {
      if (m.data[0] != seq_ || op_ == Op::kNone) break;
      if (op_ != Op::kWrite && op_ != Op::kSnapshotWriteBack) break;
      responders_.insert(m.src);
      if (quorum_reached(ctx.now())) finish_op(ctx);
      break;
    }
    case kLoadRep: {
      if (m.data[0] != seq_ || op_ != Op::kSnapshotRead) break;
      merge_into(staged_, m.data, 2, static_cast<size_t>(m.data[1]));
      responders_.insert(m.src);
      if (quorum_reached(ctx.now())) finish_op(ctx);
      break;
    }
    default:
      break;
  }
}

}  // namespace gam::objects
