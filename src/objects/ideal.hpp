// Ideal linearizable shared objects (paper §4.3, "Logs" and footnote 2).
//
// The failure-detector model allows computability results to use any number
// of wait-free linearizable shared objects; Algorithm 1 is written against
// logs and consensus objects. This header provides those objects directly as
// linearizable sequential code (the simulator serializes every access), with
// an access journal so that genuineness — which processes took steps on which
// objects — stays a checkable property of a run. The message-passing
// constructions of the same objects from Σ and Ω live in
// objects/{abd_register,adopt_commit,consensus,universal_log}.hpp and are
// validated separately (DESIGN.md, "Two object layers").
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::objects {

using MsgId = std::int64_t;

// A datum stored in a log. Algorithm 1 stores three shapes in the same log:
// plain messages m, position tuples (m, h, i) and stabilization tuples (m, h).
struct LogEntry {
  enum Kind : std::int8_t { kMessage = 0, kPosTuple = 1, kStabTuple = 2 };

  Kind kind = kMessage;
  MsgId m = -1;
  std::int32_t h = -1;  // group id for tuples, -1 for messages
  std::int64_t i = -1;  // log position for kPosTuple, -1 otherwise

  static LogEntry message(MsgId m) { return {kMessage, m, -1, -1}; }
  static LogEntry pos_tuple(MsgId m, std::int32_t h, std::int64_t i) {
    return {kPosTuple, m, h, i};
  }
  static LogEntry stab_tuple(MsgId m, std::int32_t h) {
    return {kStabTuple, m, h, -1};
  }

  // The a-priori total order (<) over data items used to break slot ties.
  friend bool operator<(const LogEntry& a, const LogEntry& b) {
    return std::tie(a.kind, a.m, a.h, a.i) < std::tie(b.kind, b.m, b.h, b.i);
  }
  friend bool operator==(const LogEntry& a, const LogEntry& b) = default;
};

// Hash for the membership index of Log: all four fields enter the mix so the
// three entry shapes sharing one message id stay distinct.
struct LogEntryHash {
  std::size_t operator()(const LogEntry& e) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(e.kind);
    auto mix = [&h](std::uint64_t x) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(e.m));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.h)));
    mix(static_cast<std::uint64_t>(e.i));
    return static_cast<std::size_t>(h);
  }
};

// Access journal: which process performed which kind of operation on which
// object. The Minimality checker consumes this.
struct Access {
  ProcessId by;
  std::int64_t object;  // opaque object key supplied by the owner
  enum Op : std::int8_t { kAppend, kBump, kRead, kPropose } op;
};

class AccessJournal {
 public:
  void record(ProcessId by, std::int64_t object, Access::Op op) {
    accesses_.push_back({by, object, op});
    active_.insert(by);
  }
  const std::vector<Access>& accesses() const { return accesses_; }
  // Processes that performed at least one *mutating* object access.
  ProcessSet active() const { return active_; }
  void clear() {
    accesses_.clear();
    active_ = {};
  }

 private:
  std::vector<Access> accesses_;
  ProcessSet active_;
};

// The log object of §4.3: an infinite array of slots numbered from 1, each
// holding zero or more data items. append inserts at the head (the first free
// slot after which only free slots exist); bumpAndLock moves a datum to
// max(current, k) and freezes it there. The induced order d <_L d' compares
// slots, then the a-priori order on data items.
//
// Performance contract (the guarded-action engine leans on all three):
//   - membership (contains/pos/locked/before) is O(1) via a hash index;
//   - head() and locked_count() are O(1) cursors maintained by the mutators;
//   - epoch() counts *effective* mutations, so a caller holding a previous
//     epoch can skip a log that cannot have changed its guard verdicts; the
//     <_L-sorted view is cached per epoch, making repeated order traversals
//     (entries_if, messages_before, for_each_before) allocation-free between
//     mutations.
// The sorted-view cache makes concurrent const traversals of one Log
// instance non-thread-safe; every sweep job owns its objects (bench/sweep.hpp
// rules), so nothing shares a Log across threads.
//
// With history tracking enabled, every mutation is journaled and
// check_history() validates the base invariants of the paper's Table 2
// against the actual operation sequence: presence is stable (Claim 2),
// positions only grow (Claim 3), locks are permanent (Claim 4), a locked
// datum's position is frozen (Claim 5), and the order below a locked datum
// is frozen (Claims 6-8 follow from those three plus the slot order).
class Log {
 public:
  explicit Log(std::int64_t key = 0, bool track_history = false)
      : key_(key), track_history_(track_history) {}

  std::int64_t key() const { return key_; }

  struct HistoryEvent {
    enum Kind : std::int8_t { kAppend, kBump } kind;
    LogEntry entry;
    std::int64_t arg;       // bump target (0 for appends)
    std::int64_t slot;      // slot after the operation
    bool locked_after;
  };

  const std::vector<HistoryEvent>& history() const { return history_; }

  // Replays the journaled operations and verifies the Table-2 invariants.
  // Returns an empty string on success, a diagnostic otherwise.
  std::string check_history() const {
    struct State {
      std::int64_t slot;
      bool locked;
    };
    std::map<std::pair<std::int8_t, std::tuple<std::int64_t, std::int32_t,
                                               std::int64_t>>,
             State>
        seen;
    auto key_of = [](const LogEntry& e) {
      return std::make_pair(static_cast<std::int8_t>(e.kind),
                            std::make_tuple(e.m, static_cast<std::int64_t>(e.h),
                                            e.i));
    };
    for (const HistoryEvent& ev : history_) {
      auto k = key_of(ev.entry);
      auto it = seen.find(k);
      if (it == seen.end()) {
        if (ev.kind == HistoryEvent::kBump)
          return "Claim 2: bump of a datum never appended";
        seen.emplace(k, State{ev.slot, ev.locked_after});
        continue;
      }
      State& st = it->second;
      if (ev.slot < st.slot) return "Claim 3: position decreased";
      if (st.locked && !ev.locked_after) return "Claim 4: lock dropped";
      if (st.locked && ev.slot != st.slot)
        return "Claim 5: locked datum moved";
      st.slot = ev.slot;
      st.locked = ev.locked_after;
    }
    return {};
  }

  // Inserts d at the head slot; no-op if d is already present. Returns the
  // position of d.
  std::int64_t append(const LogEntry& d, ProcessId by,
                      AccessJournal* journal = nullptr) {
    if (journal) journal->record(by, key_, Access::kAppend);
    if (auto* it = find(d)) {
      if (track_history_)
        history_.push_back(
            {HistoryEvent::kAppend, d, 0, it->slot, it->locked});
      return it->slot;
    }
    index_.emplace(d, static_cast<std::uint32_t>(items_.size()));
    items_.push_back({d, head_, false});
    ++epoch_;
    if (track_history_)
      history_.push_back({HistoryEvent::kAppend, d, 0, head_, false});
    return head_++;
  }

  // Batched append (one object access): inserts the n entries in order at
  // successive head slots, skipping entries already present — exactly the
  // state a sequence of n append() calls by the same process produces, but
  // with a single journal record and a single epoch bump, so the <_L-sorted
  // view is rebuilt once per batch instead of once per entry. Returns the
  // number of entries that were actually inserted.
  std::size_t append_batch(const LogEntry* d, std::size_t n, ProcessId by,
                           AccessJournal* journal = nullptr) {
    if (journal) journal->record(by, key_, Access::kAppend);
    std::size_t inserted = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (auto* it = find(d[j])) {
        if (track_history_)
          history_.push_back(
              {HistoryEvent::kAppend, d[j], 0, it->slot, it->locked});
        continue;
      }
      index_.emplace(d[j], static_cast<std::uint32_t>(items_.size()));
      items_.push_back({d[j], head_, false});
      if (track_history_)
        history_.push_back({HistoryEvent::kAppend, d[j], 0, head_, false});
      ++head_;
      ++inserted;
    }
    if (inserted > 0) ++epoch_;
    return inserted;
  }

  // Position of d, or 0 when absent.
  std::int64_t pos(const LogEntry& d) const {
    const Item* it = find(d);
    return it ? it->slot : 0;
  }

  bool contains(const LogEntry& d) const { return find(d) != nullptr; }

  // Moves d from its slot l to slot max(k, l), then locks it. Locked data can
  // no longer be bumped. Precondition: d is in the log.
  void bump_and_lock(const LogEntry& d, std::int64_t k, ProcessId by,
                     AccessJournal* journal = nullptr) {
    if (journal) journal->record(by, key_, Access::kBump);
    Item* it = find(d);
    GAM_EXPECTS(it != nullptr);
    if (!it->locked) {
      it->slot = std::max(it->slot, k);
      it->locked = true;
      head_ = std::max(head_, it->slot + 1);
      ++locked_count_;
      ++epoch_;
    }
    if (track_history_)
      history_.push_back({HistoryEvent::kBump, d, k, it->slot, it->locked});
  }

  bool locked(const LogEntry& d) const {
    const Item* it = find(d);
    return it != nullptr && it->locked;
  }

  // d <_L d': both present, and (slot, entry) lexicographic order.
  bool before(const LogEntry& d, const LogEntry& d2) const {
    const Item* a = find(d);
    const Item* b = find(d2);
    if (!a || !b) return false;
    return std::make_pair(a->slot, a->entry) < std::make_pair(b->slot, b->entry);
  }

  // All entries matching `pred`, in <_L order.
  template <typename Pred>
  std::vector<LogEntry> entries_if(Pred&& pred) const {
    std::vector<LogEntry> out;
    for_each_sorted([&](const LogEntry& e) {
      if (pred(e)) out.push_back(e);
    });
    return out;
  }

  std::vector<LogEntry> all_entries() const {
    return entries_if([](const LogEntry&) { return true; });
  }

  // Visits every entry in <_L order without materializing a vector. A
  // bool-returning fn stops the walk early by returning false.
  template <typename Fn>
  void for_each_sorted(Fn&& fn) const {
    ensure_sorted();
    for (std::uint32_t i : sorted_) {
      if constexpr (std::is_same_v<std::invoke_result_t<Fn&, const LogEntry&>,
                                   bool>) {
        if (!fn(items_[i].entry)) return;
      } else {
        fn(items_[i].entry);
      }
    }
  }

  // Visits the entries strictly before d in <_L order; no-op when d is
  // absent (matching before(), which is false unless both ends are present).
  // Returning false from fn stops the walk early.
  template <typename Fn>
  void for_each_before(const LogEntry& d, Fn&& fn) const {
    const Item* target = find(d);
    if (target == nullptr) return;
    ensure_sorted();
    auto bound = std::make_pair(target->slot, target->entry);
    for (std::uint32_t i : sorted_) {
      const Item& it = items_[i];
      if (std::make_pair(it.slot, it.entry) >= bound) break;
      if (!fn(it.entry)) return;
    }
  }

  // True when some entry matches `pred` (unordered, allocation-free).
  template <typename Pred>
  bool any_entry(Pred&& pred) const {
    for (const Item& it : items_)
      if (pred(it.entry)) return true;
    return false;
  }

  // Message entries strictly before d in <_L order.
  std::vector<LogEntry> messages_before(const LogEntry& d) const {
    std::vector<LogEntry> out;
    for_each_before(d, [&](const LogEntry& e) {
      if (e.kind == LogEntry::kMessage) out.push_back(e);
      return true;
    });
    return out;
  }

  size_t size() const { return items_.size(); }

  // O(1) cursors and the mutation epoch (see the class comment).
  std::int64_t head() const { return head_; }
  std::int64_t locked_count() const { return locked_count_; }
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct Item {
    LogEntry entry;
    std::int64_t slot;
    bool locked;
  };

  const Item* find(const LogEntry& d) const {
    auto it = index_.find(d);
    return it == index_.end() ? nullptr : &items_[it->second];
  }
  Item* find(const LogEntry& d) {
    return const_cast<Item*>(std::as_const(*this).find(d));
  }

  void ensure_sorted() const {
    if (sorted_epoch_ == epoch_) return;
    sorted_.resize(items_.size());
    for (std::uint32_t i = 0; i < sorted_.size(); ++i) sorted_[i] = i;
    std::sort(sorted_.begin(), sorted_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return std::make_pair(items_[a].slot, items_[a].entry) <
                       std::make_pair(items_[b].slot, items_[b].entry);
              });
    sorted_epoch_ = epoch_;
  }

  std::int64_t key_;
  bool track_history_ = false;
  std::vector<Item> items_;
  std::unordered_map<LogEntry, std::uint32_t, LogEntryHash> index_;
  std::vector<HistoryEvent> history_;
  std::int64_t head_ = 1;  // slots are numbered from 1
  std::int64_t locked_count_ = 0;
  std::uint64_t epoch_ = 0;
  // Lazily rebuilt <_L view: item indices sorted by (slot, entry).
  mutable std::vector<std::uint32_t> sorted_;
  mutable std::uint64_t sorted_epoch_ = ~std::uint64_t{0};
};

// Ideal consensus: the first proposal decides. Validity, agreement and
// termination are immediate from the serialization.
class Consensus {
 public:
  std::int64_t propose(std::int64_t v, ProcessId by,
                       AccessJournal* journal = nullptr,
                       std::int64_t key = 0) {
    if (journal) journal->record(by, key, Access::kPropose);
    if (!decided_) decided_ = v;
    return *decided_;
  }

  std::optional<std::int64_t> decided() const { return decided_; }

 private:
  std::optional<std::int64_t> decided_;
};

// Ideal adopt-commit (Gafni): if every proposal equals the first one, commit;
// otherwise adopt the first value. Satisfies AC-validity, AC-agreement and
// the commit-on-agreement property used by §4.3's contention-free fast path.
class AdoptCommit {
 public:
  enum class Grade { kCommit, kAdopt };
  struct Outcome {
    Grade grade;
    std::int64_t value;
  };

  Outcome propose(std::int64_t v, ProcessId by,
                  AccessJournal* journal = nullptr, std::int64_t key = 0) {
    if (journal) journal->record(by, key, Access::kPropose);
    if (!first_) {
      first_ = v;
      return {Grade::kCommit, v};
    }
    if (*first_ == v && !conflict_) return {Grade::kCommit, v};
    conflict_ = true;
    return {Grade::kAdopt, *first_};
  }

 private:
  std::optional<std::int64_t> first_;
  bool conflict_ = false;
};

}  // namespace gam::objects
