// Contention-free fast consensus (paper §4.3, citing [2]): a consensus object
// guarded by an adopt-commit object. propose first runs the adopt-commit over
// the *intersection* g∩h; when it commits — which it always does while
// processes execute operations in the same order, i.e. without contention —
// the result is final and only the processes of g∩h ever took steps. On
// adopt, the adopted value is handed to a full consensus implemented in the
// *enclosing group* g (Ω_g ∧ Σ_g).
//
// This is exactly the mechanism behind Proposition 47: when no message is
// addressed to h during a run, operations on LOG_{g∩h} stay on the fast path
// and genuineness is preserved.
#pragma once

#include <functional>
#include <memory>

#include "objects/abd_register.hpp"
#include "objects/consensus_mp.hpp"

namespace gam::objects {

class CfFastConsensus {
 public:
  // `ac_store` must be scoped to g∩h, `cons` to g.
  CfFastConsensus(std::shared_ptr<QuorumStore> ac_store, ProcessId self,
                  std::shared_ptr<IndulgentConsensus> cons)
      : ac_(std::make_shared<QuorumAdoptCommit>(std::move(ac_store), self)),
        cons_(std::move(cons)) {}

  void propose(std::int64_t v, std::function<void(std::int64_t)> done) {
    ac_->propose(v, [this, done = std::move(done)](
                        QuorumAdoptCommit::Outcome out) {
      if (out.grade == QuorumAdoptCommit::Grade::kCommit) {
        // Fast path: adopt-commit agreement guarantees every other process
        // adopts this value, so a committed value is already the consensus.
        fast_ = true;
        done(out.value);
        return;
      }
      cons_->propose(out.value, done);
    });
  }

  // Whether the last completed propose finished on the fast (g∩h-only) path.
  bool took_fast_path() const { return fast_; }

 private:
  std::shared_ptr<QuorumAdoptCommit> ac_;
  std::shared_ptr<IndulgentConsensus> cons_;
  bool fast_ = false;
};

}  // namespace gam::objects
