#include "objects/consensus_mp.hpp"

namespace gam::objects {

namespace {
constexpr int kStallLimit = 8;  // idle ticks before a ballot is retried
}

void IndulgentConsensus::propose(std::int64_t v,
                                 std::function<void(std::int64_t)> done) {
  GAM_EXPECTS(!proposal_.has_value());
  proposal_ = v;
  done_ = std::move(done);
  if (decided_) {
    auto d = done_;
    if (d) d(*decided_);
  }
}

void IndulgentConsensus::start_ballot(sim::Context& ctx) {
  ++round_;
  current_ballot_ = make_ballot(round_);
  accept_phase_ = false;
  promisers_ = {};
  accepters_ = {};
  best_accepted_ballot_ = -1;
  chosen_value_ = *proposal_;
  stall_ = 0;
  ctx.send_to_set(scope_, protocol_id_, kPrepare, {current_ballot_});
}

bool IndulgentConsensus::on_idle(sim::Context& ctx) {
  if (!proposal_ || decided_) return false;
  // Only the Ω-designated leader drives ballots; everyone else periodically
  // forwards its proposal to the leader. This is what makes the protocol live
  // under contention once Ω stabilizes — even when the stable leader never
  // proposed itself.
  auto leader = omega_->query(self_, ctx.now());
  ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kOmega);
  if (!leader) return false;
  if (*leader != self_) {
    if (++stall_ > kStallLimit) {
      stall_ = 0;
      ctx.send(*leader, protocol_id_, kForward, {*proposal_});
      return true;
    }
    return false;
  }
  if (current_ballot_ < 0 || ++stall_ > kStallLimit) {
    start_ballot(ctx);
    return true;
  }
  return false;
}

void IndulgentConsensus::decide(sim::Context& ctx, std::int64_t v) {
  if (decided_) return;
  decided_ = v;
  ctx.send_to_set(scope_, protocol_id_, kDecide, {v});
  auto done = done_;
  if (done) done(v);
}

void IndulgentConsensus::on_message(sim::Context& ctx, const sim::Message& m) {
  switch (sim::MsgType{m.type}) {
    case kPrepare: {
      std::int64_t b = m.data[0];
      if (b > promised_) promised_ = b;
      if (b >= promised_)
        ctx.send(m.src, protocol_id_, kPromise,
                 {b, accepted_ballot_, accepted_value_});
      break;
    }
    case kPromise: {
      std::int64_t b = m.data[0];
      if (b != current_ballot_ || accept_phase_ || decided_) break;
      promisers_.insert(m.src);
      if (m.data[1] > best_accepted_ballot_) {
        best_accepted_ballot_ = m.data[1];
        chosen_value_ = m.data[2];
      }
      auto q = sigma_->query(self_, ctx.now());
      ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kSigma);
      if (q && q->subset_of(promisers_)) {
        accept_phase_ = true;
        stall_ = 0;
        ctx.send_to_set(scope_, protocol_id_, kAccept,
                        {current_ballot_, chosen_value_});
      }
      break;
    }
    case kAccept: {
      std::int64_t b = m.data[0];
      if (b >= promised_) {
        promised_ = b;
        accepted_ballot_ = b;
        accepted_value_ = m.data[1];
        ctx.send(m.src, protocol_id_, kAccepted, {b});
      }
      break;
    }
    case kAccepted: {
      std::int64_t b = m.data[0];
      if (b != current_ballot_ || !accept_phase_ || decided_) break;
      accepters_.insert(m.src);
      auto q = sigma_->query(self_, ctx.now());
      ctx.trace_fd_query(protocol_id_, sim::DetectorClass::kSigma);
      if (q && q->subset_of(accepters_)) decide(ctx, chosen_value_);
      break;
    }
    case kDecide: {
      if (!decided_) {
        decided_ = m.data[0];
        auto done = done_;
        if (done) done(*decided_);
      }
      break;
    }
    case kForward: {
      // Adopt a forwarded proposal when we have none of our own; the idle
      // loop then drives it if we are (still) the leader.
      if (!proposal_ && !decided_) proposal_ = m.data[0];
      break;
    }
    default:
      break;
  }
}

}  // namespace gam::objects
