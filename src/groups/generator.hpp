// Random destination-group topologies for property sweeps and benches.
#pragma once

#include <vector>

#include "groups/group_system.hpp"
#include "util/rng.hpp"

namespace gam::groups {

struct TopologySpec {
  int process_count = 6;
  int group_count = 4;
  int min_group_size = 2;
  int max_group_size = 3;
  // Chance that two consecutive groups are forced to share a process, which
  // controls how many intersections (and cyclic families) appear.
  double overlap_bias = 0.5;
};

inline GroupSystem random_group_system(const TopologySpec& spec, Rng& rng) {
  GAM_EXPECTS(spec.process_count > 0 && spec.group_count > 0);
  GAM_EXPECTS(spec.min_group_size >= 1 &&
              spec.min_group_size <= spec.max_group_size);
  std::vector<ProcessSet> groups;
  for (int g = 0; g < spec.group_count; ++g) {
    int size = static_cast<int>(
        rng.range(spec.min_group_size,
                  std::min(spec.max_group_size, spec.process_count)));
    ProcessSet s;
    // Bias toward overlapping the previous group to create intersections.
    if (!groups.empty() && rng.chance(spec.overlap_bias)) {
      const ProcessSet& prev = groups.back();
      std::vector<ProcessId> ids(prev.begin(), prev.end());
      s.insert(ids[static_cast<size_t>(rng.below(ids.size()))]);
    }
    while (s.size() < size)
      s.insert(static_cast<ProcessId>(
          rng.below(static_cast<std::uint64_t>(spec.process_count))));
    groups.push_back(s);
  }
  return GroupSystem(spec.process_count, std::move(groups));
}

// A ring of k groups, each of size `width`+1, where group i shares exactly
// one process with group i+1 (mod k): the canonical cyclic-family topology.
// Uses k*(width) processes.
inline GroupSystem ring_system(int k, int width = 1) {
  GAM_EXPECTS(k >= 3 && width >= 1);
  int n = k * width;
  GAM_EXPECTS(n <= ProcessSet::kMaxProcesses);
  std::vector<ProcessSet> groups;
  for (int i = 0; i < k; ++i) {
    ProcessSet s;
    for (int j = 0; j < width; ++j) s.insert(i * width + j);
    s.insert(((i + 1) % k) * width);  // share the next group's anchor
    groups.push_back(s);
  }
  return GroupSystem(n, std::move(groups));
}

// A chain of k groups (acyclic intersection graph, F = ∅): group i shares one
// process with group i+1.
inline GroupSystem chain_system(int k, int width = 2) {
  GAM_EXPECTS(k >= 1 && width >= 2);
  int n = k * (width - 1) + 1;
  GAM_EXPECTS(n <= ProcessSet::kMaxProcesses);
  std::vector<ProcessSet> groups;
  for (int i = 0; i < k; ++i) {
    ProcessSet s;
    for (int j = 0; j < width; ++j) s.insert(i * (width - 1) + j);
    groups.push_back(s);
  }
  return GroupSystem(n, std::move(groups));
}

// `clusters` pairwise-disjoint rings of `k` groups each (ring_system shape
// shifted per cluster). Each cluster contributes one cyclic family (its
// whole ring), so the topology scales both the process universe and the
// group count while keeping every intersection-graph component at k members
// — the shape the 128-group/256-process wide smoke runs use.
inline GroupSystem clustered_ring_system(int clusters, int k, int width = 1) {
  GAM_EXPECTS(clusters >= 1 && k >= 3 && width >= 1);
  int per_cluster = k * width;
  int n = clusters * per_cluster;
  GAM_EXPECTS(n <= ProcessSet::kMaxProcesses);
  GAM_EXPECTS(clusters * k <= GroupSystem::kMaxGroups);
  std::vector<ProcessSet> groups;
  for (int c = 0; c < clusters; ++c) {
    int base = c * per_cluster;
    for (int i = 0; i < k; ++i) {
      ProcessSet s;
      for (int j = 0; j < width; ++j) s.insert(base + i * width + j);
      s.insert(base + ((i + 1) % k) * width);
      groups.push_back(s);
    }
  }
  return GroupSystem(n, std::move(groups));
}

// k pairwise-disjoint groups of the given size.
inline GroupSystem disjoint_system(int k, int size = 2) {
  GAM_EXPECTS(k >= 1 && size >= 1 && k * size <= ProcessSet::kMaxProcesses);
  std::vector<ProcessSet> groups;
  for (int i = 0; i < k; ++i) {
    ProcessSet s;
    for (int j = 0; j < size; ++j) s.insert(i * size + j);
    groups.push_back(s);
  }
  return GroupSystem(k * size, std::move(groups));
}

}  // namespace gam::groups
