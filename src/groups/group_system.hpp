// Destination groups, intersection graphs, and cyclic families (paper, §2-§3).
//
// The atomic-multicast problem is fully determined by the set G of destination
// groups. This module owns:
//   - G itself and the derived maps G(p) (groups containing p) and pairwise
//     intersections g∩h;
//   - the intersection graph of any family f ⊆ G (vertices = groups, edge
//     g—h iff g∩h ≠ ∅);
//   - the set F of *cyclic families*: families of ≥3 groups whose intersection
//     graph is Hamiltonian, together with cpaths(f), the closed paths visiting
//     all groups of f;
//   - the "family faulty at t" predicate: every closed path of f visits an
//     edge (g,h) with g∩h fully crashed at t.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::groups {

using GroupId = int;

// A family of destination groups as a fixed-width bitset over group ids.
// 2 words = 128 group ids; GroupSystem::kMaxGroups is static_assert-tied to
// this width.
using FamilyMask = FixedBitset<2>;

inline FamilyMask family_of(std::initializer_list<GroupId> gs) {
  FamilyMask m;
  for (GroupId g : gs) m.insert(g);
  return m;
}

inline bool family_contains(const FamilyMask& f, GroupId g) {
  return f.contains(g);
}

inline int family_size(const FamilyMask& f) { return f.size(); }

std::vector<GroupId> family_members(const FamilyMask& f);

// A closed path in an intersection graph: a sequence of group ids with
// front() == back(), visiting every group of the family exactly once
// (a Hamiltonian cycle read from some start, in some direction).
using ClosedPath = std::vector<GroupId>;

class GroupSystem {
 public:
  // Hard limit on |G|: the FamilyMask group bitset holds this many group
  // ids, and GroupPairIndex (below) sizes its flat (g,h) layout against it.
  // Construction aborts with a diagnostic past the limit.
  static constexpr int kMaxGroups = FamilyMask::kCapacity;
  static_assert(kMaxGroups == 128,
                "FamilyMask width and kMaxGroups move together");

  GroupSystem(int process_count, std::vector<ProcessSet> groups);

  int process_count() const { return process_count_; }
  int group_count() const { return static_cast<int>(groups_.size()); }
  const ProcessSet& group(GroupId g) const {
    GAM_EXPECTS(valid(g));
    return groups_[static_cast<size_t>(g)];
  }
  const std::vector<ProcessSet>& groups() const { return groups_; }

  ProcessSet intersection(GroupId g, GroupId h) const {
    return group(g) & group(h);
  }
  bool intersecting(GroupId g, GroupId h) const {
    return intersection(g, h).intersects(ProcessSet::universe(process_count_));
  }

  // G(p): ids of the groups containing p.
  const std::vector<GroupId>& groups_of(ProcessId p) const {
    GAM_EXPECTS(p >= 0 && p < process_count_);
    return groups_of_[static_cast<size_t>(p)];
  }

  // All processes that belong to at least one group.
  ProcessSet covered_processes() const;

  // ---- cyclic families -----------------------------------------------------

  // F: every family f ⊆ G with |f| >= 3 whose intersection graph is
  // Hamiltonian. Computed once, lazily. A cyclic family's intersection graph
  // is connected, so the enumeration runs per connected component of the
  // global intersection graph: components up to 20 groups are enumerated
  // exhaustively (2^20 subsets, far beyond the topologies in the paper),
  // while the total group count may go up to kMaxGroups — e.g. 128
  // pairwise-disjoint groups enumerate nothing at all. Components larger
  // than 20 fall back to a bounded sparse enumeration of small connected
  // induced subgraphs (families of size <= kSparseFamilyCap within a
  // per-component examination budget) instead of aborting; the fallback is
  // sound (everything it reports is cyclic) but deliberately incomplete,
  // and prints a diagnostic saying so.
  const std::vector<FamilyMask>& cyclic_families() const;

  // Knobs of the sparse fallback, exposed so tests can reason about them.
  static constexpr int kExhaustiveComponentCap = 20;
  static constexpr int kSparseFamilyCap = 8;
  static constexpr std::size_t kSparseBudget = 200000;

  bool is_cyclic(FamilyMask f) const;

  // F(g): the cyclic families containing group g.
  std::vector<FamilyMask> families_of_group(GroupId g) const;

  // F(p): the cyclic families f with p ∈ g∩h for distinct g,h ∈ f.
  std::vector<FamilyMask> families_of_process(ProcessId p) const;

  // H(p, g) from Lemma 30: the groups h with g∩h ≠ ∅ such that some cyclic
  // family f ∈ F(p) contains both g and h.
  std::vector<GroupId> cyclic_neighbors(ProcessId p, GroupId g) const;

  // cpaths(f): all closed paths in the intersection graph of f visiting every
  // group — i.e. every rotation and direction of every Hamiltonian cycle.
  std::vector<ClosedPath> cpaths(FamilyMask f) const;

  // Distinct Hamiltonian cycles of f up to rotation and reflection (one
  // canonical representative per ≡-equivalence class of cpaths).
  std::vector<ClosedPath> hamiltonian_cycles(FamilyMask f) const;

  // Two closed paths are equivalent when they visit the same edges.
  static bool paths_equivalent(const ClosedPath& a, const ClosedPath& b);

  // dir(π): +1 when π follows its cycle's canonical orientation, -1 otherwise.
  int path_direction(const ClosedPath& pi) const;

  // ---- failure-dependent notions --------------------------------------------

  // f is faulty at time t when some group intersection inside f — a pair of
  // distinct members g,h with g∩h ≠ ∅ — is entirely crashed at t.
  //
  // NOTE ON THE DEFINITION. The paper phrases faultiness per closed path
  // ("every π ∈ cpaths(f) visits an edge (g,h) with g∩h faulty"), which reads
  // as a Hamiltonicity condition (family_faulty_hamiltonian_at below). The two
  // readings agree on triangles and on every example in the paper (Figure 1),
  // but diverge when a family survives the death of a *chord*: there the
  // path reading keeps the family alive while Algorithm 1's commit action
  // waits forever for tuples that only the dead intersection could write.
  // Lemma 25 states exactly the property liveness needs — "if g∩h is faulty
  // then every cyclic family containing g and h is eventually faulty" — and
  // that property holds by construction under the pairwise reading, which is
  // therefore the operational predicate used by the γ oracle. See
  // tests/test_mu_multicast.cpp (ChordTopologyStaysLive) and DESIGN.md.
  bool family_faulty_at(FamilyMask f, const sim::FailurePattern& pattern,
                        sim::Time t) const;

  // f is eventually faulty in this pattern (faulty at t = ∞).
  bool family_faulty(FamilyMask f, const sim::FailurePattern& pattern) const;

  // The literal per-path reading: after removing the edges whose
  // intersections are dead at t, the intersection graph of f is no longer
  // Hamiltonian. Exposed for the Algorithm 3 emulation machinery and the
  // bench that contrasts the two readings.
  bool family_faulty_hamiltonian_at(FamilyMask f,
                                    const sim::FailurePattern& pattern,
                                    sim::Time t) const;

  std::string family_to_string(FamilyMask f) const;

 private:
  bool valid(GroupId g) const { return g >= 0 && g < group_count(); }

  // Is the graph over `members` with the given adjacency Hamiltonian?
  bool hamiltonian(const std::vector<GroupId>& members,
                   const std::vector<std::uint32_t>& adj) const;

  // The bounded fallback behind cyclic_families() for components larger than
  // kExhaustiveComponentCap: grows connected induced subgraphs up to
  // kSparseFamilyCap members within kSparseBudget examinations.
  void sparse_cyclic_families(const std::vector<GroupId>& members,
                              std::vector<FamilyMask>& out) const;

  // Adjacency (bitmask over positions in `members`) of the intersection graph
  // restricted to `members`, keeping only edges whose intersections pass
  // `edge_alive`.
  template <typename EdgeAlive>
  std::vector<std::uint32_t> adjacency(const std::vector<GroupId>& members,
                                       EdgeAlive&& edge_alive) const {
    auto n = members.size();
    std::vector<std::uint32_t> adj(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        ProcessSet inter = intersection(members[i], members[j]);
        if (!inter.empty() && edge_alive(inter)) {
          adj[i] |= (1u << j);
          adj[j] |= (1u << i);
        }
      }
    }
    return adj;
  }

  int process_count_;
  std::vector<ProcessSet> groups_;
  std::vector<std::vector<GroupId>> groups_of_;
  mutable std::vector<FamilyMask> cyclic_families_;
  mutable bool families_computed_ = false;
};

// Flat index over normalized destination-group pairs (g, h).
//
// Algorithm 1 keeps one log per unordered pair of groups; the flat layout
// used to be hand-rolled three ways (`lo * 64 + hi` twice and the sizing
// expression `(gc - 1) * 64 + gc`), each with the magic 64 that a 65th group
// would silently alias. This helper owns the pack: `flat()` for vector
// indices, `key()` for int64 journal keys, `size()` for the backing-array
// length. The stride is the actual group count, so the layout is dense in
// the pair order (lo, hi) — the same iteration order the old stride-64
// layout produced, which keeps scheduling and traces unchanged.
class GroupPairIndex {
 public:
  GroupPairIndex() = default;
  explicit constexpr GroupPairIndex(int group_count)
      : group_count_(group_count) {
    GAM_EXPECTS(group_count > 0 && group_count <= GroupSystem::kMaxGroups);
  }

  constexpr int group_count() const { return group_count_; }

  // Length of a flat array indexed by flat().
  constexpr int size() const { return group_count_ * group_count_; }

  // Normalized flat index of the unordered pair {g, h} (g == h allowed):
  // min * group_count + max.
  constexpr int flat(GroupId g, GroupId h) const {
    GAM_EXPECTS(valid(g) && valid(h));
    GroupId lo = g < h ? g : h;
    GroupId hi = g < h ? h : g;
    return lo * group_count_ + hi;
  }

  // The same pack as an int64 journal/object key.
  constexpr std::int64_t key(GroupId g, GroupId h) const {
    return static_cast<std::int64_t>(flat(g, h));
  }

 private:
  constexpr bool valid(GroupId g) const {
    return g >= 0 && g < group_count_;
  }

  int group_count_ = 0;
};

// The running example of the paper (Figure 1): P = {p0..p4} with
// g0 = {p0,p1}, g1 = {p1,p2}, g2 = {p0,p2,p3}, g3 = {p0,p3,p4}.
// (The paper numbers from 1; we number from 0.)
GroupSystem figure1_system();

}  // namespace gam::groups
