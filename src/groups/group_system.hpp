// Destination groups, intersection graphs, and cyclic families (paper, §2-§3).
//
// The atomic-multicast problem is fully determined by the set G of destination
// groups. This module owns:
//   - G itself and the derived maps G(p) (groups containing p) and pairwise
//     intersections g∩h;
//   - the intersection graph of any family f ⊆ G (vertices = groups, edge
//     g—h iff g∩h ≠ ∅);
//   - the set F of *cyclic families*: families of ≥3 groups whose intersection
//     graph is Hamiltonian, together with cpaths(f), the closed paths visiting
//     all groups of f;
//   - the "family faulty at t" predicate: every closed path of f visits an
//     edge (g,h) with g∩h fully crashed at t.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/failure_pattern.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::groups {

using GroupId = int;

// A family of destination groups as a bitmask over group ids.
using FamilyMask = std::uint64_t;

inline FamilyMask family_of(std::initializer_list<GroupId> gs) {
  FamilyMask m = 0;
  for (GroupId g : gs) m |= (FamilyMask{1} << g);
  return m;
}

inline bool family_contains(FamilyMask f, GroupId g) {
  return ((f >> g) & 1u) != 0;
}

inline int family_size(FamilyMask f) { return std::popcount(f); }

std::vector<GroupId> family_members(FamilyMask f);

// A closed path in an intersection graph: a sequence of group ids with
// front() == back(), visiting every group of the family exactly once
// (a Hamiltonian cycle read from some start, in some direction).
using ClosedPath = std::vector<GroupId>;

class GroupSystem {
 public:
  // Hard limit on |G|: FamilyMask is a 64-bit group bitmask and the log
  // journal packs a (g,h) pair as g*64+h, so a 65th group would silently
  // alias both encodings. Construction aborts with a diagnostic past it.
  static constexpr int kMaxGroups = 64;

  GroupSystem(int process_count, std::vector<ProcessSet> groups);

  int process_count() const { return process_count_; }
  int group_count() const { return static_cast<int>(groups_.size()); }
  const ProcessSet& group(GroupId g) const {
    GAM_EXPECTS(valid(g));
    return groups_[static_cast<size_t>(g)];
  }
  const std::vector<ProcessSet>& groups() const { return groups_; }

  ProcessSet intersection(GroupId g, GroupId h) const {
    return group(g) & group(h);
  }
  bool intersecting(GroupId g, GroupId h) const {
    return intersection(g, h).intersects(ProcessSet::universe(process_count_));
  }

  // G(p): ids of the groups containing p.
  const std::vector<GroupId>& groups_of(ProcessId p) const {
    GAM_EXPECTS(p >= 0 && p < process_count_);
    return groups_of_[static_cast<size_t>(p)];
  }

  // All processes that belong to at least one group.
  ProcessSet covered_processes() const;

  // ---- cyclic families -----------------------------------------------------

  // F: every family f ⊆ G with |f| >= 3 whose intersection graph is
  // Hamiltonian. Computed once, lazily. A cyclic family's intersection graph
  // is connected, so the enumeration runs per connected component of the
  // global intersection graph: each component may hold at most 20 groups
  // (2^20 subsets, far beyond the topologies in the paper), while the total
  // group count may go up to kMaxGroups — e.g. 64 pairwise-disjoint groups
  // enumerate nothing at all.
  const std::vector<FamilyMask>& cyclic_families() const;

  bool is_cyclic(FamilyMask f) const;

  // F(g): the cyclic families containing group g.
  std::vector<FamilyMask> families_of_group(GroupId g) const;

  // F(p): the cyclic families f with p ∈ g∩h for distinct g,h ∈ f.
  std::vector<FamilyMask> families_of_process(ProcessId p) const;

  // H(p, g) from Lemma 30: the groups h with g∩h ≠ ∅ such that some cyclic
  // family f ∈ F(p) contains both g and h.
  std::vector<GroupId> cyclic_neighbors(ProcessId p, GroupId g) const;

  // cpaths(f): all closed paths in the intersection graph of f visiting every
  // group — i.e. every rotation and direction of every Hamiltonian cycle.
  std::vector<ClosedPath> cpaths(FamilyMask f) const;

  // Distinct Hamiltonian cycles of f up to rotation and reflection (one
  // canonical representative per ≡-equivalence class of cpaths).
  std::vector<ClosedPath> hamiltonian_cycles(FamilyMask f) const;

  // Two closed paths are equivalent when they visit the same edges.
  static bool paths_equivalent(const ClosedPath& a, const ClosedPath& b);

  // dir(π): +1 when π follows its cycle's canonical orientation, -1 otherwise.
  int path_direction(const ClosedPath& pi) const;

  // ---- failure-dependent notions --------------------------------------------

  // f is faulty at time t when some group intersection inside f — a pair of
  // distinct members g,h with g∩h ≠ ∅ — is entirely crashed at t.
  //
  // NOTE ON THE DEFINITION. The paper phrases faultiness per closed path
  // ("every π ∈ cpaths(f) visits an edge (g,h) with g∩h faulty"), which reads
  // as a Hamiltonicity condition (family_faulty_hamiltonian_at below). The two
  // readings agree on triangles and on every example in the paper (Figure 1),
  // but diverge when a family survives the death of a *chord*: there the
  // path reading keeps the family alive while Algorithm 1's commit action
  // waits forever for tuples that only the dead intersection could write.
  // Lemma 25 states exactly the property liveness needs — "if g∩h is faulty
  // then every cyclic family containing g and h is eventually faulty" — and
  // that property holds by construction under the pairwise reading, which is
  // therefore the operational predicate used by the γ oracle. See
  // tests/test_mu_multicast.cpp (ChordTopologyStaysLive) and DESIGN.md.
  bool family_faulty_at(FamilyMask f, const sim::FailurePattern& pattern,
                        sim::Time t) const;

  // f is eventually faulty in this pattern (faulty at t = ∞).
  bool family_faulty(FamilyMask f, const sim::FailurePattern& pattern) const;

  // The literal per-path reading: after removing the edges whose
  // intersections are dead at t, the intersection graph of f is no longer
  // Hamiltonian. Exposed for the Algorithm 3 emulation machinery and the
  // bench that contrasts the two readings.
  bool family_faulty_hamiltonian_at(FamilyMask f,
                                    const sim::FailurePattern& pattern,
                                    sim::Time t) const;

  std::string family_to_string(FamilyMask f) const;

 private:
  bool valid(GroupId g) const { return g >= 0 && g < group_count(); }

  // Is the graph over `members` with the given adjacency Hamiltonian?
  bool hamiltonian(const std::vector<GroupId>& members,
                   const std::vector<std::uint32_t>& adj) const;

  // Adjacency (bitmask over positions in `members`) of the intersection graph
  // restricted to `members`, keeping only edges whose intersections pass
  // `edge_alive`.
  template <typename EdgeAlive>
  std::vector<std::uint32_t> adjacency(const std::vector<GroupId>& members,
                                       EdgeAlive&& edge_alive) const {
    auto n = members.size();
    std::vector<std::uint32_t> adj(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        ProcessSet inter = intersection(members[i], members[j]);
        if (!inter.empty() && edge_alive(inter)) {
          adj[i] |= (1u << j);
          adj[j] |= (1u << i);
        }
      }
    }
    return adj;
  }

  int process_count_;
  std::vector<ProcessSet> groups_;
  std::vector<std::vector<GroupId>> groups_of_;
  mutable std::vector<FamilyMask> cyclic_families_;
  mutable bool families_computed_ = false;
};

// The running example of the paper (Figure 1): P = {p0..p4} with
// g0 = {p0,p1}, g1 = {p1,p2}, g2 = {p0,p2,p3}, g3 = {p0,p3,p4}.
// (The paper numbers from 1; we number from 0.)
GroupSystem figure1_system();

}  // namespace gam::groups
