#include "groups/group_system.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <utility>

namespace gam::groups {

std::vector<GroupId> family_members(const FamilyMask& f) {
  return std::vector<GroupId>(f.begin(), f.end());
}

GroupSystem::GroupSystem(int process_count, std::vector<ProcessSet> groups)
    : process_count_(process_count), groups_(std::move(groups)) {
  GAM_EXPECTS(process_count_ > 0 &&
              process_count_ <= ProcessSet::kMaxProcesses);
  GAM_EXPECTS(!groups_.empty());
  if (group_count() > kMaxGroups)
    std::fprintf(stderr,
                 "GroupSystem: %d destination groups exceed kMaxGroups = %d "
                 "(the FamilyMask group bitset holds kMaxGroups ids; widen "
                 "FixedBitset's word count to go further)\n",
                 group_count(), kMaxGroups);
  GAM_EXPECTS(group_count() <= kMaxGroups);
  groups_of_.resize(static_cast<size_t>(process_count_));
  for (GroupId g = 0; g < group_count(); ++g) {
    const ProcessSet& s = groups_[static_cast<size_t>(g)];
    GAM_EXPECTS(!s.empty());
    GAM_EXPECTS(s.subset_of(ProcessSet::universe(process_count_)));
    for (ProcessId p : s) groups_of_[static_cast<size_t>(p)].push_back(g);
  }
}

ProcessSet GroupSystem::covered_processes() const {
  ProcessSet s;
  for (const auto& g : groups_) s |= g;
  return s;
}

bool GroupSystem::hamiltonian(const std::vector<GroupId>& members,
                              const std::vector<std::uint32_t>& adj) const {
  auto n = members.size();
  if (n < 3) return false;
  // Held-Karp reachability DP anchored at vertex 0. The DP table has 2^n
  // entries; past ~24 vertices it would silently try to allocate gigabytes
  // (and before the guard, n >= 32 truncated the mask to 32 bits — an
  // incorrect answer, not just a slow one).
  GAM_EXPECTS(n <= 24);
  std::uint32_t full = (1u << n) - 1;
  // dp[mask] = set of end vertices v such that a simple path 0 -> v visits
  // exactly `mask` (mask always contains bit 0).
  std::vector<std::uint32_t> dp(full + 1u, 0);
  dp[1] = 1u;  // the trivial path at vertex 0
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & 1u) == 0 || dp[mask] == 0) continue;
    std::uint32_t ends = dp[mask];
    while (ends != 0) {
      auto v = static_cast<unsigned>(std::countr_zero(ends));
      ends &= ends - 1;
      std::uint32_t nexts = adj[v] & ~mask;
      while (nexts != 0) {
        auto w = static_cast<unsigned>(std::countr_zero(nexts));
        nexts &= nexts - 1;
        dp[mask | (1u << w)] |= (1u << w);
      }
    }
  }
  // Hamiltonian cycle: some end v of a full path with an edge back to 0.
  return (dp[full] & adj[0]) != 0;
}

const std::vector<FamilyMask>& GroupSystem::cyclic_families() const {
  if (families_computed_) return cyclic_families_;
  int n = group_count();
  // A Hamiltonian intersection graph is connected, so every cyclic family
  // lives inside one connected component of the global intersection graph.
  // Enumerate subsets per component: the exponential bound applies to the
  // largest component, not to |G|.
  std::vector<int> component(static_cast<size_t>(n), -1);
  int components = 0;
  for (GroupId start = 0; start < n; ++start) {
    if (component[static_cast<size_t>(start)] != -1) continue;
    int c = components++;
    std::vector<GroupId> stack{start};
    component[static_cast<size_t>(start)] = c;
    while (!stack.empty()) {
      GroupId g = stack.back();
      stack.pop_back();
      for (GroupId h = 0; h < n; ++h)
        if (component[static_cast<size_t>(h)] == -1 &&
            !intersection(g, h).empty()) {
          component[static_cast<size_t>(h)] = c;
          stack.push_back(h);
        }
    }
  }
  std::vector<std::vector<GroupId>> members_of(static_cast<size_t>(components));
  for (GroupId g = 0; g < n; ++g)
    members_of[static_cast<size_t>(component[static_cast<size_t>(g)])]
        .push_back(g);
  for (const std::vector<GroupId>& members : members_of) {
    auto k = members.size();
    if (k < 3) continue;
    if (k <= static_cast<size_t>(kExhaustiveComponentCap)) {
      for (std::uint32_t sub = 1; sub < (std::uint32_t{1} << k); ++sub) {
        if (std::popcount(sub) < 3) continue;
        FamilyMask f;
        for (size_t i = 0; i < k; ++i)
          if ((sub >> i) & 1u) f.insert(members[i]);
        if (is_cyclic(f)) cyclic_families_.push_back(f);
      }
    } else {
      sparse_cyclic_families(members, cyclic_families_);
    }
  }
  // Ascending mask order, exactly what the former whole-set scan produced.
  std::sort(cyclic_families_.begin(), cyclic_families_.end());
  families_computed_ = true;
  return cyclic_families_;
}

void GroupSystem::sparse_cyclic_families(
    const std::vector<GroupId>& members,
    std::vector<FamilyMask>& out) const {
  std::fprintf(stderr,
               "GroupSystem: a connected component of the intersection graph "
               "has %zu groups (> %d); falling back to a bounded sparse "
               "enumeration of cyclic families up to size %d — the family "
               "set may be incomplete\n",
               members.size(), kExhaustiveComponentCap, kSparseFamilyCap);
  // Neighbor lists restricted to this component.
  std::vector<std::vector<GroupId>> nbrs(members.size());
  for (size_t i = 0; i < members.size(); ++i)
    for (size_t j = 0; j < members.size(); ++j)
      if (i != j && !intersection(members[i], members[j]).empty())
        nbrs[i].push_back(members[j]);
  std::vector<int> pos(static_cast<size_t>(group_count()), -1);
  for (size_t i = 0; i < members.size(); ++i)
    pos[static_cast<size_t>(members[i])] = static_cast<int>(i);

  // Grow connected induced subgraphs outward from each root, adding only
  // groups with a larger id than the root so every subgraph is reached from
  // its minimum member exactly once (deduped by `seen` across growth paths).
  // Each family popped off the work list counts against the examination
  // budget; everything reported is genuinely cyclic (is_cyclic is exact),
  // the bound only costs completeness.
  std::set<FamilyMask> seen;
  std::size_t examined = 0;
  for (GroupId root : members) {
    std::vector<FamilyMask> work{family_of({root})};
    while (!work.empty() && examined < kSparseBudget) {
      FamilyMask f = work.back();
      work.pop_back();
      ++examined;
      if (family_size(f) >= 3 && is_cyclic(f)) out.push_back(f);
      if (family_size(f) >= kSparseFamilyCap) continue;
      for (GroupId g : f) {
        for (GroupId h : nbrs[static_cast<size_t>(pos[static_cast<size_t>(g)])]) {
          if (h <= root || f.contains(h)) continue;
          FamilyMask next = f;
          next.insert(h);
          if (seen.insert(next).second) work.push_back(next);
        }
      }
    }
  }
  if (examined >= kSparseBudget)
    std::fprintf(stderr,
                 "GroupSystem: sparse cyclic-family enumeration hit its "
                 "budget of %zu examined families\n",
                 kSparseBudget);
}

bool GroupSystem::is_cyclic(FamilyMask f) const {
  if (family_size(f) < 3) return false;
  auto members = family_members(f);
  auto adj = adjacency(members, [](const ProcessSet&) { return true; });
  return hamiltonian(members, adj);
}

std::vector<FamilyMask> GroupSystem::families_of_group(GroupId g) const {
  GAM_EXPECTS(valid(g));
  std::vector<FamilyMask> out;
  for (FamilyMask f : cyclic_families())
    if (family_contains(f, g)) out.push_back(f);
  return out;
}

std::vector<FamilyMask> GroupSystem::families_of_process(ProcessId p) const {
  GAM_EXPECTS(p >= 0 && p < process_count_);
  std::vector<FamilyMask> out;
  for (FamilyMask f : cyclic_families()) {
    auto members = family_members(f);
    bool in_some_intersection = false;
    for (size_t i = 0; i < members.size() && !in_some_intersection; ++i)
      for (size_t j = i + 1; j < members.size(); ++j)
        if (intersection(members[i], members[j]).contains(p)) {
          in_some_intersection = true;
          break;
        }
    if (in_some_intersection) out.push_back(f);
  }
  return out;
}

std::vector<GroupId> GroupSystem::cyclic_neighbors(ProcessId p,
                                                   GroupId g) const {
  // H(p, g) = {h : ∃f' ∈ F(p). g,h ∈ f' ∧ g∩h ≠ ∅}; h = g qualifies whenever
  // some family of F(p) contains g (g∩g = g ≠ ∅). Lemma 30 proves H(·, g) is
  // the same at every member of a correct family, which makes it a sound
  // consensus-object key in Algorithm 1 (line 20).
  std::vector<GroupId> out;
  for (FamilyMask f : families_of_process(p)) {
    if (!family_contains(f, g)) continue;
    for (GroupId h : family_members(f)) {
      if (h != g && intersection(g, h).empty()) continue;
      if (std::find(out.begin(), out.end(), h) == out.end()) out.push_back(h);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ClosedPath> GroupSystem::hamiltonian_cycles(FamilyMask f) const {
  auto members = family_members(f);
  auto n = members.size();
  std::vector<ClosedPath> cycles;
  if (n < 3) return cycles;
  auto adj = adjacency(members, [](const ProcessSet&) { return true; });

  // Backtracking enumeration anchored at position 0; reflections are deduped
  // by requiring path[1] < path[n-1] (positions, both adjacent to 0 in the
  // cycle).
  std::vector<unsigned> path{0};
  std::vector<bool> used(n, false);
  used[0] = true;
  auto emit = [&] {
    ClosedPath cp;
    cp.reserve(n + 1);
    for (unsigned pos : path) cp.push_back(members[pos]);
    cp.push_back(members[0]);
    cycles.push_back(std::move(cp));
  };
  auto backtrack = [&](auto&& self) -> void {
    if (path.size() == n) {
      if ((adj[path.back()] & 1u) != 0 && path[1] < path[n - 1]) emit();
      return;
    }
    std::uint32_t nexts = adj[path.back()];
    while (nexts != 0) {
      auto w = static_cast<unsigned>(std::countr_zero(nexts));
      nexts &= nexts - 1;
      if (used[w]) continue;
      used[w] = true;
      path.push_back(w);
      self(self);
      path.pop_back();
      used[w] = false;
    }
  };
  backtrack(backtrack);
  return cycles;
}

std::vector<ClosedPath> GroupSystem::cpaths(FamilyMask f) const {
  std::vector<ClosedPath> out;
  for (const ClosedPath& cycle : hamiltonian_cycles(f)) {
    auto k = cycle.size() - 1;  // number of distinct vertices
    // Every rotation, in both directions.
    for (size_t start = 0; start < k; ++start) {
      ClosedPath fwd, bwd;
      fwd.reserve(k + 1);
      bwd.reserve(k + 1);
      for (size_t i = 0; i <= k; ++i)
        fwd.push_back(cycle[(start + i) % k]);
      for (size_t i = 0; i <= k; ++i)
        bwd.push_back(cycle[(start + k - i) % k]);
      out.push_back(std::move(fwd));
      out.push_back(std::move(bwd));
    }
  }
  return out;
}

namespace {

std::vector<std::pair<GroupId, GroupId>> edge_set(const ClosedPath& p) {
  std::vector<std::pair<GroupId, GroupId>> edges;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    GroupId a = p[i], b = p[i + 1];
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace

bool GroupSystem::paths_equivalent(const ClosedPath& a, const ClosedPath& b) {
  return edge_set(a) == edge_set(b);
}

int GroupSystem::path_direction(const ClosedPath& pi) const {
  GAM_EXPECTS(pi.size() >= 4 && pi.front() == pi.back());
  auto k = pi.size() - 1;
  // Locate the smallest group id on the cycle; the canonical orientation
  // leaves it toward its smaller neighbor.
  size_t at = 0;
  for (size_t i = 1; i < k; ++i)
    if (pi[i] < pi[at]) at = i;
  GroupId succ = pi[(at + 1) % k];
  GroupId pred = pi[(at + k - 1) % k];
  return succ < pred ? 1 : -1;
}

bool GroupSystem::family_faulty_at(FamilyMask f,
                                   const sim::FailurePattern& pattern,
                                   sim::Time t) const {
  auto members = family_members(f);
  for (size_t i = 0; i < members.size(); ++i)
    for (size_t j = i + 1; j < members.size(); ++j) {
      ProcessSet inter = intersection(members[i], members[j]);
      if (!inter.empty() && pattern.set_faulty_at(inter, t)) return true;
    }
  return false;
}

bool GroupSystem::family_faulty(FamilyMask f,
                                const sim::FailurePattern& pattern) const {
  auto members = family_members(f);
  for (size_t i = 0; i < members.size(); ++i)
    for (size_t j = i + 1; j < members.size(); ++j) {
      ProcessSet inter = intersection(members[i], members[j]);
      if (!inter.empty() && pattern.set_faulty(inter)) return true;
    }
  return false;
}

bool GroupSystem::family_faulty_hamiltonian_at(
    FamilyMask f, const sim::FailurePattern& pattern, sim::Time t) const {
  auto members = family_members(f);
  auto adj = adjacency(members, [&](const ProcessSet& inter) {
    return !pattern.set_faulty_at(inter, t);
  });
  return !hamiltonian(members, adj);
}

std::string GroupSystem::family_to_string(FamilyMask f) const {
  std::string out = "{";
  bool first = true;
  for (GroupId g : family_members(f)) {
    if (!first) out += ",";
    out += "g" + std::to_string(g);
    first = false;
  }
  return out + "}";
}

GroupSystem figure1_system() {
  return GroupSystem(5, {ProcessSet{0, 1}, ProcessSet{1, 2},
                         ProcessSet{0, 2, 3}, ProcessSet{0, 3, 4}});
}

}  // namespace gam::groups
