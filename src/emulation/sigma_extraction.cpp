#include "emulation/sigma_extraction.hpp"

#include <algorithm>

namespace gam::emulation {

SigmaExtraction::SigmaExtraction(const groups::GroupSystem& system,
                                 const sim::FailurePattern& pattern,
                                 std::vector<GroupId> targets,
                                 std::uint64_t seed)
    : system_(system), pattern_(pattern), targets_(std::move(targets)) {
  GAM_EXPECTS(!targets_.empty() && targets_.size() <= 2);
  scope_ = system_.group(targets_[0]);
  for (GroupId g : targets_) scope_ &= system_.group(g);
  GAM_EXPECTS(!scope_.empty());

  Rng rng(seed);
  amcast::MsgId next_id = 0;
  for (GroupId g : targets_) {
    const ProcessSet members = system_.group(g);
    // Every non-empty subset x of g hosts one instance A_{g,x}.
    std::vector<ProcessId> ids(members.begin(), members.end());
    auto n = ids.size();
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
      ProcessSet x;
      for (size_t i = 0; i < n; ++i)
        if ((mask >> i) & 1) x.insert(ids[i]);
      Instance::Options opt;
      opt.participants = x;
      opt.sigma_gated = true;
      opt.seed = rng.next() | 1;
      probes_.push_back(Probe{g, x, Instance(system_, pattern_, opt),
                              std::nullopt});
      // Line 5-7: each participant multicasts its identity to g.
      for (ProcessId p : x)
        probes_.back().instance.submit({next_id++, g, p, p});
    }
  }
}

void SigmaExtraction::run(Time horizon) {
  for (Time t = ran_to_; t < horizon; ++t) {
    for (Probe& pr : probes_) {
      pr.instance.tick(t);
      if (!pr.responsive) pr.responsive = pr.instance.first_delivery();
    }
  }
  ran_to_ = std::max(ran_to_, horizon);
}

Time SigmaExtraction::rank(ProcessId q, Time t) const {
  // One "alive" heartbeat per tick while q is alive: the count received by
  // time t is min(t, crash time). The rank of a correct process grows
  // forever; a faulty one's rank freezes — the defining property of [6]'s
  // ranking function.
  return std::min(t, pattern_.crash_time(q));
}

Time SigmaExtraction::rank_set(ProcessSet x, Time t) const {
  Time r = t;
  for (ProcessId q : x) r = std::min(r, rank(q, t));
  return r;
}

std::optional<ProcessSet> SigmaExtraction::query(ProcessId p, Time t) const {
  if (!scope_.contains(p)) return std::nullopt;  // lines 11-12
  ProcessSet out;
  for (GroupId g : targets_) {
    // Q_g at p: the responsive subsets containing p, plus g itself (line 3).
    ProcessSet best = system_.group(g);
    Time best_rank = rank_set(best, t);
    for (const Probe& pr : probes_) {
      if (pr.g != g || !pr.x.contains(p)) continue;
      // Line 8-9: x joins Q_g at p when A_{g,x} delivers *at p*.
      bool delivered_at_p = false;
      for (const auto& d : pr.instance.deliveries())
        if (d.p == p && d.t <= t) {
          delivered_at_p = true;
          break;
        }
      if (!delivered_at_p) continue;
      Time r = rank_set(pr.x, t);
      if (r > best_rank ||
          (r == best_rank && pr.x.size() < best.size())) {
        best = pr.x;
        best_rank = r;
      }
    }
    out |= best;  // line 14: qr_g = argmax rank
  }
  return out & scope_;  // line 15
}

}  // namespace gam::emulation
