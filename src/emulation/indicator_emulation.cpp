#include "emulation/indicator_emulation.hpp"

namespace gam::emulation {

IndicatorEmulation::IndicatorEmulation(const groups::GroupSystem& system,
                                       const sim::FailurePattern& pattern,
                                       GroupId g, GroupId h,
                                       std::uint64_t seed)
    : system_(system), g_(g), h_(h) {
  GAM_EXPECTS(!system.intersection(g, h).empty());
  scope_ = system.group(g) | system.group(h);
  Rng rng(seed);
  amcast::MsgId next_id = 0;
  // Line 2: B = A_g at p ∈ g∖h, A_h at p ∈ h∖g; the intersection itself runs
  // no instance (the indicator gives it no useful information anyway).
  for (auto [grp, other] : {std::pair{g, h}, std::pair{h, g}}) {
    ProcessSet side = system.group(grp) - system.group(other);
    if (side.empty()) continue;
    Instance::Options opt;
    opt.participants = side;
    opt.strict = true;  // A solves strict atomic multicast (§6.1 necessity)
    opt.seed = rng.next() | 1;
    sides_.emplace_back(system, pattern, opt);
    for (ProcessId p : side) sides_.back().submit({next_id++, grp, p, p});
  }
}

void IndicatorEmulation::run(Time horizon) {
  for (Time t = ran_to_; t < horizon; ++t) {
    for (Instance& side : sides_) {
      side.tick(t);
      auto d = side.first_delivery();
      // Line 7: the deliverer broadcasts "failed" to g∪h; one tick of
      // propagation delay.
      if (d && (!failed_time_ || *d + 1 < *failed_time_))
        failed_time_ = *d + 1;
    }
  }
  ran_to_ = std::max(ran_to_, horizon);
}

std::optional<bool> IndicatorEmulation::query(ProcessId p, Time t) const {
  GAM_METRICS_PROBE(if (queries_) queries_->add());
  if (!scope_.contains(p)) return std::nullopt;
  return failed_time_ && *failed_time_ <= t;
}

}  // namespace gam::emulation
