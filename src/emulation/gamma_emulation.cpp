#include "emulation/gamma_emulation.hpp"

#include <algorithm>

namespace gam::emulation {

namespace {

ProcessSet family_processes(const groups::GroupSystem& system,
                            groups::FamilyMask f) {
  ProcessSet s;
  for (groups::GroupId g : groups::family_members(f)) s |= system.group(g);
  return s;
}

}  // namespace

GammaEmulation::GammaEmulation(const groups::GroupSystem& system,
                               const sim::FailurePattern& pattern,
                               std::uint64_t seed, ProcessSet failure_prone)
    : system_(system), pattern_(pattern) {
  if (failure_prone.empty())
    failure_prone = ProcessSet::universe(system.process_count());
  Rng rng(seed);

  for (groups::FamilyMask f : system.cyclic_families()) {
    auto cycles = system.hamiltonian_cycles(f);
    for (size_t c = 0; c < cycles.size(); ++c) {
      const auto& cycle = cycles[c];
      size_t k = cycle.size() - 1;
      // Expand the cycle into its 2k rotations/directions.
      for (size_t start = 0; start < k; ++start) {
        for (int dir = 0; dir < 2; ++dir) {
          groups::ClosedPath pi;
          for (size_t i = 0; i <= k; ++i) {
            size_t idx = dir == 0 ? (start + i) % k : (start + k - i) % k;
            pi.push_back(cycle[idx]);
          }
          ProcessSet first_edge =
              system.intersection(pi[0], pi[1]);
          if (!first_edge.subset_of(failure_prone)) continue;
          PathChain pc;
          pc.family = f;
          pc.pi = pi;
          pc.cycle_class = static_cast<int>(c);
          pc.direction = system.path_direction(pi);
          pc.signal_time.assign(k, std::nullopt);
          Instance::Options opt;
          // Everyone in f participates except the last edge's intersection
          // π[0] ∩ π[|π|-2].
          opt.participants =
              family_processes(system, f) -
              system.intersection(pi[0], pi[k - 1]);
          opt.seed = rng.next() | 1;
          pc.instance = std::make_unique<Instance>(system, pattern, opt);
          // Line 4-5: each member of π[0]∩π[1] multicasts (p, 0) to π[0].
          for (ProcessId p : first_edge) {
            pc.instance->submit({pc.next_msg_id, pi[0], p, 0});
            pc.stage_of[pc.next_msg_id++] = 0;
          }
          paths_.push_back(std::move(pc));
        }
      }
    }
  }
}

void GammaEmulation::advance_chain(PathChain& pc, Time t) {
  size_t k = pc.pi.size() - 1;
  // signal(π, i) fires when a delivery of the stage-i message happens at a
  // member of π[i] ∩ π[i+1] (line 7-8); the signal broadcast and the next
  // multicast cost one tick.
  for (const auto& d : pc.instance->deliveries()) {
    auto it = pc.stage_of.find(d.m);
    GAM_INVARIANT(it != pc.stage_of.end());
    int i = it->second;
    if (static_cast<size_t>(i) >= k) continue;
    if (pc.signal_time[static_cast<size_t>(i)]) continue;
    ProcessSet edge = system_.intersection(pc.pi[static_cast<size_t>(i)],
                                           pc.pi[static_cast<size_t>(i) + 1]);
    if (!edge.contains(d.p)) continue;
    pc.signal_time[static_cast<size_t>(i)] = d.t + 1;
    // Line 10: the deliverer multicasts (p, i+1) to π[i+1], up to the
    // antepenultimate group (i < |π|-2).
    if (static_cast<size_t>(i) + 1 < k) {
      pc.instance->submit(
          {pc.next_msg_id, pc.pi[static_cast<size_t>(i) + 1], d.p, i + 1});
      pc.stage_of[pc.next_msg_id++] = i + 1;
    }
    (void)t;
  }
}

void GammaEmulation::run(Time horizon) {
  for (Time t = ran_to_; t < horizon; ++t) {
    for (PathChain& pc : paths_) {
      pc.instance->tick(t);
      advance_chain(pc, t);
    }
  }
  ran_to_ = std::max(ran_to_, horizon);
}

bool GammaEmulation::path_failed(const PathChain& pc, Time t) const {
  size_t k = pc.pi.size() - 1;
  // (a) the chain reached the antepenultimate edge: signal (π, |π|-3).
  if (k >= 2 && pc.signal_time[k - 2] && *pc.signal_time[k - 2] <= t)
    return true;
  // (b) an equivalent opposite-direction chain crossed the same edge from the
  // other side: signal (π, j-1) here and signal (π', 0) there with π'[0] =
  // π[j], π'[1] = π[j-1].
  for (size_t j = 1; j < k; ++j) {
    if (!pc.signal_time[j - 1] || *pc.signal_time[j - 1] > t) continue;
    for (const PathChain& other : paths_) {
      if (other.family != pc.family || other.cycle_class != pc.cycle_class)
        continue;
      if (other.direction == pc.direction) continue;
      if (other.pi[0] != pc.pi[j] || other.pi[1] != pc.pi[j - 1]) continue;
      if (other.signal_time[0] && *other.signal_time[0] <= t) return true;
    }
  }
  return false;
}

std::vector<groups::FamilyMask> GammaEmulation::query(ProcessId p,
                                                      Time t) const {
  GAM_METRICS_PROBE(if (queries_) queries_->add());
  std::vector<groups::FamilyMask> out;
  for (groups::FamilyMask f : system_.families_of_process(p)) {
    // f is output while some equivalence class of cpaths(f) has no failed
    // path (line 16). Classes with no instances (first edge not
    // failure-prone) count as unfailed.
    std::map<int, bool> class_failed;
    std::map<int, bool> class_seen;
    for (const PathChain& pc : paths_) {
      if (pc.family != f) continue;
      class_seen[pc.cycle_class] = true;
      if (path_failed(pc, t)) class_failed[pc.cycle_class] = true;
    }
    bool alive = false;
    if (class_seen.empty()) alive = true;
    for (auto& [c, seen] : class_seen)
      if (!class_failed.count(c)) alive = true;
    if (alive) out.push_back(f);
  }
  return out;
}

int GammaEmulation::signals_sent() const {
  int n = 0;
  for (const PathChain& pc : paths_)
    for (const auto& s : pc.signal_time)
      if (s) ++n;
  return n;
}

}  // namespace gam::emulation
