// A black-box atomic-multicast instance for the necessity constructions
// (paper §5): Algorithm 2 probes "A_{g,x}" instances in which only the
// processes of x participate, Algorithm 3 probes per-path instances, and
// Algorithm 4 probes instances of the *strict* algorithm. All of them need
// the same plumbing: a MuMulticast driven on an external global clock, with
// participation restricted to a set and (for Algorithm 2) progress gated on
// quorum availability among the participants.
#pragma once

#include <memory>
#include <optional>

#include "amcast/mu_multicast.hpp"
#include "amcast/types.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"

namespace gam::emulation {

using amcast::MulticastMessage;
using amcast::MuMulticast;
using amcast::RunRecord;
using groups::GroupId;
using sim::Time;

class Instance {
 public:
  struct Options {
    ProcessSet participants;
    bool sigma_gated = false;  // quorum-dependent progress (Algorithm 2)
    bool strict = false;       // A solves *strict* multicast (Algorithm 4)
    std::uint64_t seed = 1;
  };

  Instance(const groups::GroupSystem& system,
           const sim::FailurePattern& pattern, Options options)
      : options_(options) {
    MuMulticast::Options mo;
    mo.seed = options.seed;
    mo.fair_set = options.participants;
    mo.sigma_gated = options.sigma_gated;
    mo.strict = options.strict;
    mo.external_clock = true;
    mc_ = std::make_unique<MuMulticast>(system, pattern, mo);
  }

  void submit(MulticastMessage m) { mc_->submit(m); }

  // One scheduling round at global time t: every participant gets one attempt.
  void tick(Time t) {
    mc_->set_time(t);
    for (ProcessId p : options_.participants) mc_->step_process(p);
  }

  // Deliveries so far (times are global-clock times).
  const std::vector<amcast::Delivery>& deliveries() const {
    return mc_->partial_record().deliveries;
  }

  // The time of the first delivery of any message, if one happened.
  std::optional<Time> first_delivery() const {
    std::optional<Time> t;
    for (const auto& d : deliveries())
      if (!t || d.t < *t) t = d.t;
    return t;
  }

  MuMulticast& algorithm() { return *mc_; }

 private:
  Options options_;
  std::unique_ptr<MuMulticast> mc_;
};

}  // namespace gam::emulation
