// Algorithm 3 (paper §5.2): emulating the cyclicity detector γ from a
// black-box genuine atomic-multicast solution A.
//
// For every cyclic family f and closed path π ∈ cpaths(f) whose first edge
// intersection π[0]∩π[1] is failure-prone, an instance A_π runs in which all
// processes of f except the *last* edge intersection π[0]∩π[|π|-2]
// participate. The members of π[0]∩π[1] multicast stage-0 messages to π[0];
// whenever the stage-i message is delivered at a member of π[i]∩π[i+1], that
// member signals (π, i) to the family and multicasts the stage-(i+1) message
// to π[i+1]. A chain can only advance past its blocked first stage by
// exploiting an actually-dead intersection (A's own γ gate refuses to deliver
// while every family covering the skipped edge is alive), so:
//
//   - flag failed[π] when the chain reaches the antepenultimate edge
//     (signal (π, |π|-3)), or when the chain of an equivalent
//     opposite-direction path π' crosses the same edge from the other side;
//   - output f while some equivalence class of cpaths(f) has no failed path.
//
// NOTE. The chains certify the *Hamiltonian* faultiness reading — every cycle
// of f is broken — which is the paper's formal definition. The oracle γ used
// by Algorithm 1 (fd/detectors.hpp) implements the pairwise reading that
// Lemma 25 needs; the two coincide exactly when no family has a chord (true
// of triangles and of every failure the paper's Figure 1 discusses). See
// group_system.hpp and DESIGN.md.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "emulation/instance.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/metrics.hpp"

namespace gam::emulation {

class GammaEmulation {
 public:
  GammaEmulation(const groups::GroupSystem& system,
                 const sim::FailurePattern& pattern, std::uint64_t seed,
                 ProcessSet failure_prone = {});  // empty = everyone

  void run(Time horizon);

  // The emulated γ(p, t): cyclic families of F(p) still considered alive.
  std::vector<groups::FamilyMask> query(ProcessId p, Time t) const;

  // Introspection for tests/benches.
  int path_count() const { return static_cast<int>(paths_.size()); }
  int signals_sent() const;

  // Counts emulated-detector reads under "fd_query"{gamma_emulated}
  // (caller-owned registry; probes compile out under GAM_NO_METRICS).
  void set_metrics(sim::Metrics* m) {
#ifndef GAM_NO_METRICS
    queries_ = m ? &m->counter("fd_query", "gamma_emulated") : nullptr;
#else
    (void)m;
#endif
  }

 private:
  struct PathChain {
    groups::FamilyMask family;
    groups::ClosedPath pi;
    int cycle_class;  // equivalence class = Hamiltonian cycle index within f
    int direction;    // dir(π)
    std::unique_ptr<Instance> instance;
    int next_stage = 0;  // next message index to launch (stage 0 pre-launched)
    // signal_time[i]: when signal (π, i) was broadcast (edge i crossed).
    std::vector<std::optional<Time>> signal_time;
    amcast::MsgId next_msg_id = 0;
    // message id -> stage index, for matching deliveries.
    std::map<amcast::MsgId, int> stage_of;
  };

  bool path_failed(const PathChain& pc, Time t) const;
  void advance_chain(PathChain& pc, Time t);

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  std::vector<PathChain> paths_;
  Time ran_to_ = 0;
  sim::Counter* queries_ = nullptr;
};

}  // namespace gam::emulation
