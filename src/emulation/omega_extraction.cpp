#include "emulation/omega_extraction.hpp"

#include <algorithm>

namespace gam::emulation {

OmegaExtraction::OmegaExtraction(const groups::GroupSystem& system,
                                 const sim::FailurePattern& pattern,
                                 groups::GroupId g, groups::GroupId h,
                                 Options options)
    : system_(system),
      pattern_(pattern),
      g_(g),
      h_(h),
      inter_(system.intersection(g, h)),
      options_(options) {
  GAM_EXPECTS(!inter_.empty());
  members_.assign(inter_.begin(), inter_.end());
}

int OmegaExtraction::simulate_valency(
    int i, const sim::FailurePattern& known) const {
  // Configuration I_i: members_[j] multicasts to h for j < i, to g otherwise.
  // Simulated runs branch on the scheduler seed; the valency records which
  // group's message can be delivered first at a member of g∩h.
  int val = 0;
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(i) << 32));
  for (int s = 0; s < options_.schedules_per_config; ++s) {
    amcast::MuMulticast::Options mo;
    mo.seed = rng.next() | 1;
    mo.max_steps = options_.sim_steps;
    amcast::MuMulticast mc(system_, known, mo);
    for (size_t j = 0; j < members_.size(); ++j) {
      groups::GroupId dst = static_cast<int>(j) < i ? h_ : g_;
      mc.submit({static_cast<amcast::MsgId>(j), dst, members_[j],
                 members_[j]});
    }
    auto rec = mc.run();
    // First delivery at a member of g∩h decides the simulated run's tag.
    const amcast::Delivery* first = nullptr;
    for (const auto& d : rec.deliveries) {
      if (!inter_.contains(d.p)) continue;
      if (!first || d.t < first->t) first = &d;
    }
    if (!first) continue;
    groups::GroupId dst =
        static_cast<size_t>(first->m) < members_.size() &&
                static_cast<int>(first->m) < i
            ? h_
            : g_;
    val |= (dst == g_) ? 1 : 2;
    if (val == 3) break;
  }
  return val;
}

int OmegaExtraction::valency(int i, sim::Time t) const {
  // Realistic restriction: only crashes that happened by t are known to the
  // simulation (the sampled failure-detector DAG cannot guess the future).
  // Known-crashed processes are dead from the start of each simulated run —
  // the simulations explore continuations, not replays.
  sim::FailurePattern known(pattern_.process_count());
  for (ProcessId p = 0; p < pattern_.process_count(); ++p)
    if (pattern_.crashed(p, t)) known.crash_at(p, 0);
  auto key = std::make_pair(i, pattern_.failed_at(t));
  auto it = valency_cache_.find(key);
  if (it != valency_cache_.end()) return it->second;
  int v = simulate_valency(i, known);
  valency_cache_[key] = v;
  return v;
}

const OmegaExtraction::Analysis& OmegaExtraction::analyze(sim::Time t) const {
  ProcessSet key = pattern_.failed_at(t);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  Analysis a;
  int v = static_cast<int>(members_.size());
  // I_0 is g-valent by construction, I_v is h-valent. Scan for the first
  // flip; the adjacent configurations differ only in the message of
  // members_[i], which is therefore the deciding process (Propositions
  // 70-72). Skip members already known crashed: their message is never sent
  // in the simulations, so the flip they would explain cannot be trusted.
  std::vector<int> vals(static_cast<size_t>(v) + 1);
  for (int i = 0; i <= v; ++i) vals[static_cast<size_t>(i)] = valency(i, t);

  ProcessId pick = -1;
  for (int i = 0; i < v && pick < 0; ++i) {
    bool left_g = (vals[static_cast<size_t>(i)] & 1) != 0;
    bool right_h = (vals[static_cast<size_t>(i) + 1] & 2) != 0;
    if (!left_g || !right_h) continue;
    if (pattern_.crashed(members_[static_cast<size_t>(i)], t)) continue;
    pick = members_[static_cast<size_t>(i)];
  }
  if (pick < 0) {
    // Degenerate (every candidate crashed, or no flip visible): fall back to
    // the smallest not-yet-crashed member; Ω is vacuous if none remains.
    for (ProcessId p : members_)
      if (!pattern_.crashed(p, t)) {
        pick = p;
        break;
      }
    if (pick < 0) pick = members_.front();
  }
  a.leader = pick;
  return cache_.emplace(key, a).first->second;
}

std::optional<ProcessId> OmegaExtraction::query(ProcessId p,
                                                sim::Time t) const {
  if (!inter_.contains(p)) return std::nullopt;
  return analyze(t).leader;
}

}  // namespace gam::emulation
