// Proposition 51 (paper §6.1): ∧_{g,h∈G} 1^{g∩h} is stronger than γ.
//
// Construction: for each cyclic family f and each equivalence class of
// cpaths(f) — i.e. each Hamiltonian cycle of f — wait until some edge (g,h)
// on the cycle has its indicator 1^{g∩h} raised; once that holds for every
// class, stop outputting f. One tick models the intra-family broadcast of the
// indicator observation.
#pragma once

#include <map>
#include <vector>

#include "fd/detectors.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"

namespace gam::emulation {

class GammaFromIndicators {
 public:
  GammaFromIndicators(const groups::GroupSystem& system,
                      const sim::FailurePattern& pattern,
                      sim::Time indicator_lag = 0)
      : system_(system) {
    for (groups::GroupId g = 0; g < system.group_count(); ++g)
      for (groups::GroupId h = g + 1; h < system.group_count(); ++h) {
        ProcessSet inter = system.intersection(g, h);
        if (inter.empty()) continue;
        indicators_.emplace(
            std::make_pair(g, h),
            fd::IndicatorOracle(pattern, inter,
                                system.group(g) | system.group(h),
                                indicator_lag));
      }
  }

  std::vector<groups::FamilyMask> query(ProcessId p, sim::Time t) const {
    std::vector<groups::FamilyMask> out;
    for (groups::FamilyMask f : system_.families_of_process(p)) {
      bool all_classes_broken = true;
      for (const auto& cycle : system_.hamiltonian_cycles(f)) {
        bool some_edge_flagged = false;
        for (size_t i = 0; i + 1 < cycle.size(); ++i) {
          auto key = std::minmax(cycle[i], cycle[i + 1]);
          auto it = indicators_.find({key.first, key.second});
          if (it == indicators_.end()) continue;
          // Query at any scope member; one tick of propagation to the family.
          ProcessSet scope = system_.group(cycle[i]) |
                             system_.group(cycle[i + 1]);
          for (ProcessId q : scope) {
            auto v = it->second.query(q, t > 0 ? t - 1 : 0);
            if (v && *v) {
              some_edge_flagged = true;
              break;
            }
          }
          if (some_edge_flagged) break;
        }
        if (!some_edge_flagged) all_classes_broken = false;
      }
      if (!all_classes_broken) out.push_back(f);
    }
    return out;
  }

 private:
  const groups::GroupSystem& system_;
  std::map<std::pair<groups::GroupId, groups::GroupId>, fd::IndicatorOracle>
      indicators_;
};

}  // namespace gam::emulation
