// Algorithm 2 (paper §5.1): emulating Σ_{∩_{g∈G} g} from a black-box genuine
// atomic-multicast solution A, for G a set of at most two intersecting
// destination groups.
//
// For every g ∈ G and every non-empty x ⊆ g, an instance A_{g,x} runs in
// which exactly the processes of x participate, each multicasting its
// identity to g. An instance that delivers marks x "responsive" (variable
// Q_g). Queries return (∪_g qr_g) ∩ (∩_g g), where qr_g is the responsive
// subset with the highest rank — the rank of a process counts the "alive"
// heartbeats received from it, so the rank of a set keeps growing iff all its
// members are correct ([6]).
//
// The probed A is quorum-gated (Instance::Options::sigma_gated): a step for a
// message addressed to g needs Σ_g's current quorum inside the participant
// set, which is how an implementation whose objects require live quorums
// behaves. That dependency is exactly what the extraction turns back into a
// quorum failure detector.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "emulation/instance.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"

namespace gam::emulation {

class SigmaExtraction {
 public:
  // `targets` holds one or two intersecting group ids.
  SigmaExtraction(const groups::GroupSystem& system,
                  const sim::FailurePattern& pattern,
                  std::vector<GroupId> targets, std::uint64_t seed);

  // Drives every instance for `horizon` global ticks.
  void run(Time horizon);

  // H(p, t) of the emulated Σ_{∩g}; ⊥ outside the intersection.
  std::optional<ProcessSet> query(ProcessId p, Time t) const;

  ProcessSet intersection_scope() const { return scope_; }

  // rank(q, t): heartbeats received from q by time t (monotone while q lives).
  Time rank(ProcessId q, Time t) const;
  Time rank_set(ProcessSet x, Time t) const;

 private:
  struct Probe {
    GroupId g;
    ProcessSet x;
    Instance instance;
    std::optional<Time> responsive;  // first delivery time
  };

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  std::vector<GroupId> targets_;
  ProcessSet scope_;
  std::vector<Probe> probes_;
  Time ran_to_ = 0;
};

}  // namespace gam::emulation
