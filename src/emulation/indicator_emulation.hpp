// Algorithm 4 (paper §6.1): emulating the indicator 1^{g∩h} from a black-box
// solution A to *strict* atomic multicast.
//
// The processes of g∖h run an instance A_g (each multicasting its identity to
// g) in which the intersection g∩h never takes a step; symmetrically h∖g runs
// A_h. Strictness forces A to consult g∩h before delivering — our strict
// MuMulticast waits on (m, h)-stabilization tuples that only g∩h can write,
// unless its indicator reports the intersection dead — so a delivery in
// either instance certifies that g∩h has crashed (accuracy), and once g∩h has
// crashed both instances are indistinguishable from runs where it never
// existed, so they deliver (completeness). The deliverer then broadcasts
// "failed" to g∪h.
#pragma once

#include <optional>
#include <vector>

#include "emulation/instance.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/metrics.hpp"

namespace gam::emulation {

class IndicatorEmulation {
 public:
  IndicatorEmulation(const groups::GroupSystem& system,
                     const sim::FailurePattern& pattern, GroupId g, GroupId h,
                     std::uint64_t seed);

  void run(Time horizon);

  // H(p, t) of the emulated 1^{g∩h}; ⊥ outside g∪h.
  std::optional<bool> query(ProcessId p, Time t) const;

  // Counts emulated-detector reads under "fd_query"{indicator_emulated}.
  void set_metrics(sim::Metrics* m) {
#ifndef GAM_NO_METRICS
    queries_ = m ? &m->counter("fd_query", "indicator_emulated") : nullptr;
#else
    (void)m;
#endif
  }

 private:
  const groups::GroupSystem& system_;
  GroupId g_, h_;
  ProcessSet scope_;  // g ∪ h
  std::vector<Instance> sides_;
  std::optional<Time> failed_time_;
  Time ran_to_ = 0;
  sim::Counter* queries_ = nullptr;
};

}  // namespace gam::emulation
