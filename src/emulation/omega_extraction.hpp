// Algorithm 5 (paper §6.2 and Appendix B): extracting Ω_{g∩h} from a
// strongly genuine atomic-multicast solution A, following the CHT schema [8].
//
// The full construction samples the underlying failure detector into a DAG,
// simulates every induced schedule of A from the initial configurations
//
//   I_i : the first i members of g∩h multicast a message to h,
//         the remaining members multicast to g,   (i = 0 .. |g∩h|)
//
// tags the simulation forest with the group whose message is delivered first
// at a member of g∩h (g-valent / h-valent / bivalent), and extracts a correct
// member of g∩h from a critical index — via the adjacent-configuration
// argument when two neighbouring roots are univalent with opposite tags, or
// via a decision gadget (fork/hook) inside a bivalent tree.
//
// This implementation is the *bounded* analogue: the infinite simulation
// forest is replaced by a finite fan of simulated runs of A per
// configuration, branching on the simulator's scheduling seed (the role the
// failure-detector samples play in CHT), with the realistic restriction that
// a simulation at time t may only use the crashes that have already happened
// by t. Valency flips between adjacent configurations then locate the
// deciding member of g∩h exactly as Propositions 70-72 argue: once every
// faulty member of g∩h has crashed, the flip position stabilizes on a correct
// member, which every querier elects forever — the Ω_{g∩h} guarantee.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"

namespace gam::emulation {

class OmegaExtraction {
 public:
  struct Options {
    std::uint64_t seed = 1;
    int schedules_per_config = 4;   // simulated schedules per I_i
    std::uint64_t sim_steps = 4000; // step budget per simulated run
  };

  OmegaExtraction(const groups::GroupSystem& system,
                  const sim::FailurePattern& pattern, groups::GroupId g,
                  groups::GroupId h, Options options);
  OmegaExtraction(const groups::GroupSystem& system,
                  const sim::FailurePattern& pattern, groups::GroupId g,
                  groups::GroupId h)
      : OmegaExtraction(system, pattern, g, h, Options()) {}

  // The emulated Ω_{g∩h} history: a member of g∩h at members of g∩h,
  // ⊥ elsewhere. Stabilizes on a single correct member once the failure
  // pattern has quiesced.
  std::optional<ProcessId> query(ProcessId p, sim::Time t) const;

  // Introspection: the valency of configuration I_i given crashes up to t.
  // bit0 = some simulation delivered the g-message first, bit1 = h-message.
  int valency(int i, sim::Time t) const;

 private:
  struct Analysis {
    ProcessId leader = -1;
  };

  const Analysis& analyze(sim::Time t) const;
  int simulate_valency(int i, const sim::FailurePattern& known) const;

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  groups::GroupId g_, h_;
  ProcessSet inter_;
  std::vector<ProcessId> members_;  // g∩h in id order
  Options options_;

  mutable std::map<ProcessSet, Analysis> cache_;  // key: crashed set
  mutable std::map<std::pair<int, ProcessSet>, int> valency_cache_;
};

}  // namespace gam::emulation
