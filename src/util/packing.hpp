// Centralized (major, id) integer packing for ballots and timestamps.
//
// Three places used to hand-roll `major * 64 + id`: Paxos ballots in
// IndulgentConsensus and UniversalLog, and ABD write timestamps. The packed
// value's numeric order is lexicographic on (major, id), which is exactly the
// total order those protocols need — higher rounds beat lower rounds, and the
// proposer id breaks ties deterministically. The magic 64 silently aliased
// distinct proposers the moment a process id reached 64, and `int` arithmetic
// overflowed at large rounds; this helper owns both concerns.
//
// Two strides exist, chosen per scope:
//   - kLegacyStride = 64: the historical packing. Packed ballots travel in
//     Paxos wire payloads and therefore enter recorded trace hashes, so every
//     scope whose ids all fit below 64 keeps the legacy stride — seed traces
//     stay byte-identical.
//   - kWideStride = ProcessSet::kMaxProcesses: used as soon as a scope
//     contains an id >= 64, where the legacy stride would alias. The
//     static_assert below ties it to the process cap: widening ProcessSet
//     automatically widens the stride.
#pragma once

#include <cstdint>
#include <limits>

#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam {

class IdPacker {
 public:
  static constexpr std::int64_t kLegacyStride = 64;
  static constexpr std::int64_t kWideStride = ProcessSet::kMaxProcesses;
  static_assert(kWideStride >= ProcessSet::kMaxProcesses,
                "the wide stride must keep every process id alias-free");
  static_assert(kLegacyStride == 64,
                "frozen: legacy-stride ballots are embedded in recorded "
                "seed trace hashes");

  // Packer for ids in [0, id_limit).
  static constexpr IdPacker for_limit(int id_limit) {
    GAM_EXPECTS(id_limit > 0 && id_limit <= ProcessSet::kMaxProcesses);
    return IdPacker(id_limit <= kLegacyStride ? kLegacyStride : kWideStride);
  }

  // Packer for the ids of a non-empty scope (e.g. a quorum-system universe).
  static IdPacker for_set(const ProcessSet& scope) {
    GAM_EXPECTS(!scope.empty());
    return for_limit(scope.max() + 1);
  }

  constexpr std::int64_t pack(std::int64_t major, int id) const {
    GAM_EXPECTS(major >= 0);
    GAM_EXPECTS(id >= 0 && id < stride_);
    GAM_EXPECTS(major <=
                (std::numeric_limits<std::int64_t>::max() - id) / stride_);
    return major * stride_ + id;
  }

  constexpr std::int64_t major_of(std::int64_t packed) const {
    GAM_EXPECTS(packed >= 0);
    return packed / stride_;
  }

  constexpr int id_of(std::int64_t packed) const {
    GAM_EXPECTS(packed >= 0);
    return static_cast<int>(packed % stride_);
  }

  constexpr std::int64_t stride() const { return stride_; }

  constexpr bool operator==(const IdPacker&) const = default;

 private:
  constexpr explicit IdPacker(std::int64_t stride) : stride_(stride) {}

  std::int64_t stride_;
};

}  // namespace gam
