// A value-type set of process identifiers backed by a 64-bit mask.
//
// The paper's model (Appendix A) works over a finite process universe P; every
// structure in this library (destination groups, quorums, failure patterns,
// cyclic-family intersections) manipulates subsets of P. Sixty-four processes
// is far beyond anything the constructions need, and the flat representation
// keeps set algebra O(1) which matters for the simulation forests of
// Algorithm 5 and the family enumeration of Section 3.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>

#include "util/contracts.hpp"

namespace gam {

using ProcessId = int;

class ProcessSet {
 public:
  static constexpr int kMaxProcesses = 64;

  constexpr ProcessSet() = default;
  constexpr ProcessSet(std::initializer_list<ProcessId> ids) {
    for (ProcessId p : ids) {
      // Same guard as insert(): an out-of-range id would shift past the mask
      // (UB). In a constant-evaluated context a violation fails to compile.
      GAM_EXPECTS(p >= 0 && p < kMaxProcesses);
      insert_unchecked(p);
    }
  }

  static constexpr ProcessSet universe(int n) {
    ProcessSet s;
    s.bits_ = (n >= kMaxProcesses) ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << n) - 1);
    return s;
  }

  static constexpr ProcessSet single(ProcessId p) {
    ProcessSet s;
    s.insert_unchecked(p);
    return s;
  }

  constexpr bool contains(ProcessId p) const {
    return p >= 0 && p < kMaxProcesses && ((bits_ >> p) & 1u) != 0;
  }

  void insert(ProcessId p) {
    GAM_EXPECTS(p >= 0 && p < kMaxProcesses);
    insert_unchecked(p);
  }

  void erase(ProcessId p) {
    GAM_EXPECTS(p >= 0 && p < kMaxProcesses);
    bits_ &= ~(std::uint64_t{1} << p);
  }

  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }

  constexpr ProcessSet operator|(ProcessSet o) const { return from_bits(bits_ | o.bits_); }
  constexpr ProcessSet operator&(ProcessSet o) const { return from_bits(bits_ & o.bits_); }
  constexpr ProcessSet operator-(ProcessSet o) const { return from_bits(bits_ & ~o.bits_); }
  constexpr ProcessSet operator^(ProcessSet o) const { return from_bits(bits_ ^ o.bits_); }
  ProcessSet& operator|=(ProcessSet o) { bits_ |= o.bits_; return *this; }
  ProcessSet& operator&=(ProcessSet o) { bits_ &= o.bits_; return *this; }
  ProcessSet& operator-=(ProcessSet o) { bits_ &= ~o.bits_; return *this; }

  constexpr bool operator==(const ProcessSet&) const = default;

  constexpr bool intersects(ProcessSet o) const { return (bits_ & o.bits_) != 0; }
  constexpr bool subset_of(ProcessSet o) const { return (bits_ & ~o.bits_) == 0; }

  // Smallest member; the set must be non-empty.
  ProcessId min() const {
    GAM_EXPECTS(!empty());
    return std::countr_zero(bits_);
  }

  // Largest member; the set must be non-empty.
  ProcessId max() const {
    GAM_EXPECTS(!empty());
    return 63 - std::countl_zero(bits_);
  }

  constexpr std::uint64_t bits() const { return bits_; }
  static constexpr ProcessSet from_bits(std::uint64_t b) {
    ProcessSet s;
    s.bits_ = b;
    return s;
  }

  // Iteration over members in increasing id order.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = ProcessId;
    using difference_type = std::ptrdiff_t;
    using pointer = const ProcessId*;
    using reference = ProcessId;

    constexpr iterator() = default;
    constexpr explicit iterator(std::uint64_t rest) : rest_(rest) {}
    ProcessId operator*() const { return std::countr_zero(rest_); }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    constexpr bool operator==(const iterator&) const = default;

   private:
    std::uint64_t rest_ = 0;
  };
  iterator begin() const { return iterator{bits_}; }
  iterator end() const { return iterator{0}; }

  std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for (ProcessId p : *this) {
      if (!first) out += ",";
      out += "p" + std::to_string(p);
      first = false;
    }
    return out + "}";
  }

 private:
  constexpr void insert_unchecked(ProcessId p) {
    bits_ |= (std::uint64_t{1} << p);
  }

  std::uint64_t bits_ = 0;
};

}  // namespace gam
