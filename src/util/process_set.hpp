// A value-type set of small integer identifiers backed by a fixed number of
// 64-bit words, templated on the word count.
//
// The paper's model (Appendix A) works over a finite process universe P; every
// structure in this library (destination groups, quorums, failure patterns,
// cyclic-family intersections) manipulates subsets of P. The flat fixed-width
// representation keeps set algebra O(words) with no allocation, which matters
// for the simulation forests of Algorithm 5 and the family enumeration of
// Section 3. A single-word instantiation compiles down to exactly the old
// one-uint64 mask (every per-word loop below has a constant bound the
// compiler unrolls away); wider instantiations raise the id ceiling without
// changing any call site.
//
// Numeric order (operator<=>) compares words from the most significant down,
// so it coincides with the integer order of the old single-word mask — sorted
// containers and the ascending cyclic-family order keep their historical
// layouts.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>

#include "util/contracts.hpp"

namespace gam {

using ProcessId = int;

template <int Words>
class FixedBitset {
  static_assert(Words >= 1, "FixedBitset needs at least one word");

 public:
  static constexpr int kWords = Words;
  static constexpr int kCapacity = Words * 64;
  // Historical name: the whole library reads ProcessSet::kMaxProcesses.
  static constexpr int kMaxProcesses = kCapacity;

  constexpr FixedBitset() = default;
  constexpr FixedBitset(std::initializer_list<int> ids) {
    for (int p : ids) {
      // Same guard as insert(): an out-of-range id would index past the last
      // word (UB). In a constant-evaluated context a violation fails to
      // compile.
      GAM_EXPECTS(p >= 0 && p < kCapacity);
      insert_unchecked(p);
    }
  }

  // The ids [0, n). An n past the capacity used to saturate to all-ones
  // silently; it now fails the contract the same way insert() does.
  static constexpr FixedBitset universe(int n) {
    GAM_EXPECTS(n >= 0 && n <= kCapacity);
    FixedBitset s;
    for (int w = 0; w < Words; ++w) {
      int low = w * 64;
      if (n >= low + 64)
        s.words_[static_cast<size_t>(w)] = ~std::uint64_t{0};
      else if (n > low)
        s.words_[static_cast<size_t>(w)] =
            (std::uint64_t{1} << (n - low)) - 1;
    }
    return s;
  }

  static constexpr FixedBitset single(int p) {
    GAM_EXPECTS(p >= 0 && p < kCapacity);
    FixedBitset s;
    s.insert_unchecked(p);
    return s;
  }

  constexpr bool contains(int p) const {
    return p >= 0 && p < kCapacity &&
           ((words_[static_cast<size_t>(p >> 6)] >> (p & 63)) & 1u) != 0;
  }

  void insert(int p) {
    GAM_EXPECTS(p >= 0 && p < kCapacity);
    insert_unchecked(p);
  }

  void erase(int p) {
    GAM_EXPECTS(p >= 0 && p < kCapacity);
    words_[static_cast<size_t>(p >> 6)] &= ~(std::uint64_t{1} << (p & 63));
  }

  constexpr bool empty() const {
    std::uint64_t acc = 0;
    for (int w = 0; w < Words; ++w) acc |= words_[static_cast<size_t>(w)];
    return acc == 0;
  }

  constexpr int size() const {
    int n = 0;
    for (int w = 0; w < Words; ++w)
      n += std::popcount(words_[static_cast<size_t>(w)]);
    return n;
  }

  constexpr FixedBitset operator|(const FixedBitset& o) const {
    FixedBitset r;
    for (int w = 0; w < Words; ++w)
      r.words_[static_cast<size_t>(w)] =
          words_[static_cast<size_t>(w)] | o.words_[static_cast<size_t>(w)];
    return r;
  }
  constexpr FixedBitset operator&(const FixedBitset& o) const {
    FixedBitset r;
    for (int w = 0; w < Words; ++w)
      r.words_[static_cast<size_t>(w)] =
          words_[static_cast<size_t>(w)] & o.words_[static_cast<size_t>(w)];
    return r;
  }
  constexpr FixedBitset operator-(const FixedBitset& o) const {
    FixedBitset r;
    for (int w = 0; w < Words; ++w)
      r.words_[static_cast<size_t>(w)] =
          words_[static_cast<size_t>(w)] & ~o.words_[static_cast<size_t>(w)];
    return r;
  }
  constexpr FixedBitset operator^(const FixedBitset& o) const {
    FixedBitset r;
    for (int w = 0; w < Words; ++w)
      r.words_[static_cast<size_t>(w)] =
          words_[static_cast<size_t>(w)] ^ o.words_[static_cast<size_t>(w)];
    return r;
  }
  FixedBitset& operator|=(const FixedBitset& o) {
    for (int w = 0; w < Words; ++w)
      words_[static_cast<size_t>(w)] |= o.words_[static_cast<size_t>(w)];
    return *this;
  }
  FixedBitset& operator&=(const FixedBitset& o) {
    for (int w = 0; w < Words; ++w)
      words_[static_cast<size_t>(w)] &= o.words_[static_cast<size_t>(w)];
    return *this;
  }
  FixedBitset& operator-=(const FixedBitset& o) {
    for (int w = 0; w < Words; ++w)
      words_[static_cast<size_t>(w)] &= ~o.words_[static_cast<size_t>(w)];
    return *this;
  }

  constexpr bool operator==(const FixedBitset&) const = default;

  // Numeric order of the value the words spell out (most significant word
  // first) — identical to integer order on the old single-word mask.
  constexpr std::strong_ordering operator<=>(const FixedBitset& o) const {
    for (int w = Words - 1; w >= 0; --w)
      if (words_[static_cast<size_t>(w)] != o.words_[static_cast<size_t>(w)])
        return words_[static_cast<size_t>(w)] <=>
               o.words_[static_cast<size_t>(w)];
    return std::strong_ordering::equal;
  }

  constexpr bool intersects(const FixedBitset& o) const {
    std::uint64_t acc = 0;
    for (int w = 0; w < Words; ++w)
      acc |= words_[static_cast<size_t>(w)] & o.words_[static_cast<size_t>(w)];
    return acc != 0;
  }
  constexpr bool subset_of(const FixedBitset& o) const {
    std::uint64_t acc = 0;
    for (int w = 0; w < Words; ++w)
      acc |= words_[static_cast<size_t>(w)] &
             ~o.words_[static_cast<size_t>(w)];
    return acc == 0;
  }

  // Smallest member; the set must be non-empty.
  int min() const {
    GAM_EXPECTS(!empty());
    for (int w = 0; w < Words; ++w)
      if (words_[static_cast<size_t>(w)] != 0)
        return w * 64 + std::countr_zero(words_[static_cast<size_t>(w)]);
    return -1;  // unreachable: the contract above rejects empty sets
  }

  // Alias for min(): the first member in iteration order.
  int first() const { return min(); }

  // Largest member; the set must be non-empty.
  int max() const {
    GAM_EXPECTS(!empty());
    for (int w = Words - 1; w >= 0; --w)
      if (words_[static_cast<size_t>(w)] != 0)
        return w * 64 + 63 - std::countl_zero(words_[static_cast<size_t>(w)]);
    return -1;  // unreachable: the contract above rejects empty sets
  }

  // The w-th 64-bit word (ids [64w, 64w+64)). Exposed for hashing and
  // serialization; everything else should go through the set algebra.
  constexpr std::uint64_t word(int w) const {
    GAM_EXPECTS(w >= 0 && w < Words);
    return words_[static_cast<size_t>(w)];
  }

  // Builds a set from a mask over the first 64 ids (convenience for tests
  // and generators that enumerate small universes).
  static constexpr FixedBitset from_bits(std::uint64_t low) {
    FixedBitset s;
    s.words_[0] = low;
    return s;
  }

  // Iteration over members in increasing id order.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = int;
    using difference_type = std::ptrdiff_t;
    using pointer = const int*;
    using reference = int;

    constexpr iterator() = default;
    constexpr explicit iterator(const std::array<std::uint64_t, Words>& words)
        : words_(words), word_(0), rest_(words[0]) {
      skip_empty_words();
    }
    int operator*() const { return word_ * 64 + std::countr_zero(rest_); }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      skip_empty_words();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    constexpr bool operator==(const iterator& o) const {
      return word_ == o.word_ && rest_ == o.rest_;
    }

   private:
    constexpr void skip_empty_words() {
      while (rest_ == 0 && word_ + 1 < Words)
        rest_ = words_[static_cast<size_t>(++word_)];
      if (rest_ == 0) word_ = Words;
    }

    std::array<std::uint64_t, Words> words_{};
    int word_ = Words;  // the default iterator is the end sentinel
    std::uint64_t rest_ = 0;
  };
  iterator begin() const { return iterator{words_}; }
  iterator end() const { return iterator{}; }

  std::string to_string(const char* prefix = "p") const {
    std::string out = "{";
    bool first_member = true;
    for (int p : *this) {
      if (!first_member) out += ",";
      out += prefix + std::to_string(p);
      first_member = false;
    }
    return out + "}";
  }

 private:
  constexpr void insert_unchecked(int p) {
    words_[static_cast<size_t>(p >> 6)] |= (std::uint64_t{1} << (p & 63));
  }

  std::array<std::uint64_t, Words> words_{};
};

// The process universe: 4 words = 256 process ids. Raising this is a
// one-line change; IdPacker's wide stride tracks it via a static_assert.
using ProcessSet = FixedBitset<4>;

}  // namespace gam
