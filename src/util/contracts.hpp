// Lightweight precondition / postcondition / invariant checks, in the spirit
// of the GSL's Expects/Ensures. Violations abort with a diagnostic: in a
// simulator used to validate distributed-computing theorems, a silently
// corrupted run is worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gam {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace gam

#define GAM_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                       \
          : ::gam::contract_failure("Precondition", #cond, __FILE__, __LINE__))

#define GAM_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                        \
          : ::gam::contract_failure("Postcondition", #cond, __FILE__, __LINE__))

#define GAM_INVARIANT(cond)                                          \
  ((cond) ? static_cast<void>(0)                                     \
          : ::gam::contract_failure("Invariant", #cond, __FILE__, __LINE__))
