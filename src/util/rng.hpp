// Deterministic pseudo-random number generation for the simulator.
//
// All nondeterminism in a run (scheduling, message pick, crash times) flows
// from a single seed so that every execution — including the adversarial ones
// the proofs quantify over — is exactly reproducible from its seed.
#pragma once

#include <cstdint>

#include "util/contracts.hpp"

namespace gam {

// splitmix64: tiny, fast, and passes BigCrush; ideal for seeding and for the
// simulator's scheduling choices where statistical perfection is not needed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) {
    GAM_EXPECTS(n > 0);
    // Rejection-free scaling is fine here: bias is < 2^-53 for simulator-size n.
    return next() % n;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    GAM_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool chance(double p) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  // Derive an independent stream (for per-process or per-module randomness).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace gam
