// Failure-detector oracles (paper §3 and Appendix A).
//
// A failure detector D maps a failure pattern F to a set of histories; a
// history assigns to each (process, time) the value returned by a query. The
// oracles below compute, from the simulator's failure pattern, one valid
// history per class:
//
//   Σ_P  (quorum):    Intersection — any two returned quorums intersect;
//                     Liveness — eventually only correct processes returned.
//   Ω_P  (leader):    Leadership — eventually a single correct leader forever.
//   γ    (cyclicity): Accuracy — an omitted family of F(p) is faulty now;
//                     Completeness — a faulty family is eventually omitted
//                     forever at correct members.
//   1^P  (indicator): Accuracy — true only if P is crashed now;
//                     Completeness — eventually true forever once P crashed.
//   P    (perfect):   strong accuracy + completeness (for the [36] baseline).
//
// Each class also ships a "laggy" mode: outputs stabilize only after a
// configurable delay, which is exactly the slack the classes permit. Tests
// drive Algorithm 1 under both modes to check it relies on nothing stronger
// than the advertised axioms.
#pragma once

#include <optional>
#include <vector>

#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"

namespace gam::fd {

using sim::Time;

// ---- Σ_P -------------------------------------------------------------------

class SigmaOracle {
 public:
  // The detector restricted to `scope` (Σ_P with P = scope); processes outside
  // the scope read ⊥. `lag` delays convergence onto the correct set.
  SigmaOracle(const sim::FailurePattern& pattern, ProcessSet scope,
              Time lag = 0);

  // H(p, t); nullopt encodes ⊥ (p outside the scope).
  std::optional<ProcessSet> query(ProcessId p, Time t) const;

  // The times at which this history's output can change (sorted, deduped):
  // the lagged crash instants of the faulty scope members. Between two
  // consecutive transition times every query is constant — the incremental
  // guarded-action engine invalidates its caches only at these instants.
  std::vector<Time> transition_times() const;

  ProcessSet scope() const { return scope_; }

 private:
  ProcessSet quorum_at(Time t) const;

  const sim::FailurePattern* pattern_;
  ProcessSet scope_;
  Time lag_;
  // The member of the scope that crashes last (quorum of last resort: keeps
  // Intersection valid even when the whole scope is faulty).
  ProcessId last_survivor_;
};

// ---- Ω_P -------------------------------------------------------------------

class OmegaOracle {
 public:
  OmegaOracle(const sim::FailurePattern& pattern, ProcessSet scope,
              Time lag = 0);

  std::optional<ProcessId> query(ProcessId p, Time t) const;

  // Output-change instants (see SigmaOracle::transition_times).
  std::vector<Time> transition_times() const;

  ProcessSet scope() const { return scope_; }

 private:
  const sim::FailurePattern* pattern_;
  ProcessSet scope_;
  Time lag_;
};

// ---- γ ---------------------------------------------------------------------

class GammaOracle {
 public:
  // `lag` delays the removal of faulty families (Completeness is eventual);
  // Accuracy — never omitting a family that is still correct — holds for any
  // lag by construction.
  GammaOracle(const groups::GroupSystem& system,
              const sim::FailurePattern& pattern, Time lag = 0);

  // γ(p, t): the cyclic families of F(p) this history still reports at t.
  std::vector<groups::FamilyMask> query(ProcessId p, Time t) const;

  // γ(g) at process p and time t (paper §3): the groups h with g∩h ≠ ∅ such
  // that g and h belong to a family output by γ(p, t).
  std::vector<groups::GroupId> gamma_of_group(ProcessId p, groups::GroupId g,
                                              Time t) const;

  // The lagged family-faulty instants: outside these, γ(p, t) — and hence
  // γ(g) — is constant in t at every process.
  std::vector<Time> transition_times() const;

 private:
  const groups::GroupSystem* system_;
  const sim::FailurePattern* pattern_;
  Time lag_;
  // Cache: per process, F(p); per family, the time it becomes faulty (kNever
  // if it never does).
  std::vector<std::vector<groups::FamilyMask>> families_of_;
  std::vector<std::pair<groups::FamilyMask, Time>> faulty_time_;

  Time family_faulty_time(groups::FamilyMask f) const;
};

// ---- 1^P -------------------------------------------------------------------

class IndicatorOracle {
 public:
  // 1^{watched} restricted to `scope` (the paper's 1^{g∩h} has
  // watched = g∩h, scope = g∪h).
  IndicatorOracle(const sim::FailurePattern& pattern, ProcessSet watched,
                  ProcessSet scope, Time lag = 0);

  std::optional<bool> query(ProcessId p, Time t) const;

  // The single lagged flip instant (empty when `watched` never fully crashes).
  std::vector<Time> transition_times() const;

 private:
  const sim::FailurePattern* pattern_;
  ProcessSet watched_;
  ProcessSet scope_;
  Time lag_;
};

// ---- P (perfect) -------------------------------------------------------------

class PerfectOracle {
 public:
  explicit PerfectOracle(const sim::FailurePattern& pattern)
      : pattern_(&pattern) {}

  // The exact crashed set at t: strongly accurate and complete.
  ProcessSet query(ProcessId, Time t) const { return pattern_->failed_at(t); }

 private:
  const sim::FailurePattern* pattern_;
};

// ---- μ ---------------------------------------------------------------------

// The candidate detector μ_G = (∧_{g,h∈G} Σ_{g∩h}) ∧ (∧_{g∈G} Ω_g) ∧ γ,
// bundled per group system. Algorithm 1 consumes exactly this interface.
class MuOracle {
 public:
  MuOracle(const groups::GroupSystem& system,
           const sim::FailurePattern& pattern, Time lag = 0);

  // Σ_{g∩h}; g == h gives Σ_g.
  const SigmaOracle& sigma(groups::GroupId g, groups::GroupId h) const;
  // Ω_g.
  const OmegaOracle& omega(groups::GroupId g) const;
  const GammaOracle& gamma() const { return gamma_; }

  // The union of every component's transition times (sorted, deduped): a
  // consumer whose clock has not crossed one of these since it last evaluated
  // a μ query will read exactly the same answers.
  std::vector<Time> transition_times() const;

  const groups::GroupSystem& system() const { return *system_; }

 private:
  const groups::GroupSystem* system_;
  std::vector<SigmaOracle> sigmas_;   // indexed g * n + h
  std::vector<OmegaOracle> omegas_;   // indexed g
  GammaOracle gamma_;
};

}  // namespace gam::fd
