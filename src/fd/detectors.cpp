#include "fd/detectors.hpp"

#include <algorithm>

namespace gam::fd {

namespace {

// The "view time" of a laggy detector: what it believes at t is the truth at
// t - lag (clamped at 0). Lagging a crash-monotone signal preserves every
// "eventually" clause of the classes while exercising the transient slack.
Time lagged(Time t, Time lag) { return t > lag ? t - lag : 0; }

void sort_unique(std::vector<Time>& ts) {
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
}

// The lagged crash instants of the faulty members of `scope`: the only times
// a lag-delayed view of "who in the scope is alive" can change.
std::vector<Time> scope_transitions(const sim::FailurePattern& pattern,
                                    ProcessSet scope, Time lag) {
  std::vector<Time> ts;
  for (ProcessId p : scope) {
    Time ct = pattern.crash_time(p);
    if (ct != sim::kNever) ts.push_back(ct + lag);
  }
  sort_unique(ts);
  return ts;
}

}  // namespace

// ---- Σ_P ---------------------------------------------------------------------

SigmaOracle::SigmaOracle(const sim::FailurePattern& pattern, ProcessSet scope,
                         Time lag)
    : pattern_(&pattern), scope_(scope), lag_(lag), last_survivor_(-1) {
  // The quorum of last resort: the scope member that crashes last. Once the
  // whole scope is dead, returning {last_survivor_} keeps Intersection valid
  // because that process belongs to every earlier alive-set. Correct members
  // never crash, so any of them qualifies.
  Time best = 0;
  for (ProcessId p : scope_) {
    Time ct = pattern_->crash_time(p);
    if (last_survivor_ == -1 || ct > best ||
        (ct == best && p < last_survivor_)) {
      best = ct;
      last_survivor_ = p;
    }
    if (ct == sim::kNever) {  // a correct member: stop looking
      last_survivor_ = p;
      break;
    }
  }
}

ProcessSet SigmaOracle::quorum_at(Time t) const {
  Time view = lagged(t, lag_);
  ProcessSet alive;
  for (ProcessId q : scope_)
    if (pattern_->alive(q, view)) alive.insert(q);
  if (!alive.empty()) return alive;
  return ProcessSet::single(last_survivor_);
}

std::optional<ProcessSet> SigmaOracle::query(ProcessId p, Time t) const {
  if (!scope_.contains(p)) return std::nullopt;
  return quorum_at(t);
}

std::vector<Time> SigmaOracle::transition_times() const {
  return scope_transitions(*pattern_, scope_, lag_);
}

// ---- Ω_P ---------------------------------------------------------------------

OmegaOracle::OmegaOracle(const sim::FailurePattern& pattern, ProcessSet scope,
                         Time lag)
    : pattern_(&pattern), scope_(scope), lag_(lag) {}

std::optional<ProcessId> OmegaOracle::query(ProcessId p, Time t) const {
  if (!scope_.contains(p)) return std::nullopt;
  Time view = lagged(t, lag_);
  // The smallest scope member still alive at the view time. Faulty processes
  // all crash eventually, so this converges to the smallest correct member —
  // exactly one leader, forever, as Leadership demands.
  for (ProcessId q : scope_)
    if (pattern_->alive(q, view)) return q;
  return scope_.min();  // whole scope dead: Leadership is vacuous
}

std::vector<Time> OmegaOracle::transition_times() const {
  return scope_transitions(*pattern_, scope_, lag_);
}

// ---- γ -----------------------------------------------------------------------

GammaOracle::GammaOracle(const groups::GroupSystem& system,
                         const sim::FailurePattern& pattern, Time lag)
    : system_(&system), pattern_(&pattern), lag_(lag) {
  families_of_.resize(static_cast<size_t>(system.process_count()));
  for (ProcessId p = 0; p < system.process_count(); ++p)
    families_of_[static_cast<size_t>(p)] = system.families_of_process(p);
  for (groups::FamilyMask f : system.cyclic_families())
    faulty_time_.emplace_back(f, family_faulty_time(f));
}

Time GammaOracle::family_faulty_time(groups::FamilyMask f) const {
  if (!system_->family_faulty(f, *pattern_)) return sim::kNever;
  // Family faultiness is crash-monotone; the transition can only happen when
  // some edge intersection finishes crashing. Probe those instants in order.
  auto members = groups::family_members(f);
  std::vector<Time> candidates;
  for (size_t i = 0; i < members.size(); ++i)
    for (size_t j = i + 1; j < members.size(); ++j) {
      ProcessSet inter = system_->intersection(members[i], members[j]);
      if (inter.empty()) continue;
      Time ct = pattern_->set_crash_time(inter);
      if (ct != sim::kNever) candidates.push_back(ct);
    }
  std::sort(candidates.begin(), candidates.end());
  for (Time t : candidates)
    if (system_->family_faulty_at(f, *pattern_, t)) return t;
  GAM_INVARIANT(false);  // family_faulty(f) implied a finite transition time
  return sim::kNever;
}

std::vector<groups::FamilyMask> GammaOracle::query(ProcessId p, Time t) const {
  std::vector<groups::FamilyMask> out;
  for (groups::FamilyMask f : families_of_[static_cast<size_t>(p)]) {
    auto it = std::find_if(faulty_time_.begin(), faulty_time_.end(),
                           [f](const auto& e) { return e.first == f; });
    GAM_INVARIANT(it != faulty_time_.end());
    Time ft = it->second;
    // Keep the family until lag steps after it became faulty. Accuracy holds
    // (we only ever omit after ft), Completeness holds (omitted forever from
    // ft + lag on).
    bool omitted = ft != sim::kNever && t >= ft + lag_;
    if (!omitted) out.push_back(f);
  }
  return out;
}

std::vector<Time> GammaOracle::transition_times() const {
  std::vector<Time> ts;
  for (const auto& [f, ft] : faulty_time_)
    if (ft != sim::kNever) ts.push_back(ft + lag_);
  sort_unique(ts);
  return ts;
}

std::vector<groups::GroupId> GammaOracle::gamma_of_group(ProcessId p,
                                                         groups::GroupId g,
                                                         Time t) const {
  // h ranges over the groups with g∩h ≠ ∅ such that g and h belong to a
  // family still output by γ; h = g qualifies whenever such a family exists
  // (g∩g = g ≠ ∅), which the stable/commit preconditions of Algorithm 1 rely
  // on (Lemma 22 applies it with dst(m') = g).
  std::vector<groups::GroupId> out;
  for (groups::FamilyMask f : query(p, t)) {
    if (!groups::family_contains(f, g)) continue;
    for (groups::GroupId h : groups::family_members(f)) {
      if (h != g && system_->intersection(g, h).empty()) continue;
      if (std::find(out.begin(), out.end(), h) == out.end()) out.push_back(h);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- 1^P ---------------------------------------------------------------------

IndicatorOracle::IndicatorOracle(const sim::FailurePattern& pattern,
                                 ProcessSet watched, ProcessSet scope,
                                 Time lag)
    : pattern_(&pattern), watched_(watched), scope_(scope), lag_(lag) {}

std::optional<bool> IndicatorOracle::query(ProcessId p, Time t) const {
  if (!scope_.contains(p)) return std::nullopt;
  Time ct = pattern_->set_crash_time(watched_);
  if (ct == sim::kNever) return false;
  return t >= ct + lag_;
}

std::vector<Time> IndicatorOracle::transition_times() const {
  Time ct = pattern_->set_crash_time(watched_);
  if (ct == sim::kNever) return {};
  return {ct + lag_};
}

// ---- μ -----------------------------------------------------------------------

MuOracle::MuOracle(const groups::GroupSystem& system,
                   const sim::FailurePattern& pattern, Time lag)
    : system_(&system), gamma_(system, pattern, lag) {
  int n = system.group_count();
  sigmas_.reserve(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (groups::GroupId g = 0; g < n; ++g)
    for (groups::GroupId h = 0; h < n; ++h)
      sigmas_.emplace_back(pattern, system.intersection(g, h), lag);
  omegas_.reserve(static_cast<size_t>(n));
  for (groups::GroupId g = 0; g < n; ++g)
    omegas_.emplace_back(pattern, system.group(g), lag);
}

const SigmaOracle& MuOracle::sigma(groups::GroupId g, groups::GroupId h) const {
  int n = system_->group_count();
  GAM_EXPECTS(g >= 0 && g < n && h >= 0 && h < n);
  return sigmas_[static_cast<size_t>(g) * static_cast<size_t>(n) +
                 static_cast<size_t>(h)];
}

const OmegaOracle& MuOracle::omega(groups::GroupId g) const {
  GAM_EXPECTS(g >= 0 && g < system_->group_count());
  return omegas_[static_cast<size_t>(g)];
}

std::vector<Time> MuOracle::transition_times() const {
  std::vector<Time> ts;
  auto absorb = [&ts](std::vector<Time> more) {
    ts.insert(ts.end(), more.begin(), more.end());
  };
  for (const SigmaOracle& s : sigmas_) absorb(s.transition_times());
  for (const OmegaOracle& o : omegas_) absorb(o.transition_times());
  absorb(gamma_.transition_times());
  sort_unique(ts);
  return ts;
}

}  // namespace gam::fd
