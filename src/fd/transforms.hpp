// Failure-detector transformations: the reductions that order the classes of
// Table 1 (D' ≤ D when D' is constructible from D).
//
//   P ⇒ Σ_P        a perfect detector yields quorums (the alive set),
//   P ⇒ Ω_P        ... and an eventual leader (min alive),
//   P ⇒ 1^W        ... and every indicator,
//   P ⇒ γ          ... and the cyclicity detector (via Proposition 51's
//                  construction, emulation/gamma_from_indicators.hpp),
//   ◇P             the eventually-perfect detector, for completeness of the
//                  classical hierarchy: suspicions may be wrong for a finite
//                  prefix, then match the crash set exactly.
//
// Each transformation is a small adapter over a P-history; the tests check
// that the produced histories satisfy the target class's axioms, which is
// the operational content of "P is stronger than everything in the paper's
// candidate" (§1, [36] uses exactly this).
#pragma once

#include <algorithm>
#include <optional>

#include "fd/detectors.hpp"
#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace gam::fd {

// ◇P: before `stabilization`, suspicions are arbitrary (here: seeded noise);
// afterwards they equal the crash set. Strong completeness + eventual strong
// accuracy.
class EventuallyPerfectOracle {
 public:
  EventuallyPerfectOracle(const sim::FailurePattern& pattern,
                          Time stabilization, std::uint64_t seed)
      : pattern_(&pattern), stabilization_(stabilization), seed_(seed) {}

  // The suspected set at (p, t).
  ProcessSet query(ProcessId p, Time t) const {
    ProcessSet truth = pattern_->failed_at(t);
    if (t >= stabilization_) return truth;
    // Transient noise: deterministically suspect some alive processes and
    // miss some crashed ones — everything ◇P permits before stabilization.
    Rng rng(seed_ ^ (static_cast<std::uint64_t>(p) << 40) ^ t);
    ProcessSet out = truth;
    for (ProcessId q = 0; q < pattern_->process_count(); ++q) {
      if (rng.chance(0.2)) out.insert(q);
      if (rng.chance(0.2)) out.erase(q);
    }
    return out;
  }

 private:
  const sim::FailurePattern* pattern_;
  Time stabilization_;
  std::uint64_t seed_;
};

// Σ_P from P: the quorum at t is the scope's not-yet-suspected set; once the
// whole scope is suspected, fall back to the last unsuspected member.
// Intersection holds because P's accuracy makes suspected = crashed, so the
// produced quorums are exactly the oracle Σ's alive-sets.
class SigmaFromPerfect {
 public:
  SigmaFromPerfect(const PerfectOracle& perfect, ProcessSet scope)
      : perfect_(&perfect), scope_(scope) {}

  std::optional<ProcessSet> query(ProcessId p, Time t) const {
    if (!scope_.contains(p)) return std::nullopt;
    ProcessSet alive = scope_ - perfect_->query(p, t);
    if (!alive.empty()) {
      last_seen_ = alive.min();
      return alive;
    }
    return ProcessSet::single(last_seen_);
  }

 private:
  const PerfectOracle* perfect_;
  ProcessSet scope_;
  mutable ProcessId last_seen_ = -1;
};

// Ω_P from P: elect the smallest unsuspected member of the scope.
class OmegaFromPerfect {
 public:
  OmegaFromPerfect(const PerfectOracle& perfect, ProcessSet scope)
      : perfect_(&perfect), scope_(scope) {}

  std::optional<ProcessId> query(ProcessId p, Time t) const {
    if (!scope_.contains(p)) return std::nullopt;
    ProcessSet alive = scope_ - perfect_->query(p, t);
    return alive.empty() ? scope_.min() : alive.min();
  }

 private:
  const PerfectOracle* perfect_;
  ProcessSet scope_;
};

// 1^W from P: true exactly when the whole watched set is suspected. P's
// strong accuracy makes this accurate; completeness gives completeness.
class IndicatorFromPerfect {
 public:
  IndicatorFromPerfect(const PerfectOracle& perfect, ProcessSet watched,
                       ProcessSet scope)
      : perfect_(&perfect), watched_(watched), scope_(scope) {}

  std::optional<bool> query(ProcessId p, Time t) const {
    if (!scope_.contains(p)) return std::nullopt;
    return watched_.subset_of(perfect_->query(p, t));
  }

 private:
  const PerfectOracle* perfect_;
  ProcessSet watched_;
  ProcessSet scope_;
};

// γ from P: declare a family faulty as soon as P shows one of its group
// intersections fully crashed (the operational predicate of Lemma 25).
class GammaFromPerfect {
 public:
  GammaFromPerfect(const groups::GroupSystem& system,
                   const PerfectOracle& perfect)
      : system_(&system), perfect_(&perfect) {}

  std::vector<groups::FamilyMask> query(ProcessId p, Time t) const {
    ProcessSet crashed = perfect_->query(p, t);
    std::vector<groups::FamilyMask> out;
    for (groups::FamilyMask f : system_->families_of_process(p)) {
      bool faulty = false;
      auto members = groups::family_members(f);
      for (size_t i = 0; i < members.size() && !faulty; ++i)
        for (size_t j = i + 1; j < members.size(); ++j) {
          ProcessSet inter = system_->intersection(members[i], members[j]);
          if (!inter.empty() && inter.subset_of(crashed)) {
            faulty = true;
            break;
          }
        }
      if (!faulty) out.push_back(f);
    }
    return out;
  }

 private:
  const groups::GroupSystem* system_;
  const PerfectOracle* perfect_;
};

}  // namespace gam::fd
