// Checkers for the failure-detector class axioms (paper §3, §6.1).
//
// Both the oracles and the emulation algorithms (Algorithms 2-5) must satisfy
// the class axioms; these checkers validate recorded query traces against
// them. "Eventually forever" clauses are checked on the trace suffix: callers
// must sample well past the last crash so the detector has stabilized —
// which the classes guarantee happens at some finite time.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "fd/detectors.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"

namespace gam::fd {

template <typename T>
struct Sample {
  ProcessId p;
  Time t;
  T value;
};

// Last sample per process, dense over pid [0, n). Samples arrive in t-order,
// so the final write per slot wins; iterating the vector preserves the
// ascending-pid visit order of the std::map this replaces while staying a
// single contiguous allocation (pids are dense, a tree was pure overhead).
template <typename T>
std::vector<std::optional<T>> last_sample_by_pid(
    const std::vector<Sample<T>>& samples, const sim::FailurePattern& pattern) {
  std::vector<std::optional<T>> last(
      static_cast<std::size_t>(pattern.process_count()));
  for (const auto& s : samples) {
    GAM_EXPECTS(s.p >= 0 && s.p < pattern.process_count());
    last[static_cast<std::size_t>(s.p)] = s.value;
  }
  return last;
}

struct CheckResult {
  bool ok = true;
  std::string error;

  void fail(std::string msg) {
    if (ok) error = std::move(msg);
    ok = false;
  }
};

// Σ: (Intersection) any two sampled quorums, at any processes and times,
// intersect; (Liveness) the final sample of every correct in-scope process
// contains only correct processes.
inline CheckResult check_sigma(const std::vector<Sample<ProcessSet>>& samples,
                               const sim::FailurePattern& pattern,
                               ProcessSet scope) {
  CheckResult r;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].value.empty())
      r.fail("sigma returned an empty quorum");
    for (size_t j = i + 1; j < samples.size(); ++j)
      if (!samples[i].value.intersects(samples[j].value))
        r.fail("sigma quorums " + samples[i].value.to_string() + " and " +
               samples[j].value.to_string() + " do not intersect");
  }
  auto last = last_sample_by_pid(samples, pattern);
  for (ProcessId p = 0; p < pattern.process_count(); ++p) {
    const auto& q = last[static_cast<std::size_t>(p)];
    if (!q || !pattern.correct(p) || !scope.contains(p)) continue;
    if (!q->subset_of(pattern.correct_set()))
      r.fail("final sigma quorum at p" + std::to_string(p) +
             " contains a faulty process: " + q->to_string());
  }
  return r;
}

// Ω: the final samples of all correct in-scope processes agree on a single
// correct member of the scope.
inline CheckResult check_omega(const std::vector<Sample<ProcessId>>& samples,
                               const sim::FailurePattern& pattern,
                               ProcessSet scope) {
  CheckResult r;
  if ((scope & pattern.correct_set()).empty()) return r;  // vacuous
  auto last = last_sample_by_pid(samples, pattern);
  ProcessId leader = -1;
  for (ProcessId p = 0; p < pattern.process_count(); ++p) {
    const auto& l = last[static_cast<std::size_t>(p)];
    if (!l || !pattern.correct(p) || !scope.contains(p)) continue;
    if (leader == -1) leader = *l;
    if (*l != leader)
      r.fail("correct processes disagree on the omega leader");
  }
  if (leader != -1 && (!pattern.correct(leader) || !scope.contains(leader)))
    r.fail("final omega leader p" + std::to_string(leader) +
           " is faulty or out of scope");
  return r;
}

// γ: (Accuracy) whenever a family of F(p) is missing from a sample at (p,t),
// the family is faulty at t; (Completeness) the final sample of every correct
// process omits every family of F(p) that is (eventually) faulty.
inline CheckResult check_gamma(
    const std::vector<Sample<std::vector<groups::FamilyMask>>>& samples,
    const groups::GroupSystem& system, const sim::FailurePattern& pattern) {
  CheckResult r;
  std::vector<std::optional<std::vector<groups::FamilyMask>>> last(
      static_cast<std::size_t>(pattern.process_count()));
  for (const auto& s : samples) {
    const auto fp = system.families_of_process(s.p);
    for (groups::FamilyMask f : fp) {
      bool output =
          std::find(s.value.begin(), s.value.end(), f) != s.value.end();
      if (!output && !system.family_faulty_at(f, pattern, s.t))
        r.fail("gamma accuracy: family " + system.family_to_string(f) +
               " omitted at p" + std::to_string(s.p) + " while correct at t=" +
               std::to_string(s.t));
    }
    GAM_EXPECTS(s.p >= 0 && s.p < pattern.process_count());
    last[static_cast<std::size_t>(s.p)] = s.value;
  }
  for (ProcessId p = 0; p < pattern.process_count(); ++p) {
    const auto& fams = last[static_cast<std::size_t>(p)];
    if (!fams || !pattern.correct(p)) continue;
    for (groups::FamilyMask f : system.families_of_process(p)) {
      bool output = std::find(fams->begin(), fams->end(), f) != fams->end();
      if (output && system.family_faulty(f, pattern))
        r.fail("gamma completeness: faulty family " +
               system.family_to_string(f) + " still output at p" +
               std::to_string(p) + " in the final sample");
    }
  }
  return r;
}

// 1^P: (Accuracy) true only when the watched set is crashed at the sample
// time; (Completeness) if the watched set is faulty, the final sample at
// every correct in-scope process is true.
inline CheckResult check_indicator(const std::vector<Sample<bool>>& samples,
                                   const sim::FailurePattern& pattern,
                                   ProcessSet watched, ProcessSet scope) {
  CheckResult r;
  std::vector<std::optional<bool>> last(
      static_cast<std::size_t>(pattern.process_count()));
  for (const auto& s : samples) {
    if (s.value && !pattern.set_faulty_at(watched, s.t))
      r.fail("indicator accuracy: true at t=" + std::to_string(s.t) +
             " while " + watched.to_string() + " still has a live member");
    GAM_EXPECTS(s.p >= 0 && s.p < pattern.process_count());
    last[static_cast<std::size_t>(s.p)] = s.value;
  }
  if (pattern.set_faulty(watched)) {
    for (ProcessId p = 0; p < pattern.process_count(); ++p) {
      const auto& v = last[static_cast<std::size_t>(p)];
      if (!v || !pattern.correct(p) || !scope.contains(p)) continue;
      if (!*v)
        r.fail("indicator completeness: final sample false at p" +
               std::to_string(p) + " although " + watched.to_string() +
               " is faulty");
    }
  }
  return r;
}

}  // namespace gam::fd
