// net::Runtime — live execution of simulator actors over a Transport.
//
// One event-loop thread per process drives the same Actor/Context surface the
// simulator's World does (sim/actor.hpp), so protocol code runs on real
// threads and real transports without recompilation. A loop iteration is one
// candidate step: pump the backend, poll for a frame, and either step the
// actor on the received message or — when the actor wants an idle slot — on
// the null message, exactly the shape of World::step_process.
//
// Two modes:
//
//   Free mode (the default, what the load generator measures): threads run
//   unsynchronized. Sends that hit a full link window park in a
//   per-destination outbox and retry each iteration, preserving per-link
//   FIFO; idle steps are throttled once the outbox backs up so a retry storm
//   cannot outrun flow control.
//
//   Record mode: a global step mutex serializes the whole run — each fired
//   step (receive-or-null plus the sends it performs) is atomic, stamped
//   with a global step clock t, and emitted to a RecorderSink using the
//   World's exact event grammar. The recorded stream IS a legal World
//   execution: ReplayScheduler::attempts_from_events recovers the fired-pid
//   schedule and World::set_receive_script pins which pending message each
//   receive consumed, so the live run replays byte-for-byte in the simulator
//   (see net/replay.hpp and DESIGN.md decision 14). Record mode requires an
//   unthrottled transport window (a send must never fail, as in the World).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "sim/actor.hpp"
#include "sim/metrics.hpp"
#include "sim/spans.hpp"
#include "sim/trace.hpp"
#include "util/contracts.hpp"

namespace gam::net {

class Runtime;

// The Transport-backed Context implementation. Stack-constructed per step,
// like sim::WorldContext.
class NetContext final : public sim::Context {
 public:
  NetContext(Runtime& rt, ProcessId self, sim::Time now)
      : Context(self, now), rt_(rt) {}

  void send(ProcessId dst, sim::ProtocolId protocol, sim::MsgType type,
            sim::Payload data = {}) override;
  void send_to_set(ProcessSet dst, sim::ProtocolId protocol, sim::MsgType type,
                   sim::Payload data = {}) override;
  void trace_fd_query(sim::ProtocolId protocol,
                      sim::DetectorClass detector) override;

 private:
  Runtime& rt_;
};

struct RuntimeOptions {
  bool record = false;
  std::uint64_t max_steps = std::uint64_t{1} << 22;  // record-mode budget
  // Free mode: stop taking idle steps while a process has this many frames
  // parked in its outboxes (backpressure on retry storms).
  std::size_t outbox_idle_cap = 1024;
};

class Runtime {
 public:
  Runtime(Transport& transport, RuntimeOptions opts = {});

  int process_count() const { return transport_.process_count(); }

  void install(ProcessId p, std::unique_ptr<sim::Actor> actor) {
    GAM_EXPECTS(p >= 0 && p < process_count());
    procs_[static_cast<std::size_t>(p)].actor = std::move(actor);
  }

  // Spawns the event-loop threads and blocks until `done()` holds (polled
  // between steps; in record mode, under the step mutex) or the wall-clock
  // timeout passes. Returns true when done() held at exit.
  bool run(std::function<bool()> done, std::chrono::milliseconds timeout);

  // Record-mode artifacts: the recorded stream and the global step clock.
  const sim::RecorderSink& recorder() const { return recorder_; }
  sim::Time now() const { return now_; }

  // Protocol-level delivery event, mirroring World::trace_deliver so live
  // and replayed streams carry identical kDeliver records. No-op outside
  // record mode. Call only from within a step (the step mutex is held).
  void trace_deliver(ProcessId p, sim::ProtocolId protocol, std::int64_t m,
                     std::int64_t seq);

  // Per-process span sink (caller-owned; set before run()). Free mode emits
  // the wire-level span events — enqueue when a frame parks in the outbox,
  // wire_out when it enters the transport, wire_in when the destination polls
  // it — keyed by the wire msg_id, each from the owning event-loop thread.
  // The sink is expected to stamp t (see net/flight_recorder.hpp).
  void set_span_sink(ProcessId p, sim::SpanSink* sink) {
    procs_[static_cast<std::size_t>(p)].span_sink = sink;
  }

  std::uint64_t steps(ProcessId p) const {
    return procs_[static_cast<std::size_t>(p)].steps.load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_steps() const {
    std::uint64_t t = 0;
    for (const auto& ps : procs_) t += ps.steps.load(std::memory_order_relaxed);
    return t;
  }

  // Live introspection snapshot of one process, readable from any thread
  // while the run is in flight (relaxed single-writer atomics: each field is
  // internally consistent, the set is approximate — fine for stats lines).
  struct ProcessStats {
    std::uint64_t steps = 0;
    std::uint64_t outbox_depth = 0;       // frames currently parked
    std::uint64_t outbox_hwm = 0;         // deepest the outbox ever got
    std::uint64_t idle_backoff_us = 0;    // current idle-step backoff period
    std::uint64_t idle_backoff_max_reached = 0;  // times backoff hit the cap
  };
  ProcessStats stats(ProcessId p) const {
    const PerProcess& ps = procs_[static_cast<std::size_t>(p)];
    ProcessStats s;
    s.steps = ps.steps.load(std::memory_order_relaxed);
    s.outbox_depth = ps.outbox_depth.load(std::memory_order_relaxed);
    s.outbox_hwm = ps.outbox_hwm.load(std::memory_order_relaxed);
    s.idle_backoff_us = ps.backoff_us.load(std::memory_order_relaxed);
    s.idle_backoff_max_reached =
        ps.backoff_cap_hits.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class NetContext;

  struct OutFrame {
    WireHeader header;
    sim::Payload payload;
  };
  struct alignas(64) PerProcess {
    std::unique_ptr<sim::Actor> actor;
    // Per-destination parked frames (free mode), preserving per-link FIFO.
    std::vector<std::deque<OutFrame>> outbox;
    std::size_t outbox_frames = 0;
    sim::SpanSink* span_sink = nullptr;
    // Stats mirrors: written only by the owning loop thread with relaxed
    // stores, read by anyone (stats thread, post-run accounting).
    std::atomic<std::uint64_t> steps{0};
    std::atomic<std::uint64_t> outbox_depth{0};
    std::atomic<std::uint64_t> outbox_hwm{0};
    std::atomic<std::uint64_t> backoff_us{0};
    std::atomic<std::uint64_t> backoff_cap_hits{0};
  };

  void do_send(ProcessId src, ProcessId dst, sim::ProtocolId protocol,
               sim::MsgType type, sim::Payload data);
  void flush_outbox(PerProcess& st, ProcessId src);
  void free_loop(ProcessId p, std::chrono::steady_clock::time_point deadline);
  void record_loop(ProcessId p,
                   std::chrono::steady_clock::time_point deadline);
  void emit(sim::TraceEventKind kind, ProcessId p, std::int32_t protocol,
            std::int32_t type, ProcessId peer, const sim::Payload* data,
            std::int64_t arg = 0);

  Transport& transport_;
  RuntimeOptions opts_;
  std::vector<PerProcess> procs_;
  std::atomic<std::uint64_t> msg_seq_{0};  // wire header msg_id source

  std::function<bool()> done_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_seen_{false};

  // Record mode: the step token and everything it guards.
  std::mutex step_mu_;
  sim::Time now_ = 0;             // global fired-step clock (== World::now_)
  std::uint64_t steps_total_ = 0;
  sim::RecorderSink recorder_;
  ProcessId stepping_ = -1;       // pid currently inside its step
  ProcessId next_turn_ = 0;       // round-robin step token (fair schedule)
};

}  // namespace gam::net
