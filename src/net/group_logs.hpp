// Disjoint-group replicated multicast over the runtime-independent actor
// surface.
//
// The same construction amcast::ReplicatedMulticast uses in the simulator —
// one UniversalLog replica per group member, protocol id kTraceBase+g,
// delivery =
// the op entering a replica's learned prefix — packaged so that IDENTICAL
// actors can be installed on a live net::Runtime and on a replay World: build
// one GroupLogs per execution, hand make_actors() a deliver callback that
// reports into whichever runtime hosts it, and submit the same ops in the
// same order. Two GroupLogs built from the same config start in identical
// state, which is what makes record/replay byte-comparable end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fd/detectors.hpp"
#include "objects/protocol_host.hpp"
#include "objects/universal_log.hpp"
#include "sim/actor.hpp"
#include "sim/failure_pattern.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::net {

struct GroupLogsConfig {
  int groups = 1;
  int group_size = 3;
  int batch = 1;       // UniversalLog ordered-batch size
  int window = 1;      // UniversalLog pipelined instance window
  // Group g speaks protocol_base + g. 100 matches the simulator's world-log
  // numbering (amcast::ReplicatedMulticast::kTraceBase) so net traces replay
  // against the same monitor wiring.
  sim::ProtocolId protocol_base = sim::protocol_id(100);
};

class GroupLogs {
 public:
  // (replica pid, group, op, per-replica delivery seq) — fires on the
  // replica's stepping thread, inside its step.
  using DeliverFn =
      std::function<void(ProcessId, int, std::int64_t, std::int64_t)>;

  explicit GroupLogs(GroupLogsConfig cfg)
      : cfg_(cfg),
        pattern_(cfg.groups * cfg.group_size),  // crash-free: static FD output
        local_seq_(static_cast<std::size_t>(process_count()), 0) {
    GAM_EXPECTS(cfg_.groups > 0 && cfg_.group_size > 0);
    for (int g = 0; g < cfg_.groups; ++g) {
      ProcessSet scope;
      for (int i = 0; i < cfg_.group_size; ++i)
        scope.insert(g * cfg_.group_size + i);
      scopes_.push_back(scope);
      sigmas_.push_back(std::make_unique<fd::SigmaOracle>(pattern_, scope));
      omegas_.push_back(std::make_unique<fd::OmegaOracle>(pattern_, scope));
    }
  }

  int process_count() const { return cfg_.groups * cfg_.group_size; }
  const GroupLogsConfig& config() const { return cfg_; }
  const ProcessSet& group(int g) const {
    return scopes_[static_cast<std::size_t>(g)];
  }
  std::vector<ProcessSet> group_sets() const { return scopes_; }
  sim::ProtocolId protocol(int g) const { return cfg_.protocol_base + g; }

  // The Ω leader of group g — stable from t=0 under the crash-free pattern,
  // so ops submitted here are driven directly instead of being forwarded.
  ProcessId leader(int g) const {
    auto l = omegas_[static_cast<std::size_t>(g)]->query(
        g * cfg_.group_size, 0);
    GAM_EXPECTS(l.has_value());
    return *l;
  }

  // One actor per process, each hosting its group's log replica. Call once.
  std::vector<std::unique_ptr<sim::Actor>> make_actors(DeliverFn deliver) {
    GAM_EXPECTS(logs_.empty());
    deliver_ = std::move(deliver);
    std::vector<std::unique_ptr<objects::ProtocolHost>> hosts;
    std::vector<objects::ProtocolHost*> raw;
    for (int p = 0; p < process_count(); ++p) {
      hosts.push_back(std::make_unique<objects::ProtocolHost>());
      raw.push_back(hosts.back().get());
      hosts_.push_back(raw.back());
    }
    logs_.resize(static_cast<std::size_t>(cfg_.groups));
    for (int g = 0; g < cfg_.groups; ++g) {
      for (ProcessId p : scopes_[static_cast<std::size_t>(g)]) {
        auto log = std::make_shared<objects::UniversalLog>(
            protocol(g), p, scopes_[static_cast<std::size_t>(g)],
            *sigmas_[static_cast<std::size_t>(g)],
            *omegas_[static_cast<std::size_t>(g)], cfg_.batch, cfg_.window);
        log->set_on_learn([this, p, g](std::int64_t op, std::int64_t) {
          // local_seq_[p] is touched only by p's stepping thread.
#ifdef GAM_PLANTED_BUG
          // Teeth check for the flight-recorder path: replica 1 misreports
          // its fifth delivery as the next op id, so its delivered sequence
          // disagrees with the rest of the group — gam_loadgen's monitor
          // pass must flag it and dump the flight recorder.
          if (cfg_.group_size > 1 && p == 1 && local_seq_[1] == 4) op += 1;
#endif
          std::int64_t seq = local_seq_[static_cast<std::size_t>(p)]++;
          deliver_(p, g, op, seq);
        });
        raw[static_cast<std::size_t>(p)]->add(protocol(g), log);
        logs_[static_cast<std::size_t>(g)].push_back(std::move(log));
      }
    }
    std::vector<std::unique_ptr<sim::Actor>> actors;
    for (auto& h : hosts) actors.push_back(std::move(h));
    return actors;
  }

  // Attach one span sink per process to every log replica it hosts (see
  // UniversalLog::set_span_sink). Call after make_actors, before the run;
  // entries may be null. Each replica of process p emits only from p's
  // stepping thread, so per-process sinks need no synchronization.
  void set_span_sinks(const std::vector<sim::SpanSink*>& by_pid) {
    GAM_EXPECTS(!logs_.empty());  // replicas exist only after make_actors
    GAM_EXPECTS(static_cast<int>(by_pid.size()) == process_count());
    for (int g = 0; g < cfg_.groups; ++g) {
      int idx = 0;
      for (ProcessId p : scopes_[static_cast<std::size_t>(g)]) {
        replica(g, idx).set_span_sink(by_pid[static_cast<std::size_t>(p)]);
        ++idx;
      }
    }
  }

  // Replica of group g at member index i (members in ascending pid order).
  objects::UniversalLog& replica(int g, int member_index) {
    return *logs_[static_cast<std::size_t>(g)]
                 [static_cast<std::size_t>(member_index)];
  }

  objects::ProtocolHost& host(ProcessId p) {
    return *hosts_[static_cast<std::size_t>(p)];
  }

  // Submit an op at group g's Ω leader. Valid before and during a run, but
  // replayable executions must perform pre-run submissions only (a mid-run
  // submit is not a trace event the replay can reproduce).
  void submit_at_leader(int g, std::int64_t op) {
    ProcessId l = leader(g);
    int idx = 0;
    for (ProcessId p : scopes_[static_cast<std::size_t>(g)]) {
      if (p == l) break;
      ++idx;
    }
    replica(g, idx).submit(op, nullptr);
  }

 private:
  GroupLogsConfig cfg_;
  sim::FailurePattern pattern_;
  std::vector<ProcessSet> scopes_;
  std::vector<std::unique_ptr<fd::SigmaOracle>> sigmas_;
  std::vector<std::unique_ptr<fd::OmegaOracle>> omegas_;
  std::vector<std::vector<std::shared_ptr<objects::UniversalLog>>> logs_;
  std::vector<objects::ProtocolHost*> hosts_;
  std::vector<std::int64_t> local_seq_;
  DeliverFn deliver_;
};

}  // namespace gam::net
