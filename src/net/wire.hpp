// The packed wire format shared by every net backend.
//
// A frame is one WireHeader followed by `payload_words` little-endian int64
// words — the same flat-integer payloads the simulator's Message carries, so
// a frame round-trips to a sim::Message without re-encoding. The header is
// packed (26 bytes, no padding): the in-process rings copy frames byte for
// byte and the TCP backend parses them out of a stream, so the struct layout
// IS the wire format and must not vary by compiler padding choices.
#pragma once

#include <cstdint>
#include <cstring>

#include "sim/message.hpp"
#include "sim/payload.hpp"
#include "util/contracts.hpp"

namespace gam::net {

// Frame discriminator. Credit frames are flow control between endpoints
// (TCP backend): they return consumed-frame counts to the sender and never
// surface to the hosted actor.
enum : std::uint16_t {
  kFrameData = 0,
  kFrameCredit = 1,
};

struct WireHeader {
  std::uint64_t msg_id = 0;       // transport-global sequence (debug/credit)
  std::int32_t protocol = 0;      // sim::Message::protocol
  std::int32_t type = 0;          // sim::Message::type
  std::int16_t src = -1;
  std::int16_t dst = -1;
  std::uint16_t group_pair = 0;   // packed (g,h) the message serves, if any
  std::uint16_t payload_words = 0;
  std::uint16_t flags = kFrameData;
} __attribute__((packed));

static_assert(sizeof(WireHeader) == 26, "WireHeader must stay packed");

// Disjoint-group traffic packs (g, g); the cross-log machinery of Algorithm 1
// would pack the ordered pair it serves.
constexpr std::uint16_t pack_group_pair(int g, int h) {
  return static_cast<std::uint16_t>(((g & 0xff) << 8) | (h & 0xff));
}

constexpr std::size_t frame_bytes(const WireHeader& h) {
  return sizeof(WireHeader) + std::size_t{h.payload_words} * sizeof(std::int64_t);
}

// A received frame, header plus decoded payload.
struct Frame {
  WireHeader header;
  sim::Payload payload;
};

inline WireHeader make_header(std::uint64_t msg_id, ProcessId src,
                              ProcessId dst, std::int32_t protocol,
                              std::int32_t type, std::uint16_t group_pair,
                              std::size_t payload_words,
                              std::uint16_t flags = kFrameData) {
  GAM_EXPECTS(src >= -1 && src < 32768 && dst >= 0 && dst < 32768);
  GAM_EXPECTS(payload_words < 65536);
  WireHeader h;
  h.msg_id = msg_id;
  h.protocol = protocol;
  h.type = type;
  h.src = static_cast<std::int16_t>(src);
  h.dst = static_cast<std::int16_t>(dst);
  h.group_pair = group_pair;
  h.payload_words = static_cast<std::uint16_t>(payload_words);
  h.flags = flags;
  return h;
}

inline sim::Message to_message(const Frame& f) {
  sim::Message m;
  m.src = f.header.src;
  m.dst = f.header.dst;
  m.protocol = f.header.protocol;
  m.type = f.header.type;
  m.data = f.payload;
  return m;
}

}  // namespace gam::net
