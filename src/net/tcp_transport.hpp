// Epoll-based nonblocking TCP backend.
//
// A localhost mesh: every directed link (s, d) is one TCP connection, opened
// from s to d's listener during (blocking) setup, then switched to
// nonblocking for the run. The connection is full-duplex but role-split —
// s writes data frames, d writes credit frames back — so each endpoint owns
// one fd per outbound link and one per inbound link, and every fd is touched
// by exactly one event-loop thread after setup.
//
// Flow control reuses the window_size semantics of the in-process rings,
// credit-based because TCP gives no shared counters: a sender may have at
// most `window` unacknowledged data frames per link; the receiver returns a
// credit frame (flags=kFrameCredit, msg_id = consumed count) for the frames
// its actor consumed, batched per pump.
//
// This backend exists for fidelity (the same actors, frames, and monitors
// over real sockets), not peak throughput — the loadgen's hot path is the
// in-process transport.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/transport.hpp"

namespace gam::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    // Max unacknowledged data frames per directed link; 0 = unthrottled.
    std::uint64_t window = 64;
  };

  // Blocking: establishes the full n x n localhost mesh before returning.
  // (Overload pair instead of `Options opts = {}` — gcc refuses to build the
  // defaulted aggregate before the enclosing class is complete.)
  explicit TcpTransport(int process_count) : TcpTransport(process_count,
                                                          Options()) {}
  TcpTransport(int process_count, Options opts);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  int process_count() const override { return n_; }
  bool try_send(ProcessId src, ProcessId dst, const WireHeader& h,
                const sim::Payload& payload) override;
  std::optional<Frame> poll(ProcessId self) override;
  void pump(ProcessId self) override;
  bool idle(ProcessId self) override;

 private:
  // Sender side of link self -> peer (fd from connect()).
  struct OutLink {
    int fd = -1;
    std::vector<std::uint8_t> out;   // unsent frame bytes
    std::vector<std::uint8_t> in;    // partial inbound credit stream
    std::uint64_t sent = 0;          // data frames handed to try_send
    std::uint64_t credited = 0;      // data frames the peer consumed
  };
  // Receiver side of link peer -> self (fd from accept()).
  struct InLink {
    int fd = -1;
    std::vector<std::uint8_t> in;    // partial inbound data stream
    std::deque<Frame> pending;       // parsed data frames awaiting poll()
    std::vector<std::uint8_t> out;   // unsent credit bytes
    std::uint64_t uncredited = 0;    // consumed frames not yet credited
  };
  struct Endpoint {
    int epoll_fd = -1;
    std::vector<OutLink> out;  // indexed by peer
    std::vector<InLink> in;    // indexed by peer
    int rr = 0;                // round-robin cursor over sources
  };

  void drain_fd(ProcessId self, int fd);
  void flush_buffers(Endpoint& ep);
  void queue_credit(InLink& l, ProcessId self, ProcessId peer);

  int n_;
  Options opts_;
  std::vector<Endpoint> eps_;
};

}  // namespace gam::net
