// Replay of a recorded live run inside the deterministic simulator.
//
// A record-mode Runtime run is, by construction, a legal World execution:
// steps are globally serialized, t is the fired-step counter, and the event
// grammar matches the World's emission points. Two levers then pin the replay
// to the recording:
//
//   1. ReplayScheduler::attempts_from_events recovers the fired-pid schedule
//      (one attempt per kReceive/kNullStep/kCrash event) and drives the
//      World's scheduling rounds with it.
//   2. World::set_receive_script pins WHICH pending message each receive
//      consumes — (src, protocol, type, payload hash) per kReceive event —
//      the one choice the World's seeded-random buffer would otherwise make
//      on its own.
//
// With both attached, the same GroupLogs construction and the same pre-run
// submissions reproduce the recorded stream event for event: at every step
// the pending-message multiset for the stepping process matches the live
// run's (induction over the reproduced sends), so receive-vs-null decisions,
// payloads, deliveries, and FD queries all coincide.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/group_logs.hpp"
#include "sim/adversary.hpp"
#include "sim/run_spec.hpp"
#include "sim/trace.hpp"

namespace gam::net {

struct ReplayResult {
  std::vector<sim::TraceEvent> events;
  bool quiescent = false;
};

// Replays `recorded` (a record-mode Runtime stream) in the simulator, using
// a fresh GroupLogs built from `cfg` and the same (group, op) submissions in
// the same order. Compare result.events against the recording with
// sim::first_divergence — equality is the record/replay gate.
inline ReplayResult replay_in_simulator(
    const GroupLogsConfig& cfg,
    const std::vector<std::pair<int, std::int64_t>>& submissions,
    const std::vector<sim::TraceEvent>& recorded) {
  GroupLogs logs(cfg);
  sim::RecorderSink replayed;
  auto attempts = sim::ReplayScheduler::attempts_from_events(recorded);
  sim::Scenario sc(
      sim::RunSpec{}
          .processes(logs.process_count())
          .max_steps(attempts.size() + 1)
          .scheduler_factory([attempts](std::uint64_t) {
            return std::make_unique<sim::ReplayScheduler>(attempts);
          })
          .trace(&replayed));
  sim::World& world = sc.world();
  world.set_receive_script(sim::World::receive_script_from_events(recorded));
  auto actors = logs.make_actors(
      [&world, &logs](ProcessId p, int g, std::int64_t op, std::int64_t seq) {
        world.trace_deliver(p, logs.protocol(g), op, seq);
      });
  for (ProcessId p = 0; p < logs.process_count(); ++p)
    world.install(p, std::move(actors[static_cast<std::size_t>(p)]));
  for (const auto& [g, op] : submissions) logs.submit_at_leader(g, op);
  ReplayResult r;
  r.quiescent = sc.run();
  r.events = replayed.events();
  return r;
}

}  // namespace gam::net
