// Flight recorder: a fixed-size per-event-loop-thread ring of recent span
// events, dumped post-mortem when something goes wrong.
//
// The net runtime's free mode runs one unsynchronized thread per process, so
// a full span recording of a hot run is either a shared queue (contention on
// the hot path) or unbounded per-thread memory. The flight recorder is the
// bounded third option: every process owns a ring of the last N span events
// it emitted — protocol milestones from its UniversalLog replicas plus the
// runtime's wire events — written with zero shared state (single writer, no
// atomics, no locks on the event path). When a monitor violation, a
// --min-rate failure, or SIGINT ends the run, gam_loadgen merges the rings
// (threads are joined by then, so plain reads are safe) and dumps them to a
// timestamped `gam-spans v1` file that tools/span_report reads directly —
// turning "monitor tripped, rerun with --record" into immediate evidence.
//
// Each per-process sink also stamps the event clock: emitters below the net
// layer (UniversalLog) have no run clock and send t=0; the sink overwrites t
// via the recorder's clock function — wall-clock ns since the recorder's
// construction by default, or a caller-supplied clock (record mode passes the
// runtime's global step counter so dumped spans line up with the recorded
// trace). An optional per-process collector tees the stamped stream into full
// capture for `--spans`.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/spans.hpp"
#include "util/contracts.hpp"

namespace gam::net {

class FlightRecorder {
 public:
  using Clock = std::function<std::uint64_t()>;

  explicit FlightRecorder(int processes, std::size_t capacity = 4096,
                          Clock clock = {})
      : epoch_(std::chrono::steady_clock::now()),
        clock_(std::move(clock)),
        threads_(static_cast<std::size_t>(processes)) {
    GAM_EXPECTS(processes > 0 && capacity > 0);
    for (std::size_t p = 0; p < threads_.size(); ++p) {
      threads_[p].ring.resize(capacity);
      threads_[p].sink.rec = this;
      threads_[p].sink.th = &threads_[p];
    }
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // The stamping sink for process p's event-loop thread. Valid for the
  // recorder's lifetime; call on_span only from p's thread.
  sim::SpanSink* sink(ProcessId p) {
    return &threads_[static_cast<std::size_t>(p)].sink;
  }

  // Tee p's stamped events into a full collector as well (e.g. --spans).
  // Caller-owned; same single-thread rule as the ring.
  void set_collector(ProcessId p, sim::SpanCollector* c) {
    threads_[static_cast<std::size_t>(p)].collector = c;
  }

  std::uint64_t now() const {
    if (clock_) return clock_();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Events ever pushed (not just retained). Safe after the run's threads are
  // joined; mid-run it is a racy-but-monotone estimate for live stats.
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& th : threads_) t += th.total;
    return t;
  }

  // The merged retained window, time-sorted (ties broken by pid then input
  // order). Only valid once the emitting threads have been joined.
  std::vector<sim::SpanEvent> snapshot() const {
    std::vector<sim::SpanEvent> out;
    for (const auto& th : threads_) {
      std::uint64_t n = th.total < th.ring.size()
                            ? th.total
                            : static_cast<std::uint64_t>(th.ring.size());
      for (std::uint64_t i = th.total - n; i < th.total; ++i)
        out.push_back(th.ring[static_cast<std::size_t>(i % th.ring.size())]);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const sim::SpanEvent& a, const sim::SpanEvent& b) {
                       if (a.t != b.t) return a.t < b.t;
                       return a.p < b.p;
                     });
    return out;
  }

  bool dump(const std::string& path) const {
    return sim::write_spans(path, snapshot(), clock_ ? "steps" : "ns");
  }

 private:
  struct PerThread;
  struct ThreadSink final : sim::SpanSink {
    FlightRecorder* rec = nullptr;
    PerThread* th = nullptr;
    void on_span(const sim::SpanEvent& e) override;
  };
  struct alignas(64) PerThread {
    std::vector<sim::SpanEvent> ring;
    std::uint64_t total = 0;  // single writer: the owning thread
    sim::SpanCollector* collector = nullptr;
    ThreadSink sink;
  };

  std::chrono::steady_clock::time_point epoch_;
  Clock clock_;
  std::vector<PerThread> threads_;

  friend struct ThreadSink;
};

inline void FlightRecorder::ThreadSink::on_span(const sim::SpanEvent& e) {
  sim::SpanEvent s = e;
  s.t = rec->now();
  th->ring[static_cast<std::size_t>(th->total % th->ring.size())] = s;
  ++th->total;
  if (th->collector) th->collector->on_span(s);
}

// `<base>.<epoch_ms>.flight`: the timestamped dump path gam_loadgen writes.
inline std::string flight_dump_path(const std::string& base) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
  return base + "." + std::to_string(ms) + ".flight";
}

}  // namespace gam::net
