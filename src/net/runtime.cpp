#include "net/runtime.hpp"

#include <thread>

namespace gam::net {

Runtime::Runtime(Transport& transport, RuntimeOptions opts)
    : transport_(transport),
      opts_(opts),
      procs_(static_cast<std::size_t>(transport.process_count())) {
  for (auto& ps : procs_)
    ps.outbox.resize(static_cast<std::size_t>(transport.process_count()));
}

void Runtime::emit(sim::TraceEventKind kind, ProcessId p, std::int32_t protocol,
                   std::int32_t type, ProcessId peer, const sim::Payload* data,
                   std::int64_t arg) {
  // Mirrors World::trace field for field; record mode only, under step_mu_.
  sim::TraceEvent e;
  e.t = now_;
  e.p = p;
  e.kind = kind;
  e.protocol = protocol;
  e.type = type;
  e.peer = peer;
  e.arg = arg;
  e.payload_hash = data ? sim::hash_payload(*data) : 0;
  recorder_.on_event(e);
}

void Runtime::trace_deliver(ProcessId p, sim::ProtocolId protocol,
                            std::int64_t m, std::int64_t seq) {
  if (!opts_.record) return;
  emit(sim::TraceEventKind::kDeliver, p, sim::raw(protocol),
       static_cast<std::int32_t>(seq), -1, nullptr, m);
}

void Runtime::do_send(ProcessId src, ProcessId dst, sim::ProtocolId protocol,
                      sim::MsgType type, sim::Payload data) {
  GAM_EXPECTS(dst >= 0 && dst < process_count());
  const std::uint64_t id = msg_seq_.fetch_add(1, std::memory_order_relaxed);
  WireHeader h = make_header(id, src, dst, sim::raw(protocol), sim::raw(type),
                             static_cast<std::uint16_t>(sim::raw(protocol)),
                             data.size());
  if (opts_.record) {
    // The event order must match the World's buffer observer: kSend at send
    // time, before the message becomes receivable. Record mode runs with an
    // unthrottled window, so a refused send means the ring itself is
    // undersized for the topology — fail loudly rather than reorder.
    emit(sim::TraceEventKind::kSend, src, sim::raw(protocol), sim::raw(type),
         dst, &data);
    GAM_EXPECTS(transport_.try_send(src, dst, h, data));
    return;
  }
  PerProcess& st = procs_[static_cast<std::size_t>(src)];
  auto& q = st.outbox[static_cast<std::size_t>(dst)];
  if (q.empty() && transport_.try_send(src, dst, h, data)) {
    GAM_METRICS_PROBE(if (st.span_sink) st.span_sink->on_span(
        {0, src, sim::SpanKind::kWireOut, static_cast<std::int64_t>(id), dst,
         0}));
    return;
  }
  q.push_back({h, std::move(data)});
  ++st.outbox_frames;
  st.outbox_depth.store(st.outbox_frames, std::memory_order_relaxed);
  if (st.outbox_frames > st.outbox_hwm.load(std::memory_order_relaxed))
    st.outbox_hwm.store(st.outbox_frames, std::memory_order_relaxed);
  GAM_METRICS_PROBE(if (st.span_sink) st.span_sink->on_span(
      {0, src, sim::SpanKind::kEnqueue, static_cast<std::int64_t>(id), dst,
       0}));
}

void Runtime::flush_outbox(PerProcess& st, ProcessId src) {
  if (st.outbox_frames == 0) return;
  for (ProcessId d = 0; d < process_count(); ++d) {
    auto& q = st.outbox[static_cast<std::size_t>(d)];
    while (!q.empty()) {
      const OutFrame& f = q.front();
      if (!transport_.try_send(src, d, f.header, f.payload)) break;
      GAM_METRICS_PROBE(if (st.span_sink) st.span_sink->on_span(
          {0, src, sim::SpanKind::kWireOut,
           static_cast<std::int64_t>(f.header.msg_id), d, 0}));
      q.pop_front();
      --st.outbox_frames;
    }
  }
  st.outbox_depth.store(st.outbox_frames, std::memory_order_relaxed);
}

void Runtime::free_loop(ProcessId p,
                        std::chrono::steady_clock::time_point deadline) {
  using std::chrono::microseconds;
  PerProcess& st = procs_[static_cast<std::size_t>(p)];
  sim::Time local_now = 0;
  int idle_spins = 0;
  int steps_since_check = 0;
  // Idle-step pacing. A busy-spinning actor can take idle steps orders of
  // magnitude faster than a message round-trips through another thread's
  // scheduling quantum, and protocols whose retry timers tick in idle steps
  // (UniversalLog re-prepares every kStallLimit of them) then invalidate
  // every in-flight reply — a ballot livelock. Consecutive idle steps
  // therefore back off exponentially in wall-clock; any receive resets the
  // backoff so drivers and leaders act promptly while traffic flows.
  auto next_idle = std::chrono::steady_clock::time_point::min();
  microseconds idle_period{0};
  while (!stop_.load(std::memory_order_relaxed)) {
    transport_.pump(p);
    flush_outbox(st, p);
    bool fired = false;
    if (auto f = transport_.poll(p)) {
      GAM_METRICS_PROBE(if (st.span_sink) st.span_sink->on_span(
          {0, p, sim::SpanKind::kWireIn,
           static_cast<std::int64_t>(f->header.msg_id), f->header.src, 0}));
      sim::Message msg = to_message(*f);
      NetContext ctx(*this, p, local_now);
      st.actor->on_step(ctx, &msg);
      fired = true;
      idle_period = microseconds{0};
      next_idle = std::chrono::steady_clock::time_point::min();
      st.backoff_us.store(0, std::memory_order_relaxed);
    } else if (st.actor->wants_step() &&
               st.outbox_frames < opts_.outbox_idle_cap &&
               std::chrono::steady_clock::now() >= next_idle) {
      // Idle slot (retries, leader duties, load drivers). Gated on outbox
      // depth: while flow control has frames parked, more idle work would
      // only deepen the backlog.
      NetContext ctx(*this, p, local_now);
      st.actor->on_step(ctx, nullptr);
      fired = true;
      const bool was_capped = idle_period >= microseconds{2000};
      idle_period = idle_period.count() == 0
                        ? microseconds{20}
                        : std::min(idle_period * 2, microseconds{2000});
      next_idle = std::chrono::steady_clock::now() + idle_period;
      st.backoff_us.store(static_cast<std::uint64_t>(idle_period.count()),
                          std::memory_order_relaxed);
      if (!was_capped && idle_period >= microseconds{2000})
        st.backoff_cap_hits.store(
            st.backoff_cap_hits.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    }
    if (fired) {
      ++local_now;
      st.steps.store(st.steps.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
      idle_spins = 0;
      // Periodic completion check even while busy, or a run whose actors
      // always want idle steps would never notice done().
      if (++steps_since_check >= 1024) {
        steps_since_check = 0;
        if (done_ && done_()) {
          done_seen_.store(true);
          stop_.store(true);
        }
        if (std::chrono::steady_clock::now() >= deadline) stop_.store(true);
      }
      continue;
    }
    if (++idle_spins >= 64) {
      idle_spins = 0;
      if (done_ && done_()) {
        done_seen_.store(true);
        stop_.store(true);
        return;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        stop_.store(true);
        return;
      }
      std::this_thread::yield();
    }
  }
}

void Runtime::record_loop(ProcessId p,
                          std::chrono::steady_clock::time_point deadline) {
  PerProcess& st = procs_[static_cast<std::size_t>(p)];
  while (true) {
    bool my_turn = false;
    {
      std::lock_guard<std::mutex> lk(step_mu_);
      if (stop_.load(std::memory_order_relaxed)) return;
      // std::mutex is unfair: a process that always has work would otherwise
      // reacquire it indefinitely and starve the rest (observed: p0 took
      // every step of a run). The token hands steps out round-robin — a
      // legal World schedule, and the one the recording reflects.
      if (next_turn_ == p) {
        my_turn = true;
        if (done_ && done_()) {
          done_seen_.store(true);
          stop_.store(true);
          return;
        }
        if (steps_total_ >= opts_.max_steps) {
          stop_.store(true);
          return;
        }
        transport_.pump(p);
        auto f = transport_.poll(p);
        if (f || st.actor->wants_step()) {
          sim::Message msg;
          const sim::Message* mp = nullptr;
          if (f) {
            msg = to_message(*f);
            emit(sim::TraceEventKind::kReceive, p, msg.protocol, msg.type,
                 msg.src, &msg.data);
            mp = &msg;
          } else {
            emit(sim::TraceEventKind::kNullStep, p, 0, 0, -1, nullptr);
          }
          NetContext ctx(*this, p, now_);
          stepping_ = p;
          st.actor->on_step(ctx, mp);
          stepping_ = -1;
          ++now_;
          ++steps_total_;
          st.steps.store(st.steps.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
        }
        next_turn_ = (p + 1) % process_count();
      }
    }
    if (!my_turn) {
      if (std::chrono::steady_clock::now() >= deadline) {
        stop_.store(true);
        return;
      }
      std::this_thread::yield();
    }
  }
}

bool Runtime::run(std::function<bool()> done,
                  std::chrono::milliseconds timeout) {
  for (const auto& ps : procs_) GAM_EXPECTS(ps.actor != nullptr);
  done_ = std::move(done);
  stop_.store(false);
  done_seen_.store(false);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<std::thread> threads;
  threads.reserve(procs_.size());
  for (ProcessId p = 0; p < process_count(); ++p)
    threads.emplace_back([this, p, deadline] {
      if (opts_.record)
        record_loop(p, deadline);
      else
        free_loop(p, deadline);
    });
  for (auto& t : threads) t.join();
  return done_seen_.load();
}

void NetContext::send(ProcessId dst, sim::ProtocolId protocol,
                      sim::MsgType type, sim::Payload data) {
  rt_.do_send(self(), dst, protocol, type, std::move(data));
}

void NetContext::send_to_set(ProcessSet dst, sim::ProtocolId protocol,
                             sim::MsgType type, sim::Payload data) {
  // Ascending member order — the same wire order (and therefore kSend event
  // order) the World's MessageBuffer::send_to_set produces.
  for (ProcessId p : dst) rt_.do_send(self(), p, protocol, type, data);
}

void NetContext::trace_fd_query(sim::ProtocolId protocol,
                                sim::DetectorClass detector) {
  if (!rt_.opts_.record) return;
  rt_.emit(sim::TraceEventKind::kFdQuery, self(), sim::raw(protocol),
           sim::raw(detector), -1, nullptr);
}

}  // namespace gam::net
