// Transport: the byte-moving layer under net::Runtime.
//
// Two backends speak the same packed wire format (net/wire.hpp):
//
//   InProcTransport — per-link SPSC ring buffers between threads of one
//                     process; the hot path the load generator measures.
//   TcpTransport    — epoll-driven nonblocking TCP mesh over localhost
//                     (net/tcp_transport.hpp); the same frames over sockets.
//
// Both enforce a bounded in-flight window per link, reusing the window_size
// flow-control semantics of the simulator's pipelined UniversalLog: a link
// holds at most `window` unconsumed data frames, and try_send refuses (caller
// retries from its outbox) rather than queueing unboundedly. window = 0
// disables the throttle (record mode, where a send must never fail so a
// recorded run stays a legal simulator execution).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ring.hpp"
#include "net/wire.hpp"
#include "util/contracts.hpp"
#include "util/process_set.hpp"

namespace gam::net {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int process_count() const = 0;

  // Nonblocking send of one data frame src -> dst. False when the link's
  // in-flight window is full (or the link has no buffer space); the caller
  // keeps the frame and retries.
  virtual bool try_send(ProcessId src, ProcessId dst, const WireHeader& h,
                        const sim::Payload& payload) = 0;

  // Next data frame addressed to `self`, from any source, fair round-robin
  // across sources. Nullopt when nothing is pending.
  virtual std::optional<Frame> poll(ProcessId self) = 0;

  // Drive backend I/O for `self` (socket reads/writes, credit processing).
  // No-op for the in-process backend, whose rings need no pumping.
  virtual void pump(ProcessId self) { (void)self; }

  // True when no frame addressed to `self` is buffered anywhere in the
  // backend (used by record mode, where "nothing pending" must mean the same
  // thing it means to the simulator's message buffer).
  virtual bool idle(ProcessId self) = 0;
};

// In-process backend: an n x n matrix of SPSC rings, one per directed link.
// Link (s, d) is written only by s's thread and read only by d's thread, so
// the rings' single-producer/single-consumer contract holds by construction.
class InProcTransport final : public Transport {
 public:
  struct Options {
    std::size_t ring_bytes = std::size_t{1} << 16;  // per directed link
    // Max unconsumed data frames per link; 0 = unthrottled (record mode).
    std::uint64_t window = 64;
  };

  // Two overloads instead of `Options opts = {}`: gcc refuses to build the
  // defaulted aggregate before the enclosing class is complete.
  explicit InProcTransport(int process_count)
      : InProcTransport(process_count, Options()) {}
  InProcTransport(int process_count, Options opts)
      : n_(process_count), opts_(opts), rr_(static_cast<std::size_t>(n_), 0) {
    GAM_EXPECTS(n_ > 0 && n_ < 32768);
    links_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
    for (auto& l : links_) l = std::make_unique<SpscRing>(opts_.ring_bytes);
  }

  int process_count() const override { return n_; }

  bool try_send(ProcessId src, ProcessId dst, const WireHeader& h,
                const sim::Payload& payload) override {
    SpscRing& ring = link(src, dst);
    if (opts_.window > 0 && ring.in_flight() >= opts_.window) return false;
    return ring.try_push(h, payload.data());
  }

  std::optional<Frame> poll(ProcessId self) override {
    auto& cursor = rr_[static_cast<std::size_t>(self)];
    Frame f;
    for (int i = 0; i < n_; ++i) {
      const int s = (cursor + i) % n_;
      if (link(s, self).try_pop(f)) {
        cursor = (s + 1) % n_;  // resume after the source we just served
        return f;
      }
    }
    return std::nullopt;
  }

  bool idle(ProcessId self) override {
    for (int s = 0; s < n_; ++s)
      if (!link(s, self).empty()) return false;
    return true;
  }

  SpscRing& link(ProcessId src, ProcessId dst) {
    GAM_EXPECTS(src >= 0 && src < n_ && dst >= 0 && dst < n_);
    return *links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(dst)];
  }

 private:
  int n_;
  Options opts_;
  std::vector<std::unique_ptr<SpscRing>> links_;
  std::vector<int> rr_;  // per-destination round-robin cursor (consumer-owned)
};

}  // namespace gam::net
