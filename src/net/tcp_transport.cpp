#include "net/tcp_transport.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gam::net {

namespace {

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  GAM_EXPECTS(flags >= 0);
  GAM_EXPECTS(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Appends a serialized frame to `buf`.
void append_frame(std::vector<std::uint8_t>& buf, const WireHeader& h,
                  const std::int64_t* words) {
  const std::size_t at = buf.size();
  buf.resize(at + frame_bytes(h));
  std::memcpy(buf.data() + at, &h, sizeof h);
  if (h.payload_words > 0 && words != nullptr)
    std::memcpy(buf.data() + at + sizeof h, words,
                std::size_t{h.payload_words} * sizeof(std::int64_t));
}

// Nonblocking flush of `buf`'s prefix; keeps the unsent suffix.
void flush_bytes(int fd, std::vector<std::uint8_t>& buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    ssize_t k = ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (k <= 0) break;  // EAGAIN or peer issue: retry on a later pump
    off += static_cast<std::size_t>(k);
  }
  if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<long>(off));
}

// Pops complete frames off the front of a partial stream buffer.
bool take_frame(std::vector<std::uint8_t>& buf, Frame& out) {
  if (buf.size() < sizeof(WireHeader)) return false;
  WireHeader h;
  std::memcpy(&h, buf.data(), sizeof h);
  const std::size_t need = frame_bytes(h);
  if (buf.size() < need) return false;
  out.header = h;
  if (h.payload_words > 0) {
    std::vector<std::int64_t> words(h.payload_words);
    std::memcpy(words.data(), buf.data() + sizeof h,
                words.size() * sizeof(std::int64_t));
    out.payload = sim::Payload(words);
  } else {
    out.payload = {};
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<long>(need));
  return true;
}

}  // namespace

TcpTransport::TcpTransport(int process_count, Options opts)
    : n_(process_count), opts_(opts), eps_(static_cast<std::size_t>(n_)) {
  GAM_EXPECTS(n_ > 0 && n_ < 32768);
  for (auto& ep : eps_) {
    ep.out.resize(static_cast<std::size_t>(n_));
    ep.in.resize(static_cast<std::size_t>(n_));
    ep.epoll_fd = ::epoll_create1(0);
    GAM_EXPECTS(ep.epoll_fd >= 0);
  }

  // Listeners (ephemeral ports on loopback), then the connect/accept mesh.
  std::vector<int> listeners(static_cast<std::size_t>(n_), -1);
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(n_), 0);
  for (int p = 0; p < n_; ++p) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    GAM_EXPECTS(fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    GAM_EXPECTS(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
                0);
    GAM_EXPECTS(::listen(fd, n_) == 0);
    socklen_t len = sizeof addr;
    GAM_EXPECTS(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
                0);
    listeners[static_cast<std::size_t>(p)] = fd;
    ports[static_cast<std::size_t>(p)] = ntohs(addr.sin_port);
  }

  // Every src connects to every dst's listener and announces itself with a
  // two-byte hello. Blocking sockets during setup; loopback connects complete
  // against the listen backlog without a concurrent accept.
  // The diagonal (s == d) is a real loopback connection too: protocol
  // broadcasts include the sender, so every process has a self-link.
  for (int s = 0; s < n_; ++s) {
    for (int d = 0; d < n_; ++d) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      GAM_EXPECTS(fd >= 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports[static_cast<std::size_t>(d)]);
      GAM_EXPECTS(
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0);
      std::uint16_t hello = static_cast<std::uint16_t>(s);
      GAM_EXPECTS(::send(fd, &hello, sizeof hello, MSG_NOSIGNAL) ==
                  sizeof hello);
      eps_[static_cast<std::size_t>(s)].out[static_cast<std::size_t>(d)].fd =
          fd;
    }
  }
  for (int d = 0; d < n_; ++d) {
    for (int k = 0; k < n_; ++k) {
      int fd = ::accept(listeners[static_cast<std::size_t>(d)], nullptr,
                        nullptr);
      GAM_EXPECTS(fd >= 0);
      std::uint16_t hello = 0;
      GAM_EXPECTS(::recv(fd, &hello, sizeof hello, MSG_WAITALL) ==
                  sizeof hello);
      GAM_EXPECTS(hello < static_cast<std::uint16_t>(n_));
      eps_[static_cast<std::size_t>(d)].in[hello].fd = fd;
    }
    ::close(listeners[static_cast<std::size_t>(d)]);
  }

  // Switch the mesh to nonblocking and register every fd with its owner's
  // epoll instance (reads only; writes are flushed opportunistically).
  for (int p = 0; p < n_; ++p) {
    Endpoint& ep = eps_[static_cast<std::size_t>(p)];
    for (int q = 0; q < n_; ++q) {
      for (int fd : {ep.out[static_cast<std::size_t>(q)].fd,
                     ep.in[static_cast<std::size_t>(q)].fd}) {
        if (fd < 0) continue;
        set_nonblocking(fd);
        set_nodelay(fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        GAM_EXPECTS(::epoll_ctl(ep.epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0);
      }
    }
  }
}

TcpTransport::~TcpTransport() {
  for (auto& ep : eps_) {
    for (auto& l : ep.out)
      if (l.fd >= 0) ::close(l.fd);
    for (auto& l : ep.in)
      if (l.fd >= 0) ::close(l.fd);
    if (ep.epoll_fd >= 0) ::close(ep.epoll_fd);
  }
}

bool TcpTransport::try_send(ProcessId src, ProcessId dst, const WireHeader& h,
                            const sim::Payload& payload) {
  GAM_EXPECTS(src >= 0 && src < n_ && dst >= 0 && dst < n_);
  OutLink& l =
      eps_[static_cast<std::size_t>(src)].out[static_cast<std::size_t>(dst)];
  if (opts_.window > 0 && l.sent - l.credited >= opts_.window) return false;
  append_frame(l.out, h, payload.data());
  ++l.sent;
  flush_bytes(l.fd, l.out);
  return true;
}

void TcpTransport::queue_credit(InLink& l, ProcessId self, ProcessId peer) {
  if (l.uncredited == 0) return;
  WireHeader credit = make_header(l.uncredited, self, peer, 0, 0, 0, 0,
                                  kFrameCredit);
  l.uncredited = 0;
  append_frame(l.out, credit, nullptr);
  flush_bytes(l.fd, l.out);
}

void TcpTransport::drain_fd(ProcessId self, int fd) {
  Endpoint& ep = eps_[static_cast<std::size_t>(self)];
  for (int q = 0; q < n_; ++q) {
    OutLink& ol = ep.out[static_cast<std::size_t>(q)];
    InLink& il = ep.in[static_cast<std::size_t>(q)];
    std::vector<std::uint8_t>* buf = nullptr;
    bool inbound_data = false;
    if (ol.fd == fd) {
      buf = &ol.in;  // credits flow back on the outbound connection
    } else if (il.fd == fd) {
      buf = &il.in;
      inbound_data = true;
    } else {
      continue;
    }
    std::uint8_t chunk[4096];
    while (true) {
      ssize_t k = ::recv(fd, chunk, sizeof chunk, 0);
      if (k <= 0) break;
      buf->insert(buf->end(), chunk, chunk + k);
    }
    Frame f;
    while (take_frame(*buf, f)) {
      if (f.header.flags == kFrameCredit) {
        // A credit's msg_id carries the consumed-frame count.
        ol.credited += f.header.msg_id;
      } else if (inbound_data) {
        il.pending.push_back(std::move(f));
      }
    }
    return;
  }
}

void TcpTransport::flush_buffers(Endpoint& ep) {
  for (auto& l : ep.out)
    if (l.fd >= 0 && !l.out.empty()) flush_bytes(l.fd, l.out);
  for (auto& l : ep.in)
    if (l.fd >= 0 && !l.out.empty()) flush_bytes(l.fd, l.out);
}

void TcpTransport::pump(ProcessId self) {
  Endpoint& ep = eps_[static_cast<std::size_t>(self)];
  epoll_event evs[32];
  int k = ::epoll_wait(ep.epoll_fd, evs, 32, 0);
  for (int i = 0; i < k; ++i)
    if (evs[i].events & EPOLLIN) drain_fd(self, evs[i].data.fd);
  flush_buffers(ep);
}

std::optional<Frame> TcpTransport::poll(ProcessId self) {
  Endpoint& ep = eps_[static_cast<std::size_t>(self)];
  for (int i = 0; i < n_; ++i) {
    const int s = (ep.rr + i) % n_;
    InLink& l = ep.in[static_cast<std::size_t>(s)];
    if (l.fd < 0 || l.pending.empty()) continue;
    Frame f = std::move(l.pending.front());
    l.pending.pop_front();
    ++l.uncredited;
    queue_credit(l, self, s);
    ep.rr = (s + 1) % n_;
    return f;
  }
  return std::nullopt;
}

bool TcpTransport::idle(ProcessId self) {
  const Endpoint& ep = eps_[static_cast<std::size_t>(self)];
  for (const auto& l : ep.in)
    if (!l.pending.empty() || !l.in.empty()) return false;
  return true;
}

}  // namespace gam::net
