// Single-producer/single-consumer byte ring carrying wire frames — the hot
// path of the in-process transport.
//
// Layout follows the classic SPSC design (Derecho's SMC rings are the model):
// a power-of-two byte buffer with free-running head (consumed) and tail
// (produced) indices. Each side owns one index and keeps a *cached* copy of
// the other, refreshed from the shared atomic only when the cached value says
// the operation cannot proceed — so in steady state a push or pop touches no
// cache line the other core is writing. Indices never wrap modulo the
// capacity (they are 64-bit byte counts; the mask is applied at access), so
// full/empty never ambiguate.
//
// Frames are contiguous header+payload byte spans, copied with at most two
// memcpys on wraparound. The ring additionally counts whole frames pushed and
// popped (relaxed atomics) so the transport can enforce the bounded in-flight
// window — the same window_size flow-control semantics the simulator's
// pipelined UniversalLog window uses — without parsing the ring contents.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "net/wire.hpp"
#include "util/contracts.hpp"

namespace gam::net {

class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_bytes)
      : buf_(std::bit_ceil(capacity_bytes < 256 ? 256 : capacity_bytes)),
        mask_(buf_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return buf_.size(); }

  // Producer side. False when the ring lacks space for the whole frame (the
  // caller retries later — frames are never split across attempts).
  bool try_push(const WireHeader& h, const std::int64_t* words) {
    const std::size_t need = frame_bytes(h);
    if (need > buf_.size()) return false;  // can never fit
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (buf_.size() - static_cast<std::size_t>(tail - cached_head_) < need) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (buf_.size() - static_cast<std::size_t>(tail - cached_head_) < need)
        return false;
    }
    write_at(tail, &h, sizeof h);
    if (h.payload_words > 0)
      write_at(tail + sizeof h, words,
               std::size_t{h.payload_words} * sizeof(std::int64_t));
    tail_.store(tail + need, std::memory_order_release);
    frames_pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Consumer side. False when the ring is empty.
  bool try_pop(Frame& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    read_at(head, &out.header, sizeof out.header);
    const std::size_t nw = out.header.payload_words;
    if (nw > 0) {
      scratch_.resize(nw);
      read_at(head + sizeof out.header, scratch_.data(),
              nw * sizeof(std::int64_t));
      out.payload = sim::Payload(scratch_);
    } else {
      out.payload = {};
    }
    head_.store(head + frame_bytes(out.header), std::memory_order_release);
    frames_popped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Whole frames pushed but not yet popped — what the transport's bounded
  // window counts. Callable from either side (relaxed reads; the window is a
  // throttle, not a synchronization point).
  std::uint64_t in_flight() const {
    std::uint64_t pushed = frames_pushed_.load(std::memory_order_relaxed);
    std::uint64_t popped = frames_popped_.load(std::memory_order_relaxed);
    return pushed >= popped ? pushed - popped : 0;
  }

 private:
  void write_at(std::uint64_t pos, const void* src, std::size_t n) {
    const std::size_t at = static_cast<std::size_t>(pos) & mask_;
    const std::size_t first = std::min(n, buf_.size() - at);
    std::memcpy(buf_.data() + at, src, first);
    if (first < n)
      std::memcpy(buf_.data(), static_cast<const std::uint8_t*>(src) + first,
                  n - first);
  }

  void read_at(std::uint64_t pos, void* dst, std::size_t n) {
    const std::size_t at = static_cast<std::size_t>(pos) & mask_;
    const std::size_t first = std::min(n, buf_.size() - at);
    std::memcpy(dst, buf_.data() + at, first);
    if (first < n)
      std::memcpy(static_cast<std::uint8_t*>(dst) + first, buf_.data(),
                  n - first);
  }

  std::vector<std::uint8_t> buf_;
  std::size_t mask_;

  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer-owned
  alignas(64) std::uint64_t cached_head_ = 0;       // producer's view of head_
  alignas(64) std::uint64_t cached_tail_ = 0;       // consumer's view of tail_

  std::atomic<std::uint64_t> frames_pushed_{0};
  std::atomic<std::uint64_t> frames_popped_{0};

  std::vector<std::int64_t> scratch_;  // consumer-only payload staging
};

}  // namespace gam::net
