// Baseline atomic-multicast protocols the paper positions against (§1, §7).
//
//   BroadcastMulticast  — the non-genuine strawman: one system-wide atomic
//                         broadcast; every process handles every message and
//                         delivers the addressed ones. Correct, ordered, and
//                         deliberately *not* minimal (§2.3): it exists to
//                         regenerate the scaling claims of [33, 37].
//   SkeenMulticast      — the classical failure-free timestamping protocol
//                         [5, 22] over the message-passing simulator:
//                         senders gather logical-clock proposals from the
//                         destination members and finalize at the maximum;
//                         members deliver in timestamp order. Breaks (blocks
//                         or mis-orders) under crashes — which is the point.
//   PartitionedMulticast — the "disjoint decomposition" family of solutions
//                         (e.g. [32, 17, 21, 10, 31, 13]): destination groups
//                         are unions of disjoint partitions, each assumed to
//                         behave as a logically correct entity. When a
//                         partition dies entirely, messages needing it block
//                         forever; Algorithm 1 instead keeps delivering via γ
//                         (experiment E7 in DESIGN.md).
//   PerfectFdMulticast  — Schiper & Pedone [36]: genuine multicast from a
//                         perfect failure detector. Our §6.1 strict variant
//                         with lag-0 indicators *is* this algorithm
//                         generalized, so the preset simply configures it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/options.hpp"
#include "amcast/types.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace gam::amcast {

// Shared probe state for the baseline protocols: multicast stamps for the
// delivery-latency histograms plus per-process step/message attribution for
// the genuineness ledger. Live only while a registry is attached.
struct BaselineProbe {
  sim::Metrics* reg = nullptr;
  std::map<MsgId, sim::Time> mcast_time;
  std::vector<std::uint64_t> steps;    // per process
  std::vector<std::uint64_t> handled;  // per process: protocol messages handled
};

// ---- non-genuine broadcast-based multicast -----------------------------------

class BroadcastMulticast {
 public:
  using Options = ProtocolOptions;  // consumes seed / max_steps

  BroadcastMulticast(const groups::GroupSystem& system,
                     const sim::FailurePattern& pattern, Options options);

  void submit(MulticastMessage m);
  RunRecord run();

  // Caller-owned registry; attach before run(). The broadcast strawman's
  // ledger is the interesting one: every process pays a step (and handles a
  // message) for every broadcast entry, so non-addressee activity is
  // structurally non-zero on disjoint workloads — the anti-genuineness
  // witness the Figure-1 experiments plot against Algorithm 1.
  void set_metrics(sim::Metrics* m);

 private:
  bool step_process(ProcessId p);
  BaselineProbe probe_;

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  Options options_;
  Rng rng_;
  sim::Time now_ = 0;

  std::vector<MulticastMessage> workload_;
  std::map<MsgId, MulticastMessage> by_id_;
  std::vector<MsgId> global_log_;          // the system-wide broadcast order
  std::set<MsgId> in_log_;                 // members of global_log_, O(log n)
  std::vector<size_t> cursor_;             // per process: next log index
  std::vector<size_t> next_own_;           // per process: next own workload idx
  std::vector<std::int64_t> local_seq_;
  RunRecord record_;
};

// ---- Skeen's protocol (failure-free) -----------------------------------------

class SkeenMulticast {
 public:
  using Options = ProtocolOptions;  // consumes seed / max_steps

  SkeenMulticast(const groups::GroupSystem& system,
                 const sim::FailurePattern& pattern, Options options);

  void submit(MulticastMessage m);
  RunRecord run();

  // Total messages exchanged (protocol cost; benches report it).
  std::uint64_t wire_messages() const { return wire_messages_; }

  // Same series as BroadcastMulticast (Skeen is genuine; its ledger is zero).
  void set_metrics(sim::Metrics* m);

 private:
  BaselineProbe probe_;
  struct PerMessage {
    std::map<ProcessId, std::int64_t> proposals;
    std::int64_t final_ts = -1;
    bool sent = false;
  };
  struct PerProcess {
    std::int64_t clock = 0;
    // Holdback: msg -> (timestamp, finalized?)
    std::map<MsgId, std::pair<std::int64_t, bool>> pending;
    std::set<MsgId> delivered;
    std::int64_t seq = 0;
  };

  bool step_sender(const MulticastMessage& m);
  int try_deliver(ProcessId p);

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  Options options_;
  Rng rng_;
  sim::Time now_ = 0;
  std::uint64_t wire_messages_ = 0;

  std::vector<MulticastMessage> workload_;
  std::map<MsgId, MulticastMessage> by_id_;
  std::map<MsgId, PerMessage> state_;
  std::vector<PerProcess> procs_;
  RunRecord record_;
};

// ---- partitioned solutions ----------------------------------------------------

class PartitionedMulticast {
 public:
  using Options = ProtocolOptions;  // consumes seed / max_steps

  // `partitions` must be pairwise disjoint and every destination group must
  // be a union of them (the standard decomposability assumption, §7).
  PartitionedMulticast(const groups::GroupSystem& system,
                       const sim::FailurePattern& pattern,
                       std::vector<ProcessSet> partitions, Options options);

  void submit(MulticastMessage m);
  RunRecord run();

  // Messages that blocked because a required partition is entirely crashed.
  const std::vector<MsgId>& blocked() const { return blocked_; }

  // The finest valid decomposition of a group system: the equivalence classes
  // of "member of exactly the same groups".
  static std::vector<ProcessSet> finest_partitions(
      const groups::GroupSystem& system);

 private:
  struct PerPartition {
    std::int64_t clock = 0;
  };
  struct PerMessage {
    std::map<int, std::int64_t> proposals;  // partition -> proposed ts
    std::int64_t final_ts = -1;
  };
  struct PerProcess {
    std::map<MsgId, std::pair<std::int64_t, bool>> pending;
    std::int64_t seq = 0;
  };

  std::vector<int> partitions_of_group(groups::GroupId g) const;
  bool partition_alive(int part) const;

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  std::vector<ProcessSet> partitions_;
  Options options_;
  Rng rng_;
  sim::Time now_ = 0;

  std::vector<MulticastMessage> workload_;
  std::map<MsgId, MulticastMessage> by_id_;
  std::map<MsgId, PerMessage> state_;
  std::vector<PerPartition> parts_;
  std::vector<PerProcess> procs_;
  std::vector<MsgId> blocked_;
  RunRecord record_;
};

// ---- [36]: genuine multicast from a perfect failure detector -----------------

// The §6.1 strict solution instantiated with exact (lag-0) indicators is the
// generalization of Schiper & Pedone's perfect-failure-detector algorithm;
// this preset makes the relationship explicit for the Table 1 harness.
inline MuMulticast::Options perfect_fd_options(std::uint64_t seed) {
  MuMulticast::Options opt;
  opt.seed = seed;
  opt.strict = true;
  opt.fd_lag = 0;
  return opt;
}

}  // namespace gam::amcast
