// Genuine atomic multicast over the *message-passing* object layer.
//
// Algorithm 1's shared objects are implementable from μ (§4.3): per-group
// logs via the universal construction on Ω_g ∧ Σ_g. This engine closes that
// loop end-to-end for the topologies where per-group ordering suffices —
// pairwise-disjoint destination groups (the embarrassingly-parallel workload
// of §2.3) and the single-group case (atomic broadcast): every group runs a
// UniversalLog among exactly its members inside a simulated network, and a
// message is delivered at a member when it enters the learned prefix of the
// group's log.
//
// Genuineness falls out of the scoping: the log of g exchanges messages among
// g only, so a process with no addressed message never sends or receives
// anything. The intersecting-group cases need Algorithm 1's cross-log
// machinery on top (src/amcast/mu_multicast.hpp); DESIGN.md discusses the
// split.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "amcast/options.hpp"
#include "amcast/types.hpp"
#include "fd/detectors.hpp"
#include "groups/group_system.hpp"
#include "objects/protocol_host.hpp"
#include "objects/universal_log.hpp"
#include "sim/run_spec.hpp"
#include "sim/world.hpp"

namespace gam::amcast {

class ReplicatedMulticast {
 public:
  // Shared options (amcast/options.hpp): consumes seed / max_steps /
  // scheduler, plus batch_k / window_size forwarded to each group's
  // UniversalLog (see universal_log.hpp); 1/1 is the legacy wire behavior.
  using Options = ProtocolOptions;

  // Group g's log (and its deliver events) runs at protocol id
  // kTraceBase + g in the world's wire/trace id space. 100 is the historical
  // world-trace numbering; the golden trace hashes pin it.
  static constexpr sim::ProtocolId kTraceBase = sim::protocol_id(100);

  // Requires pairwise-disjoint destination groups.
  ReplicatedMulticast(const groups::GroupSystem& system,
                      const sim::FailurePattern& pattern, Options options);

  void submit(MulticastMessage m);
  RunRecord run();

  // Wire cost of the run (benches / tests).
  std::uint64_t messages_sent() const;

  sim::World& world() { return scenario_->world(); }

  // Caller-owned registry: wires the World's buffer/FD probes plus per-group
  // delivery-latency histograms and the genuineness ledger computed from the
  // world's per-process wire stats. Attach before run().
  void set_metrics(sim::Metrics* m);

 private:
  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  Options options_;

  std::unique_ptr<sim::Scenario> scenario_;  // owns the World + scheduler
  sim::World* world_ = nullptr;
  std::vector<objects::ProtocolHost*> hosts_;
  // Detector components per group (the μ pieces this configuration needs).
  std::vector<std::unique_ptr<fd::SigmaOracle>> sigmas_;
  std::vector<std::unique_ptr<fd::OmegaOracle>> omegas_;
  // logs_[g][member-index] — one replica per group member.
  std::map<groups::GroupId,
           std::vector<std::shared_ptr<objects::UniversalLog>>>
      logs_;
  std::map<groups::GroupId, std::vector<ProcessId>> members_;

  std::vector<MulticastMessage> workload_;
  std::vector<std::int64_t> local_seq_;
  RunRecord record_;
  sim::Metrics* metrics_ = nullptr;
};

}  // namespace gam::amcast
