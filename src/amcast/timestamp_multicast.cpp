#include "amcast/timestamp_multicast.hpp"

#include <algorithm>

#include "amcast/baselines.hpp"  // PartitionedMulticast::finest_partitions

namespace gam::amcast {

namespace {
// Agent wire types. kTsReq carries [msg]; kTs carries [msg, partition, ts].
constexpr sim::MsgType kTsReq{1};
constexpr sim::MsgType kTs{2};
}  // namespace

// The per-process endpoint. All protocol state lives in the parent (the
// engine is a closed-world simulation study, not a deployment), so the agent
// is just the wire adapter: decode incoming messages into parent handlers and
// flush the outbox that log-apply callbacks fill (those callbacks run inside
// the log's step and have no Context to send from; the queued announcements
// go out on this process's next idle step, costing the same
// one-step-per-send the paper's model charges).
class TimestampMulticast::Agent final : public objects::SubProtocol {
 public:
  Agent(TimestampMulticast* parent, ProcessId self, sim::ProtocolId wire_id)
      : parent_(parent), self_(self), wire_id_(wire_id) {}

  void on_message(sim::Context& ctx, const sim::Message& m) override {
    (void)ctx;
    if (m.type == sim::raw(kTsReq)) {
      parent_->handle_ts_req(self_, m.data[0]);
    } else if (m.type == sim::raw(kTs)) {
      parent_->note_ts(self_, m.data[0], static_cast<int>(m.data[1]),
                       m.data[2]);
    }
  }

  bool on_idle(sim::Context& ctx) override {
    auto& outbox = parent_->procs_[static_cast<size_t>(self_)].outbox;
    if (outbox.empty()) return false;
    while (!outbox.empty()) {
      Outgoing o = outbox.front();
      outbox.pop_front();
      if (o.type == kTsReq)
        ctx.send(o.dst, wire_id_, o.type, {o.a});
      else
        ctx.send(o.dst, wire_id_, o.type, {o.a, o.b, o.c});
    }
    return true;
  }

  bool wants_step() const override {
    return !parent_->procs_[static_cast<size_t>(self_)].outbox.empty();
  }

 private:
  TimestampMulticast* parent_;
  ProcessId self_;
  sim::ProtocolId wire_id_;
};

TimestampMulticast::TimestampMulticast(const groups::GroupSystem& system,
                                       const sim::FailurePattern& pattern,
                                       ProtocolOptions options,
                                       bool conflict_aware,
                                       sim::ProtocolId trace_base)
    : system_(system),
      pattern_(pattern),
      options_(options),
      conflict_aware_(conflict_aware),
      trace_base_(trace_base),
      partitions_(PartitionedMulticast::finest_partitions(system)),
      part_of_(static_cast<size_t>(system.process_count()), -1),
      procs_(static_cast<size_t>(system.process_count())) {
  for (size_t i = 0; i < partitions_.size(); ++i)
    for (ProcessId p : partitions_[i]) part_of_[static_cast<size_t>(p)] =
        static_cast<int>(i);

  scenario_ = std::make_unique<sim::Scenario>(sim::RunSpec{}
                                                  .groups(system)
                                                  .failures(pattern)
                                                  .seed(options_.seed)
                                                  .max_steps(options_.max_steps)
                                                  .scheduler(options_.scheduler));
  world_ = &scenario_->world();
  hosts_ = objects::install_hosts(*world_);
  logs_.resize(static_cast<size_t>(system.process_count()));

  const sim::ProtocolId wire_id = trace_base_ + kWireOffset;
  for (size_t i = 0; i < partitions_.size(); ++i) {
    ProcessSet scope = partitions_[i];
    sigmas_.push_back(std::make_unique<fd::SigmaOracle>(pattern_, scope));
    omegas_.push_back(std::make_unique<fd::OmegaOracle>(pattern_, scope));
    const sim::ProtocolId log_id =
        trace_base_ + (kWireOffset + 1 + static_cast<std::int32_t>(i));
    const int part = static_cast<int>(i);
    for (ProcessId p : scope) {
      auto log = std::make_shared<objects::UniversalLog>(
          log_id, p, scope, *sigmas_.back(), *omegas_.back(),
          options_.batch_k, options_.window_size);
      log->set_on_learn([this, p, part](std::int64_t op, std::int64_t) {
        on_log_apply(p, part, op);
      });
      hosts_[static_cast<size_t>(p)]->add(log_id, log);
      logs_[static_cast<size_t>(p)] = log;
    }
  }
  for (ProcessId p = 0; p < system.process_count(); ++p) {
    auto agent = std::make_shared<Agent>(this, p, wire_id);
    agents_.push_back(agent.get());
    hosts_[static_cast<size_t>(p)]->add(wire_id, agent);
  }
}

void TimestampMulticast::submit(const MulticastMessage& m) {
  GAM_EXPECTS(m.id >= 0);  // the op encoding reserves negatives for BUMP
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));
  workload_.push_back(m);
}

void TimestampMulticast::set_metrics(sim::Metrics* m) {
  metrics_ = m;
  world_->set_metrics(m);
}

void TimestampMulticast::set_event_sink(sim::TraceSink* sink) {
  world_->set_trace_sink(sink);
}

void TimestampMulticast::originate(const MulticastMessage& m) {
  MsgInfo info;
  info.m = m;
  info.members = system_.group(m.dst);
  for (size_t i = 0; i < partitions_.size(); ++i)
    if (!(partitions_[i] & info.members).empty())
      info.cover.push_back(static_cast<int>(i));
  info_[m.id] = std::move(info);
  record_.multicast.push_back(m);
  record_.multicast_time.push_back(0);
  auto& pp = procs_[static_cast<size_t>(m.src)];
  for (ProcessId q : info_[m.id].members)
    if (q != m.src) pp.outbox.push_back({q, kTsReq, m.id, 0, 0});
  handle_ts_req(m.src, m.id);
}

void TimestampMulticast::handle_ts_req(ProcessId p, MsgId id) {
  auto& pp = procs_[static_cast<size_t>(p)];
  // At most one submission per replica, and never after the op is already in
  // the local learned prefix: the log resolves a pending entry only when its
  // op first enters the prefix, so a post-learn submit would pend forever and
  // the run would never quiesce.
  if (pp.submitted.count(id) || pp.local_ts.count(id)) return;
  GAM_EXPECTS(part_of_[static_cast<size_t>(p)] >= 0);
  pp.submitted.insert(id);
  logs_[static_cast<size_t>(p)]->submit(id, nullptr);
}

void TimestampMulticast::on_log_apply(ProcessId p, int part, std::int64_t op) {
  auto& pp = procs_[static_cast<size_t>(p)];
  if (op < 0) {  // BUMP(T)
    pp.clock = std::max(pp.clock, -op - 1);
    try_deliver(p);
    return;
  }
  // TS-REQ: this partition's timestamp proposal for op is the next clock
  // tick. Announce (partition, ts) to every destination member; the local
  // copy short-circuits the wire.
  const std::int64_t ts = ++pp.clock;
  pp.local_ts[op] = ts;
  pp.applied.insert(op);
  const MsgInfo& info = info_.at(op);
  for (ProcessId q : info.members)
    if (q != p) pp.outbox.push_back({q, kTs, op, part, ts});
  note_ts(p, op, part, ts);
}

void TimestampMulticast::note_ts(ProcessId p, MsgId id, int part,
                                 std::int64_t ts) {
  // A timestamp announcement doubles as retransmission of the request: a
  // member that missed the sender's fan-out (say the sender crashed mid-send)
  // still funnels the op into its partition once any partition ordered it.
  handle_ts_req(p, id);
  auto& pp = procs_[static_cast<size_t>(p)];
  if (!pp.ts_seen[id].emplace(part, ts).second) return;  // duplicate
  const MsgInfo& info = info_.at(id);
  if (pp.ts_seen[id].size() == info.cover.size() && !pp.final_ts.count(id)) {
    std::int64_t f = 0;
    for (const auto& [pt, t] : pp.ts_seen[id]) f = std::max(f, t);
    pp.final_ts[id] = f;
    // Keep the local clock ahead of everything finalized, so new local
    // timestamps can never slot below a message already cleared for delivery.
    if (f > pp.clock && pp.bumps.insert(f).second)
      logs_[static_cast<size_t>(p)]->submit(bump_op(f), nullptr);
  }
  try_deliver(p);
}

bool TimestampMulticast::conflicts(MsgId a, MsgId b) const {
  if (!conflict_aware_) return true;
  return info_.at(a).m.conflict_class == info_.at(b).m.conflict_class;
}

void TimestampMulticast::try_deliver(ProcessId p) {
  auto& pp = procs_[static_cast<size_t>(p)];
  for (;;) {
    MsgId best = -1;
    for (MsgId id : pp.applied) {
      auto fit = pp.final_ts.find(id);
      if (fit == pp.final_ts.end()) continue;   // final ts still unknown
      if (pp.clock < fit->second) continue;     // clock must catch up first
      const std::pair<std::int64_t, MsgId> key{fit->second, id};
      // Minimal among the conflicting pending messages: a pending message
      // without a final timestamp counts at its local proposal, a lower
      // bound on its final (max over partitions only grows).
      bool minimal = true;
      for (MsgId other : pp.applied) {
        if (other == id || !conflicts(id, other)) continue;
        auto oit = pp.final_ts.find(other);
        const std::int64_t lb =
            oit != pp.final_ts.end() ? oit->second : pp.local_ts.at(other);
        if (std::pair<std::int64_t, MsgId>{lb, other} < key) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        best = id;
        break;
      }
    }
    if (best < 0) return;
    deliver(p, best);
  }
}

void TimestampMulticast::deliver(ProcessId p, MsgId id) {
  auto& pp = procs_[static_cast<size_t>(p)];
  pp.applied.erase(id);
  pp.delivered.insert(id);
  const MsgInfo& info = info_.at(id);
  const std::int64_t seq = pp.seq++;
  record_.deliveries.push_back({p, id, world_->now(), seq});
  // Submissions all happen at t=0, so latency == the delivery instant.
  GAM_METRICS_PROBE(
      if (metrics_) metrics_
          ->histogram("deliver_latency", "g" + std::to_string(info.m.dst))
          .record(world_->now()));
  world_->trace_deliver(p, trace_base_ + info.m.dst, id, seq);
}

RunRecord TimestampMulticast::run() {
  for (const MulticastMessage& m : workload_) {
    if (pattern_.crashed(m.src, 0)) continue;  // never got to call multicast
    originate(m);
  }
  record_.quiescent = world_->run_until_quiescent(options_.max_steps);
  for (ProcessId p = 0; p < system_.process_count(); ++p) {
    record_.steps += world_->stats(p).steps;
    if (world_->stats(p).steps > 0) record_.active.insert(p);
  }
  // Genuineness ledger, exactly as in ReplicatedMulticast: steps/messages by
  // processes no issued message was addressed to must be zero — every log and
  // every announcement is scoped inside some destination group.
  GAM_METRICS_PROBE(if (metrics_) {
    ProcessSet addressed;
    for (const auto& m : record_.multicast) addressed |= system_.group(m.dst);
    std::uint64_t steps_outside = 0, msgs_outside = 0;
    for (ProcessId p = 0; p < system_.process_count(); ++p) {
      if (addressed.contains(p)) continue;
      steps_outside += world_->stats(p).steps;
      msgs_outside += world_->stats(p).messages_sent;
    }
    metrics_->gauge("non_addressee_steps")
        .set(static_cast<std::int64_t>(steps_outside));
    metrics_->gauge("non_addressee_processes")
        .set((record_.active - addressed).size());
    metrics_->gauge("non_addressee_messages")
        .set(static_cast<std::int64_t>(msgs_outside));
  });
  return record_;
}

std::uint64_t TimestampMulticast::wire_messages() const {
  std::uint64_t n = 0;
  for (ProcessId p = 0; p < system_.process_count(); ++p)
    n += world_->stats(p).messages_sent;
  return n;
}

}  // namespace gam::amcast
