// Checkable specification of atomic multicast and its variations (paper §2,
// §6): Integrity, Termination, Ordering, Minimality (genuineness), Strict
// Ordering and Pairwise Ordering, evaluated on a finished RunRecord.
#pragma once

#include <string>
#include <vector>

#include "amcast/types.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"

namespace gam::amcast {

struct SpecResult {
  bool ok = true;
  std::string error;

  void fail(std::string msg) {
    if (ok) error = std::move(msg);
    ok = false;
  }
};

// (Integrity) every process delivers a message at most once, only if it
// belongs to the destination group, and only if the message was multicast.
SpecResult check_integrity(const RunRecord& run,
                           const groups::GroupSystem& system);

// (Termination) every message multicast by a correct process, or delivered by
// any process, is delivered by every correct member of its destination group.
// Requires the run to be quiescent (the finite stand-in for "eventually").
SpecResult check_termination(const RunRecord& run,
                             const groups::GroupSystem& system,
                             const sim::FailurePattern& pattern);

// (Ordering) the delivery relation ↦ — m ↦ m' when some p in both destination
// groups delivers m without having delivered m' before — is acyclic.
SpecResult check_ordering(const RunRecord& run,
                          const groups::GroupSystem& system);

// (Minimality / genuineness) only processes addressed by some multicast
// message take protocol steps.
SpecResult check_minimality(const RunRecord& run,
                            const groups::GroupSystem& system);

// (Strict Ordering, §6.1) the transitive closure of ↦ ∪ ⤳ is a strict partial
// order, where m ⤳ m' when m is delivered in real time before m' is multicast.
SpecResult check_strict_ordering(const RunRecord& run,
                                 const groups::GroupSystem& system);

// (Pairwise Ordering, §7) if p delivers m then m', every q that delivers m'
// has delivered m before.
SpecResult check_pairwise_ordering(const RunRecord& run);

// Convenience: integrity + termination + ordering + minimality.
SpecResult check_all(const RunRecord& run, const groups::GroupSystem& system,
                     const sim::FailurePattern& pattern);

// The ↦ edges of a run (exposed for tests and benches).
std::vector<std::pair<MsgId, MsgId>> delivery_relation(
    const RunRecord& run, const groups::GroupSystem& system);

}  // namespace gam::amcast
