#include "amcast/mu_multicast.hpp"

#include <algorithm>

#include "sim/world.hpp"  // sim::Scheduler (run_with)

namespace gam::amcast {

using groups::GroupId;
using objects::LogEntry;

// Per-process protocol state: the PHASE map of line 4 (dense, indexed by the
// message's submission index) plus bookkeeping that keeps one-shot actions
// one-shot, plus the failure-detector memos of the incremental engine.
struct MuMulticast::PerProcess {
  std::vector<Phase> phase;  // workload_-indexed; grown by submit()
  std::int64_t delivered_seq = 0;
  // Cached F(p) material (the group system is immutable).
  std::vector<groups::FamilyMask> families;
  std::vector<groups::FamilyMask> cons_family;  // per group: H(p,g) as a mask

  // Wait-set memo: μ outputs are constant between transition times, so a
  // (process, group) wait set computed at version v is exact until the clock
  // crosses the next transition (fd_version() changes).
  struct WaitCache {
    std::uint64_t version = ~std::uint64_t{0};
    std::vector<GroupId> groups;
  };
  std::vector<WaitCache> gamma_memo;   // per group: γ(g) at this process
  std::vector<WaitCache> strict_memo;  // per group: §6.1 indicator wait set
};

MuMulticast::MuMulticast(const groups::GroupSystem& system,
                         const sim::FailurePattern& pattern, Options options)
    : system_(system),
      pattern_(pattern),
      options_(options),
      oracle_(system, pattern, options.fd_lag),
      rng_(options.seed) {
  GAM_EXPECTS(system.process_count() == pattern.process_count());
  GAM_EXPECTS(options_.batch_k >= 1 && options_.window_size >= 1);
  if (options_.strict) {
    // One indicator 1^{g∩h} per pair of intersecting groups (g = h gives
    // 1^g). Scope g∪h as in §6.1.
    for (GroupId g = 0; g < system_.group_count(); ++g)
      for (GroupId h = g; h < system_.group_count(); ++h) {
        ProcessSet inter = system_.intersection(g, h);
        if (inter.empty()) continue;
        indicators_.emplace_back(pattern_, inter,
                                 system_.group(g) | system_.group(h),
                                 options_.fd_lag);
      }
  }
  auto n = static_cast<size_t>(system.process_count());
  auto gc = static_cast<size_t>(system.group_count());
  procs_.resize(n);
  for (ProcessId p = 0; p < system.process_count(); ++p) {
    auto st = std::make_unique<PerProcess>();
    st->families = system_.families_of_process(p);
    st->cons_family.assign(gc, groups::FamilyMask{});
    for (GroupId g : system_.groups_of(p)) {
      groups::FamilyMask mask;
      for (GroupId h : system_.cyclic_neighbors(p, g)) mask.insert(h);
      st->cons_family[static_cast<size_t>(g)] = mask;
    }
    st->gamma_memo.resize(gc);
    st->strict_memo.resize(gc);
    procs_[static_cast<size_t>(p)] = std::move(st);
  }

  group_sequence_.resize(gc);

  // Every (g,h) log up front, flat-indexed by GroupPairIndex. The
  // map-on-demand scheme this replaces needed a shared mutable "empty log"
  // fallback; pre-creating all group_count^2 slots (cheap: empty Log
  // objects) keeps lookups branch-free and the engine thread-clean.
  pair_index_ = groups::GroupPairIndex(system_.group_count());
  logs_.reserve(static_cast<size_t>(pair_index_.size()));
  for (int idx = 0; idx < pair_index_.size(); ++idx)
    logs_.emplace_back(static_cast<std::int64_t>(idx),
                       options_.track_log_history);

  // The instants at which any guard input other than the logs and phases can
  // change: μ component transitions, the strict indicators, and the raw crash
  // predicate (read by the helping rule and by multicast_eligible).
  fd_transitions_ = oracle_.transition_times();
  for (ProcessId p = 0; p < pattern_.process_count(); ++p)
    if (pattern_.faulty(p)) fd_transitions_.push_back(pattern_.crash_time(p));
  for (const auto& ind : indicators_) {
    auto ts = ind.transition_times();
    fd_transitions_.insert(fd_transitions_.end(), ts.begin(), ts.end());
  }
  std::sort(fd_transitions_.begin(), fd_transitions_.end());
  fd_transitions_.erase(
      std::unique(fd_transitions_.begin(), fd_transitions_.end()),
      fd_transitions_.end());
  next_transition_ = static_cast<size_t>(
      std::upper_bound(fd_transitions_.begin(), fd_transitions_.end(), now_) -
      fd_transitions_.begin());

  dirty_.assign(n, 1);
  cached_.assign(n, ActionChoice{});
}

MuMulticast::~MuMulticast() = default;

// ---- metrics probes ----------------------------------------------------------

namespace {
std::string group_label(GroupId g) { return "g" + std::to_string(g); }
constexpr sim::Time kNoStamp = ~sim::Time{0};
}  // namespace

void MuMulticast::set_metrics(sim::Metrics* m) {
  probe_ = Probe{};
  probe_.reg = m;
  if (!m) return;
  probe_.fd_gamma = &m->counter("fd_query", "gamma");
  probe_.fd_sigma = &m->counter("fd_query", "sigma");
  probe_.fd_indicator = &m->counter("fd_query", "indicator");
  probe_.consensus = &m->counter("consensus_propose");
  probe_.batch_occ = &m->histogram("batch_occupancy");
  probe_.submit_time.assign(workload_.size(), kNoStamp);
  probe_.mcast_time.assign(workload_.size(), kNoStamp);
  probe_.stable_time.assign(
      static_cast<size_t>(system_.process_count()),
      std::vector<sim::Time>(workload_.size(), kNoStamp));
  probe_.steps.assign(static_cast<size_t>(system_.process_count()), 0);
}

// Lifecycle stamps at each phase transition; all series are in simulated
// steps relative to the multicast instant except convoy_wait, which measures
// the stable → deliver gap at the delivering process (the time a stable
// message sits behind undelivered <_L-predecessors — the convoy effect).
void MuMulticast::probe_execute(ProcessId p, const ActionChoice& c,
                                const MulticastMessage& m) {
  auto mi = static_cast<size_t>(c.mi);
  sim::Metrics& reg = *probe_.reg;
  switch (c.kind) {
    case ActionChoice::kMulticast: {
      probe_.mcast_time[mi] = now_;
      if (probe_.submit_time[mi] != kNoStamp)
        reg.histogram("multicast_wait")
            .record(now_ - probe_.submit_time[mi]);
      break;
    }
    case ActionChoice::kPending:
    case ActionChoice::kCommit: {
      if (probe_.mcast_time[mi] != kNoStamp)
        reg.histogram("phase_latency",
                      c.kind == ActionChoice::kPending ? "pending" : "commit")
            .record(now_ - probe_.mcast_time[mi]);
      break;
    }
    case ActionChoice::kStable: {
      probe_.stable_time[static_cast<size_t>(p)][mi] = now_;
      if (probe_.mcast_time[mi] != kNoStamp)
        reg.histogram("phase_latency", "stable")
            .record(now_ - probe_.mcast_time[mi]);
      break;
    }
    case ActionChoice::kDeliver: {
      if (probe_.mcast_time[mi] != kNoStamp)
        reg.histogram("deliver_latency", group_label(m.dst))
            .record(now_ - probe_.mcast_time[mi]);
      sim::Time st = probe_.stable_time[static_cast<size_t>(p)][mi];
      if (st != kNoStamp)
        reg.histogram("convoy_wait", group_label(m.dst)).record(now_ - st);
      break;
    }
    case ActionChoice::kStabilize:
    case ActionChoice::kNone:
      break;
  }
}

// End-of-run series: per-(g,h) log sizes and the genuineness ledger. A
// genuine protocol (Theorem: Algorithm 1) must show zero non-addressee
// activity — steps, processes, or messages attributable to processes outside
// ∪ dst(m) over the issued messages (the minimality property of spec.cpp).
void MuMulticast::flush_metrics() {
  sim::Metrics& reg = *probe_.reg;
  for (GroupId g = 0; g < system_.group_count(); ++g)
    for (GroupId h = g; h < system_.group_count(); ++h) {
      const objects::Log& l = logs_[log_index(g, h)];
      if (l.size() == 0) continue;
      reg.gauge("log_size", group_label(g) + "x" + std::to_string(h))
          .set(static_cast<std::int64_t>(l.size()));
    }

  ProcessSet addressed;
  for (const auto& m : record_.multicast) addressed |= system_.group(m.dst);
  ProcessSet active = record_.active | journal_.active();
  std::uint64_t steps_outside = 0;
  for (ProcessId p = 0; p < system_.process_count(); ++p)
    if (!addressed.contains(p)) steps_outside += probe_.steps[static_cast<size_t>(p)];
  reg.gauge("non_addressee_steps").set(static_cast<std::int64_t>(steps_outside));
  reg.gauge("non_addressee_processes").set((active - addressed).size());
  // Algorithm 1 exchanges no wire messages (all coordination is through the
  // shared objects), so its message ledger is identically zero; the
  // World-backed protocols fill this from their wire stats.
  reg.gauge("non_addressee_messages").set(0);
}

void MuMulticast::submit(MulticastMessage m) {
  GAM_EXPECTS(m.id >= 0 && !index_of_.count(m.id));
  GAM_EXPECTS(m.dst >= 0 && m.dst < system_.group_count());
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));  // closed dissemination
  auto mi = static_cast<std::int32_t>(workload_.size());
  workload_.push_back(m);
  index_of_.emplace(m.id, mi);
  // Keep by_msg_id_ ascending by id (append is the common case: workloads
  // are generated with increasing ids).
  auto pos = by_msg_id_.end();
  if (!by_msg_id_.empty() && workload_[static_cast<size_t>(
                                 by_msg_id_.back())].id > m.id)
    pos = std::upper_bound(by_msg_id_.begin(), by_msg_id_.end(), m.id,
                           [this](MsgId id, std::int32_t j) {
                             return id < workload_[static_cast<size_t>(j)].id;
                           });
  by_msg_id_.insert(pos, mi);
  group_sequence_[static_cast<size_t>(m.dst)].push_back(m.id);
  for (auto& st : procs_) st->phase.push_back(Phase::kStart);
  GAM_METRICS_PROBE(if (probe_.reg) {
    probe_.submit_time.push_back(now_);
    probe_.mcast_time.push_back(~sim::Time{0});
    for (auto& v : probe_.stable_time) v.push_back(~sim::Time{0});
  });
  GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
      {static_cast<std::uint64_t>(now_), m.src, sim::SpanKind::kSubmit, m.id,
       m.dst, 0}));
  // Only members of the destination group can gain an enabled multicast.
  mark_dirty(system_.group(m.dst));
}

std::size_t MuMulticast::log_index(GroupId g, GroupId h) const {
  return static_cast<size_t>(pair_index_.flat(g, h));
}

std::int64_t MuMulticast::journal_key(LogKey k) const {
  return pair_index_.key(k.first, k.second);
}

objects::Log& MuMulticast::log(GroupId g, GroupId h) {
  return logs_[log_index(g, h)];
}

const objects::Log& MuMulticast::log_of(GroupId g, GroupId h) const {
  return logs_[log_index(g, h)];
}

std::string MuMulticast::validate_log_invariants() const {
  for (GroupId g = 0; g < system_.group_count(); ++g)
    for (GroupId h = g; h < system_.group_count(); ++h) {
      std::string err = logs_[log_index(g, h)].check_history();
      if (!err.empty())
        return "LOG(g" + std::to_string(g) + ",g" + std::to_string(h) +
               "): " + err;
    }
  return {};
}

Phase MuMulticast::phase_of(ProcessId p, MsgId m) const {
  auto it = index_of_.find(m);
  if (it == index_of_.end()) return Phase::kStart;
  return phase_at(p, it->second);
}

Phase MuMulticast::phase_at(ProcessId p, std::int32_t mi) const {
  return procs_[static_cast<size_t>(p)]->phase[static_cast<size_t>(mi)];
}

std::int32_t MuMulticast::index_of(MsgId m) const { return index_of_.at(m); }

// ---- incremental bookkeeping -------------------------------------------------

void MuMulticast::mark_dirty(ProcessSet ps) {
  for (ProcessId p : ps) dirty_[static_cast<size_t>(p)] = 1;
}

void MuMulticast::mark_all_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{1});
}

void MuMulticast::clock_crossed() {
  bool crossed = false;
  while (next_transition_ < fd_transitions_.size() &&
         fd_transitions_[next_transition_] <= now_) {
    ++next_transition_;
    crossed = true;
  }
  if (crossed) mark_all_dirty();
}

void MuMulticast::set_time(sim::Time t) {
  if (t == now_) return;
  bool backward = t < now_;
  now_ = t;
  if (backward) {
    // Re-derive the transition cursor; the version keying of the wait-set
    // memos stays exact (equal cursor == same inter-transition interval).
    next_transition_ = static_cast<size_t>(
        std::upper_bound(fd_transitions_.begin(), fd_transitions_.end(),
                         now_) -
        fd_transitions_.begin());
    mark_all_dirty();
  } else {
    clock_crossed();
  }
}

void MuMulticast::advance_time(sim::Time dt) { set_time(now_ + dt); }

// ---- preconditions -----------------------------------------------------------

bool MuMulticast::sigma_allows(ProcessId p, groups::GroupId g) const {
  if (!options_.sigma_gated) return true;
  GAM_METRICS_PROBE(if (probe_.fd_sigma) probe_.fd_sigma->add());
  auto q = oracle_.sigma(g, g).query(p, now_);
  return q && q->subset_of(options_.fair_set);
}

bool MuMulticast::may_multicast(ProcessId p, const MulticastMessage& m) const {
  if (m.src == p) return true;
  // Proposition 1's helping: a destination member may multicast on behalf of
  // a submitter that crashed before issuing the message.
  return options_.helping && system_.group(m.dst).contains(p) &&
         pattern_.crashed(m.src, now_);
}

bool MuMulticast::multicast_eligible(ProcessId by,
                                     const MulticastMessage& m) const {
  return multicast_eligible_batched(by, m, {});
}

bool MuMulticast::multicast_eligible_batched(
    ProcessId by, const MulticastMessage& m,
    const std::vector<MsgId>& batched) const {
  // Group-sequential issuance (§4.1), relaxed to a bounded in-flight window:
  // whoever multicasts the k-th message to g (its sender, or a Prop-1
  // helper) must have delivered every predecessor at submission distance
  // >= window_size; closer predecessors only need to have entered LOG_g,
  // which keeps appends in submission order while phases overlap
  // (Derecho-style pipelining). window_size = 1 is the strict §4.1 rule.
  // Entries already gathered into the current append batch count as entered.
  // Without helping, a predecessor whose sender crashed before multicasting
  // it is skipped — it will never enter the protocol; with helping it will,
  // so the issuer must wait for it.
  const auto& seq = group_sequence_[static_cast<size_t>(m.dst)];
  size_t j = 0;
  while (j < seq.size() && seq[j] != m.id) ++j;
  for (size_t i = 0; i < j; ++i) {
    MsgId prev = seq[i];
    std::int32_t pi = index_of(prev);
    bool entered = log_of(m.dst, m.dst).contains(LogEntry::message(prev)) ||
                   std::find(batched.begin(), batched.end(), prev) !=
                       batched.end();
    if (entered) {
      bool within = j - i < static_cast<size_t>(options_.window_size);
      if (!within && phase_at(by, pi) != Phase::kDeliver) return false;
    } else if (options_.helping) {
      return false;  // a helper will issue prev; wait for it
    } else {
      const MulticastMessage& pm = workload_[static_cast<size_t>(pi)];
      if (!pattern_.crashed(pm.src, now_)) return false;  // may still send
    }
  }
  return true;
}

bool MuMulticast::pending_enabled(ProcessId p, const MulticastMessage& m) const {
  const objects::Log& lg = log_of(m.dst, m.dst);
  if (!lg.contains(LogEntry::message(m.id))) return false;
  bool ok = true;
  lg.for_each_before(LogEntry::message(m.id), [&](const LogEntry& e) {
    if (e.kind == LogEntry::kMessage &&
        phase_at(p, index_of(e.m)) < Phase::kCommit) {
      ok = false;
      return false;
    }
    return true;
  });
  return ok;
}

bool MuMulticast::commit_enabled(ProcessId p, const MulticastMessage& m) const {
  const objects::Log& lg = log_of(m.dst, m.dst);
  for (GroupId h : gamma_groups(p, m.dst)) {
    if (!lg.any_entry([&](const LogEntry& e) {
          return e.kind == LogEntry::kPosTuple && e.m == m.id && e.h == h;
        }))
      return false;
  }
  return true;
}

bool MuMulticast::stabilize_enabled(ProcessId p, const MulticastMessage& m,
                                    GroupId h) const {
  const objects::Log& lgh = log_of(m.dst, h);
  if (log_of(m.dst, m.dst).contains(LogEntry::stab_tuple(m.id, h)))
    return false;  // effect already applied (append is idempotent)
  bool ok = true;
  lgh.for_each_before(LogEntry::message(m.id), [&](const LogEntry& e) {
    if (e.kind == LogEntry::kMessage &&
        phase_at(p, index_of(e.m)) < Phase::kStable) {
      ok = false;
      return false;
    }
    return true;
  });
  return ok;
}

const std::vector<GroupId>& MuMulticast::gamma_groups(ProcessId p,
                                                      GroupId g) const {
  auto& memo =
      procs_[static_cast<size_t>(p)]->gamma_memo[static_cast<size_t>(g)];
  if (memo.version != fd_version()) {
    GAM_METRICS_PROBE(if (probe_.fd_gamma) probe_.fd_gamma->add());
    memo.groups = oracle_.gamma().gamma_of_group(p, g, now_);
    memo.version = fd_version();
  }
  return memo.groups;
}

const std::vector<GroupId>& MuMulticast::stable_wait_groups(ProcessId p,
                                                            GroupId g) const {
  if (!options_.strict) return gamma_groups(p, g);
  // Strict variant (§6.1): wait on every intersecting group unless its
  // intersection with g is flagged dead by 1^{g∩h}. The indicator index walk
  // mirrors the constructor's emplacement order.
  auto& memo =
      procs_[static_cast<size_t>(p)]->strict_memo[static_cast<size_t>(g)];
  if (memo.version != fd_version()) {
    memo.groups.clear();
    size_t idx = 0;
    for (GroupId a = 0; a < system_.group_count(); ++a)
      for (GroupId b = a; b < system_.group_count(); ++b) {
        if (system_.intersection(a, b).empty()) continue;
        if (a == g || b == g) {
          GroupId h = (a == g) ? b : a;
          GAM_METRICS_PROBE(if (probe_.fd_indicator) probe_.fd_indicator->add());
          auto flag = indicators_[idx].query(p, now_);
          if (!(flag && *flag)) memo.groups.push_back(h);
        }
        ++idx;
      }
    memo.version = fd_version();
  }
  return memo.groups;
}

bool MuMulticast::stable_enabled(ProcessId p, const MulticastMessage& m) const {
  const objects::Log& lg = log_of(m.dst, m.dst);
  for (GroupId h : stable_wait_groups(p, m.dst))
    if (!lg.contains(LogEntry::stab_tuple(m.id, h))) return false;
  return true;
}

bool MuMulticast::deliver_enabled(ProcessId p, const MulticastMessage& m) const {
  for (GroupId h : system_.groups_of(p)) {
    if (!system_.intersection(m.dst, h).contains(p)) continue;
    const objects::Log& l = log_of(m.dst, h);
    if (!l.contains(LogEntry::message(m.id))) continue;
    bool ok = true;
    l.for_each_before(LogEntry::message(m.id), [&](const LogEntry& e) {
      if (e.kind == LogEntry::kMessage &&
          phase_at(p, index_of(e.m)) != Phase::kDeliver) {
#ifdef GAM_PLANTED_BUG
        // Deliberately weakened guard (adversary-hunt target, see CMake
        // option GAM_PLANTED_BUG): treat an undelivered predecessor whose
        // submitter has crashed as abandoned and skip it. Wrong — the logs
        // are shared objects, so other destination members still deliver the
        // predecessor, and a schedule that parks this process between the
        // predecessor's commit and the successor's stable makes the delivery
        // orders cross (acyclicity violation).
        const MulticastMessage& pred =
            workload_[static_cast<size_t>(index_of(e.m))];
        if (pattern_.crashed(pred.src, now_)) return true;
#endif
        ok = false;
        return false;
      }
      return true;
    });
    if (!ok) return false;
  }
  return true;
}

// ---- guard evaluation --------------------------------------------------------

// The first enabled action of p in the fixed priority order. This is the
// single source of selection semantics for both engines: kScan calls it at
// every scheduling attempt, kIncremental only when p is dirty. Within each
// action the iteration order matches the original scan loops exactly —
// ascending message id for the phase-driven actions (the std::map order the
// scan engine historically used), <_L order inside the pending log walk, and
// submission order for multicast — so the two engines pick identical actions.
MuMulticast::ActionChoice MuMulticast::resolve(ProcessId p) const {
  const PerProcess& st = *procs_[static_cast<size_t>(p)];

  // deliver (lines 34-37)
  for (std::int32_t mi : by_msg_id_) {
    if (st.phase[static_cast<size_t>(mi)] != Phase::kStable) continue;
    const MulticastMessage& m = workload_[static_cast<size_t>(mi)];
    if (!deliver_enabled(p, m)) continue;
    if (!sigma_allows(p, m.dst)) continue;
    return {ActionChoice::kDeliver, mi, -1};
  }

  // stable (lines 30-33)
  for (std::int32_t mi : by_msg_id_) {
    if (st.phase[static_cast<size_t>(mi)] != Phase::kCommit) continue;
    const MulticastMessage& m = workload_[static_cast<size_t>(mi)];
    if (!stable_enabled(p, m)) continue;
    if (!sigma_allows(p, m.dst)) continue;
    return {ActionChoice::kStable, mi, -1};
  }

  // stabilize (lines 25-29)
  for (std::int32_t mi : by_msg_id_) {
    if (st.phase[static_cast<size_t>(mi)] != Phase::kCommit) continue;
    const MulticastMessage& m = workload_[static_cast<size_t>(mi)];
    if (!sigma_allows(p, m.dst)) continue;
    for (GroupId h : system_.groups_of(p))
      if (stabilize_enabled(p, m, h)) return {ActionChoice::kStabilize, mi, h};
  }

  // commit (lines 16-24)
  for (std::int32_t mi : by_msg_id_) {
    if (st.phase[static_cast<size_t>(mi)] != Phase::kPending) continue;
    const MulticastMessage& m = workload_[static_cast<size_t>(mi)];
    if (!commit_enabled(p, m) || !sigma_allows(p, m.dst)) continue;
    return {ActionChoice::kCommit, mi, -1};
  }

  // pending (lines 8-15)
  for (GroupId g : system_.groups_of(p)) {
    const objects::Log& lg = log_of(g, g);
    ActionChoice out{};
    lg.for_each_sorted([&](const LogEntry& e) {
      if (e.kind != LogEntry::kMessage) return true;
      std::int32_t mi = index_of(e.m);
      if (st.phase[static_cast<size_t>(mi)] != Phase::kStart) return true;
      const MulticastMessage& m = workload_[static_cast<size_t>(mi)];
      if (!pending_enabled(p, m) || !sigma_allows(p, m.dst)) return true;
      out = {ActionChoice::kPending, mi, -1};
      return false;
    });
    if (out.kind != ActionChoice::kNone) return out;
  }

  // multicast (lines 5-7)
  for (size_t w = 0; w < workload_.size(); ++w) {
    const MulticastMessage& m = workload_[w];
    if (!may_multicast(p, m)) continue;
    if (st.phase[w] != Phase::kStart) continue;
    if (log_of(m.dst, m.dst).contains(LogEntry::message(m.id))) continue;
    if (!multicast_eligible(p, m) || !sigma_allows(p, m.dst)) continue;
    return {ActionChoice::kMulticast, static_cast<std::int32_t>(w), -1};
  }

  return {};
}

// ---- effects -----------------------------------------------------------------

void MuMulticast::execute(ProcessId p, const ActionChoice& c) {
  PerProcess& st = *procs_[static_cast<size_t>(p)];
  const MulticastMessage& m = workload_[static_cast<size_t>(c.mi)];
  MsgId mid = m.id;
  // Processes whose cached selection a log mutation may flip: every guard of
  // q reading LOG_{a∩b} has a,b ∈ G(q), so the members of a's and b's groups
  // over-approximate the readers.
  ProcessSet dirty;
  auto touched = [&](GroupId a, GroupId b) {
    dirty |= system_.group(a) | system_.group(b);
  };

  switch (c.kind) {
    case ActionChoice::kMulticast: {
      // Batched append: extend the chosen message with up to batch_k - 1
      // further eligible same-group submissions (in submission order; resolve
      // picks the earliest eligible one, so candidates can only follow m) and
      // write them to LOG_g in a single append_batch — one log mutation, one
      // epoch bump. Each member still gets its own record / trace / event /
      // probe bookkeeping, so downstream consumers see per-message events.
      std::vector<std::int32_t> batch_mi{c.mi};
      if (options_.batch_k > 1) {
        std::vector<MsgId> batch_ids{mid};
        const auto& seq = group_sequence_[static_cast<size_t>(m.dst)];
        const objects::Log& lg = log_of(m.dst, m.dst);
        size_t j = 0;
        while (j < seq.size() && seq[j] != mid) ++j;
        for (size_t i = j + 1;
             i < seq.size() &&
             batch_mi.size() < static_cast<size_t>(options_.batch_k);
             ++i) {
          std::int32_t ci = index_of(seq[i]);
          const MulticastMessage& cand = workload_[static_cast<size_t>(ci)];
          if (st.phase[static_cast<size_t>(ci)] != Phase::kStart) continue;
          if (lg.contains(LogEntry::message(cand.id))) continue;
          if (!may_multicast(p, cand)) continue;
          if (!multicast_eligible_batched(p, cand, batch_ids) ||
              !sigma_allows(p, cand.dst))
            continue;
          batch_ids.push_back(cand.id);
          batch_mi.push_back(ci);
        }
      }
      std::vector<LogEntry> entries;
      entries.reserve(batch_mi.size());
      for (std::int32_t bi : batch_mi)
        entries.push_back(
            LogEntry::message(workload_[static_cast<size_t>(bi)].id));
      log(m.dst, m.dst).append_batch(entries.data(), entries.size(), p,
                                     &journal_);
      touched(m.dst, m.dst);
      for (size_t b = 0; b < batch_mi.size(); ++b) {
        const MulticastMessage& bm = workload_[static_cast<size_t>(batch_mi[b])];
        record_.multicast.push_back(bm);
        record_.multicast_time.push_back(now_);
        if (trace_)
          trace_->record({now_, p, TraceEvent::kMulticast, bm.id, -1, -1});
        if (event_sink_) {
          sim::TraceEvent e;
          e.t = now_;
          e.p = p;
          e.kind = sim::TraceEventKind::kMulticast;
          e.protocol = static_cast<std::int32_t>(bm.dst);
          e.peer = bm.src;
          e.arg = bm.id;
          e.payload_hash = sim::trace_mix(
              sim::kTraceHashSeed, static_cast<std::uint64_t>(bm.payload));
          event_sink_->on_event(e);
        }
        GAM_METRICS_PROBE(if (probe_.reg && b > 0) probe_execute(
            p, {ActionChoice::kMulticast, batch_mi[b], -1}, bm));
        // Span milestone: the multicast action is the instant m enters
        // LOG_{g,g} — the "enter" anchor deliver_latency measures from.
        GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
            {static_cast<std::uint64_t>(now_), p, sim::SpanKind::kLogEnter,
             bm.id, bm.dst, bm.dst}));
      }
      // Window depth at issue: entered-but-undelivered (at the issuer)
      // messages of this group. Bounded by window_size — the issuance guard
      // requires delivery of everything at distance >= window_size, and the
      // entered set is prefix-closed in submission order.
      GAM_METRICS_PROBE(if (probe_.reg) {
        std::int64_t depth = 0;
        for (MsgId id : group_sequence_[static_cast<size_t>(m.dst)]) {
          std::int32_t qi = index_of(id);
          if (log_of(m.dst, m.dst).contains(LogEntry::message(id)) &&
              phase_at(p, qi) != Phase::kDeliver)
            ++depth;
        }
        probe_.reg->gauge("window_depth", group_label(m.dst)).set(depth);
      });
      break;
    }
    case ActionChoice::kPending: {
      for (GroupId h : system_.groups_of(p)) {
        std::int64_t i =
            log(m.dst, h).append(LogEntry::message(mid), p, &journal_);
        log(m.dst, m.dst).append(LogEntry::pos_tuple(mid, h, i), p, &journal_);
        touched(m.dst, h);
        touched(m.dst, m.dst);
        GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
            {static_cast<std::uint64_t>(now_), p, sim::SpanKind::kLogEnter,
             mid, m.dst, h}));
      }
      st.phase[static_cast<size_t>(c.mi)] = Phase::kPending;
      if (trace_) trace_->record({now_, p, TraceEvent::kPending, mid, -1, -1});
      break;
    }
    case ActionChoice::kCommit: {
      const objects::Log& lg = log_of(m.dst, m.dst);
      std::int64_t k = 0;
      for (const LogEntry& e : lg.entries_if([&](const LogEntry& e) {
             return e.kind == LogEntry::kPosTuple && e.m == mid;
           }))
        k = std::max(k, e.i);
      ConsKey key{mid, st.cons_family[static_cast<size_t>(m.dst)]};
      GAM_METRICS_PROBE(if (probe_.consensus) probe_.consensus->add());
      k = consensus_[key].propose(k, p, &journal_, mid);
      GAM_METRICS_PROBE(if (span_sink_) {
        span_sink_->on_span({static_cast<std::uint64_t>(now_), p,
                             sim::SpanKind::kPaxosRound, mid, k, 0});
        span_sink_->on_span({static_cast<std::uint64_t>(now_), p,
                             sim::SpanKind::kLocked, mid, k, 0});
      });
      for (GroupId h : system_.groups_of(p)) {
        log(m.dst, h).bump_and_lock(LogEntry::message(mid), k, p, &journal_);
        touched(m.dst, h);
      }
      st.phase[static_cast<size_t>(c.mi)] = Phase::kCommit;
      if (trace_) trace_->record({now_, p, TraceEvent::kCommit, mid, -1, k});
      break;
    }
    case ActionChoice::kStabilize: {
      log(m.dst, m.dst).append(LogEntry::stab_tuple(mid, c.h), p, &journal_);
      touched(m.dst, m.dst);
      if (trace_)
        trace_->record({now_, p, TraceEvent::kStabilize, mid, c.h, -1});
      break;
    }
    case ActionChoice::kStable: {
      st.phase[static_cast<size_t>(c.mi)] = Phase::kStable;
      if (trace_) trace_->record({now_, p, TraceEvent::kStable, mid, -1, -1});
      GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
          {static_cast<std::uint64_t>(now_), p, sim::SpanKind::kDeliverable,
           mid, m.dst, 0}));
      break;
    }
    case ActionChoice::kDeliver: {
      st.phase[static_cast<size_t>(c.mi)] = Phase::kDeliver;
      record_.deliveries.push_back({p, mid, now_, st.delivered_seq++});
      if (trace_) trace_->record({now_, p, TraceEvent::kDeliver, mid, -1, -1});
      if (event_sink_) {
        sim::TraceEvent e;
        e.t = now_;
        e.p = p;
        e.kind = sim::TraceEventKind::kDeliver;
        e.protocol = static_cast<std::int32_t>(m.dst);
        e.type = static_cast<std::int32_t>(st.delivered_seq - 1);
        e.arg = mid;
        e.payload_hash = sim::trace_mix(
            sim::kTraceHashSeed, static_cast<std::uint64_t>(m.payload));
        event_sink_->on_event(e);
      }
      GAM_METRICS_PROBE(if (span_sink_) span_sink_->on_span(
          {static_cast<std::uint64_t>(now_), p, sim::SpanKind::kDelivered, mid,
           m.dst, st.delivered_seq - 1}));
      break;
    }
    case ActionChoice::kNone:
      break;
  }

  GAM_METRICS_PROBE(if (probe_.reg) probe_execute(p, c, m));

  dirty.insert(p);  // own phase (and one-shot state) changed
  mark_dirty(dirty);
}

// ---- scheduling --------------------------------------------------------------

bool MuMulticast::step_process(ProcessId p) {
  if (pattern_.crashed(p, now_)) return false;
  if (!options_.fair_set.empty() && !options_.fair_set.contains(p))
    return false;
  // Macro-step (batched rounds): one scheduled step drains up to batch_k
  // consecutive enabled actions of p, re-resolving after each effect, with
  // the clock frozen within the step. Schedule-equivalent to batch_k
  // consecutive unbatched steps of p, so safety carries over unchanged;
  // batch_k = 1 reproduces today's behavior exactly.
  int drained = 0;
  for (int b = 0; b < options_.batch_k; ++b) {
    ActionChoice c;
    if (options_.engine == Engine::kScan) {
      c = resolve(p);
    } else {
      auto i = static_cast<size_t>(p);
      if (dirty_[i]) {
        cached_[i] = resolve(p);
        dirty_[i] = 0;
      }
      c = cached_[i];
    }
    if (c.kind == ActionChoice::kNone) break;
    execute(p, c);
    ++drained;
  }
  if (drained == 0) return false;
  if (!options_.external_clock) {
    ++now_;
    clock_crossed();
  }
  ++record_.steps;
  record_.active.insert(p);
  GAM_METRICS_PROBE(if (probe_.reg) {
    ++probe_.steps[static_cast<size_t>(p)];
    if (probe_.batch_occ)
      probe_.batch_occ->record(static_cast<std::uint64_t>(drained));
  });
  return true;
}

bool MuMulticast::action_enabled_somewhere() const {
  for (ProcessId p = 0; p < system_.process_count(); ++p) {
    if (pattern_.crashed(p, now_)) continue;
    if (!options_.fair_set.empty() && !options_.fair_set.contains(p)) continue;
    if (options_.engine == Engine::kIncremental) {
      auto i = static_cast<size_t>(p);
      if (dirty_[i]) {
        cached_[i] = resolve(p);
        dirty_[i] = 0;
      }
      if (cached_[i].kind != ActionChoice::kNone) return true;
    } else if (resolve(p).kind != ActionChoice::kNone) {
      return true;
    }
  }
  return false;
}

bool MuMulticast::quiescent() const { return !action_enabled_somewhere(); }

RunRecord MuMulticast::run() {
  // Time must be able to pass even when every guard is momentarily false:
  // γ and the indicators change output when crashes land, and crash times are
  // expressed on the same clock as the steps. Idle rounds therefore advance
  // the clock until the last failure-detector transition is behind us.
  sim::Time t_stab = 0;
  for (ProcessId p = 0; p < pattern_.process_count(); ++p)
    if (pattern_.faulty(p))
      t_stab = std::max(t_stab,
                        pattern_.crash_time(p) + options_.fd_lag + 1);

  std::vector<ProcessId> order(static_cast<size_t>(system_.process_count()));
  for (ProcessId p = 0; p < system_.process_count(); ++p)
    order[static_cast<size_t>(p)] = p;

  while (record_.steps < options_.max_steps) {
    for (size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng_.below(i)]);
    bool fired = false;
    for (ProcessId p : order) {
      if (record_.steps >= options_.max_steps) break;
      if (step_process(p)) fired = true;
    }
    if (!fired) {
      if (now_ < t_stab) {
        ++now_;
        clock_crossed();
        continue;
      }
      record_.quiescent = true;
      break;
    }
  }
  if (!record_.quiescent && !action_enabled_somewhere())
    record_.quiescent = true;
  record_.active |= journal_.active();
  GAM_METRICS_PROBE(if (probe_.reg) flush_metrics());
  return record_;
}

RunRecord MuMulticast::run_with(sim::Scheduler& sched,
                                std::vector<ProcessId>* schedule_out) {
  // Same stabilization-time logic as run(): idle rounds advance the clock
  // until the last failure-detector transition is behind us.
  sim::Time t_stab = 0;
  for (ProcessId p = 0; p < pattern_.process_count(); ++p)
    if (pattern_.faulty(p))
      t_stab = std::max(t_stab,
                        pattern_.crash_time(p) + options_.fd_lag + 1);

  sched.begin(system_.process_count());
  std::uint64_t executed = 0;
  std::vector<ProcessId> order;
  while (record_.steps < options_.max_steps) {
    // A replay consumes its recorded idle ticks here, keeping the clock in
    // lockstep with the recording run.
    if (sched.take_idle_tick()) {
      ++now_;
      clock_crossed();
      if (schedule_out) schedule_out->push_back(-1);
      continue;
    }
    ProcessSet candidates;
    for (ProcessId p = 0; p < system_.process_count(); ++p) {
      if (pattern_.crashed(p, now_)) continue;
      if (!options_.fair_set.empty() && !options_.fair_set.contains(p))
        continue;
      candidates.insert(p);
    }
    bool fired = false;
    order.clear();
    sched.plan(candidates, order);
    for (ProcessId p : order) {
      if (record_.steps >= options_.max_steps) break;
      if (p < 0 || p >= system_.process_count()) continue;
      if (step_process(p)) {
        fired = true;
        sched.fired(p, executed++);
        if (schedule_out) schedule_out->push_back(p);
        if (sched.single_step()) break;
      }
    }
    if (!fired) {
      if (sched.exhausted()) break;
      if (now_ < t_stab) {
        ++now_;
        clock_crossed();
        if (schedule_out) schedule_out->push_back(-1);
        continue;
      }
      record_.quiescent = true;
      break;
    }
  }
  if (!record_.quiescent && !action_enabled_somewhere())
    record_.quiescent = true;
  record_.active |= journal_.active();
  GAM_METRICS_PROBE(if (probe_.reg) flush_metrics());
  return record_;
}

RunRecord MuMulticast::snapshot() const {
  RunRecord r = record_;
  r.active |= journal_.active();
  r.quiescent = !action_enabled_somewhere();
  return r;
}

}  // namespace gam::amcast
