#include "amcast/mu_multicast.hpp"

#include <algorithm>

namespace gam::amcast {

using groups::GroupId;
using objects::LogEntry;

// Per-process protocol state: the PHASE map of line 4 plus bookkeeping that
// keeps one-shot actions one-shot.
struct MuMulticast::PerProcess {
  std::map<MsgId, Phase> phase;
  std::int64_t delivered_seq = 0;
  // Cached F(p) material (the group system is immutable).
  std::vector<groups::FamilyMask> families;
  std::map<GroupId, groups::FamilyMask> cons_family;  // H(p,g) as a mask
};

MuMulticast::MuMulticast(const groups::GroupSystem& system,
                         const sim::FailurePattern& pattern, Options options)
    : system_(system),
      pattern_(pattern),
      options_(options),
      oracle_(system, pattern, options.fd_lag),
      rng_(options.seed) {
  GAM_EXPECTS(system.process_count() == pattern.process_count());
  if (options_.strict) {
    // One indicator 1^{g∩h} per pair of intersecting groups (g = h gives
    // 1^g). Scope g∪h as in §6.1.
    for (GroupId g = 0; g < system_.group_count(); ++g)
      for (GroupId h = g; h < system_.group_count(); ++h) {
        ProcessSet inter = system_.intersection(g, h);
        if (inter.empty()) continue;
        indicators_.emplace_back(pattern_, inter,
                                 system_.group(g) | system_.group(h),
                                 options_.fd_lag);
      }
  }
  procs_.resize(static_cast<size_t>(system.process_count()));
  for (ProcessId p = 0; p < system.process_count(); ++p) {
    auto st = std::make_unique<PerProcess>();
    st->families = system_.families_of_process(p);
    for (GroupId g : system_.groups_of(p)) {
      groups::FamilyMask mask = 0;
      for (GroupId h : system_.cyclic_neighbors(p, g))
        mask |= (groups::FamilyMask{1} << h);
      st->cons_family[g] = mask;
    }
    procs_[static_cast<size_t>(p)] = std::move(st);
  }
}

MuMulticast::~MuMulticast() = default;

void MuMulticast::submit(MulticastMessage m) {
  GAM_EXPECTS(m.id >= 0 && !by_id_.count(m.id));
  GAM_EXPECTS(m.dst >= 0 && m.dst < system_.group_count());
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));  // closed dissemination
  workload_.push_back(m);
  by_id_[m.id] = m;
  group_sequence_[m.dst].push_back(m.id);
}

MuMulticast::LogKey MuMulticast::log_key(GroupId g, GroupId h) const {
  return {std::min(g, h), std::max(g, h)};
}

std::int64_t MuMulticast::journal_key(LogKey k) const {
  return static_cast<std::int64_t>(k.first) * 64 + k.second;
}

objects::Log& MuMulticast::log(GroupId g, GroupId h) {
  LogKey k = log_key(g, h);
  auto it = logs_.find(k);
  if (it == logs_.end())
    it = logs_
             .emplace(k, objects::Log(journal_key(k),
                                      options_.track_log_history))
             .first;
  return it->second;
}

std::string MuMulticast::validate_log_invariants() const {
  for (const auto& [key, l] : logs_) {
    std::string err = l.check_history();
    if (!err.empty())
      return "LOG(g" + std::to_string(key.first) + ",g" +
             std::to_string(key.second) + "): " + err;
  }
  return {};
}

const objects::Log& MuMulticast::log_of(GroupId g, GroupId h) const {
  static const objects::Log empty;
  auto it = logs_.find(log_key(g, h));
  return it == logs_.end() ? empty : it->second;
}

Phase MuMulticast::phase_of(ProcessId p, MsgId m) const {
  const auto& ph = procs_[static_cast<size_t>(p)]->phase;
  auto it = ph.find(m);
  return it == ph.end() ? Phase::kStart : it->second;
}

// ---- preconditions -----------------------------------------------------------

bool MuMulticast::sigma_allows(ProcessId p, groups::GroupId g) const {
  if (!options_.sigma_gated) return true;
  auto q = oracle_.sigma(g, g).query(p, now_);
  return q && q->subset_of(options_.fair_set);
}

bool MuMulticast::may_multicast(ProcessId p, const MulticastMessage& m) const {
  if (m.src == p) return true;
  // Proposition 1's helping: a destination member may multicast on behalf of
  // a submitter that crashed before issuing the message.
  return options_.helping && system_.group(m.dst).contains(p) &&
         pattern_.crashed(m.src, now_);
}

bool MuMulticast::multicast_eligible(ProcessId by,
                                     const MulticastMessage& m) const {
  // Group-sequential issuance (§4.1): whoever multicasts the k-th message to
  // g (its sender, or a Prop-1 helper) must have delivered every earlier
  // message to g first. Without helping, a predecessor whose sender crashed
  // before multicasting it is skipped — it will never enter the protocol;
  // with helping it will, so the issuer must wait for it.
  const auto& seq = group_sequence_.at(m.dst);
  for (MsgId prev : seq) {
    if (prev == m.id) break;
    const MulticastMessage& pm = by_id_.at(prev);
    bool entered =
        log_of(pm.dst, pm.dst).contains(LogEntry::message(prev));
    if (entered) {
      if (phase_of(by, prev) != Phase::kDeliver) return false;
    } else if (options_.helping) {
      return false;  // a helper will issue prev; wait for it
    } else {
      if (!pattern_.crashed(pm.src, now_)) return false;  // may still send
    }
  }
  return true;
}

bool MuMulticast::pending_enabled(ProcessId p, const MulticastMessage& m) const {
  const objects::Log& lg = log_of(m.dst, m.dst);
  if (!lg.contains(LogEntry::message(m.id))) return false;
  for (const LogEntry& e : lg.messages_before(LogEntry::message(m.id)))
    if (phase_of(p, e.m) < Phase::kCommit) return false;
  return true;
}

bool MuMulticast::commit_enabled(ProcessId p, const MulticastMessage& m) const {
  const objects::Log& lg = log_of(m.dst, m.dst);
  for (GroupId h : oracle_.gamma().gamma_of_group(p, m.dst, now_)) {
    bool found = false;
    for (const LogEntry& e : lg.entries_if([&](const LogEntry& e) {
           return e.kind == LogEntry::kPosTuple && e.m == m.id && e.h == h;
         })) {
      (void)e;
      found = true;
      break;
    }
    if (!found) return false;
  }
  return true;
}

bool MuMulticast::stabilize_enabled(ProcessId p, const MulticastMessage& m,
                                    GroupId h) const {
  const objects::Log& lgh = log_of(m.dst, h);
  if (log_of(m.dst, m.dst).contains(LogEntry::stab_tuple(m.id, h)))
    return false;  // effect already applied (append is idempotent)
  for (const LogEntry& e : lgh.messages_before(LogEntry::message(m.id)))
    if (phase_of(p, e.m) < Phase::kStable) return false;
  return true;
}

std::vector<GroupId> MuMulticast::stable_wait_groups(ProcessId p,
                                                     GroupId g) const {
  if (!options_.strict) return oracle_.gamma().gamma_of_group(p, g, now_);
  // Strict variant (§6.1): wait on every intersecting group unless its
  // intersection with g is flagged dead by 1^{g∩h}.
  std::vector<GroupId> out;
  size_t idx = 0;
  for (GroupId a = 0; a < system_.group_count(); ++a)
    for (GroupId b = a; b < system_.group_count(); ++b) {
      if (system_.intersection(a, b).empty()) continue;
      if (a == g || b == g) {
        GroupId h = (a == g) ? b : a;
        auto flag = indicators_[idx].query(p, now_);
        if (!(flag && *flag)) out.push_back(h);
      }
      ++idx;
    }
  return out;
}

bool MuMulticast::stable_enabled(ProcessId p, const MulticastMessage& m) const {
  const objects::Log& lg = log_of(m.dst, m.dst);
  for (GroupId h : stable_wait_groups(p, m.dst))
    if (!lg.contains(LogEntry::stab_tuple(m.id, h))) return false;
  return true;
}

bool MuMulticast::deliver_enabled(ProcessId p, const MulticastMessage& m) const {
  for (GroupId h : system_.groups_of(p)) {
    if (!system_.intersection(m.dst, h).contains(p)) continue;
    const objects::Log& l = log_of(m.dst, h);
    if (!l.contains(LogEntry::message(m.id))) continue;
    for (const LogEntry& e : l.messages_before(LogEntry::message(m.id)))
      if (phase_of(p, e.m) != Phase::kDeliver) return false;
  }
  return true;
}

// ---- actions -----------------------------------------------------------------

bool MuMulticast::try_multicast(ProcessId p) {
  for (const MulticastMessage& m : workload_) {
    if (!may_multicast(p, m)) continue;
    if (phase_of(p, m.id) != Phase::kStart) continue;
    if (log_of(m.dst, m.dst).contains(LogEntry::message(m.id))) continue;
    if (!multicast_eligible(p, m) || !sigma_allows(p, m.dst)) continue;
    log(m.dst, m.dst).append(LogEntry::message(m.id), p, &journal_);
    record_.multicast.push_back(m);
    record_.multicast_time.push_back(now_);
    if (trace_) trace_->record({now_, p, TraceEvent::kMulticast, m.id, -1, -1});
    return true;
  }
  return false;
}

bool MuMulticast::try_pending(ProcessId p) {
  auto& st = *procs_[static_cast<size_t>(p)];
  for (GroupId g : system_.groups_of(p)) {
    const objects::Log& lg = log_of(g, g);
    for (const LogEntry& e : lg.entries_if(
             [](const LogEntry& e) { return e.kind == LogEntry::kMessage; })) {
      const MulticastMessage& m = by_id_.at(e.m);
      if (phase_of(p, m.id) != Phase::kStart) continue;
      if (!pending_enabled(p, m) || !sigma_allows(p, m.dst)) continue;
      for (GroupId h : system_.groups_of(p)) {
        std::int64_t i = log(m.dst, h).append(LogEntry::message(m.id), p,
                                              &journal_);
        log(m.dst, m.dst).append(LogEntry::pos_tuple(m.id, h, i), p,
                                 &journal_);
      }
      st.phase[m.id] = Phase::kPending;
      if (trace_)
        trace_->record({now_, p, TraceEvent::kPending, m.id, -1, -1});
      return true;
    }
  }
  return false;
}

bool MuMulticast::try_commit(ProcessId p) {
  auto& st = *procs_[static_cast<size_t>(p)];
  for (auto& [mid, phase] : st.phase) {
    if (phase != Phase::kPending) continue;
    const MulticastMessage& m = by_id_.at(mid);
    if (!commit_enabled(p, m) || !sigma_allows(p, m.dst)) continue;
    const objects::Log& lg = log_of(m.dst, m.dst);
    std::int64_t k = 0;
    for (const LogEntry& e : lg.entries_if([&](const LogEntry& e) {
           return e.kind == LogEntry::kPosTuple && e.m == mid;
         }))
      k = std::max(k, e.i);
    ConsKey key{mid, st.cons_family.at(m.dst)};
    k = consensus_[key].propose(k, p, &journal_, mid);
    for (GroupId h : system_.groups_of(p))
      log(m.dst, h).bump_and_lock(LogEntry::message(mid), k, p, &journal_);
    phase = Phase::kCommit;
    if (trace_) trace_->record({now_, p, TraceEvent::kCommit, mid, -1, k});
    return true;
  }
  return false;
}

bool MuMulticast::try_stabilize(ProcessId p) {
  auto& st = *procs_[static_cast<size_t>(p)];
  for (auto& [mid, phase] : st.phase) {
    if (phase != Phase::kCommit) continue;
    const MulticastMessage& m = by_id_.at(mid);
    if (!sigma_allows(p, m.dst)) continue;
    for (GroupId h : system_.groups_of(p)) {
      if (!stabilize_enabled(p, m, h)) continue;
      log(m.dst, m.dst).append(LogEntry::stab_tuple(mid, h), p, &journal_);
      if (trace_)
        trace_->record({now_, p, TraceEvent::kStabilize, mid, h, -1});
      return true;
    }
  }
  return false;
}

bool MuMulticast::try_stable(ProcessId p) {
  auto& st = *procs_[static_cast<size_t>(p)];
  for (auto& [mid, phase] : st.phase) {
    if (phase != Phase::kCommit) continue;
    if (!stable_enabled(p, by_id_.at(mid))) continue;
    if (!sigma_allows(p, by_id_.at(mid).dst)) continue;
    phase = Phase::kStable;
    if (trace_) trace_->record({now_, p, TraceEvent::kStable, mid, -1, -1});
    return true;
  }
  return false;
}

bool MuMulticast::try_deliver(ProcessId p) {
  auto& st = *procs_[static_cast<size_t>(p)];
  for (auto& [mid, phase] : st.phase) {
    if (phase != Phase::kStable) continue;
    if (!deliver_enabled(p, by_id_.at(mid))) continue;
    if (!sigma_allows(p, by_id_.at(mid).dst)) continue;
    phase = Phase::kDeliver;
    record_.deliveries.push_back({p, mid, now_, st.delivered_seq++});
    if (trace_) trace_->record({now_, p, TraceEvent::kDeliver, mid, -1, -1});
    if (event_sink_) {
      const MulticastMessage& msg = by_id_.at(mid);
      sim::TraceEvent e;
      e.t = now_;
      e.p = p;
      e.kind = sim::TraceEventKind::kDeliver;
      e.protocol = static_cast<std::int32_t>(msg.dst);
      e.type = static_cast<std::int32_t>(st.delivered_seq - 1);
      e.arg = mid;
      e.payload_hash = sim::trace_mix(sim::kTraceHashSeed,
                                      static_cast<std::uint64_t>(msg.payload));
      event_sink_->on_event(e);
    }
    return true;
  }
  return false;
}

bool MuMulticast::step_process(ProcessId p) {
  if (pattern_.crashed(p, now_)) return false;
  if (!options_.fair_set.empty() && !options_.fair_set.contains(p))
    return false;
  bool fired = try_deliver(p) || try_stable(p) || try_stabilize(p) ||
               try_commit(p) || try_pending(p) || try_multicast(p);
  if (fired) {
    if (!options_.external_clock) ++now_;
    ++record_.steps;
    record_.active.insert(p);
  }
  return fired;
}

bool MuMulticast::action_enabled_somewhere() const {
  // Conservative: replay the per-action guards without effects.
  for (ProcessId p = 0; p < system_.process_count(); ++p) {
    if (pattern_.crashed(p, now_)) continue;
    if (!options_.fair_set.empty() && !options_.fair_set.contains(p)) continue;
    const auto& st = *procs_[static_cast<size_t>(p)];
    for (auto& [mid, phase] : st.phase) {
      const MulticastMessage& m = by_id_.at(mid);
      if (!sigma_allows(p, m.dst)) continue;
      switch (phase) {
        case Phase::kStart:
          break;  // handled by the log scan below
        case Phase::kPending:
          if (commit_enabled(p, m)) return true;
          break;
        case Phase::kCommit: {
          if (stable_enabled(p, m)) return true;
          for (GroupId h : system_.groups_of(p))
            if (stabilize_enabled(p, m, h)) return true;
          break;
        }
        case Phase::kStable:
          if (deliver_enabled(p, m)) return true;
          break;
        case Phase::kDeliver:
          break;
      }
    }
    for (GroupId g : system_.groups_of(p)) {
      const objects::Log& lg = log_of(g, g);
      for (const LogEntry& e : lg.entries_if([](const LogEntry& e) {
             return e.kind == LogEntry::kMessage;
           })) {
        if (phase_of(p, e.m) != Phase::kStart) continue;
        if (!sigma_allows(p, g)) continue;
        if (pending_enabled(p, by_id_.at(e.m))) return true;
      }
    }
    for (const MulticastMessage& m : workload_) {
      if (!may_multicast(p, m) || phase_of(p, m.id) != Phase::kStart)
        continue;
      if (log_of(m.dst, m.dst).contains(LogEntry::message(m.id))) continue;
      if (multicast_eligible(p, m) && sigma_allows(p, m.dst)) return true;
    }
  }
  return false;
}

bool MuMulticast::quiescent() const { return !action_enabled_somewhere(); }

RunRecord MuMulticast::run() {
  // Time must be able to pass even when every guard is momentarily false:
  // γ and the indicators change output when crashes land, and crash times are
  // expressed on the same clock as the steps. Idle rounds therefore advance
  // the clock until the last failure-detector transition is behind us.
  sim::Time t_stab = 0;
  for (ProcessId p = 0; p < pattern_.process_count(); ++p)
    if (pattern_.faulty(p))
      t_stab = std::max(t_stab,
                        pattern_.crash_time(p) + options_.fd_lag + 1);

  std::vector<ProcessId> order(static_cast<size_t>(system_.process_count()));
  for (ProcessId p = 0; p < system_.process_count(); ++p)
    order[static_cast<size_t>(p)] = p;

  while (record_.steps < options_.max_steps) {
    for (size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng_.below(i)]);
    bool fired = false;
    for (ProcessId p : order) {
      if (record_.steps >= options_.max_steps) break;
      if (step_process(p)) fired = true;
    }
    if (!fired) {
      if (now_ < t_stab) {
        ++now_;
        continue;
      }
      record_.quiescent = true;
      break;
    }
  }
  if (!record_.quiescent && !action_enabled_somewhere())
    record_.quiescent = true;
  record_.active |= journal_.active();
  return record_;
}

RunRecord MuMulticast::snapshot() const {
  RunRecord r = record_;
  r.active |= journal_.active();
  r.quiescent = !action_enabled_somewhere();
  return r;
}

}  // namespace gam::amcast
