#include "amcast/baselines.hpp"

#include <algorithm>

namespace gam::amcast {

namespace {

// Reusable shuffled process order for the scheduling rounds — one allocation
// per run instead of one per round.
class RoundScheduler {
 public:
  explicit RoundScheduler(int n) : order_(static_cast<size_t>(n)) {
    for (int p = 0; p < n; ++p) order_[static_cast<size_t>(p)] = p;
  }

  const std::vector<ProcessId>& shuffle(Rng& rng) {
    for (size_t i = order_.size(); i > 1; --i)
      std::swap(order_[i - 1], order_[rng.below(i)]);
    return order_;
  }

 private:
  std::vector<ProcessId> order_;
};

void attach_probe(BaselineProbe& probe, sim::Metrics* m, int process_count) {
  probe = BaselineProbe{};
  probe.reg = m;
  if (!m) return;
  probe.steps.assign(static_cast<size_t>(process_count), 0);
  probe.handled.assign(static_cast<size_t>(process_count), 0);
}

// The genuineness ledger (mirrors spec.cpp's minimality check): activity
// attributable to processes outside ∪ dst(m) of the issued messages.
// maybe_unused: every call site compiles out under GAM_NO_METRICS.
[[maybe_unused]] void flush_ledger(BaselineProbe& probe,
                                   const groups::GroupSystem& system,
                                   const RunRecord& record) {
  sim::Metrics& reg = *probe.reg;
  ProcessSet addressed;
  for (const auto& m : record.multicast) addressed |= system.group(m.dst);
  std::uint64_t steps_outside = 0, msgs_outside = 0;
  for (ProcessId p = 0; p < system.process_count(); ++p) {
    if (addressed.contains(p)) continue;
    steps_outside += probe.steps[static_cast<size_t>(p)];
    msgs_outside += probe.handled[static_cast<size_t>(p)];
  }
  reg.gauge("non_addressee_steps")
      .set(static_cast<std::int64_t>(steps_outside));
  reg.gauge("non_addressee_processes").set((record.active - addressed).size());
  reg.gauge("non_addressee_messages")
      .set(static_cast<std::int64_t>(msgs_outside));
}

}  // namespace

// ---- BroadcastMulticast --------------------------------------------------------

BroadcastMulticast::BroadcastMulticast(const groups::GroupSystem& system,
                                       const sim::FailurePattern& pattern,
                                       Options options)
    : system_(system),
      pattern_(pattern),
      options_(options),
      rng_(options.seed),
      cursor_(static_cast<size_t>(system.process_count()), 0),
      next_own_(static_cast<size_t>(system.process_count()), 0),
      local_seq_(static_cast<size_t>(system.process_count()), 0) {}

void BroadcastMulticast::submit(MulticastMessage m) {
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));
  workload_.push_back(m);
  by_id_[m.id] = m;
}

void BroadcastMulticast::set_metrics(sim::Metrics* m) {
  attach_probe(probe_, m, system_.process_count());
}

bool BroadcastMulticast::step_process(ProcessId p) {
  auto pi = static_cast<size_t>(p);
  // 1. Broadcast the next unsent own message (senders broadcast in
  //    submission order; the global log induces the total order). Only p
  //    itself appends its messages, so a per-process cursor over the workload
  //    replaces the former O(workload x log) rescan.
  for (size_t& i = next_own_[pi]; i < workload_.size(); ++i) {
    const MulticastMessage& m = workload_[i];
    if (m.src != p || in_log_.count(m.id)) continue;
    global_log_.push_back(m.id);
    in_log_.insert(m.id);
    record_.multicast.push_back(m);
    record_.multicast_time.push_back(now_);
    GAM_METRICS_PROBE(if (probe_.reg) probe_.mcast_time[m.id] = now_);
    ++i;
    return true;
  }
  // 2. Consume the next broadcast entry — *every* process pays this step for
  //    *every* message; that is precisely what genuineness forbids.
  if (cursor_[pi] < global_log_.size()) {
    MsgId mid = global_log_[cursor_[pi]++];
    const MulticastMessage& m = by_id_.at(mid);
    GAM_METRICS_PROBE(if (probe_.reg) ++probe_.handled[pi]);
    if (system_.group(m.dst).contains(p)) {
      record_.deliveries.push_back({p, mid, now_, local_seq_[pi]++});
      GAM_METRICS_PROBE(if (probe_.reg) probe_.reg
                            ->histogram("deliver_latency",
                                        "g" + std::to_string(m.dst))
                            .record(now_ - probe_.mcast_time.at(mid)));
    }
    return true;
  }
  return false;
}

RunRecord BroadcastMulticast::run() {
  RoundScheduler sched(system_.process_count());
  while (record_.steps < options_.max_steps) {
    bool fired = false;
    for (ProcessId p : sched.shuffle(rng_)) {
      if (pattern_.crashed(p, now_)) continue;
      if (step_process(p)) {
        fired = true;
        ++now_;
        ++record_.steps;
        record_.active.insert(p);
        GAM_METRICS_PROBE(
            if (probe_.reg) ++probe_.steps[static_cast<size_t>(p)]);
      }
    }
    if (!fired) {
      record_.quiescent = true;
      break;
    }
  }
  GAM_METRICS_PROBE(if (probe_.reg) flush_ledger(probe_, system_, record_));
  return record_;
}

// ---- SkeenMulticast -------------------------------------------------------------

SkeenMulticast::SkeenMulticast(const groups::GroupSystem& system,
                               const sim::FailurePattern& pattern,
                               Options options)
    : system_(system),
      pattern_(pattern),
      options_(options),
      rng_(options.seed),
      procs_(static_cast<size_t>(system.process_count())) {}

void SkeenMulticast::submit(MulticastMessage m) {
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));
  workload_.push_back(m);
  by_id_[m.id] = m;
}

void SkeenMulticast::set_metrics(sim::Metrics* m) {
  attach_probe(probe_, m, system_.process_count());
}

bool SkeenMulticast::step_sender(const MulticastMessage& m) {
  PerMessage& st = state_[m.id];
  auto& sender = procs_[static_cast<size_t>(m.src)];
  if (!st.sent) {
    // Group-sequential issuance: wait until the sender has delivered every
    // earlier message it can observe for this group.
    for (const MulticastMessage& prev : workload_) {
      if (prev.id == m.id) break;
      if (prev.dst != m.dst) continue;
      if (!state_[prev.id].sent) {
        if (!pattern_.crashed(prev.src, now_)) return false;
        continue;  // sender died before sending: skipped
      }
      if (!sender.delivered.count(prev.id)) return false;
    }
    st.sent = true;
    wire_messages_ += static_cast<std::uint64_t>(system_.group(m.dst).size());
    record_.multicast.push_back(m);
    record_.multicast_time.push_back(now_);
    GAM_METRICS_PROBE(if (probe_.reg) probe_.mcast_time[m.id] = now_);
    return true;
  }
  // Finalize once every destination member proposed. Skeen has no failure
  // handling: a crashed member that never proposed blocks the message forever.
  if (st.final_ts < 0 &&
      static_cast<int>(st.proposals.size()) == system_.group(m.dst).size()) {
    std::int64_t ts = 0;
    for (auto& [q, t] : st.proposals) ts = std::max(ts, t);
    st.final_ts = ts;
    wire_messages_ += static_cast<std::uint64_t>(system_.group(m.dst).size());
    for (ProcessId q : system_.group(m.dst)) {
      auto& member = procs_[static_cast<size_t>(q)];
      member.pending[m.id] = {ts, true};
      member.clock = std::max(member.clock, ts);
    }
    return true;
  }
  return false;
}

int SkeenMulticast::try_deliver(ProcessId p) {
  int delivered = 0;
  auto& st = procs_[static_cast<size_t>(p)];
  for (;;) {
    // Deliver the finalized pending message with the smallest (ts, id) if it
    // is minimal among *all* pending entries at p.
    MsgId best = -1;
    std::pair<std::int64_t, MsgId> best_key{0, 0};
    for (auto& [mid, e] : st.pending) {
      if (!e.second) continue;  // not finalized yet
      std::pair<std::int64_t, MsgId> key{e.first, mid};
      if (best == -1 || key < best_key) {
        best = mid;
        best_key = key;
      }
    }
    if (best == -1) return delivered;
    for (auto& [mid, e] : st.pending)
      if (std::make_pair(e.first, mid) < best_key)
        return delivered;  // must wait
    st.pending.erase(best);
    st.delivered.insert(best);
    record_.deliveries.push_back({p, best, now_, st.seq++});
    GAM_METRICS_PROBE(if (probe_.reg) probe_.reg
                          ->histogram("deliver_latency",
                                      "g" + std::to_string(by_id_.at(best).dst))
                          .record(now_ - probe_.mcast_time.at(best)));
    ++delivered;
  }
}

RunRecord SkeenMulticast::run() {
  RoundScheduler sched(system_.process_count());
  while (record_.steps < options_.max_steps) {
    bool fired = false;
    for (ProcessId p : sched.shuffle(rng_)) {
      if (pattern_.crashed(p, now_)) continue;
      bool acted = false;
      // Sender duties.
      for (const MulticastMessage& m : workload_) {
        if (m.src != p) continue;
        if (step_sender(m)) {
          acted = true;
          break;
        }
      }
      // Proposal duties: answer one outstanding request.
      if (!acted) {
        for (auto& [mid, st] : state_) {
          if (!st.sent || st.final_ts >= 0) continue;
          const MulticastMessage& m = by_id_.at(mid);
          if (!system_.group(m.dst).contains(p) || st.proposals.count(p))
            continue;
          auto& me = procs_[static_cast<size_t>(p)];
          std::int64_t ts = ++me.clock;
          st.proposals[p] = ts;
          me.pending[mid] = {ts, false};
          ++wire_messages_;  // the reply
          acted = true;
          break;
        }
      }
      // Delivery from the holdback queue is a protocol step of its own: a
      // member with nothing else to do must still drain deliverable messages.
      if (try_deliver(p) > 0) acted = true;
      if (acted) {
        fired = true;
        ++now_;
        ++record_.steps;
        record_.active.insert(p);
        GAM_METRICS_PROBE(
            if (probe_.reg) ++probe_.steps[static_cast<size_t>(p)]);
      }
    }
    if (!fired) {
      record_.quiescent = true;
      break;
    }
  }
  GAM_METRICS_PROBE(if (probe_.reg) flush_ledger(probe_, system_, record_));
  return record_;
}

// ---- PartitionedMulticast --------------------------------------------------------

PartitionedMulticast::PartitionedMulticast(const groups::GroupSystem& system,
                                           const sim::FailurePattern& pattern,
                                           std::vector<ProcessSet> partitions,
                                           Options options)
    : system_(system),
      pattern_(pattern),
      partitions_(std::move(partitions)),
      options_(options),
      rng_(options.seed),
      parts_(partitions_.size()),
      procs_(static_cast<size_t>(system.process_count())) {
  // Validate the decomposability assumption.
  for (size_t i = 0; i < partitions_.size(); ++i)
    for (size_t j = i + 1; j < partitions_.size(); ++j)
      GAM_EXPECTS(!partitions_[i].intersects(partitions_[j]));
  for (groups::GroupId g = 0; g < system_.group_count(); ++g) {
    ProcessSet covered;
    for (const ProcessSet& part : partitions_)
      if (part.subset_of(system_.group(g))) covered |= part;
    GAM_EXPECTS(covered == system_.group(g));
  }
}

std::vector<ProcessSet> PartitionedMulticast::finest_partitions(
    const groups::GroupSystem& system) {
  // Equivalence classes of "belongs to exactly the same groups".
  std::map<groups::FamilyMask, ProcessSet> classes;
  for (ProcessId p = 0; p < system.process_count(); ++p) {
    groups::FamilyMask sig;
    for (groups::GroupId g : system.groups_of(p)) sig.insert(g);
    classes[sig].insert(p);
  }
  std::vector<ProcessSet> out;
  for (auto& [sig, s] : classes)
    if (!sig.empty()) out.push_back(s);  // uncovered: no partition needed
  return out;
}

std::vector<int> PartitionedMulticast::partitions_of_group(
    groups::GroupId g) const {
  std::vector<int> out;
  for (size_t i = 0; i < partitions_.size(); ++i)
    if (partitions_[i].subset_of(system_.group(g)))
      out.push_back(static_cast<int>(i));
  return out;
}

bool PartitionedMulticast::partition_alive(int part) const {
  return !pattern_.set_faulty_at(partitions_[static_cast<size_t>(part)], now_);
}

void PartitionedMulticast::submit(MulticastMessage m) {
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));
  workload_.push_back(m);
  by_id_[m.id] = m;
}

RunRecord PartitionedMulticast::run() {
  RoundScheduler sched(system_.process_count());
  while (record_.steps < options_.max_steps) {
    bool fired = false;
    for (ProcessId p : sched.shuffle(rng_)) {
      if (pattern_.crashed(p, now_)) continue;
      bool acted = false;
      // Sender: issue the next eligible message.
      for (const MulticastMessage& m : workload_) {
        if (m.src != p || state_.count(m.id)) continue;
        bool ready = true;
        for (const MulticastMessage& prev : workload_) {
          if (prev.id == m.id) break;
          if (prev.dst != m.dst) continue;
          if (!state_.count(prev.id)) {
            if (!pattern_.crashed(prev.src, now_)) ready = false;
            continue;
          }
          if (!procs_[static_cast<size_t>(p)].pending.count(prev.id) &&
              state_[prev.id].final_ts >= 0) {
            // prev finalized and no longer pending at p => delivered; fine.
          } else {
            ready = false;
          }
        }
        if (!ready) continue;
        state_[m.id];  // mark issued
        record_.multicast.push_back(m);
        record_.multicast_time.push_back(now_);
        acted = true;
        break;
      }
      // Partition duties: a live member proposes on behalf of its partition
      // (the decomposability assumption makes the partition one logical
      // entity; intra-partition consensus is abstracted away, §7).
      if (!acted) {
        for (auto& [mid, st] : state_) {
          if (st.final_ts >= 0) continue;
          const MulticastMessage& m = by_id_.at(mid);
          for (int part : partitions_of_group(m.dst)) {
            if (st.proposals.count(part)) continue;
            if (!partitions_[static_cast<size_t>(part)].contains(p)) continue;
            auto& entity = parts_[static_cast<size_t>(part)];
            std::int64_t ts = ++entity.clock;
            st.proposals[part] = ts;
            for (ProcessId q : partitions_[static_cast<size_t>(part)])
              if (!pattern_.crashed(q, now_))
                procs_[static_cast<size_t>(q)].pending[mid] = {ts, false};
            acted = true;
            break;
          }
          if (acted) break;
          // Finalize when every involved partition proposed — a step of a
          // destination-group member only (genuineness).
          if (!system_.group(m.dst).contains(p)) continue;
          auto needed = partitions_of_group(m.dst);
          if (static_cast<int>(st.proposals.size()) ==
              static_cast<int>(needed.size())) {
            std::int64_t ts = 0;
            for (auto& [part, t] : st.proposals) ts = std::max(ts, t);
            st.final_ts = ts;
            for (ProcessId q : system_.group(m.dst))
              if (!pattern_.crashed(q, now_)) {
                procs_[static_cast<size_t>(q)].pending[mid] = {ts, true};
                for (int part : needed)
                  parts_[static_cast<size_t>(part)].clock =
                      std::max(parts_[static_cast<size_t>(part)].clock, ts);
              }
            acted = true;
            break;
          }
        }
      }
      // Delivery in (ts, id) order, as in Skeen; draining the holdback queue
      // is a step in its own right.
      {
        auto& st = procs_[static_cast<size_t>(p)];
        for (;;) {
          MsgId best = -1;
          std::pair<std::int64_t, MsgId> best_key{0, 0};
          for (auto& [mid, e] : st.pending) {
            if (!e.second) continue;
            std::pair<std::int64_t, MsgId> key{e.first, mid};
            if (best == -1 || key < best_key) {
              best = mid;
              best_key = key;
            }
          }
          if (best == -1) break;
          bool minimal = true;
          for (auto& [mid, e] : st.pending)
            if (std::make_pair(e.first, mid) < best_key) minimal = false;
          if (!minimal) break;
          st.pending.erase(best);
          record_.deliveries.push_back({p, best, now_, st.seq++});
          acted = true;
        }
      }
      if (acted) {
        fired = true;
        ++now_;
        ++record_.steps;
        record_.active.insert(p);
      }
    }
    if (!fired) break;
  }
  record_.quiescent = true;
  // Diagnose blockage: issued messages that some live partition can never
  // finalize because a required partition is entirely crashed.
  for (auto& [mid, st] : state_) {
    if (st.final_ts >= 0) continue;
    const MulticastMessage& m = by_id_.at(mid);
    for (int part : partitions_of_group(m.dst))
      if (!partition_alive(part)) {
        blocked_.push_back(mid);
        break;
      }
  }
  return record_;
}

}  // namespace gam::amcast
