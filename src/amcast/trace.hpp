// Structured execution traces for Algorithm 1.
//
// Debugging a distributed algorithm from its final state is hopeless; the
// tracer records every action firing (which process, which action, which
// message, at what time) and can render a run as a per-process timeline or
// as a per-message lifecycle — the view the paper's proofs reason in
// (start → pending → commit → stable → deliver).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "amcast/types.hpp"

namespace gam::amcast {

struct TraceEvent {
  enum Action : std::int8_t {
    kMulticast,
    kPending,
    kCommit,
    kStabilize,
    kStable,
    kDeliver,
  };

  Time t = 0;
  ProcessId p = -1;
  Action action = kMulticast;
  MsgId m = -1;
  groups::GroupId h = -1;       // stabilize only
  std::int64_t position = -1;   // commit: the agreed position k
};

inline const char* action_name(TraceEvent::Action a) {
  switch (a) {
    case TraceEvent::kMulticast: return "multicast";
    case TraceEvent::kPending: return "pending";
    case TraceEvent::kCommit: return "commit";
    case TraceEvent::kStabilize: return "stabilize";
    case TraceEvent::kStable: return "stable";
    case TraceEvent::kDeliver: return "deliver";
  }
  return "?";
}

class Trace {
 public:
  void record(TraceEvent e) { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // One line per action, in firing order.
  std::string render_timeline() const {
    std::string out;
    char line[128];
    for (const TraceEvent& e : events_) {
      if (e.action == TraceEvent::kStabilize)
        std::snprintf(line, sizeof line, "t=%-5llu p%-2d %-9s m%lld (h=g%d)\n",
                      static_cast<unsigned long long>(e.t), e.p,
                      action_name(e.action), static_cast<long long>(e.m), e.h);
      else if (e.action == TraceEvent::kCommit)
        std::snprintf(line, sizeof line, "t=%-5llu p%-2d %-9s m%lld (k=%lld)\n",
                      static_cast<unsigned long long>(e.t), e.p,
                      action_name(e.action), static_cast<long long>(e.m),
                      static_cast<long long>(e.position));
      else
        std::snprintf(line, sizeof line, "t=%-5llu p%-2d %-9s m%lld\n",
                      static_cast<unsigned long long>(e.t), e.p,
                      action_name(e.action), static_cast<long long>(e.m));
      out += line;
    }
    return out;
  }

  // Per-message lifecycle: for each message, the time each phase was reached
  // at each process.
  std::string render_lifecycles() const {
    std::map<MsgId, std::vector<const TraceEvent*>> per;
    for (const TraceEvent& e : events_) per[e.m].push_back(&e);
    std::string out;
    char line[128];
    for (auto& [m, evs] : per) {
      std::snprintf(line, sizeof line, "m%lld:\n", static_cast<long long>(m));
      out += line;
      for (const TraceEvent* e : evs) {
        std::snprintf(line, sizeof line, "    %-9s p%-2d t=%llu\n",
                      action_name(e->action), e->p,
                      static_cast<unsigned long long>(e->t));
        out += line;
      }
    }
    return out;
  }

  // The phase-progression sanity check of Claim 14: per (process, message),
  // actions must appear in protocol order. Empty string = consistent.
  std::string check_progression() const {
    std::map<std::pair<ProcessId, MsgId>, int> last;
    for (const TraceEvent& e : events_) {
      if (e.action == TraceEvent::kStabilize) continue;  // repeatable per h
      auto key = std::make_pair(e.p, e.m);
      auto it = last.find(key);
      int rank = static_cast<int>(e.action);
      if (it != last.end() && rank <= it->second)
        return "phase regression for m" + std::to_string(e.m) + " at p" +
               std::to_string(e.p);
      last[key] = rank;
    }
    return {};
  }

  size_t count(TraceEvent::Action a) const {
    size_t n = 0;
    for (const TraceEvent& e : events_) n += e.action == a;
    return n;
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace gam::amcast
