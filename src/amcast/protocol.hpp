// The uniform protocol surface of the arena (ISSUE 10).
//
// Five multicast implementations grew five bespoke construction dances:
// different constructors, different run entry points, sinks attached through
// different methods (MuMulticast::set_event_sink vs
// ReplicatedMulticast::world().set_trace_sink), and protocol numbering
// hand-wired at every bench call site. amcast::Protocol is the one surface a
// harness needs — submit the workload, attach sinks/metrics, run, read the
// record — and ProtocolRegistry makes "add the Nth protocol" a one-file
// change: register a descriptor and every bench axis, monitor wiring, and
// test sweep picks it up by name.
//
// The registry descriptor also carries the *semantics* a harness needs to
// drive a protocol correctly: where its deliver events sit in the trace id
// space (trace_base), whether its stream contains kMulticast events
// (monitor integrity mode), whether it is genuine (ledger expectation),
// whether it survives crashes (crash-scenario cells), and whether it only
// solves the pairwise-disjoint topologies. DESIGN.md decision 16 discusses
// the shape.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "amcast/options.hpp"
#include "amcast/types.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/ids.hpp"
#include "sim/metrics.hpp"
#include "sim/spans.hpp"
#include "sim/trace.hpp"

namespace gam::sim {
class World;  // sim/world.hpp
}

namespace gam::amcast {

class Protocol {
 public:
  virtual ~Protocol() = default;

  // Queues one multicast request. All submissions happen before run().
  virtual void submit(const MulticastMessage& m) = 0;

  // Runs to quiescence (or the step budget) and returns the run record.
  virtual RunRecord run() = 0;

  // The record accumulated so far (identical to run()'s return after run()).
  virtual const RunRecord& record() const = 0;

  virtual const ProtocolOptions& options() const = 0;

  // Processes that took at least one protocol step (Minimality/ledger).
  virtual ProcessSet actors() const { return record().active; }

  // Wire messages exchanged, for protocols with a network; 0 otherwise.
  virtual std::uint64_t wire_messages() const { return 0; }

  // Uniform observer attachment. Every sink/registry is caller-owned and
  // must outlive run(). Protocols without a given instrument ignore the call.
  virtual void set_metrics(sim::Metrics*) {}
  virtual void set_event_sink(sim::TraceSink*) {}
  virtual void set_span_sink(sim::SpanSink*) {}

  // The backing simulated network, when the protocol runs inside one
  // (harnesses absorb wire/alloc stats from it); nullptr otherwise.
  virtual sim::World* world() { return nullptr; }
};

struct ProtocolDescriptor {
  const char* name;
  // Deliver events for destination group g carry protocol id trace_base + g;
  // MonitorConfig::protocol_base subtracts it back out.
  sim::ProtocolId trace_base;
  // Genuineness (§2.3): non-addressees take no steps and send no messages.
  // The arena asserts the ledger is zero exactly for genuine protocols.
  bool genuine;
  // Keeps all safety properties and delivers at correct addressees under the
  // crash scenarios (false: the protocol exists to *break* there — Skeen).
  bool crash_tolerant;
  // Only solves pairwise-disjoint destination groups (per-group logs with no
  // cross-group machinery).
  bool requires_disjoint;
  // The event stream contains kMulticast events (monitors run with
  // require_multicast); World-backed streams record only the delivery side.
  bool emits_multicast_events;
  // Delivery order constrained only between conflicting messages (the
  // conflict_class workload axis); commuting messages may deliver in any
  // relative order, so the acyclicity monitor must be fed the class map.
  bool conflict_aware;
  const char* summary;
  std::unique_ptr<Protocol> (*make)(const groups::GroupSystem& system,
                                    const sim::FailurePattern& pattern,
                                    const ProtocolOptions& options);
};

// The process-global protocol table. Construction stays with the caller: a
// factory receives (system, pattern, options) by reference and the returned
// Protocol keeps referring to them, so both must outlive it (the same
// contract every concrete class already had).
class ProtocolRegistry {
 public:
  static const ProtocolRegistry& instance();

  const std::vector<ProtocolDescriptor>& all() const { return table_; }
  const ProtocolDescriptor* find(std::string_view name) const;
  const ProtocolDescriptor* find(sim::ProtocolId trace_base) const;

  // "mu, skeen, ..." — for usage/error messages.
  std::string names() const;

 private:
  ProtocolRegistry();
  std::vector<ProtocolDescriptor> table_;
};

}  // namespace gam::amcast
