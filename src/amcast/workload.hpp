// Workload generators shared by tests, benches and examples.
#pragma once

#include <algorithm>
#include <vector>

#include "amcast/types.hpp"
#include "groups/group_system.hpp"
#include "util/rng.hpp"

namespace gam::amcast {

// `per_group` messages to every group, senders rotating over the group
// members (closed dissemination). Message ids are globally unique and the
// submission order interleaves the groups round-robin, which maximizes
// cross-group contention for the cyclic topologies.
inline std::vector<MulticastMessage> round_robin_workload(
    const groups::GroupSystem& system, int per_group) {
  std::vector<MulticastMessage> out;
  MsgId next = 0;
  for (int k = 0; k < per_group; ++k) {
    for (groups::GroupId g = 0; g < system.group_count(); ++g) {
      std::vector<ProcessId> members(system.group(g).begin(),
                                     system.group(g).end());
      MulticastMessage m;
      m.id = next++;
      m.dst = g;
      m.src = members[static_cast<size_t>(k) % members.size()];
      m.payload = m.id;
      out.push_back(m);
    }
  }
  return out;
}

// `count` messages to uniformly random groups from uniformly random members.
inline std::vector<MulticastMessage> random_workload(
    const groups::GroupSystem& system, int count, Rng& rng) {
  std::vector<MulticastMessage> out;
  for (MsgId id = 0; id < count; ++id) {
    auto g = static_cast<groups::GroupId>(
        rng.below(static_cast<std::uint64_t>(system.group_count())));
    std::vector<ProcessId> members(system.group(g).begin(),
                                   system.group(g).end());
    MulticastMessage m;
    m.id = id;
    m.dst = g;
    m.src = members[static_cast<size_t>(rng.below(members.size()))];
    m.payload = id;
    out.push_back(m);
  }
  return out;
}

// Conflict-aware workload (the arena's contention axis, ISSUE 10):
// `per_group` messages to each group in `targets` (round-robin interleaved,
// senders rotating over the members), each tagged with a conflict class drawn
// from the rate-derived class count.
//
//   rate <= 0   — every message its own class: nothing conflicts, a
//                 conflict-aware protocol may deliver everything unordered;
//   rate == 1   — one class: everything conflicts, delivery is a total order
//                 per destination (the classical relation);
//   in between  — max(1, round(1/rate)) classes sampled uniformly, so `rate`
//                 approximates the probability that two random messages
//                 conflict (0.5 -> 2 classes).
//
// The class assignment consumes `rng` deterministically: the same seed yields
// the same commuting-set partition (tests/test_protocol_arena.cpp pins this).
inline std::vector<MulticastMessage> conflict_workload(
    const groups::GroupSystem& system,
    const std::vector<groups::GroupId>& targets, int per_group, double rate,
    Rng& rng) {
  std::vector<MulticastMessage> out;
  const std::int64_t classes =
      rate <= 0.0 ? 0  // 0 = "unique class per message"
                  : std::max<std::int64_t>(
                        1, static_cast<std::int64_t>(1.0 / rate + 0.5));
  MsgId next = 0;
  for (int k = 0; k < per_group; ++k) {
    for (groups::GroupId g : targets) {
      std::vector<ProcessId> members(system.group(g).begin(),
                                     system.group(g).end());
      MulticastMessage m;
      m.id = next++;
      m.dst = g;
      m.src = members[static_cast<size_t>(k) % members.size()];
      m.payload = m.id;
      m.conflict_class =
          classes == 0
              ? static_cast<std::int32_t>(m.id)
              : static_cast<std::int32_t>(
                    rng.below(static_cast<std::uint64_t>(classes)));
      out.push_back(m);
    }
  }
  return out;
}

// Messages addressed to a single group only (the isolation workloads of the
// group-parallelism experiments).
inline std::vector<MulticastMessage> single_group_workload(
    const groups::GroupSystem& system, groups::GroupId g, int count) {
  std::vector<MulticastMessage> out;
  std::vector<ProcessId> members(system.group(g).begin(),
                                 system.group(g).end());
  for (MsgId id = 0; id < count; ++id) {
    MulticastMessage m;
    m.id = id;
    m.dst = g;
    m.src = members[static_cast<size_t>(id) % members.size()];
    m.payload = id;
    out.push_back(m);
  }
  return out;
}

}  // namespace gam::amcast
