// White-Box Atomic Multicast and Generic Multicast over the simulated
// network (ISSUE 10 tentpole; arXiv 1904.07171 / arXiv 2410.01901).
//
// One engine implements both: Paxos-backed timestamping over the finest
// partition decomposition, with direct inter-partition timestamp exchange
// (the "white-box" move: the protocol reaches into its consensus boxes'
// clocks instead of layering multicast on black-box atomic broadcast).
//
//   1. Partitions are the equivalence classes of "member of exactly the same
//      groups" (PartitionedMulticast::finest_partitions). Every destination
//      group is a union of partitions, and a partition intersecting dst(m)
//      lies entirely inside dst(m) — which is what makes the protocol
//      genuine: all machinery for m runs strictly among dst(m)'s members.
//   2. Each partition π runs one UniversalLog (multi-decree Paxos over
//      Ω_π ∧ Σ_π) among its members. The log doubles as π's logical clock:
//      every replica derives the clock deterministically from the applied
//      prefix — a TS-REQ(m) entry reads clock+1 and advances the clock to
//      it (that is π's timestamp proposal for m), a BUMP(T) entry advances
//      the clock to max(clock, T).
//   3. The sender fans TS-REQ(m) out to dst(m); every member funnels it
//      into its own partition's log (the log layer dedups, so one entry per
//      partition no matter how many members submit). When a replica applies
//      TS-REQ(m) it announces (π, ts) to all of dst(m) directly — replica to
//      replica, no leader indirection — and m's final timestamp is the max
//      over its covering partitions. A member whose clock trails the final
//      timestamp submits BUMP so local timestamps stay ahead of everything
//      already finalized.
//   4. Delivery at p: m is applied in p's partition log with its final
//      timestamp known, p's clock has reached it, and (final_ts, id) is
//      minimal among p's applied-but-undelivered *conflicting* messages
//      (a pending message without a final timestamp counts at its local
//      lower bound — final = max over partitions can only be larger).
//
// The conflict relation is where White-Box and Generic split:
//
//   White-Box (conflict_aware = false) — every pair of messages conflicts;
//     step 4 compares against all pending messages and delivery is a total
//     order per process pair (classical atomic multicast).
//   Generic (conflict_aware = true) — messages conflict iff they carry the
//     same MulticastMessage::conflict_class; commuting messages skip the
//     minimality wait entirely and deliver as soon as their timestamp is
//     settled. The relation is a workload property (workload.hpp's
//     conflict_workload axis), not a protocol one — DESIGN.md decision 16.
//
// Liveness needs every covering partition to keep a live majority (the same
// decomposition obligation PartitionedMulticast documents); the arena's
// crash scenarios pick crash sets that respect it, and Algorithm 1 remains
// the only protocol here that survives arbitrary environment crashes.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "amcast/options.hpp"
#include "amcast/protocol.hpp"
#include "amcast/types.hpp"
#include "fd/detectors.hpp"
#include "groups/group_system.hpp"
#include "objects/protocol_host.hpp"
#include "objects/universal_log.hpp"
#include "sim/run_spec.hpp"
#include "sim/world.hpp"

namespace gam::amcast {

class TimestampMulticast final : public Protocol {
 public:
  // Trace id layout per instance: deliver events of group g carry
  // trace_base + g; the agents' wire protocol runs at trace_base +
  // kWireOffset and partition π's log at trace_base + kWireOffset + 1 + π.
  // Monitors configured with protocol_base = trace_base see exactly the
  // deliver events (the wire ids sit past every group id).
  static constexpr sim::ProtocolId kWhiteBoxTraceBase = sim::protocol_id(1000);
  static constexpr sim::ProtocolId kGenericTraceBase = sim::protocol_id(2000);
  static constexpr std::int32_t kWireOffset = 400;

  TimestampMulticast(const groups::GroupSystem& system,
                     const sim::FailurePattern& pattern,
                     ProtocolOptions options, bool conflict_aware,
                     sim::ProtocolId trace_base);

  void submit(const MulticastMessage& m) override;
  RunRecord run() override;
  const RunRecord& record() const override { return record_; }
  const ProtocolOptions& options() const override { return options_; }
  std::uint64_t wire_messages() const override;
  void set_metrics(sim::Metrics* m) override;
  void set_event_sink(sim::TraceSink* sink) override;
  sim::World* world() override { return world_; }

  // Introspection for tests.
  const std::vector<ProcessSet>& partitions() const { return partitions_; }
  bool conflict_aware() const { return conflict_aware_; }

 private:
  // The per-process reactive endpoint: receives TS-REQ/TS wire messages and
  // drains the outbox of announcements queued by log-apply callbacks (which
  // run without a Context of their own).
  class Agent;
  friend class Agent;

  struct Outgoing {
    ProcessId dst;
    sim::MsgType type;
    std::int64_t a = 0, b = 0, c = 0;
  };

  struct MsgInfo {
    MulticastMessage m;
    ProcessSet members;       // dst(m)
    std::vector<int> cover;   // covering partition indices
  };

  struct PerProcess {
    std::deque<Outgoing> outbox;
    std::int64_t clock = 0;              // own replica's partition clock
    std::map<MsgId, std::int64_t> local_ts;   // π_p's proposal, once applied
    std::set<MsgId> applied;             // TS-REQ applied, not yet delivered
    std::set<MsgId> delivered;
    std::set<MsgId> submitted;           // TS-REQ ops this process submitted
    std::map<MsgId, std::map<int, std::int64_t>> ts_seen;  // partition -> ts
    std::map<MsgId, std::int64_t> final_ts;
    std::set<std::int64_t> bumps;        // BUMP values already submitted
    std::int64_t seq = 0;
  };

  // Log ops: TS-REQ(m) is m.id (>= 0); BUMP(T) is -(T + 1).
  static std::int64_t bump_op(std::int64_t t) { return -(t + 1); }

  void originate(const MulticastMessage& m);
  void handle_ts_req(ProcessId p, MsgId id);
  void on_log_apply(ProcessId p, int part, std::int64_t op);
  void note_ts(ProcessId p, MsgId id, int part, std::int64_t ts);
  void try_deliver(ProcessId p);
  bool conflicts(MsgId a, MsgId b) const;
  void deliver(ProcessId p, MsgId id);

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  ProtocolOptions options_;
  const bool conflict_aware_;
  const sim::ProtocolId trace_base_;

  std::vector<ProcessSet> partitions_;
  std::vector<int> part_of_;  // process -> partition index (-1 = uncovered)

  std::unique_ptr<sim::Scenario> scenario_;  // owns the World + scheduler
  sim::World* world_ = nullptr;
  std::vector<objects::ProtocolHost*> hosts_;
  std::vector<std::unique_ptr<fd::SigmaOracle>> sigmas_;   // per partition
  std::vector<std::unique_ptr<fd::OmegaOracle>> omegas_;   // per partition
  // logs_[p]: process p's replica of its partition's log (null if uncovered).
  std::vector<std::shared_ptr<objects::UniversalLog>> logs_;
  std::vector<Agent*> agents_;  // owned by the hosts

  std::vector<MulticastMessage> workload_;
  std::map<MsgId, MsgInfo> info_;
  std::vector<PerProcess> procs_;
  RunRecord record_;
  sim::Metrics* metrics_ = nullptr;
};

}  // namespace gam::amcast
