// Algorithm 1 (paper §4.3): genuine group-sequential atomic multicast from
// the candidate failure detector μ = (∧ Σ_{g∩h}) ∧ (∧ Ω_g) ∧ γ.
//
// The implementation follows the paper action by action. A process p keeps a
// phase per message addressed to it; the actions
//
//   multicast  (lines  5- 7)  append m to LOG_g at the sender,
//   pending    (lines  8-15)  propagate m into every LOG_{g∩h} with h ∈ G(p),
//   commit     (lines 16-24)  agree on the highest position via CONS_{m,f}
//                             and bumpAndLock m there in every local log,
//   stabilize  (lines 25-29)  announce that m's predecessors in LOG_{g∩h}
//                             are stable by appending (m,h) to LOG_g,
//   stable     (lines 30-33)  wait for those announcements from every group
//                             of γ(g),
//   deliver    (lines 34-37)  deliver once every <_L-predecessor is delivered,
//
// fire under exactly the preconditions of the pseudo-code. The logs and
// consensus objects are the wait-free linearizable objects of
// objects/ideal.hpp; Σ and Ω enter through them (see DESIGN.md), γ and the
// per-group leaders enter through the μ oracle.
//
// Options toggle the §6.1 strict variant (the stable action waits on the
// indicator 1^{g∩h} for *every* intersecting h, instead of on γ) and a
// restriction of the scheduler to a subset of processes (P-fair runs, used by
// the §6.2 group-parallelism experiments).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "amcast/trace.hpp"
#include "amcast/types.hpp"
#include "fd/detectors.hpp"
#include "groups/group_system.hpp"
#include "objects/ideal.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace gam::amcast {

class MuMulticast {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::uint64_t max_steps = 1u << 20;
    sim::Time fd_lag = 0;     // slack of the μ components
    bool strict = false;      // §6.1: strict atomic multicast via 1^{g∩h}
    // When non-empty, only these processes are scheduled (P-fair runs).
    ProcessSet fair_set;
    // Quorum gating (emulation harness, §5): an action of p for a message
    // addressed to g is enabled only while Σ_g's current quorum lies inside
    // fair_set — the behaviour of an implementation whose objects need live
    // quorums among the instance's participants. Requires a fair_set.
    bool sigma_gated = false;
    // Helping (Proposition 1's reduction): when the submitter of a message
    // has crashed before multicasting it, any destination-group member that
    // has delivered all of the message's group predecessors may multicast it
    // on the submitter's behalf. This turns the group-sequential core into
    // the vanilla primitive: every submitted message with a correct
    // destination member is eventually delivered.
    bool helping = false;
    // External clock (emulation harness): the orchestrator owns the clock via
    // set_time(); steps do not advance it.
    bool external_clock = false;
    // Journal every log mutation so validate_log_invariants() can check the
    // Table-2 base invariants post-run (tests; small overhead).
    bool track_log_history = false;
  };

  MuMulticast(const groups::GroupSystem& system,
              const sim::FailurePattern& pattern, Options options);
  ~MuMulticast();

  MuMulticast(const MuMulticast&) = delete;
  MuMulticast& operator=(const MuMulticast&) = delete;

  // Queues a message. Messages to the same group are issued group-
  // sequentially in submission order (§4.1): the k-th message to g becomes
  // eligible for multicast once its sender has delivered the first k-1.
  void submit(MulticastMessage m);

  // Runs the action system until quiescence or the step budget. Returns the
  // run record for the spec checkers.
  RunRecord run();

  // Single-step interface for fine-grained tests: executes one enabled action
  // of process p (if any) at the current time; returns whether one fired.
  bool step_process(ProcessId p);
  bool quiescent() const;
  RunRecord snapshot() const;
  // The record accumulated so far, without evaluating quiescence (cheap; used
  // by the emulation harness that polls deliveries every tick).
  const RunRecord& partial_record() const { return record_; }

  // With track_log_history: replays every log's operation journal against the
  // Table-2 base invariants (Claims 2-8). Empty string = all hold.
  std::string validate_log_invariants() const;

  // Optional structured tracing: every action firing is recorded into the
  // attached trace (owned by the caller; must outlive the run).
  void attach_trace(Trace* trace) { trace_ = trace; }

  // Optional low-level event sink, shared with the World-backed engines:
  // deliver firings are emitted as sim::TraceEvents with the message payload
  // folded into the event hash — what the sweep's determinism gate consumes.
  // Caller-owned; must outlive the run.
  void set_event_sink(sim::TraceSink* sink) { event_sink_ = sink; }

  // Introspection for tests.
  Phase phase_of(ProcessId p, MsgId m) const;
  const objects::Log& log_of(groups::GroupId g, groups::GroupId h) const;
  const fd::MuOracle& oracle() const { return oracle_; }
  sim::Time now() const { return now_; }
  void advance_time(sim::Time dt) { now_ += dt; }
  void set_time(sim::Time t) { now_ = t; }

 private:
  struct PerProcess;
  struct ConsKey {
    MsgId m;
    groups::FamilyMask f;
    bool operator<(const ConsKey& o) const {
      return std::tie(m, f) < std::tie(o.m, o.f);
    }
  };

  using LogKey = std::pair<groups::GroupId, groups::GroupId>;  // normalized

  objects::Log& log(groups::GroupId g, groups::GroupId h);
  LogKey log_key(groups::GroupId g, groups::GroupId h) const;
  std::int64_t journal_key(LogKey k) const;

  // The actions; each returns true when it fired for some message.
  bool try_multicast(ProcessId p);
  bool try_pending(ProcessId p);
  bool try_commit(ProcessId p);
  bool try_stabilize(ProcessId p);
  bool try_stable(ProcessId p);
  bool try_deliver(ProcessId p);

  bool action_enabled_somewhere() const;

  // Helpers over preconditions.
  bool pending_enabled(ProcessId p, const MulticastMessage& m) const;
  bool commit_enabled(ProcessId p, const MulticastMessage& m) const;
  bool stabilize_enabled(ProcessId p, const MulticastMessage& m,
                         groups::GroupId h) const;
  bool stable_enabled(ProcessId p, const MulticastMessage& m) const;
  bool deliver_enabled(ProcessId p, const MulticastMessage& m) const;
  bool multicast_eligible(ProcessId by, const MulticastMessage& m) const;
  bool may_multicast(ProcessId p, const MulticastMessage& m) const;
  bool sigma_allows(ProcessId p, groups::GroupId g) const;

  std::vector<groups::GroupId> stable_wait_groups(ProcessId p,
                                                  groups::GroupId g) const;

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  Options options_;
  fd::MuOracle oracle_;
  std::vector<fd::IndicatorOracle> indicators_;  // strict variant, per pair
  Rng rng_;
  sim::Time now_ = 0;

  std::vector<MulticastMessage> workload_;           // submission order
  std::map<MsgId, MulticastMessage> by_id_;
  std::map<groups::GroupId, std::vector<MsgId>> group_sequence_;

  std::map<LogKey, objects::Log> logs_;
  std::map<ConsKey, objects::Consensus> consensus_;
  objects::AccessJournal journal_;

  std::vector<std::unique_ptr<PerProcess>> procs_;

  Trace* trace_ = nullptr;
  sim::TraceSink* event_sink_ = nullptr;
  RunRecord record_;
};

}  // namespace gam::amcast
