// Algorithm 1 (paper §4.3): genuine group-sequential atomic multicast from
// the candidate failure detector μ = (∧ Σ_{g∩h}) ∧ (∧ Ω_g) ∧ γ.
//
// The implementation follows the paper action by action. A process p keeps a
// phase per message addressed to it; the actions
//
//   multicast  (lines  5- 7)  append m to LOG_g at the sender,
//   pending    (lines  8-15)  propagate m into every LOG_{g∩h} with h ∈ G(p),
//   commit     (lines 16-24)  agree on the highest position via CONS_{m,f}
//                             and bumpAndLock m there in every local log,
//   stabilize  (lines 25-29)  announce that m's predecessors in LOG_{g∩h}
//                             are stable by appending (m,h) to LOG_g,
//   stable     (lines 30-33)  wait for those announcements from every group
//                             of γ(g),
//   deliver    (lines 34-37)  deliver once every <_L-predecessor is delivered,
//
// fire under exactly the preconditions of the pseudo-code. The logs and
// consensus objects are the wait-free linearizable objects of
// objects/ideal.hpp; Σ and Ω enter through them (see DESIGN.md), γ and the
// per-group leaders enter through the μ oracle.
//
// Two execution engines share one selection semantics (DESIGN.md,
// "Incremental guarded-action engine"):
//
//   kScan         re-evaluates every guard of a process at every scheduling
//                 attempt — the literal reading of the pseudo-code and the
//                 equivalence oracle;
//   kIncremental  caches, per process, the next action that would fire and
//                 invalidates that cache only on the events that can change
//                 a guard: a mutation of a log the process reads (dirtying
//                 the members of the log's two groups), a phase change of
//                 the process itself, or the clock crossing a failure-
//                 detector transition time (all μ outputs are step functions
//                 of time; the transition instants are precomputed from the
//                 failure pattern). A clean "nothing enabled" verdict makes
//                 a scheduling attempt O(1).
//
// Both engines fire the same action of the same process at every step, so
// runs are trace-identical seed for seed (tests/test_engine_equivalence).
//
// Options toggle the §6.1 strict variant (the stable action waits on the
// indicator 1^{g∩h} for *every* intersecting h, instead of on γ) and a
// restriction of the scheduler to a subset of processes (P-fair runs, used by
// the §6.2 group-parallelism experiments).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "amcast/options.hpp"
#include "amcast/trace.hpp"
#include "amcast/types.hpp"
#include "fd/detectors.hpp"
#include "groups/group_system.hpp"
#include "objects/ideal.hpp"
#include "sim/failure_pattern.hpp"
#include "sim/metrics.hpp"
#include "sim/spans.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace gam::sim {
class Scheduler;  // sim/world.hpp
}

namespace gam::amcast {

class MuMulticast {
 public:
  // The engine enum and the options struct are the shared amcast ones
  // (options.hpp): every protocol behind amcast::Protocol reads the same
  // ProtocolOptions, and Algorithm 1 consumes the seed/max_steps/fd_lag/
  // strict/fair_set/sigma_gated/helping/external_clock/track_log_history/
  // engine/batch_k/window_size fields (batched rounds per DESIGN.md decision
  // 12; pipelined issuance per the §4.1 relaxation). The scheduler field is
  // consumed by the registry adapter (protocol.cpp), which maps it onto
  // run() / run_with().
  using Engine = amcast::Engine;
  using Options = ProtocolOptions;

  MuMulticast(const groups::GroupSystem& system,
              const sim::FailurePattern& pattern, Options options);
  ~MuMulticast();

  MuMulticast(const MuMulticast&) = delete;
  MuMulticast& operator=(const MuMulticast&) = delete;

  // Queues a message. Messages to the same group are issued group-
  // sequentially in submission order (§4.1): the k-th message to g becomes
  // eligible for multicast once its sender has delivered the first k-1.
  void submit(MulticastMessage m);

  // Runs the action system until quiescence or the step budget. Returns the
  // run record for the spec checkers.
  RunRecord run();

  // Same, but scheduling attempts come from an external strategy
  // (sim/adversary.hpp: PCT, replay, ...). When `schedule_out` is non-null
  // the executed schedule is appended to it — the pid of every fired step,
  // with -1 for each idle clock tick — which sim::write_schedule serializes
  // and a ReplayScheduler re-executes byte-identically (the strategy never
  // touches this object's rng_, so the fired-action sequence fully determines
  // the run).
  RunRecord run_with(sim::Scheduler& sched,
                     std::vector<ProcessId>* schedule_out = nullptr);

  // Single-step interface for fine-grained tests: executes one enabled action
  // of process p (if any) at the current time; returns whether one fired.
  bool step_process(ProcessId p);
  bool quiescent() const;
  RunRecord snapshot() const;
  // The record accumulated so far, without evaluating quiescence (cheap; used
  // by the emulation harness that polls deliveries every tick).
  const RunRecord& partial_record() const { return record_; }

  // With track_log_history: replays every log's operation journal against the
  // Table-2 base invariants (Claims 2-8). Empty string = all hold.
  std::string validate_log_invariants() const;

  // Optional structured tracing: every action firing is recorded into the
  // attached trace (owned by the caller; must outlive the run).
  void attach_trace(Trace* trace) { trace_ = trace; }

  // Optional low-level event sink, shared with the World-backed engines:
  // deliver firings are emitted as sim::TraceEvents with the message payload
  // folded into the event hash — what the sweep's determinism gate consumes.
  // Caller-owned; must outlive the run.
  void set_event_sink(sim::TraceSink* sink) { event_sink_ = sink; }

  // Optional metrics registry (caller-owned; attach before submitting so the
  // lifecycle stamps cover every message). Collected series: per-group
  // delivery-latency and convoy-wait histograms, phase-transition latencies,
  // FD-query counters by detector class, consensus proposes, per-(g,h) log
  // sizes, and the genuineness ledger (all in simulated steps). Probes never
  // read the RNG or feed back into guards, so instrumented runs stay
  // trace-identical to bare ones.
  void set_metrics(sim::Metrics* m);

  // Optional causal span sink (caller-owned; attach before submitting).
  // Lifecycle milestones — submit, log_enter, paxos_round/locked,
  // deliverable, delivered — are emitted per multicast, stamped in simulated
  // steps. Emission is observation-only (no RNG reads, no guard feedback), so
  // span-instrumented runs stay trace-identical to bare ones; under
  // GAM_METRICS=OFF the probe statements compile out entirely.
  void set_span_sink(sim::SpanSink* sink) { span_sink_ = sink; }

  // Introspection for tests.
  Phase phase_of(ProcessId p, MsgId m) const;
  const objects::Log& log_of(groups::GroupId g, groups::GroupId h) const;
  const fd::MuOracle& oracle() const { return oracle_; }
  sim::Time now() const { return now_; }
  void advance_time(sim::Time dt);
  void set_time(sim::Time t);

 private:
  struct PerProcess;
  struct ConsKey {
    MsgId m;
    groups::FamilyMask f;
    bool operator<(const ConsKey& o) const {
      return std::tie(m, f) < std::tie(o.m, o.f);
    }
  };

  using LogKey = std::pair<groups::GroupId, groups::GroupId>;  // normalized

  // The outcome of guard evaluation for one process: the first action that
  // would fire, in the fixed priority order deliver > stable > stabilize >
  // commit > pending > multicast (ties within an action broken by ascending
  // message id, or by submission order for multicast).
  struct ActionChoice {
    enum Kind : std::int8_t {
      kNone = 0,
      kMulticast,
      kPending,
      kCommit,
      kStabilize,
      kStable,
      kDeliver,
    };
    Kind kind = kNone;
    std::int32_t mi = -1;       // dense message index into workload_
    groups::GroupId h = -1;     // stabilize only
  };

  objects::Log& log(groups::GroupId g, groups::GroupId h);
  std::size_t log_index(groups::GroupId g, groups::GroupId h) const;
  std::int64_t journal_key(LogKey k) const;

  // Guard evaluation (pure) and effect execution for the chosen action.
  ActionChoice resolve(ProcessId p) const;
  void execute(ProcessId p, const ActionChoice& c);

  bool action_enabled_somewhere() const;

  // Helpers over preconditions.
  bool pending_enabled(ProcessId p, const MulticastMessage& m) const;
  bool commit_enabled(ProcessId p, const MulticastMessage& m) const;
  bool stabilize_enabled(ProcessId p, const MulticastMessage& m,
                         groups::GroupId h) const;
  bool stable_enabled(ProcessId p, const MulticastMessage& m) const;
  bool deliver_enabled(ProcessId p, const MulticastMessage& m) const;
  bool multicast_eligible(ProcessId by, const MulticastMessage& m) const;
  // Same precondition, but entries of `batched` (messages this very action is
  // about to append) count as having entered LOG_g — how the batched
  // multicast effect extends a batch past members it hasn't appended yet.
  bool multicast_eligible_batched(ProcessId by, const MulticastMessage& m,
                                  const std::vector<MsgId>& batched) const;
  bool may_multicast(ProcessId p, const MulticastMessage& m) const;
  bool sigma_allows(ProcessId p, groups::GroupId g) const;

  // γ(g) at p (commit/stable wait set) and the strict §6.1 wait set, both
  // memoized per (process, group) and keyed by the failure-detector version
  // (the number of transition times the clock has crossed): μ outputs are
  // constant between transitions, so the memo is exact.
  const std::vector<groups::GroupId>& gamma_groups(ProcessId p,
                                                   groups::GroupId g) const;
  const std::vector<groups::GroupId>& stable_wait_groups(
      ProcessId p, groups::GroupId g) const;

  Phase phase_at(ProcessId p, std::int32_t mi) const;
  std::int32_t index_of(MsgId m) const;

  // Incremental-engine bookkeeping.
  void mark_dirty(ProcessSet ps);
  void mark_all_dirty();
  void clock_crossed();  // after now_ moved forward: cross transition times
  std::uint64_t fd_version() const { return next_transition_; }

  const groups::GroupSystem& system_;
  const sim::FailurePattern& pattern_;
  Options options_;
  fd::MuOracle oracle_;
  std::vector<fd::IndicatorOracle> indicators_;  // strict variant, per pair
  Rng rng_;
  sim::Time now_ = 0;

  std::vector<MulticastMessage> workload_;       // dense storage, submission order
  std::unordered_map<MsgId, std::int32_t> index_of_;  // id -> dense index
  std::vector<std::int32_t> by_msg_id_;          // dense indices, ascending id
  std::vector<std::vector<MsgId>> group_sequence_;    // per destination group

  // All (g,h) logs, flat-indexed by pair_index_ (the flat index doubles as
  // the journal key); GroupPairIndex sizes the layout from the actual group
  // count, so no group id can alias another's slot.
  groups::GroupPairIndex pair_index_;
  std::vector<objects::Log> logs_;
  std::map<ConsKey, objects::Consensus> consensus_;
  objects::AccessJournal journal_;

  std::vector<std::unique_ptr<PerProcess>> procs_;

  // The sorted instants at which any μ component (or the raw crash predicate
  // the helping rule reads) can change output; next_transition_ counts how
  // many the clock has crossed and doubles as the memo version.
  std::vector<sim::Time> fd_transitions_;
  std::size_t next_transition_ = 0;

  // Per-process cached selection (incremental engine). Mutable: quiescence
  // checks are const but may refresh a dirty cache.
  mutable std::vector<std::uint8_t> dirty_;
  mutable std::vector<ActionChoice> cached_;

  Trace* trace_ = nullptr;
  sim::TraceSink* event_sink_ = nullptr;
  sim::SpanSink* span_sink_ = nullptr;
  RunRecord record_;

  // Metrics probe state, live only while a registry is attached (reg != null).
  // Members exist in every build; GAM_NO_METRICS compiles the probe
  // *statements* out (sim/metrics.hpp).
  struct Probe {
    sim::Metrics* reg = nullptr;
    // Hot counters resolved once at attach (labels are fixed); histogram
    // handles resolve per event — delivery-rate events are orders of
    // magnitude rarer than guard evaluations.
    sim::Counter* fd_gamma = nullptr;
    sim::Counter* fd_sigma = nullptr;
    sim::Counter* fd_indicator = nullptr;
    sim::Counter* consensus = nullptr;
    sim::Histogram* batch_occ = nullptr;  // actions drained per macro-step
    std::vector<sim::Time> submit_time;               // workload-indexed
    std::vector<sim::Time> mcast_time;                // workload-indexed
    std::vector<std::vector<sim::Time>> stable_time;  // per process, workload-indexed
    std::vector<std::uint64_t> steps;                 // per process
  };
  Probe probe_;
  void probe_execute(ProcessId p, const ActionChoice& c,
                     const MulticastMessage& m);
  void flush_metrics();
};

}  // namespace gam::amcast
