// Common types for the atomic-multicast implementations and their checkers.
#pragma once

#include <cstdint>
#include <vector>

#include "groups/group_system.hpp"
#include "objects/ideal.hpp"
#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"

namespace gam::amcast {

using objects::MsgId;
using groups::GroupId;
using sim::Time;

// One multicast request: message `id` sent by `src` to destination group
// `dst` (closed dissemination: src must belong to the group, §2.2).
struct MulticastMessage {
  MsgId id = -1;
  GroupId dst = -1;
  ProcessId src = -1;
  std::int64_t payload = 0;
  // Conflict relation for the partially-ordered protocols (Generic
  // Multicast): two messages conflict iff they carry the same class; only
  // conflicting deliveries are mutually ordered. Totally-ordered protocols
  // ignore it, and the single-class default makes every pair conflict (the
  // classical relation). The class is a *workload* property, not a protocol
  // one — see DESIGN.md decision 16.
  std::int32_t conflict_class = 0;
};

// The phases a message moves through in Algorithm 1 (line 4 and §4.3).
enum class Phase : std::int8_t {
  kStart = 0,
  kPending = 1,
  kCommit = 2,
  kStable = 3,
  kDeliver = 4,
};

// A delivery event: process p delivered message m as its k-th delivery at
// global time t.
struct Delivery {
  ProcessId p = -1;
  MsgId m = -1;
  Time t = 0;
  std::int64_t local_seq = 0;
};

// The observable outcome of a run, shared by every implementation so the
// spec checkers (spec.hpp) apply uniformly.
struct RunRecord {
  // Messages that were actually multicast (entered the protocol), with the
  // time the multicast operation executed.
  std::vector<MulticastMessage> multicast;
  std::vector<Time> multicast_time;

  std::vector<Delivery> deliveries;

  // Processes that took at least one protocol step (for Minimality).
  ProcessSet active;

  // True when the run reached quiescence within its step budget.
  bool quiescent = false;

  std::uint64_t steps = 0;
};

}  // namespace gam::amcast
