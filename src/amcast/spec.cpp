#include "amcast/spec.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace gam::amcast {

namespace {

std::map<MsgId, MulticastMessage> multicast_index(const RunRecord& run) {
  std::map<MsgId, MulticastMessage> idx;
  for (const auto& m : run.multicast) idx[m.id] = m;
  return idx;
}

// Per process, the messages it delivered in local order.
std::map<ProcessId, std::vector<MsgId>> local_orders(const RunRecord& run) {
  std::map<ProcessId, std::vector<MsgId>> per;
  std::vector<Delivery> sorted = run.deliveries;
  std::sort(sorted.begin(), sorted.end(), [](const Delivery& a, const Delivery& b) {
    return std::make_pair(a.p, a.local_seq) < std::make_pair(b.p, b.local_seq);
  });
  for (const auto& d : sorted) per[d.p].push_back(d.m);
  return per;
}

// Cycle detection over an adjacency map (DFS, three colors).
bool has_cycle(const std::map<MsgId, std::set<MsgId>>& adj) {
  std::map<MsgId, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::pair<MsgId, std::set<MsgId>::const_iterator>> stack;
  for (const auto& [start, _] : adj) {
    if (color[start] != 0) continue;
    color[start] = 1;
    stack.emplace_back(start, adj.at(start).begin());
    while (!stack.empty()) {
      auto& [u, it] = stack.back();
      if (it == adj.at(u).end()) {
        color[u] = 2;
        stack.pop_back();
        continue;
      }
      MsgId v = *it;
      ++it;
      auto found = adj.find(v);
      if (found == adj.end()) continue;
      if (color[v] == 1) return true;
      if (color[v] == 0) {
        color[v] = 1;
        stack.emplace_back(v, found->second.begin());
      }
    }
  }
  return false;
}

}  // namespace

std::vector<std::pair<MsgId, MsgId>> delivery_relation(
    const RunRecord& run, const groups::GroupSystem& system) {
  auto idx = multicast_index(run);
  auto per = local_orders(run);
  std::set<std::pair<MsgId, MsgId>> edges;
  for (const auto& [p, order] : per) {
    std::set<MsgId> delivered_here(order.begin(), order.end());
    // m ↦p m' when p ∈ dst(m) ∩ dst(m'), p delivers m, and at that point has
    // not delivered m' (either m' comes later at p, or never).
    for (size_t i = 0; i < order.size(); ++i) {
      MsgId m = order[i];
      const auto& dm = idx.at(m);
      // later deliveries at p
      for (size_t j = i + 1; j < order.size(); ++j) {
        MsgId m2 = order[j];
        if (system.intersection(dm.dst, idx.at(m2).dst).contains(p))
          edges.emplace(m, m2);
      }
      // messages addressed to p but never delivered by p
      for (const auto& [m2, dm2] : idx) {
        if (m2 == m || delivered_here.count(m2)) continue;
        if (system.intersection(dm.dst, dm2.dst).contains(p))
          edges.emplace(m, m2);
      }
    }
  }
  return {edges.begin(), edges.end()};
}

SpecResult check_integrity(const RunRecord& run,
                           const groups::GroupSystem& system) {
  SpecResult r;
  auto idx = multicast_index(run);
  std::set<std::pair<ProcessId, MsgId>> seen;
  for (const auto& d : run.deliveries) {
    if (!seen.emplace(d.p, d.m).second)
      r.fail("message " + std::to_string(d.m) + " delivered twice at p" +
             std::to_string(d.p));
    auto it = idx.find(d.m);
    if (it == idx.end()) {
      r.fail("message " + std::to_string(d.m) + " delivered but never multicast");
      continue;
    }
    if (!system.group(it->second.dst).contains(d.p))
      r.fail("p" + std::to_string(d.p) + " delivered message " +
             std::to_string(d.m) + " outside its destination group");
  }
  return r;
}

SpecResult check_termination(const RunRecord& run,
                             const groups::GroupSystem& system,
                             const sim::FailurePattern& pattern) {
  SpecResult r;
  if (!run.quiescent) {
    r.fail("run did not reach quiescence within its step budget");
    return r;
  }
  std::set<MsgId> delivered_somewhere;
  for (const auto& d : run.deliveries) delivered_somewhere.insert(d.m);
  std::map<ProcessId, std::set<MsgId>> delivered_at;
  for (const auto& d : run.deliveries) delivered_at[d.p].insert(d.m);

  for (const auto& m : run.multicast) {
    bool must_deliver = pattern.correct(m.src) || delivered_somewhere.count(m.id);
    if (!must_deliver) continue;
    for (ProcessId p : system.group(m.dst)) {
      if (!pattern.correct(p)) continue;
      if (!delivered_at[p].count(m.id))
        r.fail("correct p" + std::to_string(p) + " never delivered message " +
               std::to_string(m.id) + " addressed to g" +
               std::to_string(m.dst));
    }
  }
  return r;
}

SpecResult check_ordering(const RunRecord& run,
                          const groups::GroupSystem& system) {
  SpecResult r;
  std::map<MsgId, std::set<MsgId>> adj;
  for (const auto& m : run.multicast) adj[m.id];  // ensure nodes exist
  for (auto& [a, b] : delivery_relation(run, system)) adj[a].insert(b);
  if (has_cycle(adj)) r.fail("delivery relation ↦ has a cycle");
  return r;
}

SpecResult check_minimality(const RunRecord& run,
                            const groups::GroupSystem& system) {
  SpecResult r;
  ProcessSet addressed;
  for (const auto& m : run.multicast) addressed |= system.group(m.dst);
  ProcessSet offenders = run.active - addressed;
  if (!offenders.empty())
    r.fail("processes " + offenders.to_string() +
           " took steps although no message was addressed to them");
  return r;
}

SpecResult check_strict_ordering(const RunRecord& run,
                                 const groups::GroupSystem& system) {
  SpecResult r;
  std::map<MsgId, std::set<MsgId>> adj;
  for (const auto& m : run.multicast) adj[m.id];
  for (auto& [a, b] : delivery_relation(run, system)) adj[a].insert(b);

  // m ⤳ m' : first delivery of m happened before m' was multicast.
  std::map<MsgId, Time> first_delivery;
  for (const auto& d : run.deliveries) {
    auto it = first_delivery.find(d.m);
    if (it == first_delivery.end() || d.t < it->second)
      first_delivery[d.m] = d.t;
  }
  for (size_t i = 0; i < run.multicast.size(); ++i) {
    MsgId m2 = run.multicast[i].id;
    Time sent = run.multicast_time[i];
    for (auto& [m, t] : first_delivery)
      if (m != m2 && t < sent) adj[m].insert(m2);
  }
  if (has_cycle(adj)) r.fail("↦ ∪ ⤳ has a cycle (strict ordering violated)");
  return r;
}

SpecResult check_pairwise_ordering(const RunRecord& run) {
  SpecResult r;
  auto per = local_orders(run);
  // Relative positions per process; any two processes delivering the same two
  // messages must agree on their order.
  std::map<std::pair<MsgId, MsgId>, ProcessId> seen;  // ordered pair -> witness
  for (const auto& [p, order] : per) {
    std::map<MsgId, size_t> at;
    for (size_t i = 0; i < order.size(); ++i) at[order[i]] = i;
    for (size_t i = 0; i < order.size(); ++i)
      for (size_t j = i + 1; j < order.size(); ++j) {
        auto key = std::make_pair(order[i], order[j]);
        auto rev = std::make_pair(order[j], order[i]);
        seen.emplace(key, p);
        auto conflict = seen.find(rev);
        if (conflict != seen.end())
          r.fail("p" + std::to_string(p) + " and p" +
                 std::to_string(conflict->second) +
                 " deliver messages " + std::to_string(order[i]) + "," +
                 std::to_string(order[j]) + " in opposite orders");
      }
  }
  return r;
}

SpecResult check_all(const RunRecord& run, const groups::GroupSystem& system,
                     const sim::FailurePattern& pattern) {
  SpecResult r = check_integrity(run, system);
  if (!r.ok) return r;
  r = check_ordering(run, system);
  if (!r.ok) return r;
  r = check_minimality(run, system);
  if (!r.ok) return r;
  return check_termination(run, system, pattern);
}

}  // namespace gam::amcast
