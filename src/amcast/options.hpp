// One options struct for every multicast protocol (ISSUE 10 satellite).
//
// Before this header each protocol class carried its own nested `Options`
// with a drifting subset of the same fields (MuMulticast had the engine and
// batching knobs but no scheduler; ReplicatedMulticast had the scheduler but
// its own max_steps default). ProtocolOptions is the union: every protocol
// aliases `Options` to it and reads the fields it understands, so a single
// designated-initializer literal configures any protocol behind the
// amcast::Protocol interface, and options_from(RunSpec) is the one place a
// scenario description becomes protocol knobs.
//
// Field order is load-bearing: C++20 designated initializers must name
// fields in declaration order, and the order below is the superset-merge of
// every initializer the repo already contains (seed, max_steps, fd_lag,
// strict, fair_set, sigma_gated, helping, external_clock, track_log_history,
// engine, then the scheduler, then batch_k/window_size). Append new fields at
// the end.
#pragma once

#include <cstdint>

#include "sim/adversary.hpp"
#include "sim/failure_pattern.hpp"
#include "util/process_set.hpp"

namespace gam::sim {
class RunSpec;  // sim/run_spec.hpp
}

namespace gam::amcast {

// Guard-evaluation engine of the Algorithm-1 action system (MuMulticast);
// kScan is the reference oracle, kIncremental the dirty-tracked default.
// Protocols without an action system ignore it.
enum class Engine : std::int8_t {
  kScan = 0,
  kIncremental = 1,
};

struct ProtocolOptions {
  std::uint64_t seed = 1;
  std::uint64_t max_steps = std::uint64_t{1} << 22;
  // Slack of the μ failure-detector components (Algorithm 1 only).
  sim::Time fd_lag = 0;
  // §6.1: strict atomic multicast via the 1^{g∩h} indicators (Algorithm 1).
  bool strict = false;
  // When non-empty, only these processes are scheduled (P-fair runs).
  ProcessSet fair_set;
  // Quorum gating (emulation harness, §5): an action of p for a message
  // addressed to g is enabled only while Σ_g's current quorum lies inside
  // fair_set. Requires a fair_set.
  bool sigma_gated = false;
  // Helping (Proposition 1's reduction): destination members re-multicast on
  // behalf of crashed submitters (Algorithm 1).
  bool helping = false;
  // External clock (emulation harness): the orchestrator owns the clock via
  // set_time(); steps do not advance it.
  bool external_clock = false;
  // Journal every log mutation for validate_log_invariants() (tests).
  bool track_log_history = false;
  // Guard-evaluation engine (Algorithm 1).
  Engine engine = Engine::kIncremental;
  // Scheduling strategy for World-backed protocols (bench --adversary axis).
  // Algorithm 1 consumes it through its registry adapter: kRandom runs the
  // built-in uniform path, anything else instantiates the spec'd strategy.
  sim::SchedulerSpec scheduler;
  // Ordered-batch / pipelining knobs (mu_multicast.hpp decision 12;
  // universal_log.hpp's instance window). 1/1 is the legacy wire behavior.
  int batch_k = 1;
  int window_size = 1;
};

// The single RunSpec -> ProtocolOptions population point: seed, step budget,
// scheduler, and the batch/window knobs all cross here and nowhere else.
ProtocolOptions options_from(const sim::RunSpec& spec);

}  // namespace gam::amcast
