#include "amcast/replicated_multicast.hpp"

namespace gam::amcast {

ReplicatedMulticast::ReplicatedMulticast(const groups::GroupSystem& system,
                                         const sim::FailurePattern& pattern,
                                         Options options)
    : system_(system),
      pattern_(pattern),
      options_(options),
      local_seq_(static_cast<size_t>(system.process_count()), 0) {
  // Disjointness: per-group logs are only a complete solution when no two
  // groups intersect (otherwise Algorithm 1's cross-log machinery is needed).
  for (groups::GroupId g = 0; g < system_.group_count(); ++g)
    for (groups::GroupId h = g + 1; h < system_.group_count(); ++h)
      GAM_EXPECTS(system_.intersection(g, h).empty());

  scenario_ = std::make_unique<sim::Scenario>(sim::RunSpec{}
                                                  .groups(system)
                                                  .failures(pattern)
                                                  .seed(options.seed)
                                                  .max_steps(options.max_steps)
                                                  .scheduler(options.scheduler));
  world_ = &scenario_->world();
  hosts_ = objects::install_hosts(*world_);

  for (groups::GroupId g = 0; g < system_.group_count(); ++g) {
    ProcessSet scope = system_.group(g);
    sigmas_.push_back(std::make_unique<fd::SigmaOracle>(pattern_, scope));
    omegas_.push_back(std::make_unique<fd::OmegaOracle>(pattern_, scope));
    members_[g].assign(scope.begin(), scope.end());
    for (ProcessId p : scope) {
      auto log = std::make_shared<objects::UniversalLog>(
          kTraceBase + g, p, scope, *sigmas_.back(), *omegas_.back(),
          options_.batch_k, options_.window_size);
      // Delivery = the message enters this replica's learned prefix. The
      // event is also reported into the world's trace stream so deliveries
      // interleave with the wire events that caused them.
      log->set_on_learn([this, p, g](std::int64_t op, std::int64_t) {
        std::int64_t seq = local_seq_[static_cast<size_t>(p)]++;
        record_.deliveries.push_back({p, op, world_->now(), seq});
        // Submissions all happen at t=0, so latency == the delivery instant.
        GAM_METRICS_PROBE(
            if (metrics_) metrics_
                ->histogram("deliver_latency", "g" + std::to_string(g))
                .record(world_->now()));
        world_->trace_deliver(p, kTraceBase + g, op, seq);
      });
      hosts_[static_cast<size_t>(p)]->add(kTraceBase + g, log);
      logs_[g].push_back(log);
    }
  }
}

void ReplicatedMulticast::submit(MulticastMessage m) {
  GAM_EXPECTS(system_.group(m.dst).contains(m.src));
  workload_.push_back(m);
}

void ReplicatedMulticast::set_metrics(sim::Metrics* m) {
  metrics_ = m;
  world_->set_metrics(m);
}

RunRecord ReplicatedMulticast::run() {
  // Senders submit their messages into their group's log (if still alive at
  // start; a crash-at-0 sender never gets to call multicast).
  for (const MulticastMessage& m : workload_) {
    if (pattern_.crashed(m.src, 0)) continue;
    const auto& ms = members_.at(m.dst);
    for (size_t i = 0; i < ms.size(); ++i)
      if (ms[i] == m.src) {
        logs_.at(m.dst)[i]->submit(m.id, nullptr);
        record_.multicast.push_back(m);
        record_.multicast_time.push_back(0);
        break;
      }
  }
  record_.quiescent = world_->run_until_quiescent(options_.max_steps);
  for (ProcessId p = 0; p < system_.process_count(); ++p) {
    record_.steps += world_->stats(p).steps;
    if (world_->stats(p).steps > 0) record_.active.insert(p);
  }
  // Genuineness ledger from the world's wire stats: steps taken and messages
  // sent by processes no issued message was addressed to (must be zero —
  // each group's log is scoped to exactly its members).
  GAM_METRICS_PROBE(if (metrics_) {
    ProcessSet addressed;
    for (const auto& m : record_.multicast) addressed |= system_.group(m.dst);
    std::uint64_t steps_outside = 0, msgs_outside = 0;
    for (ProcessId p = 0; p < system_.process_count(); ++p) {
      if (addressed.contains(p)) continue;
      steps_outside += world_->stats(p).steps;
      msgs_outside += world_->stats(p).messages_sent;
    }
    metrics_->gauge("non_addressee_steps")
        .set(static_cast<std::int64_t>(steps_outside));
    metrics_->gauge("non_addressee_processes")
        .set((record_.active - addressed).size());
    metrics_->gauge("non_addressee_messages")
        .set(static_cast<std::int64_t>(msgs_outside));
  });
  return record_;
}

std::uint64_t ReplicatedMulticast::messages_sent() const {
  std::uint64_t n = 0;
  for (ProcessId p = 0; p < system_.process_count(); ++p)
    n += world_->stats(p).messages_sent;
  return n;
}

}  // namespace gam::amcast
