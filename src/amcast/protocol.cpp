// The amcast::Protocol adapters and the registry (DESIGN.md decision 16).
//
// Every engine the repo grew — Algorithm 1's action system, the sequential
// baselines, the World-backed per-group logs, and the timestamp engines —
// keeps its concrete class and native API; this file is the only place that
// knows how to wrap each of them behind the uniform interface. Benches,
// tests and tools construct protocols from descriptors and never mention a
// concrete engine again.
#include "amcast/protocol.hpp"

#include <algorithm>
#include <memory>

#include "amcast/baselines.hpp"
#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/timestamp_multicast.hpp"
#include "sim/run_spec.hpp"

namespace gam::amcast {

ProtocolOptions options_from(const sim::RunSpec& spec) {
  ProtocolOptions opt;
  opt.seed = spec.run_seed();
  opt.max_steps = spec.step_budget();
  opt.scheduler = spec.scheduler_spec();
  opt.batch_k = spec.batch();
  opt.window_size = spec.window();
  return opt;
}

namespace {

// The sequential baselines produce a RunRecord but no event stream; the
// adapter synthesizes the same kMulticast/kDeliver events MuMulticast emits
// (same field conventions, same payload fold) so sinks and monitors attach
// uniformly. Multicasts go out first (by time, then id), then deliveries (by
// time, process, local sequence) — chronology per message is preserved since
// a delivery never precedes its multicast in the record.
void emit_synthesized_events(const RunRecord& rec, sim::TraceSink& sink) {
  std::vector<sim::TraceEvent> evs;
  evs.reserve(rec.multicast.size() + rec.deliveries.size());
  std::map<MsgId, const MulticastMessage*> by_id;
  for (size_t i = 0; i < rec.multicast.size(); ++i) {
    const MulticastMessage& m = rec.multicast[i];
    by_id[m.id] = &m;
    sim::TraceEvent e;
    e.t = rec.multicast_time[i];
    e.p = m.src;
    e.kind = sim::TraceEventKind::kMulticast;
    e.protocol = static_cast<std::int32_t>(m.dst);
    e.peer = m.src;
    e.arg = m.id;
    e.payload_hash = sim::trace_mix(sim::kTraceHashSeed,
                                    static_cast<std::uint64_t>(m.payload));
    evs.push_back(e);
  }
  std::stable_sort(evs.begin(), evs.end(),
                   [](const sim::TraceEvent& a, const sim::TraceEvent& b) {
                     return a.t != b.t ? a.t < b.t : a.arg < b.arg;
                   });
  std::vector<Delivery> dels = rec.deliveries;
  std::stable_sort(dels.begin(), dels.end(),
                   [](const Delivery& a, const Delivery& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.p != b.p) return a.p < b.p;
                     return a.local_seq < b.local_seq;
                   });
  for (const Delivery& d : dels) {
    const MulticastMessage* m = by_id.at(d.m);
    sim::TraceEvent e;
    e.t = d.t;
    e.p = d.p;
    e.kind = sim::TraceEventKind::kDeliver;
    e.protocol = static_cast<std::int32_t>(m->dst);
    e.type = static_cast<std::int32_t>(d.local_seq);
    e.arg = d.m;
    e.payload_hash = sim::trace_mix(sim::kTraceHashSeed,
                                    static_cast<std::uint64_t>(m->payload));
    evs.push_back(e);
  }
  for (const sim::TraceEvent& e : evs) sink.on_event(e);
}

// Algorithm 1. The scheduler spec maps onto the engine's two run entry
// points: kRandom is the built-in uniform path (byte-identical to a spec'd
// RandomScheduler by construction, which the golden gate relies on), every
// other strategy is instantiated from the run seed.
class MuAdapter final : public Protocol {
 public:
  MuAdapter(const groups::GroupSystem& s, const sim::FailurePattern& f,
            const ProtocolOptions& o)
      : opt_(o), mc_(s, f, o) {}

  void submit(const MulticastMessage& m) override { mc_.submit(m); }
  RunRecord run() override {
    if (opt_.scheduler.kind == sim::SchedulerSpec::Kind::kRandom)
      return mc_.run();
    auto sched = opt_.scheduler.instantiate(opt_.seed);
    return mc_.run_with(*sched);
  }
  const RunRecord& record() const override { return mc_.partial_record(); }
  const ProtocolOptions& options() const override { return opt_; }
  void set_metrics(sim::Metrics* m) override { mc_.set_metrics(m); }
  void set_event_sink(sim::TraceSink* s) override { mc_.set_event_sink(s); }
  void set_span_sink(sim::SpanSink* s) override { mc_.set_span_sink(s); }

 private:
  ProtocolOptions opt_;
  MuMulticast mc_;
};

template <typename Inner>
class BaselineAdapter final : public Protocol {
 public:
  BaselineAdapter(const groups::GroupSystem& s, const sim::FailurePattern& f,
                  const ProtocolOptions& o)
      : opt_(o), inner_(s, f, o) {}

  void submit(const MulticastMessage& m) override { inner_.submit(m); }
  RunRecord run() override {
    rec_ = inner_.run();
    if (sink_) emit_synthesized_events(rec_, *sink_);
    return rec_;
  }
  const RunRecord& record() const override { return rec_; }
  const ProtocolOptions& options() const override { return opt_; }
  std::uint64_t wire_messages() const override {
    if constexpr (requires { inner_.wire_messages(); })
      return inner_.wire_messages();
    else
      return 0;
  }
  void set_metrics(sim::Metrics* m) override { inner_.set_metrics(m); }
  void set_event_sink(sim::TraceSink* s) override { sink_ = s; }

 private:
  ProtocolOptions opt_;
  Inner inner_;
  RunRecord rec_;
  sim::TraceSink* sink_ = nullptr;
};

class WorldLogAdapter final : public Protocol {
 public:
  WorldLogAdapter(const groups::GroupSystem& s, const sim::FailurePattern& f,
                  const ProtocolOptions& o)
      : opt_(o), mc_(s, f, o) {}

  void submit(const MulticastMessage& m) override { mc_.submit(m); }
  RunRecord run() override {
    rec_ = mc_.run();
    return rec_;
  }
  const RunRecord& record() const override { return rec_; }
  const ProtocolOptions& options() const override { return opt_; }
  std::uint64_t wire_messages() const override { return mc_.messages_sent(); }
  void set_metrics(sim::Metrics* m) override { mc_.set_metrics(m); }
  void set_event_sink(sim::TraceSink* s) override {
    mc_.world().set_trace_sink(s);
  }
  sim::World* world() override { return &mc_.world(); }

 private:
  ProtocolOptions opt_;
  ReplicatedMulticast mc_;
  RunRecord rec_;
};

std::unique_ptr<Protocol> make_mu(const groups::GroupSystem& s,
                                  const sim::FailurePattern& f,
                                  const ProtocolOptions& o) {
  return std::make_unique<MuAdapter>(s, f, o);
}
std::unique_ptr<Protocol> make_perfectfd(const groups::GroupSystem& s,
                                         const sim::FailurePattern& f,
                                         const ProtocolOptions& o) {
  ProtocolOptions strict = o;
  strict.strict = true;  // §6.1 strict variant with exact indicators = [36]
  strict.fd_lag = 0;
  return std::make_unique<MuAdapter>(s, f, strict);
}
std::unique_ptr<Protocol> make_skeen(const groups::GroupSystem& s,
                                     const sim::FailurePattern& f,
                                     const ProtocolOptions& o) {
  return std::make_unique<BaselineAdapter<SkeenMulticast>>(s, f, o);
}
std::unique_ptr<Protocol> make_broadcast(const groups::GroupSystem& s,
                                         const sim::FailurePattern& f,
                                         const ProtocolOptions& o) {
  return std::make_unique<BaselineAdapter<BroadcastMulticast>>(s, f, o);
}
std::unique_ptr<Protocol> make_worldlog(const groups::GroupSystem& s,
                                        const sim::FailurePattern& f,
                                        const ProtocolOptions& o) {
  return std::make_unique<WorldLogAdapter>(s, f, o);
}
std::unique_ptr<Protocol> make_whitebox(const groups::GroupSystem& s,
                                        const sim::FailurePattern& f,
                                        const ProtocolOptions& o) {
  return std::make_unique<TimestampMulticast>(
      s, f, o, /*conflict_aware=*/false,
      TimestampMulticast::kWhiteBoxTraceBase);
}
std::unique_ptr<Protocol> make_generic(const groups::GroupSystem& s,
                                       const sim::FailurePattern& f,
                                       const ProtocolOptions& o) {
  return std::make_unique<TimestampMulticast>(
      s, f, o, /*conflict_aware=*/true, TimestampMulticast::kGenericTraceBase);
}

}  // namespace

ProtocolRegistry::ProtocolRegistry() {
  // Field order: name, trace_base, genuine, crash_tolerant, requires_disjoint,
  // emits_multicast_events, conflict_aware, summary, make.
  //
  // crash_tolerant is "keeps its guarantees under the environment crashes the
  // arena throws at it" — for the quorum-based engines that still assumes
  // every group (worldlog) or covering partition (whitebox/generic) keeps a
  // live majority; bench_arena.cpp checks that per cell before running them.
  table_ = {
      {"mu", sim::protocol_id(0), true, true, false, true, false,
       "Algorithm 1: genuine atomic multicast from mu (group-sequential)",
       &make_mu},
      {"perfectfd", sim::protocol_id(0), true, true, false, true, false,
       "Schiper-Pedone [36]: the section-6.1 strict variant with exact "
       "(lag-0) failure indicators",
       &make_perfectfd},
      {"skeen", sim::protocol_id(0), true, false, false, true, false,
       "Skeen's failure-free timestamping baseline (breaks under crashes)",
       &make_skeen},
      {"broadcast", sim::protocol_id(0), false, true, false, true, false,
       "non-genuine strawman: one system-wide atomic broadcast",
       &make_broadcast},
      {"worldlog", ReplicatedMulticast::kTraceBase, true, true, true, false,
       false,
       "per-group Paxos logs over the simulated network (disjoint groups)",
       &make_worldlog},
      {"whitebox", TimestampMulticast::kWhiteBoxTraceBase, true, true, false,
       false, false,
       "White-Box Atomic Multicast: per-partition Paxos timestamping with "
       "direct inter-partition exchange (arXiv 1904.07171)",
       &make_whitebox},
      {"generic", TimestampMulticast::kGenericTraceBase, true, true, false,
       false, true,
       "Generic Multicast: the white-box engine ordering only conflicting "
       "pairs (arXiv 2410.01901)",
       &make_generic},
  };
}

const ProtocolRegistry& ProtocolRegistry::instance() {
  static const ProtocolRegistry reg;
  return reg;
}

const ProtocolDescriptor* ProtocolRegistry::find(std::string_view name) const {
  for (const ProtocolDescriptor& d : table_)
    if (name == d.name) return &d;
  return nullptr;
}

// First descriptor at `trace_base`; the Algorithm-1 family shares base 0, so
// base lookup is only unique for the World-backed engines.
const ProtocolDescriptor* ProtocolRegistry::find(
    sim::ProtocolId trace_base) const {
  for (const ProtocolDescriptor& d : table_)
    if (d.trace_base == trace_base) return &d;
  return nullptr;
}

std::string ProtocolRegistry::names() const {
  std::string out;
  for (const ProtocolDescriptor& d : table_) {
    if (!out.empty()) out += ", ";
    out += d.name;
  }
  return out;
}

}  // namespace gam::amcast
