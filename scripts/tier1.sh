#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then run the
# seed-sweep bench in --quick mode (which doubles as the determinism gate:
# pooled and sequential runs of the same seeds must produce identical
# event-trace hashes), then the trace self-check (record the same seed twice,
# trace_diff must report identical; record a mutated seed, trace_diff must
# localize a first divergence), the metrics self-check (byte-identical
# reports for identical configs; metrics_report flags a seed mutation), the
# metrics-overhead gate (probes with no registry attached must stay within
# 5% of a GAM_METRICS=OFF build on e3_mu_k16), and finally the buffer/trace/
# metrics/monitor regression tests under AddressSanitizer.
#
# Usage:
#   scripts/tier1.sh                 # plain RelWithDebInfo gate
#   GAM_SANITIZE=thread scripts/tier1.sh   # sanitized gate (own build dir);
#                                    # the thread build gates the sweep pool.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${GAM_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${GAM_SANITIZE}"
  CMAKE_ARGS+=("-DGAM_SANITIZE=${GAM_SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
"$BUILD_DIR"/bench/bench_sweep --quick --out="$BUILD_DIR"/BENCH_sim_quick.json

# Trace self-check: the recorded event stream must be byte-reproducible for a
# fixed seed, and trace_diff must localize an injected divergence (different
# seed base) rather than merely flag it.
TRACE_DIR="$BUILD_DIR/trace-selfcheck"
rm -rf "$TRACE_DIR" && mkdir -p "$TRACE_DIR"
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 \
  --out="$TRACE_DIR"/a.json --trace="$TRACE_DIR"/a >/dev/null
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 \
  --out="$TRACE_DIR"/b.json --trace="$TRACE_DIR"/b >/dev/null
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --seed-base=2 \
  --out="$TRACE_DIR"/c.json --trace="$TRACE_DIR"/c >/dev/null
for cfg in e3_mu_k16 e3_mu_k64 e3_mu_hirate_base e3_mu_hirate_batched \
           world_paxos_k8 figure1_crashes e3_mu_wide128; do
  "$BUILD_DIR"/tools/trace_diff \
    "$TRACE_DIR/a.$cfg.trace" "$TRACE_DIR/b.$cfg.trace" >/dev/null \
    || { echo "tier1: FAIL — same-seed traces diverge ($cfg)"; exit 1; }
done
if "$BUILD_DIR"/tools/trace_diff \
    "$TRACE_DIR/a.world_paxos_k8.trace" "$TRACE_DIR/c.world_paxos_k8.trace" \
    >/dev/null; then
  echo "tier1: FAIL — trace_diff missed a seed mutation"
  exit 1
fi
echo "tier1: trace self-check OK"

# Legacy byte-identity gate: every <=64-process configuration must keep
# producing the exact event trace recorded at the seed revision — the
# widened id space (multi-word ProcessSet, GroupPairIndex log layout,
# two-tier ballot stride) has to be byte-invisible below the old ceiling.
# scripts/golden_trace_hashes.txt pins (events, hash) per config; regenerate
# it ONLY for an intentional wire/trace change.
while read -r cfg events hash; do
  [[ "$cfg" =~ ^#.*$ || -z "$cfg" ]] && continue
  header=$(head -n1 "$TRACE_DIR/a.$cfg.trace")
  want="# gam-trace v1 events=$events hash=$hash"
  [[ "$header" == "$want" ]] \
    || { echo "tier1: FAIL — $cfg trace differs from the seed golden"; \
         echo "  want: $want"; echo "  got:  $header"; exit 1; }
done < scripts/golden_trace_hashes.txt
echo "tier1: legacy trace byte-identity gate OK"

# Wide-topology gate (widened id space): the 128-group / 256-process smoke
# config must sweep deterministically (bench_sweep's internal gate) with the
# invariant monitors clean on its recorded seed. The sweep exits nonzero on
# either failure; the summary check below additionally proves the monitors
# actually consumed the wide trace rather than vacuously passing.
WIDE_DIR="$BUILD_DIR/wide-smoke"
rm -rf "$WIDE_DIR" && mkdir -p "$WIDE_DIR"
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=2 \
  --out="$WIDE_DIR"/wide.json --metrics="$WIDE_DIR"/wide.metrics.json \
  >/dev/null \
  || { echo "tier1: FAIL — wide sweep (determinism or monitors)"; exit 1; }
python3 - "$WIDE_DIR"/wide.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
m = rep["metrics"]["e3_mu_wide128"]
assert m["monitor_violations"] == 0, m
assert m["monitor_events"] > 0, m
if rep.get("metrics_compiled") == "on":
    assert m["deliveries"] > 0, m
print(f"tier1: wide smoke — {m['monitor_events']} monitored events, "
      f"0 violations, {m['deliveries']} deliveries")
EOF
echo "tier1: wide-topology gate OK"

# Engine-equivalence gate: the scan and incremental guard engines must record
# byte-identical event traces for the Algorithm-1 configurations (the World
# config does not run MuMulticast and is skipped). trace_diff localizes the
# first divergent event on failure.
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --engine=scan \
  --out="$TRACE_DIR"/scan.json --trace="$TRACE_DIR"/scan >/dev/null
for cfg in e3_mu_k16 e3_mu_k64 e3_mu_hirate_base e3_mu_hirate_batched \
           figure1_crashes; do
  "$BUILD_DIR"/tools/trace_diff \
    "$TRACE_DIR/a.$cfg.trace" "$TRACE_DIR/scan.$cfg.trace" \
    || { echo "tier1: FAIL — scan vs incremental engines diverge ($cfg)"; \
         exit 1; }
done
echo "tier1: engine-equivalence gate OK"

# Batching equivalence gate (ISSUE 6): explicit batch_k=1/window_size=1 flags
# must reproduce the default traces byte for byte (the knobs default to
# today's behavior), and a heavily batched run must itself be engine-stable —
# scan and incremental may not disagree about macro-step contents. trace_diff
# localizes the first divergent event on a mismatch.
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --batch=1 --window=1 \
  --out="$TRACE_DIR"/unit.json --trace="$TRACE_DIR"/unit >/dev/null
for cfg in e3_mu_k16 e3_mu_k64 world_paxos_k8 figure1_crashes; do
  "$BUILD_DIR"/tools/trace_diff \
    "$TRACE_DIR/a.$cfg.trace" "$TRACE_DIR/unit.$cfg.trace" \
    || { echo "tier1: FAIL — batch=1/window=1 diverges from default ($cfg)"; \
         exit 1; }
done
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --batch=16 --window=8 \
  --out="$TRACE_DIR"/batinc.json --trace="$TRACE_DIR"/batinc >/dev/null
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --batch=16 --window=8 \
  --engine=scan \
  --out="$TRACE_DIR"/batscan.json --trace="$TRACE_DIR"/batscan >/dev/null
for cfg in e3_mu_k16 e3_mu_k64 figure1_crashes; do
  "$BUILD_DIR"/tools/trace_diff \
    "$TRACE_DIR/batinc.$cfg.trace" "$TRACE_DIR/batscan.$cfg.trace" \
    || { echo "tier1: FAIL — engines diverge at batch=16/window=8 ($cfg)"; \
         exit 1; }
done
echo "tier1: batching equivalence gate OK"

# Adversary engine-equivalence: the scan/incremental identity must also hold
# under an adversarial schedule, not just the uniform-random default — the
# guard engines may not disagree about which actions a hostile interleaving
# enables.
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --adversary=pct:3 \
  --out="$TRACE_DIR"/advinc.json --trace="$TRACE_DIR"/advinc >/dev/null
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 --adversary=pct:3 \
  --engine=scan \
  --out="$TRACE_DIR"/advscan.json --trace="$TRACE_DIR"/advscan >/dev/null
for cfg in e3_mu_k16 e3_mu_k64 e3_mu_hirate_base e3_mu_hirate_batched \
           figure1_crashes; do
  "$BUILD_DIR"/tools/trace_diff \
    "$TRACE_DIR/advinc.$cfg.trace" "$TRACE_DIR/advscan.$cfg.trace" \
    || { echo "tier1: FAIL — engines diverge under pct:3 adversary ($cfg)"; \
         exit 1; }
done
echo "tier1: adversary engine-equivalence gate OK"

# Adversary smoke: on the honest protocol every hunt strategy must come back
# clean — the monitors may not cry wolf under hostile schedules or
# quorum-boundary crash patterns.
"$BUILD_DIR"/tools/adversary_hunt --quick \
  --out="$BUILD_DIR"/adversary_hunt \
  || { echo "tier1: FAIL — adversary hunt flagged the honest protocol"; \
       exit 1; }
echo "tier1: adversary smoke OK"

# Metrics self-check: a --metrics report is a pure function of (config, seed
# base) — two identical invocations must produce byte-identical reports, and
# metrics_report must both read its own output and flag a seed mutation as a
# non-empty diff (exit 1).
METRICS_DIR="$BUILD_DIR/metrics-selfcheck"
rm -rf "$METRICS_DIR" && mkdir -p "$METRICS_DIR"
"$BUILD_DIR"/bench/bench_sweep --quick \
  --out="$METRICS_DIR"/a.json --metrics="$METRICS_DIR"/a.metrics.json >/dev/null
"$BUILD_DIR"/bench/bench_sweep --quick \
  --out="$METRICS_DIR"/b.json --metrics="$METRICS_DIR"/b.metrics.json >/dev/null
cmp "$METRICS_DIR"/a.metrics.json "$METRICS_DIR"/b.metrics.json \
  || { echo "tier1: FAIL — same-config metrics reports are not byte-identical"; \
       exit 1; }
"$BUILD_DIR"/tools/metrics_report "$METRICS_DIR"/a.metrics.json >/dev/null \
  || { echo "tier1: FAIL — metrics_report cannot read its own report"; exit 1; }
"$BUILD_DIR"/bench/bench_sweep --quick --seed-base=2 \
  --out="$METRICS_DIR"/c.json --metrics="$METRICS_DIR"/c.metrics.json >/dev/null
if "$BUILD_DIR"/tools/metrics_report --diff --threshold=0 --quiet \
    "$METRICS_DIR"/a.metrics.json "$METRICS_DIR"/c.metrics.json; then
  echo "tier1: FAIL — metrics_report missed a seed mutation"
  exit 1
fi
echo "tier1: metrics self-check OK"

# Span self-check gate (ISSUE 9): span capture is a pure function of (config,
# seed) — two identical seeded runs must produce byte-identical span files and
# byte-identical span_report output (text and JSON) — and the report must
# reconstruct a complete timeline for every delivery (span_report exits
# nonzero on orphans). The python pass cross-validates the two instruments:
# the span-side deliver-latency sum must match the deliver_latency histogram
# total within 1% (they agree exactly today; 1% leaves slack for benign probe
# placement changes without letting the instruments drift apart).
SPAN_DIR="$BUILD_DIR/span-selfcheck"
rm -rf "$SPAN_DIR" && mkdir -p "$SPAN_DIR"
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 \
  --out="$SPAN_DIR"/a.json --metrics="$SPAN_DIR"/a.metrics.json \
  --spans="$SPAN_DIR"/a >/dev/null
"$BUILD_DIR"/bench/bench_sweep --quick --seeds=1 \
  --out="$SPAN_DIR"/b.json --metrics="$SPAN_DIR"/b.metrics.json \
  --spans="$SPAN_DIR"/b >/dev/null
for cfg in e3_mu_k16 e3_mu_k64 e3_mu_hirate_base e3_mu_hirate_batched \
           figure1_crashes e3_mu_wide128; do
  cmp "$SPAN_DIR/a.$cfg.spans" "$SPAN_DIR/b.$cfg.spans" \
    || { echo "tier1: FAIL — same-seed span files differ ($cfg)"; exit 1; }
  "$BUILD_DIR"/tools/span_report "$SPAN_DIR/a.$cfg.spans" \
      --json="$SPAN_DIR/a.$cfg.report.json" >"$SPAN_DIR/a.$cfg.report.txt" \
    || { echo "tier1: FAIL — span_report orphans or I/O error ($cfg)"; exit 1; }
  "$BUILD_DIR"/tools/span_report "$SPAN_DIR/b.$cfg.spans" \
      --json="$SPAN_DIR/b.$cfg.report.json" >"$SPAN_DIR/b.$cfg.report.txt" \
    || { echo "tier1: FAIL — span_report orphans or I/O error ($cfg)"; exit 1; }
  # The first text line echoes the input path (differs by construction);
  # everything after it, and the whole JSON report, must be byte-identical.
  { cmp <(tail -n +2 "$SPAN_DIR/a.$cfg.report.txt") \
        <(tail -n +2 "$SPAN_DIR/b.$cfg.report.txt") \
      && cmp "$SPAN_DIR/a.$cfg.report.json" "$SPAN_DIR/b.$cfg.report.json"; } \
    || { echo "tier1: FAIL — span_report output not reproducible ($cfg)"; \
         exit 1; }
done
python3 - "$SPAN_DIR" <<'EOF'
import json, os, sys
d = sys.argv[1]
rep = json.load(open(os.path.join(d, "a.json")))
if rep.get("metrics_compiled") != "on":
    print("tier1: span cross-check skipped (metrics compiled out)")
    sys.exit(0)
met = json.load(open(os.path.join(d, "a.metrics.json")))
by_name = {c["name"]: c for c in met["configs"]}
checked = 0
for cfg in ["e3_mu_k16", "e3_mu_k64", "e3_mu_hirate_base",
            "e3_mu_hirate_batched", "figure1_crashes", "e3_mu_wide128"]:
    sp = json.load(open(os.path.join(d, f"a.{cfg}.report.json")))
    hists = [h for h in by_name[cfg]["histograms"]
             if h["name"] == "deliver_latency"]
    want_sum = sum(h["sum"] for h in hists)
    want_count = sum(h["count"] for h in hists)
    assert sp["orphans"] == 0, (cfg, sp["orphans"])
    assert sp["deliveries"] == want_count, (cfg, sp["deliveries"], want_count)
    assert 0.99 * want_sum <= sp["deliver_latency_sum"] <= 1.01 * want_sum, \
        (cfg, sp["deliver_latency_sum"], want_sum)
    checked += 1
print(f"tier1: span cross-check — {checked} configs, span latency sums match"
      f" the deliver_latency histograms within 1%")
EOF
echo "tier1: span self-check gate OK"

# Convoy-wait threshold gate (ISSUE 6): the high-rate pair in the sweep pits
# batch_k=1/window_size=1 against batch_k=16/window_size=8 on the same
# workload. Batching must keep paying for itself — the per-message convoy
# wait and delivery latency must stay at least 10x below the unbatched
# baseline, and the batched convoy-wait mean may not regress above an
# absolute ceiling (measured 1.0 at the seed of this gate; 2.0 leaves slack
# for workload-neutral tweaks without letting a convoy creep back in).
if ! python3 - "$METRICS_DIR"/a.json <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
if "metrics" not in rep:
    print("tier1: convoy gate skipped (metrics compiled out)")
    sys.exit(0)
base = rep["metrics"]["e3_mu_hirate_base"]
bat = rep["metrics"]["e3_mu_hirate_batched"]
# Raw means, not the hirate_*_ratio fields: those go null when the batched
# mean is exactly 0 (a perfect score must not read as a skip).
ok = (bat["deliver_latency_mean"] * 10 <= base["deliver_latency_mean"]
      and bat["convoy_wait_mean"] * 10 <= base["convoy_wait_mean"]
      and bat["convoy_wait_mean"] <= 2.0)
print(f"tier1: convoy gate — latency {base['deliver_latency_mean']:.1f} -> "
      f"{bat['deliver_latency_mean']:.1f}, convoy {base['convoy_wait_mean']:.1f}"
      f" -> {bat['convoy_wait_mean']:.3f}")
sys.exit(0 if ok else 1)
EOF
then
  echo "tier1: FAIL — convoy_wait regressed vs the batched baseline"
  exit 1
fi
echo "tier1: convoy-wait threshold gate OK"

# Metrics-overhead gate: with no registry attached the probes must cost under
# 5% of e3_mu_k16 single-thread throughput vs a -DGAM_METRICS=OFF build
# (compiled out entirely). The span probes ride the same switch, so the gate
# also reads e3_mu_hirate_batched (the probe-densest config: batch, pipeline,
# and span milestones all fire there) against the same 5% ceiling — that is
# the ISSUE 9 span-probe overhead gate. Best-of-3, interleaved, to ride out
# scheduler noise; skipped under sanitizers where throughput is meaningless.
if [[ -z "${GAM_SANITIZE:-}" ]]; then
  NOMETRICS_DIR=build-nometrics
  cmake -B "$NOMETRICS_DIR" -S . -DGAM_METRICS=OFF >/dev/null
  cmake --build "$NOMETRICS_DIR" -j "$(nproc)" --target bench_sweep
  steps_per_sec() {
    python3 -c "import json,sys; \
print(next(s['steps_per_sec'] for s in json.load(open(sys.argv[1]))['sweeps'] \
if s['name']==sys.argv[2]))" "$1" "$2"
  }
  best_off=0 best_on=0 hb_off=0 hb_on=0
  for _ in 1 2 3; do
    "$NOMETRICS_DIR"/bench/bench_sweep --seeds=512 --threads=1 \
      --out="$METRICS_DIR"/overhead.json >/dev/null
    v=$(steps_per_sec "$METRICS_DIR"/overhead.json e3_mu_k16_seq)
    best_off=$(python3 -c "print(max($best_off, $v))")
    v=$(steps_per_sec "$METRICS_DIR"/overhead.json e3_mu_hirate_batched_seq)
    hb_off=$(python3 -c "print(max($hb_off, $v))")
    "$BUILD_DIR"/bench/bench_sweep --seeds=512 --threads=1 \
      --out="$METRICS_DIR"/overhead.json >/dev/null
    v=$(steps_per_sec "$METRICS_DIR"/overhead.json e3_mu_k16_seq)
    best_on=$(python3 -c "print(max($best_on, $v))")
    v=$(steps_per_sec "$METRICS_DIR"/overhead.json e3_mu_hirate_batched_seq)
    hb_on=$(python3 -c "print(max($hb_on, $v))")
  done
  ratio=$(python3 -c "print('%.4f' % ($best_on / $best_off))")
  hb_ratio=$(python3 -c "print('%.4f' % ($hb_on / $hb_off))")
  echo "tier1: metrics overhead — e3_mu_k16 steps/s: OFF=$best_off ON=$best_on (ON/OFF=$ratio)"
  echo "tier1: span-probe overhead — e3_mu_hirate_batched steps/s: OFF=$hb_off ON=$hb_on (ON/OFF=$hb_ratio)"
  python3 -c "exit(0 if $best_on / $best_off >= 0.95 else 1)" \
    || { echo "tier1: FAIL — metrics probes cost more than 5% (ON/OFF=$ratio)"; \
         exit 1; }
  python3 -c "exit(0 if $hb_on / $hb_off >= 0.95 else 1)" \
    || { echo "tier1: FAIL — span probes cost more than 5% on the batched" \
              "config (ON/OFF=$hb_ratio)"; exit 1; }
  echo "tier1: metrics-overhead gate OK"
fi

# The buffer/scheduler regression tests (out-of-bounds destination,
# swap-and-pop vs FIFO-head interaction) and the engine-equivalence sweep
# exist to be run under ASan; do that here when the main gate is unsanitized
# so the plain gate still covers them.
if [[ -z "${GAM_SANITIZE:-}" ]]; then
  ASAN_DIR=build-address
  cmake -B "$ASAN_DIR" -S . -DGAM_SANITIZE=address >/dev/null
  cmake --build "$ASAN_DIR" -j "$(nproc)" \
    --target test_message_buffer test_sim_trace test_engine_equivalence \
             test_metrics test_monitors test_adversary
  cmake --build "$ASAN_DIR" -j "$(nproc)" --target test_net
  "$ASAN_DIR"/tests/test_message_buffer
  "$ASAN_DIR"/tests/test_sim_trace
  "$ASAN_DIR"/tests/test_engine_equivalence
  "$ASAN_DIR"/tests/test_metrics
  "$ASAN_DIR"/tests/test_monitors
  "$ASAN_DIR"/tests/test_adversary
  "$ASAN_DIR"/tests/test_net
  echo "tier1: ASan regression tests OK"
fi

# Planted-bug teeth gate: a build with -DGAM_PLANTED_BUG=ON (one deliberately
# weakened delivery guard in MuMulticast) must be caught — the hunt must exit
# nonzero and name the violating event index, and the planted test_adversary
# must pass its detection+replay gate. Runs under ASan so the replay and
# planted-bug paths are also memory-checked. The honest smoke above proves
# the other polarity: no false alarms.
if [[ -z "${GAM_SANITIZE:-}" ]]; then
  PLANTED_DIR=build-planted
  cmake -B "$PLANTED_DIR" -S . -DGAM_PLANTED_BUG=ON -DGAM_SANITIZE=address \
    >/dev/null
  cmake --build "$PLANTED_DIR" -j "$(nproc)" \
    --target adversary_hunt test_adversary gam_loadgen
  "$PLANTED_DIR"/tests/test_adversary
  PLANTED_OUT=$("$PLANTED_DIR"/tools/adversary_hunt --seeds=256 \
    --out="$PLANTED_DIR"/adversary_hunt) && {
    echo "tier1: FAIL — planted bug survived 256 seeds of every strategy";
    exit 1;
  }
  echo "$PLANTED_OUT" | grep -q "event " || {
    echo "tier1: FAIL — planted-bug violation lacks an event index";
    exit 1;
  }
  echo "$PLANTED_OUT" | grep -q "reproduces (event hash identical)" || {
    echo "tier1: FAIL — planted-bug schedule did not replay byte-identically";
    exit 1;
  }
  echo "tier1: planted-bug teeth gate OK"

  # Planted flight-dump gate (ISSUE 9): the same planted build carries a
  # second deliberate fault on the net path — replica 1 misreports its fifth
  # delivery (see GroupLogs) — and a monitored gam_loadgen run must (a) exit
  # nonzero and (b) leave a non-empty flight-recorder dump next to its JSON,
  # proving the last-K evidence trail survives a real violation, not just the
  # unit tests.
  PLANTED_NET="$PLANTED_DIR/net-flight"
  rm -rf "$PLANTED_NET" && mkdir -p "$PLANTED_NET"
  if "$PLANTED_DIR"/tools/gam_loadgen --processes=6 --groups=2 --batch=64 \
      --window=4 --rate=40000 --duration-ms=1000 --monitor \
      --out="$PLANTED_NET"/planted.json >/dev/null; then
    echo "tier1: FAIL — planted delivery bug passed the loadgen monitors"
    exit 1
  fi
  FLIGHT_DUMP=$(ls "$PLANTED_NET"/planted.json.*.flight 2>/dev/null | head -n1)
  if [[ -z "$FLIGHT_DUMP" || ! -s "$FLIGHT_DUMP" ]]; then
    echo "tier1: FAIL — monitor violation produced no flight dump"
    exit 1
  fi
  head -n1 "$FLIGHT_DUMP" | grep -q '^# gam-spans v1 ' \
    || { echo "tier1: FAIL — flight dump is not a gam-spans v1 file"; exit 1; }
  if head -n1 "$FLIGHT_DUMP" | grep -q 'events=0$'; then
    echo "tier1: FAIL — flight dump is empty"
    exit 1
  fi
  echo "tier1: planted flight-dump gate OK ($(head -n1 "$FLIGHT_DUMP"))"
fi

# RunSpec migration gate: RunSpec/Scenario is the single way to build a
# World. The deprecated World(pattern, seed) shim is gone; no call site
# outside the layer itself may construct a World directly — new code must
# not reintroduce positional construction.
if grep -rnE 'sim::World [a-z_]+\(|make_unique<sim::World>' \
    --include='*.cpp' --include='*.hpp' \
    src tests bench examples tools \
    | grep -v 'src/sim/run_spec.hpp' \
    | grep -v 'src/sim/world.hpp'; then
  echo "tier1: FAIL — direct sim::World construction outside RunSpec/Scenario"
  exit 1
fi
echo "tier1: RunSpec migration gate OK"

# Protocol arena gate (ISSUE 10): every protocol in amcast::ProtocolRegistry
# must clear a monitored quick arena — the protocol x topology x
# conflict-rate x crash grid with the invariant monitors attached to every
# cell, and the genuineness ledger zero exactly for the genuine protocols
# (bench_arena exits nonzero on any violation). The summary check proves the
# grid actually covered the advertised axes rather than skipping everything,
# and the unknown-name path must keep failing fast with the registry listing.
ARENA_DIR="$BUILD_DIR/arena-gate"
rm -rf "$ARENA_DIR" && mkdir -p "$ARENA_DIR"
"$BUILD_DIR"/bench/bench_arena --quick --out="$ARENA_DIR"/arena.json \
  >/dev/null \
  || { echo "tier1: FAIL — protocol arena (monitors or ledger sign)"; exit 1; }
python3 - "$ARENA_DIR"/arena.json <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
run = [c for c in r["cells"] if "skipped" not in c]
protos = {c["protocol"] for c in run}
topos = {c["topology"] for c in run}
rates = {c["conflict_rate"] for c in run}
assert len(protos) >= 5, protos
assert len(topos) >= 3, topos
assert len(rates) >= 3, rates
assert all(c["monitor_violations"] == 0 and c["quiescent"] for c in run)
print(f"tier1: arena — {len(run)} cells run, {len(protos)} protocols, "
      f"{len(topos)} topologies, {len(rates)} conflict rates, 0 violations")
EOF
if "$BUILD_DIR"/bench/bench_sweep --protocol=bogus \
    --out="$ARENA_DIR"/x.json >/dev/null 2>&1; then
  echo "tier1: FAIL — bench_sweep accepted an unknown --protocol name"
  exit 1
fi
echo "tier1: protocol arena gate OK"

# Typed ProtocolId gate (ISSUE 10): trace protocol numbering flows through
# sim::ProtocolId and the named kTraceBase constants end to end. Raw integer
# bases must not reappear — no `protocol_base = <int>` assignment and no
# integer-literal base arithmetic against a group id anywhere outside the
# constant definitions themselves.
if grep -rnE 'protocol_base *= *[0-9]' \
    --include='*.cpp' --include='*.hpp' src tests bench tools examples; then
  echo "tier1: FAIL — raw integer protocol_base (use sim::ProtocolId and the"
  echo "  named kTraceBase constants)"
  exit 1
fi
if grep -rnE 'protocol_id\([0-9]+\) *\+|[^_a-zA-Z](100|1000|2000) *\+ *g\b' \
    --include='*.cpp' --include='*.hpp' src tests bench tools examples; then
  echo "tier1: FAIL — raw protocol-id arithmetic (use the named kTraceBase"
  echo "  constants and ProtocolId operator+)"
  exit 1
fi
echo "tier1: typed ProtocolId gate OK"

# Net runtime smoke gate (ISSUE 8): the live runtime must complete a
# rate-capped monitored run over the in-process backend with every invariant
# monitor clean, and clear a deliberately low throughput floor (2K/s — the
# smoke config measures ~40K/s even on a 1-CPU container; the headline
# numbers live in BENCH_net.json, this gate only proves liveness + safety).
# The rate cap keeps monitor memory bounded: monitor cost scales with the
# number of deliveries fed back, not with runtime throughput.
NET_DIR="$BUILD_DIR/net-smoke"
rm -rf "$NET_DIR" && mkdir -p "$NET_DIR"
"$BUILD_DIR"/tools/gam_loadgen --processes=6 --groups=2 --batch=64 --window=4 \
  --rate=40000 --duration-ms=1000 --monitor --min-rate=2000 \
  --stats-interval=200 --stats-out="$NET_DIR"/stats.txt \
  --spans="$NET_DIR"/smoke.spans \
  --out="$NET_DIR"/smoke.json >/dev/null \
  || { echo "tier1: FAIL — net smoke (monitors dirty, timeout, or below floor)"; \
       exit 1; }
echo "tier1: net smoke gate OK"

# Live-introspection smoke (ISSUE 9): the smoke run above emitted periodic
# machine-readable snapshots and a full ns-clock span capture. gam_top must
# render the last complete snapshot (--once exits 1 when no complete S..E
# block exists, e.g. a torn tail), and span_report must reconstruct a
# complete timeline for every live delivery — the observability acceptance
# bar on the live path, not just the simulator.
"$BUILD_DIR"/tools/gam_top --once "$NET_DIR"/stats.txt >/dev/null \
  || { echo "tier1: FAIL — gam_top found no complete stats snapshot"; exit 1; }
"$BUILD_DIR"/tools/span_report "$NET_DIR"/smoke.spans \
    --json="$NET_DIR"/smoke.report.json --quiet \
  || { echo "tier1: FAIL — live span stream has orphan deliveries"; exit 1; }
python3 - "$NET_DIR"/smoke.report.json <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["clock"] == "ns", r["clock"]
assert r["deliveries"] > 0, r
assert r["orphans"] == 0, r
assert r["wire"]["frames"] > 0, r
print(f"tier1: live spans — {r['deliveries']} deliveries reconstructed, "
      f"0 orphans, {r['wire']['frames']} wire frames")
EOF
echo "tier1: live introspection gate OK"

# Net record->replay gate (ISSUE 8): a live run recorded over the in-process
# backend must replay byte-for-byte in the simulator — the recorded stream is
# a legal World execution, and gam_loadgen --record compares the live event
# stream against ReplayScheduler + receive-script playback event for event,
# exiting nonzero on the first divergence.
"$BUILD_DIR"/tools/gam_loadgen --record --processes=6 --groups=2 --ops=48 \
  --batch=4 --window=2 --trace-live="$NET_DIR"/live.trace \
  --trace-replay="$NET_DIR"/replay.trace >/dev/null \
  || { echo "tier1: FAIL — live net run does not replay in the simulator"; \
       exit 1; }
"$BUILD_DIR"/tools/trace_diff "$NET_DIR"/live.trace "$NET_DIR"/replay.trace \
  >/dev/null \
  || { echo "tier1: FAIL — trace_diff finds live vs replay divergence"; \
       exit 1; }
echo "tier1: net record->replay gate OK"

echo "tier1: OK ($BUILD_DIR)"
