#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then run the
# seed-sweep bench in --quick mode (which doubles as the determinism gate:
# pooled and sequential runs of the same seeds must produce identical
# delivery traces).
#
# Usage:
#   scripts/tier1.sh                 # plain RelWithDebInfo gate
#   GAM_SANITIZE=thread scripts/tier1.sh   # sanitized gate (own build dir);
#                                    # the thread build gates the sweep pool.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${GAM_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${GAM_SANITIZE}"
  CMAKE_ARGS+=("-DGAM_SANITIZE=${GAM_SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
"$BUILD_DIR"/bench/bench_sweep --quick --out="$BUILD_DIR"/BENCH_sim_quick.json
echo "tier1: OK ($BUILD_DIR)"
