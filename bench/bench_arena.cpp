// bench_arena — the protocol arena (ISSUE 10): every registered protocol in
// amcast::ProtocolRegistry run over a grid of
//
//   topology       x  contention          x  crash scenario
//   (disjoint8x3,     (conflict rate 0 /     (none / one minority
//    figure1,          0.5 / 1.0)             crash at t=0)
//    ring6x2,
//    clustered128)
//
// with the invariant monitors attached to every cell and the genuineness
// ledger read back from the metrics gauges. The workload addresses only the
// first half of the groups, so every topology has processes that are
// addressees of *no* message — the population the ledger counts.
//
// Two properties are asserted per cell, and a failure exits non-zero (the
// tier-1 arena gate runs `bench_arena --quick`):
//
//   1. monitors clean — integrity / agreement / acyclicity report zero
//      violations under every (topology, rate, crash) the protocol claims to
//      support (the conflict-aware protocols get the workload's class map, so
//      commuting deliveries are exempt from the order check);
//   2. ledger sign — non_addressee_{steps,messages} are exactly zero for
//      every genuine protocol, and strictly positive for the non-genuine
//      broadcast strawman (which floods the unaddressed half).
//
// Cells a protocol does not claim are *skipped, and recorded as skipped*:
// requires_disjoint protocols on intersecting topologies, non-crash-tolerant
// protocols on crash cells, and the partition-timestamp protocols
// (whitebox/generic) on crash cells where some finest partition loses its
// majority — their per-partition logs need majority-alive replica sets to
// stay live (timestamp_multicast.hpp).
//
// Output: BENCH_arena.json — one record per cell (protocol, topology,
// conflict_rate, crash, deliveries, steps, wire messages, latency mean/p99,
// ledger, monitor counts, skip reason), plus the axis lists, for
// EXPERIMENTS.md's arena section.
//
//   bench_arena [--quick] [--out=PATH] [--per-group=N] [--seed=N]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "amcast/baselines.hpp"
#include "amcast/protocol.hpp"
#include "amcast/timestamp_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "sim/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

struct ArenaOptions {
  bool quick = false;
  int per_group = 2;
  std::uint64_t seed = 1;
  std::string out = "BENCH_arena.json";
};

struct Topology {
  const char* name;
  bool disjoint;
  groups::GroupSystem (*make)(bool quick);
};

const Topology kTopologies[] = {
    {"disjoint8x3", true,
     [](bool quick) { return groups::disjoint_system(quick ? 4 : 8, 3); }},
    {"figure1", false,
     [](bool) { return groups::figure1_system(); }},
    {"ring6x2", false,
     [](bool) { return groups::ring_system(6, 2); }},
    {"clustered128", false,
     [](bool quick) {
       return groups::clustered_ring_system(quick ? 8 : 32, 4, 2);
     }},
};

const double kRates[] = {0.0, 0.5, 1.0};

// The arena workload: conflict-classed messages to the first half of the
// groups (rounded up), senders drawn from the destination members. Restricting
// the targets is what arms the genuineness ledger — the other half of the
// system is addressee of nothing, so any step or wire message there is a
// genuineness violation (or, for broadcast, the expected flood).
std::vector<groups::GroupId> arena_targets(const groups::GroupSystem& sys) {
  std::vector<groups::GroupId> t;
  for (groups::GroupId g = 0; g < (sys.group_count() + 1) / 2; ++g)
    t.push_back(g);
  return t;
}

std::vector<MulticastMessage> arena_workload(const groups::GroupSystem& sys,
                                             double rate, int per_group,
                                             std::uint64_t seed,
                                             const sim::FailurePattern& pat) {
  Rng rng(seed);
  auto wl = conflict_workload(sys, arena_targets(sys), per_group, rate, rng);
  // A sender crashed at t=0 never multicasts; reassign to an alive member of
  // the destination so every cell exercises the same message population.
  for (auto& m : wl) {
    if (!pat.faulty(m.src)) continue;
    for (ProcessId p : sys.group(m.dst))
      if (!pat.faulty(p)) {
        m.src = p;
        break;
      }
  }
  return wl;
}

// The crash scenario: the highest-id member of group 0 crashes at t=0. One
// process, so every 3-member group keeps a majority; 2-member groups (figure1,
// ring6x2) lose one, which Algorithm 1 tolerates (deliveries at the survivor
// are not required once its Σ quorum is gone) but the per-partition logs of
// whitebox/generic do not — those cells are skipped by the majority check.
sim::FailurePattern crash_pattern(const groups::GroupSystem& sys, bool crash) {
  sim::FailurePattern pat(sys.process_count());
  if (!crash) return pat;
  ProcessId victim = -1;
  for (ProcessId p : sys.group(0)) victim = p;
  pat.crash_at(victim, 0);
  return pat;
}

// whitebox/generic liveness: every finest partition must keep a majority of
// replicas alive, else its Paxos log cannot decide and the run never
// quiesces.
bool partitions_majority_alive(const groups::GroupSystem& sys,
                               const sim::FailurePattern& pat) {
  for (const auto& part : PartitionedMulticast::finest_partitions(sys)) {
    int alive = 0;
    for (ProcessId p : part)
      if (!pat.faulty(p)) ++alive;
    if (2 * alive <= part.size()) return false;
  }
  return true;
}

struct Cell {
  std::string protocol, topology;
  double rate = 0;
  bool crash = false;
  std::string skip;  // non-empty: cell not run, and why
  std::uint64_t deliveries = 0, steps = 0, wire_messages = 0;
  bool quiescent = false;
  double lat_mean = 0;
  std::uint64_t lat_p99 = 0;
  std::int64_t ledger_steps = 0, ledger_messages = 0, ledger_processes = 0;
  std::uint64_t monitor_events = 0, monitor_violations = 0;
};

std::int64_t gauge_total(const sim::Metrics& m, const std::string& name) {
  std::int64_t total = 0;
  for (const auto& [k, g] : m.gauges())
    if (k.name == name) total += g.value;
  return total;
}

// Why a (protocol, topology, crash) cell is out of scope; empty = runnable.
std::string skip_reason(const ProtocolDescriptor& d, const Topology& topo,
                        const groups::GroupSystem& sys,
                        const sim::FailurePattern& pat, bool crash) {
  if (d.requires_disjoint && !topo.disjoint)
    return "requires pairwise-disjoint groups";
  if (crash && !d.crash_tolerant) return "not crash-tolerant";
  if (crash && (d.trace_base == TimestampMulticast::kWhiteBoxTraceBase ||
                d.trace_base == TimestampMulticast::kGenericTraceBase) &&
      !partitions_majority_alive(sys, pat))
    return "crash kills a covering partition's majority";
  return "";
}

Cell run_cell(const ProtocolDescriptor& d, const Topology& topo, double rate,
              bool crash, const ArenaOptions& opt) {
  Cell cell;
  cell.protocol = d.name;
  cell.topology = topo.name;
  cell.rate = rate;
  cell.crash = crash;

  auto sys = topo.make(opt.quick);
  sim::FailurePattern pat = crash_pattern(sys, crash);
  cell.skip = skip_reason(d, topo, sys, pat, crash);
  if (!cell.skip.empty()) return cell;

  ProtocolOptions popt;
  popt.seed = opt.seed;
  auto wl = arena_workload(sys, rate, opt.per_group, opt.seed, pat);

  sim::Metrics metrics;
  sim::RecorderSink rec;
  auto p = d.make(sys, pat, popt);
  p->set_event_sink(&rec);
  p->set_metrics(&metrics);
  for (const auto& m : wl) p->submit(m);
  RunRecord record = p->run();

  cell.deliveries = record.deliveries.size();
  cell.steps = record.steps;
  cell.wire_messages = p->wire_messages();
  cell.quiescent = record.quiescent;
  sim::Histogram lat = metrics.merged_histogram("deliver_latency");
  cell.lat_mean = lat.mean();
  cell.lat_p99 = lat.quantile(0.99);
  cell.ledger_steps = gauge_total(metrics, "non_addressee_steps");
  cell.ledger_messages = gauge_total(metrics, "non_addressee_messages");
  cell.ledger_processes = gauge_total(metrics, "non_addressee_processes");

  sim::MonitorConfig mc;
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    mc.groups.push_back(sys.group(g));
  mc.protocol_base = d.trace_base;
  mc.require_multicast = d.emits_multicast_events;
  mc.faulty = pat.faulty_set();
  if (d.conflict_aware)
    for (const auto& m : wl) mc.conflict_class[m.id] = m.conflict_class;
  sim::InvariantMonitors mons(mc);
  sim::feed(mons, rec.events());
  mons.finalize(record.quiescent);
  cell.monitor_events = mons.integrity().events_seen();
  cell.monitor_violations = mons.violations().size();
  for (const auto& v : mons.violations())
    std::printf("  INVARIANT VIOLATION [%s %s rate=%.1f crash=%d]: %s\n",
                cell.protocol.c_str(), cell.topology.c_str(), rate, crash,
                sim::format_violation(v).c_str());
  return cell;
}

// The per-cell verdict feeding the exit code. The ledger sign check runs only
// on quiescent, completed cells — a budget-capped run says nothing about
// genuineness either way.
bool cell_ok(const Cell& cell, const ProtocolDescriptor& d) {
  if (!cell.skip.empty()) return true;
  bool ok = true;
  if (cell.monitor_violations != 0) ok = false;
  if (!cell.quiescent) {
    std::printf("  NOT QUIESCENT [%s %s rate=%.1f crash=%d]\n",
                cell.protocol.c_str(), cell.topology.c_str(), cell.rate,
                cell.crash ? 1 : 0);
    return false;
  }
  std::int64_t flood = cell.ledger_steps + cell.ledger_messages;
  if (d.genuine && flood != 0) {
    std::printf("  LEDGER VIOLATION [%s %s rate=%.1f crash=%d]: genuine "
                "protocol with non_addressee steps=%lld messages=%lld\n",
                cell.protocol.c_str(), cell.topology.c_str(), cell.rate,
                cell.crash ? 1 : 0, static_cast<long long>(cell.ledger_steps),
                static_cast<long long>(cell.ledger_messages));
    ok = false;
  }
  if (!d.genuine && flood == 0) {
    std::printf("  LEDGER VIOLATION [%s %s rate=%.1f crash=%d]: non-genuine "
                "protocol shows an empty ledger (expected a flood)\n",
                cell.protocol.c_str(), cell.topology.c_str(), cell.rate,
                cell.crash ? 1 : 0);
    ok = false;
  }
  return ok;
}

std::string json_escape_bool(bool b) { return b ? "true" : "false"; }

bool write_json(const std::string& path, const std::vector<Cell>& cells,
                const ArenaOptions& opt) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"bench\": \"bench_arena\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", opt.quick ? "true" : "false");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opt.seed));
  std::fprintf(f, "  \"per_group\": %d,\n", opt.per_group);
  std::fprintf(f, "  \"protocols\": [");
  const auto& table = ProtocolRegistry::instance().all();
  for (size_t i = 0; i < table.size(); ++i)
    std::fprintf(f, "%s\"%s\"", i ? ", " : "", table[i].name);
  std::fprintf(f, "],\n  \"topologies\": [");
  for (size_t i = 0; i < std::size(kTopologies); ++i)
    std::fprintf(f, "%s\"%s\"", i ? ", " : "", kTopologies[i].name);
  std::fprintf(f, "],\n  \"conflict_rates\": [");
  for (size_t i = 0; i < std::size(kRates); ++i)
    std::fprintf(f, "%s%.1f", i ? ", " : "", kRates[i]);
  std::fprintf(f, "],\n  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"protocol\": \"%s\", \"topology\": \"%s\", "
        "\"conflict_rate\": %.1f, \"crash\": %s",
        c.protocol.c_str(), c.topology.c_str(), c.rate,
        json_escape_bool(c.crash).c_str());
    if (!c.skip.empty()) {
      std::fprintf(f, ", \"skipped\": \"%s\"}", c.skip.c_str());
    } else {
      std::fprintf(
          f,
          ", \"deliveries\": %llu, \"steps\": %llu, \"wire_messages\": %llu, "
          "\"quiescent\": %s, \"deliver_latency_mean\": %.3f, "
          "\"deliver_latency_p99\": %llu, \"non_addressee_steps\": %lld, "
          "\"non_addressee_messages\": %lld, \"non_addressee_processes\": "
          "%lld, \"monitor_events\": %llu, \"monitor_violations\": %llu}",
          static_cast<unsigned long long>(c.deliveries),
          static_cast<unsigned long long>(c.steps),
          static_cast<unsigned long long>(c.wire_messages),
          json_escape_bool(c.quiescent).c_str(), c.lat_mean,
          static_cast<unsigned long long>(c.lat_p99),
          static_cast<long long>(c.ledger_steps),
          static_cast<long long>(c.ledger_messages),
          static_cast<long long>(c.ledger_processes),
          static_cast<unsigned long long>(c.monitor_events),
          static_cast<unsigned long long>(c.monitor_violations));
    }
    std::fprintf(f, "%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArenaOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
      opt.per_group = 1;
    } else if (a.rfind("--out=", 0) == 0) {
      opt.out = a.substr(6);
    } else if (a.rfind("--per-group=", 0) == 0) {
      opt.per_group = std::max(1, std::atoi(a.c_str() + 12));
    } else if (a.rfind("--seed=", 0) == 0) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(a.c_str() + 7));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out=PATH] [--per-group=N] "
                   "[--seed=N]\n  registered protocols: %s\n",
                   argv[0], ProtocolRegistry::instance().names().c_str());
      return 2;
    }
  }

  std::printf("protocol arena: %s — %zu protocols x %zu topologies x %zu "
              "conflict rates x 2 crash scenarios%s\n",
              ProtocolRegistry::instance().names().c_str(),
              ProtocolRegistry::instance().all().size(),
              std::size(kTopologies), std::size(kRates),
              opt.quick ? " [quick]" : "");

  std::vector<Cell> cells;
  bool ok = true;
  int ran = 0, skipped = 0;
  for (const Topology& topo : kTopologies)
    for (double rate : kRates)
      for (bool crash : {false, true})
        for (const ProtocolDescriptor& d :
             ProtocolRegistry::instance().all()) {
          Cell cell = run_cell(d, topo, rate, crash, opt);
          ok &= cell_ok(cell, d);
          cell.skip.empty() ? ++ran : ++skipped;
          cells.push_back(std::move(cell));
        }

  std::printf("arena: %d cells run, %d skipped, verdict=%s\n", ran, skipped,
              ok ? "ok" : "VIOLATED");
  if (!write_json(opt.out, cells, opt)) {
    std::fprintf(stderr, "failed to write %s\n", opt.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", opt.out.c_str());
  return ok ? 0 : 1;
}
