// Experiment "Figure 1" (paper §3): the canonical 4-group / 5-process
// example. Regenerates the narrative of the paper: the cyclic families and
// their closed paths, the γ output stabilizing after the intersection process
// crashes, and a full Algorithm-1 run delivering at the survivors.
#include <cstdio>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "fd/detectors.hpp"
#include "groups/group_system.hpp"

using namespace gam;

int main() {
  auto sys = groups::figure1_system();

  std::printf("Figure 1 topology (paper indices shifted to 0-based):\n");
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    std::printf("  g%d = %s\n", g, sys.group(g).to_string().c_str());

  std::printf("\nPairwise intersections:\n");
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    for (groups::GroupId h = g + 1; h < sys.group_count(); ++h) {
      auto inter = sys.intersection(g, h);
      if (!inter.empty())
        std::printf("  g%d @ g%d = %s\n", g, h, inter.to_string().c_str());
    }

  std::printf("\nCyclic families F (paper: f, f', f''):\n");
  for (groups::FamilyMask f : sys.cyclic_families()) {
    auto cycles = sys.hamiltonian_cycles(f);
    std::printf("  %s: %zu hamiltonian cycle(s), %zu closed paths\n",
                sys.family_to_string(f).c_str(), cycles.size(),
                sys.cpaths(f).size());
  }

  std::printf("\nF(p) per process (paper: F(p1)=F, F(p5)=empty):\n");
  for (ProcessId p = 0; p < sys.process_count(); ++p)
    std::printf("  |F(p%d)| = %zu\n", p, sys.families_of_process(p).size());

  // γ trace while p1 (the paper's p2) crashes at t=40.
  sim::FailurePattern pat(5);
  pat.crash_at(1, 40);
  fd::GammaOracle gamma(sys, pat, 0);
  std::printf("\ngamma(p0, t) while p1 crashes at t=40:\n");
  for (sim::Time t : {0u, 20u, 39u, 40u, 80u}) {
    auto fams = gamma.query(0, t);
    std::printf("  t=%3llu: {", static_cast<unsigned long long>(t));
    for (size_t i = 0; i < fams.size(); ++i)
      std::printf("%s%s", i ? ", " : "",
                  sys.family_to_string(fams[i]).c_str());
    std::printf("}\n");
  }
  auto gg = gamma.gamma_of_group(0, 0, 80);
  std::printf("  gamma(g0) at p0, t=80: {");
  for (size_t i = 0; i < gg.size(); ++i)
    std::printf("%sg%d", i ? ", " : "", gg[i]);
  std::printf("}  (paper: {g3, g4} -> our {g2, g3}, plus g0 itself)\n");

  // Full Algorithm-1 run with the crash.
  std::printf("\nAlgorithm 1 run, 3 messages per group, p1 crashes at t=40:\n");
  amcast::MuMulticast mc(sys, pat, {.seed = 2026});
  for (auto& m : amcast::round_robin_workload(sys, 3)) mc.submit(m);
  auto rec = mc.run();
  std::printf("  multicast: %zu messages, delivered: %zu delivery events, "
              "steps: %llu\n",
              rec.multicast.size(), rec.deliveries.size(),
              static_cast<unsigned long long>(rec.steps));
  auto all = amcast::check_all(rec, sys, pat);
  std::printf("  integrity+ordering+minimality+termination: %s%s\n",
              all.ok ? "OK" : "VIOLATED: ", all.error.c_str());
  std::printf("  per-process deliveries:");
  for (ProcessId p = 0; p < 5; ++p) {
    int n = 0;
    for (auto& d : rec.deliveries) n += d.p == p;
    std::printf(" p%d:%d", p, n);
  }
  std::printf("   (p1 is faulty; p4 only sees g3 traffic)\n");
  return 0;
}
