// Experiment E3 (paper §1, §2.3, citing [33, 37]): why genuineness matters.
//
// Workload: k pairwise-disjoint groups of 2 processes, 4 messages each. The
// broadcast-based solution makes every process handle every message, so its
// per-message cost grows linearly with the number of groups; the genuine
// solutions (Algorithm 1, Skeen) keep it flat. The table reports total
// protocol steps, steps per delivered message, and how many processes took
// any step at all.
//
// Every (k, protocol) cell is an independent seeded run, so the cells fan
// out across the sweep pool (bench/sweep.hpp); each job builds its own
// GroupSystem and protocol instance and writes only its own result slot.
#include <cstdio>
#include <vector>

#include "amcast/baselines.hpp"
#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

struct Cost {
  std::uint64_t steps = 0;
  size_t deliveries = 0;
  int active = 0;
  std::uint64_t wire_messages = 0;  // replicated rows only
};

Cost cost_of(const RunRecord& rec) {
  return {rec.steps, rec.deliveries.size(), rec.active.size(), 0};
}

void print(const char* name, int k, const Cost& c) {
  std::printf("  %-22s k=%2d  steps=%7llu  steps/msg=%7.2f  active=%2d/%2d\n",
              name, k, static_cast<unsigned long long>(c.steps),
              c.deliveries ? static_cast<double>(c.steps) /
                                 static_cast<double>(c.deliveries / 2)
                           : 0.0,
              c.active, 2 * k);
}

}  // namespace

int main() {
  constexpr int kPerGroup = 4;
  const std::vector<int> ks{2, 4, 8, 12, 16};
  enum Protocol { kMu = 0, kBroadcast, kSkeen, kReplicated, kProtocols };

  bench::SweepRunner pool;
  std::printf(
      "Genuine vs broadcast-based multicast on k disjoint groups "
      "(%d msgs/group, pool of %d)\n"
      "Expected shape: broadcast steps/msg grows ~linearly with k; genuine "
      "stays flat.\n\n",
      kPerGroup, pool.threads());

  // One job per (k, protocol) cell; results land in per-cell slots.
  std::vector<Cost> cells(ks.size() * kProtocols);
  pool.run(static_cast<int>(cells.size()), [&](int i) {
    auto ki = static_cast<size_t>(i) / kProtocols;
    auto proto = static_cast<Protocol>(static_cast<size_t>(i) % kProtocols);
    int k = ks[ki];
    auto sys = groups::disjoint_system(k, 2);
    sim::FailurePattern pat(sys.process_count());
    auto workload = round_robin_workload(sys, kPerGroup);
    Cost& cell = cells[static_cast<size_t>(i)];
    switch (proto) {
      case kMu: {
        MuMulticast mc(sys, pat, {.seed = 7});
        for (auto& m : workload) mc.submit(m);
        cell = cost_of(mc.run());
        break;
      }
      case kBroadcast: {
        BroadcastMulticast bc(sys, pat, {.seed = 7});
        for (auto& m : workload) bc.submit(m);
        cell = cost_of(bc.run());
        break;
      }
      case kSkeen: {
        SkeenMulticast sk(sys, pat, {.seed = 7});
        for (auto& m : workload) sk.submit(m);
        cell = cost_of(sk.run());
        break;
      }
      case kReplicated: {
        ReplicatedMulticast rm(sys, pat, {.seed = 7});
        for (auto& m : workload) rm.submit(m);
        cell = cost_of(rm.run());
        cell.wire_messages = rm.messages_sent();
        break;
      }
      default:
        break;
    }
    return bench::RunResult{};
  });

  for (size_t ki = 0; ki < ks.size(); ++ki) {
    int k = ks[ki];
    const Cost* row = &cells[ki * kProtocols];
    print("Algorithm 1 (genuine)", k, row[kMu]);
    print("Skeen (genuine)", k, row[kSkeen]);
    print("broadcast-based", k, row[kBroadcast]);
    print("replicated (Paxos logs)", k, row[kReplicated]);
    std::printf("  %-22s k=%2d  wire messages: %llu (%.1f per delivered "
                "copy)\n\n",
                "", k,
                static_cast<unsigned long long>(row[kReplicated].wire_messages),
                static_cast<double>(row[kReplicated].wire_messages) /
                    static_cast<double>(row[kReplicated].deliveries));
  }

  std::printf(
      "steps/msg normalizes by delivered messages per group member; the "
      "broadcast rows grow with k\nbecause every process consumes every "
      "message, the genuine rows do not (minimality, SS 2.3).\n");
  return 0;
}
