// Experiment E3 (paper §1, §2.3, citing [33, 37]): why genuineness matters.
//
// Workload: k pairwise-disjoint groups of 2 processes, 4 messages each. The
// broadcast-based solution makes every process handle every message, so its
// per-message cost grows linearly with the number of groups; the genuine
// solutions (Algorithm 1, Skeen) keep it flat. The table reports total
// protocol steps, steps per delivered message, and how many processes took
// any step at all.
#include <cstdio>

#include "amcast/baselines.hpp"
#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

struct Cost {
  std::uint64_t steps = 0;
  size_t deliveries = 0;
  int active = 0;
};

void print(const char* name, int k, const Cost& c) {
  std::printf("  %-22s k=%2d  steps=%7llu  steps/msg=%7.2f  active=%2d/%2d\n",
              name, k, static_cast<unsigned long long>(c.steps),
              c.deliveries ? static_cast<double>(c.steps) /
                                 static_cast<double>(c.deliveries / 2)
                           : 0.0,
              c.active, 2 * k);
}

}  // namespace

int main() {
  constexpr int kPerGroup = 4;
  std::printf(
      "Genuine vs broadcast-based multicast on k disjoint groups "
      "(%d msgs/group)\n"
      "Expected shape: broadcast steps/msg grows ~linearly with k; genuine "
      "stays flat.\n\n",
      kPerGroup);

  for (int k : {2, 4, 8, 12, 16}) {
    auto sys = groups::disjoint_system(k, 2);
    sim::FailurePattern pat(sys.process_count());
    auto workload = round_robin_workload(sys, kPerGroup);

    Cost mu_cost;
    {
      MuMulticast mc(sys, pat, {.seed = 7});
      for (auto& m : workload) mc.submit(m);
      auto rec = mc.run();
      mu_cost = {rec.steps, rec.deliveries.size(), rec.active.size()};
    }
    Cost bc_cost;
    {
      BroadcastMulticast bc(sys, pat, {.seed = 7});
      for (auto& m : workload) bc.submit(m);
      auto rec = bc.run();
      bc_cost = {rec.steps, rec.deliveries.size(), rec.active.size()};
    }
    Cost sk_cost;
    {
      SkeenMulticast sk(sys, pat, {.seed = 7});
      for (auto& m : workload) sk.submit(m);
      auto rec = sk.run();
      sk_cost = {rec.steps, rec.deliveries.size(), rec.active.size()};
    }

    Cost repl_cost;
    std::uint64_t repl_msgs = 0;
    {
      ReplicatedMulticast rm(sys, pat, {.seed = 7});
      for (auto& m : workload) rm.submit(m);
      auto rec = rm.run();
      repl_cost = {rec.steps, rec.deliveries.size(), rec.active.size()};
      repl_msgs = rm.messages_sent();
    }

    print("Algorithm 1 (genuine)", k, mu_cost);
    print("Skeen (genuine)", k, sk_cost);
    print("broadcast-based", k, bc_cost);
    print("replicated (Paxos logs)", k, repl_cost);
    std::printf("  %-22s k=%2d  wire messages: %llu (%.1f per delivered "
                "copy)\n\n",
                "", k, static_cast<unsigned long long>(repl_msgs),
                static_cast<double>(repl_msgs) /
                    static_cast<double>(repl_cost.deliveries));
  }

  std::printf(
      "steps/msg normalizes by delivered messages per group member; the "
      "broadcast rows grow with k\nbecause every process consumes every "
      "message, the genuine rows do not (minimality, SS 2.3).\n");
  return 0;
}
