// Ablations for the design choices DESIGN.md calls out:
//
//   A. family-faulty reading — pairwise (operational) vs per-path
//      (Hamiltonian): on chord topologies, only the pairwise reading keeps
//      Algorithm 1 live after the chord's intersection dies;
//   B. the contention-free fast path of LOG_{g∩h} (Proposition 47) —
//      adopt-commit fast-path hit rate as contention grows;
//   C. Prop-1 helping — how many submitted messages enter the protocol when
//      senders crash, with and without helpers;
//   D. detector lag — delivery latency as the μ components stabilize slower.
#include <cstdio>
#include <memory>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "fd/detectors.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "objects/abd_register.hpp"
#include "objects/cf_consensus.hpp"
#include "objects/protocol_host.hpp"
#include "sim/run_spec.hpp"
#include "sim/world.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

void ablation_family_reading() {
  std::printf("A. family-faulty reading on the chord topology "
              "(g0∩g1 = {p0} is a chord):\n");
  groups::GroupSystem sys(7, {ProcessSet{0, 1, 4, 5}, ProcessSet{0, 2, 3, 6},
                              ProcessSet{1, 2}, ProcessSet{3, 4}});
  sim::FailurePattern pat(7);
  pat.crash_at(0, 20);
  groups::FamilyMask quad = groups::family_of({0, 1, 2, 3});
  std::printf("   pairwise reading:    family faulty after the crash = %s\n",
              sys.family_faulty_at(quad, pat, 20) ? "yes" : "no");
  std::printf("   hamiltonian reading: family faulty after the crash = %s\n",
              sys.family_faulty_hamiltonian_at(quad, pat, 20) ? "yes" : "no");
  MuMulticast mc(sys, pat, {.seed = 3});
  mc.submit({0, 0, 1, 0});
  mc.submit({1, 1, 2, 0});
  auto rec = mc.run();
  auto r = check_termination(rec, sys, pat);
  std::printf("   Algorithm 1 with the pairwise gamma: termination %s\n",
              r.ok ? "holds" : "FAILS");
  std::printf("   (under the per-path reading gamma would keep the family, "
              "and commit would wait on p0 forever)\n\n");
}

// One seeded fast-path trial: returns how many of the two proposals took the
// contention-free path. Builds a whole private World, so trials fan out
// across the sweep pool.
int fast_path_trial(double conflict, std::uint64_t seed) {
  sim::FailurePattern pat(4);
  sim::Scenario sc(sim::RunSpec{}.failures(pat).seed(seed));
  sim::World& world = sc.world();
  auto hosts = objects::install_hosts(world);
  ProcessSet g = ProcessSet::universe(4), inter{1, 2};
  fd::SigmaOracle si(pat, inter), sg(pat, g);
  fd::OmegaOracle og(pat, g);
  std::vector<std::shared_ptr<objects::QuorumStore>> st(4);
  std::vector<std::shared_ptr<objects::IndulgentConsensus>> cons(4);
  for (ProcessId p = 0; p < 4; ++p) {
    if (inter.contains(p)) {
      st[static_cast<size_t>(p)] = std::make_shared<objects::QuorumStore>(
          sim::protocol_id(5), p, inter, si);
      hosts[static_cast<size_t>(p)]->add(sim::protocol_id(5),
                                         st[static_cast<size_t>(p)]);
    }
    cons[static_cast<size_t>(p)] =
        std::make_shared<objects::IndulgentConsensus>(sim::protocol_id(6), p, g,
                                                      sg, og);
    hosts[static_cast<size_t>(p)]->add(sim::protocol_id(6),
                                       cons[static_cast<size_t>(p)]);
  }
  objects::CfFastConsensus cf1(st[1], 1, cons[1]);
  objects::CfFastConsensus cf2(st[2], 2, cons[2]);
  Rng rng(seed * 77);
  bool disagree = rng.chance(conflict);
  int done = 0;
  cf1.propose(10, [&](std::int64_t) { ++done; });
  cf2.propose(disagree ? 20 : 10, [&](std::int64_t) { ++done; });
  world.run_until_quiescent(400'000);
  (void)done;
  return cf1.took_fast_path() + cf2.took_fast_path();
}

void ablation_fast_path(const bench::SweepRunner& pool) {
  std::printf("B. contention-free fast consensus (Prop 47): fast-path rate vs "
              "contention\n");
  // g = 4 processes, g∩h = {1,2}. `conflict_rate` of the proposals disagree.
  const std::vector<double> conflicts{0.0, 0.25, 0.5, 1.0};
  constexpr int kSeeds = 20;
  std::vector<int> fast(conflicts.size() * kSeeds);
  pool.run(static_cast<int>(fast.size()), [&](int i) {
    auto ci = static_cast<size_t>(i) / kSeeds;
    auto seed = static_cast<std::uint64_t>(i % kSeeds) + 1;
    fast[static_cast<size_t>(i)] = fast_path_trial(conflicts[ci], seed);
    return bench::RunResult{};
  });
  for (size_t ci = 0; ci < conflicts.size(); ++ci) {
    int hits = 0;
    for (int s = 0; s < kSeeds; ++s)
      hits += fast[ci * kSeeds + static_cast<size_t>(s)];
    std::printf("   conflict=%.2f: fast-path %d/%d proposals\n", conflicts[ci],
                hits, 2 * kSeeds);
  }
  std::printf("   (without contention nobody outside g∩h takes a step — "
              "genuineness of LOG_{g∩h})\n\n");
}

void ablation_helping() {
  std::printf("C. Prop-1 helping under sender crashes (single group of 4, "
              "8 messages, 2 senders die early):\n");
  for (bool helping : {false, true}) {
    groups::GroupSystem sys(4, {ProcessSet::universe(4)});
    sim::FailurePattern pat(4);
    pat.crash_at(0, 0);
    pat.crash_at(1, 3);
    MuMulticast mc(sys, pat, {.seed = 11, .helping = helping});
    for (auto& m : single_group_workload(sys, 0, 8)) mc.submit(m);
    auto rec = mc.run();
    std::printf("   helping=%-5s: %zu/8 messages entered, %zu deliveries, "
                "termination %s\n",
                helping ? "on" : "off", rec.multicast.size(),
                rec.deliveries.size(),
                check_termination(rec, sys, pat).ok ? "holds" : "FAILS");
  }
  std::printf("\n");
}

void ablation_lag() {
  std::printf("D. detector lag vs delivery progress (Figure 1, p1 dies at "
              "t=40):\n");
  for (sim::Time lag : {sim::Time{0}, sim::Time{40}, sim::Time{160}}) {
    auto sys = groups::figure1_system();
    sim::FailurePattern pat(5);
    pat.crash_at(1, 40);
    MuMulticast mc(sys, pat, {.seed = 13, .fd_lag = lag});
    for (auto& m : round_robin_workload(sys, 2)) mc.submit(m);
    auto rec = mc.run();
    sim::Time last = 0;
    for (auto& d : rec.deliveries) last = std::max(last, d.t);
    std::printf("   lag=%3llu: %zu deliveries, last at t=%llu, all properties "
                "%s\n",
                static_cast<unsigned long long>(lag), rec.deliveries.size(),
                static_cast<unsigned long long>(last),
                check_all(rec, sys, pat).ok ? "hold" : "FAIL");
  }
  std::printf("   (lag delays gamma's completeness, so post-crash deliveries "
              "shift right; safety never budges)\n");
}

}  // namespace

int main() {
  bench::SweepRunner pool;
  std::printf("Design ablations (DESIGN.md, 'Key design decisions')\n\n");
  ablation_family_reading();
  ablation_fast_path(pool);
  ablation_helping();
  ablation_lag();
  return 0;
}
