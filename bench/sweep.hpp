// Parallel seed-sweep harness for the simulator benches.
//
// Every artefact this repo reproduces is produced by driving many independent
// seeded runs (a World or an action system per (seed, topology, protocol)
// cell). Those runs share nothing mutable, so they fan out across a
// std::thread pool: each job builds its OWN GroupSystem / FailurePattern /
// protocol instance and owns its Rng, which keeps every run byte-reproducible
// regardless of thread interleaving — the pool only changes *when* a run
// executes, never what it computes. Results land in a pre-sized slot per job
// (no locks, no sharing), and aggregation happens after the join.
//
// Rules for jobs:
//   - build all state inside the job (GroupSystem's cyclic-family cache is
//     lazily computed and NOT thread-safe; never share one across jobs
//     without pre-warming it);
//   - derive all randomness from the job index;
//   - return a RunResult — the trace hash makes cross-schedule determinism
//     checkable (pool vs inline runs of the same seed must agree bit for bit).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "amcast/types.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace gam::bench {

// The outcome of one independent simulated run.
struct RunResult {
  std::uint64_t steps = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t messages = 0;  // wire messages, when the run has a network
  bool quiescent = false;
  std::uint64_t trace_hash = 0;  // order-sensitive hash of the event trace
  // Payload/copy accounting (World-backed runs; see MessageBuffer).
  std::uint64_t inline_payloads = 0;
  std::uint64_t heap_payloads = 0;
  std::uint64_t moved_sends = 0;
};

// FNV-1a over the full delivery trace: any reordering, retiming, or content
// change of a delivery OR of a multicast payload changes the hash. Event
// kinds are folded as discriminators so streams that happen to produce the
// same integer sequence under different record types cannot collide. The
// World-backed configurations additionally fold the full wire-event stream
// (sim::HashingSink) on top of this — see combine_hash.
inline std::uint64_t hash_deliveries(const amcast::RunRecord& rec) {
  std::uint64_t h = sim::kTraceHashSeed;
  auto mix = [&h](std::uint64_t x) { h = sim::trace_mix(h, x); };
  for (const auto& d : rec.deliveries) {
    mix(static_cast<std::uint64_t>(sim::TraceEventKind::kDeliver));
    mix(static_cast<std::uint64_t>(d.p));
    mix(static_cast<std::uint64_t>(d.m));
    mix(d.t);
    mix(static_cast<std::uint64_t>(d.local_seq));
  }
  for (size_t i = 0; i < rec.multicast.size(); ++i) {
    const auto& m = rec.multicast[i];
    mix(static_cast<std::uint64_t>(sim::TraceEventKind::kSend));
    mix(static_cast<std::uint64_t>(m.id));
    mix(static_cast<std::uint64_t>(m.dst));
    mix(static_cast<std::uint64_t>(m.src));
    mix(static_cast<std::uint64_t>(m.payload));
    mix(i < rec.multicast_time.size() ? rec.multicast_time[i] : 0);
  }
  return h;
}

// Folds an event-stream hash (from a sim::HashingSink or RecorderSink
// attached to the run) into a run's delivery hash.
inline std::uint64_t combine_hash(std::uint64_t delivery_hash,
                                  std::uint64_t event_hash) {
  return sim::trace_mix(delivery_hash, event_hash);
}

inline RunResult summarize(const amcast::RunRecord& rec) {
  RunResult r;
  r.steps = rec.steps;
  r.deliveries = rec.deliveries.size();
  r.quiescent = rec.quiescent;
  r.trace_hash = hash_deliveries(rec);
  return r;
}

// Folds a World's wire + allocation counters into a run's result.
inline void absorb_world(RunResult& r, const sim::World& world) {
  const auto& a = world.buffer().alloc_stats();
  r.inline_payloads = a.inline_payloads;
  r.heap_payloads = a.heap_payloads;
  r.moved_sends = a.moved_sends;
}

// Aggregate of one sweep (n runs of one configuration).
struct SweepStats {
  std::string name;
  int runs = 0;
  int threads = 1;
  double wall_seconds = 0;
  std::uint64_t steps = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t messages = 0;
  std::uint64_t quiescent_runs = 0;
  std::uint64_t inline_payloads = 0;
  std::uint64_t heap_payloads = 0;
  std::uint64_t moved_sends = 0;

  double runs_per_sec() const {
    return wall_seconds > 0 ? runs / wall_seconds : 0;
  }
  double steps_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(steps) / wall_seconds : 0;
  }
};

// Fans jobs 0..n-1 over a fixed-size thread pool. Work is claimed via an
// atomic cursor; each job writes only its own result slot, so the only
// synchronization is the claim counter and the join.
class SweepRunner {
 public:
  // threads == 0 picks hardware_concurrency (>= 1).
  explicit SweepRunner(int threads = 0)
      : threads_(threads > 0
                     ? threads
                     : std::max(1u, std::thread::hardware_concurrency())) {}

  int threads() const { return threads_; }

  std::vector<RunResult> run(int n,
                             const std::function<RunResult(int)>& job) const {
    if (threads_ == 1 || n <= 1) {
      std::vector<RunResult> results(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) results[static_cast<size_t>(i)] = job(i);
      return results;
    }
    // Cache-line-padded result slots: adjacent RunResults share lines, and
    // with short jobs the cross-core write invalidations on the results
    // vector were a measurable fraction of the job hot path.
    struct alignas(64) Slot {
      RunResult r;
    };
    std::vector<Slot> slots(static_cast<size_t>(n));
    std::atomic<int> next{0};
    auto worker = [&]() {
      for (;;) {
        int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        slots[static_cast<size_t>(i)].r = job(i);
      }
    };
    std::vector<std::thread> pool;
    int workers = std::min(threads_, n);
    pool.reserve(static_cast<size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    std::vector<RunResult> results(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      results[static_cast<size_t>(i)] = slots[static_cast<size_t>(i)].r;
    return results;
  }

  // Like run(), but each *worker* owns a private metrics registry that jobs
  // record into; the per-worker registries are merged into `merged` once at
  // the join. The previous scheme (one registry per job, merged in job-index
  // order) allocated registry series on every job's hot path; per-worker
  // registries touch thread-private memory only. The merge algebra is
  // commutative — counters, histogram buckets and sums are integer adds,
  // gauges add values and max high-water marks — so the merged report is
  // byte-identical no matter which worker claimed which job.
  std::vector<RunResult> run_merged(
      int n, const std::function<RunResult(int, sim::Metrics&)>& job,
      sim::Metrics* merged) const {
    if (threads_ == 1 || n <= 1) {
      std::vector<RunResult> results(static_cast<size_t>(n));
      sim::Metrics local;
      for (int i = 0; i < n; ++i)
        results[static_cast<size_t>(i)] = job(i, local);
      if (merged) merged->merge(local);
      return results;
    }
    struct alignas(64) Slot {
      RunResult r;
    };
    std::vector<Slot> slots(static_cast<size_t>(n));
    int workers = std::min(threads_, n);
    std::vector<sim::Metrics> worker_metrics(static_cast<size_t>(workers));
    std::atomic<int> next{0};
    auto worker = [&](int t) {
      sim::Metrics& mine = worker_metrics[static_cast<size_t>(t)];
      for (;;) {
        int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        slots[static_cast<size_t>(i)].r = job(i, mine);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
    if (merged)
      for (const auto& wm : worker_metrics) merged->merge(wm);
    std::vector<RunResult> results(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      results[static_cast<size_t>(i)] = slots[static_cast<size_t>(i)].r;
    return results;
  }

  // Times `run` and aggregates the results; the per-run results are also
  // handed back through `out` when non-null (determinism checks).
  SweepStats sweep(std::string name, int n,
                   const std::function<RunResult(int)>& job,
                   std::vector<RunResult>* out = nullptr) const {
    SweepStats s;
    s.name = std::move(name);
    s.runs = n;
    s.threads = std::min(threads_, std::max(n, 1));
    auto t0 = std::chrono::steady_clock::now();
    auto results = run(n, job);
    auto t1 = std::chrono::steady_clock::now();
    s.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const auto& r : results) {
      s.steps += r.steps;
      s.deliveries += r.deliveries;
      s.messages += r.messages;
      s.quiescent_runs += r.quiescent ? 1 : 0;
      s.inline_payloads += r.inline_payloads;
      s.heap_payloads += r.heap_payloads;
      s.moved_sends += r.moved_sends;
    }
    if (out) *out = std::move(results);
    return s;
  }

 private:
  int threads_;
};

// Minimal JSON emitter for BENCH_sim.json — flat scalars and one array of
// sweep objects; enough structure for trend tracking across PRs.
class BenchJson {
 public:
  void field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    scalars_.push_back("\"" + key + "\": " + buf);
  }
  void field(const std::string& key, std::uint64_t v) {
    scalars_.push_back("\"" + key + "\": " + std::to_string(v));
  }
  void field(const std::string& key, int v) {
    scalars_.push_back("\"" + key + "\": " + std::to_string(v));
  }
  void field(const std::string& key, const std::string& v) {
    scalars_.push_back("\"" + key + "\": \"" + v + "\"");
  }
  // An explicit JSON null — for metrics that would be meaningless rather
  // than zero (e.g. a pool-vs-seq speedup measured with a 1-thread pool).
  void null_field(const std::string& key) {
    scalars_.push_back("\"" + key + "\": null");
  }
  // A pre-rendered JSON value (object/array) under `key` — how the per-config
  // metrics summaries fold into BENCH_sim.json.
  void raw(const std::string& key, const std::string& json_value) {
    scalars_.push_back("\"" + key + "\": " + json_value);
  }

  void add(const SweepStats& s) {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"runs\": %d, \"threads\": %d, "
        "\"wall_seconds\": %.6f, \"runs_per_sec\": %.1f, "
        "\"steps_per_sec\": %.1f, \"steps\": %llu, \"deliveries\": %llu, "
        "\"messages\": %llu, \"quiescent_runs\": %llu, "
        "\"inline_payloads\": %llu, \"heap_payloads\": %llu, "
        "\"moved_sends\": %llu}",
        s.name.c_str(), s.runs, s.threads, s.wall_seconds, s.runs_per_sec(),
        s.steps_per_sec(), static_cast<unsigned long long>(s.steps),
        static_cast<unsigned long long>(s.deliveries),
        static_cast<unsigned long long>(s.messages),
        static_cast<unsigned long long>(s.quiescent_runs),
        static_cast<unsigned long long>(s.inline_payloads),
        static_cast<unsigned long long>(s.heap_payloads),
        static_cast<unsigned long long>(s.moved_sends));
    sweeps_.push_back(buf);
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n");
    for (const auto& s : scalars_) std::fprintf(f, "  %s,\n", s.c_str());
    std::fprintf(f, "  \"sweeps\": [\n");
    for (size_t i = 0; i < sweeps_.size(); ++i)
      std::fprintf(f, "%s%s\n", sweeps_[i].c_str(),
                   i + 1 < sweeps_.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> scalars_;
  std::vector<std::string> sweeps_;
};

}  // namespace gam::bench
