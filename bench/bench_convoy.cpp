// Experiment E4 (paper §6.2, citing [1, 17]): the convoy effect.
//
// Under plain genuineness a message may wait for a chain of messages that
// spans other groups: delivery latency grows with the length of the
// intersection chain. With disjoint groups (full parallelism) latency is
// flat. The strongly genuine variation (§6.2) asks for delivery when the
// destination group runs in isolation; the P-fair run at the bottom shows
// Algorithm 1 achieving that for acyclic topologies.
//
// Each topology configuration is an independent run, so the configurations
// fan out across the sweep pool (bench/sweep.hpp); each job builds its own
// GroupSystem and protocol and writes only its own result row.
#include <cstdio>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

// Runs the workload on a round-based clock: one time unit = one scheduling
// round in which every process may fire one action. Delivery latencies are
// then comparable across topologies of different sizes (a global step-count
// clock would inflate with the process count).
RunRecord run_rounds(const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat,
                     const std::vector<MulticastMessage>& workload,
                     std::uint64_t seed, ProcessSet fair = {},
                     sim::Time max_rounds = 100'000, int batch_k = 1,
                     int window_size = 1) {
  MuMulticast mc(sys, pat, {.seed = seed, .fair_set = fair,
                            .external_clock = true, .batch_k = batch_k,
                            .window_size = window_size});
  for (auto& m : workload) mc.submit(m);
  for (sim::Time r = 0; r < max_rounds; ++r) {
    mc.set_time(r);
    bool fired = false;
    for (ProcessId p = 0; p < sys.process_count(); ++p)
      fired |= mc.step_process(p);
    if (!fired && mc.quiescent()) break;
  }
  return mc.snapshot();
}

// Mean delivery latency (last delivery - multicast time) per message.
double mean_latency(const RunRecord& rec) {
  if (rec.multicast.empty()) return 0;
  double total = 0;
  int counted = 0;
  for (size_t i = 0; i < rec.multicast.size(); ++i) {
    sim::Time sent = rec.multicast_time[i];
    sim::Time last = 0;
    bool any = false;
    for (auto& d : rec.deliveries)
      if (d.m == rec.multicast[i].id) {
        last = std::max(last, d.t);
        any = true;
      }
    if (!any) continue;
    total += static_cast<double>(last - sent);
    ++counted;
  }
  return counted ? total / counted : 0;
}

enum Topology { kDisjoint, kChain, kRing, kIsolation };

struct Config {
  Topology topo;
  int k;
};

struct Row {
  double latency = 0;
  double steps_per_delivery = 0;
  size_t deliveries = 0;
  int group0_size = 0;  // isolation rows only
};

}  // namespace

int main() {
  constexpr int kPerGroup = 4;

  std::vector<Config> configs;
  for (int k : {2, 4, 6, 8}) configs.push_back({kDisjoint, k});
  for (int k : {2, 4, 6, 8}) configs.push_back({kChain, k});
  for (int k : {3, 4, 5, 6}) configs.push_back({kRing, k});
  for (int k : {4, 8}) configs.push_back({kIsolation, k});

  bench::SweepRunner pool;
  std::printf(
      "Convoy effect: mean delivery latency (steps) vs topology, %d "
      "msgs/group (pool of %d)\n\n",
      kPerGroup, pool.threads());

  std::vector<Row> rows(configs.size());
  pool.run(static_cast<int>(configs.size()), [&](int i) {
    const Config& c = configs[static_cast<size_t>(i)];
    Row& row = rows[static_cast<size_t>(i)];
    if (c.topo == kIsolation) {
      // Group parallelism (§6.2): on an acyclic topology, a group in
      // isolation delivers without anyone else taking steps.
      auto sys = groups::chain_system(c.k, 2);
      sim::FailurePattern pat(sys.process_count());
      auto rec = run_rounds(sys, pat, {{0, 0, sys.group(0).min(), 0}}, 9,
                            sys.group(0));
      row = {mean_latency(rec), 0, rec.deliveries.size(),
             sys.group(0).size()};
      return bench::RunResult{};
    }
    auto sys = c.topo == kDisjoint ? groups::disjoint_system(c.k, 2)
               : c.topo == kChain  ? groups::chain_system(c.k, 2)
                                   : groups::ring_system(c.k, 2);
    sim::FailurePattern pat(sys.process_count());
    auto rec = run_rounds(sys, pat, round_robin_workload(sys, kPerGroup), 5);
    row = {mean_latency(rec),
           static_cast<double>(rec.steps) /
               static_cast<double>(rec.deliveries.size()),
           rec.deliveries.size(), 0};
    return bench::RunResult{};
  });

  std::printf("%-26s %8s %14s %12s\n", "topology", "groups",
              "latency(rounds)", "steps/deliv");
  Topology last_topo = kDisjoint;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const Row& row = rows[i];
    if (c.topo != last_topo) {
      std::printf("\n");
      last_topo = c.topo;
    }
    switch (c.topo) {
      case kDisjoint:
        std::printf("%-26s %8d %14.1f %12.2f\n", "disjoint (parallel)", c.k,
                    row.latency, row.steps_per_delivery);
        break;
      case kChain:
        std::printf("%-26s %8d %14.1f %12.2f\n", "chain (convoy, F=0)", c.k,
                    row.latency, row.steps_per_delivery);
        break;
      case kRing:
        std::printf("%-26s %8d %14.1f %12.2f\n", "ring (cyclic family)", c.k,
                    row.latency, row.steps_per_delivery);
        break;
      case kIsolation:
        if (configs[i - 1].topo != kIsolation)
          std::printf("Isolation (P-fair) runs on the chain topology:\n");
        std::printf("  chain k=%d, only g0 scheduled: delivered %zu/%d "
                    "copies, latency %.1f\n",
                    c.k, row.deliveries, row.group0_size, row.latency);
        break;
    }
  }
  // Batched rounds vs the convoy (PR 6): the same chain workloads with
  // macro-step batching and windowed issuance. The convoy is a *scheduling*
  // artifact — a stable message waits whole rounds for its <_L-predecessors
  // to crawl through their own one-action-per-round ladders — so draining up
  // to batch_k enabled actions per round collapses it.
  struct BatchedRow {
    double base = 0;
    double batched = 0;
  };
  const int chain_ks[] = {2, 4, 6, 8};
  std::vector<BatchedRow> brows(4);
  pool.run(4, [&](int i) {
    int k = chain_ks[static_cast<size_t>(i)];
    auto sys = groups::chain_system(k, 2);
    sim::FailurePattern pat(sys.process_count());
    auto workload = round_robin_workload(sys, kPerGroup);
    auto base = run_rounds(sys, pat, workload, 5);
    auto batched = run_rounds(sys, pat, workload, 5, {}, 100'000, 16, 8);
    brows[static_cast<size_t>(i)] = {mean_latency(base),
                                     mean_latency(batched)};
    return bench::RunResult{};
  });
  std::printf("\nBatched rounds (batch_k=16, window_size=8) on the chain:\n");
  std::printf("%-26s %8s %14s %14s %8s\n", "topology", "groups",
              "base latency", "batched", "ratio");
  for (size_t i = 0; i < brows.size(); ++i) {
    const BatchedRow& b = brows[i];
    std::printf("%-26s %8d %14.1f %14.1f %7.1fx\n", "chain (convoy, F=0)",
                chain_ks[i], b.base, b.batched,
                b.batched > 0 ? b.base / b.batched : 0.0);
  }

  std::printf(
      "\nExpected shape: disjoint latency flat; chain/ring latency grows with "
      "the\nchain of intersecting groups (the convoy of [1]); isolation runs "
      "still deliver\n(group parallelism holds for F = 0, SS 6.2); batching "
      "flattens the chain\nlatency back toward the disjoint baseline.\n");
  return 0;
}
