// Experiment E5 (paper §5): the cost and convergence of the necessity
// constructions — how many black-box instances each emulation spawns, and how
// quickly its output stabilizes after the failure pattern quiesces.
#include <cstdio>

#include "emulation/gamma_emulation.hpp"
#include "emulation/indicator_emulation.hpp"
#include "emulation/omega_extraction.hpp"
#include "emulation/sigma_extraction.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"

using namespace gam;
using namespace gam::emulation;

namespace {

// First time from which query(p, ·) equals its final value.
template <typename QueryFn, typename Value>
Time stabilization_time(QueryFn&& q, Time horizon, const Value& final_value) {
  Time stable_from = 0;
  for (Time t = 0; t <= horizon; ++t)
    if (!(q(t) == final_value)) stable_from = t + 1;
  return stable_from;
}

}  // namespace

int main() {
  constexpr Time kHorizon = 400;
  std::printf("Emulation cost & convergence (horizon %llu ticks)\n\n",
              static_cast<unsigned long long>(kHorizon));

  // --- Algorithm 2: Σ_{g∩h} ---------------------------------------------------
  std::printf("Algorithm 2 — Sigma_{g@h} extraction (Figure 1, g2@g3):\n");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::FailurePattern pat(5);
    if (seed == 2) pat.crash_at(3, 40);
    if (seed == 3) {
      pat.crash_at(3, 40);
      pat.crash_at(4, 60);
    }
    auto sys = groups::figure1_system();
    SigmaExtraction ext(sys, pat, {2, 3}, seed);
    ext.run(kHorizon);
    auto final_q = *ext.query(0, kHorizon);
    Time st = stabilization_time(
        [&](Time t) { return *ext.query(0, t); }, kHorizon, final_q);
    std::printf("  crashes=%d: 2^|g2|-1 + 2^|g3|-1 = %d instances, "
                "final quorum %s, stable from t=%llu\n",
                pat.faulty_set().size(), (1 << 3) - 1 + (1 << 3) - 1,
                final_q.to_string().c_str(),
                static_cast<unsigned long long>(st));
  }

  // --- Algorithm 3: γ ----------------------------------------------------------
  std::printf("\nAlgorithm 3 — gamma emulation:\n");
  {
    auto sys = groups::figure1_system();
    sim::FailurePattern pat(5);
    pat.crash_at(1, 30);
    GammaEmulation gamma(sys, pat, 3);
    gamma.run(kHorizon);
    std::printf("  Figure 1, p1 crashes: %d path instances, %d signals, "
                "|gamma(p0)| final = %zu (expected 1: only f')\n",
                gamma.path_count(), gamma.signals_sent(),
                gamma.query(0, kHorizon).size());
  }
  for (int k : {3, 4, 5}) {
    auto sys = groups::ring_system(k, 1);
    sim::FailurePattern pat(sys.process_count());
    pat.crash_at(0, 30);  // kills one ring edge
    GammaEmulation gamma(sys, pat, k);
    gamma.run(kHorizon);
    std::printf("  ring k=%d, one edge dies: %d path instances, %d signals, "
                "family dropped: %s\n",
                k, gamma.path_count(), gamma.signals_sent(),
                gamma.query((k > 1) ? 1 : 0, kHorizon).empty() ? "yes" : "no");
  }

  // --- Algorithm 4: 1^{g∩h} ------------------------------------------------------
  std::printf("\nAlgorithm 4 — indicator emulation (Figure 1, g0@g1 = {p1}):\n");
  {
    auto sys = groups::figure1_system();
    sim::FailurePattern pat(5);
    pat.crash_at(1, 50);
    IndicatorEmulation ind(sys, pat, 0, 1, 9);
    ind.run(kHorizon);
    Time flip = kHorizon;
    for (Time t = 0; t <= kHorizon; ++t)
      if (*ind.query(0, t)) {
        flip = t;
        break;
      }
    std::printf("  crash at t=50 -> indicator true from t=%llu "
                "(detection lag %lld ticks)\n",
                static_cast<unsigned long long>(flip),
                static_cast<long long>(flip) - 50);
  }

  // --- Algorithm 5: Ω_{g∩h} -------------------------------------------------------
  std::printf("\nAlgorithm 5 — Omega_{g@h} extraction (Figure 1, g2@g3):\n");
  for (int victim : {-1, 0, 3}) {
    auto sys = groups::figure1_system();
    sim::FailurePattern pat(5);
    if (victim >= 0) pat.crash_at(victim, 40);
    OmegaExtraction ext(sys, pat, 2, 3, {.seed = 11});
    ProcessId querier = victim == 3 ? 0 : 3;
    auto leader = *ext.query(querier, kHorizon);
    std::printf("  victim=%s: stable leader p%d%s\n",
                victim < 0 ? "none" : ("p" + std::to_string(victim)).c_str(),
                leader, pat.correct(leader) ? " (correct)" : " (FAULTY!)");
  }
  return 0;
}
