// Experiment E6 (paper §3): the cyclic-family machinery — enumeration of F,
// cpaths, and the family-faulty predicates — measured over topology size.
#include <benchmark/benchmark.h>

#include "groups/generator.hpp"
#include "groups/group_system.hpp"

using namespace gam;
using namespace gam::groups;

namespace {

GroupSystem make_random(int n_groups, std::uint64_t seed) {
  Rng rng(seed);
  TopologySpec spec;
  spec.process_count = 12;
  spec.group_count = n_groups;
  spec.min_group_size = 2;
  spec.max_group_size = 4;
  spec.overlap_bias = 0.7;
  return random_group_system(spec, rng);
}

}  // namespace

static void BM_CyclicFamilyEnumeration(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  size_t families = 0;
  for (auto _ : state) {
    GroupSystem sys = make_random(n, seed++);
    families = sys.cyclic_families().size();
    benchmark::DoNotOptimize(families);
  }
  state.counters["families"] = static_cast<double>(families);
}
BENCHMARK(BM_CyclicFamilyEnumeration)->DenseRange(4, 12, 2);

static void BM_CpathsRing(benchmark::State& state) {
  auto k = static_cast<int>(state.range(0));
  GroupSystem sys = ring_system(k, 1);
  FamilyMask all;
  for (GroupId g = 0; g < k; ++g) all.insert(g);
  size_t paths = 0;
  for (auto _ : state) {
    paths = sys.cpaths(all).size();
    benchmark::DoNotOptimize(paths);
  }
  state.counters["cpaths"] = static_cast<double>(paths);
}
BENCHMARK(BM_CpathsRing)->DenseRange(3, 8);

static void BM_HamiltonianCyclesCompleteGraph(benchmark::State& state) {
  // k groups all sharing one process: K_k intersection graph, (k-1)!/2 cycles.
  auto k = static_cast<int>(state.range(0));
  std::vector<ProcessSet> groups;
  for (int i = 0; i < k; ++i) groups.push_back(ProcessSet{0, i + 1});
  GroupSystem sys(k + 1, std::move(groups));
  FamilyMask all;
  for (GroupId g = 0; g < k; ++g) all.insert(g);
  size_t cycles = 0;
  for (auto _ : state) {
    cycles = sys.hamiltonian_cycles(all).size();
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_HamiltonianCyclesCompleteGraph)->DenseRange(3, 8);

static void BM_FamilyFaultyPairwise(benchmark::State& state) {
  auto k = static_cast<int>(state.range(0));
  GroupSystem sys = ring_system(k, 2);
  FamilyMask all;
  for (GroupId g = 0; g < k; ++g) all.insert(g);
  sim::FailurePattern pat(sys.process_count());
  pat.crash_at(0, 5);
  for (auto _ : state) {
    bool f = sys.family_faulty_at(all, pat, 10);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FamilyFaultyPairwise)->DenseRange(3, 8);

static void BM_FamilyFaultyHamiltonian(benchmark::State& state) {
  auto k = static_cast<int>(state.range(0));
  GroupSystem sys = ring_system(k, 2);
  FamilyMask all;
  for (GroupId g = 0; g < k; ++g) all.insert(g);
  sim::FailurePattern pat(sys.process_count());
  pat.crash_at(0, 5);
  for (auto _ : state) {
    bool f = sys.family_faulty_hamiltonian_at(all, pat, 10);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FamilyFaultyHamiltonian)->DenseRange(3, 8);

static void BM_FamiliesOfProcess(benchmark::State& state) {
  GroupSystem sys = make_random(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    for (ProcessId p = 0; p < sys.process_count(); ++p)
      benchmark::DoNotOptimize(sys.families_of_process(p));
  }
}
BENCHMARK(BM_FamiliesOfProcess)->DenseRange(4, 10, 2);
