// The perf-tracking bench: parallel seed sweeps over the hot simulator paths.
//
// Three configurations, each swept over independent seeds:
//   e3_mu_k16        — Algorithm 1 on the E3 workload (k=16 disjoint groups,
//                      round-robin messages): the action-system hot path;
//   world_paxos_k8   — ReplicatedMulticast (per-group Paxos logs inside a
//                      sim::World network): the World/MessageBuffer hot path
//                      the swap-and-pop + runnable-set changes target;
//   figure1_crashes  — Algorithm 1 on Figure 1 under sampled failure
//                      patterns: the branchy detector-driven path.
//
// Each sweep runs twice: sequentially (one thread — the single-core
// steps/sec trendline) and on the thread pool (the wall-clock speedup
// trendline; equals ~1x on a single-core host). A determinism gate compares
// the per-seed delivery-trace hashes of both executions: a World must
// produce bit-identical runs whether it executes inline or on the pool.
//
// Output: human-readable table + BENCH_sim.json (see EXPERIMENTS.md for the
// schema). Exit code is non-zero when the determinism gate fails, so this
// binary doubles as the ThreadSanitizer smoke test (`bench_sweep --quick`).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;
using namespace gam::bench;

namespace {

struct Config {
  bool quick = false;
  int threads = 0;  // 0 = hardware concurrency
  int seeds = 0;    // 0 = default per mode
  std::string out = "BENCH_sim.json";
};

// ---- the swept workloads -----------------------------------------------------

// E3 (bench_genuine_vs_broadcast): k disjoint groups of 2, Algorithm 1.
RunResult run_e3_mu(std::uint64_t seed, int k, int per_group) {
  auto sys = groups::disjoint_system(k, 2);
  sim::FailurePattern pat(sys.process_count());
  MuMulticast mc(sys, pat, {.seed = seed});
  for (auto& m : round_robin_workload(sys, per_group)) mc.submit(m);
  return summarize(mc.run());
}

// ReplicatedMulticast: per-group Paxos logs inside a simulated network — the
// workload that actually exercises World scheduling and the message buffer.
RunResult run_world_paxos(std::uint64_t seed, int k, int per_group) {
  auto sys = groups::disjoint_system(k, 3);
  sim::FailurePattern pat(sys.process_count());
  ReplicatedMulticast rm(sys, pat, {.seed = seed});
  for (auto& m : round_robin_workload(sys, per_group)) rm.submit(m);
  RunResult r = summarize(rm.run());
  r.messages = rm.messages_sent();
  absorb_world(r, rm.world());
  return r;
}

// Figure 1 under sampled crashes: detector-heavy Algorithm 1 runs.
RunResult run_figure1_crashes(std::uint64_t seed, int per_group) {
  auto sys = groups::figure1_system();
  Rng rng(seed);
  sim::EnvironmentSampler env{
      .process_count = 5, .max_failures = 2, .horizon = 100};
  sim::FailurePattern pat = env.sample(rng);
  MuMulticast mc(sys, pat, {.seed = seed});
  for (auto& m : round_robin_workload(sys, per_group)) mc.submit(m);
  return summarize(mc.run());
}

void print_stats(const SweepStats& s) {
  std::printf("  %-28s runs=%-4d threads=%-2d wall=%8.3fs  "
              "runs/s=%8.1f  steps/s=%11.0f\n",
              s.name.c_str(), s.runs, s.threads, s.wall_seconds,
              s.runs_per_sec(), s.steps_per_sec());
}

// Runs one configuration sequentially and pooled; checks per-seed trace
// hashes agree between the two executions (byte-reproducibility across
// thread interleavings). Returns false on a determinism violation.
bool sweep_both(const char* name, int n, const SweepRunner& seq,
                const SweepRunner& pool,
                const std::function<RunResult(int)>& job, BenchJson& json,
                double* speedup_out) {
  std::vector<RunResult> seq_results, pool_results;
  SweepStats s1 = seq.sweep(std::string(name) + "_seq", n, job, &seq_results);
  SweepStats sp =
      pool.sweep(std::string(name) + "_pool", n, job, &pool_results);

  bool ok = true;
  for (int i = 0; i < n; ++i) {
    if (seq_results[static_cast<size_t>(i)].trace_hash !=
        pool_results[static_cast<size_t>(i)].trace_hash) {
      std::printf("  DETERMINISM VIOLATION: %s seed-index %d "
                  "(inline %016llx vs pool %016llx)\n",
                  name, i,
                  static_cast<unsigned long long>(
                      seq_results[static_cast<size_t>(i)].trace_hash),
                  static_cast<unsigned long long>(
                      pool_results[static_cast<size_t>(i)].trace_hash));
      ok = false;
    }
  }
  print_stats(s1);
  print_stats(sp);
  double speedup = sp.wall_seconds > 0 ? s1.wall_seconds / sp.wall_seconds : 0;
  std::printf("  %-28s speedup=%.2fx  determinism=%s\n\n", "",
              speedup, ok ? "ok" : "VIOLATED");
  json.add(s1);
  json.add(sp);
  if (speedup_out) *speedup_out = speedup;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--quick") {
      cfg.quick = true;
    } else if (a.rfind("--threads=", 0) == 0) {
      cfg.threads = std::atoi(a.c_str() + 10);
    } else if (a.rfind("--seeds=", 0) == 0) {
      cfg.seeds = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--out=", 0) == 0) {
      cfg.out = a.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads=N] [--seeds=N] "
                   "[--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int seeds = cfg.seeds > 0 ? cfg.seeds : (cfg.quick ? 4 : 32);
  const int per_group = cfg.quick ? 2 : 4;
  SweepRunner seq(1);
  SweepRunner pool(cfg.threads);

  std::printf("Simulator seed-sweep bench — %d seeds/config, pool of %d "
              "thread(s)%s\n\n",
              seeds, pool.threads(), cfg.quick ? " [quick]" : "");

  BenchJson json;
  json.field("bench", std::string("bench_sweep"));
  json.field("quick", std::string(cfg.quick ? "true" : "false"));
  json.field("pool_threads", pool.threads());
  json.field("seeds_per_config", seeds);

  bool ok = true;
  double e3_speedup = 0;

  ok &= sweep_both(
      "e3_mu_k16", seeds, seq, pool,
      [&](int i) {
        return run_e3_mu(static_cast<std::uint64_t>(i) + 1, 16, per_group);
      },
      json, &e3_speedup);

  ok &= sweep_both(
      "world_paxos_k8", seeds, seq, pool,
      [&](int i) {
        return run_world_paxos(static_cast<std::uint64_t>(i) + 1,
                               cfg.quick ? 4 : 8, per_group);
      },
      json, nullptr);

  ok &= sweep_both(
      "figure1_crashes", seeds, seq, pool,
      [&](int i) {
        return run_figure1_crashes(static_cast<std::uint64_t>(i) + 1,
                                   per_group);
      },
      json, nullptr);

  json.field("e3_pool_vs_seq_speedup", e3_speedup);
  json.field("determinism", std::string(ok ? "ok" : "violated"));
  if (!json.write(cfg.out)) {
    std::fprintf(stderr, "failed to write %s\n", cfg.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", cfg.out.c_str());
  std::printf("determinism gate: %s\n", ok ? "ok" : "VIOLATED");
  return ok ? 0 : 1;
}
