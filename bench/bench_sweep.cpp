// The perf-tracking bench: parallel seed sweeps over the hot simulator paths.
//
// Four configurations, each swept over independent seeds:
//   e3_mu_k16        — Algorithm 1 on the E3 workload (k=16 disjoint groups,
//                      round-robin messages): the action-system hot path;
//   e3_mu_k64        — the same workload at the 64-group limit (single-member
//                      groups, the most groups the 64-process universe
//                      admits): scaling check for the incremental engine;
//   world_paxos_k8   — ReplicatedMulticast (per-group Paxos logs inside a
//                      sim::World network): the World/MessageBuffer hot path
//                      the swap-and-pop + runnable-set changes target;
//   figure1_crashes  — Algorithm 1 on Figure 1 under sampled failure
//                      patterns: the branchy detector-driven path.
//   e3_mu_wide128    — Algorithm 1 on 32 disjoint 4-rings (128 groups /
//                      256 processes): the widened-id-space smoke. Guards the
//                      multi-word ProcessSet, the GroupPairIndex log layout,
//                      and the wide-stride ballot packing at full scale, with
//                      the invariant monitors applying unchanged. Swept over
//                      fewer seeds than the regular configs (the topology is
//                      4x the size).
//
// Plus the batching headline pair: e3_mu_hirate_base / e3_mu_hirate_batched
// run the k=16 workload at a high submission rate, unbatched vs pinned
// batch_k=16 / window_size=8; their metrics summaries are the before/after
// convoy-wait comparison, and --batch=K / --window=W apply the knobs to the
// four regular configs.
//
// --engine=scan|incremental selects MuMulticast's guard-evaluation engine
// (default incremental); the two must produce identical per-seed trace
// hashes — scripts/tier1.sh diffs their recorded traces as a gate.
//
// Each sweep runs twice: sequentially (one thread — the single-core
// steps/sec trendline) and on the thread pool (the wall-clock speedup
// trendline; equals ~1x on a single-core host). A determinism gate compares
// the per-seed delivery-trace hashes of both executions: a World must
// produce bit-identical runs whether it executes inline or on the pool.
//
// Output: human-readable table + BENCH_sim.json (see EXPERIMENTS.md for the
// schema). Exit code is non-zero when the determinism gate fails, so this
// binary doubles as the ThreadSanitizer smoke test (`bench_sweep --quick`).
// On a gate failure the divergent seed is replayed twice inline with full
// event recording, both traces are dumped, and the first divergent event is
// printed (the same report `tools/trace_diff` produces offline).
//
// --metrics=PATH adds an instrumented pass per configuration: every worker
// owns a private sim::Metrics registry merged once at the join (the merge
// algebra is commutative, so the report is byte-identical across reruns,
// thread counts, and job-claim orders),
// and seed-index 0's full event stream replays through the online invariant
// monitors (integrity / agreement / acyclicity). The result is a
// gam-metrics-v1 JSON report at PATH; a compact per-config summary also folds
// into BENCH_sim.json under "metrics". Inspect or diff reports with
// tools/metrics_report. A monitor violation fails the run (exit 1), same as
// the determinism gate.
//
// --adversary=SPEC drives every configuration under an adversarial strategy
// (sim/adversary.hpp): "random" (default), "pct[:D]" for PCT priority
// scheduling, and a "qedge" prefix that additionally derives each seed's
// failure pattern from the group system's quorum boundaries
// ("qedge+pct:3"). Replay specs are rejected here — replay is a single-run
// affair (tools/adversary_hunt). All gates (determinism, monitors,
// engine-equivalence via recorded traces) apply unchanged under any
// strategy.
//
// --protocol=NAME (repeatable) adds a swept configuration proto_<NAME> for
// any protocol in amcast::ProtocolRegistry (mu, perfectfd, skeen, broadcast,
// worldlog, whitebox, generic, ...), run on a shared disjoint topology with
// the same determinism/monitor gates; conflict-aware protocols get a
// conflict-classed workload and the conflict-aware acyclicity monitor.
// Unknown names exit 2 listing the registered protocols.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/protocol.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sim/adversary.hpp"
#include "sim/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/spans.hpp"
#include "sim/trace.hpp"
#include "sweep.hpp"

// Build-time run metadata (bench/CMakeLists.txt); fallbacks keep the file
// compiling outside that target.
#ifndef GAM_GIT_REV
#define GAM_GIT_REV "unknown"
#endif
#ifndef GAM_BUILD_TYPE
#define GAM_BUILD_TYPE ""
#endif
#ifndef GAM_SANITIZE_STR
#define GAM_SANITIZE_STR ""
#endif

using namespace gam;
using namespace gam::amcast;
using namespace gam::bench;

namespace {

struct Config {
  bool quick = false;
  int threads = 0;       // 0 = hardware concurrency
  int seeds = 0;         // 0 = default per mode
  int seed_base = 1;     // seed of job 0 (job i runs seed_base + i)
  std::string out = "BENCH_sim.json";
  std::string trace;     // when set, record seed 0 of each config to
                         // <trace>.<config>.trace
  std::string spans;     // when set, record seed 0's span stream to
                         // <spans>.<config>.spans (tools/span_report input)
  std::string metrics;   // when set, write a gam-metrics-v1 report here
  MuMulticast::Engine engine = MuMulticast::Engine::kIncremental;
  sim::AdversarySpec adversary;  // scheduling strategy + crash derivation
  // Batched rounds / pipelined issuance knobs applied to every config
  // (mu_multicast.hpp Options; universal_log.hpp for the World configs).
  // The pinned e3_mu_hirate_{base,batched} pair ignores these — it always
  // measures 1/1 against 16/8.
  int batch_k = 1;
  int window_size = 1;
  // Extra per-protocol configs requested via --protocol=NAME (validated
  // against the ProtocolRegistry at parse time).
  std::vector<std::string> protocols;
};

// Every output path is written at the END of a multi-minute sweep; probe them
// up front so a typo'd directory fails in milliseconds with exit 2 instead.
// A probe that had to create the file removes it again.
bool path_writable(const std::string& path) {
  std::FILE* pre = std::fopen(path.c_str(), "r");
  bool existed = pre != nullptr;
  if (pre) std::fclose(pre);
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return false;
  std::fclose(f);
  if (!existed) std::remove(path.c_str());
  return true;
}

// The failure pattern a configuration runs under: quorum-edge derived when
// the axis asks for it, crash-free otherwise. (figure1_crashes keeps its
// sampled environment in the non-qedge case; see its job below.)
sim::FailurePattern adversary_pattern(const sim::AdversarySpec& adv,
                                      const groups::GroupSystem& sys,
                                      std::uint64_t seed) {
  if (!adv.quorum_edge_crashes)
    return sim::FailurePattern(sys.process_count());
  return sim::QuorumEdgeAdversary(sys.groups(), sys.process_count())
      .pattern_for(seed);
}

// A swept job: runs seed-index `i`; when `rec` is non-null the run's full
// event stream is recorded there instead of only hashed; when `met` is
// non-null the run attaches its metrics probes to that registry; when
// `spans` is non-null the run attaches its span sink there (Algorithm 1
// configs — the World configs carry no span probes and leave it empty).
using TracedJob = std::function<RunResult(int, sim::RecorderSink*,
                                          sim::Metrics*, sim::SpanCollector*)>;

// How a configuration's trace maps onto the invariant monitors: group
// membership, protocol numbering, and the failure pattern of seed-index 0
// (the seed the monitor pass replays).
using MonitorConfigFn = std::function<sim::MonitorConfig()>;

// ---- the swept workloads -----------------------------------------------------

// A registered protocol by name; the registry owns the descriptor.
const ProtocolDescriptor& descriptor(const char* name) {
  const ProtocolDescriptor* d = ProtocolRegistry::instance().find(name);
  GAM_EXPECTS(d != nullptr);
  return *d;
}

// The one construction-and-run path every configuration funnels through
// (ISSUE 10): build from the descriptor, attach sinks/metrics/spans
// uniformly, submit, run, absorb wire/alloc stats when the protocol carries a
// World. The per-engine quirks the helpers below used to hand-wire —
// run()/run_with() dispatch for Algorithm 1, sinks through
// world().set_trace_sink for the World engines — live behind the adapters in
// src/amcast/protocol.cpp now, and the call order here reproduces the old
// hand-wired order byte for byte (the golden trace gate pins it).
RunResult run_protocol(const ProtocolDescriptor& d,
                       const groups::GroupSystem& sys,
                       const sim::FailurePattern& pat,
                       const ProtocolOptions& opt,
                       const std::vector<MulticastMessage>& workload,
                       sim::RecorderSink* rec, sim::Metrics* met,
                       sim::SpanCollector* spans) {
  auto p = d.make(sys, pat, opt);
  sim::HashingSink hasher;
  p->set_event_sink(rec ? static_cast<sim::TraceSink*>(rec) : &hasher);
  if (met) p->set_metrics(met);
  if (spans) p->set_span_sink(spans);
  for (const auto& m : workload) p->submit(m);
  RunResult r = summarize(p->run());
  r.messages = p->wire_messages();
  if (sim::World* w = p->world()) absorb_world(r, *w);
  r.trace_hash = combine_hash(r.trace_hash, rec ? rec->hash() : hasher.hash());
  return r;
}

// Options shared by every swept configuration of one seed.
ProtocolOptions sweep_options(std::uint64_t seed, MuMulticast::Engine engine,
                              const sim::AdversarySpec& adv, int batch_k,
                              int window_size) {
  ProtocolOptions opt;
  opt.seed = seed;
  opt.engine = engine;
  opt.scheduler = adv.scheduler;
  opt.batch_k = batch_k;
  opt.window_size = window_size;
  return opt;
}

// E3 (bench_genuine_vs_broadcast): k disjoint groups, Algorithm 1.
// group_size=2 is the paper's E3 shape; the k=64 scaling config uses
// single-member groups (64 groups × 2 members would overflow the 64-process
// universe).
RunResult run_e3_mu(std::uint64_t seed, int k, int group_size, int per_group,
                    MuMulticast::Engine engine,
                    const sim::AdversarySpec& adv, sim::RecorderSink* rec,
                    sim::Metrics* met, int batch_k = 1, int window_size = 1,
                    sim::SpanCollector* spans = nullptr) {
  auto sys = groups::disjoint_system(k, group_size);
  sim::FailurePattern pat = adversary_pattern(adv, sys, seed);
  return run_protocol(descriptor("mu"), sys, pat,
                      sweep_options(seed, engine, adv, batch_k, window_size),
                      round_robin_workload(sys, per_group), rec, met, spans);
}

// ReplicatedMulticast: per-group Paxos logs inside a simulated network — the
// workload that actually exercises World scheduling and the message buffer.
// The hash covers the complete wire-event stream (every send, receive,
// null-step, FD query, and delivery), not just the delivery record.
RunResult run_world_paxos(std::uint64_t seed, int k, int per_group,
                          const sim::AdversarySpec& adv,
                          sim::RecorderSink* rec, sim::Metrics* met,
                          int batch_k = 1, int window_size = 1) {
  auto sys = groups::disjoint_system(k, 3);
  sim::FailurePattern pat = adversary_pattern(adv, sys, seed);
  return run_protocol(descriptor("worldlog"), sys, pat,
                      sweep_options(seed, MuMulticast::Engine::kIncremental,
                                    adv, batch_k, window_size),
                      round_robin_workload(sys, per_group), rec, met, nullptr);
}

// The 128-group / 256-process wide smoke: Algorithm 1 on 32 disjoint
// 4-rings. Every id past the old 64-ceiling is exercised — multi-word
// ProcessSet words, group ids above 63 in the GroupPairIndex layout, and
// wide-stride ballots in the consensus objects.
RunResult run_wide_mu(std::uint64_t seed, int per_group,
                      MuMulticast::Engine engine,
                      const sim::AdversarySpec& adv, sim::RecorderSink* rec,
                      sim::Metrics* met, int batch_k = 1, int window_size = 1,
                      sim::SpanCollector* spans = nullptr) {
  auto sys = groups::clustered_ring_system(32, 4, 2);
  sim::FailurePattern pat = adversary_pattern(adv, sys, seed);
  ProtocolOptions opt = sweep_options(seed, engine, adv, batch_k, window_size);
  opt.max_steps = 1u << 22;
  return run_protocol(descriptor("mu"), sys, pat, opt,
                      round_robin_workload(sys, per_group), rec, met, spans);
}

// Figure 1 under sampled crashes: detector-heavy Algorithm 1 runs.
RunResult run_figure1_crashes(std::uint64_t seed, int per_group,
                              MuMulticast::Engine engine,
                              const sim::AdversarySpec& adv,
                              sim::RecorderSink* rec, sim::Metrics* met,
                              int batch_k = 1, int window_size = 1,
                              sim::SpanCollector* spans = nullptr) {
  auto sys = groups::figure1_system();
  sim::FailurePattern pat = [&] {
    if (adv.quorum_edge_crashes) return adversary_pattern(adv, sys, seed);
    Rng rng(seed);
    sim::EnvironmentSampler env{
        .process_count = 5, .max_failures = 2, .horizon = 100};
    return env.sample(rng);
  }();
  return run_protocol(descriptor("mu"), sys, pat,
                      sweep_options(seed, engine, adv, batch_k, window_size),
                      round_robin_workload(sys, per_group), rec, met, spans);
}

sim::MonitorConfig monitor_config(const groups::GroupSystem& sys,
                                  sim::ProtocolId protocol_base,
                                  bool require_multicast,
                                  ProcessSet faulty = {}) {
  sim::MonitorConfig mc;
  mc.groups.reserve(static_cast<size_t>(sys.group_count()));
  for (GroupId g = 0; g < sys.group_count(); ++g)
    mc.groups.push_back(sys.group(g));
  mc.protocol_base = protocol_base;
  mc.require_multicast = require_multicast;
  mc.faulty = faulty;
  return mc;
}

// Sum of a gauge's merged values across all labels (the ledger gauges merge
// by addition, so this is the across-seeds total).
std::int64_t gauge_total(const sim::Metrics& m, const std::string& name) {
  std::int64_t total = 0;
  for (const auto& [k, g] : m.gauges())
    if (k.name == name) total += g.value;
  return total;
}

// The per-config summary folded into BENCH_sim.json: headline latency
// quantiles, FD-query pressure, the genuineness ledger, and the monitor
// verdict — enough for trend tracking without parsing the full report.
std::string metrics_summary_json(const sim::Metrics& m,
                                 std::uint64_t monitor_events,
                                 std::uint64_t monitor_violations) {
  sim::Histogram lat = m.merged_histogram("deliver_latency");
  sim::Histogram convoy = m.merged_histogram("convoy_wait");
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"deliveries\": %llu, \"deliver_latency_mean\": %.3f, "
      "\"deliver_latency_p99\": %llu, \"convoy_wait_mean\": %.3f, "
      "\"fd_queries\": %llu, \"consensus_proposals\": %llu, "
      "\"non_addressee_steps\": %lld, \"non_addressee_messages\": %lld, "
      "\"monitor_events\": %llu, \"monitor_violations\": %llu}",
      static_cast<unsigned long long>(lat.count), lat.mean(),
      static_cast<unsigned long long>(lat.quantile(0.99)), convoy.mean(),
      static_cast<unsigned long long>(m.counter_total("fd_query")),
      static_cast<unsigned long long>(m.counter_total("consensus_propose")),
      static_cast<long long>(gauge_total(m, "non_addressee_steps")),
      static_cast<long long>(gauge_total(m, "non_addressee_messages")),
      static_cast<unsigned long long>(monitor_events),
      static_cast<unsigned long long>(monitor_violations));
  return buf;
}

void print_stats(const SweepStats& s) {
  std::printf("  %-28s runs=%-4d threads=%-2d wall=%8.3fs  "
              "runs/s=%8.1f  steps/s=%11.0f\n",
              s.name.c_str(), s.runs, s.threads, s.wall_seconds,
              s.runs_per_sec(), s.steps_per_sec());
}

// On a per-seed hash mismatch: replay the seed twice inline with full event
// recording, dump both traces next to `cfg.out`, and print the first
// divergent event. Two agreeing inline replays that still disagree with the
// pooled hash point at a cross-thread effect (shared state / data race); two
// disagreeing replays localize the nondeterminism exactly.
void dump_divergence(const Config& cfg, const char* name, int i,
                     const TracedJob& job) {
  sim::RecorderSink a, b;
  job(i, &a, nullptr, nullptr);
  job(i, &b, nullptr, nullptr);
  std::string base = cfg.out + "." + name + ".seed" + std::to_string(i);
  std::string pa = base + ".a.trace", pb = base + ".b.trace";
  if (!a.write(pa) || !b.write(pb))
    std::printf("  (failed to write %s / %s)\n", pa.c_str(), pb.c_str());
  else
    std::printf("  dumped inline replays: %s %s\n", pa.c_str(), pb.c_str());
  auto div = sim::first_divergence(a.events(), b.events());
  if (div) {
    std::printf("%s", sim::render_divergence(a.events(), b.events(), *div).c_str());
  } else {
    std::printf(
        "  inline replays agree (%zu events, hash %016llx): the divergence "
        "only appears under the pool — suspect shared state or a data race; "
        "rerun under GAM_SANITIZE=thread\n",
        a.events().size(), static_cast<unsigned long long>(a.hash()));
  }
}

// Runs one configuration sequentially and pooled; checks per-seed trace
// hashes agree between the two executions (byte-reproducibility across
// thread interleavings). Returns false on a determinism violation.
bool sweep_both(const Config& cfg, const char* name, int n,
                const SweepRunner& seq, const SweepRunner& pool,
                const TracedJob& job, const MonitorConfigFn& moncfg,
                BenchJson& json, double* speedup_out,
                sim::MetricsReport* report,
                std::vector<std::string>* summaries) {
  auto plain = [&job](int i) { return job(i, nullptr, nullptr, nullptr); };
  // Untimed warm-up: the seq pass used to run first against a cold heap and
  // cold caches, inflating every "pool speedup" by a constant factor (the
  // k64 pool-slower-than-seq artifact was mostly this).
  plain(0);
  std::vector<RunResult> seq_results, pool_results;
  SweepStats s1 = seq.sweep(std::string(name) + "_seq", n, plain, &seq_results);
  SweepStats sp =
      pool.sweep(std::string(name) + "_pool", n, plain, &pool_results);

  bool ok = true;
  for (int i = 0; i < n; ++i) {
    if (seq_results[static_cast<size_t>(i)].trace_hash !=
        pool_results[static_cast<size_t>(i)].trace_hash) {
      std::printf("  DETERMINISM VIOLATION: %s seed-index %d "
                  "(inline %016llx vs pool %016llx)\n",
                  name, i,
                  static_cast<unsigned long long>(
                      seq_results[static_cast<size_t>(i)].trace_hash),
                  static_cast<unsigned long long>(
                      pool_results[static_cast<size_t>(i)].trace_hash));
      dump_divergence(cfg, name, i, job);
      ok = false;
    }
  }
  print_stats(s1);
  print_stats(sp);
  double speedup = sp.wall_seconds > 0 ? s1.wall_seconds / sp.wall_seconds : 0;
  std::printf("  %-28s speedup=%.2fx  determinism=%s\n\n", "",
              speedup, ok ? "ok" : "VIOLATED");
  json.add(s1);
  json.add(sp);
  if (speedup_out) *speedup_out = speedup;

  // --trace=PATH: record seed-index 0 of this configuration for offline
  // comparison with trace_diff (e.g. across binaries, flags, or seeds).
  if (!cfg.trace.empty()) {
    sim::RecorderSink rec;
    job(0, &rec, nullptr, nullptr);
    std::string path = cfg.trace + "." + name + ".trace";
    if (rec.write(path))
      std::printf("  recorded %zu events -> %s\n\n", rec.events().size(),
                  path.c_str());
    else
      std::printf("  failed to write %s\n\n", path.c_str());
  }

  // --spans=PATH: re-run seed-index 0 with a span collector attached and
  // write the lifecycle stream for tools/span_report. The simulator stamps
  // events with its step clock, so the file is byte-identical run to run —
  // the tier-1 span self-check diffs two of them.
  if (!cfg.spans.empty()) {
    sim::SpanCollector col;
    job(0, nullptr, nullptr, &col);
    std::string path = cfg.spans + "." + name + ".spans";
    if (sim::write_spans(path, col.events()))
      std::printf("  recorded %zu span events -> %s\n\n", col.events().size(),
                  path.c_str());
    else
      std::printf("  failed to write %s\n\n", path.c_str());
  }

  // --metrics=PATH: an instrumented pooled pass. Each *worker* owns a
  // private registry (sweep.hpp run_merged) so the job hot path never
  // allocates in a shared registry; the commutative merge algebra keeps the
  // report byte-identical across reruns, thread counts, and claim orders.
  // Seed-index 0 is then replayed with full event recording through the
  // invariant monitors — a violation fails the sweep exactly like the
  // determinism gate.
  if (report) {
    sim::Metrics& merged = report->config(name);
    pool.run_merged(
        n, [&](int i, sim::Metrics& m) { return job(i, nullptr, &m, nullptr); },
        &merged);

    sim::RecorderSink rec;
    RunResult r0 = job(0, &rec, nullptr, nullptr);
    sim::InvariantMonitors mon(moncfg());
    sim::feed(mon, rec.events());
    mon.finalize(r0.quiescent);
    auto viols = mon.violations();
    std::uint64_t checked = mon.integrity().events_seen();
    merged.counter("monitor_events").add(checked);
    merged.counter("monitor_violations").add(viols.size());
    for (const auto& v : viols) {
      std::printf("  INVARIANT VIOLATION (%s seed-index 0): %s\n", name,
                  sim::format_violation(v).c_str());
      ok = false;
    }
    if (summaries)
      summaries->push_back("\"" + std::string(name) +
                           "\": " + metrics_summary_json(merged, checked,
                                                         viols.size()));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--quick") {
      cfg.quick = true;
    } else if (a.rfind("--threads=", 0) == 0) {
      cfg.threads = std::atoi(a.c_str() + 10);
    } else if (a.rfind("--seeds=", 0) == 0) {
      cfg.seeds = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--seed-base=", 0) == 0) {
      cfg.seed_base = std::atoi(a.c_str() + 12);
    } else if (a.rfind("--out=", 0) == 0) {
      cfg.out = a.substr(6);
    } else if (a.rfind("--trace=", 0) == 0) {
      cfg.trace = a.substr(8);
    } else if (a.rfind("--spans=", 0) == 0) {
      cfg.spans = a.substr(8);
    } else if (a.rfind("--metrics=", 0) == 0) {
      cfg.metrics = a.substr(10);
    } else if (a == "--engine=scan") {
      cfg.engine = MuMulticast::Engine::kScan;
    } else if (a == "--engine=incremental") {
      cfg.engine = MuMulticast::Engine::kIncremental;
    } else if (a.rfind("--batch=", 0) == 0) {
      cfg.batch_k = std::max(1, std::atoi(a.c_str() + 8));
    } else if (a.rfind("--window=", 0) == 0) {
      cfg.window_size = std::max(1, std::atoi(a.c_str() + 9));
    } else if (a.rfind("--protocol=", 0) == 0) {
      std::string name = a.substr(11);
      if (!ProtocolRegistry::instance().find(name)) {
        std::fprintf(stderr,
                     "error: unknown --protocol name: %s (registered: %s)\n",
                     name.c_str(),
                     ProtocolRegistry::instance().names().c_str());
        return 2;
      }
      cfg.protocols.push_back(name);
    } else if (a.rfind("--adversary=", 0) == 0) {
      auto spec = sim::AdversarySpec::parse(a.substr(12));
      if (!spec) {
        std::fprintf(stderr,
                     "error: unrecognized --adversary spec: %s (valid: "
                     "random, pct[:D], qedge[+SCHED], replay:PATH)\n",
                     a.c_str() + 12);
        return 2;
      }
      if (spec->scheduler.kind == sim::SchedulerSpec::Kind::kReplay) {
        std::fprintf(stderr,
                     "error: --adversary=replay:... replays one recorded run; "
                     "it cannot drive a multi-seed sweep (use "
                     "tools/adversary_hunt or tools/trace_diff)\n");
        return 2;
      }
      cfg.adversary = *spec;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads=N] [--seeds=N] "
                   "[--seed-base=N] [--out=PATH] [--trace=PATH] [--spans=PATH] "
                   "[--metrics=PATH] [--engine=scan|incremental] "
                   "[--batch=K] [--window=W] "
                   "[--adversary=random|pct[:D]|qedge[+SCHED]] "
                   "[--protocol=NAME]...\n  registered protocols: %s\n",
                   argv[0], ProtocolRegistry::instance().names().c_str());
      return 2;
    }
  }

  // Fail fast on unwritable output destinations (exit 2, like a usage
  // error): --trace writes PATH.<config>.trace, so its probe appends a
  // throwaway suffix rather than touching a real output.
  const struct {
    const char* flag;
    std::string shown;
    std::string probe;
  } outputs[] = {
      {"--out", cfg.out, cfg.out},
      {"--metrics", cfg.metrics, cfg.metrics},
      {"--trace", cfg.trace,
       cfg.trace.empty() ? "" : cfg.trace + ".writable.probe"},
      {"--spans", cfg.spans,
       cfg.spans.empty() ? "" : cfg.spans + ".writable.probe"},
  };
  for (const auto& o : outputs) {
    if (o.probe.empty()) continue;
    if (!path_writable(o.probe)) {
      std::fprintf(stderr, "error: %s path is not writable: %s\n", o.flag,
                   o.shown.c_str());
      return 2;
    }
  }

  if (!cfg.metrics.empty() && !sim::kMetricsCompiled)
    std::fprintf(stderr,
                 "warning: built with GAM_METRICS=OFF — the --metrics report "
                 "will carry monitor results but no probe data\n");

  const int seeds = cfg.seeds > 0 ? cfg.seeds : (cfg.quick ? 4 : 32);
  const int per_group = cfg.quick ? 2 : 4;
  SweepRunner seq(1);
  SweepRunner pool(cfg.threads);
  const bool engine_incremental =
      cfg.engine == MuMulticast::Engine::kIncremental;

  if (cfg.threads == 0 && pool.threads() == 1)
    std::fprintf(stderr,
                 "warning: hardware-concurrency detection reported <= 1; the "
                 "pool runs single-threaded and pool-vs-seq speedups are "
                 "meaningless (pass --threads=N to size the pool "
                 "explicitly)\n");

  std::printf("Simulator seed-sweep bench — %d seeds/config, pool of %d "
              "thread(s), %s engine, adversary=%s%s\n\n",
              seeds, pool.threads(),
              engine_incremental ? "incremental" : "scan",
              cfg.adversary.name().c_str(), cfg.quick ? " [quick]" : "");

  BenchJson json;
  json.field("bench", std::string("bench_sweep"));
  json.field("quick", std::string(cfg.quick ? "true" : "false"));
  json.field("engine",
             std::string(engine_incremental ? "incremental" : "scan"));
  json.field("adversary", cfg.adversary.name());
  // Requested is the --threads value as given (0 = auto-detect); effective is
  // the size the pool actually runs with. They differ when detection falls
  // back — consumers must not read a speedup off a 1-thread "pool".
  json.field("pool_threads_requested", cfg.threads);
  json.field("pool_threads_effective", pool.threads());
  json.field("seeds_per_config", seeds);
  json.field("batch_k", cfg.batch_k);
  json.field("window_size", cfg.window_size);
  // Run metadata (satellite of the metrics work): where and how this binary
  // was built, and what it actually ran with.
  json.field("git_rev", std::string(GAM_GIT_REV));
  json.field("build_type", std::string(GAM_BUILD_TYPE));
  json.field("sanitize", std::string(GAM_SANITIZE_STR));
  json.field("metrics_compiled",
             std::string(sim::kMetricsCompiled ? "on" : "off"));

  sim::MetricsReport report;
  sim::MetricsReport* rep = cfg.metrics.empty() ? nullptr : &report;
  std::vector<std::string> summaries;
  if (rep) {
    report.meta["bench"] = "bench_sweep";
    report.meta["git_rev"] = GAM_GIT_REV;
    report.meta["build_type"] = GAM_BUILD_TYPE;
    report.meta["sanitize"] = GAM_SANITIZE_STR;
    report.meta["engine"] = engine_incremental ? "incremental" : "scan";
    report.meta["adversary"] = cfg.adversary.name();
    report.meta["quick"] = cfg.quick ? "true" : "false";
    report.meta["seeds_per_config"] = std::to_string(seeds);
    report.meta["seed_base"] = std::to_string(cfg.seed_base);
    report.meta["batch_k"] = std::to_string(cfg.batch_k);
    report.meta["window_size"] = std::to_string(cfg.window_size);
    report.meta["pool_threads_effective"] = std::to_string(pool.threads());
    report.meta["metrics_compiled"] = sim::kMetricsCompiled ? "on" : "off";
  }

  bool ok = true;
  double e3_speedup = 0;
  auto seed_of = [&cfg](int i) {
    return static_cast<std::uint64_t>(cfg.seed_base) +
           static_cast<std::uint64_t>(i);
  };

  // Monitor configs re-derive seed-index 0's failure pattern (sampled or
  // quorum-edge) so the agreement monitor knows who may miss deliveries.
  auto faulty0 = [&](const groups::GroupSystem& sys) {
    return adversary_pattern(cfg.adversary, sys, seed_of(0)).faulty_set();
  };

  ok &= sweep_both(
      cfg, "e3_mu_k16", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec, sim::Metrics* met,
          sim::SpanCollector* spans) {
        return run_e3_mu(seed_of(i), 16, 2, per_group, cfg.engine,
                         cfg.adversary, rec, met, cfg.batch_k,
                         cfg.window_size, spans);
      },
      [&] {
        auto sys = groups::disjoint_system(16, 2);
        return monitor_config(sys, sim::protocol_id(0), true, faulty0(sys));
      },
      json, &e3_speedup, rep, &summaries);

  ok &= sweep_both(
      cfg, "e3_mu_k64", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec, sim::Metrics* met,
          sim::SpanCollector* spans) {
        return run_e3_mu(seed_of(i), 64, 1, per_group, cfg.engine,
                         cfg.adversary, rec, met, cfg.batch_k,
                         cfg.window_size, spans);
      },
      [&] {
        auto sys = groups::disjoint_system(64, 1);
        return monitor_config(sys, sim::protocol_id(0), true, faulty0(sys));
      },
      json, nullptr, rep, &summaries);

  // The batching headline pair (ISSUE 6): one high-submission-rate μ config
  // measured unbatched and with pinned batch_k=16 / window_size=8. Same
  // topology, workload, seeds, and adversary — only the knobs differ, so the
  // metrics summaries folded into BENCH_sim.json give the before/after
  // convoy_wait / deliver_latency comparison directly.
  const int hirate_per_group = cfg.quick ? 8 : 16;
  auto hirate_job = [&](int batch, int window) {
    return [&, batch, window](int i, sim::RecorderSink* rec,
                              sim::Metrics* met, sim::SpanCollector* spans) {
      return run_e3_mu(seed_of(i), 16, 2, hirate_per_group, cfg.engine,
                       cfg.adversary, rec, met, batch, window, spans);
    };
  };
  auto hirate_moncfg = [&] {
    auto sys = groups::disjoint_system(16, 2);
    return monitor_config(sys, sim::protocol_id(0), true, faulty0(sys));
  };
  ok &= sweep_both(cfg, "e3_mu_hirate_base", seeds, seq, pool, hirate_job(1, 1),
                   hirate_moncfg, json, nullptr, rep, &summaries);
  ok &= sweep_both(cfg, "e3_mu_hirate_batched", seeds, seq, pool,
                   hirate_job(16, 8), hirate_moncfg, json, nullptr, rep,
                   &summaries);

  ok &= sweep_both(
      cfg, "world_paxos_k8", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec, sim::Metrics* met,
          sim::SpanCollector*) {
        // World configs carry no span probes; the collector stays empty.
        return run_world_paxos(seed_of(i), cfg.quick ? 4 : 8, per_group,
                               cfg.adversary, rec, met, cfg.batch_k,
                               cfg.window_size);
      },
      // World traces number protocols kTraceBase+g and record only the
      // delivery side (no kMulticast events), hence the relaxed integrity
      // mode.
      [&] {
        auto sys = groups::disjoint_system(cfg.quick ? 4 : 8, 3);
        return monitor_config(sys, ReplicatedMulticast::kTraceBase, false,
                              faulty0(sys));
      },
      json, nullptr, rep, &summaries);

  ok &= sweep_both(
      cfg, "figure1_crashes", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec, sim::Metrics* met,
          sim::SpanCollector* spans) {
        return run_figure1_crashes(seed_of(i), per_group, cfg.engine,
                                   cfg.adversary, rec, met, cfg.batch_k,
                                   cfg.window_size, spans);
      },
      [&] {
        auto sys = groups::figure1_system();
        if (cfg.adversary.quorum_edge_crashes)
          return monitor_config(sys, sim::protocol_id(0), true, faulty0(sys));
        Rng rng(seed_of(0));
        sim::EnvironmentSampler env{
            .process_count = 5, .max_failures = 2, .horizon = 100};
        return monitor_config(sys, sim::protocol_id(0), true,
                              env.sample(rng).faulty_set());
      },
      json, nullptr, rep, &summaries);

  // The wide smoke rides every sweep but over fewer seeds — one run is ~4x
  // the regular configs, and its job here is coverage of the widened id
  // space, not a latency trendline.
  const int wide_seeds = std::min(seeds, cfg.quick ? 2 : 8);
  ok &= sweep_both(
      cfg, "e3_mu_wide128", wide_seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec, sim::Metrics* met,
          sim::SpanCollector* spans) {
        return run_wide_mu(seed_of(i), 1, cfg.engine, cfg.adversary, rec, met,
                           cfg.batch_k, cfg.window_size, spans);
      },
      [&] {
        auto sys = groups::clustered_ring_system(32, 4, 2);
        return monitor_config(sys, sim::protocol_id(0), true, faulty0(sys));
      },
      json, nullptr, rep, &summaries);

  // --protocol=NAME extras: the named registry protocol swept on a shared
  // disjoint arena topology under the same determinism and monitor gates as
  // the fixed configs. Conflict-aware protocols run the rate-0.5 classed
  // workload (and the monitors get the class map); everyone else runs the
  // round-robin default.
  for (const std::string& pname : cfg.protocols) {
    const ProtocolDescriptor& d = descriptor(pname.c_str());
    const int pk = cfg.quick ? 4 : 8;
    auto proto_sys = [pk] { return groups::disjoint_system(pk, 3); };
    auto proto_workload = [&](std::uint64_t seed) {
      auto sys = proto_sys();
      if (!d.conflict_aware) return round_robin_workload(sys, per_group);
      std::vector<groups::GroupId> targets;
      for (groups::GroupId g = 0; g < sys.group_count(); ++g)
        targets.push_back(g);
      Rng rng(seed);
      return conflict_workload(sys, targets, per_group, 0.5, rng);
    };
    std::string cfg_name = "proto_" + pname;
    ok &= sweep_both(
        cfg, cfg_name.c_str(), seeds, seq, pool,
        [&](int i, sim::RecorderSink* rec, sim::Metrics* met,
            sim::SpanCollector* spans) {
          auto sys = proto_sys();
          sim::FailurePattern pat =
              adversary_pattern(cfg.adversary, sys, seed_of(i));
          return run_protocol(d, sys, pat,
                              sweep_options(seed_of(i), cfg.engine,
                                            cfg.adversary, cfg.batch_k,
                                            cfg.window_size),
                              proto_workload(seed_of(i)), rec, met, spans);
        },
        [&] {
          auto sys = proto_sys();
          auto mc = monitor_config(sys, d.trace_base,
                                   d.emits_multicast_events, faulty0(sys));
          if (d.conflict_aware)
            for (const auto& m : proto_workload(seed_of(0)))
              mc.conflict_class[m.id] = m.conflict_class;
          return mc;
        },
        json, nullptr, rep, &summaries);
  }

  if (pool.threads() == 1)
    json.null_field("e3_pool_vs_seq_speedup");
  else
    json.field("e3_pool_vs_seq_speedup", e3_speedup);
  json.field("determinism", std::string(ok ? "ok" : "violated"));
  // Headline batching win: unbatched over batched histogram means on the
  // hirate pair (>= 10x is the ISSUE 6 acceptance bar). Needs the metrics
  // pass; null without it, when the probes are compiled out, or when the
  // batched mean is exactly 0 (the ratio is infinite — consumers should
  // read the raw means under "metrics" to tell a skip from a perfect score).
  if (rep && sim::kMetricsCompiled) {
    auto mean_of = [&](const char* config, const char* series) {
      return report.config(config).merged_histogram(series).mean();
    };
    double lat_b = mean_of("e3_mu_hirate_batched", "deliver_latency");
    double cv_b = mean_of("e3_mu_hirate_batched", "convoy_wait");
    if (lat_b > 0)
      json.field("hirate_deliver_latency_ratio",
                 mean_of("e3_mu_hirate_base", "deliver_latency") / lat_b);
    else
      json.null_field("hirate_deliver_latency_ratio");
    if (cv_b > 0)
      json.field("hirate_convoy_wait_ratio",
                 mean_of("e3_mu_hirate_base", "convoy_wait") / cv_b);
    else
      json.null_field("hirate_convoy_wait_ratio");
  } else {
    json.null_field("hirate_deliver_latency_ratio");
    json.null_field("hirate_convoy_wait_ratio");
  }
  if (rep) {
    std::string folded = "{";
    for (size_t i = 0; i < summaries.size(); ++i)
      folded += (i ? ", " : "") + summaries[i];
    folded += "}";
    json.raw("metrics", folded);
    if (!report.write(cfg.metrics)) {
      std::fprintf(stderr, "failed to write %s\n", cfg.metrics.c_str());
      return 1;
    }
    std::printf("wrote metrics report %s\n", cfg.metrics.c_str());
  }
  if (!json.write(cfg.out)) {
    std::fprintf(stderr, "failed to write %s\n", cfg.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", cfg.out.c_str());
  std::printf("determinism gate: %s\n", ok ? "ok" : "VIOLATED");
  return ok ? 0 : 1;
}
