// The perf-tracking bench: parallel seed sweeps over the hot simulator paths.
//
// Four configurations, each swept over independent seeds:
//   e3_mu_k16        — Algorithm 1 on the E3 workload (k=16 disjoint groups,
//                      round-robin messages): the action-system hot path;
//   e3_mu_k64        — the same workload at the 64-group limit (single-member
//                      groups, the most groups the 64-process universe
//                      admits): scaling check for the incremental engine;
//   world_paxos_k8   — ReplicatedMulticast (per-group Paxos logs inside a
//                      sim::World network): the World/MessageBuffer hot path
//                      the swap-and-pop + runnable-set changes target;
//   figure1_crashes  — Algorithm 1 on Figure 1 under sampled failure
//                      patterns: the branchy detector-driven path.
//
// --engine=scan|incremental selects MuMulticast's guard-evaluation engine
// (default incremental); the two must produce identical per-seed trace
// hashes — scripts/tier1.sh diffs their recorded traces as a gate.
//
// Each sweep runs twice: sequentially (one thread — the single-core
// steps/sec trendline) and on the thread pool (the wall-clock speedup
// trendline; equals ~1x on a single-core host). A determinism gate compares
// the per-seed delivery-trace hashes of both executions: a World must
// produce bit-identical runs whether it executes inline or on the pool.
//
// Output: human-readable table + BENCH_sim.json (see EXPERIMENTS.md for the
// schema). Exit code is non-zero when the determinism gate fails, so this
// binary doubles as the ThreadSanitizer smoke test (`bench_sweep --quick`).
// On a gate failure the divergent seed is replayed twice inline with full
// event recording, both traces are dumped, and the first divergent event is
// printed (the same report `tools/trace_diff` produces offline).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sim/trace.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;
using namespace gam::bench;

namespace {

struct Config {
  bool quick = false;
  int threads = 0;       // 0 = hardware concurrency
  int seeds = 0;         // 0 = default per mode
  int seed_base = 1;     // seed of job 0 (job i runs seed_base + i)
  std::string out = "BENCH_sim.json";
  std::string trace;     // when set, record seed 0 of each config to
                         // <trace>.<config>.trace
  MuMulticast::Engine engine = MuMulticast::Engine::kIncremental;
};

// A swept job: runs seed-index `i`; when `rec` is non-null the run's full
// event stream is recorded there instead of only hashed.
using TracedJob = std::function<RunResult(int, sim::RecorderSink*)>;

// ---- the swept workloads -----------------------------------------------------

// E3 (bench_genuine_vs_broadcast): k disjoint groups, Algorithm 1.
// group_size=2 is the paper's E3 shape; the k=64 scaling config uses
// single-member groups (64 groups × 2 members would overflow the 64-process
// universe).
RunResult run_e3_mu(std::uint64_t seed, int k, int group_size, int per_group,
                    MuMulticast::Engine engine, sim::RecorderSink* rec) {
  auto sys = groups::disjoint_system(k, group_size);
  sim::FailurePattern pat(sys.process_count());
  MuMulticast mc(sys, pat, {.seed = seed, .engine = engine});
  sim::HashingSink hasher;
  mc.set_event_sink(rec ? static_cast<sim::TraceSink*>(rec) : &hasher);
  for (auto& m : round_robin_workload(sys, per_group)) mc.submit(m);
  RunResult r = summarize(mc.run());
  r.trace_hash = combine_hash(r.trace_hash, rec ? rec->hash() : hasher.hash());
  return r;
}

// ReplicatedMulticast: per-group Paxos logs inside a simulated network — the
// workload that actually exercises World scheduling and the message buffer.
// The hash covers the complete wire-event stream (every send, receive,
// null-step, FD query, and delivery), not just the delivery record.
RunResult run_world_paxos(std::uint64_t seed, int k, int per_group,
                          sim::RecorderSink* rec) {
  auto sys = groups::disjoint_system(k, 3);
  sim::FailurePattern pat(sys.process_count());
  ReplicatedMulticast rm(sys, pat, {.seed = seed});
  sim::HashingSink hasher;
  rm.world().set_trace_sink(rec ? static_cast<sim::TraceSink*>(rec) : &hasher);
  for (auto& m : round_robin_workload(sys, per_group)) rm.submit(m);
  RunResult r = summarize(rm.run());
  r.messages = rm.messages_sent();
  absorb_world(r, rm.world());
  r.trace_hash = combine_hash(r.trace_hash, rec ? rec->hash() : hasher.hash());
  return r;
}

// Figure 1 under sampled crashes: detector-heavy Algorithm 1 runs.
RunResult run_figure1_crashes(std::uint64_t seed, int per_group,
                              MuMulticast::Engine engine,
                              sim::RecorderSink* rec) {
  auto sys = groups::figure1_system();
  Rng rng(seed);
  sim::EnvironmentSampler env{
      .process_count = 5, .max_failures = 2, .horizon = 100};
  sim::FailurePattern pat = env.sample(rng);
  MuMulticast mc(sys, pat, {.seed = seed, .engine = engine});
  sim::HashingSink hasher;
  mc.set_event_sink(rec ? static_cast<sim::TraceSink*>(rec) : &hasher);
  for (auto& m : round_robin_workload(sys, per_group)) mc.submit(m);
  RunResult r = summarize(mc.run());
  r.trace_hash = combine_hash(r.trace_hash, rec ? rec->hash() : hasher.hash());
  return r;
}

void print_stats(const SweepStats& s) {
  std::printf("  %-28s runs=%-4d threads=%-2d wall=%8.3fs  "
              "runs/s=%8.1f  steps/s=%11.0f\n",
              s.name.c_str(), s.runs, s.threads, s.wall_seconds,
              s.runs_per_sec(), s.steps_per_sec());
}

// On a per-seed hash mismatch: replay the seed twice inline with full event
// recording, dump both traces next to `cfg.out`, and print the first
// divergent event. Two agreeing inline replays that still disagree with the
// pooled hash point at a cross-thread effect (shared state / data race); two
// disagreeing replays localize the nondeterminism exactly.
void dump_divergence(const Config& cfg, const char* name, int i,
                     const TracedJob& job) {
  sim::RecorderSink a, b;
  job(i, &a);
  job(i, &b);
  std::string base = cfg.out + "." + name + ".seed" + std::to_string(i);
  std::string pa = base + ".a.trace", pb = base + ".b.trace";
  if (!a.write(pa) || !b.write(pb))
    std::printf("  (failed to write %s / %s)\n", pa.c_str(), pb.c_str());
  else
    std::printf("  dumped inline replays: %s %s\n", pa.c_str(), pb.c_str());
  auto div = sim::first_divergence(a.events(), b.events());
  if (div) {
    std::printf("%s", sim::render_divergence(a.events(), b.events(), *div).c_str());
  } else {
    std::printf(
        "  inline replays agree (%zu events, hash %016llx): the divergence "
        "only appears under the pool — suspect shared state or a data race; "
        "rerun under GAM_SANITIZE=thread\n",
        a.events().size(), static_cast<unsigned long long>(a.hash()));
  }
}

// Runs one configuration sequentially and pooled; checks per-seed trace
// hashes agree between the two executions (byte-reproducibility across
// thread interleavings). Returns false on a determinism violation.
bool sweep_both(const Config& cfg, const char* name, int n,
                const SweepRunner& seq, const SweepRunner& pool,
                const TracedJob& job, BenchJson& json, double* speedup_out) {
  auto plain = [&job](int i) { return job(i, nullptr); };
  std::vector<RunResult> seq_results, pool_results;
  SweepStats s1 = seq.sweep(std::string(name) + "_seq", n, plain, &seq_results);
  SweepStats sp =
      pool.sweep(std::string(name) + "_pool", n, plain, &pool_results);

  bool ok = true;
  for (int i = 0; i < n; ++i) {
    if (seq_results[static_cast<size_t>(i)].trace_hash !=
        pool_results[static_cast<size_t>(i)].trace_hash) {
      std::printf("  DETERMINISM VIOLATION: %s seed-index %d "
                  "(inline %016llx vs pool %016llx)\n",
                  name, i,
                  static_cast<unsigned long long>(
                      seq_results[static_cast<size_t>(i)].trace_hash),
                  static_cast<unsigned long long>(
                      pool_results[static_cast<size_t>(i)].trace_hash));
      dump_divergence(cfg, name, i, job);
      ok = false;
    }
  }
  print_stats(s1);
  print_stats(sp);
  double speedup = sp.wall_seconds > 0 ? s1.wall_seconds / sp.wall_seconds : 0;
  std::printf("  %-28s speedup=%.2fx  determinism=%s\n\n", "",
              speedup, ok ? "ok" : "VIOLATED");
  json.add(s1);
  json.add(sp);
  if (speedup_out) *speedup_out = speedup;

  // --trace=PATH: record seed-index 0 of this configuration for offline
  // comparison with trace_diff (e.g. across binaries, flags, or seeds).
  if (!cfg.trace.empty()) {
    sim::RecorderSink rec;
    job(0, &rec);
    std::string path = cfg.trace + "." + name + ".trace";
    if (rec.write(path))
      std::printf("  recorded %zu events -> %s\n\n", rec.events().size(),
                  path.c_str());
    else
      std::printf("  failed to write %s\n\n", path.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--quick") {
      cfg.quick = true;
    } else if (a.rfind("--threads=", 0) == 0) {
      cfg.threads = std::atoi(a.c_str() + 10);
    } else if (a.rfind("--seeds=", 0) == 0) {
      cfg.seeds = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--seed-base=", 0) == 0) {
      cfg.seed_base = std::atoi(a.c_str() + 12);
    } else if (a.rfind("--out=", 0) == 0) {
      cfg.out = a.substr(6);
    } else if (a.rfind("--trace=", 0) == 0) {
      cfg.trace = a.substr(8);
    } else if (a == "--engine=scan") {
      cfg.engine = MuMulticast::Engine::kScan;
    } else if (a == "--engine=incremental") {
      cfg.engine = MuMulticast::Engine::kIncremental;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads=N] [--seeds=N] "
                   "[--seed-base=N] [--out=PATH] [--trace=PATH] "
                   "[--engine=scan|incremental]\n",
                   argv[0]);
      return 2;
    }
  }

  const int seeds = cfg.seeds > 0 ? cfg.seeds : (cfg.quick ? 4 : 32);
  const int per_group = cfg.quick ? 2 : 4;
  SweepRunner seq(1);
  SweepRunner pool(cfg.threads);
  const bool engine_incremental =
      cfg.engine == MuMulticast::Engine::kIncremental;

  if (cfg.threads == 0 && pool.threads() == 1)
    std::fprintf(stderr,
                 "warning: hardware-concurrency detection reported <= 1; the "
                 "pool runs single-threaded and pool-vs-seq speedups are "
                 "meaningless (pass --threads=N to size the pool "
                 "explicitly)\n");

  std::printf("Simulator seed-sweep bench — %d seeds/config, pool of %d "
              "thread(s), %s engine%s\n\n",
              seeds, pool.threads(),
              engine_incremental ? "incremental" : "scan",
              cfg.quick ? " [quick]" : "");

  BenchJson json;
  json.field("bench", std::string("bench_sweep"));
  json.field("quick", std::string(cfg.quick ? "true" : "false"));
  json.field("engine",
             std::string(engine_incremental ? "incremental" : "scan"));
  // Requested is the --threads value as given (0 = auto-detect); effective is
  // the size the pool actually runs with. They differ when detection falls
  // back — consumers must not read a speedup off a 1-thread "pool".
  json.field("pool_threads_requested", cfg.threads);
  json.field("pool_threads_effective", pool.threads());
  json.field("seeds_per_config", seeds);

  bool ok = true;
  double e3_speedup = 0;
  auto seed_of = [&cfg](int i) {
    return static_cast<std::uint64_t>(cfg.seed_base) +
           static_cast<std::uint64_t>(i);
  };

  ok &= sweep_both(
      cfg, "e3_mu_k16", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec) {
        return run_e3_mu(seed_of(i), 16, 2, per_group, cfg.engine, rec);
      },
      json, &e3_speedup);

  ok &= sweep_both(
      cfg, "e3_mu_k64", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec) {
        return run_e3_mu(seed_of(i), 64, 1, per_group, cfg.engine, rec);
      },
      json, nullptr);

  ok &= sweep_both(
      cfg, "world_paxos_k8", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec) {
        return run_world_paxos(seed_of(i), cfg.quick ? 4 : 8, per_group, rec);
      },
      json, nullptr);

  ok &= sweep_both(
      cfg, "figure1_crashes", seeds, seq, pool,
      [&](int i, sim::RecorderSink* rec) {
        return run_figure1_crashes(seed_of(i), per_group, cfg.engine, rec);
      },
      json, nullptr);

  if (pool.threads() == 1)
    json.null_field("e3_pool_vs_seq_speedup");
  else
    json.field("e3_pool_vs_seq_speedup", e3_speedup);
  json.field("determinism", std::string(ok ? "ok" : "violated"));
  if (!json.write(cfg.out)) {
    std::fprintf(stderr, "failed to write %s\n", cfg.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", cfg.out.c_str());
  std::printf("determinism gate: %s\n", ok ? "ok" : "VIOLATED");
  return ok ? 0 : 1;
}
