// Experiment E8: the shared-object layer — ideal linearizable objects and
// their message-passing constructions from Σ and Ω ∧ Σ. For the replicated
// objects the interesting quantity is not wall time but protocol cost:
// simulator steps and wire messages per operation as the replication scope
// grows. Both are exported as benchmark counters.
#include <benchmark/benchmark.h>

#include <memory>

#include "amcast/mu_multicast.hpp"
#include "amcast/workload.hpp"
#include "fd/detectors.hpp"
#include "groups/generator.hpp"
#include "objects/abd_register.hpp"
#include "objects/ideal.hpp"
#include "objects/protocol_host.hpp"
#include "objects/universal_log.hpp"
#include "sim/run_spec.hpp"
#include "sim/world.hpp"

using namespace gam;
using namespace gam::objects;

static void BM_IdealLogAppend(benchmark::State& state) {
  for (auto _ : state) {
    Log log;
    for (std::int64_t i = 0; i < state.range(0); ++i)
      log.append(LogEntry::message(i), 0);
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IdealLogAppend)->Arg(64)->Arg(256)->Arg(1024);

static void BM_IdealLogBumpAndOrder(benchmark::State& state) {
  for (auto _ : state) {
    Log log;
    for (std::int64_t i = 0; i < state.range(0); ++i)
      log.append(LogEntry::message(i), 0);
    for (std::int64_t i = 0; i < state.range(0); ++i)
      log.bump_and_lock(LogEntry::message(i), state.range(0), 0);
    benchmark::DoNotOptimize(
        log.messages_before(LogEntry::message(state.range(0) - 1)));
  }
}
BENCHMARK(BM_IdealLogBumpAndOrder)->Arg(64)->Arg(256);

namespace {

struct ReplicatedFixture {
  explicit ReplicatedFixture(int n, std::uint64_t seed)
      : pattern(n),
        scenario(sim::RunSpec{}.failures(pattern).seed(seed)),
        world(scenario.world()),
        scope(ProcessSet::universe(n)),
        sigma(pattern, scope),
        omega(pattern, scope) {
    hosts = install_hosts(world);
    for (ProcessId p = 0; p < n; ++p) {
      stores.push_back(std::make_shared<QuorumStore>(sim::protocol_id(1), p,
                                                     scope, sigma));
      hosts[static_cast<size_t>(p)]->add(sim::protocol_id(1), stores.back());
    }
  }

  std::uint64_t total_messages() const {
    std::uint64_t n = 0;
    for (ProcessId p = 0; p < world.process_count(); ++p)
      n += world.stats(p).messages_sent;
    return n;
  }
  std::uint64_t total_steps() const {
    std::uint64_t n = 0;
    for (ProcessId p = 0; p < world.process_count(); ++p)
      n += world.stats(p).steps;
    return n;
  }

  sim::FailurePattern pattern;
  sim::Scenario scenario;
  sim::World& world;
  ProcessSet scope;
  fd::SigmaOracle sigma;
  fd::OmegaOracle omega;
  std::vector<ProtocolHost*> hosts;
  std::vector<std::shared_ptr<QuorumStore>> stores;
};

}  // namespace

static void BM_AbdRegisterWrite(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  std::uint64_t msgs = 0, steps = 0, ops = 0;
  for (auto _ : state) {
    ReplicatedFixture fx(n, 42);
    AbdRegister reg(fx.stores[0], 0);
    for (int i = 0; i < 8; ++i) {
      bool done = false;
      reg.write(i, [&] { done = true; });
      fx.world.run_until_quiescent(100'000);
      benchmark::DoNotOptimize(done);
      ++ops;
    }
    msgs += fx.total_messages();
    steps += fx.total_steps();
  }
  state.counters["msgs/op"] = static_cast<double>(msgs) / static_cast<double>(ops);
  state.counters["steps/op"] = static_cast<double>(steps) / static_cast<double>(ops);
}
BENCHMARK(BM_AbdRegisterWrite)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

static void BM_UniversalLogDecide(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  std::uint64_t msgs = 0, ops = 0;
  for (auto _ : state) {
    ReplicatedFixture fx(n, 7);
    std::vector<std::shared_ptr<UniversalLog>> logs;
    for (ProcessId p = 0; p < n; ++p) {
      auto l = std::make_shared<UniversalLog>(sim::protocol_id(2), p, fx.scope,
                                              fx.sigma, fx.omega);
      fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(2), l);
      logs.push_back(l);
    }
    for (int i = 0; i < 6; ++i) {
      logs[static_cast<size_t>(i % n)]->submit(i, nullptr);
      ++ops;
    }
    fx.world.run_until_quiescent(400'000);
    benchmark::DoNotOptimize(logs[0]->learned().size());
    msgs += fx.total_messages();
  }
  state.counters["msgs/op"] = static_cast<double>(msgs) / static_cast<double>(ops);
}
BENCHMARK(BM_UniversalLogDecide)->Arg(3)->Arg(5)->Arg(7);

static void BM_Algorithm1EndToEnd(benchmark::State& state) {
  // Full Algorithm-1 runs on a ring of k groups (cyclic families, the
  // expensive case), 2 messages per group.
  auto k = static_cast<int>(state.range(0));
  auto sys = groups::ring_system(k, 2);
  sim::FailurePattern pat(sys.process_count());
  std::uint64_t steps = 0, deliveries = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    amcast::MuMulticast mc(sys, pat, {.seed = seed++});
    for (auto& m : amcast::round_robin_workload(sys, 2)) mc.submit(m);
    auto rec = mc.run();
    steps += rec.steps;
    deliveries += rec.deliveries.size();
  }
  state.counters["steps/deliv"] =
      static_cast<double>(steps) / static_cast<double>(deliveries);
}
BENCHMARK(BM_Algorithm1EndToEnd)->DenseRange(3, 6);
