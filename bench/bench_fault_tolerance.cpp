// Experiment E7 (paper §4.3, §7): failure tolerance of Algorithm 1 versus the
// classical partitioned decomposition.
//
// On Figure 1 the finest valid decomposition is five singleton partitions, so
// *any* crash kills a whole partition: messages to the groups containing it
// block forever. Algorithm 1 keeps delivering at the correct destinations —
// "our results question the common assumption of partitioning the
// destination groups" (§8).
//
// Each (victim, protocol) cell is an independent run, fanned across the
// sweep pool (bench/sweep.hpp); each job builds its own GroupSystem and
// protocol and writes only its own slot.
#include <cstdio>
#include <vector>

#include "amcast/baselines.hpp"
#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "groups/group_system.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

struct Outcome {
  size_t delivered = 0;
  size_t expected = 0;  // delivery obligations at correct processes
  bool termination = false;
  size_t blocked = 0;
};

size_t obligations(const RunRecord& rec, const groups::GroupSystem& sys,
                   const sim::FailurePattern& pat) {
  size_t n = 0;
  for (const auto& m : rec.multicast) {
    if (!pat.correct(m.src)) continue;
    n += static_cast<size_t>(
        (sys.group(m.dst) & pat.correct_set()).size());
  }
  return n;
}

sim::FailurePattern victim_pattern(int victim) {
  sim::FailurePattern pat(5);
  if (victim >= 0) pat.crash_at(victim, 30);
  return pat;
}

}  // namespace

int main() {
  constexpr int kPerGroup = 3;
  const std::vector<int> victims{-1, 0, 1, 2, 3, 4};

  bench::SweepRunner pool;
  std::printf(
      "Fault tolerance on Figure 1 (%d msgs/group, victim crashes at t=30, "
      "pool of %d)\n\n",
      kPerGroup, pool.threads());
  std::printf("%-10s | %-30s | %-30s\n", "victim", "Algorithm 1 (mu)",
              "partitioned (finest)");
  std::printf("%-10s | %-30s | %-30s\n", "", "delivered/expected  term",
              "delivered/expected  blocked");
  std::printf("%s\n", std::string(78, '-').c_str());

  // Jobs 2i / 2i+1: Algorithm 1 / partitioned for victims[i].
  std::vector<Outcome> mu_rows(victims.size()), part_rows(victims.size());
  pool.run(static_cast<int>(2 * victims.size()), [&](int i) {
    auto vi = static_cast<size_t>(i) / 2;
    auto sys = groups::figure1_system();
    sim::FailurePattern pat = victim_pattern(victims[vi]);
    if (i % 2 == 0) {
      MuMulticast mc(sys, pat, {.seed = 31});
      for (auto& m : round_robin_workload(sys, kPerGroup)) mc.submit(m);
      auto rec = mc.run();
      mu_rows[vi] = {rec.deliveries.size(), obligations(rec, sys, pat),
                     check_termination(rec, sys, pat).ok, 0};
    } else {
      PartitionedMulticast pm(sys, pat,
                              PartitionedMulticast::finest_partitions(sys),
                              {.seed = 31});
      for (auto& m : round_robin_workload(sys, kPerGroup)) pm.submit(m);
      auto rec = pm.run();
      part_rows[vi] = {rec.deliveries.size(), obligations(rec, sys, pat),
                       false, pm.blocked().size()};
    }
    return bench::RunResult{};
  });

  for (size_t vi = 0; vi < victims.size(); ++vi) {
    int victim = victims[vi];
    const Outcome& mu = mu_rows[vi];
    const Outcome& part = part_rows[vi];
    char victim_s[16];
    if (victim < 0)
      std::snprintf(victim_s, sizeof victim_s, "none");
    else
      std::snprintf(victim_s, sizeof victim_s, "p%d", victim);
    std::printf("%-10s | %10zu/%-8zu %5s | %10zu/%-8zu %7zu\n", victim_s,
                mu.delivered, mu.expected, mu.termination ? "yes" : "NO",
                part.delivered, part.expected, part.blocked);
  }

  std::printf(
      "\nExpected shape: Algorithm 1 meets every delivery obligation "
      "(termination 'yes' in all rows);\nthe partitioned baseline blocks "
      "whole groups whenever their singleton partition is the victim\n"
      "(non-zero 'blocked', missing deliveries). This is the practical payoff "
      "of mu over the\ndecomposability assumption.\n");
  return 0;
}
