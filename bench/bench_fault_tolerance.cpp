// Experiment E7 (paper §4.3, §7): failure tolerance of Algorithm 1 versus the
// classical partitioned decomposition.
//
// On Figure 1 the finest valid decomposition is five singleton partitions, so
// *any* crash kills a whole partition: messages to the groups containing it
// block forever. Algorithm 1 keeps delivering at the correct destinations —
// "our results question the common assumption of partitioning the
// destination groups" (§8).
#include <cstdio>

#include "amcast/baselines.hpp"
#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "groups/group_system.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

struct Outcome {
  size_t delivered = 0;
  size_t expected = 0;  // delivery obligations at correct processes
  bool termination = false;
  size_t blocked = 0;
};

size_t obligations(const RunRecord& rec, const groups::GroupSystem& sys,
                   const sim::FailurePattern& pat) {
  size_t n = 0;
  for (const auto& m : rec.multicast) {
    if (!pat.correct(m.src)) continue;
    n += static_cast<size_t>(
        (sys.group(m.dst) & pat.correct_set()).size());
  }
  return n;
}

}  // namespace

int main() {
  auto sys = groups::figure1_system();
  constexpr int kPerGroup = 3;

  std::printf(
      "Fault tolerance on Figure 1 (%d msgs/group, victim crashes at t=30)\n\n",
      kPerGroup);
  std::printf("%-10s | %-30s | %-30s\n", "victim", "Algorithm 1 (mu)",
              "partitioned (finest)");
  std::printf("%-10s | %-30s | %-30s\n", "", "delivered/expected  term",
              "delivered/expected  blocked");
  std::printf("%s\n", std::string(78, '-').c_str());

  for (int victim = -1; victim < 5; ++victim) {
    sim::FailurePattern pat(5);
    if (victim >= 0) pat.crash_at(victim, 30);

    Outcome mu;
    {
      MuMulticast mc(sys, pat, {.seed = 31});
      for (auto& m : round_robin_workload(sys, kPerGroup)) mc.submit(m);
      auto rec = mc.run();
      mu.delivered = rec.deliveries.size();
      mu.expected = obligations(rec, sys, pat);
      mu.termination = check_termination(rec, sys, pat).ok;
    }
    Outcome part;
    {
      PartitionedMulticast pm(sys, pat,
                              PartitionedMulticast::finest_partitions(sys),
                              {.seed = 31});
      for (auto& m : round_robin_workload(sys, kPerGroup)) pm.submit(m);
      auto rec = pm.run();
      part.delivered = rec.deliveries.size();
      part.expected = obligations(rec, sys, pat);
      part.blocked = pm.blocked().size();
    }

    char victim_s[8];
    std::snprintf(victim_s, sizeof victim_s, "%s",
                  victim < 0 ? "none" : ("p" + std::to_string(victim)).c_str());
    std::printf("%-10s | %10zu/%-8zu %5s | %10zu/%-8zu %7zu\n", victim_s,
                mu.delivered, mu.expected, mu.termination ? "yes" : "NO",
                part.delivered, part.expected, part.blocked);
  }

  std::printf(
      "\nExpected shape: Algorithm 1 meets every delivery obligation "
      "(termination 'yes' in all rows);\nthe partitioned baseline blocks "
      "whole groups whenever their singleton partition is the victim\n"
      "(non-zero 'blocked', missing deliveries). This is the practical payoff "
      "of mu over the\ndecomposability assumption.\n");
  return 0;
}
