// Experiment "Table 1" (paper §1, Table 1): the weakest-failure-detector
// matrix across the atomic-multicast problem variants.
//
// For every row of the paper's table we run the matching algorithm with the
// matching detector over a sweep of failure patterns on the Figure-1 topology
// and report which specification properties hold. The paper's claims are
// about computability, so what this harness regenerates is the *shape* of the
// table: each solution satisfies exactly the properties its detector class
// pays for, and the cross-checks show that the weaker setups break the
// stronger variants.
//
// The per-seed runs are independent, so each row fans its seeds across the
// sweep pool (bench/sweep.hpp); every job builds its own GroupSystem and
// protocol instance, keeping runs byte-reproducible under any interleaving.
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "amcast/baselines.hpp"
#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "groups/group_system.hpp"
#include "sweep.hpp"

using namespace gam;
using namespace gam::amcast;

namespace {

struct RowResult {
  int runs = 0;
  int integrity = 0, ordering = 0, termination = 0, minimality = 0;
  int strict = 0, pairwise = 0;
  // The genuineness probe is a separate run: a single message to one group,
  // so that a non-genuine solution visibly makes un-addressed processes work.
  int probe_runs = 0, probe_minimality = 0;

  void absorb(const RunRecord& rec, const groups::GroupSystem& sys,
              const sim::FailurePattern& pat) {
    ++runs;
    integrity += check_integrity(rec, sys).ok;
    ordering += check_ordering(rec, sys).ok;
    termination += check_termination(rec, sys, pat).ok;
    minimality += check_minimality(rec, sys).ok;
    strict += check_strict_ordering(rec, sys).ok;
    pairwise += check_pairwise_ordering(rec).ok;
  }

  void absorb_probe(const RunRecord& rec, const groups::GroupSystem& sys) {
    ++probe_runs;
    probe_minimality += check_minimality(rec, sys).ok;
  }

  void merge(const RowResult& o) {
    runs += o.runs;
    integrity += o.integrity;
    ordering += o.ordering;
    termination += o.termination;
    minimality += o.minimality;
    strict += o.strict;
    pairwise += o.pairwise;
    probe_runs += o.probe_runs;
    probe_minimality += o.probe_minimality;
  }
};

const char* mark(int got, int runs) {
  if (got == runs) return "yes";
  if (got == 0) return "NO ";
  return "mix";
}

void print_row(const std::string& name, const std::string& detector,
               const RowResult& r) {
  std::printf("%-34s %-28s %4s %4s %4s %4s %6s %8s\n", name.c_str(),
              detector.c_str(), mark(r.integrity, r.runs),
              mark(r.ordering, r.runs), mark(r.termination, r.runs),
              r.probe_runs ? mark(r.probe_minimality, r.probe_runs)
                           : mark(r.minimality, r.runs),
              mark(r.strict, r.runs), mark(r.pairwise, r.runs));
}

}  // namespace

int main() {
  constexpr int kSeeds = 12;
  constexpr sim::Time kHorizon = 300;
  bench::SweepRunner pool;

  std::printf(
      "Table 1 reproduction — Figure-1 topology, %d seeds, <=2 crashes each "
      "(pool of %d)\n",
      kSeeds, pool.threads());
  std::printf("%-34s %-28s %4s %4s %4s %4s %6s %8s\n", "solution",
              "failure detector", "int", "ord", "term", "min", "strict",
              "pairwise");
  std::printf("%s\n", std::string(104, '-').c_str());

  // Genuineness probe: a single message to g3 = {p0, p3, p4}; if p1 or p2
  // take steps, the solution is not genuine.
  const std::vector<MulticastMessage> probe{{0, 3, 0, 0}};

  // make_and_run(sys, pat, seed, workload): one full protocol run. Each pool
  // job builds a private GroupSystem — its lazy cyclic-family cache must not
  // be shared across threads.
  using MakeAndRun = std::function<RunRecord(
      const groups::GroupSystem&, const sim::FailurePattern&, std::uint64_t,
      std::vector<MulticastMessage>)>;

  auto sweep = [&](const MakeAndRun& make_and_run) {
    std::vector<RowResult> rows(kSeeds);
    pool.run(kSeeds, [&](int i) {
      auto seed = static_cast<std::uint64_t>(i) + 1;
      auto sys = groups::figure1_system();
      Rng rng(seed);
      sim::EnvironmentSampler env{.process_count = 5, .max_failures = 2,
                                  .horizon = kHorizon / 3};
      sim::FailurePattern pat = env.sample(rng);
      auto& row = rows[static_cast<size_t>(i)];
      row.absorb(make_and_run(sys, pat, seed, round_robin_workload(sys, 3)),
                 sys, pat);
      sim::FailurePattern clean(5);
      row.absorb_probe(make_and_run(sys, clean, seed, probe), sys);
      return bench::RunResult{};
    });
    RowResult total;
    for (const auto& r : rows) total.merge(r);
    return total;
  };

  // Row: non-genuine broadcast-based multicast (needs only Ω ∧ Σ globally).
  print_row("atomic broadcast (non-genuine)", "Omega ^ Sigma  [8,15]",
            sweep([](const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat, std::uint64_t seed,
                     std::vector<MulticastMessage> w) {
              BroadcastMulticast bc(sys, pat, {.seed = seed});
              for (auto& m : w) bc.submit(m);
              return bc.run();
            }));

  // Row: Skeen's protocol, genuine but failure-free only.
  print_row("Skeen [5,22] (failure-free only)", "(none)",
            sweep([](const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat, std::uint64_t seed,
                     std::vector<MulticastMessage> w) {
              SkeenMulticast sk(sys, pat, {.seed = seed});
              for (auto& m : w) sk.submit(m);
              return sk.run();
            }));

  // Row: partitioned decomposition (blocks when a partition dies).
  print_row("partitioned [32,17,21,10,...]", "per-partition Omega^Sigma",
            sweep([](const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat, std::uint64_t seed,
                     std::vector<MulticastMessage> w) {
              PartitionedMulticast pm(
                  sys, pat, PartitionedMulticast::finest_partitions(sys),
                  {.seed = seed});
              for (auto& m : w) pm.submit(m);
              return pm.run();
            }));

  // Row: Algorithm 1 with μ — the paper's contribution.
  print_row("Algorithm 1 (this paper)", "mu = ^Sigma_gh ^Omega_g ^gamma",
            sweep([](const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat, std::uint64_t seed,
                     std::vector<MulticastMessage> w) {
              MuMulticast mc(sys, pat, {.seed = seed});
              for (auto& m : w) mc.submit(m);
              return mc.run();
            }));

  // Row: strict variant (§6.1) — adds real-time order via 1^{g∩h}.
  print_row("Algorithm 1 + strict (SS 6.1)", "mu ^ 1^{g@h}",
            sweep([](const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat, std::uint64_t seed,
                     std::vector<MulticastMessage> w) {
              MuMulticast mc(sys, pat, {.seed = seed, .strict = true});
              for (auto& m : w) mc.submit(m);
              return mc.run();
            }));

  // Row: [36], genuine from a perfect failure detector = strict preset.
  print_row("Schiper-Pedone [36]", "P (perfect)",
            sweep([](const groups::GroupSystem& sys,
                     const sim::FailurePattern& pat, std::uint64_t seed,
                     std::vector<MulticastMessage> w) {
              MuMulticast mc(sys, pat, perfect_fd_options(seed));
              for (auto& m : w) mc.submit(m);
              return mc.run();
            }));

  // Row: pairwise-ordering variant (§7): computably F = ∅; run Algorithm 1 on
  // an acyclic topology where γ is vacuous.
  {
    std::vector<RowResult> rows(kSeeds);
    pool.run(kSeeds, [&](int i) {
      auto seed = static_cast<std::uint64_t>(i) + 1;
      groups::GroupSystem chain(5, {ProcessSet{0, 1}, ProcessSet{1, 2, 3},
                                    ProcessSet{3, 4}});
      Rng rng(seed);
      sim::EnvironmentSampler env{.process_count = 5, .max_failures = 2,
                                  .horizon = kHorizon / 3};
      sim::FailurePattern pat = env.sample(rng);
      MuMulticast mc(chain, pat, {.seed = seed});
      for (auto& m : round_robin_workload(chain, 3)) mc.submit(m);
      rows[static_cast<size_t>(i)].absorb(mc.run(), chain, pat);
      return bench::RunResult{};
    });
    RowResult row;
    for (const auto& r : rows) row.merge(r);
    print_row("pairwise ordering (SS 7, F=0)", "^Sigma_gh ^Omega_g", row);
  }

  std::printf(
      "\nReading: 'yes' = property held in all runs, 'NO' = in none, 'mix' = "
      "depends on the failure pattern.\n"
      "Expected shape (paper Table 1):\n"
      "  - broadcast-based: everything but minimality (not genuine);\n"
      "  - Skeen: safety holds, termination only failure-free ('mix');\n"
      "  - partitioned: termination 'mix' (blocks when a partition dies);\n"
      "  - Algorithm 1 with mu: int/ord/term/min all 'yes', strictness not "
      "guaranteed ('mix' possible);\n"
      "  - strict / [36]: adds strict ordering 'yes';\n"
      "  - acyclic topologies: pairwise ordering needs no gamma.\n");
  return 0;
}
