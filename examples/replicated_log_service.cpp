// State-machine replication on the library's object layer (paper §6.1's
// motivation): a replicated counter service whose commands flow through the
// universal-construction log built from Ω ∧ Σ — the same construction
// Algorithm 1 uses for its per-group logs (§4.3).
//
// The run crashes the initial Ω leader mid-stream; Σ's quorums and Ω's
// re-election keep the log — and therefore every replica's state — moving.
#include <cstdio>
#include <memory>
#include <vector>

#include "fd/detectors.hpp"
#include "objects/protocol_host.hpp"
#include "objects/universal_log.hpp"
#include "sim/run_spec.hpp"
#include "sim/world.hpp"

using namespace gam;
using namespace gam::objects;

namespace {

// The service: a counter supporting add(k) and reset, commands encoded as
// integers (reset = 0, add(k) = k).
std::int64_t apply_all(const std::vector<std::int64_t>& log) {
  std::int64_t value = 0;
  for (std::int64_t cmd : log) value = (cmd == 0) ? 0 : value + cmd;
  return value;
}

}  // namespace

int main() {
  constexpr int kReplicas = 5;
  sim::FailurePattern pattern(kReplicas);
  pattern.crash_at(0, 60);  // p0 is the initial leader — kill it mid-run

  sim::Scenario scenario(sim::RunSpec{}.failures(pattern).seed(99));
  sim::World& world = scenario.world();
  auto hosts = install_hosts(world);

  ProcessSet scope = ProcessSet::universe(kReplicas);
  fd::SigmaOracle sigma(pattern, scope);
  fd::OmegaOracle omega(pattern, scope);

  std::vector<std::shared_ptr<UniversalLog>> logs;
  for (ProcessId p = 0; p < kReplicas; ++p) {
    auto log = std::make_shared<UniversalLog>(sim::protocol_id(1), p, scope,
                                              sigma, omega);
    hosts[static_cast<size_t>(p)]->add(sim::protocol_id(1), log);
    logs.push_back(log);
  }

  // Clients at different replicas submit commands concurrently.
  int applied = 0;
  auto on_applied = [&](std::int64_t pos) {
    (void)pos;
    ++applied;
  };
  logs[1]->submit(+5, on_applied);
  logs[2]->submit(+7, on_applied);
  logs[3]->submit(0, on_applied);   // reset
  logs[4]->submit(+11, on_applied);
  logs[1]->submit(+2, on_applied);

  bool quiescent = world.run_until_quiescent(500'000);
  std::printf("quiescent: %s, commands ordered: %d/5\n",
              quiescent ? "yes" : "no", applied);

  // Every correct replica learned the same command sequence.
  const auto& reference = logs[1]->learned();
  std::printf("decided log (%zu entries):", reference.size());
  for (std::int64_t cmd : reference) std::printf(" %lld", static_cast<long long>(cmd));
  std::printf("\n");
  bool agree = true;
  for (ProcessId p = 1; p < kReplicas; ++p)
    agree = agree && logs[static_cast<size_t>(p)]->learned() == reference;
  std::printf("correct replicas agree on the log: %s\n",
              agree ? "yes" : "NO");
  std::printf("service state (counter) at every correct replica: %lld\n",
              static_cast<long long>(apply_all(reference)));

  std::uint64_t msgs = 0;
  for (ProcessId p = 0; p < kReplicas; ++p)
    msgs += world.stats(p).messages_sent;
  std::printf("protocol cost: %llu messages, %llu total steps\n",
              static_cast<unsigned long long>(msgs),
              static_cast<unsigned long long>(
                  [&] {
                    std::uint64_t s = 0;
                    for (ProcessId p = 0; p < kReplicas; ++p)
                      s += world.stats(p).steps;
                    return s;
                  }()));
  return (agree && applied == 5) ? 0 : 1;
}
