// Tracing a run of Algorithm 1: how a message moves through the phases of
// §4.3 (multicast → pending → commit → stabilize → stable → deliver), and
// what the trace looks like when a crash forces γ to unblock the survivors.
// The last section drops below the protocol to the simulator's own event
// stream (src/sim/trace.hpp): every send, receive, null step, crash, FD
// query and delivery of a World-backed run, recorded and diffed.
#include <cstdio>

#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/trace.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace gam;

  // Two intersecting groups: g0 = {p0,p1}, g1 = {p1,p2}.
  groups::GroupSystem sys(3, {ProcessSet{0, 1}, ProcessSet{1, 2}});
  sim::FailurePattern pat(3);

  amcast::MuMulticast mc(sys, pat, {.seed = 1});
  amcast::Trace trace;
  mc.attach_trace(&trace);
  mc.submit({0, 0, 0, 0});  // m0 to g0
  mc.submit({1, 1, 2, 0});  // m1 to g1
  mc.run();

  std::printf("== timeline (every action firing, in order) ==\n%s",
              trace.render_timeline().c_str());
  std::printf("\n== per-message lifecycles ==\n%s",
              trace.render_lifecycles().c_str());
  std::printf("\nphase-progression check: %s\n",
              trace.check_progression().empty() ? "consistent"
                                                : trace.check_progression().c_str());

  // Same workload on the Figure-1 topology with a crash: watch the commit of
  // g0's message wait until γ drops the families broken by p1's death.
  std::printf("\n== Figure 1, p1 crashes at t=15 — g0's message must wait for "
              "gamma ==\n");
  auto fig = groups::figure1_system();
  sim::FailurePattern crash(5);
  crash.crash_at(1, 15);
  amcast::MuMulticast mc2(fig, crash, {.seed = 2});
  amcast::Trace trace2;
  mc2.attach_trace(&trace2);
  mc2.submit({0, 0, 0, 0});  // to g0 = {p0, p1}
  mc2.run();
  std::printf("%s", trace2.render_timeline().c_str());
  std::printf("(note the gap between 'pending' and 'commit' at p0: the commit "
              "precondition\nneeded tuples only p1 could write, until gamma "
              "declared p1's families faulty at t=15)\n");

  // One layer down: the simulator's own event stream. A RecorderSink on the
  // World captures every wire event of a ReplicatedMulticast run; two runs
  // with the same seed are event-for-event identical, and a seed change is
  // localized to its first divergent event — the same report
  // `tools/trace_diff` produces for recorded files.
  std::printf("\n== simulator event stream (ReplicatedMulticast, 2 groups "
              "of 3) ==\n");
  auto record_run = [](std::uint64_t seed, sim::RecorderSink& rec) {
    auto sys2 = groups::disjoint_system(2, 3);
    sim::FailurePattern nofail(sys2.process_count());
    amcast::ReplicatedMulticast rm(sys2, nofail, {.seed = seed});
    rm.world().set_trace_sink(&rec);
    for (auto& m : amcast::round_robin_workload(sys2, 1)) rm.submit(m);
    rm.run();
  };
  sim::RecorderSink a, b, c;
  record_run(7, a);
  record_run(7, b);
  record_run(8, c);
  std::printf("first 6 of %zu events (hash %016llx):\n", a.events().size(),
              static_cast<unsigned long long>(a.hash()));
  for (size_t i = 0; i < a.events().size() && i < 6; ++i)
    std::printf("  %s\n", sim::format_event(a.events()[i]).c_str());
  auto same = sim::first_divergence(a.events(), b.events());
  std::printf("seed 7 vs seed 7: %s\n",
              same ? "DIVERGED (bug!)" : "identical, as required");
  auto diff = sim::first_divergence(a.events(), c.events());
  if (diff)
    std::printf("seed 7 vs seed 8:\n%s",
                sim::render_divergence(a.events(), c.events(), *diff, 2).c_str());
  return 0;
}
