// A sharded key-value store on top of genuine atomic multicast — the workload
// the paper's introduction motivates (partially replicated / sharded data
// stores [17, 34, 38]).
//
// Keys are hashed onto three shards; every shard is replicated on two
// processes. Single-shard writes are multicast to the owning shard;
// cross-shard transactions (here: atomic transfers between keys of different
// shards) are multicast to a destination group covering both shards. Atomic
// multicast's ordering property makes every replica of a shard apply the same
// command sequence, and makes cross-shard transfers atomic without a
// distributed-commit protocol on top.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "groups/group_system.hpp"

using namespace gam;

namespace {

// Commands are encoded into the message payload: op * 2^32 | a * 2^16 | b.
enum Op : std::int64_t { kPut = 1, kTransfer = 2 };

std::int64_t encode(Op op, std::int64_t a, std::int64_t b) {
  return (static_cast<std::int64_t>(op) << 32) | (a << 16) | b;
}

struct Command {
  Op op;
  std::int64_t a, b;
};

Command decode(std::int64_t payload) {
  return {static_cast<Op>(payload >> 32), (payload >> 16) & 0xffff,
          payload & 0xffff};
}

// Replica state: key -> value, applied in delivery order.
struct Replica {
  std::map<std::int64_t, std::int64_t> kv;
  std::vector<std::int64_t> applied;  // command log, for convergence checks

  void apply(const Command& c) {
    if (c.op == kPut) {
      kv[c.a] = c.b;
    } else {
      // transfer 1 unit a -> b (atomic across shards thanks to ordering)
      kv[c.a] -= 1;
      kv[c.b] += 1;
    }
  }
};

}  // namespace

int main() {
  // 6 processes; shard s is replicated on {2s, 2s+1}. Cross-shard groups pair
  // up adjacent shards (groups 3 and 4).
  groups::GroupSystem sys(6, {
                                 ProcessSet{0, 1},        // g0: shard 0
                                 ProcessSet{2, 3},        // g1: shard 1
                                 ProcessSet{4, 5},        // g2: shard 2
                                 ProcessSet{0, 1, 2, 3},  // g3: shards 0+1
                                 ProcessSet{2, 3, 4, 5},  // g4: shards 1+2
                             });
  int key_shard[4] = {0, 1, 2, 1};  // static key placement

  sim::FailurePattern pat(6);
  pat.crash_at(5, 120);  // one replica of shard 2 crashes mid-run

  amcast::MuMulticast mc(sys, pat, {.seed = 2026});

  // Workload: initialize the four keys, then interleave single-shard puts
  // with cross-shard transfers.
  amcast::MsgId id = 0;
  auto shard_group = [&](std::int64_t key) { return key_shard[key]; };
  auto sender_of = [&](groups::GroupId g) { return sys.group(g).min(); };

  auto put = [&](std::int64_t key, std::int64_t value) {
    groups::GroupId g = shard_group(key);
    mc.submit({id++, g, sender_of(g), encode(kPut, key, value)});
  };
  auto transfer = [&](std::int64_t from, std::int64_t to) {
    // Pick the cross-shard group covering both shards.
    int sa = key_shard[from], sb = key_shard[to];
    groups::GroupId g = (sa + sb == 1) ? 3 : 4;  // shards {0,1} -> g3, {1,2} -> g4
    mc.submit({id++, g, sender_of(g), encode(kTransfer, from, to)});
  };

  put(0, 10);
  put(1, 10);
  put(2, 10);
  put(3, 10);
  transfer(0, 1);  // shards 0 -> 1 via g3
  transfer(1, 2);  // shards 1 -> 2 via g4
  transfer(3, 2);  // within/between shard 1 and 2 via g4
  put(1, 50);
  transfer(1, 0);

  auto rec = mc.run();
  auto ok = amcast::check_all(rec, sys, pat);
  std::printf("run: %zu commands multicast, %zu deliveries, spec: %s%s\n",
              rec.multicast.size(), rec.deliveries.size(),
              ok.ok ? "OK" : "VIOLATED ", ok.error.c_str());

  // Apply deliveries per replica in local order.
  std::map<amcast::MsgId, Command> commands;
  for (const auto& m : rec.multicast) commands[m.id] = decode(m.payload);
  std::vector<Replica> replicas(6);
  std::vector<amcast::Delivery> sorted = rec.deliveries;
  std::sort(sorted.begin(), sorted.end(), [](auto& a, auto& b) {
    return std::make_pair(a.p, a.local_seq) < std::make_pair(b.p, b.local_seq);
  });
  for (const auto& d : sorted) {
    replicas[static_cast<size_t>(d.p)].apply(commands.at(d.m));
    replicas[static_cast<size_t>(d.p)].applied.push_back(d.m);
  }

  // Convergence: the two replicas of each shard applied identical sequences.
  bool converged = true;
  for (int s = 0; s < 3; ++s) {
    auto& a = replicas[static_cast<size_t>(2 * s)];
    auto& b = replicas[static_cast<size_t>(2 * s + 1)];
    ProcessId pb = 2 * s + 1;
    bool same = a.applied == b.applied;
    if (pat.faulty(pb)) {
      // The crashed replica may lag, but must hold a prefix.
      same = b.applied.size() <= a.applied.size() &&
             std::equal(b.applied.begin(), b.applied.end(), a.applied.begin());
    }
    converged = converged && same;
    std::printf("shard %d replicas %s (applied %zu vs %zu commands)\n", s,
                same ? "agree" : "DIVERGED", a.applied.size(),
                b.applied.size());
  }

  std::printf("\nfinal state at one replica per shard:\n");
  for (int key = 0; key < 4; ++key) {
    int s = key_shard[key];
    std::printf("  key %d (shard %d) = %lld\n", key, s,
                static_cast<long long>(
                    replicas[static_cast<size_t>(2 * s)].kv[key]));
  }
  return (ok.ok && converged) ? 0 : 1;
}
