// Quickstart: genuine atomic multicast in ~40 lines.
//
// Build a destination-group topology, submit messages, run Algorithm 1 with
// the μ failure detector, and inspect the deliveries. All the machinery —
// failure patterns, detector oracles, shared logs — is set up by the library.
#include <cstdio>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "groups/group_system.hpp"

int main() {
  using namespace gam;

  // Three destination groups over five processes; g0 and g1 share p1, g1 and
  // g2 share p3 (an acyclic intersection graph: F = ∅).
  groups::GroupSystem system(5, {ProcessSet{0, 1},     // g0
                                 ProcessSet{1, 2, 3},  // g1
                                 ProcessSet{3, 4}});   // g2

  // Nobody crashes in this run (try: pattern.crash_at(1, 50)).
  sim::FailurePattern pattern(5);

  amcast::MuMulticast multicast(system, pattern, {.seed = 42});

  // Message m0 from p0 to g0, m1 from p2 to g1, m2 from p3 to g2, ...
  multicast.submit({/*id=*/0, /*dst=*/0, /*src=*/0, /*payload=*/100});
  multicast.submit({1, 1, 2, 200});
  multicast.submit({2, 2, 3, 300});
  multicast.submit({3, 1, 1, 400});

  amcast::RunRecord record = multicast.run();

  std::printf("quiescent: %s, protocol steps: %llu\n",
              record.quiescent ? "yes" : "no",
              static_cast<unsigned long long>(record.steps));
  for (const auto& d : record.deliveries)
    std::printf("p%d delivered m%lld at t=%llu (local #%lld)\n", d.p,
                static_cast<long long>(d.m),
                static_cast<unsigned long long>(d.t),
                static_cast<long long>(d.local_seq));

  // The library ships checkable specifications of every property.
  auto ok = amcast::check_all(record, system, pattern);
  std::printf("integrity+ordering+minimality+termination: %s%s\n",
              ok.ok ? "OK" : "VIOLATED: ", ok.error.c_str());
  return ok.ok ? 0 : 1;
}
