// A guided tour of the paper's Figure 1: the four destination groups, the
// cyclic families f, f', f'', what γ reports as the intersection process
// crashes, and how Algorithm 1 keeps delivering where the paper says it must.
#include <cstdio>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "fd/detectors.hpp"
#include "groups/group_system.hpp"

int main() {
  using namespace gam;

  // Paper (1-based): g1={p1,p2}, g2={p2,p3}, g3={p1,p3,p4}, g4={p1,p4,p5}.
  // Library (0-based): shift every index down by one.
  auto sys = groups::figure1_system();

  std::printf("== The topology ==\n");
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    std::printf("g%d = %s\n", g, sys.group(g).to_string().c_str());

  std::printf("\n== Cyclic families (paper SS 3) ==\n");
  std::printf("A family is cyclic when its intersection graph is "
              "hamiltonian:\n");
  for (groups::FamilyMask f : sys.cyclic_families())
    std::printf("  %s\n", sys.family_to_string(f).c_str());
  std::printf("Process p0 (paper p1) sits in every family: |F(p0)| = %zu\n",
              sys.families_of_process(0).size());
  std::printf("Process p4 (paper p5) is in no intersection: |F(p4)| = %zu\n",
              sys.families_of_process(4).size());

  std::printf("\n== gamma while p1 (paper p2) crashes at t=40 ==\n");
  sim::FailurePattern pat(5);
  pat.crash_at(1, 40);
  fd::GammaOracle gamma(sys, pat);
  for (sim::Time t : {0u, 40u}) {
    auto fams = gamma.query(0, t);
    std::printf("gamma(p0, t=%2llu) = {", static_cast<unsigned long long>(t));
    for (size_t i = 0; i < fams.size(); ++i)
      std::printf("%s%s", i ? ", " : "", sys.family_to_string(fams[i]).c_str());
    std::printf("}\n");
  }
  std::printf("After the crash only f' = {g0,g2,g3} survives — the paper's "
              "narrative exactly.\n");

  std::printf("\n== Algorithm 1 under that crash ==\n");
  amcast::MuMulticast mc(sys, pat, {.seed = 7});
  // One message per group, senders chosen among the survivors where possible.
  mc.submit({0, 0, 0, 0});  // to g0 from p0
  mc.submit({1, 1, 2, 0});  // to g1 from p2
  mc.submit({2, 2, 3, 0});  // to g2 from p3
  mc.submit({3, 3, 4, 0});  // to g3 from p4
  auto rec = mc.run();
  for (const auto& d : rec.deliveries)
    std::printf("  p%d delivered m%lld\n", d.p, static_cast<long long>(d.m));
  auto ok = amcast::check_all(rec, sys, pat);
  std::printf("all properties: %s%s\n", ok.ok ? "OK" : "VIOLATED: ",
              ok.error.c_str());
  std::printf(
      "\nNote how g0's message is still delivered at p0 although p1 — the\n"
      "only process g0 shares with g1 — is gone: gamma unblocked the commit\n"
      "(the partitioned solutions of SS 7 block here, see "
      "bench_fault_tolerance).\n");
  return ok.ok ? 0 : 1;
}
