// Tests for the specification checkers themselves: hand-crafted runs that
// violate each property must be flagged, and clean runs must pass.
#include "amcast/spec.hpp"

#include <gtest/gtest.h>

#include "groups/group_system.hpp"

namespace gam::amcast {
namespace {

groups::GroupSystem two_groups() {
  // g0 = {p0, p1}, g1 = {p1, p2}: intersect on p1.
  return groups::GroupSystem(3,
                             {ProcessSet{0, 1}, ProcessSet{1, 2}});
}

RunRecord base_run() {
  RunRecord r;
  r.quiescent = true;
  r.multicast = {{0, 0, 0, 0}, {1, 1, 2, 0}};  // m0 -> g0 by p0, m1 -> g1 by p2
  r.multicast_time = {0, 1};
  // Everyone delivers what is addressed to them; p1 orders m0 before m1.
  r.deliveries = {{0, 0, 10, 0}, {1, 0, 11, 0}, {1, 1, 12, 1}, {2, 1, 13, 0}};
  r.active = ProcessSet{0, 1, 2};
  return r;
}

TEST(Spec, CleanRunPassesEverything) {
  auto sys = two_groups();
  sim::FailurePattern pat(3);
  auto r = base_run();
  EXPECT_TRUE(check_integrity(r, sys).ok);
  EXPECT_TRUE(check_ordering(r, sys).ok);
  EXPECT_TRUE(check_termination(r, sys, pat).ok);
  EXPECT_TRUE(check_minimality(r, sys).ok);
  EXPECT_TRUE(check_strict_ordering(r, sys).ok);
  EXPECT_TRUE(check_pairwise_ordering(r).ok);
  EXPECT_TRUE(check_all(r, sys, pat).ok);
}

TEST(Spec, IntegrityCatchesDoubleDelivery) {
  auto sys = two_groups();
  auto r = base_run();
  r.deliveries.push_back({0, 0, 20, 1});  // p0 delivers m0 again
  EXPECT_FALSE(check_integrity(r, sys).ok);
}

TEST(Spec, IntegrityCatchesDeliveryOutsideGroup) {
  auto sys = two_groups();
  auto r = base_run();
  r.deliveries.push_back({2, 0, 20, 1});  // p2 ∉ g0 delivers m0
  EXPECT_FALSE(check_integrity(r, sys).ok);
}

TEST(Spec, IntegrityCatchesPhantomMessage) {
  auto sys = two_groups();
  auto r = base_run();
  r.deliveries.push_back({0, 99, 20, 1});  // never multicast
  EXPECT_FALSE(check_integrity(r, sys).ok);
}

TEST(Spec, TerminationCatchesMissingDeliveryAtCorrectProcess) {
  auto sys = two_groups();
  sim::FailurePattern pat(3);
  auto r = base_run();
  r.deliveries.pop_back();  // p2 never delivers m1 although correct
  EXPECT_FALSE(check_termination(r, sys, pat).ok);
}

TEST(Spec, TerminationToleratesCrashedDestination) {
  auto sys = two_groups();
  sim::FailurePattern pat(3);
  pat.crash_at(2, 5);
  auto r = base_run();
  r.deliveries.pop_back();  // p2 faulty: no obligation
  EXPECT_TRUE(check_termination(r, sys, pat).ok);
}

TEST(Spec, TerminationIgnoresMessagesFromCrashedSenderNobodyDelivered) {
  auto sys = two_groups();
  sim::FailurePattern pat(3);
  pat.crash_at(0, 5);
  RunRecord r;
  r.quiescent = true;
  r.multicast = {{0, 0, 0, 0}};  // m0 by p0 (faulty), nobody delivered it
  r.multicast_time = {0};
  r.active = ProcessSet{0};
  EXPECT_TRUE(check_termination(r, sys, pat).ok);
  // But one delivery anywhere creates the obligation everywhere.
  r.deliveries = {{0, 0, 4, 0}};
  EXPECT_FALSE(check_termination(r, sys, pat).ok);
}

TEST(Spec, TerminationRequiresQuiescence) {
  auto sys = two_groups();
  sim::FailurePattern pat(3);
  auto r = base_run();
  r.quiescent = false;
  EXPECT_FALSE(check_termination(r, sys, pat).ok);
}

TEST(Spec, OrderingCatchesTwoProcessCycle) {
  auto sys = two_groups();
  auto r = base_run();
  // p1 delivers m0 then m1; fabricate a second process of g0∩g1... the system
  // has only p1 in the intersection, so build the cycle at p1 itself via a
  // third message: simpler — two messages both to g0, delivered in opposite
  // orders by p0 and p1.
  r.multicast = {{0, 0, 0, 0}, {1, 0, 1, 0}};
  r.multicast_time = {0, 1};
  r.deliveries = {{0, 0, 10, 0}, {0, 1, 11, 1},   // p0: m0 then m1
                  {1, 1, 12, 0}, {1, 0, 13, 1}};  // p1: m1 then m0
  EXPECT_FALSE(check_ordering(r, sys).ok);
  EXPECT_FALSE(check_pairwise_ordering(r).ok);
}

TEST(Spec, OrderingSeesEdgeToUndeliveredMessage) {
  auto sys = two_groups();
  RunRecord r;
  r.quiescent = true;
  // Both to g0; p0 delivers m0 only, p1 delivers m1 only -> m0 ↦ m1 (at p0)
  // and m1 ↦ m0 (at p1): a cycle even without double delivery anywhere.
  r.multicast = {{0, 0, 0, 0}, {1, 0, 1, 0}};
  r.multicast_time = {0, 1};
  r.deliveries = {{0, 0, 10, 0}, {1, 1, 12, 0}};
  r.active = ProcessSet{0, 1};
  EXPECT_FALSE(check_ordering(r, sys).ok);
}

TEST(Spec, MinimalityCatchesUninvolvedProcess) {
  auto sys = two_groups();
  auto r = base_run();
  r.multicast = {{0, 0, 0, 0}};  // only g0 addressed
  r.multicast_time = {0};
  r.deliveries = {{0, 0, 10, 0}, {1, 0, 11, 0}};
  r.active = ProcessSet{0, 1, 2};  // p2 took steps without being addressed
  EXPECT_FALSE(check_minimality(r, sys).ok);
  r.active = ProcessSet{0, 1};
  EXPECT_TRUE(check_minimality(r, sys).ok);
}

TEST(Spec, StrictOrderingCatchesRealTimeInversion) {
  auto sys = two_groups();
  RunRecord r;
  r.quiescent = true;
  // m0 (to g0) delivered by p0 at t=10; m1 (to g1) multicast at t=20:
  // m0 ⤳ m1. If p1 then delivers m1 before m0, ↦ ∪ ⤳ has a cycle.
  r.multicast = {{0, 0, 0, 0}, {1, 1, 2, 0}};
  r.multicast_time = {0, 20};
  r.deliveries = {{0, 0, 10, 0}, {1, 1, 25, 0}, {1, 0, 30, 1}, {2, 1, 26, 0}};
  r.active = ProcessSet{0, 1, 2};
  EXPECT_TRUE(check_ordering(r, sys).ok);  // plain ordering can't see it
  EXPECT_FALSE(check_strict_ordering(r, sys).ok);
}

TEST(Spec, DeliveryRelationEdges) {
  auto sys = two_groups();
  auto r = base_run();
  auto edges = delivery_relation(r, sys);
  // p1 ∈ g0∩g1 delivers m0 before m1 -> the only edge is (m0, m1).
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (std::pair<MsgId, MsgId>{0, 1}));
}

}  // namespace
}  // namespace gam::amcast
