#include "fd/detectors.hpp"

#include <gtest/gtest.h>

#include "fd/checkers.hpp"
#include "groups/group_system.hpp"
#include "sim/failure_pattern.hpp"
#include "util/rng.hpp"

namespace gam::fd {
namespace {

using groups::figure1_system;
using sim::FailurePattern;
using sim::Time;

// Sample every oracle at every in-scope process over a time grid and feed the
// traces to the class-axiom checkers. The grid extends well past the last
// crash + lag so the "eventually" clauses have stabilized.
constexpr Time kHorizon = 200;
constexpr Time kSampleEnd = 600;

template <typename Oracle, typename T>
std::vector<Sample<T>> sample_oracle(const Oracle& oracle, ProcessSet scope,
                                     Time end) {
  std::vector<Sample<T>> out;
  for (Time t = 0; t <= end; t += 7)
    for (ProcessId p : scope)
      if (auto v = oracle.query(p, t)) out.push_back({p, t, *v});
  return out;
}

struct SweepParam {
  std::uint64_t seed;
  Time lag;
};

class DetectorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DetectorSweep, SigmaAxiomsHoldOnEveryScope) {
  auto [seed, lag] = GetParam();
  Rng rng(seed);
  auto sys = figure1_system();
  sim::EnvironmentSampler env{.process_count = 5, .max_failures = 4,
                              .horizon = kHorizon};
  FailurePattern pat = env.sample(rng);
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    for (groups::GroupId h = g; h < sys.group_count(); ++h) {
      ProcessSet scope = sys.intersection(g, h);
      if (scope.empty()) continue;
      SigmaOracle sigma(pat, scope, lag);
      auto samples = sample_oracle<SigmaOracle, ProcessSet>(sigma, scope,
                                                            kSampleEnd);
      auto r = check_sigma(samples, pat, scope);
      EXPECT_TRUE(r.ok) << "Σ_{g" << g << "∩g" << h << "}: " << r.error;
    }
}

TEST_P(DetectorSweep, OmegaAxiomsHoldOnEveryGroup) {
  auto [seed, lag] = GetParam();
  Rng rng(seed ^ 0x5555);
  auto sys = figure1_system();
  sim::EnvironmentSampler env{.process_count = 5, .max_failures = 4,
                              .horizon = kHorizon};
  FailurePattern pat = env.sample(rng);
  for (groups::GroupId g = 0; g < sys.group_count(); ++g) {
    ProcessSet scope = sys.group(g);
    OmegaOracle omega(pat, scope, lag);
    auto samples =
        sample_oracle<OmegaOracle, ProcessId>(omega, scope, kSampleEnd);
    auto r = check_omega(samples, pat, scope);
    EXPECT_TRUE(r.ok) << "Ω_{g" << g << "}: " << r.error;
  }
}

TEST_P(DetectorSweep, GammaAxiomsHold) {
  auto [seed, lag] = GetParam();
  Rng rng(seed ^ 0xaaaa);
  auto sys = figure1_system();
  sim::EnvironmentSampler env{.process_count = 5, .max_failures = 4,
                              .horizon = kHorizon};
  FailurePattern pat = env.sample(rng);
  GammaOracle gamma(sys, pat, lag);
  std::vector<Sample<std::vector<groups::FamilyMask>>> samples;
  for (Time t = 0; t <= kSampleEnd; t += 7)
    for (ProcessId p = 0; p < 5; ++p)
      samples.push_back({p, t, gamma.query(p, t)});
  auto r = check_gamma(samples, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(DetectorSweep, IndicatorAxiomsHold) {
  auto [seed, lag] = GetParam();
  Rng rng(seed ^ 0x1234);
  auto sys = figure1_system();
  sim::EnvironmentSampler env{.process_count = 5, .max_failures = 4,
                              .horizon = kHorizon};
  FailurePattern pat = env.sample(rng);
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    for (groups::GroupId h = g + 1; h < sys.group_count(); ++h) {
      ProcessSet watched = sys.intersection(g, h);
      if (watched.empty()) continue;
      ProcessSet scope = sys.group(g) | sys.group(h);
      IndicatorOracle ind(pat, watched, scope, lag);
      auto samples = sample_oracle<IndicatorOracle, bool>(ind, scope,
                                                          kSampleEnd);
      auto r = check_indicator(samples, pat, watched, scope);
      EXPECT_TRUE(r.ok) << "1^{g" << g << "∩g" << h << "}: " << r.error;
    }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    for (Time lag : {Time{0}, Time{5}, Time{50}})
      out.push_back({seed, lag});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DetectorSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_lag" + std::to_string(info.param.lag);
                         });

// ---- targeted, non-randomized behaviours ------------------------------------

TEST(SigmaOracle, BotOutsideScope) {
  FailurePattern pat(4);
  SigmaOracle sigma(pat, ProcessSet{1, 2});
  EXPECT_FALSE(sigma.query(0, 10).has_value());
  EXPECT_TRUE(sigma.query(1, 10).has_value());
}

TEST(SigmaOracle, SingletonScopeReturnsItself) {
  FailurePattern pat(3);
  SigmaOracle sigma(pat, ProcessSet{2});
  EXPECT_EQ(*sigma.query(2, 0), ProcessSet{2});
}

TEST(SigmaOracle, QuorumShrinksToCorrectSet) {
  FailurePattern pat(3);
  pat.crash_at(0, 10);
  SigmaOracle sigma(pat, ProcessSet{0, 1, 2});
  EXPECT_EQ(*sigma.query(1, 0), (ProcessSet{0, 1, 2}));
  EXPECT_EQ(*sigma.query(1, 50), (ProcessSet{1, 2}));
}

TEST(SigmaOracle, IntersectionHeldEvenWhenWholeScopeDies) {
  FailurePattern pat(3);
  pat.crash_at(0, 5);
  pat.crash_at(1, 20);  // last survivor of the scope
  SigmaOracle sigma(pat, ProcessSet{0, 1});
  // Post-mortem quorums fall back to the last survivor, so every pair of
  // quorums across all times still intersects.
  auto early = *sigma.query(0, 0);
  auto late = *sigma.query(1, 100);
  EXPECT_TRUE(early.intersects(late));
  EXPECT_EQ(late, ProcessSet{1});
}

TEST(OmegaOracle, ConvergesToSmallestCorrect) {
  FailurePattern pat(4);
  pat.crash_at(0, 30);
  OmegaOracle omega(pat, ProcessSet{0, 1, 3});
  EXPECT_EQ(*omega.query(1, 0), 0);    // p0 alive: plausible leader
  EXPECT_EQ(*omega.query(1, 100), 1);  // after the crash: min correct
  EXPECT_EQ(*omega.query(3, 100), 1);  // all members agree
}

TEST(GammaOracle, Figure1StabilizesToFPrime) {
  // Paper §3: with Correct = {p0, p3, p4} (paper p1,p4,p5), γ at p0 returns
  // {f, f', f''} initially and stabilizes to {f'} once p1 (paper p2) fails.
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 40);
  pat.crash_at(2, 60);
  GammaOracle gamma(sys, pat, 0);
  auto before = gamma.query(0, 0);
  EXPECT_EQ(before.size(), 3u);
  auto after = gamma.query(0, 100);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], groups::family_of({0, 2, 3}));
  // γ(g0) then names exactly g2 and g3 (plus g0 itself, see Lemma 22).
  auto gg = gamma.gamma_of_group(0, 0, 100);
  EXPECT_EQ(gg, (std::vector<groups::GroupId>{0, 2, 3}));
}

TEST(GammaOracle, LagDelaysRemovalButNeverAccuracy) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 10);
  GammaOracle gamma(sys, pat, 25);
  groups::FamilyMask f = groups::family_of({0, 1, 2});
  auto at_20 = gamma.query(0, 20);  // family faulty but lag keeps it
  EXPECT_NE(std::find(at_20.begin(), at_20.end(), f), at_20.end());
  auto at_40 = gamma.query(0, 40);
  EXPECT_EQ(std::find(at_40.begin(), at_40.end(), f), at_40.end());
}

TEST(IndicatorOracle, FlipsExactlyAtCrashPlusLag) {
  FailurePattern pat(4);
  pat.crash_at(1, 10);
  pat.crash_at(2, 30);
  IndicatorOracle ind(pat, ProcessSet{1, 2}, ProcessSet::universe(4), 5);
  EXPECT_FALSE(*ind.query(0, 30));
  EXPECT_FALSE(*ind.query(0, 34));
  EXPECT_TRUE(*ind.query(0, 35));
}

TEST(MuOracle, ComponentsAreWired) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  MuOracle mu(sys, pat);
  EXPECT_EQ(mu.sigma(2, 3).scope(), (ProcessSet{0, 3}));
  EXPECT_EQ(mu.sigma(0, 0).scope(), (ProcessSet{0, 1}));
  EXPECT_EQ(mu.omega(1).scope(), (ProcessSet{1, 2}));
  EXPECT_EQ(mu.gamma().query(0, 0).size(), 3u);
  // Non-intersecting pair: Σ_∅ is ⊥ everywhere.
  EXPECT_FALSE(mu.sigma(1, 3).query(1, 0).has_value());
}

TEST(PerfectOracle, ExactCrashSet) {
  FailurePattern pat(3);
  pat.crash_at(2, 7);
  PerfectOracle p(pat);
  EXPECT_EQ(p.query(0, 6), ProcessSet{});
  EXPECT_EQ(p.query(0, 7), ProcessSet{2});
}

}  // namespace
}  // namespace gam::fd
