// End-to-end: genuine atomic multicast running over the message-passing
// object layer (per-group universal logs from Ω_g ∧ Σ_g inside a simulated
// network) — the §4.3 "implementing the shared objects" story closed for the
// disjoint-group and broadcast configurations.
#include "amcast/replicated_multicast.hpp"

#include <gtest/gtest.h>

#include <set>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"

namespace gam::amcast {
namespace {

using sim::FailurePattern;

TEST(ReplicatedMulticast, SingleGroupIsAtomicBroadcast) {
  groups::GroupSystem sys(3, {ProcessSet::universe(3)});
  FailurePattern pat(3);
  ReplicatedMulticast rm(sys, pat, {.seed = 1});
  for (auto& m : single_group_workload(sys, 0, 4)) rm.submit(m);
  auto rec = rm.run();
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(rec.deliveries.size(), 12u);
  // Single group => total order.
  auto pw = check_pairwise_ordering(rec);
  EXPECT_TRUE(pw.ok) << pw.error;
  EXPECT_GT(rm.messages_sent(), 0u);
}

TEST(ReplicatedMulticast, DisjointGroupsAreGenuine) {
  auto sys = groups::disjoint_system(3, 3);  // 9 processes
  FailurePattern pat(9);
  ReplicatedMulticast rm(sys, pat, {.seed = 2});
  // Address only g0: members of g1, g2 must exchange no messages at all.
  rm.submit({0, 0, 0, 0});
  rm.submit({1, 0, 1, 0});
  auto rec = rm.run();
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  for (ProcessId p = 3; p < 9; ++p) {
    EXPECT_EQ(rm.world().stats(p).messages_sent, 0u) << "p" << p;
    EXPECT_EQ(rm.world().stats(p).steps, 0u) << "p" << p;
  }
}

TEST(ReplicatedMulticast, SurvivesLeaderCrash) {
  groups::GroupSystem sys(3, {ProcessSet::universe(3)});
  FailurePattern pat(3);
  pat.crash_at(0, 40);  // p0 = initial Ω leader
  ReplicatedMulticast rm(sys, pat, {.seed = 3});
  for (auto& m : single_group_workload(sys, 0, 4)) rm.submit(m);
  auto rec = rm.run();
  EXPECT_TRUE(check_integrity(rec, sys).ok);
  EXPECT_TRUE(check_ordering(rec, sys).ok);
  auto t = check_termination(rec, sys, pat);
  EXPECT_TRUE(t.ok) << t.error;
}

TEST(ReplicatedMulticast, FullWorkloadAcrossGroups) {
  auto sys = groups::disjoint_system(4, 3);
  FailurePattern pat(12);
  pat.crash_at(5, 60);
  ReplicatedMulticast rm(sys, pat, {.seed = 4});
  for (auto& m : round_robin_workload(sys, 3)) rm.submit(m);
  auto rec = rm.run();
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ReplicatedMulticast, RejectsIntersectingGroups) {
  auto sys = groups::figure1_system();
  FailurePattern pat(5);
  EXPECT_DEATH(ReplicatedMulticast(sys, pat, {}), "Precondition");
}

TEST(ReplicatedMulticast, AgreesWithIdealLayerOnDeliverySets) {
  // The same workload through the ideal-object engine and the replicated
  // engine: both must deliver exactly the same (process, message) pairs —
  // orders may differ between groups (both valid), within a group both are
  // total so the *sets* coincide.
  auto sys = groups::disjoint_system(2, 3);
  FailurePattern pat(6);
  auto workload = round_robin_workload(sys, 3);

  MuMulticast ideal(sys, pat, {.seed = 7});
  for (auto& m : workload) ideal.submit(m);
  auto a = ideal.run();

  ReplicatedMulticast repl(sys, pat, {.seed = 7});
  for (auto& m : workload) repl.submit(m);
  auto b = repl.run();

  auto key_set = [](const RunRecord& r) {
    std::set<std::pair<ProcessId, MsgId>> s;
    for (auto& d : r.deliveries) s.emplace(d.p, d.m);
    return s;
  };
  EXPECT_EQ(key_set(a), key_set(b));
  EXPECT_TRUE(check_all(b, sys, pat).ok);
}

}  // namespace
}  // namespace gam::amcast
