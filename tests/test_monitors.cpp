// Online invariant-monitor tests: hand-crafted traces that violate each
// invariant trip the corresponding monitor at the exact event index, clean
// traces (hand-built and real Algorithm 1 runs) stay silent, and the
// end-of-run checks respect the quiescence gate.
//
// Trace vocabulary (two disjoint groups over four processes):
//   g0 = {0, 1},  g1 = {2, 3}
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "amcast/mu_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"

namespace gam::sim {
namespace {

using gam::ProcessId;
using gam::ProcessSet;

TraceEvent mcast(ProcessId src, std::int32_t dst_group, std::int64_t m) {
  TraceEvent e;
  e.kind = TraceEventKind::kMulticast;
  e.p = src;
  e.protocol = dst_group;
  e.peer = src;
  e.arg = m;
  return e;
}

TraceEvent deliver(ProcessId p, std::int32_t dst_group, std::int64_t m) {
  TraceEvent e;
  e.kind = TraceEventKind::kDeliver;
  e.p = p;
  e.protocol = dst_group;
  e.arg = m;
  return e;
}

TraceEvent crash(ProcessId p) {
  TraceEvent e;
  e.kind = TraceEventKind::kCrash;
  e.p = p;
  return e;
}

MonitorConfig two_groups() {
  MonitorConfig cfg;
  cfg.groups.resize(2);
  cfg.groups[0].insert(0);
  cfg.groups[0].insert(1);
  cfg.groups[1].insert(2);
  cfg.groups[1].insert(3);
  return cfg;
}

// ---- seeded violations, each tripping at the exact event index --------------

TEST(IntegrityMonitor, DuplicateDeliveryTripsAtExactIndex) {
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 7),      // 0
      deliver(0, 0, 7),    // 1
      deliver(1, 0, 7),    // 2
      deliver(0, 0, 7),    // 3  <- p0 delivers message 7 a second time
  };
  IntegrityMonitor mon(two_groups());
  feed(mon, trace);
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violation()->event_index, 3u);
  EXPECT_EQ(mon.violation()->event.p, 0);
  EXPECT_NE(mon.violation()->detail.find("delivered twice"), std::string::npos);
}

TEST(IntegrityMonitor, DeliveryOutsideDestinationTrips) {
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 7),      // 0: addressed to g0 = {0, 1}
      deliver(2, 0, 7),    // 1  <- p2 is not in g0
  };
  IntegrityMonitor mon(two_groups());
  feed(mon, trace);
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violation()->event_index, 1u);
  EXPECT_NE(mon.violation()->detail.find("outside destination"),
            std::string::npos);
}

TEST(IntegrityMonitor, NeverMulticastDeliveryTrips) {
  std::vector<TraceEvent> trace = {
      deliver(0, 0, 42),  // 0  <- nothing ever multicast message 42
  };
  IntegrityMonitor mon(two_groups());
  feed(mon, trace);
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violation()->event_index, 0u);
  EXPECT_NE(mon.violation()->detail.find("never multicast"),
            std::string::npos);

  // The relaxed mode (delivery-only streams, e.g. World traces) tolerates it.
  MonitorConfig relaxed = two_groups();
  relaxed.require_multicast = false;
  IntegrityMonitor lax(relaxed);
  feed(lax, trace);
  EXPECT_TRUE(lax.ok());
}

TEST(AgreementMonitor, DeliveryUnmatchedByCorrectProcessTrips) {
  // p0 delivers message 7 and crashes; correct p1 (also in g0) never
  // delivers it. Uniform agreement flags the FIRST delivery of the orphaned
  // message — index 1 — not the crash.
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 7),      // 0
      deliver(0, 0, 7),    // 1  <- flagged position
      crash(0),            // 2
  };
  AgreementMonitor mon(two_groups());
  feed(mon, trace);
  EXPECT_TRUE(mon.ok());  // agreement is judged only at end of run
  mon.finalize();
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violation()->event_index, 1u);
  EXPECT_NE(mon.violation()->detail.find("p1"), std::string::npos);

  // Same trace, but p1 is faulty in the configured pattern: no obligation.
  MonitorConfig cfg = two_groups();
  cfg.faulty.insert(1);
  AgreementMonitor excused(cfg);
  feed(excused, trace);
  excused.finalize();
  EXPECT_TRUE(excused.ok());
}

TEST(AcyclicityMonitor, CycleAcrossTwoGroupsTripsAtClosingDelivery) {
  // Both messages go to both members of g0; the two members deliver them in
  // opposite orders, closing a ↦ cycle at the final delivery (index 5).
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 1),      // 0
      mcast(2, 0, 2),      // 1
      deliver(0, 0, 1),    // 2: p0 sees 1 then 2
      deliver(0, 0, 2),    // 3:   -> edge 1 ↦ 2
      deliver(1, 0, 2),    // 4: p1 sees 2 then 1
      deliver(1, 0, 1),    // 5:   -> edge 2 ↦ 1 closes the cycle
  };
  AcyclicityMonitor mon(two_groups());
  feed(mon, trace);
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violation()->event_index, 5u);
  EXPECT_EQ(mon.violation()->event.p, 1);
  EXPECT_NE(mon.violation()->detail.find("cycle"), std::string::npos);
}

TEST(AcyclicityMonitor, NeverDeliveredEdgeCycleFoundInFinalize) {
  // p0 delivered 1 but never 2 (both address g0): finalize adds 1 ↦ 2.
  // p1 delivered 2 but never 1: finalize adds 2 ↦ 1 — a cycle with no
  // single delivery to blame, flagged at end of stream.
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 1),      // 0
      mcast(2, 0, 2),      // 1
      deliver(0, 0, 1),    // 2
      deliver(1, 0, 2),    // 3
  };
  AcyclicityMonitor mon(two_groups());
  feed(mon, trace);
  EXPECT_TRUE(mon.ok());  // no online edge exists yet
  mon.finalize();
  ASSERT_FALSE(mon.ok());
  EXPECT_EQ(mon.violation()->event_index, 4u);  // one past the last event
}

// ---- clean traces stay silent ----------------------------------------------

TEST(InvariantMonitors, CleanHandBuiltTracePasses) {
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 1),
      mcast(2, 1, 2),
      deliver(0, 0, 1),
      deliver(1, 0, 1),
      deliver(2, 1, 2),
      deliver(3, 1, 2),
  };
  InvariantMonitors mons(two_groups());
  feed(mons, trace);
  mons.finalize(/*quiescent=*/true);
  EXPECT_TRUE(mons.ok()) << format_violation(mons.violations().front());
  EXPECT_EQ(mons.integrity().events_seen(), trace.size());
}

TEST(InvariantMonitors, QuiescenceGateSkipsEndOfRunChecks) {
  // A cut-off run: message delivered at p0, p1's delivery still in flight.
  // finalize(false) must NOT flag the pending agreement obligation.
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 7),
      deliver(0, 0, 7),
  };
  InvariantMonitors mons(two_groups());
  feed(mons, trace);
  mons.finalize(/*quiescent=*/false);
  EXPECT_TRUE(mons.ok());
}

TEST(InvariantMonitors, ForeignProtocolEventsAreIgnored) {
  // World-style traces share the stream with other protocols; events whose
  // protocol doesn't map into the configured groups must not confuse the
  // monitors (here: protocol 57 with a colliding message id).
  std::vector<TraceEvent> trace = {
      mcast(0, 0, 1),
      deliver(0, 57, 1),  // foreign protocol: ignored, no duplicate later
      deliver(0, 0, 1),
      deliver(1, 0, 1),
  };
  InvariantMonitors mons(two_groups());
  feed(mons, trace);
  mons.finalize(true);
  EXPECT_TRUE(mons.ok());
}

TEST(InvariantMonitors, RealMuMulticastRunIsClean) {
  // End-to-end: a recorded Algorithm 1 run on the Figure 1 system satisfies
  // all three invariants (spec.cpp re-checks this post-hoc; the monitors must
  // agree online).
  auto sys = gam::groups::figure1_system();
  gam::sim::FailurePattern pat(sys.process_count());
  gam::amcast::MuMulticast mc(sys, pat, {.seed = 42});
  RecorderSink rec;
  mc.set_event_sink(&rec);
  for (auto& m : gam::amcast::round_robin_workload(sys, 3)) mc.submit(m);
  auto record = mc.run();

  MonitorConfig cfg;
  for (gam::amcast::GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  InvariantMonitors mons(cfg);
  feed(mons, rec.events());
  mons.finalize(record.quiescent);
  EXPECT_TRUE(mons.ok()) << format_violation(mons.violations().front());
  EXPECT_GT(mons.integrity().events_seen(), 0u);
}

}  // namespace
}  // namespace gam::sim
