// Tests for the message-passing object constructions: ABD registers and
// adopt-commit from Σ, indulgent consensus and the universal log from Ω ∧ Σ,
// and the contention-free fast consensus behind Proposition 47.
#include <gtest/gtest.h>

#include <memory>

#include "fd/detectors.hpp"
#include "objects/abd_register.hpp"
#include "objects/cf_consensus.hpp"
#include "objects/protocol_host.hpp"
#include "objects/quorum_store.hpp"
#include "objects/universal_log.hpp"
#include "sim/run_spec.hpp"
#include "sim/world.hpp"

namespace gam::objects {
namespace {

using sim::FailurePattern;

struct Fixture {
  // `scope` processes replicate one QuorumStore under protocol id `pid`.
  Fixture(FailurePattern pat, std::uint64_t seed)
      : pattern(std::move(pat)),
        scenario(sim::RunSpec{}.failures(pattern).seed(seed)),
        world(scenario.world()) {
    hosts = install_hosts(world);
  }

  std::shared_ptr<QuorumStore> add_store(std::int32_t pid, ProcessId p,
                                         ProcessSet scope,
                                         const fd::SigmaOracle& sigma) {
    auto s =
        std::make_shared<QuorumStore>(sim::protocol_id(pid), p, scope, sigma);
    hosts[static_cast<size_t>(p)]->add(sim::protocol_id(pid), s);
    return s;
  }

  FailurePattern pattern;
  sim::Scenario scenario;
  sim::World& world;
  std::vector<ProtocolHost*> hosts;
};

// ---- QuorumStore / AbdRegister ------------------------------------------------

TEST(QuorumStore, WriteThenSnapshotSeesValue) {
  FailurePattern pat(3);
  Fixture fx(pat, 1);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  std::vector<std::shared_ptr<QuorumStore>> stores;
  for (ProcessId p = 0; p < 3; ++p)
    stores.push_back(fx.add_store(1, p, scope, sigma));

  bool wrote = false;
  stores[0]->write(7, 1, 42, [&] { wrote = true; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  EXPECT_TRUE(wrote);

  std::optional<QuorumStore::Snapshot> snap;
  stores[1]->snapshot([&](const QuorumStore::Snapshot& s) { snap = s; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  ASSERT_TRUE(snap.has_value());
  ASSERT_TRUE(snap->count(7));
  EXPECT_EQ(snap->at(7).value, 42);
}

TEST(QuorumStore, HigherTimestampWins) {
  FailurePattern pat(3);
  Fixture fx(pat, 2);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  std::vector<std::shared_ptr<QuorumStore>> stores;
  for (ProcessId p = 0; p < 3; ++p)
    stores.push_back(fx.add_store(1, p, scope, sigma));

  stores[0]->write(0, 5, 100, [] {});
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  stores[1]->write(0, 3, 200, [] {});  // stale timestamp: must not clobber
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));

  std::optional<QuorumStore::Snapshot> snap;
  stores[2]->snapshot([&](const QuorumStore::Snapshot& s) { snap = s; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  EXPECT_EQ(snap->at(0).value, 100);
}

TEST(QuorumStore, SurvivesMinorityCrash) {
  FailurePattern pat(3);
  pat.crash_at(2, 0);
  Fixture fx(pat, 3);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  std::vector<std::shared_ptr<QuorumStore>> stores;
  for (ProcessId p = 0; p < 3; ++p)
    stores.push_back(fx.add_store(1, p, scope, sigma));

  bool wrote = false;
  stores[0]->write(1, 1, 7, [&] { wrote = true; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  EXPECT_TRUE(wrote);
}

TEST(AbdRegister, ReadsLastWrite) {
  FailurePattern pat(3);
  Fixture fx(pat, 4);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  std::vector<std::shared_ptr<QuorumStore>> stores;
  for (ProcessId p = 0; p < 3; ++p)
    stores.push_back(fx.add_store(1, p, scope, sigma));

  AbdRegister w0(stores[0], 0), w1(stores[1], 1), r2(stores[2], 2);
  bool done = false;
  w0.write(11, [&] { done = true; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  ASSERT_TRUE(done);
  w1.write(22, [&] {});
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));

  std::optional<std::int64_t> got;
  r2.read([&](std::optional<std::int64_t> v) { got = *v; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  EXPECT_EQ(got, 22);
}

TEST(AbdRegister, EmptyRegisterReadsNothing) {
  FailurePattern pat(2);
  Fixture fx(pat, 5);
  ProcessSet scope = ProcessSet::universe(2);
  fd::SigmaOracle sigma(fx.pattern, scope);
  auto s0 = fx.add_store(1, 0, scope, sigma);
  fx.add_store(1, 1, scope, sigma);
  AbdRegister r(s0, 0);
  bool called = false;
  std::optional<std::int64_t> got = 99;
  r.read([&](std::optional<std::int64_t> v) {
    called = true;
    got = v;
  });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

// ---- QuorumAdoptCommit ---------------------------------------------------------

TEST(QuorumAdoptCommit, SoloProposerCommits) {
  FailurePattern pat(3);
  Fixture fx(pat, 6);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  auto s0 = fx.add_store(1, 0, scope, sigma);
  fx.add_store(1, 1, scope, sigma);
  fx.add_store(1, 2, scope, sigma);
  QuorumAdoptCommit ac(s0, 0);
  std::optional<QuorumAdoptCommit::Outcome> out;
  ac.propose(9, [&](QuorumAdoptCommit::Outcome o) { out = o; });
  ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->grade, QuorumAdoptCommit::Grade::kCommit);
  EXPECT_EQ(out->value, 9);
}

TEST(QuorumAdoptCommit, SequentialSameValueAllCommit) {
  FailurePattern pat(3);
  Fixture fx(pat, 7);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  std::vector<std::shared_ptr<QuorumStore>> stores;
  for (ProcessId p = 0; p < 3; ++p)
    stores.push_back(fx.add_store(1, p, scope, sigma));
  for (ProcessId p = 0; p < 3; ++p) {
    QuorumAdoptCommit ac(stores[static_cast<size_t>(p)], p);
    std::optional<QuorumAdoptCommit::Outcome> out;
    ac.propose(4, [&](QuorumAdoptCommit::Outcome o) { out = o; });
    ASSERT_TRUE(fx.world.run_until_quiescent(50'000));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->grade, QuorumAdoptCommit::Grade::kCommit);
    EXPECT_EQ(out->value, 4);
  }
}

TEST(QuorumAdoptCommit, ConcurrentConflictNeverCommitsTwoValues) {
  // Across many seeds, run two concurrent conflicting proposals; AC-agreement
  // demands that if any process commits v, every returned value equals v.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    FailurePattern pat(3);
    Fixture fx(pat, seed);
    ProcessSet scope = ProcessSet::universe(3);
    fd::SigmaOracle sigma(fx.pattern, scope);
    std::vector<std::shared_ptr<QuorumStore>> stores;
    for (ProcessId p = 0; p < 3; ++p)
      stores.push_back(fx.add_store(1, p, scope, sigma));
    QuorumAdoptCommit ac0(stores[0], 0), ac1(stores[1], 1);
    std::optional<QuorumAdoptCommit::Outcome> o0, o1;
    ac0.propose(10, [&](QuorumAdoptCommit::Outcome o) { o0 = o; });
    ac1.propose(20, [&](QuorumAdoptCommit::Outcome o) { o1 = o; });
    ASSERT_TRUE(fx.world.run_until_quiescent(100'000));
    ASSERT_TRUE(o0 && o1);
    EXPECT_TRUE(o0->value == 10 || o0->value == 20);
    EXPECT_TRUE(o1->value == 10 || o1->value == 20);
    bool commit0 = o0->grade == QuorumAdoptCommit::Grade::kCommit;
    bool commit1 = o1->grade == QuorumAdoptCommit::Grade::kCommit;
    if (commit0) {
      EXPECT_EQ(o1->value, o0->value) << "seed " << seed;
    }
    if (commit1) {
      EXPECT_EQ(o0->value, o1->value) << "seed " << seed;
    }
  }
}

// ---- IndulgentConsensus ----------------------------------------------------------

TEST(IndulgentConsensus, AllProposersAgree) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FailurePattern pat(3);
    Fixture fx(pat, seed);
    ProcessSet scope = ProcessSet::universe(3);
    fd::SigmaOracle sigma(fx.pattern, scope);
    fd::OmegaOracle omega(fx.pattern, scope);
    std::vector<std::shared_ptr<IndulgentConsensus>> cons;
    for (ProcessId p = 0; p < 3; ++p) {
      auto c = std::make_shared<IndulgentConsensus>(sim::protocol_id(2), p,
                                                    scope, sigma, omega);
      fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(2), c);
      cons.push_back(c);
    }
    std::vector<std::optional<std::int64_t>> got(3);
    for (ProcessId p = 0; p < 3; ++p)
      cons[static_cast<size_t>(p)]->propose(
          100 + p, [&got, p](std::int64_t v) { got[static_cast<size_t>(p)] = v; });
    ASSERT_TRUE(fx.world.run_until_quiescent(200'000)) << "seed " << seed;
    ASSERT_TRUE(got[0] && got[1] && got[2]) << "seed " << seed;
    EXPECT_EQ(*got[0], *got[1]);
    EXPECT_EQ(*got[1], *got[2]);
    EXPECT_GE(*got[0], 100);
    EXPECT_LE(*got[0], 102);
  }
}

TEST(IndulgentConsensus, DecidesDespiteMinorityCrash) {
  FailurePattern pat(3);
  pat.crash_at(0, 10);  // p0 is the initial Ω leader: the worst victim
  Fixture fx(pat, 77);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  fd::OmegaOracle omega(fx.pattern, scope);
  std::vector<std::shared_ptr<IndulgentConsensus>> cons;
  for (ProcessId p = 0; p < 3; ++p) {
    auto c = std::make_shared<IndulgentConsensus>(sim::protocol_id(2), p,
                                                  scope, sigma, omega);
    fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(2), c);
    cons.push_back(c);
  }
  std::optional<std::int64_t> got1, got2;
  cons[1]->propose(1, [&](std::int64_t v) { got1 = v; });
  cons[2]->propose(2, [&](std::int64_t v) { got2 = v; });
  ASSERT_TRUE(fx.world.run_until_quiescent(400'000));
  ASSERT_TRUE(got1 && got2);
  EXPECT_EQ(*got1, *got2);
}

TEST(IndulgentConsensus, NonLeaderProposalReachesDecisionViaForwarding) {
  FailurePattern pat(3);
  Fixture fx(pat, 11);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  fd::OmegaOracle omega(fx.pattern, scope);  // stable leader: p0
  std::vector<std::shared_ptr<IndulgentConsensus>> cons;
  for (ProcessId p = 0; p < 3; ++p) {
    auto c = std::make_shared<IndulgentConsensus>(sim::protocol_id(2), p,
                                                  scope, sigma, omega);
    fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(2), c);
    cons.push_back(c);
  }
  // Only p2 — never the leader — proposes.
  std::optional<std::int64_t> got;
  cons[2]->propose(55, [&](std::int64_t v) { got = v; });
  ASSERT_TRUE(fx.world.run_until_quiescent(200'000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 55);
}

// ---- UniversalLog ------------------------------------------------------------------

TEST(UniversalLog, AllMembersLearnTheSameSequence) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    FailurePattern pat(3);
    Fixture fx(pat, seed * 31);
    ProcessSet scope = ProcessSet::universe(3);
    fd::SigmaOracle sigma(fx.pattern, scope);
    fd::OmegaOracle omega(fx.pattern, scope);
    std::vector<std::shared_ptr<UniversalLog>> logs;
    for (ProcessId p = 0; p < 3; ++p) {
      auto l = std::make_shared<UniversalLog>(sim::protocol_id(3), p, scope,
                                              sigma, omega);
      fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(3), l);
      logs.push_back(l);
    }
    // Each member submits two ops; op values encode (proposer, seq).
    int applied = 0;
    for (ProcessId p = 0; p < 3; ++p)
      for (int k = 0; k < 2; ++k)
        logs[static_cast<size_t>(p)]->submit(
            p * 10 + k, [&](std::int64_t) { ++applied; });
    ASSERT_TRUE(fx.world.run_until_quiescent(400'000)) << "seed " << seed;
    EXPECT_EQ(applied, 6);
    ASSERT_EQ(logs[0]->learned().size(), 6u) << "seed " << seed;
    EXPECT_EQ(logs[0]->learned(), logs[1]->learned());
    EXPECT_EQ(logs[1]->learned(), logs[2]->learned());
    // Exactly-once: all six distinct ops appear.
    auto sorted = logs[0]->learned();
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::int64_t>{0, 1, 10, 11, 20, 21}));
  }
}

TEST(UniversalLog, ProgressAfterLeaderCrash) {
  FailurePattern pat(3);
  pat.crash_at(0, 50);
  Fixture fx(pat, 13);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(fx.pattern, scope);
  fd::OmegaOracle omega(fx.pattern, scope);
  std::vector<std::shared_ptr<UniversalLog>> logs;
  for (ProcessId p = 0; p < 3; ++p) {
    auto l = std::make_shared<UniversalLog>(sim::protocol_id(3), p, scope,
                                            sigma, omega);
    fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(3), l);
    logs.push_back(l);
  }
  int applied = 0;
  logs[1]->submit(100, [&](std::int64_t) { ++applied; });
  logs[2]->submit(200, [&](std::int64_t) { ++applied; });
  ASSERT_TRUE(fx.world.run_until_quiescent(400'000));
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(logs[1]->learned(), logs[2]->learned());
  EXPECT_EQ(logs[1]->learned().size(), 2u);
}

TEST(UniversalLog, OutOfOrderDecisionsLearnInInstanceOrder) {
  // Regression for the kForward dedup rewrite: decisions arriving out of
  // instance order must still produce the contiguous learned prefix, and a
  // forwarded op must be enqueued exactly once — whether it re-arrives while
  // pending or after it has entered the learned prefix.
  FailurePattern pat(3);
  sim::Scenario sc(sim::RunSpec{}.failures(pat).seed(7));
  sim::WorldContext ctx(sc.world(), 0, 0);
  ProcessSet scope = ProcessSet::universe(3);
  fd::SigmaOracle sigma(pat, scope);
  fd::OmegaOracle omega(pat, scope);
  UniversalLog log(sim::protocol_id(3), 0, scope, sigma, omega);

  auto decide = [](std::int64_t inst, std::int64_t value) {
    sim::Message m;
    m.src = 1;
    m.dst = 0;
    m.protocol = 3;
    m.type = 5;  // kDecide: [inst, value]
    m.data = {inst, value};
    return m;
  };
  auto forward = [](std::int64_t op) {
    sim::Message m;
    m.src = 2;
    m.dst = 0;
    m.protocol = 3;
    m.type = 6;  // kForward: [op]
    m.data = {op};
    return m;
  };

  // Instance 2 decides first: nothing learnable yet.
  log.on_message(ctx, decide(2, 102));
  EXPECT_TRUE(log.learned().empty());

  // A forwarded op enqueues once; the duplicate is dropped.
  EXPECT_FALSE(log.wants_step());
  log.on_message(ctx, forward(42));
  EXPECT_TRUE(log.wants_step());
  log.on_message(ctx, forward(42));

  // Instance 0 lands: prefix [100]. Instance 1 lands: the buffered decision
  // for instance 2 completes the prefix in one learn cascade.
  log.on_message(ctx, decide(0, 100));
  EXPECT_EQ(log.learned(), (std::vector<std::int64_t>{100}));
  log.on_message(ctx, decide(1, 101));
  EXPECT_EQ(log.learned(), (std::vector<std::int64_t>{100, 101, 102}));

  // Duplicate decision for a learned instance is inert.
  log.on_message(ctx, decide(1, 101));
  EXPECT_EQ(log.learned().size(), 3u);

  // Forwarding an op that is already in the learned prefix must not enqueue
  // it again (it would be proposed — and decided — twice).
  log.on_message(ctx, forward(101));
  // Drain the only genuinely pending op to expose the state: 42 remains.
  log.on_message(ctx, decide(3, 42));
  EXPECT_EQ(log.learned(), (std::vector<std::int64_t>{100, 101, 102, 42}));
  EXPECT_FALSE(log.wants_step());  // nothing pending: 101 was deduped
}

// ---- CfFastConsensus (Proposition 47) ------------------------------------------

TEST(CfFastConsensus, ContentionFreeStaysInIntersection) {
  // g = {0,1,2,3}, g∩h = {1,2}. A contention-free propose must complete on
  // the adopt-commit fast path, and only the intersection processes (plus
  // nobody else) take steps.
  FailurePattern pat(4);
  Fixture fx(pat, 17);
  ProcessSet g = ProcessSet::universe(4);
  ProcessSet inter{1, 2};
  fd::SigmaOracle sigma_inter(fx.pattern, inter);
  fd::SigmaOracle sigma_g(fx.pattern, g);
  fd::OmegaOracle omega_g(fx.pattern, g);

  std::vector<std::shared_ptr<QuorumStore>> ac_stores(4);
  std::vector<std::shared_ptr<IndulgentConsensus>> cons(4);
  for (ProcessId p = 0; p < 4; ++p) {
    if (inter.contains(p)) {
      ac_stores[static_cast<size_t>(p)] =
          std::make_shared<QuorumStore>(sim::protocol_id(5), p, inter,
                                        sigma_inter);
      fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(5),
                                            ac_stores[static_cast<size_t>(p)]);
    }
    cons[static_cast<size_t>(p)] =
        std::make_shared<IndulgentConsensus>(sim::protocol_id(6), p, g,
                                             sigma_g, omega_g);
    fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(6),
                                          cons[static_cast<size_t>(p)]);
  }

  CfFastConsensus cf1(ac_stores[1], 1, cons[1]);
  std::optional<std::int64_t> got;
  cf1.propose(33, [&](std::int64_t v) { got = v; });
  ASSERT_TRUE(fx.world.run_until_quiescent(100'000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 33);
  EXPECT_TRUE(cf1.took_fast_path());
  // Proposition 47's genuineness: processes outside g∩h never stepped.
  EXPECT_EQ(fx.world.stats(0).steps, 0u);
  EXPECT_EQ(fx.world.stats(3).steps, 0u);
}

TEST(CfFastConsensus, ConflictFallsBackToGroupConsensus) {
  FailurePattern pat(4);
  Fixture fx(pat, 19);
  ProcessSet g = ProcessSet::universe(4);
  ProcessSet inter{1, 2};
  fd::SigmaOracle sigma_inter(fx.pattern, inter);
  fd::SigmaOracle sigma_g(fx.pattern, g);
  fd::OmegaOracle omega_g(fx.pattern, g);

  std::vector<std::shared_ptr<QuorumStore>> ac_stores(4);
  std::vector<std::shared_ptr<IndulgentConsensus>> cons(4);
  for (ProcessId p = 0; p < 4; ++p) {
    if (inter.contains(p)) {
      ac_stores[static_cast<size_t>(p)] =
          std::make_shared<QuorumStore>(sim::protocol_id(5), p, inter,
                                        sigma_inter);
      fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(5),
                                            ac_stores[static_cast<size_t>(p)]);
    }
    cons[static_cast<size_t>(p)] =
        std::make_shared<IndulgentConsensus>(sim::protocol_id(6), p, g,
                                             sigma_g, omega_g);
    fx.hosts[static_cast<size_t>(p)]->add(sim::protocol_id(6),
                                          cons[static_cast<size_t>(p)]);
  }

  CfFastConsensus cf1(ac_stores[1], 1, cons[1]);
  CfFastConsensus cf2(ac_stores[2], 2, cons[2]);
  std::optional<std::int64_t> g1, g2;
  cf1.propose(41, [&](std::int64_t v) { g1 = v; });
  cf2.propose(42, [&](std::int64_t v) { g2 = v; });
  ASSERT_TRUE(fx.world.run_until_quiescent(400'000));
  ASSERT_TRUE(g1 && g2);
  EXPECT_EQ(*g1, *g2);
  EXPECT_TRUE(*g1 == 41 || *g1 == 42);
}

}  // namespace
}  // namespace gam::objects
