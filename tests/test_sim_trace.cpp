// Tests for the structured event-trace layer (src/sim/trace.hpp) and the two
// latent scheduler/buffer bugs it was built to catch:
//   - a send to a destination id >= World::process_count() used to enter the
//     buffer unchecked, put that id into nonempty_set(), and walk the
//     scheduler into actors_ out of bounds (regression: the send must now
//     trip a precondition at the Context boundary);
//   - the two broadcast overloads (Context::send_to_set vs
//     MessageBuffer::send_to_set) used to diverge on StepStats accounting
//     (regression: World::total_stats() must agree whichever path fired).
// Plus: event emission from World runs, payload sensitivity of the event
// hash, trace file round-trip, and first-divergence localization.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "amcast/replicated_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "sim/run_spec.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace gam {
namespace {

using sim::Actor;
using sim::Context;
using sim::Message;
using sim::RecorderSink;
using sim::TraceEvent;
using sim::TraceEventKind;

size_t count_kind(const std::vector<TraceEvent>& evs, TraceEventKind k) {
  size_t n = 0;
  for (const auto& e : evs) n += e.kind == k;
  return n;
}

// Forwards a countdown token to `next`; payload carried unchanged.
class Relay : public Actor {
 public:
  explicit Relay(ProcessId next) : next_(next) {}
  void on_step(Context& ctx, const Message* m) override {
    if (m && m->type > 0)
      ctx.send(next_, sim::protocol_id(7), sim::msg_type(m->type - 1), m->data);
  }

 private:
  ProcessId next_;
};

// Takes exactly one idle (null-message) step, sending a fixed payload.
class OneShotSender : public Actor {
 public:
  OneShotSender(ProcessId dst, std::int64_t word) : dst_(dst), word_(word) {}
  void on_step(Context& ctx, const Message*) override {
    if (sent_) return;
    sent_ = true;
    ctx.send(dst_, sim::protocol_id(1), sim::msg_type(1), {word_});
  }
  bool wants_step() const override { return !sent_; }

 private:
  ProcessId dst_;
  std::int64_t word_;
  bool sent_ = false;
};

// ---------------------------------------------------------------------------
// Sinks.

TEST(TraceSinks, RecorderAndHasherAgree) {
  RecorderSink rec;
  sim::HashingSink hash;
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.t = static_cast<sim::Time>(i);
    e.p = i % 3;
    e.kind = i % 2 ? TraceEventKind::kSend : TraceEventKind::kReceive;
    e.payload_hash = static_cast<std::uint64_t>(i) * 17;
    rec.on_event(e);
    hash.on_event(e);
  }
  EXPECT_EQ(rec.events().size(), 10u);
  EXPECT_EQ(hash.count(), 10u);
  EXPECT_EQ(rec.hash(), hash.hash());
  EXPECT_EQ(rec.hash(), sim::hash_events(rec.events()));
}

TEST(TraceSinks, RingKeepsLastNInOrder) {
  sim::RingSink ring(4);
  for (int i = 0; i < 11; ++i) {
    TraceEvent e;
    e.arg = i;
    ring.on_event(e);
  }
  EXPECT_EQ(ring.total(), 11u);
  auto w = ring.snapshot();
  ASSERT_EQ(w.size(), 4u);
  for (size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(w[i].arg, static_cast<std::int64_t>(7 + i));
}

// ---------------------------------------------------------------------------
// World emission.

TEST(WorldTrace, RelayRunEmitsTypedStream) {
  RecorderSink rec;
  sim::Scenario sc(sim::RunSpec{}.processes(3).seed(5).trace(&rec));
  sim::World& world = sc.world();
  for (ProcessId p = 0; p < 3; ++p)
    world.install(p, std::make_unique<Relay>((p + 1) % 3));
  Message kick;
  kick.src = 0;
  kick.dst = 1;
  kick.type = 4;
  kick.data = sim::Payload{42};
  world.buffer().send(std::move(kick));
  ASSERT_TRUE(world.run_until_quiescent(1000));

  // 5 sends (kick + 4 hops), 5 receives, no null steps, no crashes.
  const auto& evs = rec.events();
  EXPECT_EQ(count_kind(evs, TraceEventKind::kSend), 5u);
  EXPECT_EQ(count_kind(evs, TraceEventKind::kReceive), 5u);
  EXPECT_EQ(count_kind(evs, TraceEventKind::kNullStep), 0u);
  EXPECT_EQ(count_kind(evs, TraceEventKind::kCrash), 0u);
  // The payload word rides along every hop and is folded into each event.
  std::uint64_t expected = sim::hash_payload(sim::Payload{42});
  for (const auto& e : evs) EXPECT_EQ(e.payload_hash, expected);
  // Every receive is preceded by the matching send (same type countdown).
  ASSERT_GE(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, TraceEventKind::kSend);
  EXPECT_EQ(evs[0].p, 0);
  EXPECT_EQ(evs[0].peer, 1);
}

TEST(WorldTrace, NullStepAndCrashEmitted) {
  sim::FailurePattern pat(2);
  pat.crash_at(1, 0);
  RecorderSink rec;
  sim::Scenario sc(sim::RunSpec{}.failures(pat).seed(3).trace(&rec));
  sim::World& world = sc.world();
  world.install(0, std::make_unique<OneShotSender>(0, 9));
  // A message pending for the crashed p1 makes it a scheduling candidate, so
  // the crash becomes observable (and must be emitted exactly once).
  Message doomed;
  doomed.src = 0;
  doomed.dst = 1;
  doomed.type = 0;
  world.buffer().send(std::move(doomed));
  ASSERT_TRUE(world.run_until_quiescent(1000));
  const auto& evs = rec.events();
  EXPECT_EQ(count_kind(evs, TraceEventKind::kNullStep), 1u);
  EXPECT_EQ(count_kind(evs, TraceEventKind::kCrash), 1u);
  for (const auto& e : evs)
    if (e.kind == TraceEventKind::kCrash) {
      EXPECT_EQ(e.p, 1);
      EXPECT_EQ(e.arg, 0);  // crash time
    }
}

TEST(WorldTrace, DisabledSinkRunsIdentically) {
  // The traced and untraced executions of one seed must not diverge: tracing
  // is observation only.
  auto run = [](sim::TraceSink* sink) {
    sim::Scenario sc(sim::RunSpec{}.processes(3).seed(11).trace(sink));
    sim::World& world = sc.world();
    for (ProcessId p = 0; p < 3; ++p)
      world.install(p, std::make_unique<Relay>((p + 1) % 3));
    Message kick;
    kick.src = 0;
    kick.dst = 0;
    kick.type = 10;
    world.buffer().send(std::move(kick));
    world.run_until_quiescent(1000);
    return world.total_stats();
  };
  sim::HashingSink h;
  auto with = run(&h);
  auto without = run(nullptr);
  EXPECT_GT(h.count(), 0u);
  EXPECT_EQ(with.steps, without.steps);
  EXPECT_EQ(with.messages_sent, without.messages_sent);
  EXPECT_EQ(with.messages_received, without.messages_received);
}

// ---------------------------------------------------------------------------
// Regression: out-of-bounds destination. Before this PR the send below was
// accepted, put pid 5 into nonempty_set(), and the candidate walk indexed
// actors_[5] in a 3-process world — an out-of-bounds read under ASan. It must
// now die at the Context::send boundary.

using WorldTraceDeathTest = ::testing::Test;

TEST(WorldTraceDeathTest, SendPastProcessCountTripsPrecondition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Scenario sc(sim::RunSpec{}.processes(3).seed(1));
  sim::WorldContext ctx(sc.world(), 0, 0);
  EXPECT_DEATH(ctx.send(5, sim::protocol_id(1), sim::msg_type(1), {}),
               "Precondition violated");
  EXPECT_DEATH(ctx.send(-1, sim::protocol_id(1), sim::msg_type(1), {}),
               "Precondition violated");
  EXPECT_DEATH(ctx.send_to_set(ProcessSet{0, 4}, sim::protocol_id(1),
                               sim::msg_type(1), {}),
               "Precondition violated");
}

TEST(WorldTrace, InRangeInjectedSendStaysInert) {
  // Direct buffer injection for an id in [0, process_count) without an actor
  // must neither crash nor spin (defensive candidate masking).
  sim::Scenario sc(sim::RunSpec{}.processes(3).seed(1));
  sim::World& world = sc.world();
  world.install(0, std::make_unique<Relay>(1));
  Message m;
  m.src = 0;
  m.dst = 2;  // no actor installed at p2
  m.type = 3;
  world.buffer().send(std::move(m));
  EXPECT_TRUE(world.run_until_quiescent(100));
  EXPECT_EQ(world.buffer().pending_for(2), 1u);
}

// ---------------------------------------------------------------------------
// Regression: messages_sent accounting must agree across the two broadcast
// overloads. Before this PR the MessageBuffer::send_to_set path bypassed
// StepStats entirely, so totals depended on which overload a protocol called.

class CtxBroadcaster : public Actor {
 public:
  void on_step(Context& ctx, const Message*) override {
    if (done_) return;
    done_ = true;
    ctx.send_to_set(ProcessSet{0, 1, 2}, sim::protocol_id(4),
                    sim::msg_type(1), {1, 2});
  }
  bool wants_step() const override { return !done_; }

 private:
  bool done_ = false;
};

class BufBroadcaster : public Actor {
 public:
  void on_step(Context&, const Message*) override {}
};

TEST(StepStats, BroadcastPathsAgreeOnMessagesSent) {
  sim::Scenario sc_ctx(sim::RunSpec{}.processes(3).seed(1));
  sim::World& via_ctx = sc_ctx.world();
  via_ctx.install(0, std::make_unique<CtxBroadcaster>());
  for (ProcessId p = 1; p < 3; ++p)
    via_ctx.install(p, std::make_unique<BufBroadcaster>());
  ASSERT_TRUE(via_ctx.run_until_quiescent(100));

  sim::Scenario sc_buf(sim::RunSpec{}.processes(3).seed(1));
  sim::World& via_buf = sc_buf.world();
  for (ProcessId p = 0; p < 3; ++p)
    via_buf.install(p, std::make_unique<BufBroadcaster>());
  Message proto;
  proto.src = 0;
  proto.protocol = 4;
  proto.type = 1;
  proto.data = sim::Payload{1, 2};
  via_buf.buffer().send_to_set(std::move(proto), ProcessSet{0, 1, 2});
  ASSERT_TRUE(via_buf.run_until_quiescent(100));

  EXPECT_EQ(via_ctx.total_stats().messages_sent, 3u);
  EXPECT_EQ(via_buf.total_stats().messages_sent, 3u);
  EXPECT_EQ(via_ctx.stats(0).messages_sent, via_buf.stats(0).messages_sent);
  // The copy/move accounting must agree too (move-on-last-recipient).
  EXPECT_EQ(via_ctx.buffer().alloc_stats().moved_sends, 1u);
  EXPECT_EQ(via_buf.buffer().alloc_stats().moved_sends, 1u);
  EXPECT_EQ(via_ctx.buffer().alloc_stats().inline_payloads, 3u);
  EXPECT_EQ(via_buf.buffer().alloc_stats().inline_payloads, 3u);
}

// ---------------------------------------------------------------------------
// Determinism-hash strength: a payload-only mutation must flip the event
// hash. (The old delivery-id fold collided on these runs — same ids, same
// timing, different content.)

TEST(TraceHash, PayloadOnlyMutationFlipsEventHash) {
  auto run = [](std::int64_t word) {
    sim::HashingSink h;
    sim::Scenario sc(sim::RunSpec{}.processes(2).seed(7).trace(&h));
    sim::World& world = sc.world();
    world.install(0, std::make_unique<OneShotSender>(1, word));
    world.install(1, std::make_unique<BufBroadcaster>());
    world.run_until_quiescent(100);
    return h.hash();
  };
  EXPECT_NE(run(1), run(2));
  EXPECT_EQ(run(1), run(1));
}

// ---------------------------------------------------------------------------
// Serialization round-trip + divergence localization.

TEST(TraceFile, RoundTripsThroughDisk) {
  RecorderSink rec;
  sim::Scenario sc(sim::RunSpec{}.processes(3).seed(13).trace(&rec));
  sim::World& world = sc.world();
  for (ProcessId p = 0; p < 3; ++p)
    world.install(p, std::make_unique<Relay>((p + 1) % 3));
  Message kick;
  kick.src = 2;
  kick.dst = 0;
  kick.type = 6;
  kick.data = sim::Payload{-3, 1 << 20};
  world.buffer().send(std::move(kick));
  ASSERT_TRUE(world.run_until_quiescent(1000));
  ASSERT_FALSE(rec.events().empty());

  std::string path = "test_sim_trace_roundtrip.tmp";
  ASSERT_TRUE(rec.write(path));
  auto loaded = sim::load_trace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, rec.events());
  EXPECT_EQ(sim::hash_events(*loaded), rec.hash());
  EXPECT_FALSE(sim::first_divergence(*loaded, rec.events()).has_value());
}

TEST(TraceFile, RejectsGarbage) {
  std::string path = "test_sim_trace_garbage.tmp";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace\n", f);
  std::fclose(f);
  EXPECT_FALSE(sim::load_trace(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(sim::load_trace("does_not_exist.trace").has_value());
}

TEST(TraceDiff, LocalizesFirstDivergentEvent) {
  std::vector<TraceEvent> a, b;
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.t = static_cast<sim::Time>(i);
    e.p = 0;
    e.kind = TraceEventKind::kSend;
    e.arg = i;
    a.push_back(e);
    b.push_back(e);
  }
  EXPECT_FALSE(sim::first_divergence(a, b).has_value());

  b[6].payload_hash = 99;  // content-only change
  auto div = sim::first_divergence(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(*div, 6u);
  std::string report = sim::render_divergence(a, b, *div);
  EXPECT_NE(report.find("first divergence at event 6"), std::string::npos);
  EXPECT_NE(report.find("A>"), std::string::npos);
  EXPECT_NE(report.find("B>"), std::string::npos);

  // One stream being a strict prefix of the other diverges at its end.
  b = a;
  b.resize(4);
  div = sim::first_divergence(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(*div, 4u);
  EXPECT_NE(sim::render_divergence(a, b, *div).find("<end of stream>"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a World-backed protocol run produces all event kinds, and the
// delivery events interleave with the wire traffic that caused them.

TEST(WorldTrace, ReplicatedRunEmitsFdQueriesAndDeliveries) {
  auto sys = groups::disjoint_system(2, 3);
  sim::FailurePattern pat(sys.process_count());
  amcast::ReplicatedMulticast rm(sys, pat, {.seed = 3});
  RecorderSink rec;
  rm.world().set_trace_sink(&rec);
  for (auto& m : amcast::round_robin_workload(sys, 2)) rm.submit(m);
  auto record = rm.run();
  ASSERT_TRUE(record.quiescent);
  ASSERT_FALSE(record.deliveries.empty());

  const auto& evs = rec.events();
  EXPECT_GT(count_kind(evs, TraceEventKind::kSend), 0u);
  EXPECT_GT(count_kind(evs, TraceEventKind::kReceive), 0u);
  EXPECT_GT(count_kind(evs, TraceEventKind::kFdQuery), 0u);
  EXPECT_EQ(count_kind(evs, TraceEventKind::kDeliver),
            record.deliveries.size());
  // Per-process wire accounting matches the send events in the stream.
  std::uint64_t send_events = count_kind(evs, TraceEventKind::kSend);
  EXPECT_EQ(send_events, rm.messages_sent());
}

}  // namespace
}  // namespace gam
