// Property tests around the paper's proofs:
//   - the Table-2 base invariants (Claims 2-8), checked against the actual
//     log-operation journals of Algorithm 1 runs and against randomized op
//     sequences on the Log object;
//   - realism of the detector oracles (outputs at time t must not depend on
//     crashes after t, Appendix A / [14]);
//   - the strictness ladder of §6.1: Proposition 51 (indicators ⇒ γ) and
//     Corollary 52 (γ cannot reconstruct the indicators).
#include <gtest/gtest.h>

#include "amcast/mu_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "fd/detectors.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "objects/ideal.hpp"

namespace gam {
namespace {

using amcast::MuMulticast;
using groups::figure1_system;
using objects::Log;
using objects::LogEntry;
using sim::FailurePattern;
using sim::Time;

// ---- Table-2 invariants ------------------------------------------------------

TEST(LogHistory, CleanSequencePasses) {
  Log log(0, /*track_history=*/true);
  log.append(LogEntry::message(1), 0);
  log.append(LogEntry::message(2), 0);
  log.bump_and_lock(LogEntry::message(1), 5, 0);
  log.append(LogEntry::message(1), 1);  // idempotent re-append
  log.bump_and_lock(LogEntry::message(1), 9, 1);  // locked: no-op
  EXPECT_EQ(log.check_history(), "");
  EXPECT_EQ(log.history().size(), 5u);
}

TEST(LogHistory, RandomizedOpSequencesKeepInvariants) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    Log log(round, /*track_history=*/true);
    for (int op = 0; op < 200; ++op) {
      auto m = static_cast<objects::MsgId>(rng.below(20));
      if (rng.chance(0.6)) {
        log.append(LogEntry::message(m), 0);
      } else if (log.contains(LogEntry::message(m))) {
        log.bump_and_lock(LogEntry::message(m),
                          static_cast<std::int64_t>(rng.below(40)), 0);
      }
    }
    ASSERT_EQ(log.check_history(), "") << "round " << round;
  }
}

TEST(LogHistory, MuMulticastRunsKeepInvariants) {
  // Claims 2-8 on the real logs of Algorithm 1, across topologies and
  // failure patterns.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto sys = figure1_system();
    Rng rng(seed);
    sim::EnvironmentSampler env{.process_count = 5, .max_failures = 2,
                                .horizon = 150};
    FailurePattern pat = env.sample(rng);
    MuMulticast mc(sys, pat, {.seed = seed, .track_log_history = true});
    for (auto& m : amcast::round_robin_workload(sys, 3)) mc.submit(m);
    mc.run();
    EXPECT_EQ(mc.validate_log_invariants(), "") << "seed " << seed;
  }
}

TEST(LogHistory, LockedOrderIsStable) {
  // Claim 6: G(L.locked(d) ∧ d <_L d' ⇒ G(d <_L d')). Once m1 is locked below
  // m2, no later operation may reorder them.
  Log log(0, true);
  log.append(LogEntry::message(1), 0);
  log.append(LogEntry::message(2), 0);
  log.bump_and_lock(LogEntry::message(1), 1, 0);  // locked at slot 1
  ASSERT_TRUE(log.before(LogEntry::message(1), LogEntry::message(2)));
  log.bump_and_lock(LogEntry::message(2), 7, 0);
  EXPECT_TRUE(log.before(LogEntry::message(1), LogEntry::message(2)));
  EXPECT_EQ(log.check_history(), "");
}

TEST(LogHistory, Claim7NewDataLandsAboveLockedData) {
  // Claim 7: if d' is locked and d joins later, then d' <_L d.
  Log log(0, true);
  log.append(LogEntry::message(1), 0);
  log.bump_and_lock(LogEntry::message(1), 4, 0);
  log.append(LogEntry::message(2), 0);  // head moved past slot 4
  EXPECT_TRUE(log.before(LogEntry::message(1), LogEntry::message(2)));
}

// ---- realism of the oracles ----------------------------------------------------

// Two patterns with a common prefix up to T must induce identical observable
// histories up to T (queries at processes still alive).
template <typename Query>
void expect_realistic(const FailurePattern& a, const FailurePattern& b,
                      Time common_until, Query&& q) {
  for (Time t = 0; t <= common_until; t += 3)
    for (ProcessId p = 0; p < a.process_count(); ++p) {
      if (a.crashed(p, t) || b.crashed(p, t)) continue;
      EXPECT_EQ(q(a, p, t), q(b, p, t))
          << "divergence at p" << p << " t=" << t;
    }
}

TEST(Realism, SigmaDependsOnlyOnThePast) {
  FailurePattern a(4), b(4);
  a.crash_at(2, 50);  // diverge after t=49
  b.crash_at(1, 80);
  expect_realistic(a, b, 49, [](const FailurePattern& f, ProcessId p, Time t) {
    fd::SigmaOracle sigma(f, ProcessSet::universe(4));
    auto v = sigma.query(p, t);
    return v ? v->word(0) : ~0ull;
  });
}

TEST(Realism, OmegaDependsOnlyOnThePast) {
  FailurePattern a(4), b(4);
  a.crash_at(0, 30);
  expect_realistic(a, b, 29, [](const FailurePattern& f, ProcessId p, Time t) {
    fd::OmegaOracle omega(f, ProcessSet::universe(4));
    auto v = omega.query(p, t);
    return v ? *v : -1;
  });
}

TEST(Realism, GammaDependsOnlyOnThePast) {
  auto sys = figure1_system();
  FailurePattern a(5), b(5);
  a.crash_at(1, 40);
  b.crash_at(0, 70);
  expect_realistic(a, b, 39, [&](const FailurePattern& f, ProcessId p, Time t) {
    fd::GammaOracle gamma(sys, f);
    return gamma.query(p, t).size();
  });
}

TEST(Realism, IndicatorDependsOnlyOnThePast) {
  FailurePattern a(4), b(4);
  a.crash_at(1, 25);
  expect_realistic(a, b, 24, [](const FailurePattern& f, ProcessId p, Time t) {
    fd::IndicatorOracle ind(f, ProcessSet{1}, ProcessSet::universe(4));
    auto v = ind.query(p, t);
    return v ? static_cast<int>(*v) : -1;
  });
}

// ---- the §6.1 strictness ladder -------------------------------------------------

TEST(Corollary52, GammaCannotReconstructTheIndicator) {
  // Corollary 52's argument, mechanized: take F = {f} with f = {g,h,h'} and
  // two failure patterns — in both, h' is faulty from the start (so f is
  // faulty and γ's output is pinned); in the second, g∩h additionally dies.
  // The γ histories are identical, yet 1^{g∩h} must eventually output true in
  // the second pattern only: no algorithm fed by γ alone can emulate it.
  groups::GroupSystem sys(4, {ProcessSet{0, 1},    // g
                              ProcessSet{1, 2},    // h
                              ProcessSet{2, 3, 0}});  // h'
  ASSERT_EQ(sys.cyclic_families().size(), 1u);

  FailurePattern f1(4), f2(4);
  // h' dies entirely at t=0 in both patterns.
  for (ProcessId p : sys.group(2)) {
    f1.crash_at(p, 0);
    f2.crash_at(p, 0);
  }
  f2.crash_at(1, 0);  // g∩h = {p1} additionally dies in f2 (p1 ∉ h')

  fd::GammaOracle g1(sys, f1), g2(sys, f2);
  for (Time t = 0; t <= 100; t += 5)
    for (ProcessId p = 0; p < 4; ++p)
      EXPECT_EQ(g1.query(p, t), g2.query(p, t))
          << "γ distinguishes the patterns at p" << p << " t=" << t;

  fd::IndicatorOracle i1(f1, sys.intersection(0, 1),
                         sys.group(0) | sys.group(1));
  fd::IndicatorOracle i2(f2, sys.intersection(0, 1),
                         sys.group(0) | sys.group(1));
  // The indicator must answer differently — information γ provably lacks.
  EXPECT_FALSE(*i1.query(0, 100));
  EXPECT_TRUE(*i2.query(0, 100));
}

TEST(Proposition51, IndicatorsAreStrictlyAboveGamma) {
  // The other direction of the ladder: the indicators reconstruct γ (the
  // construction lives in emulation/gamma_from_indicators.hpp and is tested
  // in test_emulation.cpp); here we check the ordering claim on histories —
  // whenever γ omits a family, some indicator of each of its cycles fired.
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 30);
  fd::GammaOracle gamma(sys, pat);
  for (Time t : {Time{31}, Time{60}, Time{200}}) {
    for (groups::FamilyMask f : sys.families_of_process(0)) {
      auto out = gamma.query(0, t);
      bool omitted = std::count(out.begin(), out.end(), f) == 0;
      if (!omitted) continue;
      // Some intersecting pair inside f is dead, so its 1^{g∩h} is true.
      bool witnessed = false;
      for (groups::GroupId a : groups::family_members(f))
        for (groups::GroupId b : groups::family_members(f)) {
          if (a >= b) continue;
          ProcessSet inter = sys.intersection(a, b);
          if (inter.empty()) continue;
          fd::IndicatorOracle ind(pat, inter, sys.group(a) | sys.group(b));
          if (*ind.query(0, t)) witnessed = true;
        }
      EXPECT_TRUE(witnessed) << "family omitted with no dead intersection";
    }
  }
}

// ---- random-topology property sweep ---------------------------------------------

struct RandomSweepCase {
  std::uint64_t seed;
  bool helping;
  bool strict;
};

class RandomTopologySweep : public ::testing::TestWithParam<RandomSweepCase> {};

TEST_P(RandomTopologySweep, AllPropertiesHoldOnRandomTopologies) {
  auto [seed, helping, strict] = GetParam();
  Rng rng(seed);
  groups::TopologySpec spec;
  spec.process_count = static_cast<int>(rng.range(4, 8));
  spec.group_count = static_cast<int>(rng.range(2, 5));
  spec.min_group_size = 2;
  spec.max_group_size = 3;
  spec.overlap_bias = 0.6;
  auto sys = groups::random_group_system(spec, rng);

  sim::EnvironmentSampler env{.process_count = sys.process_count(),
                              .max_failures = 2, .horizon = 300};
  FailurePattern pat = env.sample(rng);

  MuMulticast mc(sys, pat,
                 {.seed = seed ^ 0xabc, .strict = strict, .helping = helping,
                  .track_log_history = true});
  for (auto& m : amcast::round_robin_workload(sys, 3)) mc.submit(m);
  auto rec = mc.run();
  auto r = amcast::check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error << " [procs=" << sys.process_count()
                    << " groups=" << sys.group_count()
                    << " faulty=" << pat.faulty_set().to_string() << "]";
  EXPECT_EQ(mc.validate_log_invariants(), "");
  if (strict) {
    auto s = amcast::check_strict_ordering(rec, sys);
    EXPECT_TRUE(s.ok) << s.error;
  }
}

std::vector<RandomSweepCase> random_sweep_cases() {
  std::vector<RandomSweepCase> out;
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    out.push_back({seed, seed % 2 == 0, seed % 5 == 0});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomTopologySweep,
                         ::testing::ValuesIn(random_sweep_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace gam
