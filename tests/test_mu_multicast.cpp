// Integration tests for Algorithm 1: every run, across topologies, failure
// patterns, detector lags and seeds, must satisfy Integrity, Ordering,
// Minimality and Termination (§2.2-§2.3); the strict variant must add Strict
// Ordering (§6.1); acyclic topologies must deliver in isolation (§6.2).
#include "amcast/mu_multicast.hpp"

#include <gtest/gtest.h>

#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "groups/group_system.hpp"

namespace gam::amcast {
namespace {

using groups::GroupSystem;
using groups::figure1_system;
using sim::FailurePattern;

GroupSystem single_group() {
  return GroupSystem(3, {ProcessSet{0, 1, 2}});
}

GroupSystem disjoint_groups() {
  return GroupSystem(6, {ProcessSet{0, 1}, ProcessSet{2, 3},
                         ProcessSet{4, 5}});
}

GroupSystem chain_groups() {
  // Acyclic: g0 - g1 - g2 (F = ∅) yet intersecting.
  return GroupSystem(5, {ProcessSet{0, 1}, ProcessSet{1, 2, 3},
                         ProcessSet{3, 4}});
}

GroupSystem triangle_groups() {
  return GroupSystem(3, {ProcessSet{0, 1}, ProcessSet{1, 2},
                         ProcessSet{2, 0}});
}

RunRecord run_workload(const GroupSystem& sys, const FailurePattern& pat,
                       std::vector<MulticastMessage> msgs,
                       MuMulticast::Options opt = {}) {
  MuMulticast mc(sys, pat, opt);
  for (auto& m : msgs) mc.submit(m);
  return mc.run();
}

TEST(MuMulticast, SingleGroupFailureFreeTotalOrder) {
  auto sys = single_group();
  FailurePattern pat(3);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 5),
                          {.seed = 11});
  EXPECT_TRUE(rec.quiescent);
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  auto pw = check_pairwise_ordering(rec);
  EXPECT_TRUE(pw.ok) << pw.error;  // single group => total order
  EXPECT_EQ(rec.deliveries.size(), 15u);  // 5 messages x 3 members
}

TEST(MuMulticast, DisjointGroupsDeliverIndependently) {
  auto sys = disjoint_groups();
  FailurePattern pat(6);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 4),
                          {.seed = 3});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(rec.deliveries.size(), 24u);  // 12 messages x 2 members
}

TEST(MuMulticast, Figure1FailureFree) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 3),
                          {.seed = 17});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(MuMulticast, Figure1SurvivesIntersectionCrash) {
  // p1 = g0∩g1 dies: families f and f'' become faulty, γ unblocks the
  // survivors, and the remaining correct destinations still deliver.
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 60);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 3),
                          {.seed = 23});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(MuMulticast, MinimalityOnlyAddressedProcessesStep) {
  // A single message to g3 = {p0,p3,p4}: p1 and p2 must take no steps.
  auto sys = figure1_system();
  FailurePattern pat(5);
  std::vector<MulticastMessage> w{{0, 3, 0, 0}};
  auto rec = run_workload(sys, pat, w, {.seed = 5});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(rec.active.contains(1));
  EXPECT_FALSE(rec.active.contains(2));
  EXPECT_EQ(rec.deliveries.size(), 3u);
}

TEST(MuMulticast, EmptyWorkloadIsQuiescentAndNobodySteps) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  auto rec = run_workload(sys, pat, {});
  EXPECT_TRUE(rec.quiescent);
  EXPECT_TRUE(rec.active.empty());
  EXPECT_EQ(rec.steps, 0u);
}

TEST(MuMulticast, SenderCrashBeforeAnyStep) {
  // The sole sender dies at t=0: its message never enters the protocol, the
  // run quiesces, and termination holds vacuously.
  auto sys = single_group();
  FailurePattern pat(3);
  pat.crash_at(0, 0);
  std::vector<MulticastMessage> w{{0, 0, 0, 0}};
  auto rec = run_workload(sys, pat, w, {.seed = 9});
  EXPECT_TRUE(rec.quiescent);
  EXPECT_TRUE(rec.multicast.empty());
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(MuMulticast, StrictVariantSatisfiesStrictOrdering) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(2, 80);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 3),
                          {.seed = 31, .strict = true});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  auto s = check_strict_ordering(rec, sys);
  EXPECT_TRUE(s.ok) << s.error;
}

TEST(MuMulticast, BaseVariantAlsoStrictOnTheseRuns) {
  // Strictness of the base algorithm is not guaranteed in general, but the
  // checker must at least accept the strict variant's runs; for the base
  // variant we only require the core properties here.
  auto sys = chain_groups();
  FailurePattern pat(5);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 4),
                          {.seed = 13});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(MuMulticast, GroupParallelismWhenAcyclic) {
  // §6.2: with F = ∅, a message to g0 is delivered even when only the
  // members of g0 are scheduled (a P-fair run, P = g0).
  auto sys = chain_groups();
  FailurePattern pat(5);
  MuMulticast mc(sys, pat,
                 {.seed = 7, .fair_set = ProcessSet{0, 1}});
  mc.submit({0, 0, 0, 0});
  auto rec = mc.run();
  EXPECT_TRUE(rec.quiescent);
  EXPECT_EQ(rec.deliveries.size(), 2u);  // both members of g0
}

TEST(MuMulticast, LaggedDetectorsOnlyDelayDelivery) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 40);
  auto rec = run_workload(sys, pat, round_robin_workload(sys, 2),
                          {.seed = 19, .fd_lag = 30});
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(MuMulticast, GroupSequentialSubmissionOrderRespected) {
  // Messages to the same group are delivered in submission order at every
  // member (our driver issues them group-sequentially).
  auto sys = single_group();
  FailurePattern pat(3);
  auto rec = run_workload(sys, pat, single_group_workload(sys, 0, 6),
                          {.seed = 41});
  auto r = check_all(rec, sys, pat);
  ASSERT_TRUE(r.ok) << r.error;
  std::map<ProcessId, std::vector<MsgId>> per;
  for (auto& d : rec.deliveries) per[d.p].push_back(d.m);
  for (auto& [p, order] : per) {
    std::vector<MsgId> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(order, sorted) << "at p" << p;
  }
}

TEST(MuMulticast, HelpingDeliversMessagesOfCrashedSenders) {
  // Proposition 1's reduction: with helping, a message whose submitter dies
  // before issuing it is multicast by a destination-group member, and every
  // correct member still delivers it.
  auto sys = single_group();
  FailurePattern pat(3);
  pat.crash_at(0, 0);  // the submitter of m0 never takes a step
  MuMulticast mc(sys, pat, {.seed = 3, .helping = true});
  mc.submit({0, 0, 0, 0});
  mc.submit({1, 0, 1, 0});
  auto rec = mc.run();
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(rec.multicast.size(), 2u);   // m0 entered via a helper
  EXPECT_EQ(rec.deliveries.size(), 4u);  // both messages at both survivors
}

TEST(MuMulticast, HelpingPreservesGroupSequentialOrder) {
  auto sys = single_group();
  FailurePattern pat(3);
  pat.crash_at(1, 0);  // the submitter of the middle message
  MuMulticast mc(sys, pat, {.seed = 5, .helping = true});
  mc.submit({0, 0, 0, 0});
  mc.submit({1, 0, 1, 0});
  mc.submit({2, 0, 2, 0});
  auto rec = mc.run();
  auto r = check_all(rec, sys, pat);
  ASSERT_TRUE(r.ok) << r.error;
  // Delivery respects submission order at every member (m0, m1, m2).
  std::map<ProcessId, std::vector<MsgId>> per;
  for (auto& d : rec.deliveries) per[d.p].push_back(d.m);
  for (auto& [p, order] : per)
    EXPECT_EQ(order, (std::vector<MsgId>{0, 1, 2})) << "at p" << p;
}

TEST(MuMulticast, HelpingOnFigure1UnderCrashSweep) {
  auto sys = figure1_system();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    sim::EnvironmentSampler env{.process_count = 5, .max_failures = 2,
                                .horizon = 200};
    FailurePattern pat = env.sample(rng);
    MuMulticast mc(sys, pat, {.seed = seed, .helping = true});
    for (auto& m : round_robin_workload(sys, 3)) mc.submit(m);
    auto rec = mc.run();
    auto r = check_all(rec, sys, pat);
    EXPECT_TRUE(r.ok) << r.error << " seed=" << seed;
    // Vanilla-strength termination: every submitted message to a group with a
    // correct member was multicast (helpers stand in for dead senders).
    for (auto& m : round_robin_workload(sys, 3)) {
      if ((sys.group(m.dst) & pat.correct_set()).empty()) continue;
      bool entered = false;
      for (auto& mm : rec.multicast) entered = entered || mm.id == m.id;
      EXPECT_TRUE(entered) << "message " << m.id << " never entered, seed="
                           << seed;
    }
  }
}

TEST(MuMulticast, ChordTopologyStaysLiveWhenChordIntersectionDies) {
  // Regression for the family-faulty reading (see group_system.hpp): the
  // 4-family survives the death of its chord g0∩g1 = {p0} under the literal
  // per-path reading, which would leave commit waiting forever for tuples
  // only p0 could write. The pairwise predicate declares the family faulty,
  // γ unblocks the survivors, and termination holds.
  groups::GroupSystem sys(7, {ProcessSet{0, 1, 4, 5},   // g0
                              ProcessSet{0, 2, 3, 6},   // g1
                              ProcessSet{1, 2},         // g2
                              ProcessSet{3, 4}});       // g3
  FailurePattern pat(7);
  pat.crash_at(0, 20);
  MuMulticast mc(sys, pat, {.seed = 99});
  mc.submit({0, 0, 1, 0});  // to g0, from the surviving member p1
  mc.submit({1, 1, 2, 0});  // to g1
  auto rec = mc.run();
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

// ---- property sweep: topologies x failures x seeds ---------------------------

struct SweepCase {
  const char* name;
  int topology;  // 0 figure1, 1 disjoint, 2 chain, 3 triangle, 4 single
  std::uint64_t seed;
  int failures;
  sim::Time lag;
  bool strict;
};

GroupSystem make_topology(int id) {
  switch (id) {
    case 0: return figure1_system();
    case 1: return disjoint_groups();
    case 2: return chain_groups();
    case 3: return triangle_groups();
    default: return single_group();
  }
}

class MuSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MuSweep, AllPropertiesHold) {
  const auto& c = GetParam();
  auto sys = make_topology(c.topology);
  Rng rng(c.seed);
  sim::EnvironmentSampler env{.process_count = sys.process_count(),
                              .max_failures = c.failures,
                              .horizon = 400};
  FailurePattern pat = env.sample(rng);
  auto msgs = round_robin_workload(sys, 3);
  MuMulticast mc(sys, pat,
                 {.seed = c.seed ^ 0xbeef, .fd_lag = c.lag,
                  .strict = c.strict});
  for (auto& m : msgs) mc.submit(m);
  auto rec = mc.run();
  auto r = check_all(rec, sys, pat);
  EXPECT_TRUE(r.ok) << r.error << " [faulty=" << pat.faulty_set().to_string()
                    << "]";
  if (c.strict) {
    auto s = check_strict_ordering(rec, sys);
    EXPECT_TRUE(s.ok) << s.error;
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> out;
  for (int topo = 0; topo < 5; ++topo)
    for (std::uint64_t seed = 1; seed <= 12; ++seed)
      for (int failures : {0, 2})
        out.push_back({"", topo, seed, failures,
                       seed % 3 == 0 ? sim::Time{20} : sim::Time{0},
                       seed % 4 == 0});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MuSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const auto& c = info.param;
      return "topo" + std::to_string(c.topology) + "_seed" +
             std::to_string(c.seed) + "_f" + std::to_string(c.failures);
    });

}  // namespace
}  // namespace gam::amcast
