#include "util/process_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace gam {
namespace {

TEST(ProcessSet, EmptyByDefault) {
  ProcessSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.contains(0));
}

TEST(ProcessSet, InitializerListAndContains) {
  ProcessSet s{0, 3, 7};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(-1));
  EXPECT_FALSE(s.contains(64));
}

TEST(ProcessSet, InitializerListRejectsOutOfRange) {
  // A pid outside [0, kMaxProcesses) used to index past the last word (UB);
  // now it trips the precondition.
  EXPECT_DEATH(ProcessSet({0, ProcessSet::kMaxProcesses}), "Precondition");
  EXPECT_DEATH(ProcessSet({-1}), "Precondition");
}

TEST(ProcessSet, Universe) {
  ProcessSet u = ProcessSet::universe(5);
  EXPECT_EQ(u.size(), 5);
  for (int p = 0; p < 5; ++p) EXPECT_TRUE(u.contains(p));
  EXPECT_FALSE(u.contains(5));
  EXPECT_EQ(ProcessSet::universe(64).size(), 64);
  EXPECT_EQ(ProcessSet::universe(ProcessSet::kMaxProcesses).size(),
            ProcessSet::kMaxProcesses);
  EXPECT_EQ(ProcessSet::universe(0).size(), 0);
}

TEST(ProcessSet, UniverseRejectsOutOfRange) {
  // universe(n) used to saturate to all-ones for n past the cap instead of
  // failing the contract like insert() does.
  EXPECT_DEATH(ProcessSet::universe(ProcessSet::kMaxProcesses + 1),
               "Precondition");
  EXPECT_DEATH(ProcessSet::universe(-1), "Precondition");
}

TEST(ProcessSet, WordBoundaryMembership) {
  // p = 63 / 64 / 65 straddle the first word boundary.
  ProcessSet s{63, 64, 65};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(65));
  EXPECT_FALSE(s.contains(62));
  EXPECT_FALSE(s.contains(66));
  s.erase(64);
  EXPECT_EQ(s.size(), 2);
  EXPECT_FALSE(s.contains(64));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(65));
}

TEST(ProcessSet, UniverseComplementIdentitiesAcrossWords) {
  for (int n : {1, 63, 64, 65, 127, 128, 129, ProcessSet::kMaxProcesses}) {
    ProcessSet u = ProcessSet::universe(n);
    ProcessSet full = ProcessSet::universe(ProcessSet::kMaxProcesses);
    EXPECT_EQ(u.size(), n) << n;
    EXPECT_TRUE(u.subset_of(full)) << n;
    ProcessSet comp = full - u;
    EXPECT_EQ(comp.size(), ProcessSet::kMaxProcesses - n) << n;
    EXPECT_TRUE((u & comp).empty()) << n;
    EXPECT_EQ(u | comp, full) << n;
    EXPECT_EQ(u ^ comp, full) << n;
    if (n < ProcessSet::kMaxProcesses) {
      EXPECT_FALSE(u.contains(n)) << n;
      EXPECT_EQ(comp.min(), n) << n;
    }
    if (n > 0) EXPECT_EQ(u.max(), n - 1) << n;
  }
}

TEST(ProcessSet, IterationAndFirstSpanWords) {
  ProcessSet s{200, 5, 64, 63, 128, 255};
  std::vector<ProcessId> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<ProcessId>{5, 63, 64, 128, 200, 255}));
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.min(), 5);
  EXPECT_EQ(s.max(), 255);
  EXPECT_EQ(ProcessSet::single(255).min(), 255);
  EXPECT_EQ(ProcessSet::single(64).to_string(), "{p64}");
}

TEST(ProcessSet, OrderingMatchesNumericMaskOrder) {
  // operator<=> compares words most-significant first, i.e. the numeric
  // order of the value the mask spells out — {64} > every single-word set.
  EXPECT_LT(ProcessSet{63}, ProcessSet{64});
  EXPECT_LT((ProcessSet{0, 63}), ProcessSet{64});
  EXPECT_LT(ProcessSet{1}, (ProcessSet{0, 1}));
  EXPECT_LT(ProcessSet{}, ProcessSet{0});
  EXPECT_LT(ProcessSet{64}, ProcessSet{128});
  std::set<ProcessSet> ordered{ProcessSet{64}, ProcessSet{63}, ProcessSet{0}};
  EXPECT_EQ(*ordered.begin(), ProcessSet{0});
  EXPECT_EQ(*ordered.rbegin(), ProcessSet{64});
}

TEST(ProcessSet, RandomizedAcrossWordsAgainstStdSet) {
  Rng rng(271828);
  ProcessSet s;
  std::set<ProcessId> ref;
  for (int i = 0; i < 4000; ++i) {
    auto p = static_cast<ProcessId>(
        rng.below(static_cast<std::uint64_t>(ProcessSet::kMaxProcesses)));
    if (rng.chance(0.5)) {
      s.insert(p);
      ref.insert(p);
    } else {
      s.erase(p);
      ref.erase(p);
    }
    ASSERT_EQ(s.size(), static_cast<int>(ref.size()));
    ASSERT_EQ(s.contains(p), ref.count(p) > 0);
  }
  std::vector<ProcessId> got(s.begin(), s.end());
  std::vector<ProcessId> want(ref.begin(), ref.end());
  EXPECT_EQ(got, want);
  if (!ref.empty()) {
    EXPECT_EQ(s.min(), *ref.begin());
    EXPECT_EQ(s.max(), *ref.rbegin());
  }
}

TEST(ProcessSet, InsertErase) {
  ProcessSet s;
  s.insert(5);
  EXPECT_TRUE(s.contains(5));
  s.erase(5);
  EXPECT_TRUE(s.empty());
  s.erase(5);  // erasing an absent member is a no-op
  EXPECT_TRUE(s.empty());
}

TEST(ProcessSet, SetAlgebra) {
  ProcessSet a{0, 1, 2};
  ProcessSet b{2, 3};
  EXPECT_EQ((a | b), (ProcessSet{0, 1, 2, 3}));
  EXPECT_EQ((a & b), (ProcessSet{2}));
  EXPECT_EQ((a - b), (ProcessSet{0, 1}));
  EXPECT_EQ((a ^ b), (ProcessSet{0, 1, 3}));
}

TEST(ProcessSet, SubsetAndIntersects) {
  ProcessSet a{1, 2};
  ProcessSet b{0, 1, 2, 3};
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(ProcessSet{0, 3}));
  EXPECT_TRUE(ProcessSet{}.subset_of(a));
}

TEST(ProcessSet, MinMax) {
  ProcessSet s{3, 9, 41};
  EXPECT_EQ(s.min(), 3);
  EXPECT_EQ(s.max(), 41);
  EXPECT_EQ(ProcessSet::single(63).max(), 63);
}

TEST(ProcessSet, IterationIsSortedAndComplete) {
  ProcessSet s{9, 0, 5, 63};
  std::vector<ProcessId> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<ProcessId>{0, 5, 9, 63}));
}

TEST(ProcessSet, ToString) {
  EXPECT_EQ((ProcessSet{1, 2}).to_string(), "{p1,p2}");
  EXPECT_EQ(ProcessSet{}.to_string(), "{}");
}

TEST(ProcessSet, RandomizedAgainstStdSet) {
  Rng rng(42);
  ProcessSet s;
  std::set<ProcessId> ref;
  for (int i = 0; i < 2000; ++i) {
    auto p = static_cast<ProcessId>(rng.below(64));
    if (rng.chance(0.5)) {
      s.insert(p);
      ref.insert(p);
    } else {
      s.erase(p);
      ref.erase(p);
    }
    ASSERT_EQ(s.size(), static_cast<int>(ref.size()));
    ASSERT_EQ(s.empty(), ref.empty());
    ASSERT_EQ(s.contains(p), ref.count(p) > 0);
  }
  std::vector<ProcessId> got(s.begin(), s.end());
  std::vector<ProcessId> want(ref.begin(), ref.end());
  EXPECT_EQ(got, want);
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
  Rng c(7);
  Rng d = c.fork();
  EXPECT_NE(c.next(), d.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.below(10);
    ASSERT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    auto v = r.range(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

}  // namespace
}  // namespace gam
