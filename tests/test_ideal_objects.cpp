#include "objects/ideal.hpp"

#include <gtest/gtest.h>

namespace gam::objects {
namespace {

TEST(LogEntry, Factories) {
  auto m = LogEntry::message(7);
  EXPECT_EQ(m.kind, LogEntry::kMessage);
  EXPECT_EQ(m.m, 7);
  auto pt = LogEntry::pos_tuple(7, 2, 5);
  EXPECT_EQ(pt.kind, LogEntry::kPosTuple);
  EXPECT_EQ(pt.h, 2);
  EXPECT_EQ(pt.i, 5);
  auto st = LogEntry::stab_tuple(7, 2);
  EXPECT_EQ(st.kind, LogEntry::kStabTuple);
  EXPECT_NE(m, pt);
  EXPECT_NE(pt, st);
}

TEST(LogEntry, TotalOrderIsStrict) {
  auto a = LogEntry::message(1);
  auto b = LogEntry::message(2);
  auto c = LogEntry::pos_tuple(1, 0, 0);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(a < c);  // kind is the major key
}

TEST(Log, AppendAssignsIncreasingSlotsFromOne) {
  Log log;
  EXPECT_EQ(log.append(LogEntry::message(1), 0), 1);
  EXPECT_EQ(log.append(LogEntry::message(2), 0), 2);
  EXPECT_EQ(log.append(LogEntry::message(3), 0), 3);
}

TEST(Log, AppendIsIdempotent) {
  Log log;
  log.append(LogEntry::message(1), 0);
  EXPECT_EQ(log.append(LogEntry::message(1), 1), 1);  // same position
  EXPECT_EQ(log.size(), 1u);
}

TEST(Log, PosReturnsZeroWhenAbsent) {
  Log log;
  EXPECT_EQ(log.pos(LogEntry::message(9)), 0);
  log.append(LogEntry::message(9), 0);
  EXPECT_EQ(log.pos(LogEntry::message(9)), 1);
}

TEST(Log, BumpMovesToMaxOfCurrentAndTarget) {
  Log log;
  log.append(LogEntry::message(1), 0);  // slot 1
  log.bump_and_lock(LogEntry::message(1), 5, 0);
  EXPECT_EQ(log.pos(LogEntry::message(1)), 5);
  EXPECT_TRUE(log.locked(LogEntry::message(1)));

  log.append(LogEntry::message(2), 0);  // head moved past the bump: slot 6
  EXPECT_EQ(log.pos(LogEntry::message(2)), 6);
}

TEST(Log, BumpBelowCurrentKeepsCurrent) {
  Log log;
  log.append(LogEntry::message(1), 0);
  log.append(LogEntry::message(2), 0);  // slot 2
  log.bump_and_lock(LogEntry::message(2), 1, 0);
  EXPECT_EQ(log.pos(LogEntry::message(2)), 2);  // max(1, 2)
}

TEST(Log, LockedDatumCannotBeBumpedAgain) {
  Log log;
  log.append(LogEntry::message(1), 0);
  log.bump_and_lock(LogEntry::message(1), 4, 0);
  log.bump_and_lock(LogEntry::message(1), 9, 0);  // no-op: already locked
  EXPECT_EQ(log.pos(LogEntry::message(1)), 4);
}

TEST(Log, OrderComparesSlotsThenEntries) {
  Log log;
  log.append(LogEntry::message(5), 0);  // slot 1
  log.append(LogEntry::message(3), 0);  // slot 2
  EXPECT_TRUE(log.before(LogEntry::message(5), LogEntry::message(3)));
  // Bump both into the same slot: ties break by the a-priori order (<).
  log.bump_and_lock(LogEntry::message(5), 7, 0);
  log.bump_and_lock(LogEntry::message(3), 7, 0);
  EXPECT_TRUE(log.before(LogEntry::message(3), LogEntry::message(5)));
  EXPECT_FALSE(log.before(LogEntry::message(5), LogEntry::message(3)));
}

TEST(Log, BeforeIsFalseWhenEitherAbsent) {
  Log log;
  log.append(LogEntry::message(1), 0);
  EXPECT_FALSE(log.before(LogEntry::message(1), LogEntry::message(2)));
  EXPECT_FALSE(log.before(LogEntry::message(2), LogEntry::message(1)));
}

TEST(Log, MessagesBeforeFiltersKindAndOrder) {
  Log log;
  log.append(LogEntry::message(1), 0);
  log.append(LogEntry::pos_tuple(1, 0, 1), 0);
  log.append(LogEntry::message(2), 0);
  log.append(LogEntry::message(3), 0);
  auto before = log.messages_before(LogEntry::message(3));
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0].m, 1);
  EXPECT_EQ(before[1].m, 2);
}

TEST(Log, EntriesIfSortedByLogOrder) {
  Log log;
  log.append(LogEntry::message(4), 0);
  log.append(LogEntry::message(2), 0);
  log.bump_and_lock(LogEntry::message(4), 10, 0);
  auto msgs = log.entries_if(
      [](const LogEntry& e) { return e.kind == LogEntry::kMessage; });
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].m, 2);  // slot 2 < slot 10
  EXPECT_EQ(msgs[1].m, 4);
}

TEST(Log, JournalRecordsAccesses) {
  AccessJournal j;
  Log log(42);
  log.append(LogEntry::message(1), 3, &j);
  log.bump_and_lock(LogEntry::message(1), 2, 4, &j);
  ASSERT_EQ(j.accesses().size(), 2u);
  EXPECT_EQ(j.accesses()[0].by, 3);
  EXPECT_EQ(j.accesses()[0].object, 42);
  EXPECT_EQ(j.accesses()[0].op, Access::kAppend);
  EXPECT_EQ(j.accesses()[1].op, Access::kBump);
  EXPECT_EQ(j.active(), (ProcessSet{3, 4}));
}

TEST(Consensus, FirstProposalWins) {
  Consensus c;
  EXPECT_EQ(c.propose(10, 0), 10);
  EXPECT_EQ(c.propose(20, 1), 10);
  EXPECT_EQ(c.propose(10, 2), 10);
  EXPECT_EQ(*c.decided(), 10);
}

TEST(Consensus, UndecidedInitially) {
  Consensus c;
  EXPECT_FALSE(c.decided().has_value());
}

TEST(AdoptCommit, AllSameValueCommits) {
  AdoptCommit ac;
  auto r1 = ac.propose(5, 0);
  auto r2 = ac.propose(5, 1);
  EXPECT_EQ(r1.grade, AdoptCommit::Grade::kCommit);
  EXPECT_EQ(r2.grade, AdoptCommit::Grade::kCommit);
  EXPECT_EQ(r1.value, 5);
  EXPECT_EQ(r2.value, 5);
}

TEST(AdoptCommit, ConflictAdoptsFirstValue) {
  AdoptCommit ac;
  auto r1 = ac.propose(5, 0);
  auto r2 = ac.propose(7, 1);
  auto r3 = ac.propose(5, 2);  // matches first value but after conflict
  EXPECT_EQ(r1.grade, AdoptCommit::Grade::kCommit);
  EXPECT_EQ(r2.grade, AdoptCommit::Grade::kAdopt);
  EXPECT_EQ(r2.value, 5);  // agreement: everyone carries the first value
  EXPECT_EQ(r3.grade, AdoptCommit::Grade::kAdopt);
  EXPECT_EQ(r3.value, 5);
}

}  // namespace
}  // namespace gam::objects
