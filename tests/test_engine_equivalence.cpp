// Engine-equivalence gate: the incremental guarded-action engine must be
// observationally identical to the scan engine — same action of the same
// process at every step, seed for seed, across topologies, failure patterns,
// detector lags and option variants. The scan engine is the literal reading
// of Algorithm 1's pseudo-code; any divergence is an incremental-engine bug
// (a missing invalidation, a stale cache, or a changed tie-break order).
//
// On a mismatch the test dumps both delivery-event traces to disk in the
// tools/trace_diff format and prints the first divergent event with context
// (the same report `trace_diff A.trace B.trace` produces offline), plus the
// first divergent *action* firing from the full structured traces.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amcast/mu_multicast.hpp"
#include "amcast/trace.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace gam::amcast {
namespace {

using groups::GroupSystem;

// One run of a (topology, pattern, options, workload) cell under a given
// engine, with both the structured action trace and the delivery event
// stream recorded.
struct EngineRun {
  RunRecord record;
  Trace actions;
  sim::RecorderSink events;
};

EngineRun run_engine(const GroupSystem& sys, const sim::FailurePattern& pat,
                     MuMulticast::Options opt,
                     const std::vector<MulticastMessage>& msgs,
                     MuMulticast::Engine engine) {
  opt.engine = engine;
  EngineRun out;
  MuMulticast mc(sys, pat, opt);
  mc.attach_trace(&out.actions);
  mc.set_event_sink(&out.events);
  for (const auto& m : msgs) mc.submit(m);
  out.record = mc.run();
  return out;
}

std::string dump_dir() {
  const char* t = std::getenv("TEST_TMPDIR");
  return t ? t : "/tmp";
}

// Compares two runs event-for-event; on mismatch writes both delivery traces
// for trace_diff and fails with the localized divergence report.
void expect_equivalent(const char* label, const EngineRun& scan,
                       const EngineRun& inc) {
  // Delivery record: the user-visible output of the protocol.
  ASSERT_EQ(scan.record.deliveries.size(), inc.record.deliveries.size())
      << label;
  for (size_t i = 0; i < scan.record.deliveries.size(); ++i) {
    const auto& a = scan.record.deliveries[i];
    const auto& b = inc.record.deliveries[i];
    ASSERT_TRUE(a.p == b.p && a.m == b.m && a.t == b.t &&
                a.local_seq == b.local_seq)
        << label << ": delivery " << i << " differs (scan p" << a.p << " m"
        << a.m << " t" << a.t << " vs incremental p" << b.p << " m" << b.m
        << " t" << b.t << ")";
  }

  // Run shape.
  EXPECT_EQ(scan.record.steps, inc.record.steps) << label;
  EXPECT_EQ(scan.record.quiescent, inc.record.quiescent) << label;
  EXPECT_EQ(scan.record.multicast.size(), inc.record.multicast.size()) << label;
  EXPECT_EQ(scan.record.active, inc.record.active) << label;

  // Full action stream: catches divergences that cancel out downstream.
  const auto& sa = scan.actions.events();
  const auto& ia = inc.actions.events();
  size_t n = std::min(sa.size(), ia.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& a = sa[i];
    const auto& b = ia[i];
    bool same = a.t == b.t && a.p == b.p && a.action == b.action &&
                a.m == b.m && a.h == b.h && a.position == b.position;
    ASSERT_TRUE(same) << label << ": action " << i << " diverges:\n  scan:  t="
                      << a.t << " p" << a.p << " " << action_name(a.action)
                      << " m" << a.m << "\n  incr:  t=" << b.t << " p" << b.p
                      << " " << action_name(b.action) << " m" << b.m;
  }
  ASSERT_EQ(sa.size(), ia.size()) << label << ": action counts differ";

  // Delivery-event stream (what the sweep determinism gate hashes). On a
  // mismatch, dump both traces in trace_diff format and print its report.
  if (scan.events.hash() != inc.events.hash()) {
    std::string base = dump_dir() + "/engine_equiv." + label;
    std::string pa = base + ".scan.trace", pb = base + ".incremental.trace";
    scan.events.write(pa);
    inc.events.write(pb);
    auto div = sim::first_divergence(scan.events.events(), inc.events.events());
    std::string report =
        div ? sim::render_divergence(scan.events.events(), inc.events.events(),
                                     *div)
            : std::string("(hash differs but streams compare equal?)");
    FAIL() << label << ": delivery-event hash mismatch\n"
           << report << "dumped: " << pa << " " << pb
           << "\n(inspect offline with: trace_diff " << pa << " " << pb << ")";
  }
}

// Every cell's recorded event stream also replays through the online
// invariant monitors (integrity / agreement / acyclicity): equivalence
// between engines is worthless if both are equivalently wrong. End-of-run
// obligations only bind when the run quiesced under an unrestricted
// scheduler — a fair-set-restricted or cut-off run legitimately leaves
// deliveries pending at the excluded processes.
void expect_invariants(const char* label, const GroupSystem& sys,
                       const sim::FailurePattern& pat,
                       const MuMulticast::Options& opt, const EngineRun& run) {
  sim::MonitorConfig cfg;
  for (GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  cfg.faulty = pat.faulty_set();
  sim::InvariantMonitors mons(cfg);
  sim::feed(mons, run.events.events());
  mons.finalize(run.record.quiescent && opt.fair_set.empty());
  for (const auto& v : mons.violations())
    ADD_FAILURE() << label << ": " << sim::format_violation(v);
}

void sweep_cell(const char* label, const GroupSystem& sys,
                const sim::FailurePattern& pat, MuMulticast::Options opt,
                const std::vector<MulticastMessage>& msgs) {
  auto scan = run_engine(sys, pat, opt, msgs, MuMulticast::Engine::kScan);
  auto inc =
      run_engine(sys, pat, opt, msgs, MuMulticast::Engine::kIncremental);
  expect_equivalent(label, scan, inc);
  expect_invariants(label, sys, pat, opt, inc);
}

TEST(EngineEquivalence, DisjointK8SeedSweep) {
  auto sys = groups::disjoint_system(8, 2);
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 3);
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    sweep_cell(("disjoint_k8_s" + std::to_string(seed)).c_str(), sys, pat,
               {.seed = seed}, msgs);
}

TEST(EngineEquivalence, Figure1FailureFreeSeedSweep) {
  auto sys = groups::figure1_system();
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 3);
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    sweep_cell(("fig1_s" + std::to_string(seed)).c_str(), sys, pat,
               {.seed = seed}, msgs);
}

TEST(EngineEquivalence, Figure1CrashEnvironments) {
  // The bench's figure1_crashes cell: sampled crash patterns, detector lag —
  // the paths where a missed failure-detector invalidation would show.
  auto sys = groups::figure1_system();
  auto msgs = round_robin_workload(sys, 2);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    sim::EnvironmentSampler env{
        .process_count = 5, .max_failures = 2, .horizon = 100};
    sim::FailurePattern pat = env.sample(rng);
    sweep_cell(("fig1_crash_s" + std::to_string(seed)).c_str(), sys, pat,
               {.seed = seed, .fd_lag = (seed % 3) * 2}, msgs);
  }
}

TEST(EngineEquivalence, ChainAndTriangleTopologies) {
  GroupSystem chain(5, {ProcessSet{0, 1}, ProcessSet{1, 2, 3},
                        ProcessSet{3, 4}});
  GroupSystem triangle(3, {ProcessSet{0, 1}, ProcessSet{1, 2},
                           ProcessSet{2, 0}});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::FailurePattern pc(chain.process_count());
    sweep_cell(("chain_s" + std::to_string(seed)).c_str(), chain, pc,
               {.seed = seed}, round_robin_workload(chain, 3));
    sim::FailurePattern pt(triangle.process_count());
    sweep_cell(("triangle_s" + std::to_string(seed)).c_str(), triangle, pt,
               {.seed = seed}, round_robin_workload(triangle, 3));
  }
}

TEST(EngineEquivalence, StrictVariant) {
  auto sys = groups::figure1_system();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::FailurePattern pat(sys.process_count());
    if (seed % 2 == 0) pat.crash_at(3, 5);  // exercise the 1^{g∩h} flips
    sweep_cell(("strict_s" + std::to_string(seed)).c_str(), sys, pat,
               {.seed = seed, .fd_lag = 2, .strict = true},
               round_robin_workload(sys, 2));
  }
}

TEST(EngineEquivalence, HelpingWithCrashedSenders) {
  // Helping enables a guard purely by the clock crossing a raw crash time —
  // the invalidation path that has no log mutation attached.
  auto sys = groups::disjoint_system(4, 2);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::FailurePattern pat(sys.process_count());
    pat.crash_at(0, 3 + static_cast<sim::Time>(seed % 4));
    sweep_cell(("helping_s" + std::to_string(seed)).c_str(), sys, pat,
               {.seed = seed, .fd_lag = 1, .helping = true},
               round_robin_workload(sys, 3));
  }
}

TEST(EngineEquivalence, FairSetRestrictedRuns) {
  auto sys = groups::figure1_system();
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 2);
  // Restrict the scheduler to p0..p3 (g3 = {p0,p3,p4} keeps a member).
  ProcessSet fair{0, 1, 2, 3};
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    sweep_cell(("fair_s" + std::to_string(seed)).c_str(), sys, pat,
               {.seed = seed, .max_steps = 4096, .fair_set = fair}, msgs);
}

TEST(EngineEquivalence, ExternalClockTickDriven) {
  // The emulation harness's driving pattern: the orchestrator owns the clock
  // via set_time and steps each process once per tick. Exercises the
  // transition-crossing path of set_time (only ticks that cross a μ
  // transition may refresh caches).
  auto sys = groups::figure1_system();
  auto msgs = round_robin_workload(sys, 2);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::FailurePattern pat(sys.process_count());
    pat.crash_at(1, 10 + static_cast<sim::Time>(seed));
    MuMulticast::Options opt{.seed = seed, .fd_lag = 2,
                             .external_clock = true};
    EngineRun runs[2];
    for (int e = 0; e < 2; ++e) {
      auto& out = runs[e];
      opt.engine = e == 0 ? MuMulticast::Engine::kScan
                          : MuMulticast::Engine::kIncremental;
      MuMulticast mc(sys, pat, opt);
      mc.attach_trace(&out.actions);
      mc.set_event_sink(&out.events);
      for (const auto& m : msgs) mc.submit(m);
      for (sim::Time t = 0; t < 200; ++t) {
        mc.set_time(t);
        for (ProcessId p = 0; p < sys.process_count(); ++p)
          mc.step_process(p);
      }
      out.record = mc.partial_record();
    }
    expect_equivalent(("tick_s" + std::to_string(seed)).c_str(), runs[0],
                      runs[1]);
  }
}

}  // namespace
}  // namespace gam::amcast
