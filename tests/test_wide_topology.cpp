// Coverage for the widened id space: the IdPacker ballot/timestamp helper,
// the GroupPairIndex flat (g,h) layout, the sparse cyclic-family fallback
// for big intersection-graph components, and 128-group / 256-process
// topologies running Algorithm 1 and the RunSpec-backed ReplicatedMulticast
// end to end with the invariant monitors clean.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/spec.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"
#include "util/packing.hpp"
#include "util/process_set.hpp"

namespace gam {
namespace {

// ---- IdPacker ---------------------------------------------------------------

TEST(IdPacker, LegacyStrideForSmallScopes) {
  // Every scope whose ids fit below 64 keeps the historical stride, so
  // packed ballots in recorded seed traces are unchanged.
  auto p = IdPacker::for_set(ProcessSet::universe(5));
  EXPECT_EQ(p.stride(), IdPacker::kLegacyStride);
  EXPECT_EQ(p.pack(3, 2), 3 * 64 + 2);
  EXPECT_EQ(p.major_of(3 * 64 + 2), 3);
  EXPECT_EQ(p.id_of(3 * 64 + 2), 2);
  EXPECT_EQ(IdPacker::for_set(ProcessSet{63}).stride(),
            IdPacker::kLegacyStride);
}

TEST(IdPacker, WideStrideOnceAnIdReachesSixtyFour) {
  auto p = IdPacker::for_set(ProcessSet{0, 64});
  EXPECT_EQ(p.stride(), IdPacker::kWideStride);
  // The legacy stride would alias (round 1, id 0) with (round 0, id 64);
  // the wide stride keeps them distinct.
  EXPECT_NE(p.pack(0, 64), p.pack(1, 0));
  EXPECT_EQ(p.major_of(p.pack(7, 200)), 7);
  EXPECT_EQ(p.id_of(p.pack(7, 200)), 200);
}

TEST(IdPacker, PackedOrderIsLexicographic) {
  for (auto p : {IdPacker::for_limit(8), IdPacker::for_limit(200)}) {
    // Higher rounds beat lower rounds regardless of the id minor.
    EXPECT_LT(p.pack(0, static_cast<int>(p.stride()) - 1), p.pack(1, 0));
    EXPECT_LT(p.pack(5, 3), p.pack(5, 4));
  }
}

TEST(IdPacker, LargeRoundsDoNotOverflow) {
  // round * 64 + self used to be computed in int; int64 packing survives
  // rounds past 2^31.
  auto p = IdPacker::for_limit(64);
  std::int64_t big = std::int64_t{1} << 40;
  EXPECT_EQ(p.major_of(p.pack(big, 7)), big);
  EXPECT_EQ(p.id_of(p.pack(big, 7)), 7);
}

TEST(IdPackerDeathTest, ContractViolations) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto p = IdPacker::for_limit(8);
  EXPECT_DEATH(p.pack(0, 64), "Precondition");   // id past the stride
  EXPECT_DEATH(p.pack(-1, 0), "Precondition");   // negative major
  EXPECT_DEATH(IdPacker::for_set(ProcessSet{}), "Precondition");
}

// ---- GroupPairIndex ---------------------------------------------------------

TEST(GroupPairIndex, NormalizesAndSizes) {
  groups::GroupPairIndex idx(5);
  EXPECT_EQ(idx.size(), 25);
  EXPECT_EQ(idx.flat(3, 1), idx.flat(1, 3));
  EXPECT_EQ(idx.flat(1, 3), 1 * 5 + 3);
  EXPECT_EQ(idx.flat(4, 4), 24);
  EXPECT_EQ(idx.key(3, 1), static_cast<std::int64_t>(idx.flat(1, 3)));
}

TEST(GroupPairIndex, NoAliasingPastSixtyFourGroups) {
  // The old `lo * 64 + hi` pack aliased (0, 65) with (1, 1). Every
  // normalized pair must map to a distinct slot inside [0, size()).
  groups::GroupPairIndex idx(groups::GroupSystem::kMaxGroups);
  std::vector<int> hit(static_cast<size_t>(idx.size()), 0);
  for (int g = 0; g < idx.group_count(); ++g)
    for (int h = g; h < idx.group_count(); ++h) {
      int f = idx.flat(g, h);
      ASSERT_GE(f, 0);
      ASSERT_LT(f, idx.size());
      ASSERT_EQ(hit[static_cast<size_t>(f)]++, 0) << g << "," << h;
    }
}

TEST(GroupPairIndexDeathTest, RejectsForeignGroupIds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  groups::GroupPairIndex idx(4);
  EXPECT_DEATH(idx.flat(0, 4), "Precondition");
  EXPECT_DEATH(idx.flat(-1, 0), "Precondition");
}

// ---- sparse cyclic-family fallback ------------------------------------------

TEST(SparseFamilies, BigComponentFallbackFindsTheTriangle) {
  // A chain of 22 groups is one 22-member connected component — past the
  // exhaustive per-component bound — whose only cyclic family is the
  // triangle g0-g1-g2 closed by a shared process. The fallback must find
  // exactly it.
  std::vector<ProcessSet> gs;
  for (int i = 0; i < 22; ++i) gs.push_back(ProcessSet{i, i + 1});
  gs[0].insert(50);  // close g0-g2: p50 sits in both
  gs[2].insert(50);
  groups::GroupSystem sys(51, gs);
  auto fams = sys.cyclic_families();
  ASSERT_EQ(fams.size(), 1u);
  EXPECT_EQ(fams.front(), groups::family_of({0, 1, 2}));
  EXPECT_TRUE(sys.is_cyclic(fams.front()));
}

TEST(SparseFamilies, CyclicNeighborsStillWorkPastTheBound) {
  // The γ machinery consumes families_of_process; the fallback's results
  // must flow through it. p1 sits in g0∩g1 of the triangle above.
  std::vector<ProcessSet> gs;
  for (int i = 0; i < 22; ++i) gs.push_back(ProcessSet{i, i + 1});
  gs[0].insert(50);
  gs[2].insert(50);
  groups::GroupSystem sys(51, gs);
  auto fams = sys.families_of_process(1);
  ASSERT_EQ(fams.size(), 1u);
  EXPECT_EQ(fams.front(), groups::family_of({0, 1, 2}));
}

// ---- wide topologies end to end ---------------------------------------------

TEST(WideTopology, ClusteredRingSystemShape) {
  auto sys = groups::clustered_ring_system(32, 4, 2);
  EXPECT_EQ(sys.process_count(), 256);
  EXPECT_EQ(sys.group_count(), 128);
  // One cyclic family per cluster: its whole 4-ring.
  auto fams = sys.cyclic_families();
  ASSERT_EQ(fams.size(), 32u);
  for (int c = 0; c < 32; ++c)
    EXPECT_TRUE(std::count(fams.begin(), fams.end(),
                           groups::family_of({4 * c, 4 * c + 1, 4 * c + 2,
                                              4 * c + 3})) == 1)
        << "cluster " << c;
}

TEST(WideTopology, MuMulticastRunsCleanAndDeterministic) {
  // Algorithm 1 on 128 groups / 256 processes: every message delivers, the
  // integrity/agreement/acyclicity monitors stay silent, and two identical
  // runs produce identical traces.
  auto run = [](sim::RecorderSink* rec) {
    auto sys = groups::clustered_ring_system(32, 4, 2);
    sim::FailurePattern pat(sys.process_count());
    amcast::MuMulticast mc(sys, pat, {.seed = 9, .max_steps = 1u << 22});
    mc.set_event_sink(rec);
    for (auto& m : amcast::round_robin_workload(sys, 1)) mc.submit(m);
    return mc.run();
  };
  sim::RecorderSink a;
  auto record = run(&a);
  EXPECT_TRUE(record.quiescent);

  auto sys = groups::clustered_ring_system(32, 4, 2);
  // 128 messages, each delivered by its 3-member destination group.
  EXPECT_EQ(record.deliveries.size(), 384u);
  sim::FailurePattern pat(sys.process_count());
  auto spec = amcast::check_all(record, sys, pat);
  EXPECT_TRUE(spec.ok) << spec.error;

  sim::MonitorConfig cfg;
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  cfg.require_multicast = true;
  sim::InvariantMonitors mons(cfg);
  sim::feed(mons, a.events());
  mons.finalize(record.quiescent);
  EXPECT_TRUE(mons.ok()) << sim::format_violation(mons.violations().front());
  EXPECT_GT(mons.integrity().events_seen(), 0u);

  sim::RecorderSink b;
  run(&b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.events().size(), b.events().size());
}

TEST(WideTopology, ReplicatedMulticastScenarioRunsClean) {
  // The RunSpec-backed World runtime at the same scale: 128 per-group Paxos
  // logs across 256 processes (ReplicatedMulticast requires pairwise-disjoint
  // groups), monitors clean, trace deterministic.
  auto run = [](sim::TraceSink* sink) {
    auto sys = groups::disjoint_system(128, 2);
    sim::FailurePattern pat(sys.process_count());
    amcast::ReplicatedMulticast rm(sys, pat, {.seed = 11});
    rm.world().set_trace_sink(sink);
    for (auto& m : amcast::round_robin_workload(sys, 1)) rm.submit(m);
    return rm.run();
  };
  sim::RecorderSink rec;
  auto record = run(&rec);
  EXPECT_TRUE(record.quiescent);
  EXPECT_EQ(record.deliveries.size(), 256u);  // 128 messages x 2 members

  auto sys = groups::disjoint_system(128, 2);
  sim::MonitorConfig cfg;
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  // World traces number protocols kTraceBase+g
  cfg.protocol_base = amcast::ReplicatedMulticast::kTraceBase;
  cfg.require_multicast = false; // delivery-side trace only
  sim::InvariantMonitors mons(cfg);
  sim::feed(mons, rec.events());
  mons.finalize(record.quiescent);
  EXPECT_TRUE(mons.ok()) << sim::format_violation(mons.violations().front());

  sim::HashingSink again;
  run(&again);
  EXPECT_EQ(rec.hash(), again.hash());
}

}  // namespace
}  // namespace gam
