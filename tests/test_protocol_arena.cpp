// The Protocol interface / registry arena tests (ISSUE 10):
//
//   - registry sanity: lookup by name and trace base, the names() listing;
//   - cross-protocol agreement: every registered protocol, fed the same
//     conflict-classed workload on a crash-free disjoint topology, produces
//     the same delivery *set* (addressee-complete, exactly-once) — only the
//     order may differ between protocols;
//   - a monitor sweep per protocol over Figure-1-style sampled crash
//     environments (descriptor-compatible: non-crash-tolerant protocols run
//     the crash-free pattern, requires_disjoint protocols run on a disjoint
//     topology, partition-timestamp protocols skip environments that kill a
//     covering partition's majority);
//   - conflict_workload determinism: the same seed yields the same
//     commuting-set partition, rate<=0 yields pairwise-distinct classes,
//     rate 1 a single class;
//   - per-protocol run determinism: same seed, same trace hash.
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "amcast/baselines.hpp"
#include "amcast/protocol.hpp"
#include "amcast/timestamp_multicast.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"

namespace gam::amcast {
namespace {

std::vector<MulticastMessage> classed_workload(const groups::GroupSystem& sys,
                                               double rate, int per_group,
                                               std::uint64_t seed) {
  std::vector<groups::GroupId> targets;
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    targets.push_back(g);
  Rng rng(seed);
  return conflict_workload(sys, targets, per_group, rate, rng);
}

bool partitions_majority_alive(const groups::GroupSystem& sys,
                               const sim::FailurePattern& pat) {
  for (const auto& part : PartitionedMulticast::finest_partitions(sys)) {
    int alive = 0;
    for (ProcessId p : part)
      if (!pat.faulty(p)) ++alive;
    if (2 * alive <= part.size()) return false;
  }
  return true;
}

bool uses_partition_logs(const ProtocolDescriptor& d) {
  return d.trace_base == TimestampMulticast::kWhiteBoxTraceBase ||
         d.trace_base == TimestampMulticast::kGenericTraceBase;
}

// ---- registry ---------------------------------------------------------------

TEST(ProtocolRegistry, FindsEveryDescriptorByNameAndListsThem) {
  const auto& reg = ProtocolRegistry::instance();
  ASSERT_GE(reg.all().size(), 5u);
  std::string names = reg.names();
  for (const auto& d : reg.all()) {
    const ProtocolDescriptor* found = reg.find(d.name);
    ASSERT_NE(found, nullptr) << d.name;
    EXPECT_STREQ(found->name, d.name);
    EXPECT_NE(names.find(d.name), std::string::npos) << d.name;
  }
  EXPECT_EQ(reg.find("no-such-protocol"), nullptr);
  // Distinct trace bases resolve back to a descriptor carrying that base
  // (base 0 is shared by the Algorithm-1 family; any member is acceptable).
  for (const auto& d : reg.all())
    EXPECT_EQ(reg.find(d.trace_base)->trace_base, d.trace_base);
}

// ---- cross-protocol agreement ----------------------------------------------

TEST(ProtocolArena, AllProtocolsAgreeOnTheDeliverySet) {
  auto sys = groups::disjoint_system(4, 3);
  sim::FailurePattern pat(sys.process_count());
  auto wl = classed_workload(sys, 0.5, 2, 7);

  std::map<std::string, std::set<std::pair<ProcessId, MsgId>>> delivered;
  for (const auto& d : ProtocolRegistry::instance().all()) {
    ProtocolOptions opt;
    opt.seed = 7;
    auto p = d.make(sys, pat, opt);
    for (const auto& m : wl) p->submit(m);
    RunRecord record = p->run();
    EXPECT_TRUE(record.quiescent) << d.name;
    auto& set = delivered[d.name];
    for (const auto& del : record.deliveries) {
      EXPECT_TRUE(set.emplace(del.p, del.m).second)
          << d.name << ": duplicate delivery of " << del.m << " at " << del.p;
    }
    // Addressee-complete: every member of dst(m) delivers m.
    size_t want = 0;
    for (const auto& m : wl) want += static_cast<size_t>(sys.group(m.dst).size());
    EXPECT_EQ(set.size(), want) << d.name;
  }
  const auto& reference = delivered.begin()->second;
  for (const auto& [name, set] : delivered)
    EXPECT_EQ(set, reference) << name << " vs " << delivered.begin()->first;
}

// ---- monitored crash sweep --------------------------------------------------

TEST(ProtocolArena, MonitorsStayCleanUnderSampledCrashEnvironments) {
  const int kSeeds = 12;
  for (const auto& d : ProtocolRegistry::instance().all()) {
    auto sys = d.requires_disjoint ? groups::disjoint_system(4, 3)
                                   : groups::figure1_system();
    for (int s = 1; s <= kSeeds; ++s) {
      sim::FailurePattern pat(sys.process_count());
      if (d.crash_tolerant) {
        Rng rng(static_cast<std::uint64_t>(s));
        sim::EnvironmentSampler env{.process_count = sys.process_count(),
                                    .max_failures = 2,
                                    .horizon = 100};
        pat = env.sample(rng);
      }
      if (uses_partition_logs(d) && !partitions_majority_alive(sys, pat))
        continue;

      ProtocolOptions opt;
      opt.seed = static_cast<std::uint64_t>(s);
      auto wl = classed_workload(sys, d.conflict_aware ? 0.5 : 1.0, 2,
                                 static_cast<std::uint64_t>(s));
      // A sender crashed at t=0 never multicasts; keep the population uniform
      // by reassigning to an alive destination member (as the arena does).
      for (auto& m : wl) {
        if (!pat.faulty(m.src)) continue;
        for (ProcessId p : sys.group(m.dst))
          if (!pat.faulty(p)) {
            m.src = p;
            break;
          }
      }

      sim::RecorderSink rec;
      auto p = d.make(sys, pat, opt);
      p->set_event_sink(&rec);
      for (const auto& m : wl) p->submit(m);
      RunRecord record = p->run();
      ASSERT_TRUE(record.quiescent) << d.name << " seed " << s;

      sim::MonitorConfig mc;
      for (groups::GroupId g = 0; g < sys.group_count(); ++g)
        mc.groups.push_back(sys.group(g));
      mc.protocol_base = d.trace_base;
      mc.require_multicast = d.emits_multicast_events;
      mc.faulty = pat.faulty_set();
      if (d.conflict_aware)
        for (const auto& m : wl) mc.conflict_class[m.id] = m.conflict_class;
      sim::InvariantMonitors mons(mc);
      sim::feed(mons, rec.events());
      mons.finalize(record.quiescent);
      EXPECT_TRUE(mons.ok())
          << d.name << " seed " << s << ": "
          << sim::format_violation(mons.violations().front());
    }
  }
}

// ---- conflict workload determinism ------------------------------------------

TEST(ConflictWorkload, SameSeedSamePartition) {
  auto sys = groups::disjoint_system(6, 2);
  auto a = classed_workload(sys, 0.5, 4, 42);
  auto b = classed_workload(sys, 0.5, 4, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].conflict_class, b[i].conflict_class);
  }
  // A different seed draws a different partition (overwhelmingly likely for
  // 24 two-way coin flips; pinned here as a regression guard).
  auto c = classed_workload(sys, 0.5, 4, 43);
  bool same = true;
  for (size_t i = 0; i < a.size(); ++i)
    same &= a[i].conflict_class == c[i].conflict_class;
  EXPECT_FALSE(same);
}

TEST(ConflictWorkload, RateEndpoints) {
  auto sys = groups::disjoint_system(6, 2);
  // rate <= 0: every message its own class — nothing conflicts.
  auto free_wl = classed_workload(sys, 0.0, 4, 1);
  std::set<std::int32_t> classes;
  for (const auto& m : free_wl) EXPECT_TRUE(classes.insert(m.conflict_class).second);
  // rate 1: a single class — the classical total-order relation.
  for (const auto& m : classed_workload(sys, 1.0, 4, 1))
    EXPECT_EQ(m.conflict_class, 0);
  // rate 0.5: two classes.
  for (const auto& m : classed_workload(sys, 0.5, 4, 1)) {
    EXPECT_GE(m.conflict_class, 0);
    EXPECT_LT(m.conflict_class, 2);
  }
}

// ---- per-protocol run determinism -------------------------------------------

TEST(ProtocolArena, SameSeedSameTraceHashPerProtocol) {
  auto sys = groups::disjoint_system(4, 3);
  sim::FailurePattern pat(sys.process_count());
  for (const auto& d : ProtocolRegistry::instance().all()) {
    auto hash_of = [&] {
      ProtocolOptions opt;
      opt.seed = 5;
      sim::HashingSink sink;
      auto p = d.make(sys, pat, opt);
      p->set_event_sink(&sink);
      for (const auto& m : classed_workload(sys, 0.5, 2, 5)) p->submit(m);
      p->run();
      return sink.hash();
    };
    EXPECT_EQ(hash_of(), hash_of()) << d.name;
  }
}

}  // namespace
}  // namespace gam::amcast
