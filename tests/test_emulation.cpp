// Tests for the necessity constructions (§5, §6): the emulated detectors must
// satisfy their class axioms when extracted from the black-box algorithm.
#include <gtest/gtest.h>

#include "emulation/gamma_emulation.hpp"
#include "emulation/gamma_from_indicators.hpp"
#include "emulation/indicator_emulation.hpp"
#include "emulation/omega_extraction.hpp"
#include "emulation/sigma_extraction.hpp"
#include "fd/checkers.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"

namespace gam::emulation {
namespace {

using groups::figure1_system;
using sim::FailurePattern;

constexpr Time kCrashHorizon = 60;
constexpr Time kRunHorizon = 500;

// ---- Algorithm 2: Σ extraction -------------------------------------------------

class SigmaExtractionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SigmaExtractionSweep, AxiomsOnTwoGroupIntersection) {
  std::uint64_t seed = GetParam();
  auto sys = figure1_system();
  Rng rng(seed);
  sim::EnvironmentSampler env{.process_count = 5, .max_failures = 3,
                              .horizon = kCrashHorizon};
  FailurePattern pat = env.sample(rng);
  // Target: Σ_{g2∩g3} = Σ_{p0,p3}.
  SigmaExtraction ext(sys, pat, {2, 3}, seed);
  ext.run(kRunHorizon);

  std::vector<fd::Sample<ProcessSet>> samples;
  for (Time t = 0; t <= kRunHorizon; t += 13)
    for (ProcessId p : ext.intersection_scope()) {
      if (pat.crashed(p, t)) continue;  // only observable history matters
      auto q = ext.query(p, t);
      ASSERT_TRUE(q.has_value());
      samples.push_back({p, t, *q});
    }
  auto r = fd::check_sigma(samples, pat, ext.intersection_scope());
  EXPECT_TRUE(r.ok) << r.error << " seed=" << seed
                    << " faulty=" << pat.faulty_set().to_string();
}

TEST_P(SigmaExtractionSweep, AxiomsOnSingleGroup) {
  std::uint64_t seed = GetParam() ^ 0x9999;
  auto sys = figure1_system();
  Rng rng(seed);
  sim::EnvironmentSampler env{.process_count = 5, .max_failures = 2,
                              .horizon = kCrashHorizon};
  FailurePattern pat = env.sample(rng);
  SigmaExtraction ext(sys, pat, {3}, seed);  // Σ_{g3}
  ext.run(kRunHorizon);

  std::vector<fd::Sample<ProcessSet>> samples;
  for (Time t = 0; t <= kRunHorizon; t += 13)
    for (ProcessId p : ext.intersection_scope()) {
      if (pat.crashed(p, t)) continue;
      auto q = ext.query(p, t);
      ASSERT_TRUE(q.has_value());
      samples.push_back({p, t, *q});
    }
  auto r = fd::check_sigma(samples, pat, ext.intersection_scope());
  EXPECT_TRUE(r.ok) << r.error << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SigmaExtractionSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(SigmaExtraction, BotOutsideIntersection) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  SigmaExtraction ext(sys, pat, {2, 3}, 1);
  ext.run(50);
  EXPECT_FALSE(ext.query(1, 10).has_value());  // p1 ∉ g2∩g3
  EXPECT_TRUE(ext.query(0, 10).has_value());
}

TEST(SigmaExtraction, RankFreezesForFaultyProcesses) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(3, 20);
  SigmaExtraction ext(sys, pat, {2, 3}, 1);
  EXPECT_EQ(ext.rank(3, 10), 10u);
  EXPECT_EQ(ext.rank(3, 100), 20u);  // frozen at the crash
  EXPECT_EQ(ext.rank(0, 100), 100u);
  EXPECT_EQ(ext.rank_set(ProcessSet{0, 3}, 100), 20u);
}

// ---- Algorithm 4: 1^{g∩h} emulation ---------------------------------------------

TEST(IndicatorEmulation, AccurateWhileIntersectionAlive) {
  auto sys = figure1_system();
  FailurePattern pat(5);  // nobody crashes
  IndicatorEmulation ind(sys, pat, 0, 1, 7);  // 1^{g0∩g1} = 1^{p1}
  ind.run(kRunHorizon);
  for (Time t = 0; t <= kRunHorizon; t += 17)
    for (ProcessId p : sys.group(0) | sys.group(1)) {
      auto v = ind.query(p, t);
      ASSERT_TRUE(v.has_value());
      EXPECT_FALSE(*v) << "false positive at p" << p << " t=" << t;
    }
}

TEST(IndicatorEmulation, CompleteOnceIntersectionDies) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 30);  // g0∩g1 = {p1}
  IndicatorEmulation ind(sys, pat, 0, 1, 7);
  ind.run(kRunHorizon);
  std::vector<fd::Sample<bool>> samples;
  for (Time t = 0; t <= kRunHorizon; t += 17)
    for (ProcessId p : sys.group(0) | sys.group(1)) {
      if (pat.crashed(p, t)) continue;
      auto v = ind.query(p, t);
      ASSERT_TRUE(v.has_value());
      samples.push_back({p, t, *v});
    }
  auto r = fd::check_indicator(samples, pat, sys.intersection(0, 1),
                               sys.group(0) | sys.group(1));
  EXPECT_TRUE(r.ok) << r.error;
  // And it is genuinely complete: the final samples are true.
  EXPECT_TRUE(*ind.query(0, kRunHorizon));
  EXPECT_TRUE(*ind.query(2, kRunHorizon));
}

TEST(IndicatorEmulation, LargerIntersectionNeedsAllMembersDead) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(0, 25);  // g2∩g3 = {p0,p3}: p0 dies, p3 lives
  IndicatorEmulation ind(sys, pat, 2, 3, 3);
  ind.run(kRunHorizon);
  EXPECT_FALSE(*ind.query(2, kRunHorizon));
}

// ---- Algorithm 3: γ emulation ----------------------------------------------------

TEST(GammaEmulation, AccurateInFailureFreeRuns) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  GammaEmulation gamma(sys, pat, 5);
  gamma.run(kRunHorizon);
  // No family may ever be dropped: every chain is blocked on its excluded
  // edge, whose intersection is alive.
  for (ProcessId p = 0; p < 5; ++p) {
    auto fams = gamma.query(p, kRunHorizon);
    EXPECT_EQ(fams.size(), sys.families_of_process(p).size())
        << "at p" << p;
  }
  EXPECT_EQ(gamma.signals_sent(), 0);
}

TEST(GammaEmulation, CompleteOnFigure1IntersectionCrash) {
  // Killing p1 = g0∩g1 breaks the unique cycles of f = {g0,g1,g2} and
  // f'' = {g0,g1,g2,g3}; f' = {g0,g2,g3} must survive.
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 25);
  GammaEmulation gamma(sys, pat, 11);
  gamma.run(kRunHorizon);
  auto at_p0 = gamma.query(0, kRunHorizon);
  ASSERT_EQ(at_p0.size(), 1u)
      << "expected only f' to survive at p0";
  EXPECT_EQ(at_p0[0], groups::family_of({0, 2, 3}));
  // Accuracy along the way: a family is only dropped once it is faulty under
  // the Hamiltonian reading.
  for (Time t = 0; t <= kRunHorizon; t += 23) {
    for (ProcessId p = 0; p < 5; ++p) {
      if (pat.crashed(p, t)) continue;
      auto fams = gamma.query(p, t);
      for (groups::FamilyMask f : sys.families_of_process(p)) {
        bool output = std::count(fams.begin(), fams.end(), f) > 0;
        if (!output) {
          EXPECT_TRUE(sys.family_faulty_hamiltonian_at(f, pat, t))
              << "family " << sys.family_to_string(f)
              << " dropped while correct (t=" << t << ", p" << p << ")";
        }
      }
    }
  }
}

TEST(GammaEmulation, RingSweepAccuracyAndCompleteness) {
  // Rings of k groups: exactly one cyclic family (the whole ring). Killing
  // one anchor process breaks one edge of the unique Hamiltonian cycle — the
  // family must eventually be dropped everywhere, never before the crash.
  for (int k : {3, 4, 5}) {
    auto sys = groups::ring_system(k, 1);
    FailurePattern pat(sys.process_count());
    pat.crash_at(0, 30);  // p0 anchors the edge g_{k-1}—g0
    GammaEmulation gamma(sys, pat, static_cast<std::uint64_t>(k) * 13);
    gamma.run(700);
    groups::FamilyMask ring;
    for (groups::GroupId g = 0; g < k; ++g) ring.insert(g);
    for (ProcessId p = 1; p < sys.process_count(); ++p) {
      if (sys.families_of_process(p).empty()) continue;
      // Accuracy before the crash...
      auto before = gamma.query(p, 29);
      EXPECT_EQ(std::count(before.begin(), before.end(), ring), 1)
          << "k=" << k << " p" << p;
      // ...completeness at the horizon.
      auto after = gamma.query(p, 700);
      EXPECT_EQ(std::count(after.begin(), after.end(), ring), 0)
          << "k=" << k << " p" << p;
    }
  }
}

TEST(GammaEmulation, InstancesExistPerPathWithFailureProneFirstEdge) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  GammaEmulation all(sys, pat, 1);
  // f and f' are triangles (6 paths each), f'' a 4-cycle (8 paths): 20.
  EXPECT_EQ(all.path_count(), 20);
  // Restricting the failure-prone set prunes instances whose first edge
  // cannot fail.
  GammaEmulation some(sys, pat, 1, ProcessSet{1});  // only p1 may crash
  EXPECT_LT(some.path_count(), all.path_count());
  EXPECT_GT(some.path_count(), 0);
}

// ---- Proposition 51: γ from indicators -------------------------------------------

TEST(GammaFromIndicators, MatchesOracleGammaOnFigure1) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 30);
  GammaFromIndicators derived(sys, pat);
  // After the crash has propagated, the derived γ agrees with the
  // Hamiltonian-reading ground truth.
  for (ProcessId p = 0; p < 5; ++p) {
    if (pat.faulty(p)) continue;
    auto fams = derived.query(p, 200);
    for (groups::FamilyMask f : sys.families_of_process(p)) {
      bool output = std::count(fams.begin(), fams.end(), f) > 0;
      EXPECT_EQ(output, !sys.family_faulty_hamiltonian_at(f, pat, 199))
          << sys.family_to_string(f) << " at p" << p;
    }
  }
}

TEST(GammaFromIndicators, NeverDropsCorrectFamilies) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(4, 10);  // p4 is in no intersection: no family is affected
  GammaFromIndicators derived(sys, pat);
  for (ProcessId p = 0; p < 4; ++p)
    EXPECT_EQ(derived.query(p, 500).size(),
              sys.families_of_process(p).size());
}

// ---- Algorithm 5: Ω_{g∩h} extraction ----------------------------------------------

TEST(OmegaExtraction, StableAgreedLeaderFailureFree) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  OmegaExtraction ext(sys, pat, 2, 3);  // g2∩g3 = {p0,p3}
  auto l0 = ext.query(0, 100);
  auto l3 = ext.query(3, 100);
  ASSERT_TRUE(l0 && l3);
  EXPECT_EQ(*l0, *l3);
  EXPECT_TRUE(*l0 == 0 || *l0 == 3);
  EXPECT_FALSE(ext.query(1, 100).has_value());  // outside the intersection
  // Stability: the same leader at later times.
  EXPECT_EQ(*ext.query(0, 500), *l0);
}

TEST(OmegaExtraction, LeaderMovesOffCrashedMember) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(0, 50);
  OmegaExtraction ext(sys, pat, 2, 3);
  auto late = ext.query(3, 200);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(*late, 3);  // the only correct member of {p0, p3}
}

TEST(OmegaExtraction, SweepAlwaysElectsCorrectMemberEventually) {
  auto sys = figure1_system();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    sim::EnvironmentSampler env{.process_count = 5, .max_failures = 1,
                                .horizon = 50,
                                .failure_prone = ProcessSet{0, 3}};
    FailurePattern pat = env.sample(rng);
    if ((pat.correct_set() & ProcessSet{0, 3}).empty()) continue;
    OmegaExtraction ext(sys, pat, 2, 3, {.seed = seed});
    std::optional<ProcessId> leader;
    for (ProcessId p : ProcessSet{0, 3}) {
      if (pat.faulty(p)) continue;
      auto l = ext.query(p, 400);
      ASSERT_TRUE(l.has_value());
      if (!leader) leader = *l;
      EXPECT_EQ(*l, *leader) << "seed " << seed;
    }
    ASSERT_TRUE(leader.has_value());
    EXPECT_TRUE(pat.correct(*leader)) << "seed " << seed;
    EXPECT_TRUE((ProcessSet{0, 3}).contains(*leader));
  }
}

TEST(OmegaExtraction, ValencyEndpointsAreAsConstructed) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  OmegaExtraction ext(sys, pat, 2, 3);
  // I_0: everyone multicasts to g2 -> g-valent; I_v: to g3 -> h-valent.
  EXPECT_TRUE(ext.valency(0, 10) & 1);
  EXPECT_TRUE(ext.valency(2, 10) & 2);
}

}  // namespace
}  // namespace gam::emulation
