// Metrics registry / histogram / report tests: the edge cases the probe layer
// leans on (zero-width samples, saturation, merge algebra) and the report
// pipeline bench_sweep --metrics and tools/metrics_report are built from
// (byte-deterministic serialization, write/load round-trip, regression diff).
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace gam::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- histogram edge cases ---------------------------------------------------

TEST(Histogram, ZeroWidthSamplesLandInBucketZero) {
  Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 0u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 0u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.mean(), 0.0);
  // All quantiles of an all-zero distribution are zero (clamped to max).
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Histogram, BucketBoundaries) {
  // bucket_of is bit_width: 0 -> 0, 1 -> 1, [2,3] -> 2, [4,7] -> 3, ...
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, MaxBucketSaturation) {
  Histogram h;
  const std::uint64_t top = ~std::uint64_t{0};
  h.record(top);
  h.record(top - 1);
  h.record(std::uint64_t{1} << 63);  // smallest value in the saturation bucket
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.buckets[64], 3u);
  EXPECT_EQ(h.max, top);
  EXPECT_EQ(h.min, std::uint64_t{1} << 63);
  // All samples share the saturation bucket, so every positive quantile
  // reports its upper bound (clamped to the observed max); q=0 is the exact
  // minimum.
  EXPECT_EQ(h.quantile(1.0), top);
  EXPECT_EQ(h.quantile(0.01), top);
  EXPECT_EQ(h.quantile(0.0), std::uint64_t{1} << 63);
}

TEST(Histogram, QuantileIsBucketUpperBoundClampedToObserved) {
  Histogram h;
  for (std::uint64_t v : {5u, 6u, 7u, 100u}) h.record(v);
  // p50: 2nd of 4 samples -> bucket 3 (upper bound 7).
  EXPECT_EQ(h.quantile(0.5), 7u);
  // p99: 4th sample -> bucket 7 (upper 127) clamps to max 100.
  EXPECT_EQ(h.quantile(0.99), 100u);
  EXPECT_EQ(h.quantile(0.0), 5u);
}

TEST(Histogram, QuantileInterpDegenerateCases) {
  Histogram empty;
  EXPECT_EQ(empty.quantile_interp(0.5), 0u);

  Histogram one;
  one.record(42);
  EXPECT_EQ(one.quantile_interp(0.0), 42u);
  EXPECT_EQ(one.quantile_interp(0.5), 42u);
  EXPECT_EQ(one.quantile_interp(1.0), 42u);

  // All samples equal: any within-bucket interpolation clamps to [min, max].
  Histogram same;
  for (int i = 0; i < 5; ++i) same.record(7);
  EXPECT_EQ(same.quantile_interp(0.5), 7u);
  EXPECT_EQ(same.quantile_interp(0.99), 7u);
}

TEST(Histogram, QuantileInterpTracksDenseUniformFill) {
  // A dense uniform fill matches the within-bucket uniformity assumption, so
  // the interpolated estimate lands near the true quantile — far tighter than
  // quantile()'s bucket upper bound.
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const std::uint64_t p50 = h.quantile_interp(0.5);
  const std::uint64_t p90 = h.quantile_interp(0.9);
  const std::uint64_t p99 = h.quantile_interp(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 25.0);
  EXPECT_NEAR(static_cast<double>(p90), 900.0, 45.0);
  EXPECT_NEAR(static_cast<double>(p99), 990.0, 50.0);
  // Never looser than the upper-bound estimator, never outside [min, max].
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_LE(h.quantile_interp(q), h.quantile(q));
    EXPECT_GE(h.quantile_interp(q), h.min);
    EXPECT_LE(h.quantile_interp(q), h.max);
  }
}

TEST(Histogram, QuantileInterpSaturationBucket) {
  Histogram h;
  const std::uint64_t top = ~std::uint64_t{0};
  h.record(std::uint64_t{1} << 63);
  h.record(top);
  // Interpolating inside the saturation bucket stays clamped to the observed
  // range even though the bucket spans half of uint64.
  EXPECT_GE(h.quantile_interp(0.5), std::uint64_t{1} << 63);
  EXPECT_LE(h.quantile_interp(0.5), top);
  EXPECT_EQ(h.quantile_interp(1.0), top);
}

TEST(Histogram, MergeAddsBucketsAndKeepsExtremes) {
  Histogram a, b, empty;
  a.record(3);
  a.record(9);
  b.record(0);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 3u + 9u + 0u + 1000u);
  EXPECT_EQ(a.min, 0u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_EQ(a.buckets[0], 1u);
  EXPECT_EQ(a.buckets[2], 1u);
  // Merging an empty histogram must not clobber min (its min is the sentinel).
  Histogram c = a;
  c.merge(empty);
  EXPECT_EQ(c.min, 0u);
  EXPECT_EQ(c.count, 4u);
  // And merging INTO an empty one adopts the source's extremes.
  Histogram d;
  d.merge(a);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 1000u);
}

// ---- registry merge ---------------------------------------------------------

TEST(Metrics, MergeIsCommutativeOverSeries) {
  Metrics a, b;
  a.counter("fd_query", "sigma").add(3);
  a.gauge("log_size", "g0").set(7);
  a.histogram("deliver_latency", "g0").record(12);
  b.counter("fd_query", "sigma").add(5);
  b.counter("fd_query", "gamma").add(1);  // only in b
  b.gauge("log_size", "g0").set(4);
  b.histogram("deliver_latency", "g0").record(30);

  Metrics ab = a;
  ab.merge(b);
  Metrics ba = b;
  ba.merge(a);

  EXPECT_EQ(ab.counter("fd_query", "sigma").value, 8u);
  EXPECT_EQ(ab.counter("fd_query", "gamma").value, 1u);
  // Gauge values add (per-run finals become a sweep total); hwm is the max.
  EXPECT_EQ(ab.gauge("log_size", "g0").value, 11);
  EXPECT_EQ(ab.gauge("log_size", "g0").hwm, 7);
  EXPECT_EQ(ab.histogram("deliver_latency", "g0").count, 2u);
  EXPECT_EQ(ab.counter_total("fd_query"), ba.counter_total("fd_query"));
  EXPECT_EQ(ab.merged_histogram("deliver_latency").sum,
            ba.merged_histogram("deliver_latency").sum);
}

TEST(Metrics, MergedHistogramSpansLabels) {
  Metrics m;
  m.histogram("deliver_latency", "g0").record(10);
  m.histogram("deliver_latency", "g1").record(20);
  m.histogram("convoy_wait", "g0").record(999);  // different name: excluded
  Histogram all = m.merged_histogram("deliver_latency");
  EXPECT_EQ(all.count, 2u);
  EXPECT_EQ(all.sum, 30u);
  EXPECT_EQ(all.max, 20u);
}

// ---- serialization determinism and round-trip -------------------------------

TEST(MetricsReport, SerializationIndependentOfInsertionOrder) {
  auto build = [](bool reversed) {
    MetricsReport rep;
    rep.meta["engine"] = "incremental";
    rep.meta["git_rev"] = "abc";
    Metrics& m = rep.config("cfg");
    if (reversed) {
      m.histogram("z_series").record(4);
      m.counter("b").add(2);
      m.counter("a", "l2").add(1);
      m.counter("a", "l1").add(1);
    } else {
      m.counter("a", "l1").add(1);
      m.counter("a", "l2").add(1);
      m.counter("b").add(2);
      m.histogram("z_series").record(4);
    }
    return rep;
  };
  std::string p1 = "test_metrics_order1.tmp";
  std::string p2 = "test_metrics_order2.tmp";
  ASSERT_TRUE(build(false).write(p1));
  ASSERT_TRUE(build(true).write(p2));
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(MetricsReport, WriteLoadRoundTrip) {
  MetricsReport rep;
  rep.meta["git_rev"] = "deadbeef";
  rep.meta["engine"] = "scan";
  Metrics& m = rep.config("e3");
  m.counter("fd_query", "sigma").add(17);
  m.gauge("buffer_depth").set(5);
  m.gauge("buffer_depth").set(2);  // value 2, hwm 5
  m.histogram("deliver_latency", "g3").record(0);
  m.histogram("deliver_latency", "g3").record(77);
  rep.config("empty_cfg");  // a config with no series must survive the trip

  std::string path = "test_metrics_roundtrip.tmp";
  ASSERT_TRUE(rep.write(path));
  auto loaded = MetricsReport::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.at("git_rev"), "deadbeef");
  EXPECT_EQ(loaded->meta.at("engine"), "scan");
  ASSERT_EQ(loaded->configs.size(), 2u);
  const Metrics* e3 = loaded->find_config("e3");
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e3->counters().at({"fd_query", "sigma"}).value, 17u);
  EXPECT_EQ(e3->gauges().at({"buffer_depth", ""}).value, 2);
  EXPECT_EQ(e3->gauges().at({"buffer_depth", ""}).hwm, 5);
  const Histogram& h = e3->histograms().at({"deliver_latency", "g3"});
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 77u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 77u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[7], 1u);

  // The round-tripped report serializes byte-identically to the original.
  std::string p1 = "test_metrics_rt1.tmp", p2 = "test_metrics_rt2.tmp";
  ASSERT_TRUE(rep.write(p1));
  ASSERT_TRUE(loaded->write(p2));
  EXPECT_EQ(slurp(p1), slurp(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(MetricsReport, LoadRejectsGarbageAndWrongSchema) {
  std::string path = "test_metrics_bad.tmp";
  {
    std::ofstream out(path);
    out << "{\"schema\": \"gam-metrics-v999\", \"meta\": {}, \"configs\": []}";
  }
  EXPECT_FALSE(MetricsReport::load(path).has_value());
  {
    std::ofstream out(path);
    out << "not json at all";
  }
  EXPECT_FALSE(MetricsReport::load(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(MetricsReport::load("does_not_exist.tmp").has_value());
}

// ---- diff -------------------------------------------------------------------

TEST(DiffReports, FlagsInjectedRegressionAndFiltersNoise) {
  MetricsReport a, b;
  Metrics& ma = a.config("cfg");
  Metrics& mb = b.config("cfg");
  ma.counter("fd_query").add(100);
  mb.counter("fd_query").add(150);  // +50%: the injected regression
  ma.counter("steps").add(1000);
  mb.counter("steps").add(1001);  // +0.1%: below threshold, filtered
  ma.counter("gone").add(1);      // removed in b
  mb.counter("fresh").add(1);     // new in b

  auto deltas = diff_reports(a, b, 0.05);
  ASSERT_EQ(deltas.size(), 3u);
  bool saw_changed = false, saw_new = false, saw_removed = false;
  for (const auto& d : deltas) {
    if (d.kind == SeriesDelta::kChanged) {
      saw_changed = true;
      EXPECT_NE(d.series.find("fd_query"), std::string::npos);
      EXPECT_EQ(d.before, 100.0);
      EXPECT_EQ(d.after, 150.0);
    }
    if (d.kind == SeriesDelta::kNew) {
      saw_new = true;
      EXPECT_NE(d.series.find("fresh"), std::string::npos);
    }
    if (d.kind == SeriesDelta::kRemoved) {
      saw_removed = true;
      EXPECT_NE(d.series.find("gone"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_changed);
  EXPECT_TRUE(saw_new);
  EXPECT_TRUE(saw_removed);
  // Most-changed first: the new/removed series (rel 1.0) outrank the +50%.
  EXPECT_EQ(deltas.back().kind, SeriesDelta::kChanged);

  // Identical reports diff clean at any threshold.
  EXPECT_TRUE(diff_reports(a, a, 0.0).empty());
}

TEST(DiffReports, GaugeAndHistogramFacets) {
  MetricsReport a, b;
  a.config("cfg").gauge("depth").set(10);
  b.config("cfg").gauge("depth").set(10);
  // Same value, different hwm: only the hwm facet trips.
  b.config("cfg").gauge("depth").set(30);
  b.config("cfg").gauge("depth").set(10);
  a.config("cfg").histogram("lat").record(8);
  b.config("cfg").histogram("lat").record(16);  // same count, different mean

  auto deltas = diff_reports(a, b, 0.05);
  bool saw_hwm = false, saw_mean = false;
  for (const auto& d : deltas) {
    if (d.series.find("hwm") != std::string::npos) saw_hwm = true;
    if (d.series.find("mean") != std::string::npos) saw_mean = true;
    EXPECT_EQ(d.series.find("count"), std::string::npos);
  }
  EXPECT_TRUE(saw_hwm);
  EXPECT_TRUE(saw_mean);

  // Whole-config appearance/disappearance surfaces as new/removed series.
  MetricsReport c = a;
  c.config("extra").counter("x").add(1);
  auto d2 = diff_reports(a, c, 0.05);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].kind, SeriesDelta::kNew);
  EXPECT_EQ(d2[0].config, "extra");
}

}  // namespace
}  // namespace gam::sim
