// Tests for the execution tracer and the detector-hierarchy transformations.
#include <gtest/gtest.h>

#include "amcast/mu_multicast.hpp"
#include "amcast/trace.hpp"
#include "amcast/workload.hpp"
#include "fd/checkers.hpp"
#include "fd/transforms.hpp"
#include "groups/group_system.hpp"

namespace gam {
namespace {

using amcast::MuMulticast;
using amcast::Trace;
using amcast::TraceEvent;
using groups::figure1_system;
using sim::FailurePattern;
using sim::Time;

// ---- Trace ---------------------------------------------------------------------

TEST(Trace, RecordsEveryActionOfARun) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  MuMulticast mc(sys, pat, {.seed = 3});
  Trace trace;
  mc.attach_trace(&trace);
  for (auto& m : amcast::round_robin_workload(sys, 2)) mc.submit(m);
  auto rec = mc.run();

  EXPECT_EQ(trace.count(TraceEvent::kMulticast), rec.multicast.size());
  EXPECT_EQ(trace.count(TraceEvent::kDeliver), rec.deliveries.size());
  // Every delivery is preceded by pending, commit and stable for the same
  // (process, message): the phase progression of Claim 14.
  EXPECT_EQ(trace.check_progression(), "");
  EXPECT_GE(trace.count(TraceEvent::kCommit), rec.deliveries.size());
}

TEST(Trace, TimelineAndLifecyclesRender) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  MuMulticast mc(sys, pat, {.seed = 9});
  Trace trace;
  mc.attach_trace(&trace);
  mc.submit({0, 0, 0, 0});
  mc.run();
  auto timeline = trace.render_timeline();
  EXPECT_NE(timeline.find("multicast"), std::string::npos);
  EXPECT_NE(timeline.find("deliver"), std::string::npos);
  auto lifecycle = trace.render_lifecycles();
  EXPECT_NE(lifecycle.find("m0:"), std::string::npos);
}

TEST(Trace, ProgressionCheckerCatchesRegression) {
  Trace t;
  t.record({0, 0, TraceEvent::kCommit, 1, -1, -1});
  t.record({1, 0, TraceEvent::kPending, 1, -1, -1});  // backwards!
  EXPECT_NE(t.check_progression(), "");
}

TEST(Trace, CommitEventsCarryTheAgreedPosition) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  MuMulticast mc(sys, pat, {.seed = 4});
  Trace trace;
  mc.attach_trace(&trace);
  for (auto& m : amcast::round_robin_workload(sys, 2)) mc.submit(m);
  mc.run();
  for (const auto& e : trace.events()) {
    if (e.action == TraceEvent::kCommit) {
      EXPECT_GE(e.position, 1);
    }
  }
}

// ---- transformations -------------------------------------------------------------

TEST(Transforms, SigmaFromPerfectSatisfiesSigmaAxioms) {
  FailurePattern pat(4);
  pat.crash_at(0, 20);
  pat.crash_at(3, 60);
  fd::PerfectOracle perfect(pat);
  ProcessSet scope = ProcessSet::universe(4);
  fd::SigmaFromPerfect sigma(perfect, scope);
  std::vector<fd::Sample<ProcessSet>> samples;
  for (Time t = 0; t <= 300; t += 7)
    for (ProcessId p = 0; p < 4; ++p) {
      if (pat.crashed(p, t)) continue;
      if (auto v = sigma.query(p, t)) samples.push_back({p, t, *v});
    }
  auto r = fd::check_sigma(samples, pat, scope);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Transforms, OmegaFromPerfectSatisfiesOmegaAxioms) {
  FailurePattern pat(4);
  pat.crash_at(0, 20);
  fd::PerfectOracle perfect(pat);
  ProcessSet scope = ProcessSet::universe(4);
  fd::OmegaFromPerfect omega(perfect, scope);
  std::vector<fd::Sample<ProcessId>> samples;
  for (Time t = 0; t <= 300; t += 7)
    for (ProcessId p = 0; p < 4; ++p) {
      if (pat.crashed(p, t)) continue;
      if (auto v = omega.query(p, t)) samples.push_back({p, t, *v});
    }
  auto r = fd::check_omega(samples, pat, scope);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Transforms, IndicatorFromPerfectSatisfiesIndicatorAxioms) {
  FailurePattern pat(4);
  pat.crash_at(1, 15);
  pat.crash_at(2, 40);
  fd::PerfectOracle perfect(pat);
  ProcessSet watched{1, 2};
  ProcessSet scope = ProcessSet::universe(4);
  fd::IndicatorFromPerfect ind(perfect, watched, scope);
  std::vector<fd::Sample<bool>> samples;
  for (Time t = 0; t <= 300; t += 7)
    for (ProcessId p = 0; p < 4; ++p) {
      if (pat.crashed(p, t)) continue;
      if (auto v = ind.query(p, t)) samples.push_back({p, t, *v});
    }
  auto r = fd::check_indicator(samples, pat, watched, scope);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Transforms, GammaFromPerfectSatisfiesGammaAxioms) {
  auto sys = figure1_system();
  FailurePattern pat(5);
  pat.crash_at(1, 30);
  fd::PerfectOracle perfect(pat);
  fd::GammaFromPerfect gamma(sys, perfect);
  std::vector<fd::Sample<std::vector<groups::FamilyMask>>> samples;
  for (Time t = 0; t <= 300; t += 7)
    for (ProcessId p = 0; p < 5; ++p) {
      if (pat.crashed(p, t)) continue;
      samples.push_back({p, t, gamma.query(p, t)});
    }
  auto r = fd::check_gamma(samples, sys, pat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Transforms, EventuallyPerfectConvergesToTruth) {
  FailurePattern pat(5);
  pat.crash_at(2, 10);
  fd::EventuallyPerfectOracle ep(pat, /*stabilization=*/100, 7);
  // Before stabilization the output may be wrong; after it, exact.
  bool any_noise = false;
  for (Time t = 0; t < 100; t += 3)
    for (ProcessId p = 0; p < 5; ++p)
      any_noise = any_noise || (ep.query(p, t) != pat.failed_at(t));
  EXPECT_TRUE(any_noise);  // ◇P is genuinely weaker than P early on
  for (Time t = 100; t <= 200; t += 10)
    for (ProcessId p = 0; p < 5; ++p)
      EXPECT_EQ(ep.query(p, t), pat.failed_at(t));
}

TEST(Transforms, EventuallyPerfectIsDeterministicPerSeed) {
  FailurePattern pat(3);
  fd::EventuallyPerfectOracle a(pat, 50, 9), b(pat, 50, 9);
  for (Time t = 0; t < 50; t += 5)
    EXPECT_EQ(a.query(1, t), b.query(1, t));
}

}  // namespace
}  // namespace gam
