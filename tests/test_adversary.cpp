// Tests for the adversarial scheduling & crash-injection layer
// (src/sim/adversary.hpp) and the RunSpec/Scenario construction API
// (src/sim/run_spec.hpp):
//   - a recorded schedule replays byte-identically, both at the World layer
//     (attempts extracted from a full event trace) and at the MuMulticast
//     layer (schedule file round-tripped through disk);
//   - PCT draws sane priorities and change points (distinct priorities, d-1
//     sorted change points spread over the step bound);
//   - the quorum-edge derivation crashes all but one member of a group
//     intersection at consecutive early times, and Σ over the derived
//     pattern collapses to the survivor singleton right at the boundary;
//   - the planted-bug gate: under -DGAM_PLANTED_BUG the pct:3 hunt finds a
//     monitor violation within the seed budget and the violating run
//     replays from its schedule; in honest builds the same hunt is clean;
//   - a default-spec Scenario is seed-for-seed reproducible (the canonical
//     World construction), and mid-run crash injection fires through
//     World::mutable_pattern.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "amcast/mu_multicast.hpp"
#include "amcast/workload.hpp"
#include "fd/detectors.hpp"
#include "groups/generator.hpp"
#include "sim/adversary.hpp"
#include "sim/monitors.hpp"
#include "sim/run_spec.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace gam {
namespace {

using sim::Actor;
using sim::Context;
using sim::Message;

// Forwards a countdown token around a ring; exercises receive-driven steps.
class Relay : public Actor {
 public:
  explicit Relay(ProcessId next) : next_(next) {}
  void on_step(Context& ctx, const Message* m) override {
    if (m && m->type > 0)
      ctx.send(next_, sim::protocol_id(0), sim::msg_type(m->type - 1));
  }

 private:
  ProcessId next_;
};

void kick(sim::World& world, ProcessId dst, std::int32_t hops) {
  Message m;
  m.src = dst;
  m.dst = dst;
  m.type = hops;
  world.buffer().send(std::move(m));
}

// ---------------------------------------------------------------------------
// Replay determinism.

TEST(Replay, WorldTraceReplaysByteIdentically) {
  // Record a PCT-scheduled run, extract its attempt sequence from the event
  // stream, and re-execute under ReplayScheduler: the two event streams must
  // be identical, event for event.
  sim::RecorderSink first;
  {
    sim::Scenario sc(sim::RunSpec{}
                         .processes(3)
                         .seed(21)
                         .scheduler(sim::pct(3, 256))
                         .trace(&first));
    for (ProcessId p = 0; p < 3; ++p)
      sc.world().install(p, std::make_unique<Relay>((p + 1) % 3));
    kick(sc.world(), 0, 9);
    ASSERT_TRUE(sc.run());
  }
  ASSERT_FALSE(first.events().empty());

  auto attempts = sim::ReplayScheduler::attempts_from_events(first.events());
  ASSERT_FALSE(attempts.empty());

  sim::RecorderSink second;
  {
    sim::Scenario sc(sim::RunSpec{}
                         .processes(3)
                         .seed(21)
                         .scheduler_factory([&](std::uint64_t) {
                           return std::make_unique<sim::ReplayScheduler>(
                               attempts);
                         })
                         .trace(&second));
    for (ProcessId p = 0; p < 3; ++p)
      sc.world().install(p, std::make_unique<Relay>((p + 1) % 3));
    kick(sc.world(), 0, 9);
    ASSERT_TRUE(sc.run());
  }
  EXPECT_EQ(first.events(), second.events());
  EXPECT_EQ(first.hash(), second.hash());
}

TEST(Replay, MuMulticastScheduleFileRoundTrips) {
  // Record a PCT-scheduled Algorithm 1 run's attempt schedule, write it to
  // disk, load it back, and re-run: byte-identical event hash.
  auto sys = groups::figure1_system();
  auto run = [&](sim::Scheduler& sched, std::vector<ProcessId>* schedule_out,
                 sim::TraceSink* sink) {
    sim::FailurePattern pat(sys.process_count());
    amcast::MuMulticast mc(sys, pat, {.seed = 5});
    mc.set_event_sink(sink);
    for (auto& m : amcast::round_robin_workload(sys, 2)) mc.submit(m);
    return mc.run_with(sched, schedule_out);
  };

  sim::RecorderSink rec;
  std::vector<ProcessId> schedule;
  auto pct = sim::pct(3).instantiate(5);
  auto record = run(*pct, &schedule, &rec);
  ASSERT_TRUE(record.quiescent);
  ASSERT_FALSE(schedule.empty());

  std::string path = "test_adversary_schedule.tmp";
  ASSERT_TRUE(sim::write_schedule(path, schedule));
  auto loaded = sim::load_schedule(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, schedule);

  auto replayer = sim::ReplayScheduler::from_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(replayer.has_value());
  EXPECT_EQ(replayer->size(), schedule.size());

  sim::HashingSink hash;
  auto replayed = run(*replayer, nullptr, &hash);
  EXPECT_TRUE(replayed.quiescent);
  EXPECT_EQ(hash.hash(), rec.hash());
  EXPECT_EQ(replayed.deliveries.size(), record.deliveries.size());
}

TEST(Replay, SpecInstantiationIsDeterministic) {
  // The same spec + seed must build schedulers whose runs agree: re-running
  // a (strategy, seed) cell is the first half of the reproducibility story.
  auto run_hash = [](std::uint64_t seed) {
    sim::HashingSink h;
    sim::Scenario sc(sim::RunSpec{}
                         .processes(4)
                         .seed(seed)
                         .scheduler(sim::pct(2, 128))
                         .trace(&h));
    for (ProcessId p = 0; p < 4; ++p)
      sc.world().install(p, std::make_unique<Relay>((p + 1) % 4));
    // Several concurrent tokens, so the scheduler has real choices and
    // different priority draws yield different interleavings.
    for (ProcessId p = 0; p < 4; ++p) kick(sc.world(), p, 7);
    EXPECT_TRUE(sc.run());
    return h.hash();
  };
  EXPECT_EQ(run_hash(3), run_hash(3));
  EXPECT_NE(run_hash(3), run_hash(4));
}

// ---------------------------------------------------------------------------
// PCT internals.

TEST(Pct, PrioritiesDistinctAndChangePointsSorted) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    sim::PctScheduler pct(/*depth=*/4, /*step_bound=*/1000, seed);
    pct.begin(8);
    const auto& pr = pct.priorities();
    ASSERT_EQ(pr.size(), 8u);
    std::set<std::int64_t> distinct(pr.begin(), pr.end());
    EXPECT_EQ(distinct.size(), 8u) << "seed " << seed;

    const auto& cps = pct.change_points();
    ASSERT_EQ(cps.size(), 3u);  // depth - 1
    for (size_t i = 0; i < cps.size(); ++i) {
      EXPECT_GE(cps[i], 1u);
      EXPECT_LT(cps[i], 1000u);
      if (i > 0) {
        EXPECT_LE(cps[i - 1], cps[i]);
      }
    }
  }
}

TEST(Pct, ChangePointsSpreadOverStepBound) {
  // Distribution sanity: across seeds, change points must land in every
  // quarter of [1, step_bound) — uniform draws, not clustered at one end.
  constexpr std::uint64_t kBound = 1000;
  int bucket[4] = {0, 0, 0, 0};
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::PctScheduler pct(3, kBound, seed);
    pct.begin(4);
    for (auto cp : pct.change_points())
      ++bucket[cp * 4 / kBound];
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(bucket[q], 0) << "quarter " << q;
}

TEST(Pct, DemotionChangesScheduleOrder) {
  // With depth >= 2 a demotion exists; across seeds PCT runs must not all
  // equal the depth-1 (pure priority) runs — the change points have teeth.
  auto run_hash = [](const sim::SchedulerSpec& spec, std::uint64_t seed) {
    sim::HashingSink h;
    sim::Scenario sc(
        sim::RunSpec{}.processes(4).seed(seed).scheduler(spec).trace(&h));
    for (ProcessId p = 0; p < 4; ++p)
      sc.world().install(p, std::make_unique<Relay>((p + 1) % 4));
    for (ProcessId p = 0; p < 4; ++p) kick(sc.world(), p, 10);
    EXPECT_TRUE(sc.run());
    return h.hash();
  };
  int differs = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    differs += run_hash(sim::pct(4, 64), seed) != run_hash(sim::pct(1), seed);
  EXPECT_GT(differs, 0);
}

// ---------------------------------------------------------------------------
// Quorum-edge derivation.

TEST(QuorumEdge, CrashesSitOnTheSigmaBoundary) {
  auto sys = groups::figure1_system();
  sim::QuorumEdgeAdversary adv(sys.groups(), sys.process_count());
  ASSERT_FALSE(adv.scopes().empty());

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto target = adv.target_for(seed);
    // The attacked scope is a recorded intersection; victims + survivor
    // partition it.
    EXPECT_TRUE(target.scope.contains(target.survivor));
    EXPECT_FALSE(target.victims.contains(target.survivor));
    EXPECT_EQ(target.victims.size() + 1, target.scope.size());

    sim::FailurePattern pat = adv.pattern_for(seed);
    EXPECT_EQ(pat.faulty_set(), target.victims);
    if (target.victims.empty()) continue;  // singleton scope: nothing to kill

    // Consecutive early crash times inside the window.
    EXPECT_GE(target.first_crash, 1);
    EXPECT_EQ(target.last_crash,
              target.first_crash +
                  static_cast<sim::Time>(target.victims.size()) - 1);

    // Σ restricted to the attacked scope: a full quorum before the first
    // crash, the survivor singleton from the last crash on — the boundary.
    fd::SigmaOracle sigma(pat, target.scope);
    auto before = sigma.query(target.survivor, 0);
    ASSERT_TRUE(before.has_value());
    EXPECT_EQ(*before, target.scope);
    auto after = sigma.query(target.survivor, target.last_crash);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*after, ProcessSet{target.survivor});
  }
}

TEST(QuorumEdge, InjectorCrashesMidRun) {
  // Dynamic injection at the World layer: the injector applies the target's
  // crashes through mutable_pattern once enough steps executed. (Plain-World
  // runs only — FD oracles bind the pattern at construction, so MuMulticast
  // derives qedge patterns up front instead.)
  auto sys = groups::figure1_system();
  sim::QuorumEdgeAdversary adv(sys.groups(), sys.process_count());
  // Find a seed whose attacked intersection is not a singleton (singleton
  // scopes have nobody to kill).
  std::uint64_t seed = 1;
  auto target = adv.target_for(seed);
  while (target.victims.empty() && seed < 64) target = adv.target_for(++seed);
  ASSERT_FALSE(target.victims.empty());

  sim::QuorumEdgeInjector injector(target, /*trigger_step=*/5);
  sim::Scenario sc(sim::RunSpec{}
                       .processes(sys.process_count())
                       .seed(seed)
                       .crash_injector(&injector));
  sim::World& world = sc.world();
  int n = sys.process_count();
  for (ProcessId p = 0; p < n; ++p)
    world.install(p, std::make_unique<Relay>((p + 1) % n));
  kick(world, 0, 60);
  ASSERT_TRUE(sc.run());

  EXPECT_TRUE(injector.fired());
  for (ProcessId v : target.victims) {
    EXPECT_TRUE(world.pattern().crashed(v, world.now())) << "victim " << v;
    // Crashed mid-run: the victim stepped before the injection, never after.
    EXPECT_TRUE(world.pattern().alive(v, 0));
  }
}

// ---------------------------------------------------------------------------
// RunSpec / Scenario.

TEST(RunSpec, DefaultScenarioIsReproducible) {
  // The World(pattern, seed) shim is gone; a default-spec Scenario is the
  // canonical construction and must stay seed-for-seed deterministic (the
  // property every determinism gate downstream builds on).
  auto run = [](sim::TraceSink* sink) {
    sim::Scenario sc(sim::RunSpec{}.processes(3).seed(77));
    sc.world().set_trace_sink(sink);
    for (ProcessId p = 0; p < 3; ++p)
      sc.world().install(p, std::make_unique<Relay>((p + 1) % 3));
    kick(sc.world(), 2, 12);
    EXPECT_TRUE(sc.run());
  };
  sim::HashingSink a, b;
  run(&a);
  run(&b);
  EXPECT_GT(a.count(), 0u);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(RunSpec, ExplicitRandomSpecMatchesDefault) {
  // scheduler(random_scheduler()) and no scheduler at all must coincide: the
  // spec'd RandomScheduler forks its stream with the same salt as the
  // World-owned default.
  auto run = [](const sim::RunSpec& spec) {
    sim::HashingSink h;
    sim::RunSpec s = spec;
    sim::Scenario sc(s.trace(&h));
    for (ProcessId p = 0; p < 4; ++p)
      sc.world().install(p, std::make_unique<Relay>((p + 1) % 4));
    kick(sc.world(), 0, 15);
    EXPECT_TRUE(sc.run());
    return h.hash();
  };
  EXPECT_EQ(run(sim::RunSpec{}.processes(4).seed(9)),
            run(sim::RunSpec{}.processes(4).seed(9).scheduler(
                sim::random_scheduler())));
}

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(AdversarySpec, ParsesTheCliGrammar) {
  auto p1 = sim::AdversarySpec::parse("random");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->scheduler.kind, sim::SchedulerSpec::Kind::kRandom);
  EXPECT_FALSE(p1->quorum_edge_crashes);

  auto p2 = sim::AdversarySpec::parse("pct:5");
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->scheduler.kind, sim::SchedulerSpec::Kind::kPct);
  EXPECT_EQ(p2->scheduler.depth, 5);

  auto p3 = sim::AdversarySpec::parse("qedge+pct:2");
  ASSERT_TRUE(p3.has_value());
  EXPECT_TRUE(p3->quorum_edge_crashes);
  EXPECT_EQ(p3->scheduler.depth, 2);
  EXPECT_EQ(p3->name(), "qedge+pct:2");

  auto p4 = sim::AdversarySpec::parse("replay:some/file.trace");
  ASSERT_TRUE(p4.has_value());
  EXPECT_EQ(p4->scheduler.kind, sim::SchedulerSpec::Kind::kReplay);
  EXPECT_EQ(p4->scheduler.replay_path, "some/file.trace");

  EXPECT_FALSE(sim::AdversarySpec::parse("pct:").has_value());
  EXPECT_FALSE(sim::AdversarySpec::parse("chaos").has_value());
  EXPECT_FALSE(sim::AdversarySpec::parse("").has_value());
}

// ---------------------------------------------------------------------------
// The planted-bug gate. One weakened delivery guard ships behind
// -DGAM_PLANTED_BUG; pct:3 must expose it within the seed budget there, and
// find nothing in honest builds. (scripts/tier1.sh runs this test in both
// build flavors; tools/adversary_hunt is the CLI face of the same loop.)

struct HuntCell {
  std::vector<sim::MonitorViolation> violations;
  std::vector<ProcessId> schedule;
  std::uint64_t trace_hash = 0;
};

HuntCell planted_cell(std::uint64_t seed) {
  auto sys = groups::figure1_system();
  Rng rng(seed);
  sim::EnvironmentSampler env{
      .process_count = sys.process_count(), .max_failures = 2, .horizon = 100};
  sim::FailurePattern pat = env.sample(rng);

  amcast::MuMulticast mc(sys, pat, {.seed = seed});
  sim::RecorderSink rec;
  mc.set_event_sink(&rec);
  for (auto& m : amcast::round_robin_workload(sys, 4)) mc.submit(m);

  HuntCell cell;
  auto sched = sim::pct(3).instantiate(seed);
  auto record = mc.run_with(*sched, &cell.schedule);
  cell.trace_hash = rec.hash();

  sim::MonitorConfig cfg;
  for (groups::GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  cfg.faulty = pat.faulty_set();
  sim::InvariantMonitors mon(cfg);
  sim::feed(mon, rec.events());
  mon.finalize(record.quiescent);
  cell.violations = mon.violations();
  return cell;
}

TEST(PlantedBug, PctHuntMatchesBuildFlavor) {
  constexpr std::uint64_t kBudget = sim::kPlantedBug ? 256 : 24;
  std::uint64_t found = 0;
  HuntCell bad;
  for (std::uint64_t seed = 1; seed <= kBudget; ++seed) {
    HuntCell cell = planted_cell(seed);
    if (!cell.violations.empty()) {
      found = seed;
      bad = cell;
      break;
    }
  }
  if (!sim::kPlantedBug) {
    EXPECT_EQ(found, 0u) << "honest build flagged a violation: "
                         << sim::format_violation(bad.violations[0]);
    return;
  }
  ASSERT_NE(found, 0u) << "planted bug not found within " << kBudget
                       << " pct:3 seeds";
  // The violating schedule must replay: same seed + schedule -> same events.
  auto sys = groups::figure1_system();
  Rng rng(found);
  sim::EnvironmentSampler env{
      .process_count = sys.process_count(), .max_failures = 2, .horizon = 100};
  sim::FailurePattern pat = env.sample(rng);
  amcast::MuMulticast mc(sys, pat, {.seed = found});
  sim::HashingSink hash;
  mc.set_event_sink(&hash);
  for (auto& m : amcast::round_robin_workload(sys, 4)) mc.submit(m);
  sim::ReplayScheduler replayer(bad.schedule);
  mc.run_with(replayer);
  EXPECT_EQ(hash.hash(), bad.trace_hash);
}

}  // namespace
}  // namespace gam
