// Batched rounds and pipelined issuance (ISSUE 6).
//
// The contract under test, in order of strength:
//   1. batch_k = 1, window_size = 1 is byte-identical to the default
//      configuration — same action stream, same delivery record, same event
//      hash, seed for seed (the flags default to today's behavior);
//   2. at every tested (batch_k, window_size) the scan and incremental
//      engines stay observationally equivalent, including under Figure-1
//      crash environments and a PCT adversary;
//   3. failure-free batched runs deliver exactly the unbatched delivery
//      *set*; under crashes they deliver a superset (windowed issuance can
//      unblock messages the strict rule starves behind a crashed sender's
//      pending predecessor, never fewer), and every run is clean under the
//      integrity / agreement / acyclicity monitors (delivery-order agreement
//      at all settings);
//   4. the batching probes behave: window_depth's high-water mark is bounded
//      by window_size, batch_occupancy never exceeds batch_k;
//   5. the message-passing layer: a batched UniversalLog decides the same
//      learned prefix with fewer wire messages, and batch=1/window=1 is
//      byte-identical on the wire.
#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "amcast/mu_multicast.hpp"
#include "amcast/replicated_multicast.hpp"
#include "amcast/trace.hpp"
#include "amcast/workload.hpp"
#include "groups/generator.hpp"
#include "groups/group_system.hpp"
#include "objects/ideal.hpp"
#include "sim/adversary.hpp"
#include "sim/metrics.hpp"
#include "sim/monitors.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace gam::amcast {
namespace {

using groups::GroupSystem;

struct Run {
  RunRecord record;
  Trace actions;
  sim::RecorderSink events;
};

Run run_cell(const GroupSystem& sys, const sim::FailurePattern& pat,
             MuMulticast::Options opt,
             const std::vector<MulticastMessage>& msgs,
             sim::Metrics* metrics = nullptr,
             const sim::SchedulerSpec* sched = nullptr) {
  Run out;
  MuMulticast mc(sys, pat, opt);
  mc.attach_trace(&out.actions);
  mc.set_event_sink(&out.events);
  if (metrics) mc.set_metrics(metrics);
  for (const auto& m : msgs) mc.submit(m);
  if (sched && sched->kind != sim::SchedulerSpec::Kind::kRandom) {
    auto s = sched->instantiate(opt.seed);
    out.record = mc.run_with(*s);
  } else {
    out.record = mc.run();
  }
  return out;
}

// Byte-identity: every observable of the two runs matches exactly.
void expect_identical(const char* label, const Run& a, const Run& b) {
  ASSERT_EQ(a.record.deliveries.size(), b.record.deliveries.size()) << label;
  for (size_t i = 0; i < a.record.deliveries.size(); ++i) {
    const auto& x = a.record.deliveries[i];
    const auto& y = b.record.deliveries[i];
    ASSERT_TRUE(x.p == y.p && x.m == y.m && x.t == y.t &&
                x.local_seq == y.local_seq)
        << label << ": delivery " << i;
  }
  EXPECT_EQ(a.record.steps, b.record.steps) << label;
  EXPECT_EQ(a.record.quiescent, b.record.quiescent) << label;
  ASSERT_EQ(a.actions.events().size(), b.actions.events().size()) << label;
  for (size_t i = 0; i < a.actions.events().size(); ++i) {
    const auto& x = a.actions.events()[i];
    const auto& y = b.actions.events()[i];
    ASSERT_TRUE(x.t == y.t && x.p == y.p && x.action == y.action &&
                x.m == y.m && x.h == y.h && x.position == y.position)
        << label << ": action " << i;
  }
  EXPECT_EQ(a.events.hash(), b.events.hash()) << label;
}

std::multiset<std::pair<ProcessId, MsgId>> delivered_set(const RunRecord& r) {
  std::multiset<std::pair<ProcessId, MsgId>> s;
  for (const auto& d : r.deliveries) s.emplace(d.p, d.m);
  return s;
}

void expect_monitors_clean(const char* label, const GroupSystem& sys,
                           const sim::FailurePattern& pat,
                           const MuMulticast::Options& opt, const Run& run) {
  sim::MonitorConfig cfg;
  for (GroupId g = 0; g < sys.group_count(); ++g)
    cfg.groups.push_back(sys.group(g));
  cfg.faulty = pat.faulty_set();
  sim::InvariantMonitors mons(cfg);
  sim::feed(mons, run.events.events());
  mons.finalize(run.record.quiescent && opt.fair_set.empty());
  for (const auto& v : mons.violations())
    ADD_FAILURE() << label << ": " << sim::format_violation(v);
}

// ---- 1. flag defaults are byte-identical to today ---------------------------

TEST(Batching, UnitKnobsAreByteIdenticalToDefault) {
  auto check = [](const char* label, const GroupSystem& sys,
                  const sim::FailurePattern& pat,
                  const std::vector<MulticastMessage>& msgs,
                  MuMulticast::Options base) {
    for (auto engine :
         {MuMulticast::Engine::kScan, MuMulticast::Engine::kIncremental}) {
      base.engine = engine;
      MuMulticast::Options unit = base;
      unit.batch_k = 1;
      unit.window_size = 1;
      auto a = run_cell(sys, pat, base, msgs);
      auto b = run_cell(sys, pat, unit, msgs);
      expect_identical(label, a, b);
    }
  };
  {
    auto sys = groups::disjoint_system(8, 2);
    sim::FailurePattern pat(sys.process_count());
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
      check(("disjoint_s" + std::to_string(seed)).c_str(), sys, pat,
            round_robin_workload(sys, 3), {.seed = seed});
  }
  {
    auto sys = groups::figure1_system();
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed);
      sim::EnvironmentSampler env{
          .process_count = 5, .max_failures = 2, .horizon = 100};
      sim::FailurePattern pat = env.sample(rng);
      check(("fig1_crash_s" + std::to_string(seed)).c_str(), sys, pat,
            round_robin_workload(sys, 2),
            {.seed = seed, .fd_lag = (seed % 3) * 2});
    }
  }
}

// ---- 2 + 3. engine equivalence, delivery agreement, clean monitors ----------

// Sweeps a cell at a (batch_k, window_size) setting: the scan and incremental
// engines must agree action for action, the delivered multiset must equal the
// unbatched run's, and the monitors must stay clean.
void sweep_batched(const char* label, const GroupSystem& sys,
                   const sim::FailurePattern& pat, MuMulticast::Options opt,
                   const std::vector<MulticastMessage>& msgs,
                   const sim::SchedulerSpec* sched = nullptr) {
  MuMulticast::Options unbatched = opt;
  unbatched.batch_k = 1;
  unbatched.window_size = 1;
  unbatched.engine = MuMulticast::Engine::kScan;
  auto reference = run_cell(sys, pat, unbatched, msgs, nullptr, sched);

  opt.engine = MuMulticast::Engine::kScan;
  auto scan = run_cell(sys, pat, opt, msgs, nullptr, sched);
  opt.engine = MuMulticast::Engine::kIncremental;
  auto inc = run_cell(sys, pat, opt, msgs, nullptr, sched);

  expect_identical(label, scan, inc);
  auto ref_set = delivered_set(reference.record);
  auto inc_set = delivered_set(inc.record);
  if (pat.faulty_set().empty()) {
    EXPECT_EQ(ref_set, inc_set)
        << label << ": batched delivery set diverges from unbatched";
  } else {
    // Under crashes the strict rule can block issuance forever: a pending
    // <-predecessor whose sender crashed mid-protocol is never delivered at
    // the issuer, so every later message from that issuer stays unsent.
    // Windowed issuance only needs the predecessor to have *entered* its
    // log, so the batched run may deliver strictly more — extra liveness.
    // It must never deliver less, and the monitors below still hold it to
    // integrity / agreement / acyclicity.
    EXPECT_TRUE(std::includes(inc_set.begin(), inc_set.end(), ref_set.begin(),
                              ref_set.end()))
        << label << ": batched run lost a delivery the unbatched run made";
  }
  expect_monitors_clean(label, sys, pat, opt, inc);
}

TEST(Batching, EngineEquivalenceAcrossSettings) {
  auto sys = groups::disjoint_system(8, 2);
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 4);
  for (auto [bk, ws] : {std::pair{4, 1}, {1, 4}, {4, 2}, {16, 8}})
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
      sweep_batched(("disjoint_b" + std::to_string(bk) + "_w" +
                     std::to_string(ws) + "_s" + std::to_string(seed))
                        .c_str(),
                    sys, pat,
                    {.seed = seed, .batch_k = bk, .window_size = ws}, msgs);
}

TEST(Batching, Figure1CrashEnvironments) {
  auto sys = groups::figure1_system();
  auto msgs = round_robin_workload(sys, 3);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    sim::EnvironmentSampler env{
        .process_count = 5, .max_failures = 2, .horizon = 100};
    sim::FailurePattern pat = env.sample(rng);
    sweep_batched(("fig1_crash_s" + std::to_string(seed)).c_str(), sys, pat,
                  {.seed = seed,
                   .fd_lag = (seed % 3) * 2,
                   .batch_k = 8,
                   .window_size = 4},
                  msgs);
  }
}

TEST(Batching, Pct3AdversarySweep) {
  auto sys = groups::figure1_system();
  auto msgs = round_robin_workload(sys, 2);
  sim::SchedulerSpec pct3 = sim::pct(3);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::FailurePattern pat(sys.process_count());
    if (seed % 2 == 0) pat.crash_at(2, 6);
    sweep_batched(("pct3_s" + std::to_string(seed)).c_str(), sys, pat,
                  {.seed = seed,
                   .max_steps = 1u << 16,
                   .batch_k = 8,
                   .window_size = 4},
                  msgs, &pct3);
  }
}

TEST(Batching, ChainTopologyConvoyShrinks) {
  // The convoy showcase: on the chain, batching must cut the global-step
  // latency substantially while preserving the delivery set.
  GroupSystem chain(9, {ProcessSet{0, 1}, ProcessSet{1, 2, 3},
                        ProcessSet{3, 4, 5}, ProcessSet{5, 6, 7},
                        ProcessSet{7, 8}});
  sim::FailurePattern pat(chain.process_count());
  auto msgs = round_robin_workload(chain, 4);
  MuMulticast::Options base{.seed = 3};
  auto ref = run_cell(chain, pat, base, msgs);
  MuMulticast::Options batched = base;
  batched.batch_k = 16;
  batched.window_size = 8;
  auto fast = run_cell(chain, pat, batched, msgs);
  EXPECT_EQ(delivered_set(ref.record), delivered_set(fast.record));
  expect_monitors_clean("chain_batched", chain, pat, batched, fast);
  // Macro-steps amortize whole ladders: the scheduled-step count must drop
  // by a wide margin, not epsilon.
  EXPECT_LT(fast.record.steps * 3, ref.record.steps)
      << "batched run took " << fast.record.steps << " steps vs "
      << ref.record.steps << " unbatched";
}

// ---- 4. probes --------------------------------------------------------------

TEST(Batching, ProbeBoundsHold) {
  if (!sim::kMetricsCompiled) GTEST_SKIP() << "built with GAM_METRICS=OFF";
  auto sys = groups::disjoint_system(16, 2);
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 8);
  for (auto [bk, ws] : {std::pair{1, 1}, {8, 4}, {16, 8}}) {
    sim::Metrics reg;
    auto run = run_cell(sys, pat,
                        {.seed = 7,
                         .batch_k = bk,
                         .window_size = ws},
                        msgs, &reg);
    ASSERT_TRUE(run.record.quiescent);
    const sim::Histogram& occ = reg.histogram("batch_occupancy");
    EXPECT_GT(occ.count, 0u);
    EXPECT_LE(occ.max, static_cast<std::uint64_t>(bk));
    // The issuance guard bounds entered-but-undelivered messages at the
    // issuer by the window, so the gauge's high-water mark cannot exceed it.
    for (const auto& [key, g] : reg.gauges()) {
      if (key.name == "window_depth") {
        EXPECT_LE(g.hwm, ws) << "gauge " << key.label;
      }
    }
    if (bk > 1) {
      // The hirate workload must actually batch — occupancy above 1 on
      // average, else the knob is dead weight.
      EXPECT_GT(occ.mean(), 1.0);
    } else {
      EXPECT_EQ(occ.max, 1u);
    }
  }
}

// ---- 5. the message-passing layer -------------------------------------------

RunRecord run_replicated(const groups::GroupSystem& sys,
                         const sim::FailurePattern& pat,
                         ReplicatedMulticast::Options opt,
                         const std::vector<MulticastMessage>& msgs,
                         std::uint64_t* wire_messages,
                         std::uint64_t* trace_hash) {
  ReplicatedMulticast rm(sys, pat, opt);
  sim::HashingSink hasher;
  rm.world().set_trace_sink(&hasher);
  for (const auto& m : msgs) rm.submit(m);
  RunRecord r = rm.run();
  if (wire_messages) *wire_messages = rm.messages_sent();
  if (trace_hash) *trace_hash = hasher.hash();
  return r;
}

TEST(Batching, UniversalLogUnitKnobsAreByteIdenticalOnTheWire) {
  auto sys = groups::disjoint_system(4, 3);
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::uint64_t hash_default = 0, hash_unit = 0, wires = 0;
    auto a = run_replicated(sys, pat, {.seed = seed}, msgs, &wires,
                            &hash_default);
    auto b = run_replicated(
        sys, pat, {.seed = seed, .batch_k = 1, .window_size = 1}, msgs,
        &wires, &hash_unit);
    EXPECT_EQ(hash_default, hash_unit) << "seed " << seed;
    EXPECT_EQ(delivered_set(a), delivered_set(b)) << "seed " << seed;
  }
}

TEST(Batching, UniversalLogBatchingCutsWireMessages) {
  auto sys = groups::disjoint_system(4, 3);
  sim::FailurePattern pat(sys.process_count());
  auto msgs = round_robin_workload(sys, 8);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::uint64_t wires_base = 0, wires_batched = 0;
    auto base =
        run_replicated(sys, pat, {.seed = seed}, msgs, &wires_base, nullptr);
    auto batched = run_replicated(
        sys, pat, {.seed = seed, .batch_k = 8, .window_size = 4}, msgs,
        &wires_batched, nullptr);
    ASSERT_TRUE(base.quiescent);
    ASSERT_TRUE(batched.quiescent);
    // Same messages reach the same replicas; agreement within each group's
    // learned prefix is checked by the per-process local_seq ordering.
    EXPECT_EQ(delivered_set(base), delivered_set(batched)) << "seed " << seed;
    EXPECT_LT(wires_batched, wires_base)
        << "seed " << seed << ": batching must amortize consensus traffic";
  }
}

// ---- Log::append_batch ------------------------------------------------------

TEST(Batching, AppendBatchMatchesLoopedAppends) {
  using objects::Log;
  using objects::LogEntry;
  Log a, b;
  std::vector<LogEntry> entries;
  for (MsgId m : {1, 2, 3, 2, 4})  // duplicate 2: idempotent skip
    entries.push_back(LogEntry::message(m));
  std::size_t inserted =
      a.append_batch(entries.data(), entries.size(), /*by=*/0);
  for (const auto& e : entries) b.append(e, /*by=*/0);
  EXPECT_EQ(inserted, 4u);
  ASSERT_EQ(a.size(), b.size());
  for (MsgId m : {1, 2, 3, 4}) {
    ASSERT_TRUE(a.contains(LogEntry::message(m)));
    EXPECT_EQ(a.pos(LogEntry::message(m)), b.pos(LogEntry::message(m)));
  }
}

TEST(Batching, AppendBatchBumpsEpochOnce) {
  using objects::Log;
  using objects::LogEntry;
  Log lg;
  std::vector<LogEntry> entries{LogEntry::message(1), LogEntry::message(2),
                                LogEntry::message(3)};
  auto e0 = lg.epoch();
  lg.append_batch(entries.data(), entries.size(), 0);
  auto e1 = lg.epoch();
  EXPECT_EQ(e1, e0 + 1) << "one batch, one invalidation";
  // An all-duplicate batch mutates nothing and must not invalidate.
  lg.append_batch(entries.data(), entries.size(), 0);
  EXPECT_EQ(lg.epoch(), e1);
}

}  // namespace
}  // namespace gam::amcast
